package gridbw

// Router-tier hot-path benchmarks: the same admission measured straight
// against the owning shard (the baseline every routed number is judged
// by), proxied through gridbwrouter's same-shard fast path (one extra
// HTTP hop — the routing tax), and driven through the cross-shard
// two-phase hold protocol (RESERVE×2 + CONFIRM×2 against both owners).
// scripts/bench.sh router snapshots these into BENCH_router.json; the
// routed same-shard figure staying within 2× of direct is the router's
// latency budget.

import (
	"context"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"gridbw/internal/router"
	"gridbw/internal/server"
	"gridbw/internal/server/client"
	"gridbw/internal/units"
)

const routerBenchPoints = 8

// routerBench is two in-process shard groups on a shared fake clock, an
// httptest server per shard, and a router over both.
type routerBench struct {
	ns        *atomic.Int64
	shards    [2]*server.Server
	shardURLs [2]string
	routerURL string
	ring      *router.Ring
}

func newRouterBench(b *testing.B) *routerBench {
	rb := &routerBench{ns: &atomic.Int64{}}
	var caps []units.Bandwidth
	for i := 0; i < routerBenchPoints; i++ {
		caps = append(caps, 10*units.GBps)
	}
	var shardCfgs []router.ShardConfig
	for i := range rb.shards {
		srv, err := server.New(server.Config{
			Ingress: caps, Egress: caps, Policy: "f=0.5",
			Clock: func() time.Time { return time.Unix(0, rb.ns.Load()) },
		})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		b.Cleanup(func() { ts.Close(); srv.Close() })
		rb.shards[i] = srv
		rb.shardURLs[i] = ts.URL
		shardCfgs = append(shardCfgs, router.ShardConfig{
			Name: []string{"s0", "s1"}[i], Endpoints: []string{ts.URL},
		})
	}
	rt, err := router.New(router.Config{Shards: shardCfgs, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	b.Cleanup(rts.Close)
	rb.routerURL = rts.URL
	rb.ring = rt.Ring()
	return rb
}

// pair finds an (ingress, egress) pair that is same-shard or cross-shard
// on the bench ring.
func (rb *routerBench) pair(b *testing.B, cross bool) (from, to int) {
	for i := 0; i < routerBenchPoints; i++ {
		for e := 0; e < routerBenchPoints; e++ {
			if (rb.ring.OwnerIn(i) != rb.ring.OwnerEg(e)) == cross {
				return i, e
			}
		}
	}
	b.Fatalf("no pair with cross=%v on the bench ring", cross)
	return 0, 0
}

// submitLoop drives b.N admissions of one fixed pair through c. The
// shared clock steps 2 s per op, so 1 GB at f·MaxRate = 100 MB/s keeps
// steady-state occupancy per route well under the 10 GB/s points.
func (rb *routerBench) submitLoop(b *testing.B, c *client.Client, from, to int) {
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := float64(rb.shards[0].Now())
		d, err := c.Submit(ctx, server.SubmitRequest{
			From: from, To: to,
			VolumeBytes: 1e9, MaxRateBps: 2e8,
			NotBeforeS: now, DeadlineS: now + 100,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !d.Accepted {
			b.Fatalf("request %d rejected: %s", i, d.Reason)
		}
		rb.ns.Add(int64(2 * time.Second))
	}
}

// BenchmarkRouterDirectSubmit is the baseline: the same-shard pair
// submitted straight to its owning shard, no router in the path.
func BenchmarkRouterDirectSubmit(b *testing.B) {
	rb := newRouterBench(b)
	from, to := rb.pair(b, false)
	c := client.New(rb.shardURLs[rb.ring.OwnerIn(from)], nil)
	rb.submitLoop(b, c, from, to)
}

// BenchmarkRouterSameShardSubmit pays the routing tax: one extra HTTP
// hop through the router's same-shard proxy path.
func BenchmarkRouterSameShardSubmit(b *testing.B) {
	rb := newRouterBench(b)
	from, to := rb.pair(b, false)
	rb.submitLoop(b, client.New(rb.routerURL, nil), from, to)
}

// BenchmarkRouterCrossShardSubmit drives the full two-phase protocol:
// RESERVE on the ingress owner, RESERVE on the egress owner, CONFIRM on
// both — four shard round trips per admission.
func BenchmarkRouterCrossShardSubmit(b *testing.B) {
	rb := newRouterBench(b)
	from, to := rb.pair(b, true)
	rb.submitLoop(b, client.New(rb.routerURL, nil), from, to)
}
