// Loadtest: scaletest the daemon open-loop with internal/loadgen.
//
// It boots gridbwd's server in-process on a loopback port, then drives it
// the way `cmd/gridbwload` would from the outside: a seeded open-loop
// arrival schedule ramps to 400 submissions/s across a few hundred
// virtual users, mixing single submissions, batches and cancellations,
// while a live Prometheus endpoint exposes per-phase outcome counters and
// latency percentiles mid-run. On exit it prints the per-phase report and
// evaluates a regression gate — the same machinery CI's scaletest job
// uses to fail a PR that slows the admission path down.
//
// Open-loop means the schedule never waits for responses: a stalled
// daemon earns visible latency and dropped arrivals instead of silently
// slowing the offered rate (the coordinated-omission trap of closed-loop
// harnesses).
//
// Run with: go run ./examples/loadtest
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"time"

	"gridbw/internal/loadgen"
	"gridbw/internal/server"
	"gridbw/internal/units"
)

const promAddr = "127.0.0.1:9815"

func main() {
	// An in-process daemon: 4×4 points at 1 GB/s, generous shed limit.
	s, err := server.New(server.Config{
		Ingress:     []units.Bandwidth{units.GBps, units.GBps, units.GBps, units.GBps},
		Egress:      []units.Bandwidth{units.GBps, units.GBps, units.GBps, units.GBps},
		MaxInFlight: 1024,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cfg := loadgen.Config{
		Targets:    []string{ts.URL},
		VUs:        400,
		Phases:     loadgen.Ramp(2*time.Second, 4*time.Second, 1*time.Second, 400),
		Mix:        loadgen.Mix{Submit: 85, Cancel: 10, Batch: 5, BatchSize: 4},
		Seed:       42,
		NumIngress: 4, NumEgress: 4,
		PromAddr: promAddr,
		FailOn:   "p99<250ms,errors<1%,drops<=5%",
	}

	done := make(chan loadgen.Report, 1)
	go func() {
		rep, err := loadgen.Run(context.Background(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		done <- rep
	}()

	// Scrape the live endpoint mid-run, the way a dashboard would.
	time.Sleep(3 * time.Second)
	if resp, err := http.Get("http://" + promAddr + "/metrics"); err == nil {
		blob, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil {
			fmt.Println("live exposition mid-run (excerpt):")
			for _, line := range strings.Split(string(blob), "\n") {
				if strings.HasPrefix(line, "gridbwload_arrivals_total") ||
					strings.HasPrefix(line, "gridbwload_inflight_vus") {
					fmt.Println(" ", line)
				}
			}
			fmt.Println()
		}
	}

	rep := <-done

	fmt.Printf("scaletest against %s: %d VUs, seed %d\n", ts.URL, rep.VUs, rep.Seed)
	fmt.Printf("offered %d arrivals over %.1fs → %.0f ops/s finished\n\n",
		rep.OfferedArrivals, rep.WallSeconds, rep.AchievedRPS)

	fmt.Printf("%-10s %9s %9s %9s %10s %10s %10s\n",
		"phase", "offered", "admitted", "rejected", "p50", "p99", "p999")
	for _, ph := range append(rep.Phases, rep.Total) {
		fmt.Printf("%-10s %9d %9d %9d %8.2fms %8.2fms %8.2fms\n",
			ph.Name, ph.Offered, ph.Outcomes["admitted"], ph.Outcomes["rejected"],
			ph.Latency.P50Ms, ph.Latency.P99Ms, ph.Latency.P999Ms)
	}

	fmt.Println("\noutcome totals:")
	names := make([]string, 0, len(rep.Total.Outcomes))
	for name := range rep.Total.Outcomes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-16s %d\n", name, rep.Total.Outcomes[name])
	}

	if rep.Gate != nil {
		fmt.Printf("\ngate %q: pass=%v\n", rep.Gate.Spec, rep.Gate.Pass)
		for _, v := range rep.Gate.Violations {
			fmt.Println("  violation:", v)
		}
	}

	// The daemon kept its own server-side admission-latency histogram —
	// the counterpart of the client-side percentiles above, split by the
	// wire.
	resp, err := http.Get(ts.URL + "/v1/metricsz")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var m server.MetricsJSON
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserver-side admit latency over %d decisions: p50=%.3fms p99=%.3fms max=%.3fms\n",
		m.AdmitLatency.Count, m.AdmitLatency.P50Ms, m.AdmitLatency.P99Ms, m.AdmitLatency.MaxMs)
}
