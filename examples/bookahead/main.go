// Bookahead: advance reservations with the profile-based Planner.
//
// An experiment pipeline knows tonight's acquisition run will produce
// 28 TB that must reach the compute site before tomorrow morning's batch
// window. Instead of submitting when the data is ready and hoping, the
// operator books the transfer hours ahead: the planner holds a bandwidth
// reservation over a future interval, co-existing with the interactive
// traffic admitted meanwhile. This is the "book-ahead" mode of grid
// reservation systems the paper positions against in §6 (GARA, Burchard
// et al.), built on the same ledger substrate as the §4 heuristics.
//
// Run with: go run ./examples/bookahead
package main

import (
	"fmt"
	"log"
	"os"

	"gridbw/internal/core"
	"gridbw/internal/report"
	"gridbw/internal/units"
)

func main() {
	pl, err := core.NewPlanner(core.Config{
		Ingress: []units.Bandwidth{1 * units.GBps, 1 * units.GBps},
		Egress:  []units.Bandwidth{1 * units.GBps, 1 * units.GBps},
		Policy:  "f=1",
	})
	if err != nil {
		log.Fatal(err)
	}

	t := &report.Table{
		Title:   "Advance reservations",
		Headers: []string{"booked at", "transfer", "window", "decision"},
	}
	book := func(label string, tr core.AdvanceTransfer) core.Reservation {
		res, err := pl.Reserve(tr)
		if err != nil {
			log.Fatal(err)
		}
		window := fmt.Sprintf("[%v, %v]", tr.NotBefore, tr.Deadline)
		verdict := "reject: " + res.Reason
		if res.Accepted {
			verdict = fmt.Sprintf("start %v at %v, done %v", res.Start, res.Rate, res.Finish)
		}
		t.AddRow(pl.Now().String(), label, window, verdict)
		return res
	}

	// 09:00 — book tonight's 28 TB bulk move for the 22:00-06:00 window
	// (just under 8 hours at the full gigabyte per second).
	if err := pl.AdvanceTo(9 * units.Hour); err != nil {
		log.Fatal(err)
	}
	night := book("28TB acquisition -> compute", core.AdvanceTransfer{
		From: 0, To: 1, Volume: 28 * units.TB,
		NotBefore: 22 * units.Hour, Deadline: 30 * units.Hour,
		MaxRate: 1 * units.GBps,
	})

	// 14:00 — an interactive 500 GB staging job for this afternoon: the
	// planner packs it before tonight's reservation without conflict.
	if err := pl.AdvanceTo(14 * units.Hour); err != nil {
		log.Fatal(err)
	}
	book("500GB staging (same route)", core.AdvanceTransfer{
		From: 0, To: 1, Volume: 500 * units.GB,
		NotBefore: 14 * units.Hour, Deadline: 20 * units.Hour,
		MaxRate: 1 * units.GBps,
	})

	// 15:00 — a rival full-rate overnight transfer on the same route: the
	// point is already committed to the 2 TB booking, so the planner
	// shifts it after the booked slot (the window allows it).
	if err := pl.AdvanceTo(15 * units.Hour); err != nil {
		log.Fatal(err)
	}
	book("900GB replica sync (flexible window)", core.AdvanceTransfer{
		From: 0, To: 1, Volume: 900 * units.GB,
		NotBefore: 22 * units.Hour, Deadline: 34 * units.Hour,
		MaxRate: 1 * units.GBps,
	})

	// 16:00 — a transfer that cannot fit around the booking is told now,
	// hours before it would have failed.
	book("1.5TB with rigid overnight deadline", core.AdvanceTransfer{
		From: 0, To: 1, Volume: 1500 * units.GB,
		NotBefore: 22 * units.Hour, Deadline: 26 * units.Hour,
		MaxRate: 1 * units.GBps,
	})

	// 18:00 — the acquisition run is cancelled; the freed slot makes the
	// rigid transfer bookable after all.
	if err := pl.AdvanceTo(18 * units.Hour); err != nil {
		log.Fatal(err)
	}
	if err := pl.Cancel(night.ID); err != nil {
		log.Fatal(err)
	}
	book("1.5TB retry after cancellation", core.AdvanceTransfer{
		From: 0, To: 1, Volume: 1500 * units.GB,
		NotBefore: 22 * units.Hour, Deadline: 26 * units.Hour,
		MaxRate: 1 * units.GBps,
	})

	if err := t.Fprint(os.Stdout); err != nil {
		log.Fatal(err)
	}
	sub, acc, rate := pl.Stats()
	fmt.Printf("\n%d requests, %d live reservations (%.0f%%)\n", sub, acc, 100*rate)
	fmt.Println("\nReading: the time-indexed ledger lets operators reserve far ahead,")
	fmt.Println("pack flexible transfers around firm bookings, learn about infeasible")
	fmt.Println("plans immediately, and reuse windows freed by cancellations.")
}
