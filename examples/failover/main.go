// Failover: the self-driving failover story end to end, in one process.
//
// A WAL-backed primary serves reservations; a warm standby follows it by
// log shipping; a cluster.Watchdog — the same machinery `gridbwd -watch`
// and `gridbwctl watch` run — probes the primary's health. We then kill
// the primary mid-service. The watchdog counts its misses, checks the
// standby's replication lag, and promotes it under a bumped fencing
// epoch; the multi-endpoint client re-discovers the new primary and
// re-sends its submission under the same idempotency key, which lands
// exactly once. Finally a late-arriving batch from the deposed primary's
// epoch is refused (FencedError) and a brand-new follower whose cursor
// was compacted away re-seeds itself from the snapshot endpoint.
//
// Run with: go run ./examples/failover
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"gridbw/internal/cluster"
	"gridbw/internal/server"
	"gridbw/internal/server/client"
	"gridbw/internal/units"
	"gridbw/internal/wal"
)

func serve(srv *server.Server) (string, func()) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	return "http://" + ln.Addr().String(), func() { httpSrv.Close() }
}

func platform() server.Config {
	return server.Config{
		Ingress: []units.Bandwidth{1 * units.GBps, 1 * units.GBps},
		Egress:  []units.Bandwidth{1 * units.GBps, 1 * units.GBps},
	}
}

func openWAL(name string) *wal.Log {
	dir, err := os.MkdirTemp("", "gridbw-failover-"+name)
	if err != nil {
		log.Fatal(err)
	}
	l, _, err := wal.Open(dir, wal.Options{SegmentBytes: 512})
	if err != nil {
		log.Fatal(err)
	}
	return l
}

func main() {
	ctx := context.Background()

	// A WAL-backed primary and a warm standby following it.
	pcfg := platform()
	pwal := openWAL("primary")
	defer pwal.Close()
	pcfg.WAL = pwal
	primary, err := server.New(pcfg)
	if err != nil {
		log.Fatal(err)
	}
	defer primary.Close()
	primaryURL, stopPrimary := serve(primary)

	scfg := platform()
	swal := openWAL("standby")
	defer swal.Close()
	scfg.WAL = swal
	scfg.Follow = primaryURL
	standby, err := server.New(scfg)
	if err != nil {
		log.Fatal(err)
	}
	defer standby.Close()
	if err := standby.StartFollowing(); err != nil {
		log.Fatal(err)
	}
	standbyURL, stopStandby := serve(standby)
	defer stopStandby()
	fmt.Printf("primary  %s (epoch %d)\nstandby  %s (following)\n\n", primaryURL, primary.Epoch(), standbyURL)

	// The failover-aware client knows both endpoints.
	c := client.NewWithOptions(primaryURL, nil, client.Options{
		MaxRetries: 8, BaseBackoff: 10 * time.Millisecond,
	}, standbyURL)

	// Book a few transfers on the primary.
	for i := 0; i < 6; i++ {
		r, err := c.Submit(ctx, server.SubmitRequest{
			From: i % 2, To: (i + 1) % 2,
			Volume: "2GB", MaxRate: "50MB/s", DeadlineIn: "1h",
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("booked #%d at %s via %s\n", r.ID, r.Rate, c.Endpoint())
	}
	// Wait until every primary WAL record reached the standby. (LagBytes
	// alone is as-of the standby's last pull — a decision acked after that
	// pull is invisible to it until the next batch lands.)
	for standby.ReplicationStatus().Applied < primary.ReplicationStatus().WALRecords {
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("\nstandby caught up: %d records applied, lag 0\n\n", standby.ReplicationStatus().Applied)

	// The watchdog: probe every 50ms, suspect after 3 misses, refuse to
	// promote a standby that is lagging.
	wd, err := cluster.New(cluster.Config{
		Primary: primaryURL, Standby: standbyURL,
		Interval: 50 * time.Millisecond, Misses: 3, MaxLagBytes: 1 << 20,
		OnTransition: func(from, to cluster.State, in cluster.Input) {
			fmt.Printf("watchdog: %s -> %s on %s\n", from, to, in)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	watchDone := make(chan error, 1)
	go func() { watchDone <- wd.Run(ctx) }()

	// Kill the primary.
	fmt.Println("killing the primary ...")
	stopPrimary()
	primary.Close()
	if err := <-watchDone; err != nil {
		log.Fatal(err)
	}
	fmt.Printf("standby promoted itself: epoch %d\n\n", standby.Epoch())

	// The client's next submit re-discovers the primary; the idempotency
	// key makes the retry exactly-once even if the first answer was lost.
	r, err := c.Submit(ctx, server.SubmitRequest{
		From: 0, To: 1, Volume: "2GB", MaxRate: "50MB/s", DeadlineIn: "1h",
		IdempotencyKey: "after-the-fire",
	})
	if err != nil {
		log.Fatal(err)
	}
	again, err := c.Submit(ctx, server.SubmitRequest{
		From: 0, To: 1, Volume: "2GB", MaxRate: "50MB/s", DeadlineIn: "1h",
		IdempotencyKey: "after-the-fire",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failover submit landed on %s: #%d (re-sent key answered #%d — same booking)\n\n",
		c.Endpoint(), r.ID, again.ID)

	// The deposed primary's late batch is fenced off the new lineage.
	fcfg := platform()
	fcfg.Follow = standbyURL
	fcfg.Epoch = standby.Epoch()
	replica, err := server.New(fcfg)
	if err != nil {
		log.Fatal(err)
	}
	err = replica.ApplyShipped(server.ShippedBatch{Epoch: 1})
	var fenced *server.FencedError
	if errors.As(err, &fenced) {
		fmt.Printf("deposed primary's batch refused: %v\n\n", fenced)
	}
	replica.Close()

	// Snapshot re-seeding: compact the new primary's WAL, then start a
	// fresh follower — its zero cursor answers 410 Gone, and the pull
	// loop re-seeds from GET /v1/replication/snapshot automatically.
	if n, err := swal.CompactBefore(swal.End()); err == nil {
		fmt.Printf("compacted %d WAL segments on the new primary\n", n)
	}
	f2cfg := platform()
	f2wal := openWAL("follower2")
	defer f2wal.Close()
	f2cfg.WAL = f2wal
	f2cfg.Follow = standbyURL
	follower2, err := server.New(f2cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer follower2.Close()
	if err := follower2.StartFollowing(); err != nil {
		log.Fatal(err)
	}
	for follower2.Status().Stats.Reseeds == 0 ||
		follower2.Status().Active != standby.Status().Active {
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("fresh follower re-seeded itself: %d live reservations, epoch %d — zero acked bookings lost\n",
		follower2.Status().Active, follower2.Epoch())
}
