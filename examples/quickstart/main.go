// Quickstart: the smallest useful gridbw program.
//
// It builds a 2×2 grid overlay (two ingress and two egress access points
// at 1 GB/s), runs the on-line bandwidth-sharing service, and submits a
// handful of bulk transfers — watching reservations being granted,
// rejected while the points are busy, and granted again once capacity is
// released.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gridbw/internal/core"
	"gridbw/internal/units"
)

func main() {
	sys, err := core.NewSystem(core.Config{
		Ingress: []units.Bandwidth{1 * units.GBps, 1 * units.GBps},
		Egress:  []units.Bandwidth{1 * units.GBps, 1 * units.GBps},
		// Grant every accepted transfer 80% of its host rate (§2.3's
		// tuning factor): transfers finish faster and release the
		// co-scheduled CPU/storage earlier.
		Policy: "f=0.8",
	})
	if err != nil {
		log.Fatal(err)
	}

	submit := func(from, to int, vol units.Volume, deadline units.Time, cap units.Bandwidth) {
		d, err := sys.Submit(core.Transfer{
			From: from, To: to, Volume: vol, Deadline: deadline, MaxRate: cap,
		})
		if err != nil {
			log.Fatal(err)
		}
		if d.Accepted {
			fmt.Printf("t=%-6v %v from site %d to site %d: ACCEPTED at %v, finishes t=%v\n",
				sys.Now(), vol, from, to, d.Rate, d.Finish)
		} else {
			fmt.Printf("t=%-6v %v from site %d to site %d: rejected (%s)\n",
				sys.Now(), vol, from, to, d.Reason)
		}
	}

	// A 500 GB dataset replication with a generous one-hour window.
	submit(0, 1, 500*units.GB, 1*units.Hour, 1*units.GBps)

	// A second transfer on the same route: the f=0.8 grant above holds
	// 800 MB/s, so only small requests still fit.
	submit(0, 1, 100*units.GB, 1*units.Hour, 500*units.MBps)

	// The reverse direction uses different access points and is free.
	submit(1, 0, 300*units.GB, 30*units.Minute, 1*units.GBps)

	// Eleven minutes later the first transfer (625 s at 800 MB/s) is done;
	// the same request that was just rejected now gets in.
	if err := sys.AdvanceTo(11 * units.Minute); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n-- clock advanced to %v; ingress 0 utilization %.0f%% --\n\n",
		sys.Now(), 100*sys.UtilizationIn(0))
	submit(0, 1, 100*units.GB, sys.Now()+1*units.Hour, 500*units.MBps)

	sub, acc, rate := sys.Stats()
	fmt.Printf("\n%d submitted, %d accepted (%.0f%%)\n", sub, acc, 100*rate)
}
