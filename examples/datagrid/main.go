// Datagrid: the paper's motivating scenario (§1, §2.3) end to end.
//
// A data-intensive grid job is CPU + storage + one bulk input transfer:
// the compute reservation at the destination site cannot start before the
// dataset lands, and the storage staging area at the source is held until
// the transfer ends. The completion time of each job is transfer time +
// execution time, and every second of transfer is a second of wasted
// reservation on both ends.
//
// The example schedules the same batch of jobs twice on the §4.3
// platform: once with the MIN BW policy (each transfer crawls at the
// minimum rate its window allows) and once with the f=0.8 tuning factor.
// It then compares accept rates, job completion times and the
// reservation-hours wasted while data was in flight — the trade-off the
// tuning factor exists to navigate.
//
// Run with: go run ./examples/datagrid
package main

import (
	"fmt"
	"log"
	"os"

	"gridbw/internal/metrics"
	"gridbw/internal/policy"
	"gridbw/internal/report"
	"gridbw/internal/request"
	"gridbw/internal/rng"
	"gridbw/internal/sched"
	"gridbw/internal/sched/flexible"
	"gridbw/internal/topology"
	"gridbw/internal/units"
)

// job couples a transfer request with the compute time that follows it.
type job struct {
	req     request.Request
	compute units.Time
}

// makeJobs builds a reproducible batch of data-grid jobs: input datasets
// of tens to hundreds of gigabytes, host caps in the §5.3 range, windows
// with enough slack that the scheduler has real freedom, and an hour-ish
// of computation after the data lands.
func makeJobs(n int, seed int64) []job {
	src := rng.New(seed)
	vols := []units.Volume{50 * units.GB, 100 * units.GB, 200 * units.GB, 500 * units.GB}
	jobs := make([]job, n)
	for i := range jobs {
		vol := rng.Choice(src, vols)
		cap := units.Bandwidth(src.Uniform(100, 1000)) * units.MBps
		arrive := units.Time(src.Uniform(0, 600))
		window := vol.Over(cap) * units.Time(src.Uniform(2, 4))
		jobs[i] = job{
			req: request.Request{
				ID:      request.ID(i),
				Ingress: topology.PointID(src.Intn(10)),
				Egress:  topology.PointID(src.Intn(10)),
				Start:   arrive,
				Finish:  arrive + window,
				Volume:  vol,
				MaxRate: cap,
			},
			compute: units.Time(src.Uniform(30, 90)) * units.Minute,
		}
	}
	return jobs
}

func main() {
	jobs := makeJobs(120, 2006)
	reqs := make([]request.Request, len(jobs))
	for i, j := range jobs {
		reqs[i] = j.req
	}
	set := request.MustNewSet(reqs)
	net := topology.Uniform(10, 10, 1*units.GBps)

	type summary struct {
		label          string
		acceptRate     float64
		meanCompletion units.Time // transfer + compute, accepted jobs
		wastedHours    float64    // reservation-hours held during transfers
	}
	evaluate := func(label string, s sched.Scheduler) summary {
		out, err := s.Schedule(net, set)
		if err != nil {
			log.Fatal(err)
		}
		if err := out.Verify(); err != nil {
			log.Fatalf("%s produced an infeasible schedule: %v", label, err)
		}
		var completion units.Time
		var wasted float64
		n := 0
		for _, d := range out.Decisions() {
			if !d.Accepted {
				continue
			}
			j := jobs[int(d.Request)]
			transferEnd := d.Grant.Tau
			completion += (transferEnd - j.req.Start) + j.compute
			// Both the source staging area and the destination compute
			// slot sit reserved while the data is in flight.
			wasted += 2 * float64(d.Grant.Duration()) / float64(units.Hour)
			n++
		}
		m := metrics.Evaluate(out, 0)
		sum := summary{label: label, acceptRate: m.AcceptRate}
		if n > 0 {
			sum.meanCompletion = completion / units.Time(n)
			sum.wastedHours = wasted / float64(n)
		}
		return sum
	}

	results := []summary{
		evaluate("window(300)/minbw", flexible.Window{Policy: policy.MinRate(), Step: 300}),
		evaluate("window(300)/f=0.8", flexible.Window{Policy: policy.FractionMaxRate(0.8), Step: 300}),
	}

	t := &report.Table{
		Title:   "Data-grid co-scheduling: MIN BW vs tuning factor f=0.8",
		Headers: []string{"policy", "accept rate", "mean job completion", "mean reservation-hours in flight"},
	}
	for _, r := range results {
		t.AddRow(r.label,
			fmt.Sprintf("%.3f", r.acceptRate),
			r.meanCompletion.String(),
			fmt.Sprintf("%.2f h", r.wastedHours))
	}
	if err := t.Fprint(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("Reading: f=0.8 trades a few accepted jobs for much faster transfers,")
	fmt.Println("cutting both job completion time and the CPU/storage reservation-hours")
	fmt.Println("burned while data is in flight (§2.3 of the paper).")
}
