// Tuning: sweep the §2.3 tuning factor f and print the trade-off curve.
//
// The grid operator's knob: f=0 grants every accepted transfer only the
// minimum rate its window requires (most acceptances, slowest transfers);
// f=1 grants full host rate (fewer acceptances, fastest transfers, and
// every acceptance is a hard speed guarantee). The paper observes the
// accept-rate penalty is roughly linear in (1−f) when the network is
// underloaded — this example regenerates that curve on a single workload
// so the numbers are easy to inspect.
//
// Run with: go run ./examples/tuning [-arrival 10] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"gridbw/internal/metrics"
	"gridbw/internal/policy"
	"gridbw/internal/report"
	"gridbw/internal/sched/flexible"
	"gridbw/internal/units"
	"gridbw/internal/workload"
)

func main() {
	arrival := flag.Float64("arrival", 10, "mean inter-arrival time in seconds (10 = underloaded)")
	seed := flag.Int64("seed", 42, "workload seed")
	flag.Parse()

	cfg := workload.Default(workload.Flexible)
	cfg.MeanInterArrival = units.Time(*arrival)
	cfg.Horizon = 2000
	reqs, err := cfg.Generate(*seed)
	if err != nil {
		log.Fatal(err)
	}
	net := cfg.Network()
	fmt.Printf("workload: %d flexible requests, offered load %.2f\n\n", reqs.Len(), cfg.OfferedLoad(reqs))

	t := &report.Table{
		Title:   "Tuning factor sweep, WINDOW(400)",
		Headers: []string{"f", "accept rate", "guaranteed rate", "mean granted rate", "mean stretch"},
	}
	var base float64
	for _, f := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		s := flexible.Window{Policy: policy.FractionMaxRate(f), Step: 400}
		out, err := s.Schedule(net, reqs)
		if err != nil {
			log.Fatal(err)
		}
		if err := out.Verify(); err != nil {
			log.Fatal(err)
		}
		m := metrics.Evaluate(out, f)
		if f == 0 {
			base = m.AcceptRate
		}
		t.AddRow(
			fmt.Sprintf("%.1f", f),
			fmt.Sprintf("%.3f", m.AcceptRate),
			fmt.Sprintf("%.3f", m.GuaranteedRate),
			m.MeanGrantedRate.String(),
			fmt.Sprintf("%.2f", m.MeanStretch),
		)
		_ = base
	}
	if err := t.Fprint(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("Reading: as f rises the mean granted rate climbs toward the host caps")
	fmt.Println("and the stretch falls toward 1, while the accept rate pays a penalty")
	fmt.Println("that is roughly linear in (1-f)'s complement — the operator picks the")
	fmt.Println("point matching the infrastructure's workload (§5.3).")
}
