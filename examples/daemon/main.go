// Daemon: drive the gridbwd admission-control daemon over its HTTP API.
//
// It starts the server in-process on a loopback port, then uses the typed
// client package the way grid middleware would: a rigid book-ahead
// reservation for a future maintenance window, a mix of flexible bulk
// transfers granted immediately, an overload rejection once the ingress
// is saturated, and a cancellation that frees the window again.
//
// Run with: go run ./examples/daemon
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"

	"gridbw/internal/server"
	"gridbw/internal/server/client"
	"gridbw/internal/units"
)

func main() {
	srv, err := server.New(server.Config{
		Ingress: []units.Bandwidth{1 * units.GBps, 1 * units.GBps},
		Egress:  []units.Bandwidth{1 * units.GBps, 1 * units.GBps},
		Policy:  "f=0.8",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Shutdown(context.Background())

	ctx := context.Background()
	c := client.New("http://"+ln.Addr().String(), nil)
	fmt.Printf("gridbwd on %s (%s, policy %s)\n\n", ln.Addr(), srv.Network(), srv.PolicyName())

	report := func(what string, d server.ReservationJSON, err error) {
		if err != nil {
			log.Fatalf("%s: %v", what, err)
		}
		if d.Accepted {
			fmt.Printf("%-34s ACCEPTED #%d at %s, window [%gs, %gs]\n",
				what, d.ID, d.Rate, d.SigmaS, d.TauS)
		} else {
			fmt.Printf("%-34s rejected (%s)\n", what, d.Reason)
		}
	}

	// A rigid book-ahead: 360 GB across a maintenance window one hour out.
	// MinRate equals MaxRate, so the daemon books the exact rectangle.
	rigid, err := c.Submit(ctx, server.SubmitRequest{
		From: 0, To: 1, Volume: "360GB", MaxRate: "600MB/s",
		StartIn: "1h", DeadlineIn: "70m",
	})
	report("rigid booking (starts in 1h)", rigid, err)

	// Flexible transfers start immediately at the policy rate f·MaxRate.
	flex, err := c.Submit(ctx, server.SubmitRequest{
		From: 0, To: 0, Volume: "500GB", MaxRate: "1GB/s", DeadlineIn: "30m",
	})
	report("flexible 500GB (0 -> 0)", flex, err)
	d, err := c.Submit(ctx, server.SubmitRequest{
		From: 1, To: 1, Volume: "200GB", MaxRate: "500MB/s", DeadlineIn: "20m",
	})
	report("flexible 200GB (1 -> 1)", d, err)

	// Ingress 0 now carries 800 MB/s; a transfer that needs at least
	// 300 MB/s to meet its deadline no longer fits.
	d, err = c.Submit(ctx, server.SubmitRequest{
		From: 0, To: 0, Volume: "180GB", MaxRate: "1GB/s", DeadlineIn: "10m",
	})
	report("overload 180GB (0 -> 0)", d, err)

	st, err := c.Status(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstatus: %d active, %d booked, %d/%d accepted\n",
		st.Active, st.Booked, st.Accepted, st.Submitted)
	for _, p := range st.Points {
		fmt.Printf("  %s %d: %3.0f%% of %s\n", p.Dir, p.Point,
			100*p.Utilization, units.Bandwidth(p.CapacityBps))
	}

	// Cancelling the big flexible transfer frees ingress 0, and the
	// transfer that was just rejected now gets in.
	cancelled, err := c.Cancel(ctx, flex.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncancelled #%d (state %s)\n", cancelled.ID, cancelled.State)
	d, err = c.Submit(ctx, server.SubmitRequest{
		From: 0, To: 0, Volume: "180GB", MaxRate: "1GB/s", DeadlineIn: "10m",
	})
	report("retry 180GB (0 -> 0)", d, err)
}
