// Reservation: the §5.4 control plane end to end.
//
// A client asks its grid access router for a bulk-transfer reservation;
// the router consults the egress side over the overlay, decides locally,
// and answers with a scheduled window and allocated rate. The grant is
// then enforced at the network edge by a token bucket: a compliant sender
// is untouched while a sender exceeding its allocation sees its excess
// dropped before it can hurt other reserved flows.
//
// Run with: go run ./examples/reservation
package main

import (
	"fmt"
	"log"
	"os"

	"gridbw/internal/overlay"
	"gridbw/internal/policy"
	"gridbw/internal/report"
	"gridbw/internal/tokenbucket"
	"gridbw/internal/units"
	"gridbw/internal/workload"
)

func main() {
	// A moderately busy §5.3 workload over the paper platform.
	cfg := workload.Default(workload.Flexible)
	cfg.MeanInterArrival = 2
	cfg.Horizon = 600
	reqs, err := cfg.Generate(5)
	if err != nil {
		log.Fatal(err)
	}

	rep, err := overlay.Run(cfg.Network(), reqs, overlay.Config{
		ClientRouterDelay: 0.005, // 5 ms to the access router
		RouterRouterDelay: 0.010, // 10 ms across the overlay mesh
		Policy:            policy.FractionMaxRate(1),
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := rep.Outcome.Verify(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("control plane: %d reservation requests, %d simulator events\n",
		len(rep.Reservations), rep.EventsFired)
	fmt.Printf("accept rate %.2f, mean reservation RTT %v, RTT/transfer ratio %.2e\n\n",
		rep.AcceptRate(), rep.MeanRTT(), rep.MeanOverheadRatio())

	// Show the first few reservation traces.
	t := &report.Table{
		Title:   "First reservations",
		Headers: []string{"req", "submitted", "decided", "replied", "outcome"},
	}
	for _, r := range rep.Reservations[:6] {
		outcome := "reject: " + r.Reason
		if r.Accepted {
			outcome = fmt.Sprintf("grant %v until %v", r.Grant.Bandwidth, r.Grant.Tau)
		}
		t.AddRow(fmt.Sprintf("%d", r.Request), r.SubmittedAt.String(),
			r.DecidedAt.String(), r.RepliedAt.String(), outcome)
	}
	if err := t.Fprint(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Enforcement: pick the first accepted grant and shape traffic
	// against it — once as a compliant sender, once as a cheater sending
	// at twice the allocation.
	var granted units.Bandwidth
	for _, r := range rep.Reservations {
		if r.Accepted {
			granted = r.Grant.Bandwidth
			break
		}
	}
	if granted == 0 {
		log.Fatal("no reservation accepted")
	}
	burst := granted.For(1 * units.Second) // one second of tokens
	chunk := 10 * units.MB

	good, err := tokenbucket.Shape(tokenbucket.NewBucket(granted, burst, 0), 0, 300, granted, chunk)
	if err != nil {
		log.Fatal(err)
	}
	cheat, err := tokenbucket.Shape(tokenbucket.NewBucket(granted, burst, 0), 0, 300, 2*granted, chunk)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	e := &report.Table{
		Title:   fmt.Sprintf("Edge enforcement of a %v grant (token bucket, 1 s burst)", granted),
		Headers: []string{"sender", "offered", "delivered", "dropped", "drop events"},
	}
	e.AddRow("compliant", good.Offered.String(), good.Delivered.String(),
		good.Dropped.String(), fmt.Sprintf("%d", good.DropEvents))
	e.AddRow("cheating (2x)", cheat.Offered.String(), cheat.Delivered.String(),
		cheat.Dropped.String(), fmt.Sprintf("%d", cheat.DropEvents))
	if err := e.Fprint(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("Reading: reservation signalling costs ~30 ms against transfers lasting")
	fmt.Println("minutes to hours, and the token bucket confines a misbehaving flow to")
	fmt.Println("its allocation, protecting every other reservation (§5.4).")
}
