module gridbw

go 1.22
