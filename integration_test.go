package gridbw

// Cross-package integration tests: these exercise whole pipelines the way
// a downstream user would — generate a workload, schedule it through the
// public registry, verify, measure, serialize, reload — and pin the
// cross-implementation equivalences (centralized vs overlay vs
// distributed admission) that individual package tests cannot see.

import (
	"bytes"
	"testing"

	"gridbw/internal/core"
	"gridbw/internal/distributed"
	"gridbw/internal/exact"
	"gridbw/internal/hotspot"
	"gridbw/internal/metrics"
	"gridbw/internal/overlay"
	"gridbw/internal/policy"
	"gridbw/internal/request"
	"gridbw/internal/rng"
	"gridbw/internal/threedm"
	"gridbw/internal/topology"
	"gridbw/internal/trace"
	"gridbw/internal/units"
	"gridbw/internal/workload"
)

// TestEndToEndRegistryPipeline runs every public scheduler spec over its
// matching workload and pushes the result through metrics, hot-spot
// analysis and the trace round trip.
func TestEndToEndRegistryPipeline(t *testing.T) {
	rigidCfg := workload.Default(workload.Rigid)
	rigidCfg.Horizon = 300
	flexCfg := workload.Default(workload.Flexible)
	flexCfg.Horizon = 300

	cases := []struct {
		spec string
		cfg  workload.Config
	}{
		{"fcfs", rigidCfg},
		{"cumulated-slots", rigidCfg},
		{"minbw-slots", rigidCfg},
		{"minvol-slots", rigidCfg},
		{"greedy:minbw", flexCfg},
		{"greedy:f=0.8", flexCfg},
		{"window:100:f=1", flexCfg},
		{"window-retry:100:f=1", flexCfg},
	}
	for _, tc := range cases {
		t.Run(tc.spec, func(t *testing.T) {
			s, err := core.NewScheduler(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			reqs, err := tc.cfg.Generate(17)
			if err != nil {
				t.Fatal(err)
			}
			net := tc.cfg.Network()
			out, err := s.Schedule(net, reqs)
			if err != nil {
				t.Fatal(err)
			}
			if err := out.Verify(); err != nil {
				t.Fatalf("infeasible: %v", err)
			}

			m := metrics.Evaluate(out, 0.8)
			if m.Requests != reqs.Len() || m.AcceptRate < 0 || m.AcceptRate > 1 {
				t.Fatalf("metrics = %+v", m)
			}

			rep := hotspot.Analyze(out)
			if got := len(rep.Ingress) + len(rep.Egress); got != 20 {
				t.Fatalf("hotspot points = %d", got)
			}
			if rep.Imbalance < 0 || rep.Imbalance > 1 {
				t.Fatalf("imbalance = %v", rep.Imbalance)
			}

			// Trace round trip preserves the decisions bit-exactly enough
			// to re-verify.
			var wbuf, obuf bytes.Buffer
			if err := trace.SaveWorkload(&wbuf, net, reqs, "it"); err != nil {
				t.Fatal(err)
			}
			if err := trace.SaveOutcome(&obuf, out); err != nil {
				t.Fatal(err)
			}
			net2, reqs2, _, err := trace.LoadWorkload(&wbuf)
			if err != nil {
				t.Fatal(err)
			}
			out2, err := trace.LoadOutcome(&obuf, net2, reqs2)
			if err != nil {
				t.Fatal(err)
			}
			if out2.AcceptedCount() != out.AcceptedCount() {
				t.Fatalf("round trip changed accepts: %d vs %d",
					out2.AcceptedCount(), out.AcceptedCount())
			}
		})
	}
}

// TestThreeAdmissionPlanesAgree: the §5 greedy scheduler, the §5.4
// overlay control plane with zero latency, and the distributed protocol
// with read-through state and zero delay are three implementations of the
// same admission discipline — they must accept identical request sets.
func TestThreeAdmissionPlanesAgree(t *testing.T) {
	cfg := workload.Default(workload.Flexible)
	cfg.Horizon = 500
	reqs, err := cfg.Generate(23)
	if err != nil {
		t.Fatal(err)
	}
	net := cfg.Network()
	p := policy.FractionMaxRate(1)

	gs, err := core.NewScheduler("greedy:f=1")
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := gs.Schedule(net, reqs)
	if err != nil {
		t.Fatal(err)
	}
	ov, err := overlay.Run(net, reqs, overlay.Config{Policy: p})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := distributed.Run(net, reqs, distributed.Config{Policy: p})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < reqs.Len(); i++ {
		id := reqs.All()[i].ID
		g := greedy.Decision(id).Accepted
		o := ov.Outcome.Decision(id).Accepted
		d := dist.Outcome.Decision(id).Accepted
		if g != o || g != d {
			t.Fatalf("request %d: greedy=%v overlay=%v distributed=%v", id, g, o, d)
		}
	}
}

// TestNPCompletenessPipeline drives the Theorem-1 machinery end to end on
// a planted instance: matching → forward schedule at exactly K → exact
// solver confirms → matching extracted back.
func TestNPCompletenessPipeline(t *testing.T) {
	inst := threedm.RandomPlanted(3, 4, 99)
	sel, ok := inst.BruteForce()
	if !ok {
		t.Fatal("planted matching missing")
	}
	red, err := threedm.Reduce(inst)
	if err != nil {
		t.Fatal(err)
	}
	fwd, err := red.ScheduleFromMatching(sel)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := exact.VerifyUnit(red.Unit, fwd); err != nil || n != red.K {
		t.Fatalf("forward schedule: n=%d err=%v", n, err)
	}
	opt, assign, err := exact.MaxUnit(red.Unit, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt != red.K {
		t.Fatalf("optimum %d != K %d on planted instance", opt, red.K)
	}
	back, err := red.ExtractMatching(assign)
	if err != nil {
		t.Fatal(err)
	}
	if !inst.IsMatching(back) {
		t.Fatal("extracted selection is not a matching")
	}
}

// TestSystemLongRunningSession drives the on-line System through a long
// random session, asserting the utilization invariant at every step.
func TestSystemLongRunningSession(t *testing.T) {
	sys, err := core.NewSystem(core.Config{
		Ingress: []units.Bandwidth{1 * units.GBps, 500 * units.MBps, 2 * units.GBps},
		Egress:  []units.Bandwidth{1 * units.GBps, 1 * units.GBps, 250 * units.MBps},
		Policy:  "f=0.8",
	})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(31)
	now := units.Time(0)
	for step := 0; step < 2000; step++ {
		now += units.Time(src.Uniform(0, 10))
		if err := sys.AdvanceTo(now); err != nil {
			t.Fatal(err)
		}
		vol := units.Volume(src.Intn(200)+1) * units.GB
		rate := units.Bandwidth(src.Intn(900)+100) * units.MBps
		dur := vol.Over(rate) * units.Time(src.Uniform(1.1, 4))
		_, err := sys.Submit(core.Transfer{
			From: src.Intn(3), To: src.Intn(3),
			Volume: vol, Deadline: now + dur, MaxRate: rate,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if u := sys.UtilizationIn(i); u < 0 || u > 1+1e-9 {
				t.Fatalf("step %d: ingress %d utilization %v", step, i, u)
			}
			if u := sys.UtilizationOut(i); u < 0 || u > 1+1e-9 {
				t.Fatalf("step %d: egress %d utilization %v", step, i, u)
			}
		}
	}
	sub, acc, rate := sys.Stats()
	if sub != 2000 || acc == 0 || acc > sub || rate <= 0 {
		t.Fatalf("stats = %d, %d, %v", sub, acc, rate)
	}
	t.Logf("session: %d submitted, %d accepted (%.1f%%)", sub, acc, 100*rate)
}

// --- metamorphic properties --------------------------------------------

// transformWorkload applies value scaling and a time shift to a request
// set, returning the transformed copy.
func transformWorkload(t *testing.T, reqs []request.Request, volScale, rateScale float64, shift units.Time) *request.Set {
	t.Helper()
	out := make([]request.Request, len(reqs))
	for i, r := range reqs {
		out[i] = request.Request{
			ID:      r.ID,
			Ingress: r.Ingress,
			Egress:  r.Egress,
			Start:   r.Start + shift,
			Finish:  r.Finish + shift,
			Volume:  units.Volume(float64(r.Volume) * volScale),
			MaxRate: units.Bandwidth(float64(r.MaxRate) * rateScale),
		}
	}
	set, err := request.NewSet(out)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// TestMetamorphicScaleInvariance: multiplying every capacity, volume and
// rate by the same constant must not change any accept/reject decision —
// the schedulers are unit-free. Catches lost or doubled unit conversions.
func TestMetamorphicScaleInvariance(t *testing.T) {
	cfg := workload.Default(workload.Flexible)
	cfg.Horizon = 300
	reqs, err := cfg.Generate(41)
	if err != nil {
		t.Fatal(err)
	}
	const k = 3.25
	net := cfg.Network()
	scaledNet := topology.Uniform(cfg.NumIngress, cfg.NumEgress,
		units.Bandwidth(float64(cfg.PointCapacity)*k))
	scaledSet := transformWorkload(t, reqs.All(), k, k, 0)

	for _, spec := range []string{"greedy:f=1", "greedy:minbw", "window:100:f=0.8"} {
		s, err := core.NewScheduler(spec)
		if err != nil {
			t.Fatal(err)
		}
		base, err := s.Schedule(net, reqs)
		if err != nil {
			t.Fatal(err)
		}
		scaled, err := s.Schedule(scaledNet, scaledSet)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < reqs.Len(); i++ {
			id := reqs.All()[i].ID
			if base.Decision(id).Accepted != scaled.Decision(id).Accepted {
				t.Fatalf("%s: request %d decision changed under uniform scaling", spec, id)
			}
		}
	}
}

// TestMetamorphicTimeShiftInvariance: shifting every window by a constant
// must not change decisions (all heuristics are relative-time).
func TestMetamorphicTimeShiftInvariance(t *testing.T) {
	cfg := workload.Default(workload.Rigid)
	cfg.Horizon = 300
	reqs, err := cfg.Generate(43)
	if err != nil {
		t.Fatal(err)
	}
	net := cfg.Network()
	shifted := transformWorkload(t, reqs.All(), 1, 1, 5000)

	for _, spec := range []string{"fcfs", "cumulated-slots", "minbw-slots", "minvol-slots"} {
		s, err := core.NewScheduler(spec)
		if err != nil {
			t.Fatal(err)
		}
		base, err := s.Schedule(net, reqs)
		if err != nil {
			t.Fatal(err)
		}
		moved, err := s.Schedule(net, shifted)
		if err != nil {
			t.Fatal(err)
		}
		if base.AcceptedCount() != moved.AcceptedCount() {
			t.Fatalf("%s: accepted %d vs %d after time shift", spec,
				base.AcceptedCount(), moved.AcceptedCount())
		}
		for i := 0; i < reqs.Len(); i++ {
			id := reqs.All()[i].ID
			if base.Decision(id).Accepted != moved.Decision(id).Accepted {
				t.Fatalf("%s: request %d decision changed under time shift", spec, id)
			}
		}
	}
}
