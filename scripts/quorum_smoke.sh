#!/usr/bin/env bash
# quorum_smoke.sh — end-to-end quorum failover smoke over a real 3-node
# group: a sync-ack primary and two WAL-backed followers, all separate
# processes with race-enabled daemons, under an armed open-loop load run.
#
#   1. primary on :18180 with -peers -repl-sync=quorum (admissions park
#      until a group majority holds the WAL frame)
#   2. both followers run the in-process watchdog; their -watch-misses
#      are staggered (2 vs 10) so the fast one elects first and the slow
#      one only gets a turn if the fast one is vote-denied for being the
#      less caught-up candidate — whichever wins, exactly one lineage
#   3. gridbwload drives all three endpoints with -fail-on armed while
#      the primary is SIGKILLed mid-plateau: the gate stays green only
#      if the client re-converges on the majority-promoted follower
#
# The script exits nonzero if no follower promotes, if both do (split
# brain), if the promoted follower is not at epoch 2, or if the load
# run's gate trips.
set -euo pipefail
cd "$(dirname "$0")/.."

P_ADDR=127.0.0.1:18180
F1_ADDR=127.0.0.1:18181
F2_ADDR=127.0.0.1:18182
P="http://${P_ADDR}"
F1="http://${F1_ADDR}"
F2="http://${F2_ADDR}"

WORK="$(mktemp -d)"
PIDS=()
cleanup() {
	kill ${PIDS[@]+"${PIDS[@]}"} 2>/dev/null || true
	wait 2>/dev/null || true
	rm -rf "${WORK}"
}
trap cleanup EXIT

wait_healthz() {
	for _ in $(seq 1 100); do
		curl -fsS "$1/v1/healthz" >/dev/null 2>&1 && return 0
		sleep 0.1
	done
	echo "timeout waiting for $1/v1/healthz" >&2
	return 1
}

repl_status() {
	curl -fsS "$1/v1/replication/status" 2>/dev/null || true
}

echo "== build (daemon race-enabled) =="
go build -race -o "${WORK}/gridbwd" ./cmd/gridbwd
go build -o "${WORK}/gridbwload" ./cmd/gridbwload

echo "== start the 3-node group =="
"${WORK}/gridbwd" -addr "${P_ADDR}" -wal "${WORK}/pwal" \
	-ingress 1GB/s,1GB/s -egress 1GB/s,1GB/s \
	-repl-id "${P}" -peers "${F1},${F2}" \
	-repl-sync=quorum -repl-sync-timeout 5s \
	>"${WORK}/p.log" 2>&1 &
PRIMARY_PID=$!
PIDS+=("${PRIMARY_PID}")
wait_healthz "${P}"

"${WORK}/gridbwd" -addr "${F1_ADDR}" -wal "${WORK}/f1wal" \
	-ingress 1GB/s,1GB/s -egress 1GB/s,1GB/s \
	-follow "${P}" -repl-id "${F1}" \
	-watch -watch-interval 250ms -watch-misses 2 -peers "${P},${F2}" \
	>"${WORK}/f1.log" 2>&1 &
PIDS+=($!)

"${WORK}/gridbwd" -addr "${F2_ADDR}" -wal "${WORK}/f2wal" \
	-ingress 1GB/s,1GB/s -egress 1GB/s,1GB/s \
	-follow "${P}" -repl-id "${F2}" \
	-watch -watch-interval 250ms -watch-misses 10 -peers "${P},${F1}" \
	>"${WORK}/f2.log" 2>&1 &
PIDS+=($!)

wait_healthz "${F1}"
wait_healthz "${F2}"

echo "== start the armed load run across all three endpoints =="
"${WORK}/gridbwload" -target "${P},${F1},${F2}" \
	-vus 400 -rate 100 -ramp-up 1s -duration 12s -ramp-down 1s \
	-timeout 2s -retries 8 \
	-output "${WORK}/quorum_smoke.json" \
	-fail-on 'errors<30%,p50<1s,drops<=10%' \
	>"${WORK}/load.log" 2>&1 &
LOAD_PID=$!

sleep 4
echo "== SIGKILL the primary mid-plateau =="
kill -9 "${PRIMARY_PID}"

NEW=""
for _ in $(seq 1 150); do
	for cand in "${F1}" "${F2}"; do
		if repl_status "${cand}" | grep -q '"role":"primary"'; then
			NEW="${cand}"
			break 2
		fi
	done
	sleep 0.1
done
if [ -z "${NEW}" ]; then
	echo "no follower promoted within 15s of the kill" >&2
	tail -20 "${WORK}/f1.log" "${WORK}/f2.log" >&2
	exit 1
fi
echo "majority-promoted: ${NEW}"

if ! repl_status "${NEW}" | grep -q '"epoch":2'; then
	echo "promoted follower is not at fencing epoch 2:" >&2
	repl_status "${NEW}" >&2
	exit 1
fi

# Exactly one lineage: the follower that lost (or never ran) the election
# must still be a follower, held by the majority gate.
OTHER="${F2}"
if [ "${NEW}" = "${F2}" ]; then
	OTHER="${F1}"
fi
sleep 2
if repl_status "${OTHER}" | grep -q '"role":"primary"'; then
	echo "split brain: both followers claim primary" >&2
	repl_status "${F1}" >&2
	repl_status "${F2}" >&2
	exit 1
fi

if ! wait "${LOAD_PID}"; then
	echo "gridbwload gate violated across the kill/promote cycle:" >&2
	tail -20 "${WORK}/load.log" >&2
	exit 1
fi
tail -5 "${WORK}/load.log"

echo "quorum smoke OK: one majority-gated promotion to epoch 2, load gate green through the failover"
