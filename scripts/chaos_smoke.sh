#!/usr/bin/env bash
# chaos_smoke.sh — end-to-end chaos smoke over a real 3-node quorum
# group with every boundary perturbed at once:
#
#   1. primary on :18280 with -repl-sync=quorum; follower f1 pulls its
#      replication stream THROUGH a gridbwchaos TCP proxy and runs with
#      -chaos-disk armed (seeded fsync failures and short writes on its
#      own WAL); follower f2 pulls through a second, healthy proxy
#   2. gridbwload drives durable submissions through a third chaos proxy
#      in front of the primary, recording every client-observed
#      operation with -history
#   3. mid-plateau the f1 replication link gets latency+jitter, then a
#      full partition, then heals — all via the gridbwchaos admin API
#   4. after the run, gridbwcheck replays the client history against the
#      primary's WAL: every "replicated" ack must be in the log, no
#      idempotency key admitted twice, no capacity oversubscribed
#
# The script exits nonzero if the load gate trips or the checker finds
# any invariant violation.
set -euo pipefail
cd "$(dirname "$0")/.."

P_ADDR=127.0.0.1:18280
F1_ADDR=127.0.0.1:18281
F2_ADDR=127.0.0.1:18282
CLIENT_LINK=127.0.0.1:18283
F1_LINK=127.0.0.1:18284
F2_LINK=127.0.0.1:18285
CHAOS_ADMIN=127.0.0.1:18286
P="http://${P_ADDR}"
F1="http://${F1_ADDR}"
F2="http://${F2_ADDR}"

WORK="$(mktemp -d)"
PIDS=()
cleanup() {
	kill ${PIDS[@]+"${PIDS[@]}"} 2>/dev/null || true
	wait 2>/dev/null || true
	rm -rf "${WORK}"
}
trap cleanup EXIT

wait_healthz() {
	for _ in $(seq 1 100); do
		curl -fsS "$1/v1/healthz" >/dev/null 2>&1 && return 0
		sleep 0.1
	done
	echo "timeout waiting for $1/v1/healthz" >&2
	return 1
}

chaos_rules() { # link, json rules
	curl -fsS -X PUT -d "$2" "http://${CHAOS_ADMIN}/v1/links/$1/rules" >/dev/null
}

echo "== build (daemon race-enabled) =="
go build -race -o "${WORK}/gridbwd" ./cmd/gridbwd
go build -o "${WORK}/gridbwload" ./cmd/gridbwload
go build -o "${WORK}/gridbwchaos" ./cmd/gridbwchaos
go build -o "${WORK}/gridbwcheck" ./cmd/gridbwcheck

echo "== start the chaos proxies =="
"${WORK}/gridbwchaos" -admin "${CHAOS_ADMIN}" \
	-link "client=>${CLIENT_LINK}=>${P_ADDR}" \
	-link "pull-f1=>${F1_LINK}=>${P_ADDR}" \
	-link "pull-f2=>${F2_LINK}=>${P_ADDR}" \
	>"${WORK}/chaos.log" 2>&1 &
PIDS+=($!)
for _ in $(seq 1 50); do
	curl -fsS "http://${CHAOS_ADMIN}/v1/links" >/dev/null 2>&1 && break
	sleep 0.1
done

echo "== start the 3-node group (f1 with seeded disk faults) =="
"${WORK}/gridbwd" -addr "${P_ADDR}" -wal "${WORK}/pwal" \
	-ingress 1GB/s,1GB/s -egress 1GB/s,1GB/s \
	-repl-id "${P}" -peers "${F1},${F2}" \
	-repl-sync=quorum -repl-sync-timeout 5s \
	>"${WORK}/p.log" 2>&1 &
PIDS+=($!)
wait_healthz "${P}"

"${WORK}/gridbwd" -addr "${F1_ADDR}" -wal "${WORK}/f1wal" \
	-ingress 1GB/s,1GB/s -egress 1GB/s,1GB/s \
	-follow "http://${F1_LINK}" -repl-id "${F1}" \
	-chaos-disk "seed=7,fsync=0.02,short=0.01" \
	>"${WORK}/f1.log" 2>&1 &
PIDS+=($!)

"${WORK}/gridbwd" -addr "${F2_ADDR}" -wal "${WORK}/f2wal" \
	-ingress 1GB/s,1GB/s -egress 1GB/s,1GB/s \
	-follow "http://${F2_LINK}" -repl-id "${F2}" \
	>"${WORK}/f2.log" 2>&1 &
PIDS+=($!)

wait_healthz "${F1}"
wait_healthz "${F2}"

echo "== start the armed durable load run through the client chaos link =="
"${WORK}/gridbwload" -target "http://${CLIENT_LINK}" \
	-vus 200 -rate 50 -ramp-up 1s -duration 12s -ramp-down 1s \
	-timeout 6s -retries 8 -durable \
	-history "${WORK}/history.jsonl" \
	-output "${WORK}/chaos_smoke.json" \
	-fail-on 'errors<30%,drops<=10%' \
	>"${WORK}/load.log" 2>&1 &
LOAD_PID=$!

sleep 3
echo "== perturb the f1 replication link: latency, then partition, then heal =="
# latency/jitter are Go time.Duration values: nanoseconds (20ms + 30ms).
chaos_rules pull-f1 '{"latency":20000000,"jitter":30000000}'
sleep 3
chaos_rules pull-f1 '{"cut_to_target":true,"cut_to_client":true}'
sleep 3
curl -fsS -X POST "http://${CHAOS_ADMIN}/v1/heal" >/dev/null

if ! wait "${LOAD_PID}"; then
	echo "gridbwload gate violated under chaos:" >&2
	tail -20 "${WORK}/load.log" >&2
	exit 1
fi
tail -5 "${WORK}/load.log"

echo "== stop the group and run the invariant checker =="
kill ${PIDS[@]+"${PIDS[@]}"} 2>/dev/null || true
wait 2>/dev/null || true
PIDS=()

if ! "${WORK}/gridbwcheck" -history "${WORK}/history.jsonl" -wal "${WORK}/pwal" \
	-ingress 1GB/s,1GB/s -egress 1GB/s,1GB/s; then
	echo "invariant checker found violations; daemon logs:" >&2
	tail -20 "${WORK}/p.log" "${WORK}/f1.log" >&2
	exit 1
fi

echo "chaos smoke OK: durable load through partitions and disk faults, client history clean"
