#!/usr/bin/env bash
# router_smoke.sh — end-to-end router-tier smoke over two real shard
# groups: shard s0 is a 3-node quorum group (sync-ack primary, two
# watchdog followers), shard s1 a single WAL-backed daemon, with a
# gridbwrouter consistent-hashing 4×4 access-point pairs across them.
#
#   1. all daemons and the router run race-enabled as separate processes
#   2. gridbwload drives the ROUTER with -history armed: same-shard pairs
#      proxy straight through, cross-shard pairs commit via the HTTP
#      two-phase hold protocol
#   3. s0's primary is SIGKILLed mid-plateau: the router's failover
#      client must re-converge on the majority-promoted follower and the
#      load gate must stay green
#   4. gridbwcheck replays the client history against BOTH surviving
#      WALs (promoted follower's + s1's, in ring order): per-shard
#      no-oversubscription and idempotency on decoded local IDs, every
#      cross-shard hold committed on both owners or neither, every
#      cross_shard-acked admission backed by a committed ingress hold
#
# The script exits nonzero on a failed promotion, a tripped load gate,
# any checker violation, or a run that exercised no cross-shard pair
# (which would mean the ring or the marker plumbing is broken).
set -euo pipefail
cd "$(dirname "$0")/.."

P_ADDR=127.0.0.1:18190
F1_ADDR=127.0.0.1:18191
F2_ADDR=127.0.0.1:18192
S1_ADDR=127.0.0.1:18193
RT_ADDR=127.0.0.1:18194
P="http://${P_ADDR}"
F1="http://${F1_ADDR}"
F2="http://${F2_ADDR}"
S1="http://${S1_ADDR}"
RT="http://${RT_ADDR}"

CAPS=1GB/s,1GB/s,1GB/s,1GB/s

WORK="$(mktemp -d)"
PIDS=()
cleanup() {
	kill ${PIDS[@]+"${PIDS[@]}"} 2>/dev/null || true
	wait 2>/dev/null || true
	rm -rf "${WORK}"
}
trap cleanup EXIT

wait_healthz() {
	for _ in $(seq 1 100); do
		curl -fsS "$1/v1/healthz" >/dev/null 2>&1 && return 0
		sleep 0.1
	done
	echo "timeout waiting for $1/v1/healthz" >&2
	return 1
}

repl_status() {
	curl -fsS "$1/v1/replication/status" 2>/dev/null || true
}

echo "== build (daemon and router race-enabled) =="
go build -race -o "${WORK}/gridbwd" ./cmd/gridbwd
go build -race -o "${WORK}/gridbwrouter" ./cmd/gridbwrouter
go build -o "${WORK}/gridbwload" ./cmd/gridbwload
go build -o "${WORK}/gridbwcheck" ./cmd/gridbwcheck

echo "== start shard s0: 3-node quorum group =="
"${WORK}/gridbwd" -addr "${P_ADDR}" -wal "${WORK}/pwal" \
	-ingress "${CAPS}" -egress "${CAPS}" \
	-repl-id "${P}" -peers "${F1},${F2}" \
	-repl-sync=quorum -repl-sync-timeout 5s \
	>"${WORK}/p.log" 2>&1 &
PRIMARY_PID=$!
PIDS+=("${PRIMARY_PID}")
wait_healthz "${P}"

"${WORK}/gridbwd" -addr "${F1_ADDR}" -wal "${WORK}/f1wal" \
	-ingress "${CAPS}" -egress "${CAPS}" \
	-follow "${P}" -repl-id "${F1}" \
	-watch -watch-interval 250ms -watch-misses 2 -peers "${P},${F2}" \
	>"${WORK}/f1.log" 2>&1 &
PIDS+=($!)

"${WORK}/gridbwd" -addr "${F2_ADDR}" -wal "${WORK}/f2wal" \
	-ingress "${CAPS}" -egress "${CAPS}" \
	-follow "${P}" -repl-id "${F2}" \
	-watch -watch-interval 250ms -watch-misses 10 -peers "${P},${F1}" \
	>"${WORK}/f2.log" 2>&1 &
PIDS+=($!)

echo "== start shard s1: single daemon =="
"${WORK}/gridbwd" -addr "${S1_ADDR}" -wal "${WORK}/s1wal" \
	-ingress "${CAPS}" -egress "${CAPS}" \
	>"${WORK}/s1.log" 2>&1 &
PIDS+=($!)

wait_healthz "${F1}"
wait_healthz "${F2}"
wait_healthz "${S1}"

echo "== start the router over both shard groups =="
"${WORK}/gridbwrouter" -addr "${RT_ADDR}" \
	-shard "s0=${P},${F1},${F2}" -shard "s1=${S1}" \
	-timeout 2s \
	>"${WORK}/rt.log" 2>&1 &
PIDS+=($!)
wait_healthz "${RT}"

echo "== start the armed load run through the router =="
"${WORK}/gridbwload" -target "${RT}" \
	-vus 200 -rate 80 -ramp-up 1s -duration 12s -ramp-down 1s \
	-ingress-points 4 -egress-points 4 \
	-timeout 2s -retries 8 \
	-history "${WORK}/history.jsonl" \
	-output "${WORK}/router_smoke.json" \
	-fail-on 'errors<30%,p50<1s,drops<=10%' \
	>"${WORK}/load.log" 2>&1 &
LOAD_PID=$!

sleep 4
echo "== SIGKILL shard s0's primary mid-plateau =="
kill -9 "${PRIMARY_PID}"

NEW=""
NEW_WAL=""
for _ in $(seq 1 150); do
	if repl_status "${F1}" | grep -q '"role":"primary"'; then
		NEW="${F1}" NEW_WAL="${WORK}/f1wal"
		break
	fi
	if repl_status "${F2}" | grep -q '"role":"primary"'; then
		NEW="${F2}" NEW_WAL="${WORK}/f2wal"
		break
	fi
	sleep 0.1
done
if [ -z "${NEW}" ]; then
	echo "no s0 follower promoted within 15s of the kill" >&2
	tail -20 "${WORK}/f1.log" "${WORK}/f2.log" >&2
	exit 1
fi
echo "s0 majority-promoted: ${NEW}"

if ! wait "${LOAD_PID}"; then
	echo "gridbwload gate violated across the kill/promote cycle:" >&2
	tail -20 "${WORK}/load.log" >&2
	exit 1
fi
tail -5 "${WORK}/load.log"

if ! grep -q '"routed":"cross_shard"' "${WORK}/history.jsonl"; then
	echo "no cross-shard admission in the whole run: ring or marker plumbing is broken" >&2
	exit 1
fi
echo "cross-shard admissions observed: $(grep -c '"routed":"cross_shard"' "${WORK}/history.jsonl")"

echo "== replay the client history against both surviving WALs =="
# Ring order = the router's -shard order: s0 (the promoted follower's
# replicated WAL is its history of record), then s1.
"${WORK}/gridbwcheck" -history "${WORK}/history.jsonl" \
	-wal "${NEW_WAL}" -wal "${WORK}/s1wal" \
	-ingress "${CAPS}" -egress "${CAPS}"

echo "router smoke OK: failover mid-load, gate green, multi-WAL invariants clean"
