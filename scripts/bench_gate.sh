#!/usr/bin/env bash
# bench_gate.sh — re-run the server-path benchmarks and fail if they
# regressed against the committed perf-trajectory snapshot.
#
# Usage:
#   scripts/bench_gate.sh [name] [go-bench-regex]
#
#   name    snapshot to gate against: BENCH_<name>.json (default: server)
#   regex   forwarded to bench.sh (default: bench.sh's own default)
#
# Environment:
#   TOLERANCE    fractional ns/op headroom before failing (default 0.60).
#                ns/op is machine-dependent — the committed snapshot was
#                taken on one box, CI runs on another — so this gate only
#                catches step-function slowdowns, not percent-level drift.
#   ALLOC_SLACK  absolute allocs/op headroom (default 2). allocs/op is
#                machine-independent, so this is the strong gate: a
#                reintroduced per-op allocation fails CI everywhere.
#   BENCHTIME, COUNT  forwarded to bench.sh (defaults 200x / 3).
#
# Exit status is nonzero on any regression, missing benchmark, or
# malformed snapshot; the delta table is always printed.
set -euo pipefail
cd "$(dirname "$0")/.."

NAME="${1:-server}"
BASE="BENCH_${NAME}.json"
if [ ! -f "${BASE}" ]; then
	echo "bench_gate: no committed snapshot ${BASE}" >&2
	exit 1
fi

FRESH="gate_${NAME}"
cleanup() { rm -f "BENCH_${FRESH}.json"; }
trap cleanup EXIT
if [ $# -ge 2 ]; then
	scripts/bench.sh "${FRESH}" "$2"
else
	scripts/bench.sh "${FRESH}"
fi

python3 - "${BASE}" "BENCH_${FRESH}.json" <<'EOF'
import json, os, sys

base = {b["name"]: b for b in json.load(open(sys.argv[1]))["benchmarks"]}
fresh = {b["name"]: b for b in json.load(open(sys.argv[2]))["benchmarks"]}
tol = float(os.environ.get("TOLERANCE", "0.60"))
slack = float(os.environ.get("ALLOC_SLACK", "2"))

failures = []
print(f"{'benchmark':<36} {'ns/op':>10} {'base':>10} {'delta':>8}  {'allocs':>6} {'base':>6}")
for name, b in base.items():
    f = fresh.get(name)
    if f is None:
        failures.append(f"{name}: present in snapshot, missing from fresh run")
        continue
    ns, bns = f["ns_per_op"], b["ns_per_op"]
    al, bal = f["allocs_per_op"], b["allocs_per_op"]
    delta = (ns - bns) / bns * 100 if bns else 0.0
    mark = ""
    if ns > bns * (1 + tol):
        failures.append(f"{name}: {ns:.0f} ns/op vs committed {bns:.0f} (> +{tol:.0%} tolerance)")
        mark = "  << ns/op"
    if al > bal * 1.1 + slack:
        failures.append(f"{name}: {al:.0f} allocs/op vs committed {bal:.0f} (> +10% +{slack:g})")
        mark = "  << allocs/op"
    print(f"{name:<36} {ns:>10.0f} {bns:>10.0f} {delta:>+7.1f}%  {al:>6.0f} {bal:>6.0f}{mark}")

if failures:
    print("\nbench_gate: regressions against " + sys.argv[1] + ":", file=sys.stderr)
    for f in failures:
        print("  " + f, file=sys.stderr)
    sys.exit(1)
print("\nbench_gate: within tolerance of " + sys.argv[1])
EOF
