#!/usr/bin/env bash
# bench.sh — run the server-path benchmarks and normalize the output into
# a committed perf-trajectory snapshot, BENCH_<name>.json.
#
# Usage:
#   scripts/bench.sh [name] [go-bench-regex]
#
#   name    suffix of the output file (default: server → BENCH_server.json)
#   regex   benchmark selector (default: the server/client admission path)
#
# Environment:
#   BENCHTIME  -benchtime value (default 200x: iteration-pinned, so the
#              run costs seconds and ns/op is comparable across runs)
#   COUNT      -count value; the snapshot keeps the minimum ns/op across
#              repetitions, the standard noise floor for trend lines
#
# The JSON shape is stable and diff-friendly:
#   {"schema":1,"go":"go1.22.x","benchtime":"200x","benchmarks":[
#     {"name":"ServerAdmit","ns_per_op":...,"b_per_op":...,"allocs_per_op":...}]}
#
# Benchmarks that report a custom p99-ns/op metric (the sync-ack admission
# path) get an extra "p99_ns_per_op" field, taken from the same repetition
# as the minimum ns/op.
#
# Compare snapshots across commits to see the trajectory; CI re-runs this
# script to make sure it still produces a well-formed snapshot.
set -euo pipefail
cd "$(dirname "$0")/.."

NAME="${1:-server}"
REGEX="${2:-BenchmarkServerAdmit|BenchmarkServerParallelSubmit|BenchmarkServerBatchHTTP|BenchmarkClientSubmitRetry|BenchmarkProfileReserveRelease|BenchmarkProfileMaxUsed|BenchmarkBatchCodec}"
BENCHTIME="${BENCHTIME:-200x}"
COUNT="${COUNT:-3}"
OUT="BENCH_${NAME}.json"

GOVER="$(go env GOVERSION)"

go test -run='^$' -bench "${REGEX}" -benchmem -benchtime "${BENCHTIME}" -count "${COUNT}" . |
	tee /dev/stderr |
	awk -v go="${GOVER}" -v benchtime="${BENCHTIME}" '
	/^Benchmark/ && NF >= 7 {
		name = $1
		sub(/^Benchmark/, "", name)
		sub(/-[0-9]+$/, "", name)
		# Walk unit labels instead of fixed columns: benchmarks may emit
		# custom metrics (e.g. submissions/op) between the standard ones.
		ns = ""; b = ""; allocs = ""; p99 = ""
		for (i = 2; i < NF; i++) {
			if ($(i + 1) == "ns/op") ns = $i
			else if ($(i + 1) == "B/op") b = $i
			else if ($(i + 1) == "allocs/op") allocs = $i
			else if ($(i + 1) == "p99-ns/op") p99 = $i
		}
		if (ns == "" || b == "" || allocs == "") next
		# Keep the minimum ns/op across -count repetitions.
		if (!(name in best) || ns + 0 < best[name] + 0) {
			best[name] = ns; bytes[name] = b; alloc[name] = allocs; tail[name] = p99
			if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
		}
	}
	END {
		printf "{\n  \"schema\": 1,\n  \"go\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [\n", go, benchtime
		for (i = 1; i <= n; i++) {
			name = order[i]
			extra = ""
			if (tail[name] != "") extra = sprintf(", \"p99_ns_per_op\": %s", tail[name])
			printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s%s}%s\n", \
				name, best[name], bytes[name], alloc[name], extra, (i < n ? "," : "")
		}
		printf "  ]\n}\n"
	}' >"${OUT}"

echo "wrote ${OUT}" >&2
