// Package intervals implements the time-window decomposition of §4.2
// (Figure 3 of the paper).
//
// Given a request set, the union of all starting and finishing times
// yields a sorted sequence of reference points t_0 < t_1 < … < t_N. The
// elementary intervals [t_i, t_{i+1}) have the property that no request
// starts or finishes strictly inside one, so within an interval the active
// set is constant and per-interval admission is well defined. The
// Algorithm-1 slot heuristics iterate these intervals in order:
//
//	r1:      |————————————|
//	r2:            |————————————————|
//	r3:                  |——————|
//	         t0    t1    t2     t3  t4
//	slices:  [t0,t1)[t1,t2)[t2,t3)[t3,t4)
//
// (the paper's Figure 3). A request is active in a slice iff its window
// covers the slice entirely — partial overlap cannot occur by
// construction.
package intervals

import (
	"sort"

	"gridbw/internal/request"
	"gridbw/internal/units"
)

// Interval is one elementary slice [Start, End).
type Interval struct {
	Start, End units.Time
}

// Length reports End − Start.
func (iv Interval) Length() units.Time { return iv.End - iv.Start }

// Contains reports whether t lies in [Start, End).
func (iv Interval) Contains(t units.Time) bool { return iv.Start <= t && t < iv.End }

// Decompose returns the elementary intervals induced by the requests'
// window breakpoints, in increasing order. An empty request set yields nil.
func Decompose(reqs []request.Request) []Interval {
	if len(reqs) == 0 {
		return nil
	}
	points := make([]units.Time, 0, 2*len(reqs))
	for _, r := range reqs {
		points = append(points, r.Start, r.Finish)
	}
	sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })
	// Deduplicate.
	w := 1
	for i := 1; i < len(points); i++ {
		if points[i] != points[w-1] {
			points[w] = points[i]
			w++
		}
	}
	points = points[:w]
	out := make([]Interval, 0, len(points)-1)
	for i := 0; i+1 < len(points); i++ {
		out = append(out, Interval{Start: points[i], End: points[i+1]})
	}
	return out
}

// Active reports the requests whose window covers the whole interval:
// ts(r) <= Start and tf(r) >= End. By construction of Decompose a request
// either covers an elementary interval entirely or not at all. The result
// preserves the input order.
func Active(reqs []request.Request, iv Interval) []request.Request {
	var out []request.Request
	for _, r := range reqs {
		if r.Start <= iv.Start && r.Finish >= iv.End {
			out = append(out, r)
		}
	}
	return out
}

// Covering reports the indices (into the decomposition) of the intervals a
// request spans, assuming ivs came from a Decompose call whose input
// included the request.
func Covering(ivs []Interval, r request.Request) []int {
	var out []int
	for i, iv := range ivs {
		if r.Start <= iv.Start && r.Finish >= iv.End {
			out = append(out, i)
		}
	}
	return out
}

// Priority implements the §4.2 priority factor for request r on the
// elementary interval iv:
//
//	priority(r, [t_i, t_{i+1}]) = (t_{i+1} − ts(r)) / (tf(r) − ts(r))
//
// It grows from (first interval length)/(window length) toward 1 as the
// request accumulates scheduled time, so long-running already-admitted
// requests get cheaper (see Cost in sched/rigid) and are protected from
// late rejection.
func Priority(r request.Request, iv Interval) float64 {
	return float64(iv.End-r.Start) / float64(r.Finish-r.Start)
}
