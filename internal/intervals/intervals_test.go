package intervals

import (
	"testing"
	"testing/quick"

	"gridbw/internal/request"
	"gridbw/internal/rng"
	"gridbw/internal/units"
)

func mkReq(id int, start, finish units.Time) request.Request {
	dur := finish - start
	return request.Request{
		ID: request.ID(id), Start: start, Finish: finish,
		Volume:  units.Bandwidth(100 * units.MBps).For(dur),
		MaxRate: 1 * units.GBps,
	}
}

func TestDecomposeBasic(t *testing.T) {
	reqs := []request.Request{
		mkReq(0, 0, 10),
		mkReq(1, 5, 15),
		mkReq(2, 10, 20),
	}
	ivs := Decompose(reqs)
	want := []Interval{{0, 5}, {5, 10}, {10, 15}, {15, 20}}
	if len(ivs) != len(want) {
		t.Fatalf("ivs = %v, want %v", ivs, want)
	}
	for i := range want {
		if ivs[i] != want[i] {
			t.Fatalf("ivs = %v, want %v", ivs, want)
		}
	}
}

func TestDecomposeDeduplicates(t *testing.T) {
	reqs := []request.Request{
		mkReq(0, 0, 10),
		mkReq(1, 0, 10),
		mkReq(2, 0, 10),
	}
	ivs := Decompose(reqs)
	if len(ivs) != 1 || ivs[0] != (Interval{0, 10}) {
		t.Errorf("ivs = %v", ivs)
	}
}

func TestDecomposeEmpty(t *testing.T) {
	if got := Decompose(nil); got != nil {
		t.Errorf("Decompose(nil) = %v", got)
	}
}

func TestIntervalMethods(t *testing.T) {
	iv := Interval{5, 8}
	if iv.Length() != 3 {
		t.Errorf("Length = %v", iv.Length())
	}
	if !iv.Contains(5) || !iv.Contains(7.9) || iv.Contains(8) || iv.Contains(4) {
		t.Error("Contains wrong")
	}
}

func TestActive(t *testing.T) {
	reqs := []request.Request{
		mkReq(0, 0, 10),
		mkReq(1, 5, 15),
		mkReq(2, 10, 20),
	}
	act := Active(reqs, Interval{5, 10})
	if len(act) != 2 || act[0].ID != 0 || act[1].ID != 1 {
		t.Errorf("Active = %v", act)
	}
	act = Active(reqs, Interval{0, 5})
	if len(act) != 1 || act[0].ID != 0 {
		t.Errorf("Active = %v", act)
	}
}

func TestCovering(t *testing.T) {
	reqs := []request.Request{
		mkReq(0, 0, 10),
		mkReq(1, 5, 15),
	}
	ivs := Decompose(reqs) // {0,5},{5,10},{10,15}
	got := Covering(ivs, reqs[1])
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Covering = %v", got)
	}
}

func TestPriority(t *testing.T) {
	r := mkReq(0, 0, 100)
	// First interval of length 10: priority = 10/100.
	if got := Priority(r, Interval{0, 10}); !units.ApproxEq(got, 0.1) {
		t.Errorf("Priority = %v", got)
	}
	// Last interval: priority reaches 1.
	if got := Priority(r, Interval{90, 100}); !units.ApproxEq(got, 1.0) {
		t.Errorf("Priority = %v", got)
	}
	// Priority is monotone in interval end.
	if Priority(r, Interval{10, 20}) <= Priority(r, Interval{0, 10}) {
		t.Error("Priority not monotone")
	}
}

// Properties of the decomposition: intervals are sorted, disjoint, cover
// the union span exactly, and every request's window is exactly the union
// of the elementary intervals it covers.
func TestDecomposeProperties(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		n := src.Intn(40) + 1
		reqs := make([]request.Request, n)
		for i := range reqs {
			start := units.Time(src.Intn(100))
			reqs[i] = mkReq(i, start, start+units.Time(src.Intn(50)+1))
		}
		ivs := Decompose(reqs)
		for i := range ivs {
			if ivs[i].End <= ivs[i].Start {
				return false
			}
			if i > 0 && ivs[i].Start != ivs[i-1].End {
				return false // gap or overlap
			}
		}
		for _, r := range reqs {
			var covered units.Time
			for _, idx := range Covering(ivs, r) {
				covered += ivs[idx].Length()
			}
			if !units.ApproxEq(float64(covered), float64(r.WindowLength())) {
				return false
			}
			// No elementary interval partially overlaps the window.
			for _, iv := range ivs {
				overlaps := iv.Start < r.Finish && iv.End > r.Start
				inside := r.Start <= iv.Start && r.Finish >= iv.End
				if overlaps && !inside {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestActiveMatchesCovering(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		n := src.Intn(20) + 1
		reqs := make([]request.Request, n)
		for i := range reqs {
			start := units.Time(src.Intn(50))
			reqs[i] = mkReq(i, start, start+units.Time(src.Intn(30)+1))
		}
		ivs := Decompose(reqs)
		for idx, iv := range ivs {
			act := Active(reqs, iv)
			inAct := map[request.ID]bool{}
			for _, r := range act {
				inAct[r.ID] = true
			}
			for _, r := range reqs {
				covers := false
				for _, c := range Covering(ivs, r) {
					if c == idx {
						covers = true
					}
				}
				if covers != inAct[r.ID] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
