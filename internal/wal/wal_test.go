package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func mustOpen(t *testing.T, dir string, opt Options) (*Log, Recovery) {
	t.Helper()
	l, rec, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l, rec
}

func payloadN(i int) []byte { return []byte(fmt.Sprintf("record-%04d-%s", i, "xxxxxxxxxxxxxxxx")) }

func appendN(t *testing.T, l *Log, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := l.Append(payloadN(i)); err != nil {
			t.Fatal(err)
		}
	}
}

func readAll(t *testing.T, l *Log) [][]byte {
	t.Helper()
	var out [][]byte
	pos := Pos{}
	for {
		batch, _, next, err := l.ReadFrom(pos, 64, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) == 0 {
			return out
		}
		out = append(out, batch...)
		pos = next
	}
}

func TestAppendReadRoundTripAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force several rotations.
	l, rec := mustOpen(t, dir, Options{SegmentBytes: 128, Policy: SyncNever})
	if !rec.Clean() || rec.Records != 0 {
		t.Fatalf("fresh log recovery = %+v", rec)
	}
	const n = 40
	appendN(t, l, n)
	if end := l.End(); end.Seg < 2 {
		t.Fatalf("no rotation happened: end %v", end)
	}
	got := readAll(t, l)
	if len(got) != n {
		t.Fatalf("read %d records, want %d", len(got), n)
	}
	for i, p := range got {
		if !bytes.Equal(p, payloadN(i)) {
			t.Fatalf("record %d = %q, want %q", i, p, payloadN(i))
		}
	}
	if l.Records() != n {
		t.Errorf("Records() = %d, want %d", l.Records(), n)
	}
}

func TestReopenRecoversCleanLog(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SegmentBytes: 256})
	appendN(t, l, 20)
	endBefore := l.End()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec := mustOpen(t, dir, Options{SegmentBytes: 256})
	if !rec.Clean() || rec.Records != 20 {
		t.Fatalf("recovery = %+v, want 20 clean records", rec)
	}
	if l2.End() != endBefore {
		t.Errorf("end after reopen = %v, want %v", l2.End(), endBefore)
	}
	// Appends continue where the log left off.
	if _, err := l2.Append([]byte("after-reopen")); err != nil {
		t.Fatal(err)
	}
	got := readAll(t, l2)
	if len(got) != 21 || string(got[20]) != "after-reopen" {
		t.Fatalf("after reopen read %d records (last %q)", len(got), got[len(got)-1])
	}
}

// TestTornTailEveryOffset is the crash-restart property: for EVERY byte
// offset inside the last frame, truncating there and reopening must
// recover exactly the records before that frame — never an error, never
// a phantom record.
func TestTornTailEveryOffset(t *testing.T) {
	src := t.TempDir()
	l, _ := mustOpen(t, src, Options{Policy: SyncNever})
	const n = 8
	appendN(t, l, n)
	lastStart := int64(0)
	// Recompute the start of the last frame: all records equal-sized.
	frame := int64(headerSize + len(payloadN(0)))
	lastStart = frame * (n - 1)
	total := frame * n
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(src, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(blob)) != total {
		t.Fatalf("segment holds %d bytes, want %d", len(blob), total)
	}

	for cut := lastStart; cut < total; cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), blob[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, rec, err := Open(dir, Options{Policy: SyncNever})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if rec.Records != n-1 {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, rec.Records, n-1)
		}
		if cut > lastStart && rec.Clean() {
			t.Fatalf("cut %d: partial frame reported clean", cut)
		}
		if got := l2.End(); got != (Pos{1, lastStart}) {
			t.Fatalf("cut %d: end %v, want %v", cut, got, Pos{1, lastStart})
		}
		got, _, _, err := l2.ReadFrom(Pos{}, n+1, 1<<20)
		if err != nil {
			t.Fatalf("cut %d: read: %v", cut, err)
		}
		if len(got) != n-1 {
			t.Fatalf("cut %d: read %d records, want %d", cut, len(got), n-1)
		}
		// The log must accept appends again after the repair.
		if _, err := l2.Append([]byte("post-crash")); err != nil {
			t.Fatalf("cut %d: append after repair: %v", cut, err)
		}
		l2.Close()
	}
}

// TestCorruptMiddleFlippedBit: a bit flip inside a committed record is
// detected at recovery and everything from that record on is dropped.
func TestCorruptMiddleFlippedBit(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Policy: SyncNever})
	appendN(t, l, 6)
	frame := int64(headerSize + len(payloadN(0)))
	l.Close()
	path := filepath.Join(dir, segName(1))
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit of record 2.
	blob[2*frame+headerSize+3] ^= 0x40
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, Options{Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Records != 2 || rec.Clean() {
		t.Fatalf("recovery = %+v, want 2 records and a repair", rec)
	}
}

// TestTornMiddleSegmentDropsLaterSegments: corruption in a non-final
// segment removes every later segment so the survivor set stays a prefix.
func TestTornMiddleSegmentDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SegmentBytes: 128, Policy: SyncNever})
	appendN(t, l, 30)
	if l.End().Seg < 3 {
		t.Fatalf("want >= 3 segments, end %v", l.End())
	}
	l.Close()
	// Tear segment 2 mid-frame.
	path := filepath.Join(dir, segName(2))
	size, err := fileSize(OSFS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, size-5); err != nil {
		t.Fatal(err)
	}
	l2, rec, err := Open(dir, Options{SegmentBytes: 128, Policy: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.TornSegment != 2 || rec.DroppedSegments == 0 {
		t.Fatalf("recovery = %+v, want tear in segment 2 with later segments dropped", rec)
	}
	if end := l2.End(); end.Seg != 2 {
		t.Errorf("end %v, want appends to resume in segment 2", end)
	}
	got := readAll(t, l2)
	for i, p := range got {
		if !bytes.Equal(p, payloadN(i)) {
			t.Fatalf("record %d = %q: survivors are not a prefix", i, p)
		}
	}
}

func TestCompactBefore(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SegmentBytes: 128, Policy: SyncNever})
	appendN(t, l, 30)
	end := l.End()
	if end.Seg < 3 {
		t.Fatalf("want >= 3 segments, end %v", end)
	}
	removed, err := l.CompactBefore(end)
	if err != nil {
		t.Fatal(err)
	}
	if removed != int(end.Seg-1) {
		t.Errorf("removed %d segments, want %d", removed, end.Seg-1)
	}
	if first := l.FirstPos(); first.Seg != end.Seg {
		t.Errorf("first pos %v, want segment %d", first, end.Seg)
	}
	// Reads before the compaction horizon must say so explicitly.
	if _, _, _, err := l.ReadFrom(Pos{1, 0}, 10, 1<<20); !errors.Is(err, ErrCompacted) {
		t.Errorf("read of compacted position: err = %v, want ErrCompacted", err)
	}
	// The surviving tail still reads, and the log still appends.
	if _, err := l.Append([]byte("post-compact")); err != nil {
		t.Fatal(err)
	}
	got, _, _, err := l.ReadFrom(Pos{end.Seg, 0}, 64, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || string(got[len(got)-1]) != "post-compact" {
		t.Errorf("tail read after compaction = %d records", len(got))
	}
}

func TestWaitWakesOnAppend(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Policy: SyncNever})
	pos := l.End()
	done := make(chan bool, 1)
	go func() { done <- l.Wait(nil, pos, 5*time.Second) }()
	time.Sleep(10 * time.Millisecond)
	if _, err := l.Append([]byte("wake")); err != nil {
		t.Fatal(err)
	}
	select {
	case ok := <-done:
		if !ok {
			t.Error("Wait returned false after an append")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait never woke")
	}
	// And times out quietly when nothing arrives.
	if l.Wait(nil, l.End(), 20*time.Millisecond) {
		t.Error("Wait reported data at the frontier")
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"always", SyncAlways}, {"", SyncAlways}, {"interval", SyncInterval}, {"Never", SyncNever}} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("bad policy accepted")
	}

	// SyncAlways: synced frontier tracks the end exactly.
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Policy: SyncAlways})
	appendN(t, l, 3)
	if l.Synced() != l.End() {
		t.Errorf("always: synced %v != end %v", l.Synced(), l.End())
	}

	// SyncInterval: the background tick catches up within a few periods.
	dir2 := t.TempDir()
	l2, _ := mustOpen(t, dir2, Options{Policy: SyncInterval, Interval: 5 * time.Millisecond})
	appendN(t, l2, 3)
	deadline := time.Now().Add(2 * time.Second)
	for l2.Synced() != l2.End() && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if l2.Synced() != l2.End() {
		t.Errorf("interval: synced %v never reached end %v", l2.Synced(), l2.End())
	}
}

func TestAppendBounds(t *testing.T) {
	l, _ := mustOpen(t, t.TempDir(), Options{MaxRecordBytes: 64})
	if _, err := l.Append(nil); !errors.Is(err, ErrTooLarge) {
		t.Errorf("empty append: %v", err)
	}
	if _, err := l.Append(make([]byte, 65)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized append: %v", err)
	}
	if _, err := l.Append(make([]byte, 64)); err != nil {
		t.Errorf("bound-sized append: %v", err)
	}
}

func TestEpochAndCursorMeta(t *testing.T) {
	dir := t.TempDir()
	if e, err := LoadEpoch(dir); err != nil || e != 0 {
		t.Fatalf("LoadEpoch on empty dir = %d, %v", e, err)
	}
	if err := SaveEpoch(dir, 7); err != nil {
		t.Fatal(err)
	}
	if e, err := LoadEpoch(dir); err != nil || e != 7 {
		t.Fatalf("LoadEpoch = %d, %v, want 7", e, err)
	}
	if p, err := LoadCursor(dir); err != nil || !p.IsZero() {
		t.Fatalf("LoadCursor on empty dir = %v, %v", p, err)
	}
	want := Pos{3, 1234}
	if err := SaveCursor(dir, want); err != nil {
		t.Fatal(err)
	}
	if p, err := LoadCursor(dir); err != nil || p != want {
		t.Fatalf("LoadCursor = %v, %v, want %v", p, err, want)
	}
}

func TestReadFromResolvesZeroPos(t *testing.T) {
	l, _ := mustOpen(t, t.TempDir(), Options{})
	appendN(t, l, 2)
	got, start, next, err := l.ReadFrom(Pos{}, 10, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if start != (Pos{1, 0}) {
		t.Errorf("resolved start = %v, want 1:0", start)
	}
	if len(got) != 2 || next != l.End() {
		t.Errorf("read %d records, next %v (end %v)", len(got), next, l.End())
	}
}

func TestSizeBetween(t *testing.T) {
	// Small segments so the range spans a rotation.
	l, _ := mustOpen(t, t.TempDir(), Options{SegmentBytes: 128, Policy: SyncNever})
	var ends []Pos
	for i := 0; i < 12; i++ {
		p, err := l.Append(payloadN(i))
		if err != nil {
			t.Fatal(err)
		}
		ends = append(ends, p)
	}
	frame := int64(headerSize + len(payloadN(0)))
	end := l.End()
	if end.Seg < 2 {
		t.Fatalf("expected rotation, end = %v", end)
	}

	// Full log: every record's frame bytes, wherever the segments split.
	if got, err := l.SizeBetween(Pos{}, end); err != nil || got != 12*frame {
		t.Fatalf("SizeBetween(zero, end) = %d, %v, want %d", got, err, 12*frame)
	}
	// A suffix across the rotation boundary.
	if got, err := l.SizeBetween(ends[4], end); err != nil || got != 7*frame {
		t.Fatalf("SizeBetween(after 5th, end) = %d, %v, want %d", got, err, 7*frame)
	}
	// Zero "to" clamps to the frontier; beyond-end clamps too.
	if got, err := l.SizeBetween(ends[4], Pos{}); err != nil || got != 7*frame {
		t.Fatalf("SizeBetween(after 5th, zero) = %d, %v, want %d", got, err, 7*frame)
	}
	if got, err := l.SizeBetween(ends[4], Pos{end.Seg + 3, 0}); err != nil || got != 7*frame {
		t.Fatalf("SizeBetween clamped = %d, %v, want %d", got, err, 7*frame)
	}
	// Backwards and empty ranges are 0.
	if got, err := l.SizeBetween(end, ends[4]); err != nil || got != 0 {
		t.Fatalf("backwards SizeBetween = %d, %v, want 0", got, err)
	}
	if got, err := l.SizeBetween(end, end); err != nil || got != 0 {
		t.Fatalf("empty SizeBetween = %d, %v, want 0", got, err)
	}
	// A compacted "from" reports 0 — the reader must resync anyway.
	if _, err := l.CompactBefore(end); err != nil {
		t.Fatal(err)
	}
	if got, err := l.SizeBetween(Pos{1, 0}, end); err != nil || got != 0 {
		t.Fatalf("compacted SizeBetween = %d, %v, want 0", got, err)
	}
}
