package wal

import (
	"fmt"
	"io/fs"
	"os"
)

// The filesystem seam. Everything the log does to disk goes through an
// FS, so tests can interpose fault injectors (internal/faults.DiskFS:
// short writes, fsync errors, ENOSPC, torn renames) against the real
// append/recovery/compaction code instead of simulating them.
//
// The default implementation, OSFS, forwards straight to the os package
// and returns *os.File values directly as File — storing a pointer in an
// interface does not allocate, so the seam costs nothing on the append
// hot path (see BenchmarkWALAppend's alloc fence).

// File is the slice of *os.File the log needs. *os.File satisfies it
// as-is; fault injectors wrap one.
type File interface {
	Read(p []byte) (int, error)
	Write(p []byte) (int, error)
	Seek(offset int64, whence int) (int64, error)
	Sync() error
	Close() error
}

// FS is the slice of the os package the log needs. SyncDir is the
// open-the-directory-and-fsync-it idiom that makes renames and creates
// durable; it is a first-class operation here because directory fsync
// failures are a distinct fault class (a created segment or renamed meta
// file can vanish after a crash even though the data was synced).
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Open(name string) (File, error)
	Create(name string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	Stat(name string) (os.FileInfo, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	ReadFile(name string) ([]byte, error)
	MkdirAll(path string, perm os.FileMode) error
	SyncDir(dir string) error
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OSFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OSFS) Create(name string) (File, error) {
	f, err := os.Create(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (OSFS) Remove(name string) error             { return os.Remove(name) }
func (OSFS) Truncate(name string, size int64) error {
	return os.Truncate(name, size)
}
func (OSFS) Stat(name string) (os.FileInfo, error)      { return os.Stat(name) }
func (OSFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (OSFS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (OSFS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}

func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: fsync %s: %w", dir, err)
	}
	return nil
}
