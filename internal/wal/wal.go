// Package wal is the durable write-ahead decision log of gridbwd: a
// segmented, CRC-framed append log whose recovery semantics match a
// SIGKILL mid-write.
//
// Every record is framed as
//
//	[4B little-endian payload length][4B CRC32-Castagnoli of payload][payload]
//
// so any prefix of the log is self-validating: recovery scans frames
// until the first short or corrupt one, truncates the file there, and
// reports how many complete records survived. A torn tail — the normal
// aftermath of a crash mid-append — costs at most the records past the
// last fsync point, never the whole log (contrast the JSON-lines
// trace.DecisionLog, where one torn line used to abort replay).
//
// The log rotates into numbered segment files at a size threshold, so
// compaction after a snapshot is an O(1) unlink of whole segments rather
// than a rewrite, and replication readers address records by stable
// (segment, offset) positions that survive compaction of older segments.
//
// Durability is a policy, not a constant: SyncAlways fsyncs every append
// (nothing acknowledged is ever lost), SyncInterval fsyncs on a timer
// (bounded loss window, much cheaper), SyncNever leaves it to the OS.
// Rotation always fsyncs the finished segment, whatever the policy.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

const (
	headerSize = 8
	// segPrefix/segSuffix frame the decimal segment index in file names:
	// wal-00000001.seg, wal-00000002.seg, ...
	segPrefix = "wal-"
	segSuffix = ".seg"

	defaultSegmentBytes   = 8 << 20
	defaultMaxRecordBytes = 1 << 20
	defaultSyncInterval   = 100 * time.Millisecond
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Errors of the reading and appending paths.
var (
	// ErrClosed reports an operation on a closed log.
	ErrClosed = errors.New("wal: closed")
	// ErrCompacted reports a read position whose segment was removed by
	// compaction; the reader must resync from a snapshot instead.
	ErrCompacted = errors.New("wal: position compacted away")
	// ErrTooLarge reports an append beyond the record size bound.
	ErrTooLarge = errors.New("wal: record exceeds size bound")
	// ErrPoisoned reports an append or sync on a log that fail-stopped
	// after an earlier write or fsync failure. After a failed fsync the
	// kernel may have silently dropped the dirty pages while clearing the
	// error (the fsyncgate hazard), so retrying could "succeed" without
	// the data ever reaching disk; and after a short write the file
	// offset no longer matches the log's framing. The only sound recovery
	// is a restart, which re-runs torn-tail recovery against what is
	// actually on disk.
	ErrPoisoned = errors.New("wal: poisoned by prior I/O failure, restart to recover")
)

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs on every append: an acknowledged record is
	// durable, full stop.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background timer: a crash loses at most
	// the records appended since the last tick.
	SyncInterval
	// SyncNever never fsyncs explicitly; the OS flushes when it likes.
	SyncNever
)

// ParseSyncPolicy maps the -wal-fsync flag values onto a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always", "":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// Pos addresses a byte boundary in the log: Off bytes into segment Seg.
// Positions are totally ordered and stable across restarts; the zero Pos
// means "the beginning of whatever the log still holds".
type Pos struct {
	Seg uint64 `json:"seg"`
	Off int64  `json:"off"`
}

// Less orders positions.
func (p Pos) Less(q Pos) bool {
	if p.Seg != q.Seg {
		return p.Seg < q.Seg
	}
	return p.Off < q.Off
}

// IsZero reports the "start of log" sentinel.
func (p Pos) IsZero() bool { return p.Seg == 0 && p.Off == 0 }

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Seg, p.Off) }

// Options tunes a Log; zero values mean the defaults.
type Options struct {
	// SegmentBytes is the rotation threshold; a record never splits
	// across segments. Default 8 MiB.
	SegmentBytes int64
	// Policy is the fsync discipline; default SyncAlways.
	Policy SyncPolicy
	// Interval is the SyncInterval tick; default 100ms.
	Interval time.Duration
	// MaxRecordBytes bounds one record; default 1 MiB. Recovery treats a
	// larger length field as corruption, so both sides must agree.
	MaxRecordBytes int
	// FS is the filesystem seam; default the real OS filesystem. Tests
	// inject faults.DiskFS here.
	FS FS
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = defaultSegmentBytes
	}
	if o.Interval <= 0 {
		o.Interval = defaultSyncInterval
	}
	if o.MaxRecordBytes <= 0 {
		o.MaxRecordBytes = defaultMaxRecordBytes
	}
	if o.FS == nil {
		o.FS = OSFS{}
	}
	return o
}

// Recovery reports what Open found and repaired.
type Recovery struct {
	// Records is how many complete, CRC-valid records survived.
	Records uint64
	// TruncatedBytes is how much of the torn segment was cut away.
	TruncatedBytes int64
	// TornSegment is the segment that was truncated; 0 when the log was
	// clean.
	TornSegment uint64
	// DroppedSegments counts whole segments removed because they sat
	// beyond a torn middle segment (disk corruption, not a crash).
	DroppedSegments int
}

// Clean reports whether recovery found nothing to repair.
func (r Recovery) Clean() bool { return r.TornSegment == 0 && r.DroppedSegments == 0 }

func (r Recovery) String() string {
	if r.Clean() {
		return fmt.Sprintf("%d records, clean tail", r.Records)
	}
	return fmt.Sprintf("%d records, truncated %d bytes of segment %d (%d later segments dropped)",
		r.Records, r.TruncatedBytes, r.TornSegment, r.DroppedSegments)
}

// Log is a segmented append log. Append, Sync and Close serialize behind
// one mutex; ReadFrom and Wait are safe concurrently with appends.
type Log struct {
	dir string
	opt Options
	fs  FS

	mu       sync.Mutex
	f        File
	seg      uint64 // segment currently open for append
	off      int64  // append offset within seg
	firstSeg uint64 // oldest segment still on disk
	synced   Pos    // durable up to here
	records  uint64 // complete records in the log (recovered + appended)
	notify   chan struct{}
	closed   bool
	poisoned error // sticky fail-stop cause; nil while healthy

	stopSync chan struct{}
	syncDone chan struct{}
}

func segName(seg uint64) string { return fmt.Sprintf("%s%08d%s", segPrefix, seg, segSuffix) }

func (l *Log) segPath(seg uint64) string { return filepath.Join(l.dir, segName(seg)) }

// Open creates or recovers the log in dir. Recovery scans every segment
// in order, truncates the first torn frame and unlinks anything beyond
// it, so the survivor set is always a prefix of what was appended.
func Open(dir string, opt Options) (*Log, Recovery, error) {
	opt = opt.withDefaults()
	l := &Log{dir: dir, opt: opt, fs: opt.FS, notify: make(chan struct{})}
	var rec Recovery
	if err := l.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, rec, fmt.Errorf("wal: %w", err)
	}
	segs, err := listSegments(l.fs, dir)
	if err != nil {
		return nil, rec, err
	}
	if len(segs) == 0 {
		l.seg, l.firstSeg = 1, 1
		if l.f, err = l.fs.OpenFile(l.segPath(1), os.O_CREATE|os.O_WRONLY, 0o644); err != nil {
			return nil, rec, fmt.Errorf("wal: %w", err)
		}
		if err := l.fs.SyncDir(dir); err != nil {
			l.f.Close()
			return nil, rec, err
		}
	} else {
		l.firstSeg = segs[0]
		last := len(segs) - 1
		for i, seg := range segs {
			n, valid, clean, err := scanSegment(l.fs, l.segPath(seg), l.opt.MaxRecordBytes)
			if err != nil {
				return nil, rec, err
			}
			rec.Records += n
			if clean {
				continue
			}
			// Torn frame: cut the segment back to its last complete
			// record and drop every later segment — they are beyond the
			// tear and cannot be trusted to follow it.
			size, _ := fileSize(l.fs, l.segPath(seg))
			if err := l.fs.Truncate(l.segPath(seg), valid); err != nil {
				return nil, rec, fmt.Errorf("wal: truncate torn tail: %w", err)
			}
			rec.TornSegment = seg
			rec.TruncatedBytes = size - valid
			for _, later := range segs[i+1:] {
				if err := l.fs.Remove(l.segPath(later)); err != nil {
					return nil, rec, fmt.Errorf("wal: drop segment past tear: %w", err)
				}
				rec.DroppedSegments++
			}
			last = i
			break
		}
		l.seg = segs[last]
		if l.off, err = fileSize(l.fs, l.segPath(l.seg)); err != nil {
			return nil, rec, err
		}
		if l.f, err = l.fs.OpenFile(l.segPath(l.seg), os.O_WRONLY, 0o644); err != nil {
			return nil, rec, fmt.Errorf("wal: %w", err)
		}
		if _, err := l.f.Seek(l.off, io.SeekStart); err != nil {
			l.f.Close()
			return nil, rec, fmt.Errorf("wal: %w", err)
		}
		// Make the repair itself durable before accepting appends.
		if err := l.f.Sync(); err != nil {
			l.f.Close()
			return nil, rec, fmt.Errorf("wal: %w", err)
		}
		if err := l.fs.SyncDir(dir); err != nil {
			l.f.Close()
			return nil, rec, err
		}
	}
	l.records = rec.Records
	l.synced = Pos{l.seg, l.off}
	if l.opt.Policy == SyncInterval {
		l.stopSync = make(chan struct{})
		l.syncDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, rec, nil
}

func listSegments(fsys FS, dir string) ([]uint64, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 10, 64)
		if err != nil || n == 0 {
			continue
		}
		segs = append(segs, n)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	for i := 1; i < len(segs); i++ {
		if segs[i] != segs[i-1]+1 {
			return nil, fmt.Errorf("wal: segment gap: %d follows %d", segs[i], segs[i-1])
		}
	}
	return segs, nil
}

func fileSize(fsys FS, path string) (int64, error) {
	fi, err := fsys.Stat(path)
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	return fi.Size(), nil
}

// scanSegment walks the frames of one segment. It returns how many
// complete records it saw, the byte length of that valid prefix, and
// whether the segment ended exactly on a frame boundary.
func scanSegment(fsys FS, path string, maxRecord int) (records uint64, valid int64, clean bool, err error) {
	f, err := fsys.Open(path)
	if err != nil {
		return 0, 0, false, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	var hdr [headerSize]byte
	buf := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			// A clean EOF at a frame boundary is the normal end; a
			// partial header is a torn append.
			return records, valid, errors.Is(err, io.EOF), nil
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		if length == 0 || int(length) > maxRecord {
			return records, valid, false, nil
		}
		if cap(buf) < int(length) {
			buf = make([]byte, length)
		}
		payload := buf[:length]
		if _, err := io.ReadFull(f, payload); err != nil {
			return records, valid, false, nil
		}
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(hdr[4:8]) {
			return records, valid, false, nil
		}
		records++
		valid += headerSize + int64(length)
	}
}

// Append frames payload into the log and returns the end position after
// the record — everything strictly before the returned Pos is complete.
// Under SyncAlways the record is durable when Append returns.
func (l *Log) Append(payload []byte) (Pos, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return Pos{}, ErrClosed
	}
	if l.poisoned != nil {
		return Pos{}, l.poisoned
	}
	if len(payload) == 0 || len(payload) > l.opt.MaxRecordBytes {
		return Pos{}, fmt.Errorf("%w: %d bytes (bound %d, empty records forbidden)",
			ErrTooLarge, len(payload), l.opt.MaxRecordBytes)
	}
	frame := int64(headerSize + len(payload))
	if l.off > 0 && l.off+frame > l.opt.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return Pos{}, err
		}
	}
	buf := make([]byte, frame)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[headerSize:], payload)
	if _, err := l.f.Write(buf); err != nil {
		// A short or failed write leaves the file offset somewhere inside
		// a half-written frame; a further append would interleave garbage
		// into the framing. Fail-stop.
		return Pos{}, l.poisonLocked(fmt.Errorf("wal: append: %w", err))
	}
	l.off += frame
	l.records++
	if l.opt.Policy == SyncAlways {
		if err := l.f.Sync(); err != nil {
			return Pos{}, l.poisonLocked(fmt.Errorf("wal: fsync: %w", err))
		}
		l.synced = Pos{l.seg, l.off}
	}
	// Wake long-poll readers (replication pull) blocked in Wait.
	close(l.notify)
	l.notify = make(chan struct{})
	return Pos{l.seg, l.off}, nil
}

// poisonLocked records the first fatal I/O error and fail-stops the
// append path: every later Append or Sync returns the same ErrPoisoned
// until the process restarts and Open re-recovers from the real disk
// state. See ErrPoisoned for why retrying in place would be unsound.
func (l *Log) poisonLocked(cause error) error {
	if l.poisoned == nil {
		l.poisoned = fmt.Errorf("%w: %w", ErrPoisoned, cause)
	}
	return l.poisoned
}

// Poisoned reports the sticky fail-stop cause, nil while healthy.
func (l *Log) Poisoned() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.poisoned
}

// rotateLocked finishes the current segment (always fsynced, whatever the
// policy — a finished segment must never lose a tail) and opens the next.
func (l *Log) rotateLocked() error {
	if err := l.f.Sync(); err != nil {
		return l.poisonLocked(fmt.Errorf("wal: fsync before rotate: %w", err))
	}
	if err := l.f.Close(); err != nil {
		return l.poisonLocked(fmt.Errorf("wal: rotate: %w", err))
	}
	l.synced = Pos{l.seg, l.off}
	next, err := l.fs.OpenFile(l.segPath(l.seg+1), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return l.poisonLocked(fmt.Errorf("wal: rotate: %w", err))
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		next.Close()
		return l.poisonLocked(err)
	}
	l.f, l.seg, l.off = next, l.seg+1, 0
	l.synced = Pos{l.seg, 0}
	return nil
}

// Sync forces everything appended so far to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.closed {
		return ErrClosed
	}
	if l.poisoned != nil {
		return l.poisoned
	}
	if l.synced == (Pos{l.seg, l.off}) {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return l.poisonLocked(fmt.Errorf("wal: fsync: %w", err))
	}
	l.synced = Pos{l.seg, l.off}
	return nil
}

func (l *Log) syncLoop() {
	defer close(l.syncDone)
	t := time.NewTicker(l.opt.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.stopSync:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed {
				_ = l.syncLocked()
			}
			l.mu.Unlock()
		}
	}
}

// End reports the append frontier; Synced how far durability reaches;
// Records how many complete records the log holds; Dir where it lives.
func (l *Log) End() Pos {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Pos{l.seg, l.off}
}

func (l *Log) Synced() Pos {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.synced
}

func (l *Log) Records() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

func (l *Log) Dir() string { return l.dir }

// Close syncs and closes the log. Further appends fail with ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	err := l.syncLocked()
	l.closed = true
	if cerr := l.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: %w", cerr)
	}
	stop := l.stopSync
	done := l.syncDone
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	return err
}

// Wait blocks until the append frontier moves past pos, the timeout
// lapses, or done is closed; it reports whether records past pos exist.
// This is the long-poll primitive of the replication pull endpoint.
func (l *Log) Wait(done <-chan struct{}, pos Pos, timeout time.Duration) bool {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		l.mu.Lock()
		end := Pos{l.seg, l.off}
		ch := l.notify
		closed := l.closed
		l.mu.Unlock()
		if pos.Less(end) {
			return true
		}
		if closed {
			return false
		}
		select {
		case <-ch:
		case <-deadline.C:
			return false
		case <-done:
			return false
		}
	}
}

// ReadFrom returns up to maxRecords record payloads starting at pos
// (zero Pos means the oldest data still on disk), the resolved start
// position, and the position after the last returned record. It reads
// only committed bytes, so it is safe against a concurrent appender; a
// bad frame inside the committed range is real corruption and errors.
func (l *Log) ReadFrom(pos Pos, maxRecords int, maxBytes int64) (payloads [][]byte, start, next Pos, err error) {
	l.mu.Lock()
	end := Pos{l.seg, l.off}
	first := l.firstSeg
	l.mu.Unlock()
	if maxRecords <= 0 {
		maxRecords = 512
	}
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	if pos.IsZero() {
		pos = Pos{first, 0}
	}
	start = pos
	if pos.Seg < first {
		return nil, start, pos, ErrCompacted
	}
	if end.Less(pos) {
		return nil, start, pos, fmt.Errorf("wal: read position %v beyond end %v", pos, end)
	}
	var read int64
	for pos.Less(end) && len(payloads) < maxRecords && read < maxBytes {
		limit, err := l.segmentLimit(pos.Seg, end)
		if err != nil {
			return nil, start, pos, err
		}
		if pos.Off >= limit {
			pos = Pos{pos.Seg + 1, 0}
			continue
		}
		batch, n, err := readFrames(l.fs, l.segPath(pos.Seg), pos.Off, limit, maxRecords-len(payloads), maxBytes-read, l.opt.MaxRecordBytes)
		if err != nil {
			return nil, start, pos, err
		}
		payloads = append(payloads, batch...)
		pos.Off += n
		read += n
	}
	return payloads, start, pos, nil
}

// segmentLimit bounds reads of one segment to committed bytes: the whole
// file for finished segments, the append frontier for the current one.
func (l *Log) segmentLimit(seg uint64, end Pos) (int64, error) {
	if seg == end.Seg {
		return end.Off, nil
	}
	size, err := fileSize(l.fs, l.segPath(seg))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, ErrCompacted
		}
		return 0, err
	}
	return size, nil
}

func readFrames(fsys FS, path string, off, limit int64, maxRecords int, maxBytes int64, maxRecord int) ([][]byte, int64, error) {
	f, err := fsys.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, 0, ErrCompacted
		}
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	var out [][]byte
	var read int64
	var hdr [headerSize]byte
	for off+read < limit && len(out) < maxRecords && read < maxBytes {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return nil, 0, fmt.Errorf("wal: corrupt committed frame in %s at %d: %w", filepath.Base(path), off+read, err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		if length == 0 || int(length) > maxRecord || off+read+headerSize+int64(length) > limit {
			return nil, 0, fmt.Errorf("wal: corrupt committed frame in %s at %d: bad length %d", filepath.Base(path), off+read, length)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return nil, 0, fmt.Errorf("wal: corrupt committed frame in %s at %d: %w", filepath.Base(path), off+read, err)
		}
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(hdr[4:8]) {
			return nil, 0, fmt.Errorf("wal: corrupt committed frame in %s at %d: CRC mismatch", filepath.Base(path), off+read)
		}
		out = append(out, payload)
		read += headerSize + int64(length)
	}
	return out, read, nil
}

// CompactBefore unlinks every segment wholly before pos — typically the
// WAL position a just-written snapshot recorded, since the snapshot now
// carries everything those segments said. The segment containing pos and
// the active segment always survive. Returns how many were removed.
func (l *Log) CompactBefore(pos Pos) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	removed := 0
	for seg := l.firstSeg; seg < pos.Seg && seg < l.seg; seg++ {
		if err := l.fs.Remove(l.segPath(seg)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return removed, fmt.Errorf("wal: compact: %w", err)
		}
		l.firstSeg = seg + 1
		removed++
	}
	if removed > 0 {
		if err := l.fs.SyncDir(l.dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// SizeBetween reports the committed bytes between two positions — the
// exact replication lag a shipped batch leaves behind. Positions outside
// the log clamp to it; a backwards or compacted range reports 0.
func (l *Log) SizeBetween(from, to Pos) (int64, error) {
	l.mu.Lock()
	end := Pos{l.seg, l.off}
	first := l.firstSeg
	l.mu.Unlock()
	if from.IsZero() {
		from = Pos{first, 0}
	}
	if to.IsZero() || end.Less(to) {
		to = end
	}
	if to.Less(from) || from.Seg < first {
		return 0, nil
	}
	var total int64
	for seg := from.Seg; seg <= to.Seg; seg++ {
		limit := to.Off
		if seg != to.Seg {
			size, err := fileSize(l.fs, l.segPath(seg))
			if err != nil {
				return 0, err
			}
			limit = size
		}
		lo := int64(0)
		if seg == from.Seg {
			lo = from.Off
		}
		if limit > lo {
			total += limit - lo
		}
	}
	return total, nil
}

// FirstPos reports the oldest position still readable.
func (l *Log) FirstPos() Pos {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Pos{l.firstSeg, 0}
}

// Meta files: tiny durable key facts living beside the segments — the
// fencing epoch and a follower's replication cursor. Written with the
// full tmp → fsync → rename → fsync(dir) dance so a crash leaves either
// the old value or the new one, never a torn file.

func writeMeta(fsys FS, dir, name string, data []byte) error {
	path := filepath.Join(dir, name)
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("wal: write %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	return fsys.SyncDir(dir)
}

// SaveEpoch durably records the fencing epoch in the log's directory
// through the log's filesystem seam.
func (l *Log) SaveEpoch(epoch uint64) error {
	return writeMeta(l.fs, l.dir, "epoch", []byte(strconv.FormatUint(epoch, 10)))
}

// SaveCursor durably records a follower's replication cursor through the
// log's filesystem seam.
func (l *Log) SaveCursor(pos Pos) error {
	blob, err := json.Marshal(pos)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return writeMeta(l.fs, l.dir, "cursor", blob)
}

// SaveVote durably records a promotion vote through the log's
// filesystem seam.
func (l *Log) SaveVote(v Vote) error {
	blob, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return writeMeta(l.fs, l.dir, "vote", blob)
}

// SaveEpoch durably records the fencing epoch in dir.
func SaveEpoch(dir string, epoch uint64) error {
	return writeMeta(OSFS{}, dir, "epoch", []byte(strconv.FormatUint(epoch, 10)))
}

// LoadEpoch reads the fencing epoch saved in dir; 0 when none was saved.
func LoadEpoch(dir string) (uint64, error) {
	blob, err := os.ReadFile(filepath.Join(dir, "epoch"))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	n, err := strconv.ParseUint(strings.TrimSpace(string(blob)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("wal: epoch file: %w", err)
	}
	return n, nil
}

// SaveCursor durably records a follower's position into its primary's WAL.
func SaveCursor(dir string, pos Pos) error {
	blob, err := json.Marshal(pos)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return writeMeta(OSFS{}, dir, "cursor", blob)
}

// Vote is the durable record of a promotion vote: which candidate this
// node endorsed for which epoch. Persisted before the grant is sent so a
// crash-restarted node cannot endorse two candidates for the same epoch.
type Vote struct {
	Epoch     uint64 `json:"epoch"`
	Candidate string `json:"candidate"`
}

// SaveVote durably records a promotion vote in dir.
func SaveVote(dir string, v Vote) error {
	blob, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return writeMeta(OSFS{}, dir, "vote", blob)
}

// LoadVote reads the last promotion vote saved in dir; the zero Vote
// when none was saved.
func LoadVote(dir string) (Vote, error) {
	blob, err := os.ReadFile(filepath.Join(dir, "vote"))
	if errors.Is(err, os.ErrNotExist) {
		return Vote{}, nil
	}
	if err != nil {
		return Vote{}, fmt.Errorf("wal: %w", err)
	}
	var v Vote
	if err := json.Unmarshal(blob, &v); err != nil {
		return Vote{}, fmt.Errorf("wal: vote file: %w", err)
	}
	return v, nil
}

// LoadCursor reads the replication cursor saved in dir; the zero Pos when
// none was saved (pull restarts from the beginning — apply is idempotent).
func LoadCursor(dir string) (Pos, error) {
	blob, err := os.ReadFile(filepath.Join(dir, "cursor"))
	if errors.Is(err, os.ErrNotExist) {
		return Pos{}, nil
	}
	if err != nil {
		return Pos{}, fmt.Errorf("wal: %w", err)
	}
	var pos Pos
	if err := json.Unmarshal(blob, &pos); err != nil {
		return Pos{}, fmt.Errorf("wal: cursor file: %w", err)
	}
	return pos, nil
}
