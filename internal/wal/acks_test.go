package wal

import (
	"sync"
	"testing"
	"time"
)

func TestAcksQuorumOrdering(t *testing.T) {
	a := NewAcks(nil)
	if got := a.Quorum(1); !got.IsZero() {
		t.Fatalf("empty tracker quorum = %v, want zero", got)
	}
	a.Record("f1", Pos{Seg: 1, Off: 100})
	a.Record("f2", Pos{Seg: 1, Off: 300})
	a.Record("f3", Pos{Seg: 2, Off: 50})
	for _, tc := range []struct {
		k    int
		want Pos
	}{
		{1, Pos{Seg: 2, Off: 50}},  // fastest follower
		{2, Pos{Seg: 1, Off: 300}}, // majority of 3
		{3, Pos{Seg: 1, Off: 100}}, // slowest follower
		{4, Pos{}},                 // more than we have
		{0, Pos{}},
	} {
		if got := a.Quorum(tc.k); got != tc.want {
			t.Fatalf("Quorum(%d) = %v, want %v", tc.k, got, tc.want)
		}
	}
}

func TestAcksNeverRetreat(t *testing.T) {
	a := NewAcks(nil)
	a.Record("f1", Pos{Seg: 3, Off: 10})
	// A restarted follower re-pulling from an older cursor must not
	// retract durability already granted.
	a.Record("f1", Pos{Seg: 1, Off: 0})
	if got := a.Quorum(1); got != (Pos{Seg: 3, Off: 10}) {
		t.Fatalf("ack retreated to %v", got)
	}
}

func TestAcksAnonymousIgnored(t *testing.T) {
	a := NewAcks(nil)
	a.Record("", Pos{Seg: 9, Off: 9})
	if got := a.Quorum(1); !got.IsZero() {
		t.Fatalf("anonymous ack counted: %v", got)
	}
}

func TestAcksWaitSatisfiedImmediately(t *testing.T) {
	a := NewAcks(nil)
	a.Record("f1", Pos{Seg: 1, Off: 64})
	a.Record("f2", Pos{Seg: 1, Off: 64})
	if !a.Wait(nil, Pos{Seg: 1, Off: 64}, 2, time.Millisecond) {
		t.Fatal("already-acked position did not satisfy the wait")
	}
	// k<=0 and the zero position are trivially replicated.
	if !a.Wait(nil, Pos{Seg: 5, Off: 5}, 0, 0) {
		t.Fatal("k=0 wait blocked")
	}
	if !a.Wait(nil, Pos{}, 3, 0) {
		t.Fatal("zero-pos wait blocked")
	}
}

func TestAcksWaitWakesOnRecord(t *testing.T) {
	a := NewAcks(nil)
	target := Pos{Seg: 1, Off: 128}
	done := make(chan bool, 1)
	var ready sync.WaitGroup
	ready.Add(1)
	go func() {
		ready.Done()
		done <- a.Wait(nil, target, 2, 5*time.Second)
	}()
	ready.Wait()
	a.Record("f1", target)
	select {
	case <-done:
		t.Fatal("wait satisfied with one ack when two were required")
	case <-time.After(20 * time.Millisecond):
	}
	a.Record("f2", Pos{Seg: 1, Off: 200}) // past the target also counts
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("wait returned false after quorum was reached")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("wait never woke after the second ack")
	}
}

func TestAcksWaitTimesOut(t *testing.T) {
	a := NewAcks(nil)
	a.Record("f1", Pos{Seg: 1, Off: 10})
	start := time.Now()
	if a.Wait(nil, Pos{Seg: 1, Off: 999}, 1, 30*time.Millisecond) {
		t.Fatal("unreplicated position satisfied the wait")
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("wait returned before the deadline")
	}
}

func TestAcksWaitHonorsDone(t *testing.T) {
	a := NewAcks(nil)
	stop := make(chan struct{})
	close(stop)
	if a.Wait(stop, Pos{Seg: 1, Off: 1}, 1, time.Minute) {
		t.Fatal("closed done channel reported quorum")
	}
}

func TestAcksSnapshotIsCopy(t *testing.T) {
	now := time.Unix(42, 0)
	a := NewAcks(func() time.Time { return now })
	a.Record("f1", Pos{Seg: 1, Off: 7})
	snap := a.Snapshot()
	if fa, ok := snap["f1"]; !ok || fa.Pos != (Pos{Seg: 1, Off: 7}) || !fa.Seen.Equal(now) {
		t.Fatalf("snapshot = %+v", snap)
	}
	snap["f2"] = FollowerAck{Pos: Pos{Seg: 9, Off: 9}}
	if len(a.Snapshot()) != 1 {
		t.Fatal("mutating the snapshot leaked into the tracker")
	}
}

func TestSaveLoadVote(t *testing.T) {
	dir := t.TempDir()
	if v, err := LoadVote(dir); err != nil || v != (Vote{}) {
		t.Fatalf("empty dir: vote %+v err %v", v, err)
	}
	want := Vote{Epoch: 4, Candidate: "node-b"}
	if err := SaveVote(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadVote(dir)
	if err != nil || got != want {
		t.Fatalf("round-trip vote %+v err %v, want %+v", got, err, want)
	}
	// Overwrite: the latest vote wins (a node votes once per epoch but
	// across epochs the file advances).
	want = Vote{Epoch: 5, Candidate: "node-c"}
	if err := SaveVote(dir, want); err != nil {
		t.Fatal(err)
	}
	if got, _ := LoadVote(dir); got != want {
		t.Fatalf("overwritten vote = %+v, want %+v", got, want)
	}
}
