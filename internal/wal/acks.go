package wal

import (
	"sort"
	"sync"
	"time"
)

// FollowerAck is one follower's durably-applied position as seen by the
// primary, plus when it last reported. The position is the follower's
// pull cursor: a follower saves its cursor only after the shipped events
// are applied and persisted locally, so the cursor it presents on the
// next pull doubles as an acknowledgement of everything before it.
type FollowerAck struct {
	Pos  Pos       `json:"pos"`
	Seen time.Time `json:"-"`
}

// Acks tracks per-follower acknowledged positions on a primary and lets
// the decide pipeline wait until a frame is replicated to K followers.
// It is its own small monitor (not guarded by the server mutex) because
// waiters park on it for up to a sync-ack deadline while admissions
// continue.
type Acks struct {
	mu     sync.Mutex
	acked  map[string]FollowerAck
	notify chan struct{}
	now    func() time.Time
}

// NewAcks returns an empty tracker. now may be nil (wall clock).
func NewAcks(now func() time.Time) *Acks {
	if now == nil {
		now = time.Now
	}
	return &Acks{
		acked:  make(map[string]FollowerAck),
		notify: make(chan struct{}),
		now:    now,
	}
}

// Record notes that follower id has durably applied everything before
// pos. Acks only ever move forward: a follower that restarts and re-pulls
// from an old cursor must not retract durability already granted to
// waiters. Empty ids are dropped — an anonymous puller cannot take part
// in a quorum.
func (a *Acks) Record(id string, pos Pos) {
	if id == "" {
		return
	}
	a.mu.Lock()
	prev, ok := a.acked[id]
	if !ok || prev.Pos.Less(pos) {
		a.acked[id] = FollowerAck{Pos: pos, Seen: a.now()}
		// Broadcast: close-and-recreate, same pattern as Log.Append.
		close(a.notify)
		a.notify = make(chan struct{})
	} else {
		prev.Seen = a.now()
		a.acked[id] = prev
	}
	a.mu.Unlock()
}

// Quorum reports the highest position acknowledged by at least k
// followers — the k-th largest acked position — or the zero Pos when
// fewer than k followers have ever acked (or k <= 0).
func (a *Acks) Quorum(k int) Pos {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.quorumLocked(k)
}

func (a *Acks) quorumLocked(k int) Pos {
	if k <= 0 || len(a.acked) < k {
		return Pos{}
	}
	ps := make([]Pos, 0, len(a.acked))
	for _, fa := range a.acked {
		ps = append(ps, fa.Pos)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[j].Less(ps[i]) }) // descending
	return ps[k-1]
}

// Wait blocks until at least k followers have acknowledged pos or
// beyond, the timeout lapses, or done closes; it reports whether the
// quorum was reached. Stale entries from followers that rebooted under a
// new id can only make the wait harder (they hold an old position),
// never satisfy it falsely.
func (a *Acks) Wait(done <-chan struct{}, pos Pos, k int, timeout time.Duration) bool {
	if k <= 0 || pos.IsZero() {
		return true // nothing to replicate, or no follower required
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		a.mu.Lock()
		q := a.quorumLocked(k)
		ch := a.notify
		a.mu.Unlock()
		if !q.IsZero() && !q.Less(pos) {
			return true
		}
		select {
		case <-ch:
		case <-deadline.C:
			return false
		case <-done:
			return false
		}
	}
}

// Snapshot returns a copy of the per-follower ack table for status and
// metrics answers.
func (a *Acks) Snapshot() map[string]FollowerAck {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]FollowerAck, len(a.acked))
	for id, fa := range a.acked {
		out[id] = fa
	}
	return out
}
