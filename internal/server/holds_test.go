package server_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"gridbw/internal/server"
	"gridbw/internal/trace"
	"gridbw/internal/units"
)

// holdConfig is a 2-point platform where one full-capacity hold saturates
// a point: volume 1e10 over a 10s deadline at cap 1GB/s leaves zero
// slack, so double-booking is immediately visible as a refusal.
func holdConfig(clk *fakeClock, sink trace.DecisionSink) server.Config {
	return server.Config{
		Ingress:   []units.Bandwidth{units.GBps, units.GBps},
		Egress:    []units.Bandwidth{units.GBps, units.GBps},
		Clock:     clk.now,
		Decisions: sink,
	}
}

func fullReserve(hold string) server.HoldReserveJSON {
	return server.HoldReserveJSON{
		Hold: hold, Side: trace.HoldSideIngress,
		Point: 0, PeerPoint: 1, TTLS: 5,
		VolumeBytes: 1e10, MaxRateBps: 1e9, DeadlineS: 10,
	}
}

// fullReserveRel is fullReserve with the window expressed as an offset
// from the shard's current service clock — for probes issued after the
// test has advanced time past the absolute window of fullReserve.
func fullReserveRel(hold string) server.HoldReserveJSON {
	r := fullReserve(hold)
	r.RelTimes = true
	return r
}

// TestHoldReserveProposesAndBooks: an ingress-side RESERVE runs the
// one-sided admission search, proposes a concrete grant, and actually
// books it — a second saturating reserve is refused while the first is
// held, and refusals are remembered (tombstoned) for idempotent replay.
func TestHoldReserveProposesAndBooks(t *testing.T) {
	clk := &fakeClock{}
	s := newTestServer(t, holdConfig(clk, nil))

	r1, err := s.HoldReserve(fullReserve("h1"))
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Held || r1.RateBps != 1e9 || r1.TauS-r1.SigmaS != 10 {
		t.Fatalf("reserve = %+v, want a held full-capacity 10s grant", r1)
	}
	if r1.ID < 0 {
		t.Fatalf("ingress reserve allocated no local ID: %+v", r1)
	}

	r2, err := s.HoldReserve(fullReserve("h2"))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Held || r2.Reason == "" {
		t.Fatalf("saturating second reserve = %+v, want a reasoned refusal", r2)
	}
	// The refusal is remembered: a duplicate delivery answers identically.
	r2b, err := s.HoldReserve(fullReserve("h2"))
	if err != nil {
		t.Fatal(err)
	}
	if r2b.Held || r2b.Reason != r2.Reason {
		t.Fatalf("refusal replay = %+v, want %+v", r2b, r2)
	}

	// Duplicate of the held side answers the same grant without booking
	// twice.
	r1b, err := s.HoldReserve(fullReserve("h1"))
	if err != nil {
		t.Fatal(err)
	}
	if !r1b.Held || r1b.ID != r1.ID || r1b.RateBps != r1.RateBps {
		t.Fatalf("reserve replay = %+v, want %+v", r1b, r1)
	}
	if held, confirmed := s.HoldStats(); held != 1 || confirmed != 0 {
		t.Fatalf("holds = %d held / %d confirmed, want 1/0", held, confirmed)
	}
}

// TestHoldConfirmReleasesOnSchedule: a confirmed hold keeps its booking
// until τ and releases on time — not before, not never.
func TestHoldConfirmReleasesOnSchedule(t *testing.T) {
	clk := &fakeClock{}
	var buf bytes.Buffer
	s := newTestServer(t, holdConfig(clk, trace.NewDecisionLog(&buf)))

	r, err := s.HoldReserve(fullReserve("h1"))
	if err != nil || !r.Held {
		t.Fatalf("reserve: %v %+v", err, r)
	}
	st, err := s.HoldConfirm("h1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "confirmed" {
		t.Fatalf("confirm state = %q", st.State)
	}
	// Confirm is idempotent.
	if st2, err := s.HoldConfirm("h1", 0); err != nil || st2.State != "confirmed" {
		t.Fatalf("confirm replay: %v %+v", err, st2)
	}

	// Past the original TTL but before τ the booking must survive: a
	// saturating reserve still refuses.
	clk.advance(7 * time.Second)
	s.Now()
	if r2, err := s.HoldReserve(fullReserve("h2")); err != nil || r2.Held {
		t.Fatalf("reserve against confirmed hold: %v %+v, want refusal", err, r2)
	}

	clk.advance(4 * time.Second) // past τ=10
	s.Now()
	if held, confirmed := s.HoldStats(); held != 0 || confirmed != 0 {
		t.Fatalf("holds after τ = %d/%d, want released", held, confirmed)
	}
	if r3, err := s.HoldReserve(fullReserveRel("h3")); err != nil || !r3.Held {
		t.Fatalf("reserve after release: %v %+v, want capacity back", err, r3)
	}
	assertHoldEvent(t, &buf, trace.EventHoldRelease, "h1")
}

// TestHoldTTLExpiry: an unconfirmed hold rolls back when its TTL lapses,
// the expiry is WAL-visible, and the capacity is reusable.
func TestHoldTTLExpiry(t *testing.T) {
	clk := &fakeClock{}
	var buf bytes.Buffer
	s := newTestServer(t, holdConfig(clk, trace.NewDecisionLog(&buf)))

	if r, err := s.HoldReserve(fullReserve("h1")); err != nil || !r.Held {
		t.Fatalf("reserve: %v %+v", err, r)
	}
	clk.advance(6 * time.Second) // past TTL 5
	s.Now()
	if held, confirmed := s.HoldStats(); held != 0 || confirmed != 0 {
		t.Fatalf("holds after TTL = %d/%d, want expired", held, confirmed)
	}
	assertHoldEvent(t, &buf, trace.EventHoldExpire, "h1")

	// A late CONFIRM of the lapsed hold is the conflict the router maps to
	// "abort the peer side".
	if _, err := s.HoldConfirm("h1", 0); !errors.Is(err, server.ErrHoldAborted) {
		t.Fatalf("confirm after expiry: %v, want ErrHoldAborted", err)
	}
	if r, err := s.HoldReserve(fullReserveRel("h2")); err != nil || !r.Held {
		t.Fatalf("reserve after expiry: %v %+v, want capacity back", err, r)
	}
}

// TestHoldAbortTombstone: aborting an unknown key leaves a refusal
// tombstone, so a delayed RESERVE retry cannot resurrect a pair the
// router already rolled back.
func TestHoldAbortTombstone(t *testing.T) {
	clk := &fakeClock{}
	s := newTestServer(t, holdConfig(clk, nil))

	st, err := s.HoldAbort("ghost")
	if err != nil {
		t.Fatal(err)
	}
	if st.Released {
		t.Fatalf("abort of unknown key released capacity: %+v", st)
	}
	r, err := s.HoldReserve(fullReserve("ghost"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Held {
		t.Fatalf("reserve resurrected an aborted key: %+v", r)
	}
	// Abort stays idempotent on the tombstone.
	if _, err := s.HoldAbort("ghost"); err != nil {
		t.Fatal(err)
	}
}

// TestHoldConfirmFencing: a CONFIRM presenting a stale epoch is refused —
// the router must refresh against the promoted lineage, not commit blind.
func TestHoldConfirmFencing(t *testing.T) {
	clk := &fakeClock{}
	s := newTestServer(t, holdConfig(clk, nil))

	r, err := s.HoldReserve(fullReserve("h1"))
	if err != nil || !r.Held {
		t.Fatalf("reserve: %v %+v", err, r)
	}
	var fenced *server.FencedError
	if _, err := s.HoldConfirm("h1", r.Epoch+7); !errors.As(err, &fenced) {
		t.Fatalf("confirm with wrong epoch: %v, want FencedError", err)
	}
	// The hold survives the fenced attempt; the correct epoch commits.
	if st, err := s.HoldConfirm("h1", r.Epoch); err != nil || st.State != "confirmed" {
		t.Fatalf("confirm with reserve-time epoch: %v %+v", err, st)
	}
}

// TestHoldSnapshotRoundTrip: booked holds ride the snapshot — a restored
// server still refuses a saturating reserve and still releases at τ.
func TestHoldSnapshotRoundTrip(t *testing.T) {
	clk := &fakeClock{}
	s := newTestServer(t, holdConfig(clk, nil))

	r, err := s.HoldReserve(fullReserve("h1"))
	if err != nil || !r.Held {
		t.Fatalf("reserve: %v %+v", err, r)
	}
	if _, err := s.HoldConfirm("h1", 0); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	restored, err := server.NewFromSnapshot(snap, server.Config{Clock: clk.now})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()

	if held, confirmed := restored.HoldStats(); held != 0 || confirmed != 1 {
		t.Fatalf("restored holds = %d/%d, want 0 held / 1 confirmed", held, confirmed)
	}
	if r2, err := restored.HoldReserve(fullReserve("h2")); err != nil || r2.Held {
		t.Fatalf("restored reserve: %v %+v, want refusal while h1 is booked", err, r2)
	}
	clk.advance(11 * time.Second)
	restored.Now()
	if r3, err := restored.HoldReserve(fullReserveRel("h3")); err != nil || !r3.Held {
		t.Fatalf("restored reserve after τ: %v %+v, want capacity back", err, r3)
	}
}

// TestHoldEgressRelTimes: the egress side resolves a RelTimes window
// against its own clock and books it — the cross-clock conversion the
// router depends on.
func TestHoldEgressRelTimes(t *testing.T) {
	clk := &fakeClock{}
	s := newTestServer(t, holdConfig(clk, nil))
	clk.advance(100 * time.Second) // egress shard service clock well past 0
	s.Now()

	st, err := s.HoldReserve(server.HoldReserveJSON{
		Hold: "h1", Side: trace.HoldSideEgress,
		Point: 0, PeerPoint: 1, TTLS: 5, RelTimes: true,
		RateBps: 1e9, SigmaS: 0, TauS: 10,
		VolumeBytes: 1e10, MaxRateBps: 1e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Held {
		t.Fatalf("egress reserve = %+v, want held", st)
	}
	if st.SigmaS < 100 || st.TauS-st.SigmaS != 10 {
		t.Fatalf("egress grant window = [%g, %g], want the 10s window on this shard's clock (≥100s)",
			st.SigmaS, st.TauS)
	}
	// The booking is authoritative: a second saturating egress check on
	// the same point must refuse while the first window is held.
	st2, err := s.HoldReserve(server.HoldReserveJSON{
		Hold: "h2", Side: trace.HoldSideEgress,
		Point: 0, PeerPoint: 1, TTLS: 5, RelTimes: true,
		RateBps: 1e9, SigmaS: 0, TauS: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Held {
		t.Fatalf("second saturating egress reserve = %+v, want refusal", st2)
	}
}

// assertHoldEvent scans the decision log for a hold event of one kind.
func assertHoldEvent(t *testing.T, buf *bytes.Buffer, kind, hold string) {
	t.Helper()
	events, err := trace.ReadDecisions(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if ev.Kind == kind && ev.Hold == hold {
			return
		}
	}
	t.Fatalf("no %s event for hold %q in the decision log", kind, hold)
}
