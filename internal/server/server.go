// Package server is the online admission-control plane of gridbwd: the
// paper's §3–5 admission algorithms behind a concurrent, wall-clock
// HTTP/JSON service instead of a batch DES driver.
//
// The server keeps a live capacity ledger (alloc.Ledger, full time
// profiles per access point) guarded by one mutex, and maps wall time
// onto the service clock: seconds since the daemon epoch. Admission is
// the paper's machinery unchanged — rigid requests (MinRate ≈ MaxRate)
// get book-ahead admission, searching the earliest feasible start over
// the profiles' usage breakpoints exactly like core.Planner; flexible
// requests get immediate-start admission at the configured policy's rate,
// like the §5.1 GREEDY step. Grants expire as their τ(r) passes: a
// des.Simulator orders the expiry events and a background goroutine
// sleeps until the next deadline (des.Next) and fires them against real
// time, returning capacity to the ledger.
//
// The whole control-plane state — capacities, policy, clock, counters and
// every live reservation — round-trips through a JSON Snapshot, so a
// restarted daemon resumes without ever violating the capacity constraint
// of equation (1): restore replays the live grants into a fresh ledger,
// which re-checks the constraint system.
package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"gridbw/internal/alloc"
	"gridbw/internal/core"
	"gridbw/internal/des"
	"gridbw/internal/metrics"
	"gridbw/internal/policy"
	"gridbw/internal/request"
	"gridbw/internal/topology"
	"gridbw/internal/trace"
	"gridbw/internal/units"
)

// Config describes the platform a Server admits onto.
type Config struct {
	// Ingress and Egress list the access-point capacities.
	Ingress, Egress []units.Bandwidth
	// Policy names the bandwidth-assignment policy ("minbw", "f=<x>", …);
	// defaults to "minbw".
	Policy string
	// Clock supplies wall time; defaults to time.Now. Tests inject a
	// manual clock for deterministic expiry.
	Clock func() time.Time
	// Decisions, when non-nil, receives every admission event.
	Decisions *trace.DecisionLog
	// FinishedRetention bounds how many expired/cancelled reservations
	// stay queryable via Lookup before the oldest are evicted; <= 0 means
	// the default of 4096. The idempotency cache shares the same bound.
	FinishedRetention int
	// MaxInFlight bounds concurrently-served submissions at the HTTP
	// layer; excess requests are shed with 429 Too Many Requests rather
	// than queued without bound. 0 means the default of 64; negative
	// disables shedding.
	MaxInFlight int
	// RetryAfter is the backoff hint attached to shed responses;
	// defaults to 1s.
	RetryAfter time.Duration
}

const (
	defaultFinishedRetention = 4096
	defaultMaxInFlight       = 64
	defaultRetryAfter        = time.Second
)

// State is a reservation's lifecycle position.
type State string

const (
	// StateBooked: accepted, σ(r) still in the future (book-ahead).
	StateBooked State = "booked"
	// StateActive: accepted and transmitting (σ ≤ now < τ).
	StateActive State = "active"
	// StateExpired: τ(r) passed; capacity returned.
	StateExpired State = "expired"
	// StateCancelled: revoked by the client before τ(r).
	StateCancelled State = "cancelled"
	// StateRejected: never admitted; only appears in Decisions.
	StateRejected State = "rejected"
)

// Submission is an online reservation request. Times are absolute service
// time (seconds since the daemon epoch); NotBefore values in the past are
// clamped to now.
type Submission struct {
	// From and To are ingress and egress point indices.
	From, To int
	Volume   units.Volume
	// NotBefore is the earliest admissible start; zero means "now".
	NotBefore units.Time
	// Deadline is the absolute instant by which the transfer must finish.
	Deadline units.Time
	// MaxRate is the host transmission cap.
	MaxRate units.Bandwidth
	// IdempotencyKey, when non-empty, makes the submission safely
	// retryable: a second Submit with the same key returns the original
	// decision instead of booking again.
	IdempotencyKey string
}

// Decision is the server's answer to a Submission or Lookup.
type Decision struct {
	ID       request.ID
	Accepted bool
	State    State
	// Rate, Sigma and Tau describe the grant of an accepted reservation.
	Rate  units.Bandwidth
	Sigma units.Time
	Tau   units.Time
	// Reason explains a rejection.
	Reason string
}

// Reservation is the full record of one live grant, exposed for
// independent verification (tests replay these into a fresh ledger).
type Reservation struct {
	Req   request.Request
	Grant request.Grant
	State State
}

// Errors mapped to HTTP statuses by the handler layer.
var (
	// ErrClosed reports a submission to a draining/closed server.
	ErrClosed = errors.New("server: closed")
	// ErrNotFound reports an unknown (or evicted) reservation ID.
	ErrNotFound = errors.New("server: no such reservation")
	// ErrFinished reports a cancel of an already expired or cancelled
	// reservation.
	ErrFinished = errors.New("server: reservation already finished")
)

type entry struct {
	req    request.Request
	grant  request.Grant
	state  State // StateActive while live (Booked derived from clock), else terminal
	expire des.Handle
}

// Server is the concurrent admission-control plane.
type Server struct {
	net        *topology.Network
	pol        policy.Policy
	policyName string
	clock      func() time.Time
	decisions  *trace.DecisionLog
	retention  int

	mu        sync.Mutex
	ledger    *alloc.Ledger
	sim       *des.Simulator
	epoch     time.Time // wall instant of service time 0
	resv      map[request.ID]*entry
	finished  []request.ID // FIFO eviction queue of terminal IDs
	nextID    request.ID
	stats     metrics.Online
	idem      map[string]Decision
	idemOrder []string // FIFO eviction queue of idempotency keys
	closed    bool

	// inflight is the admission semaphore the HTTP layer acquires around
	// each submission; nil when shedding is disabled.
	inflight   chan struct{}
	retryAfter time.Duration

	kick chan struct{}
	stop chan struct{}
	done chan struct{}
}

// New validates cfg and starts a server with the service clock at 0.
// Callers must Close it to stop the expiry loop.
func New(cfg Config) (*Server, error) {
	net, err := topology.New(topology.Config{Ingress: cfg.Ingress, Egress: cfg.Egress})
	if err != nil {
		return nil, err
	}
	name := cfg.Policy
	if name == "" {
		name = "minbw"
	}
	pol, err := core.ParsePolicy(name)
	if err != nil {
		return nil, err
	}
	s := newServer(cfg, net, pol, name)
	s.epoch = s.clock()
	go s.loop()
	return s, nil
}

func newServer(cfg Config, net *topology.Network, pol policy.Policy, name string) *Server {
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	retention := cfg.FinishedRetention
	if retention <= 0 {
		retention = defaultFinishedRetention
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight == 0 {
		maxInFlight = defaultMaxInFlight
	}
	var inflight chan struct{}
	if maxInFlight > 0 {
		inflight = make(chan struct{}, maxInFlight)
	}
	retryAfter := cfg.RetryAfter
	if retryAfter <= 0 {
		retryAfter = defaultRetryAfter
	}
	return &Server{
		net:        net,
		pol:        pol,
		policyName: name,
		clock:      clock,
		decisions:  cfg.Decisions,
		retention:  retention,
		ledger:     alloc.NewLedger(net),
		sim:        des.New(),
		resv:       make(map[request.ID]*entry),
		idem:       make(map[string]Decision),
		inflight:   inflight,
		retryAfter: retryAfter,
		kick:       make(chan struct{}, 1),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
}

// Network reports the platform.
func (s *Server) Network() *topology.Network { return s.net }

// PolicyName reports the configured bandwidth-assignment policy.
func (s *Server) PolicyName() string { return s.policyName }

// Now reports the current service time.
func (s *Server) Now() units.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked()
	return s.sim.Now()
}

// wallNow maps the wall clock onto service time.
func (s *Server) wallNow() units.Time {
	return units.Time(s.clock().Sub(s.epoch).Seconds())
}

// advanceLocked moves the service clock to wall time, firing due expiry
// events. Callers hold s.mu.
func (s *Server) advanceLocked() {
	if t := s.wallNow(); t > s.sim.Now() {
		s.sim.RunUntil(t)
	}
}

// loop is the wall-clock expiry driver: it sleeps until the next grant's
// τ(r) (or until an admission re-arms it) and advances the event clock.
func (s *Server) loop() {
	defer close(s.done)
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		s.mu.Lock()
		s.advanceLocked()
		next, ok := s.sim.Next()
		s.mu.Unlock()

		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		sleep := time.Hour
		if ok {
			sleep = s.epoch.Add(time.Duration(float64(next) * float64(time.Second))).Sub(s.clock())
			if sleep < 0 {
				sleep = 0
			}
		}
		timer.Reset(sleep)

		select {
		case <-s.stop:
			return
		case <-s.kick:
		case <-timer.C:
		}
	}
}

// poke re-arms the expiry loop after the event queue changed.
func (s *Server) poke() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// Close stops the expiry loop and refuses further submissions. Read
// operations (Lookup, Status, Snapshot) keep working so a draining daemon
// can persist its final state.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	<-s.done
	return nil
}

// Submit decides a reservation request against the live ledger. The
// returned error is reserved for malformed submissions (bad indices,
// non-positive volume or rate) and ErrClosed; an infeasible request is a
// normal rejected Decision, not an error.
func (s *Server) Submit(sub Submission) (Decision, error) {
	if sub.From < 0 || sub.From >= s.net.NumIngress() {
		return Decision{}, fmt.Errorf("server: ingress %d out of range [0,%d)", sub.From, s.net.NumIngress())
	}
	if sub.To < 0 || sub.To >= s.net.NumEgress() {
		return Decision{}, fmt.Errorf("server: egress %d out of range [0,%d)", sub.To, s.net.NumEgress())
	}
	if sub.Volume <= 0 {
		return Decision{}, fmt.Errorf("server: non-positive volume %v", sub.Volume)
	}
	if sub.MaxRate <= 0 {
		return Decision{}, fmt.Errorf("server: non-positive max rate %v", sub.MaxRate)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Decision{}, ErrClosed
	}
	s.advanceLocked()

	// A retried submission (same idempotency key) is answered from the
	// original decision — it never books a second time.
	if sub.IdempotencyKey != "" {
		if d, ok := s.idem[sub.IdempotencyKey]; ok {
			s.stats.RecordIdempotentHit()
			if e, live := s.resv[d.ID]; live && d.Accepted {
				return s.decisionLocked(e), nil
			}
			return d, nil
		}
	}

	notBefore := sub.NotBefore
	if now := s.sim.Now(); notBefore < now {
		notBefore = now
	}
	id := s.nextID
	s.nextID++

	r := request.Request{
		ID:      id,
		Ingress: topology.PointID(sub.From),
		Egress:  topology.PointID(sub.To),
		Start:   notBefore,
		Finish:  sub.Deadline,
		Volume:  sub.Volume,
		MaxRate: sub.MaxRate,
	}
	// Window and rate infeasibility are domain rejections, not API errors.
	if r.Finish <= r.Start {
		return s.rememberLocked(sub.IdempotencyKey,
			s.rejectLocked(r, fmt.Sprintf("empty window: deadline %v not after start %v", r.Finish, r.Start))), nil
	}
	if r.MinRate() > r.MaxRate*(1+units.Eps) {
		return s.rememberLocked(sub.IdempotencyKey,
			s.rejectLocked(r, fmt.Sprintf("infeasible: needs %v to move %v in window but MaxRate is %v",
				r.MinRate(), r.Volume, r.MaxRate))), nil
	}
	if err := r.Validate(); err != nil {
		return Decision{}, fmt.Errorf("server: %w", err)
	}
	return s.rememberLocked(sub.IdempotencyKey, s.admitLocked(r)), nil
}

// rememberLocked caches a decision under its idempotency key, bounded by
// the same FIFO retention as finished reservations.
func (s *Server) rememberLocked(key string, d Decision) Decision {
	if key == "" {
		return d
	}
	s.idem[key] = d
	s.idemOrder = append(s.idemOrder, key)
	for len(s.idemOrder) > s.retention {
		evict := s.idemOrder[0]
		s.idemOrder = s.idemOrder[1:]
		delete(s.idem, evict)
	}
	return d
}

// admitLocked runs the admission search for a validated request.
// Rigid requests search every candidate start (book-ahead); flexible
// requests are decided at their earliest admissible instant only.
func (s *Server) admitLocked(r request.Request) Decision {
	latest := r.Finish - r.Volume.Over(r.MaxRate)
	candidates := []units.Time{r.Start}
	if r.Rigid() && latest > r.Start {
		in := s.ledger.Ingress(r.Ingress)
		eg := s.ledger.Egress(r.Egress)
		candidates = append(candidates, in.BreakpointTimes(r.Start, latest)...)
		candidates = append(candidates, eg.BreakpointTimes(r.Start, latest)...)
		sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	}

	lastReason := "no feasible start in window"
	for i, sigma := range candidates {
		if i > 0 && sigma == candidates[i-1] {
			continue
		}
		bw, err := s.pol.Assign(r, sigma)
		if err != nil {
			lastReason = "policy: " + err.Error()
			continue
		}
		g, err := request.NewGrant(r, sigma, bw)
		if err != nil {
			lastReason = "grant: " + err.Error()
			continue
		}
		if err := s.ledger.Reserve(r, g); err != nil {
			lastReason = "capacity saturated"
			continue
		}
		return s.acceptLocked(r, g)
	}
	return s.rejectLocked(r, lastReason)
}

func (s *Server) acceptLocked(r request.Request, g request.Grant) Decision {
	e := &entry{req: r, grant: g, state: StateActive}
	e.expire = s.sim.At(g.Tau, s.expireEvent(r.ID))
	s.resv[r.ID] = e
	s.stats.RecordAccept(g.Bandwidth, r.Volume)
	s.logLocked(trace.EventAccept, r, g, "")
	s.poke()
	return Decision{
		ID: r.ID, Accepted: true, State: s.liveStateLocked(e),
		Rate: g.Bandwidth, Sigma: g.Sigma, Tau: g.Tau,
	}
}

func (s *Server) rejectLocked(r request.Request, reason string) Decision {
	s.stats.RecordReject()
	s.logLocked(trace.EventReject, r, request.Grant{}, reason)
	return Decision{ID: r.ID, State: StateRejected, Reason: reason}
}

// expireEvent returns the des callback that retires reservation id when
// its τ(r) passes. It runs with s.mu held: every sim.RunUntil call site
// is inside advanceLocked.
func (s *Server) expireEvent(id request.ID) des.Event {
	return func(*des.Simulator) {
		e, ok := s.resv[id]
		if !ok || e.state != StateActive {
			return
		}
		s.ledger.Revoke(e.req)
		e.state = StateExpired
		s.stats.RecordExpire()
		s.logLocked(trace.EventExpire, e.req, e.grant, "")
		s.retireLocked(id)
	}
}

// retireLocked records a terminal reservation for later Lookup and evicts
// the oldest ones beyond the retention bound.
func (s *Server) retireLocked(id request.ID) {
	s.finished = append(s.finished, id)
	for len(s.finished) > s.retention {
		evict := s.finished[0]
		s.finished = s.finished[1:]
		delete(s.resv, evict)
	}
}

// liveStateLocked derives booked vs active from the clock.
func (s *Server) liveStateLocked(e *entry) State {
	if e.state != StateActive {
		return e.state
	}
	if s.sim.Now() < e.grant.Sigma {
		return StateBooked
	}
	return StateActive
}

// Cancel revokes a live reservation, returning its capacity at once. A
// reservation may be cancelled after its σ(r) — the grid job it fed may
// have aborted — which frees the remaining window too.
func (s *Server) Cancel(id request.ID) (Decision, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked()
	e, ok := s.resv[id]
	if !ok {
		return Decision{}, ErrNotFound
	}
	if e.state != StateActive {
		return s.decisionLocked(e), ErrFinished
	}
	s.sim.Cancel(e.expire)
	s.ledger.Revoke(e.req)
	e.state = StateCancelled
	s.stats.RecordCancel()
	s.logLocked(trace.EventCancel, e.req, e.grant, "")
	s.retireLocked(id)
	return s.decisionLocked(e), nil
}

// Lookup reports the decision record of a known reservation.
func (s *Server) Lookup(id request.ID) (Decision, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked()
	e, ok := s.resv[id]
	if !ok {
		return Decision{}, ErrNotFound
	}
	return s.decisionLocked(e), nil
}

func (s *Server) decisionLocked(e *entry) Decision {
	return Decision{
		ID: e.req.ID, Accepted: true, State: s.liveStateLocked(e),
		Rate: e.grant.Bandwidth, Sigma: e.grant.Sigma, Tau: e.grant.Tau,
	}
}

// PointStatus is the live occupancy of one access point.
type PointStatus struct {
	Dir         topology.Direction
	Point       topology.PointID
	Capacity    units.Bandwidth
	Used        units.Bandwidth
	Utilization float64
}

// Status is the instantaneous control-plane view.
type Status struct {
	Now            units.Time
	Policy         string
	Booked, Active int
	Stats          metrics.Online
	Points         []PointStatus
}

// Status reports the live view at the current service time.
func (s *Server) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked()
	st := Status{Now: s.sim.Now(), Policy: s.policyName, Stats: s.stats}
	for _, e := range s.resv {
		switch s.liveStateLocked(e) {
		case StateBooked:
			st.Booked++
		case StateActive:
			st.Active++
		}
	}
	in, eg := s.ledger.UsageAt(s.sim.Now())
	for i, used := range in {
		st.Points = append(st.Points, pointStatus(topology.Ingress, i, s.net.Bin(topology.PointID(i)), used))
	}
	for e, used := range eg {
		st.Points = append(st.Points, pointStatus(topology.Egress, e, s.net.Bout(topology.PointID(e)), used))
	}
	return st
}

func pointStatus(dir topology.Direction, i int, cap, used units.Bandwidth) PointStatus {
	ps := PointStatus{Dir: dir, Point: topology.PointID(i), Capacity: cap, Used: used}
	if cap > 0 {
		ps.Utilization = float64(used) / float64(cap)
	}
	return ps
}

// LiveReservations returns the requests and grants currently holding
// capacity, in ID order — the input for independent feasibility replay.
func (s *Server) LiveReservations() []Reservation {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked()
	var out []Reservation
	for _, e := range s.resv {
		if e.state == StateActive {
			out = append(out, Reservation{Req: e.req, Grant: e.grant, State: s.liveStateLocked(e)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Req.ID < out[j].Req.ID })
	return out
}

// VerifyInvariant audits every ledger profile against equation (1).
func (s *Server) VerifyInvariant() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ledger.CheckInvariant()
}

// Closed reports whether the server is draining (readiness probe input).
func (s *Server) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// InFlightLimit reports the admission semaphore's size; 0 when shedding
// is disabled.
func (s *Server) InFlightLimit() int { return cap(s.inflight) }

// InFlight reports how many submissions currently hold a semaphore slot.
func (s *Server) InFlight() int { return len(s.inflight) }

// acquire takes an admission slot; false means the server is over its
// in-flight limit and the submission must be shed.
func (s *Server) acquire() bool {
	if s.inflight == nil {
		return true
	}
	select {
	case s.inflight <- struct{}{}:
		return true
	default:
		return false
	}
}

func (s *Server) release() {
	if s.inflight != nil {
		<-s.inflight
	}
}

// recordShed counts an overload-shed submission.
func (s *Server) recordShed() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.RecordShed()
}

// recordPanic counts a recovered handler panic and audits it in the
// decision log so operators can see crashes that never reached a client.
func (s *Server) recordPanic(where string, val any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked()
	s.stats.RecordPanic()
	if s.decisions != nil {
		_ = s.decisions.Append(trace.Event{
			At: float64(s.sim.Now()), Kind: trace.EventPanic,
			Request: -1, Ingress: -1, Egress: -1,
			Reason: fmt.Sprintf("%s: %v", where, val),
		})
	}
}

func (s *Server) logLocked(kind string, r request.Request, g request.Grant, reason string) {
	if s.decisions == nil {
		return
	}
	// Log failures must not fail admission; the daemon surfaces them
	// through the writer it installed.
	_ = s.decisions.Append(trace.Event{
		At: float64(s.sim.Now()), Kind: kind, Request: int(r.ID),
		Ingress: int(r.Ingress), Egress: int(r.Egress),
		RateBps: float64(g.Bandwidth), SigmaS: float64(g.Sigma), TauS: float64(g.Tau),
		VolumeB: float64(r.Volume), MaxRateBps: float64(r.MaxRate),
		Reason: reason,
	})
}
