// Package server is the online admission-control plane of gridbwd: the
// paper's §3–5 admission algorithms behind a concurrent, wall-clock
// HTTP/JSON service instead of a batch DES driver.
//
// Concurrency is sharded the way equation (1) is: the constraint system
// is independent per access point, so the capacity ledger (alloc.Sharded)
// keeps one lock per ingress/egress profile and an admission only holds
// the two shards its route touches — submissions through disjoint point
// pairs decide fully in parallel. What remains global — the service
// clock, the expiry event queue, the reservation registry, ID allocation
// and the idempotency cache — lives behind one small mutex (s.mu) whose
// critical sections are map operations, never admission searches.
//
// Lock order: s.mu first, shard locks second (the expiry and cancel paths
// revoke through the sharded ledger while holding s.mu). The admission
// path holds shard locks without s.mu and must never take it; it re-enters
// s.mu only after releasing the pair.
//
// Admission is the paper's machinery unchanged — rigid requests
// (MinRate ≈ MaxRate) get book-ahead admission, searching the earliest
// feasible start over the profiles' usage breakpoints exactly like
// core.Planner; flexible requests get immediate-start admission at the
// configured policy's rate, like the §5.1 GREEDY step. Grants expire as
// their τ(r) passes: a des.Simulator orders the expiry events and a
// background goroutine sleeps until the next deadline (des.Next) and fires
// them against real time, returning capacity to the ledger.
//
// The whole control-plane state — capacities, policy, clock, counters and
// every live reservation — round-trips through a JSON Snapshot, so a
// restarted daemon resumes without ever violating the capacity constraint
// of equation (1): restore replays the live grants into a fresh ledger,
// which re-checks the constraint system.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"slices"
	"sync"
	"time"

	"gridbw/internal/alloc"
	"gridbw/internal/core"
	"gridbw/internal/des"
	"gridbw/internal/metrics"
	"gridbw/internal/policy"
	"gridbw/internal/request"
	"gridbw/internal/topology"
	"gridbw/internal/trace"
	"gridbw/internal/units"
	"gridbw/internal/wal"
)

// Config describes the platform a Server admits onto.
type Config struct {
	// Ingress and Egress list the access-point capacities.
	Ingress, Egress []units.Bandwidth
	// Policy names the bandwidth-assignment policy ("minbw", "f=<x>", …);
	// defaults to "minbw".
	Policy string
	// Clock supplies wall time; defaults to time.Now. Tests inject a
	// manual clock for deterministic expiry.
	Clock func() time.Time
	// Decisions, when non-nil, receives every admission event. The plain
	// *trace.DecisionLog writes JSON lines; any sink satisfies it.
	Decisions trace.DecisionSink
	// WAL, when non-nil, is the durable framed decision log: every event
	// is appended to it (under the fsync policy the WAL was opened with)
	// and it doubles as the replication stream a follower pulls. The
	// server does not own it — the caller opens and closes it.
	WAL *wal.Log
	// Follow, when non-empty, boots the server as a read-only follower of
	// the primary daemon at this base URL: submissions and cancels answer
	// ErrReadOnly until Promote. StartFollowing begins the pull loop.
	Follow string
	// Peers lists the base URLs of every replication-group member (self
	// included — a node recognizes itself by its follower role). A
	// follower whose pull source stops answering, or turns out to be a
	// deposed primary, probes the peers for the epoch-dominant live
	// primary and re-points its pull loop at it — the losing follower of
	// an election converges onto the winner instead of pulling a dead
	// endpoint forever.
	Peers []string
	// Epoch seeds the fencing epoch; 0 loads it from the WAL directory
	// (or starts at 1). Promotion increments and persists it.
	Epoch uint64
	// FinishedRetention bounds how many expired/cancelled reservations
	// stay queryable via Lookup before the oldest are evicted; <= 0 means
	// the default of 4096. The idempotency cache shares the same bound.
	// Both caches are FIFO: once a reservation ID is evicted, Lookup and
	// Cancel answer ErrNotFound (HTTP 404), and once a key is evicted a
	// submission reusing it books a fresh reservation.
	FinishedRetention int
	// MaxInFlight bounds concurrently-served submissions at the HTTP
	// layer; excess requests are shed with 429 Too Many Requests rather
	// than queued without bound. 0 means the default of 64; negative
	// disables shedding.
	MaxInFlight int
	// RetryAfter is the backoff hint attached to shed responses;
	// defaults to 1s.
	RetryAfter time.Duration
	// MaxBatch bounds how many submissions one POST /v1/batch may carry;
	// 0 means the default of 1024.
	MaxBatch int
	// ReplID names this node inside its replication group: followers
	// present it on every pull (so the primary can track per-follower lag
	// and count their cursors as durability acks) and it is the candidate
	// identity in promotion votes. Empty is allowed for single-node or
	// legacy pair deployments — an anonymous follower still replicates,
	// but its acks cannot satisfy a sync-ack quorum.
	ReplID string
	// SyncMode selects the synchronous-ack durability mode for the decide
	// pipeline: "off" (or empty) acks the client as soon as the decision
	// is WAL'd locally, "one" parks the response until one follower's
	// cursor passes the decision's WAL frame, and "quorum" waits for
	// SyncAcks followers. A wait that outlives SyncTimeout degrades to
	// async (the admission still answers) and bumps the sync_degraded
	// counter rather than failing the submission.
	SyncMode string
	// SyncAcks is the follower-ack count "quorum" mode waits for — for a
	// group of G members, G/2 followers (the majority minus the primary
	// itself); <= 0 means 1.
	SyncAcks int
	// SyncTimeout bounds every synchronous-ack wait; 0 means 2s.
	SyncTimeout time.Duration
}

const (
	defaultFinishedRetention = 4096
	defaultMaxInFlight       = 64
	defaultRetryAfter        = time.Second
	defaultMaxBatch          = 1024
	defaultSyncTimeout       = 2 * time.Second
)

// State is a reservation's lifecycle position.
type State string

const (
	// StateBooked: accepted, σ(r) still in the future (book-ahead).
	StateBooked State = "booked"
	// StateActive: accepted and transmitting (σ ≤ now < τ).
	StateActive State = "active"
	// StateExpired: τ(r) passed; capacity returned.
	StateExpired State = "expired"
	// StateCancelled: revoked by the client before τ(r).
	StateCancelled State = "cancelled"
	// StateRejected: never admitted; only appears in Decisions.
	StateRejected State = "rejected"
)

// Submission is an online reservation request. Times are absolute service
// time (seconds since the daemon epoch); NotBefore values in the past are
// clamped to now.
type Submission struct {
	// From and To are ingress and egress point indices.
	From, To int
	Volume   units.Volume
	// NotBefore is the earliest admissible start; zero means "now".
	NotBefore units.Time
	// Deadline is the absolute instant by which the transfer must finish.
	Deadline units.Time
	// MaxRate is the host transmission cap.
	MaxRate units.Bandwidth
	// IdempotencyKey, when non-empty, makes the submission safely
	// retryable: a second Submit with the same key returns the original
	// decision instead of booking again.
	IdempotencyKey string
	// Durable parks the response until the decision's WAL frame is acked
	// by at least one follower (or SyncAcks of them when configured),
	// even when the server's SyncMode is "off" — the per-request opt-in
	// to synchronous replication.
	Durable bool
}

// Decision is the server's answer to a Submission or Lookup.
type Decision struct {
	ID       request.ID
	Accepted bool
	State    State
	// Rate, Sigma and Tau describe the grant of an accepted reservation.
	Rate  units.Bandwidth
	Sigma units.Time
	Tau   units.Time
	// Reason explains a rejection.
	Reason string
}

// Reservation is the full record of one live grant, exposed for
// independent verification (tests replay these into a fresh ledger).
type Reservation struct {
	Req   request.Request
	Grant request.Grant
	State State
}

// Errors mapped to HTTP statuses by the handler layer.
var (
	// ErrClosed reports a submission or cancel on a draining/closed server.
	ErrClosed = errors.New("server: closed")
	// ErrNotFound reports an unknown (or evicted) reservation ID.
	ErrNotFound = errors.New("server: no such reservation")
	// ErrFinished reports a cancel of an already expired or cancelled
	// reservation.
	ErrFinished = errors.New("server: reservation already finished")
	// ErrReadOnly reports a write on a follower replica: it applies the
	// primary's shipped decisions and refuses its own until promoted.
	ErrReadOnly = errors.New("server: read-only replica (promote to accept writes)")
	// ErrNotFollower reports a shipped-batch apply on a server that is
	// not following anyone (already the primary, or promoted since).
	ErrNotFollower = errors.New("server: not a follower")
	// ErrDurabilityLost reports a durable admission refused because the
	// WAL fail-stopped after a disk fault: nothing this process promises
	// to persist can be trusted to reach disk again, so callers that
	// asked for durability get a NACK instead of a lie. Non-durable
	// admissions keep flowing with durability_degraded flipped; a restart
	// re-recovers the WAL and clears the condition.
	ErrDurabilityLost = errors.New("server: WAL poisoned by disk fault, durable admissions refused until restart")
)

// FencedError reports a shipped batch refused because its fencing epoch
// is older than the receiver's — the sender is a deposed primary.
type FencedError struct {
	Batch, Current uint64
}

func (e *FencedError) Error() string {
	return fmt.Sprintf("server: batch epoch %d fenced off (current epoch %d)", e.Batch, e.Current)
}

type entry struct {
	req    request.Request
	grant  request.Grant
	state  State // StateActive while live (Booked derived from clock), else terminal
	expire des.Handle
	// fire is this entry's expiry callback, bound once when the entry is
	// first created by the pool so re-admissions through a recycled entry
	// schedule no new closure. It checks the registry still maps the ID to
	// this entry before acting, so a recycled entry can never be expired by
	// a stale event.
	fire des.Event
}

// idemEntry is one idempotency-cache slot. It is created as a placeholder
// the moment a keyed submission enters the pipeline — a concurrent retry
// with the same key waits on done instead of booking a second time — and
// filled with the decision (or error) when the submission settles.
type idemEntry struct {
	done chan struct{} // closed once d/err are valid
	d    Decision
	err  error
}

// Server is the concurrent admission-control plane.
type Server struct {
	net        *topology.Network
	pol        policy.Policy
	policyName string
	clock      func() time.Time
	decisions  trace.DecisionSink
	wal        *wal.Log
	retention  int
	maxBatch   int

	// Sync-ack durability: acks tracks each follower's pull cursor (its
	// durability acknowledgement); syncNeed is the follower count every
	// submission waits for (0: only Durable-flagged ones wait, for
	// durableNeed followers) within syncTimeout. replID names this node
	// in its replication group.
	acks        *wal.Acks
	syncMode    string
	syncNeed    int
	durableNeed int
	syncTimeout time.Duration
	replID      string
	peers       []string // replication-group base URLs, immutable

	// ledger is internally sharded (one lock per access point); it is not
	// guarded by s.mu. See the package comment for the lock order.
	ledger *alloc.Sharded

	// mu is the small global section: the service clock and expiry queue,
	// the reservation registry, ID allocation, counters and the
	// idempotency cache. Admission searches never run under it.
	mu        sync.Mutex
	sim       *des.Simulator
	epoch     time.Time // wall instant of service time 0
	resv      map[request.ID]*entry
	finished  []request.ID // FIFO eviction queue of terminal IDs
	nextID    request.ID
	stats     metrics.Online
	idem      map[string]*idemEntry
	idemOrder []string  // FIFO eviction queue of idempotency keys
	repl      replState // replication role, fencing epoch, pull cursor
	closed    bool

	// Cross-shard two-phase holds (see holds.go): every hold this shard
	// currently knows about by router key, the ingress-side holds by the
	// local request ID they allocated (cancel routing), and the FIFO
	// eviction queue of resolved holds.
	holds     map[string]*holdEntry
	holdsByID map[request.ID]string
	holdsDone []string

	// watchdogState, when set, reports the in-process failover watchdog's
	// state for the metrics surface. The callback must not call back into
	// the server (it is invoked outside s.mu, but re-entry would surprise).
	watchdogState func() string

	// entryPool recycles reservation entries (and their bound expiry
	// closures) once they are evicted from the finished FIFO, keeping the
	// steady-state accept path allocation-free.
	entryPool sync.Pool

	// inflight is the admission semaphore the HTTP layer acquires around
	// each submission; nil when shedding is disabled.
	inflight   chan struct{}
	retryAfter time.Duration

	// loopNext is the event instant the expiry loop armed its timer for
	// (+inf when no event is pending), guarded by mu. Accepts only poke
	// the loop when their expiry precedes it — waking the loop for an
	// event it would sleep past anyway is pure mutex contention on the
	// admission hot path.
	loopNext units.Time

	kick chan struct{}
	stop chan struct{}
	done chan struct{}
}

// New validates cfg and starts a server with the service clock at 0.
// Callers must Close it to stop the expiry loop.
func New(cfg Config) (*Server, error) {
	net, err := topology.New(topology.Config{Ingress: cfg.Ingress, Egress: cfg.Egress})
	if err != nil {
		return nil, err
	}
	name := cfg.Policy
	if name == "" {
		name = "minbw"
	}
	pol, err := core.ParsePolicy(name)
	if err != nil {
		return nil, err
	}
	switch cfg.SyncMode {
	case "", "off", "one", "quorum":
	default:
		return nil, fmt.Errorf("server: unknown sync mode %q (want off, one or quorum)", cfg.SyncMode)
	}
	s := newServer(cfg, net, pol, name)
	s.epoch = s.clock()
	if err := s.initRepl(cfg, 0); err != nil {
		return nil, err
	}
	go s.loop()
	return s, nil
}

func newServer(cfg Config, net *topology.Network, pol policy.Policy, name string) *Server {
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	retention := cfg.FinishedRetention
	if retention <= 0 {
		retention = defaultFinishedRetention
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight == 0 {
		maxInFlight = defaultMaxInFlight
	}
	var inflight chan struct{}
	if maxInFlight > 0 {
		inflight = make(chan struct{}, maxInFlight)
	}
	retryAfter := cfg.RetryAfter
	if retryAfter <= 0 {
		retryAfter = defaultRetryAfter
	}
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = defaultMaxBatch
	}
	syncAcks := cfg.SyncAcks
	if syncAcks <= 0 {
		syncAcks = 1
	}
	syncMode := cfg.SyncMode
	if syncMode == "" {
		syncMode = "off"
	}
	syncNeed := 0
	switch syncMode {
	case "one":
		syncNeed = 1
	case "quorum":
		syncNeed = syncAcks
	}
	syncTimeout := cfg.SyncTimeout
	if syncTimeout <= 0 {
		syncTimeout = defaultSyncTimeout
	}
	s := &Server{
		net:        net,
		pol:        pol,
		policyName: name,
		clock:      clock,
		decisions:  cfg.Decisions,
		wal:        cfg.WAL,
		retention:  retention,
		maxBatch:   maxBatch,
		acks:       wal.NewAcks(clock),
		syncMode:   syncMode,
		syncNeed:   syncNeed,
		// A Durable submission under mode "off" or "one" still honors the
		// configured group size, so "any one follower" vs "a majority" is
		// one knob (SyncAcks) regardless of mode.
		durableNeed: syncAcks,
		syncTimeout: syncTimeout,
		replID:      cfg.ReplID,
		peers:       normalizePeers(cfg.Peers),
		ledger:      alloc.NewSharded(net),
		sim:         des.New(),
		resv:        make(map[request.ID]*entry),
		idem:        make(map[string]*idemEntry),
		holds:       make(map[string]*holdEntry),
		holdsByID:   make(map[request.ID]string),
		inflight:    inflight,
		retryAfter:  retryAfter,
		loopNext:    units.Time(math.Inf(1)),
		kick:        make(chan struct{}, 1),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	s.entryPool.New = func() any {
		e := new(entry)
		e.fire = func(*des.Simulator) { s.fireExpire(e) }
		return e
	}
	return s
}

// allocEntry takes a recycled (or fresh) entry from the pool. Entries that
// entered the pool from a non-pool path may lack the bound expiry
// callback; bind it here so every pooled entry is schedulable.
func (s *Server) allocEntry() *entry {
	e := s.entryPool.Get().(*entry)
	if e.fire == nil {
		e.fire = func(*des.Simulator) { s.fireExpire(e) }
	}
	return e
}

// freeEntry clears a retired entry's payload and recycles it. Only call
// once the entry left s.resv and its expiry event has fired or been
// cancelled.
func (s *Server) freeEntry(e *entry) {
	e.req, e.grant, e.state, e.expire = request.Request{}, request.Grant{}, "", des.Handle{}
	s.entryPool.Put(e)
}

// SetWatchdogState registers a callback reporting the in-process failover
// watchdog's position in the promotion ladder ("follower", "suspect",
// "electing", "promoting", "primary") so /v1/metricsz can expose it as a
// gauge.
func (s *Server) SetWatchdogState(fn func() string) {
	s.mu.Lock()
	s.watchdogState = fn
	s.mu.Unlock()
}

// watchdogStateNow reports the registered watchdog's state, or "" when no
// watchdog runs in this process. The callback runs outside s.mu.
func (s *Server) watchdogStateNow() string {
	s.mu.Lock()
	fn := s.watchdogState
	s.mu.Unlock()
	if fn == nil {
		return ""
	}
	return fn()
}

// syncNeedFor reports how many follower acks a submission must wait for:
// the configured mode's count, raised to the group quorum when the
// submission opted into Durable. 0 means no wait.
func (s *Server) syncNeedFor(durable bool) int {
	need := s.syncNeed
	if durable && s.durableNeed > need {
		need = s.durableNeed
	}
	return need
}

// FollowerAcks reports the per-follower acknowledged positions this
// primary has observed on its pull endpoint.
func (s *Server) FollowerAcks() map[string]wal.FollowerAck { return s.acks.Snapshot() }

// WALPoisoned reports whether the WAL fail-stopped after a disk fault
// (see wal.ErrPoisoned). While poisoned the server refuses durable
// admissions with ErrDurabilityLost and never reports replicated
// durability; only a restart clears it.
func (s *Server) WALPoisoned() bool {
	return s.wal != nil && s.wal.Poisoned() != nil
}

// Network reports the platform.
func (s *Server) Network() *topology.Network { return s.net }

// PolicyName reports the configured bandwidth-assignment policy.
func (s *Server) PolicyName() string { return s.policyName }

// MaxBatch reports the per-call submission bound of SubmitBatch.
func (s *Server) MaxBatch() int { return s.maxBatch }

// Now reports the current service time.
func (s *Server) Now() units.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked()
	return s.sim.Now()
}

// wallNow maps the wall clock onto service time.
func (s *Server) wallNow() units.Time {
	return units.Time(s.clock().Sub(s.epoch).Seconds())
}

// advanceLocked moves the service clock to wall time, firing due expiry
// events. Callers hold s.mu.
func (s *Server) advanceLocked() {
	if t := s.wallNow(); t > s.sim.Now() {
		s.sim.RunUntil(t)
	}
}

// loop is the wall-clock expiry driver: it sleeps until the next grant's
// τ(r) (or until an admission re-arms it) and advances the event clock.
func (s *Server) loop() {
	defer close(s.done)
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		s.mu.Lock()
		s.advanceLocked()
		next, ok := s.sim.Next()
		if ok {
			s.loopNext = next
		} else {
			s.loopNext = units.Time(math.Inf(1))
		}
		s.mu.Unlock()

		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		sleep := time.Hour
		if ok {
			sleep = s.epoch.Add(time.Duration(float64(next) * float64(time.Second))).Sub(s.clock())
			if sleep < 0 {
				sleep = 0
			}
		}
		timer.Reset(sleep)

		select {
		case <-s.stop:
			return
		case <-s.kick:
		case <-timer.C:
		}
	}
}

// poke re-arms the expiry loop after the event queue changed.
func (s *Server) poke() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// Close stops the expiry loop and refuses further submissions and
// cancels. Read operations (Lookup, Status, Snapshot) keep working so a
// draining daemon can persist its final state.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	pullDone := s.stopPullLocked()
	s.mu.Unlock()
	close(s.stop)
	<-s.done
	if pullDone != nil {
		<-pullDone
	}
	return nil
}

// validateSubmission rejects malformed submissions before they enter the
// pipeline. It reads only immutable state, so it needs no lock.
func (s *Server) validateSubmission(sub Submission) error {
	if sub.From < 0 || sub.From >= s.net.NumIngress() {
		return fmt.Errorf("server: ingress %d out of range [0,%d)", sub.From, s.net.NumIngress())
	}
	if sub.To < 0 || sub.To >= s.net.NumEgress() {
		return fmt.Errorf("server: egress %d out of range [0,%d)", sub.To, s.net.NumEgress())
	}
	if sub.Volume <= 0 {
		return fmt.Errorf("server: non-positive volume %v", sub.Volume)
	}
	if sub.MaxRate <= 0 {
		return fmt.Errorf("server: non-positive max rate %v", sub.MaxRate)
	}
	return nil
}

// Submit decides a reservation request against the live ledger. The
// returned error is reserved for malformed submissions (bad indices,
// non-positive volume or rate) and ErrClosed; an infeasible request is a
// normal rejected Decision, not an error. Submit is the one-element case
// of the batched pipeline, so both paths share every locking and
// idempotency rule.
func (s *Server) Submit(sub Submission) (Decision, error) {
	res, err := s.submitOne(sub)
	return res.Decision, err
}

// rememberLocked caches an idempotency-cache slot under its key, bounded
// by the same FIFO retention as finished reservations.
func (s *Server) rememberLocked(key string, e *idemEntry) {
	s.idem[key] = e
	s.idemOrder = append(s.idemOrder, key)
	for len(s.idemOrder) > s.retention {
		evict := s.idemOrder[0]
		s.idemOrder = s.idemOrder[1:]
		delete(s.idem, evict)
	}
}

// acceptLocked registers an admitted reservation: the grant was already
// committed to the sharded ledger by the admission phase; here the entry
// becomes visible, its expiry is scheduled and the accept is audited.
func (s *Server) acceptLocked(r request.Request, g request.Grant) Decision {
	e := s.allocEntry()
	e.req, e.grant, e.state = r, g, StateActive
	at := g.Tau
	if now := s.sim.Now(); at < now {
		// The clock passed τ(r) while the admission ran outside s.mu;
		// fire the expiry on the next advance instead of panicking des.
		at = now
	}
	e.expire = s.sim.At(at, e.fire)
	s.resv[r.ID] = e
	s.stats.RecordAccept(g.Bandwidth, r.Volume)
	s.logLocked(trace.EventAccept, r, g, "")
	if at < s.loopNext {
		s.poke()
	}
	return Decision{
		ID: r.ID, Accepted: true, State: s.liveStateLocked(e),
		Rate: g.Bandwidth, Sigma: g.Sigma, Tau: g.Tau,
	}
}

func (s *Server) rejectLocked(r request.Request, reason string) Decision {
	s.stats.RecordReject()
	s.logLocked(trace.EventReject, r, request.Grant{}, reason)
	return Decision{ID: r.ID, State: StateRejected, Reason: reason}
}

// fireExpire retires the reservation held by e when its τ(r) passes. It
// runs with s.mu held: every sim.RunUntil call site is inside
// advanceLocked. Revoking takes the route's shard locks while holding
// s.mu — the one permitted nesting direction. The registry identity check
// guards against stale events on recycled entries.
func (s *Server) fireExpire(e *entry) {
	id := e.req.ID
	if cur, ok := s.resv[id]; !ok || cur != e || e.state != StateActive {
		return
	}
	s.ledger.Revoke(e.req)
	e.state = StateExpired
	s.stats.RecordExpire()
	s.logLocked(trace.EventExpire, e.req, e.grant, "")
	s.retireLocked(id)
}

// expireEvent returns a des callback that retires reservation id — the
// by-ID form used by restore paths whose entries were built outside the
// pool (snapshot restore, promotion re-arming).
func (s *Server) expireEvent(id request.ID) des.Event {
	return func(*des.Simulator) {
		e, ok := s.resv[id]
		if !ok || e.state != StateActive {
			return
		}
		s.fireExpire(e)
	}
}

// retireLocked records a terminal reservation for later Lookup and evicts
// the oldest ones beyond the retention bound.
func (s *Server) retireLocked(id request.ID) {
	s.finished = append(s.finished, id)
	for len(s.finished) > s.retention {
		evict := s.finished[0]
		s.finished = s.finished[1:]
		if e, ok := s.resv[evict]; ok {
			delete(s.resv, evict)
			// Terminal and evicted: its expiry event fired or was
			// cancelled, and nothing outside s.mu holds entries, so the
			// record can be recycled.
			s.freeEntry(e)
		}
	}
}

// liveStateLocked derives booked vs active from the clock.
func (s *Server) liveStateLocked(e *entry) State {
	if e.state != StateActive {
		return e.state
	}
	if s.sim.Now() < e.grant.Sigma {
		return StateBooked
	}
	return StateActive
}

// Cancel revokes a live reservation, returning its capacity at once. A
// reservation may be cancelled after its σ(r) — the grid job it fed may
// have aborted — which frees the remaining window too. A draining server
// refuses cancels with ErrClosed, exactly like Submit: its expiry loop has
// stopped, so mutating the ledger would leave capacity accounting adrift.
func (s *Server) Cancel(id request.ID) (Decision, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Decision{}, ErrClosed
	}
	if s.repl.following {
		return Decision{}, ErrReadOnly
	}
	s.advanceLocked()
	e, ok := s.resv[id]
	if !ok {
		return Decision{}, ErrNotFound
	}
	if e.state != StateActive {
		return s.decisionLocked(e), ErrFinished
	}
	s.sim.Cancel(e.expire)
	s.ledger.Revoke(e.req)
	e.state = StateCancelled
	s.stats.RecordCancel()
	s.logLocked(trace.EventCancel, e.req, e.grant, "")
	s.retireLocked(id)
	return s.decisionLocked(e), nil
}

// Lookup reports the decision record of a known reservation.
func (s *Server) Lookup(id request.ID) (Decision, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked()
	e, ok := s.resv[id]
	if !ok {
		return Decision{}, ErrNotFound
	}
	return s.decisionLocked(e), nil
}

func (s *Server) decisionLocked(e *entry) Decision {
	return Decision{
		ID: e.req.ID, Accepted: true, State: s.liveStateLocked(e),
		Rate: e.grant.Bandwidth, Sigma: e.grant.Sigma, Tau: e.grant.Tau,
	}
}

// PointStatus is the live occupancy of one access point.
type PointStatus struct {
	Dir         topology.Direction
	Point       topology.PointID
	Capacity    units.Bandwidth
	Used        units.Bandwidth
	Utilization float64
}

// Status is the instantaneous control-plane view.
type Status struct {
	Now            units.Time
	Policy         string
	Role           string // "primary" or "follower"
	Epoch          uint64 // fencing epoch
	Booked, Active int
	Stats          metrics.Online
	Points         []PointStatus
}

// Status reports the live view at the current service time.
func (s *Server) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked()
	st := Status{
		Now: s.sim.Now(), Policy: s.policyName,
		Role: s.roleLocked(), Epoch: s.repl.epoch, Stats: s.stats,
	}
	for _, e := range s.resv {
		switch s.liveStateLocked(e) {
		case StateBooked:
			st.Booked++
		case StateActive:
			st.Active++
		}
	}
	in, eg := s.ledger.UsageAt(s.sim.Now())
	for i, used := range in {
		st.Points = append(st.Points, pointStatus(topology.Ingress, i, s.net.Bin(topology.PointID(i)), used))
	}
	for e, used := range eg {
		st.Points = append(st.Points, pointStatus(topology.Egress, e, s.net.Bout(topology.PointID(e)), used))
	}
	return st
}

func pointStatus(dir topology.Direction, i int, cap, used units.Bandwidth) PointStatus {
	ps := PointStatus{Dir: dir, Point: topology.PointID(i), Capacity: cap, Used: used}
	if cap > 0 {
		ps.Utilization = float64(used) / float64(cap)
	}
	return ps
}

// ShardStats reports the sharded ledger's per-point lock traffic.
func (s *Server) ShardStats() []alloc.ShardStat { return s.ledger.Stats() }

// LiveReservations returns the requests and grants currently holding
// capacity, in ID order — the input for independent feasibility replay.
func (s *Server) LiveReservations() []Reservation {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked()
	var out []Reservation
	for _, e := range s.resv {
		if e.state == StateActive {
			out = append(out, Reservation{Req: e.req, Grant: e.grant, State: s.liveStateLocked(e)})
		}
	}
	slices.SortFunc(out, func(a, b Reservation) int { return int(a.Req.ID) - int(b.Req.ID) })
	return out
}

// VerifyInvariant audits equation (1) across every shard, twice over:
// first the sharded profiles themselves (all shards locked in the global
// order, one consistent cut), then an independent replay of the live
// registry into a fresh single-threaded ledger — if the recorded grants
// could not be re-admitted, the shards and the registry have diverged.
func (s *Server) VerifyInvariant() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ledger.CheckInvariant(); err != nil {
		return err
	}
	var live []*entry
	for _, e := range s.resv {
		if e.state == StateActive {
			live = append(live, e)
		}
	}
	slices.SortFunc(live, func(a, b *entry) int { return int(a.req.ID) - int(b.req.ID) })
	fresh := alloc.NewLedger(s.net)
	for _, e := range live {
		if err := fresh.Reserve(e.req, e.grant); err != nil {
			return fmt.Errorf("server: live registry fails replay: %w", err)
		}
	}
	return fresh.CheckInvariant()
}

// Closed reports whether the server is draining (readiness probe input).
func (s *Server) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// InFlightLimit reports the admission semaphore's size; 0 when shedding
// is disabled.
func (s *Server) InFlightLimit() int { return cap(s.inflight) }

// InFlight reports how many submissions currently hold a semaphore slot.
func (s *Server) InFlight() int { return len(s.inflight) }

// acquire takes an admission slot; false means the server is over its
// in-flight limit and the submission must be shed.
func (s *Server) acquire() bool {
	if s.inflight == nil {
		return true
	}
	select {
	case s.inflight <- struct{}{}:
		return true
	default:
		return false
	}
}

func (s *Server) release() {
	if s.inflight != nil {
		<-s.inflight
	}
}

// recordShed counts an overload-shed submission.
func (s *Server) recordShed() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.RecordShed()
}

// recordBatch counts one served batch call and the submissions it carried.
func (s *Server) recordBatch(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.RecordBatch(n)
}

// recordPanic counts a recovered handler panic and audits it in the
// decision log so operators can see crashes that never reached a client.
func (s *Server) recordPanic(where string, val any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked()
	s.stats.RecordPanic()
	s.appendEventLocked(trace.Event{
		At: float64(s.sim.Now()), Kind: trace.EventPanic,
		Request: -1, Ingress: -1, Egress: -1,
		Reason: fmt.Sprintf("%s: %v", where, val),
	})
}

func (s *Server) logLocked(kind string, r request.Request, g request.Grant, reason string) {
	s.appendEventLocked(trace.Event{
		At: float64(s.sim.Now()), Kind: kind, Request: int(r.ID),
		Ingress: int(r.Ingress), Egress: int(r.Egress),
		RateBps: float64(g.Bandwidth), SigmaS: float64(g.Sigma), TauS: float64(g.Tau),
		VolumeB: float64(r.Volume), MaxRateBps: float64(r.MaxRate),
		Reason: reason,
	})
}

// appendEventLocked records one decision event in the durability chain:
// first the framed WAL (which doubles as the replication stream), then
// the plain decisions sink. Append failures must not fail admission; they
// are counted, flipping the durability-degraded health signal — the
// daemon keeps serving, but operators are paged about the hole.
func (s *Server) appendEventLocked(ev trace.Event) {
	if s.wal != nil {
		blob, err := json.Marshal(ev)
		if err == nil {
			_, err = s.wal.Append(blob)
		}
		if err != nil {
			s.stats.RecordLogAppendFailure()
		}
	}
	if s.decisions != nil {
		if err := s.decisions.Append(ev); err != nil {
			s.stats.RecordLogAppendFailure()
		}
	}
}
