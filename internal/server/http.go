package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"slices"
	"strconv"
	"strings"
	"time"

	"gridbw/internal/metrics"
	"gridbw/internal/request"
	"gridbw/internal/units"
)

// The HTTP/JSON surface of gridbwd. Seven endpoints:
//
//	POST   /v1/requests       submit a reservation request
//	POST   /v1/batch          submit many requests, decided in one pass
//	GET    /v1/requests/{id}  look up one reservation
//	DELETE /v1/requests/{id}  cancel a live reservation
//	GET    /v1/status         platform occupancy + lifetime counters
//	GET    /v1/metricsz       counters as JSON, or Prometheus text under
//	                          Accept: text/plain
//	GET    /v1/healthz        readiness probe (503 while draining)
//
// Submissions may carry an Idempotency-Key header (or the equivalent
// body field) making retries safe, and both submission endpoints are
// bounded by the server's in-flight limit: excess calls get 429 with a
// Retry-After hint instead of queueing without bound.
//
// Lookup and cancel answer from bounded caches: a reservation stays
// queryable after it expires or is cancelled only until FinishedRetention
// newer terminal reservations push it out, after which GET and DELETE
// return 404. The idempotency cache is bounded the same way — an evicted
// key behaves like a fresh one and books again — so clients should not
// retry across more than FinishedRetention intervening submissions.
//
// Quantities accept both base-unit numbers (volume_bytes, max_rate_bps,
// deadline_s) and human-readable strings (volume "500GB", max_rate
// "1GB/s", deadline_in "1h" relative to the service clock), so the API is
// usable from curl without arithmetic.

// SubmitRequest is the POST /v1/requests body.
type SubmitRequest struct {
	From int `json:"from"`
	To   int `json:"to"`
	// VolumeBytes or Volume ("500GB") set the transfer size.
	VolumeBytes float64 `json:"volume_bytes,omitempty"`
	Volume      string  `json:"volume,omitempty"`
	// MaxRateBps or MaxRate ("1GB/s") set the host transmission cap.
	MaxRateBps float64 `json:"max_rate_bps,omitempty"`
	MaxRate    string  `json:"max_rate,omitempty"`
	// NotBeforeS/DeadlineS are absolute service time (seconds since the
	// daemon epoch); StartIn/DeadlineIn ("90s", "1h") are relative to now.
	NotBeforeS float64 `json:"not_before_s,omitempty"`
	StartIn    string  `json:"start_in,omitempty"`
	DeadlineS  float64 `json:"deadline_s,omitempty"`
	DeadlineIn string  `json:"deadline_in,omitempty"`
	// IdempotencyKey makes the submission retryable; the Idempotency-Key
	// request header is an equivalent spelling.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
	// Durable parks the response until the decision is replicated to the
	// configured follower-ack count, even when the daemon's sync mode is
	// off (see -repl-sync); the wait degrades to async at the deadline.
	Durable bool `json:"durable,omitempty"`
}

// ReservationJSON is the wire form of a Decision.
type ReservationJSON struct {
	ID       int     `json:"id"`
	Accepted bool    `json:"accepted"`
	State    string  `json:"state"`
	RateBps  float64 `json:"rate_bps,omitempty"`
	Rate     string  `json:"rate,omitempty"`
	SigmaS   float64 `json:"sigma_s,omitempty"`
	TauS     float64 `json:"tau_s,omitempty"`
	Reason   string  `json:"reason,omitempty"`
	// Durability is the sync-ack outcome when the decision waited on
	// follower acks: "replicated" (enough followers persisted it) or
	// "degraded" (the deadline lapsed; it is only locally durable).
	// Absent when no synchronous replication applied.
	Durability string `json:"durability,omitempty"`
	// Routed is set by the router tier: "cross_shard" when the decision
	// went through the two-phase hold protocol because the pair's ingress
	// and egress points live on different shards. Absent on direct or
	// same-shard answers.
	Routed string `json:"routed,omitempty"`
}

// RoutedCrossShard is ReservationJSON.Routed's value on decisions the
// router drove through the cross-shard two-phase protocol.
const RoutedCrossShard = "cross_shard"

// PointJSON is the wire form of a PointStatus.
type PointJSON struct {
	Dir         string  `json:"dir"`
	Point       int     `json:"point"`
	CapacityBps float64 `json:"capacity_bps"`
	UsedBps     float64 `json:"used_bps"`
	Utilization float64 `json:"utilization"`
}

// StatusJSON is the GET /v1/status body.
type StatusJSON struct {
	NowS           float64 `json:"now_s"`
	Policy         string  `json:"policy"`
	Role           string  `json:"role"`
	Epoch          uint64  `json:"epoch"`
	Booked         int     `json:"booked"`
	Active         int     `json:"active"`
	Submitted      uint64  `json:"submitted"`
	Accepted       uint64  `json:"accepted"`
	Rejected       uint64  `json:"rejected"`
	Cancelled      uint64  `json:"cancelled"`
	Expired        uint64  `json:"expired"`
	Shed           uint64  `json:"shed"`
	IdempotentHits uint64  `json:"idempotent_hits"`
	Panics         uint64  `json:"panics"`
	Batches        uint64  `json:"batches"`
	BatchRequests  uint64  `json:"batch_requests"`
	AcceptRate     float64 `json:"accept_rate"`
	MeanGrantedBps float64 `json:"mean_granted_rate_bps"`
	// LogAppendFailures and DurabilityDegraded surface decision-log or
	// WAL appends that failed: the daemon keeps serving, but its audit
	// trail has a hole a crash could turn into forgotten decisions.
	LogAppendFailures  uint64      `json:"log_append_failures"`
	DurabilityDegraded bool        `json:"durability_degraded"`
	Points             []PointJSON `json:"points"`
}

// BatchRequest is the POST /v1/batch body: up to MaxBatch submissions
// decided in one pass. Items competing for the same scarce window are
// decided in (ingress, egress, input) order, not strictly input order.
type BatchRequest struct {
	Requests []SubmitRequest `json:"requests"`
}

// BatchItemJSON is one submission's outcome within a batch response:
// exactly one of Reservation or Error is set.
type BatchItemJSON struct {
	Reservation *ReservationJSON `json:"reservation,omitempty"`
	Error       string           `json:"error,omitempty"`
}

// BatchResponse is the POST /v1/batch body: one result per submitted
// request, in input order.
type BatchResponse struct {
	Results []BatchItemJSON `json:"results"`
}

// ErrorJSON is the body of every non-2xx response.
type ErrorJSON struct {
	Error string `json:"error"`
}

// Handler returns the daemon's HTTP API: the route mux behind the
// panic-recovery middleware, with submissions behind load shedding.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/requests", s.shed(http.HandlerFunc(s.handleSubmit)))
	mux.Handle("POST /v1/batch", s.shed(http.HandlerFunc(s.handleBatch)))
	mux.Handle("POST /v1/reserve", s.shed(http.HandlerFunc(s.handleHoldReserve)))
	mux.HandleFunc("POST /v1/confirm", s.handleHoldConfirm)
	mux.HandleFunc("POST /v1/abort", s.handleHoldAbort)
	mux.HandleFunc("GET /v1/requests/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/requests/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("GET /v1/metricsz", s.handleMetricsz)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/replication/pull", s.handleReplPull)
	mux.HandleFunc("GET /v1/replication/status", s.handleReplStatus)
	mux.HandleFunc("GET /v1/replication/snapshot", s.handleReplSnapshot)
	mux.HandleFunc("POST /v1/replication/promote", s.handlePromote)
	mux.HandleFunc("POST /v1/replication/vote", s.handleVote)
	return s.Recoverer(mux)
}

// Recoverer converts handler panics into 500 responses instead of
// killing the connection (and, under net/http, only that goroutine —
// leaving the daemon in an untracked half-broken state). Each recovered
// panic is counted and audited in the decision log.
func (s *Server) Recoverer(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.recordPanic(r.Method+" "+r.URL.Path, v)
				writeError(w, http.StatusInternalServerError, fmt.Errorf("internal error"))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// shed bounds concurrent submissions: when every in-flight slot is
// taken the request is refused immediately with 429 and a Retry-After
// hint, so overload degrades into fast, explicit backpressure.
func (s *Server) shed(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !s.acquire() {
			s.recordShed()
			w.Header().Set("Retry-After", strconv.Itoa(int((s.retryAfter+time.Second-1)/time.Second)))
			writeError(w, http.StatusTooManyRequests, errOverloaded)
			return
		}
		defer s.release()
		next.ServeHTTP(w, r)
	})
}

var errOverloaded = errors.New("server: overloaded, retry later")

// HealthJSON is the GET /v1/healthz body.
type HealthJSON struct {
	Status      string  `json:"status"` // "ok", "degraded" or "draining"
	NowS        float64 `json:"now_s"`
	Role        string  `json:"role"`
	Epoch       uint64  `json:"epoch"`
	InFlight    int     `json:"in_flight"`
	MaxInFlight int     `json:"max_in_flight"`
	Shed        uint64  `json:"shed_total"`
	// DurabilityDegraded reports decision-log or WAL append failures; the
	// daemon still serves (200), but the audit trail has a hole.
	DurabilityDegraded bool `json:"durability_degraded"`
	// WALPoisoned reports a fail-stopped WAL: durable admissions are
	// refused (503 with ErrDurabilityLost) until the daemon restarts.
	WALPoisoned bool `json:"wal_poisoned,omitempty"`
	// ReplicationLagBytes is how far a follower runs behind its primary.
	ReplicationLagBytes int64 `json:"replication_lag_bytes,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.Status()
	body := HealthJSON{
		Status:             "ok",
		NowS:               float64(st.Now),
		Role:               st.Role,
		Epoch:              st.Epoch,
		InFlight:           s.InFlight(),
		MaxInFlight:        s.InFlightLimit(),
		Shed:               st.Stats.Shed,
		DurabilityDegraded: st.Stats.DurabilityDegraded(),
		WALPoisoned:        s.WALPoisoned(),
	}
	if st.Role == "follower" {
		body.ReplicationLagBytes = s.ReplicationStatus().LagBytes
	}
	code := http.StatusOK
	if body.DurabilityDegraded || body.WALPoisoned {
		body.Status = "degraded"
	}
	if s.Closed() {
		body.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, ErrorJSON{Error: err.Error()})
}

// parseSubmission resolves the dual numeric/string quantity fields
// against the current service clock.
func (s *Server) parseSubmission(body SubmitRequest) (Submission, error) {
	sub := Submission{
		From:           body.From,
		To:             body.To,
		Volume:         units.Volume(body.VolumeBytes),
		MaxRate:        units.Bandwidth(body.MaxRateBps),
		NotBefore:      units.Time(body.NotBeforeS),
		Deadline:       units.Time(body.DeadlineS),
		IdempotencyKey: body.IdempotencyKey,
		Durable:        body.Durable,
	}
	if body.Volume != "" {
		if body.VolumeBytes != 0 {
			return sub, fmt.Errorf("both volume and volume_bytes set")
		}
		v, err := units.ParseVolume(body.Volume)
		if err != nil {
			return sub, err
		}
		sub.Volume = v
	}
	if body.MaxRate != "" {
		if body.MaxRateBps != 0 {
			return sub, fmt.Errorf("both max_rate and max_rate_bps set")
		}
		b, err := units.ParseBandwidth(body.MaxRate)
		if err != nil {
			return sub, err
		}
		sub.MaxRate = b
	}
	if body.StartIn != "" || body.DeadlineIn != "" {
		now := s.Now()
		if body.StartIn != "" {
			if body.NotBeforeS != 0 {
				return sub, fmt.Errorf("both start_in and not_before_s set")
			}
			d, err := units.ParseTime(body.StartIn)
			if err != nil {
				return sub, err
			}
			sub.NotBefore = now + d
		}
		if body.DeadlineIn != "" {
			if body.DeadlineS != 0 {
				return sub, fmt.Errorf("both deadline_in and deadline_s set")
			}
			d, err := units.ParseTime(body.DeadlineIn)
			if err != nil {
				return sub, err
			}
			sub.Deadline = now + d
		}
	}
	return sub, nil
}

func decisionJSON(d Decision) ReservationJSON {
	out := ReservationJSON{
		ID:       int(d.ID),
		Accepted: d.Accepted,
		State:    string(d.State),
		Reason:   d.Reason,
	}
	if d.Accepted {
		out.RateBps = float64(d.Rate)
		out.Rate = d.Rate.String()
		out.SigmaS = float64(d.Sigma)
		out.TauS = float64(d.Tau)
	}
	return out
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var body SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	sub, err := s.parseSubmission(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if hk := r.Header.Get("Idempotency-Key"); hk != "" {
		if sub.IdempotencyKey != "" && sub.IdempotencyKey != hk {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("idempotency_key body field and Idempotency-Key header disagree"))
			return
		}
		sub.IdempotencyKey = hk
	}
	res, err := s.submitOne(sub)
	switch {
	case errors.Is(err, ErrClosed), errors.Is(err, ErrDurabilityLost):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrReadOnly):
		writeError(w, http.StatusForbidden, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	code := http.StatusCreated
	if !res.Decision.Accepted {
		// An admission rejection is a well-formed domain answer, not an
		// HTTP failure; 200 keeps it distinct from 4xx client errors.
		code = http.StatusOK
	}
	rj := decisionJSON(res.Decision)
	rj.Durability = res.Durability
	writeJSON(w, code, rj)
}

// handleBatch decides a whole BatchRequest in one SubmitBatch pass.
// Malformed items fail individually in their result slot; only an empty
// or oversized batch, an undecodable body, or a draining server fail the
// whole call. A request Content-Type of BinaryBatchContentType selects
// the length-prefixed binary codec (see wire.go) for both directions.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, BinaryBatchContentType) {
		s.handleBatchBinary(w, r)
		return
	}
	var body BatchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if len(body.Requests) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	if len(body.Requests) > s.maxBatch {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d exceeds limit %d", len(body.Requests), s.maxBatch))
		return
	}
	out := BatchResponse{Results: make([]BatchItemJSON, len(body.Requests))}
	var subs []Submission
	var subIdx []int
	for i, req := range body.Requests {
		sub, err := s.parseSubmission(req)
		if err != nil {
			out.Results[i].Error = err.Error()
			continue
		}
		subs = append(subs, sub)
		subIdx = append(subIdx, i)
	}
	if len(subs) > 0 {
		results, err := s.SubmitBatch(subs)
		if errors.Is(err, ErrClosed) {
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		if errors.Is(err, ErrReadOnly) {
			writeError(w, http.StatusForbidden, err)
			return
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		for j, res := range results {
			i := subIdx[j]
			if res.Err != nil {
				out.Results[i].Error = res.Err.Error()
				continue
			}
			d := decisionJSON(res.Decision)
			d.Durability = res.Durability
			out.Results[i].Reservation = &d
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleBatchBinary is the binary-codec arm of handleBatch. Unlike JSON,
// a malformed frame fails the whole batch — per-item salvage of a broken
// binary stream would decide requests the client never meant to send.
// Errors still answer as JSON envelopes; status codes carry the contract.
func (s *Server) handleBatchBinary(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(io.LimitReader(r.Body, wireMaxBatchBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("read request: %w", err))
		return
	}
	if len(data) > wireMaxBatchBytes {
		writeError(w, http.StatusBadRequest, fmt.Errorf("binary batch exceeds %d bytes", wireMaxBatchBytes))
		return
	}
	wire, err := DecodeBinaryBatchRequest(data, s.maxBatch)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// One clock read resolves every relative time in the batch, so items
	// of one call share a consistent "now" just like the JSON path.
	now := s.Now()
	subs := make([]Submission, len(wire))
	for i := range wire {
		subs[i] = wire[i].resolve(now)
	}
	results, err := s.SubmitBatch(subs)
	switch {
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrReadOnly):
		writeError(w, http.StatusForbidden, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	blob := AppendBinaryBatchResponse(nil, results)
	w.Header().Set("Content-Type", BinaryBatchContentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(blob)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(blob)
}

func pathID(r *http.Request) (int, error) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || id < 0 {
		return 0, fmt.Errorf("bad reservation id %q", r.PathValue("id"))
	}
	return id, nil
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	d, err := s.Lookup(request.ID(id))
	if errors.Is(err, ErrNotFound) {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, decisionJSON(d))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	d, err := s.Cancel(request.ID(id))
	switch {
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrReadOnly):
		writeError(w, http.StatusForbidden, err)
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrFinished):
		writeJSON(w, http.StatusConflict, decisionJSON(d))
	default:
		writeJSON(w, http.StatusOK, decisionJSON(d))
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statusJSON(s.Status()))
}

func statusJSON(st Status) StatusJSON {
	body := StatusJSON{
		NowS:               float64(st.Now),
		Policy:             st.Policy,
		Role:               st.Role,
		Epoch:              st.Epoch,
		Booked:             st.Booked,
		Active:             st.Active,
		Submitted:          st.Stats.Submitted,
		Accepted:           st.Stats.Accepted,
		Rejected:           st.Stats.Rejected,
		Cancelled:          st.Stats.Cancelled,
		Expired:            st.Stats.Expired,
		Shed:               st.Stats.Shed,
		IdempotentHits:     st.Stats.IdempotentHits,
		Panics:             st.Stats.Panics,
		Batches:            st.Stats.Batches,
		BatchRequests:      st.Stats.BatchRequests,
		AcceptRate:         st.Stats.AcceptRate(),
		MeanGrantedBps:     float64(st.Stats.MeanGrantedRate()),
		LogAppendFailures:  st.Stats.LogAppendFailures,
		DurabilityDegraded: st.Stats.DurabilityDegraded(),
	}
	for _, p := range st.Points {
		body.Points = append(body.Points, PointJSON{
			Dir:         p.Dir.String(),
			Point:       int(p.Point),
			CapacityBps: float64(p.Capacity),
			UsedBps:     float64(p.Used),
			Utilization: p.Utilization,
		})
	}
	return body
}

// MetricsJSON is the default GET /v1/metricsz body: the status counters
// plus the replication and watchdog gauges the Prometheus rendering
// carries.
type MetricsJSON struct {
	StatusJSON
	Reseeds             uint64 `json:"reseeds"`
	ReplicationLagBytes int64  `json:"replication_lag_bytes"`
	AppliedRecords      uint64 `json:"applied_records"`
	// SyncDegraded counts sync-ack waits that hit their deadline and
	// degraded to async durability.
	SyncDegraded uint64 `json:"sync_degraded"`
	// Followers is the primary's per-follower replication progress.
	Followers map[string]FollowerStatus `json:"followers,omitempty"`
	// AdmitLatency is the server-side admission-latency percentile ladder —
	// time spent in the decide pipeline per submission — the counterpart of
	// what gridbwload observes from the client side of the wire. With a
	// synchronous-ack mode on, the parked replication wait is part of it.
	AdmitLatency metrics.LatencySummary `json:"admit_latency"`
	// WatchdogState is the in-process failover watchdog's position in the
	// follower → suspect → electing → promoting → primary ladder; empty
	// when no watchdog runs in this daemon.
	WatchdogState string `json:"watchdog_state,omitempty"`
}

// handleMetricsz negotiates the metrics encoding: Prometheus text
// exposition when the caller asks for text/plain (what a scraper sends),
// JSON otherwise.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), "text/plain") {
		s.writeMetricsText(w)
		return
	}
	st := s.Status()
	rs := s.ReplicationStatus()
	body := MetricsJSON{
		StatusJSON:          statusJSON(st),
		Reseeds:             st.Stats.Reseeds,
		ReplicationLagBytes: rs.LagBytes,
		AppliedRecords:      rs.Applied,
		SyncDegraded:        st.Stats.SyncDegraded,
		Followers:           rs.Followers,
		AdmitLatency:        st.Stats.AdmitLatencySummary(),
		WatchdogState:       s.watchdogStateNow(),
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) writeMetricsText(w http.ResponseWriter) {
	st := s.Status()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# TYPE gridbwd_requests_submitted_total counter\n")
	fmt.Fprintf(w, "gridbwd_requests_submitted_total %d\n", st.Stats.Submitted)
	fmt.Fprintf(w, "# TYPE gridbwd_requests_accepted_total counter\n")
	fmt.Fprintf(w, "gridbwd_requests_accepted_total %d\n", st.Stats.Accepted)
	fmt.Fprintf(w, "# TYPE gridbwd_requests_rejected_total counter\n")
	fmt.Fprintf(w, "gridbwd_requests_rejected_total %d\n", st.Stats.Rejected)
	fmt.Fprintf(w, "# TYPE gridbwd_reservations_cancelled_total counter\n")
	fmt.Fprintf(w, "gridbwd_reservations_cancelled_total %d\n", st.Stats.Cancelled)
	fmt.Fprintf(w, "# TYPE gridbwd_reservations_expired_total counter\n")
	fmt.Fprintf(w, "gridbwd_reservations_expired_total %d\n", st.Stats.Expired)
	fmt.Fprintf(w, "# TYPE gridbwd_requests_shed_total counter\n")
	fmt.Fprintf(w, "gridbwd_requests_shed_total %d\n", st.Stats.Shed)
	fmt.Fprintf(w, "# TYPE gridbwd_requests_idempotent_hits_total counter\n")
	fmt.Fprintf(w, "gridbwd_requests_idempotent_hits_total %d\n", st.Stats.IdempotentHits)
	fmt.Fprintf(w, "# TYPE gridbwd_handler_panics_total counter\n")
	fmt.Fprintf(w, "gridbwd_handler_panics_total %d\n", st.Stats.Panics)
	fmt.Fprintf(w, "# TYPE gridbwd_batches_total counter\n")
	fmt.Fprintf(w, "gridbwd_batches_total %d\n", st.Stats.Batches)
	fmt.Fprintf(w, "# TYPE gridbwd_batch_requests_total counter\n")
	fmt.Fprintf(w, "gridbwd_batch_requests_total %d\n", st.Stats.BatchRequests)
	fmt.Fprintf(w, "# TYPE gridbwd_reservations_booked gauge\n")
	fmt.Fprintf(w, "gridbwd_reservations_booked %d\n", st.Booked)
	fmt.Fprintf(w, "# TYPE gridbwd_reservations_active gauge\n")
	fmt.Fprintf(w, "gridbwd_reservations_active %d\n", st.Active)
	fmt.Fprintf(w, "# TYPE gridbwd_point_capacity_bps gauge\n")
	fmt.Fprintf(w, "# TYPE gridbwd_point_used_bps gauge\n")
	for _, p := range st.Points {
		fmt.Fprintf(w, "gridbwd_point_capacity_bps{dir=%q,point=\"%d\"} %g\n",
			p.Dir.String(), int(p.Point), float64(p.Capacity))
		fmt.Fprintf(w, "gridbwd_point_used_bps{dir=%q,point=\"%d\"} %g\n",
			p.Dir.String(), int(p.Point), float64(p.Used))
	}
	fmt.Fprintf(w, "# TYPE gridbwd_shard_lock_acquisitions_total counter\n")
	fmt.Fprintf(w, "# TYPE gridbwd_shard_lock_contended_total counter\n")
	for _, sh := range s.ShardStats() {
		fmt.Fprintf(w, "gridbwd_shard_lock_acquisitions_total{dir=%q,point=\"%d\"} %d\n",
			sh.Dir.String(), int(sh.Point), sh.Locks)
		fmt.Fprintf(w, "gridbwd_shard_lock_contended_total{dir=%q,point=\"%d\"} %d\n",
			sh.Dir.String(), int(sh.Point), sh.Contended)
	}
	fmt.Fprintf(w, "# TYPE gridbwd_service_clock_seconds gauge\n")
	fmt.Fprintf(w, "gridbwd_service_clock_seconds %g\n", float64(st.Now))
	if lat := st.Stats.AdmitLatency; lat != nil {
		fmt.Fprintf(w, "# TYPE gridbwd_admit_latency_seconds summary\n")
		for _, q := range []struct {
			label string
			q     float64
		}{{"0.5", 0.5}, {"0.9", 0.9}, {"0.95", 0.95}, {"0.99", 0.99}, {"0.999", 0.999}} {
			fmt.Fprintf(w, "gridbwd_admit_latency_seconds{quantile=%q} %g\n",
				q.label, lat.Quantile(q.q).Seconds())
		}
		fmt.Fprintf(w, "gridbwd_admit_latency_seconds_sum %g\n", lat.Sum().Seconds())
		fmt.Fprintf(w, "gridbwd_admit_latency_seconds_count %d\n", lat.Count())
	}
	fmt.Fprintf(w, "# TYPE gridbwd_log_append_failures_total counter\n")
	fmt.Fprintf(w, "gridbwd_log_append_failures_total %d\n", st.Stats.LogAppendFailures)
	fmt.Fprintf(w, "# TYPE gridbwd_durability_degraded gauge\n")
	fmt.Fprintf(w, "gridbwd_durability_degraded %d\n", boolGauge(st.Stats.DurabilityDegraded()))
	fmt.Fprintf(w, "# TYPE gridbwd_wal_poisoned gauge\n")
	fmt.Fprintf(w, "gridbwd_wal_poisoned %d\n", boolGauge(s.WALPoisoned()))
	fmt.Fprintf(w, "# TYPE gridbwd_replication_epoch gauge\n")
	fmt.Fprintf(w, "gridbwd_replication_epoch %d\n", st.Epoch)
	fmt.Fprintf(w, "# TYPE gridbwd_replication_is_follower gauge\n")
	fmt.Fprintf(w, "gridbwd_replication_is_follower %d\n", boolGauge(st.Role == "follower"))
	rs := s.ReplicationStatus()
	fmt.Fprintf(w, "# TYPE gridbwd_replication_lag_bytes gauge\n")
	fmt.Fprintf(w, "gridbwd_replication_lag_bytes %d\n", rs.LagBytes)
	fmt.Fprintf(w, "# TYPE gridbwd_replication_applied_records_total counter\n")
	fmt.Fprintf(w, "gridbwd_replication_applied_records_total %d\n", rs.Applied)
	fmt.Fprintf(w, "# TYPE gridbwd_reseeds_total counter\n")
	fmt.Fprintf(w, "gridbwd_reseeds_total %d\n", st.Stats.Reseeds)
	fmt.Fprintf(w, "# TYPE gridbwd_sync_degraded_total counter\n")
	fmt.Fprintf(w, "gridbwd_sync_degraded_total %d\n", st.Stats.SyncDegraded)
	if len(rs.Followers) > 0 {
		fmt.Fprintf(w, "# TYPE gridbwd_follower_lag_bytes gauge\n")
		fmt.Fprintf(w, "# TYPE gridbwd_follower_ack_age_seconds gauge\n")
		ids := make([]string, 0, len(rs.Followers))
		for id := range rs.Followers {
			ids = append(ids, id)
		}
		slices.Sort(ids)
		for _, id := range ids {
			f := rs.Followers[id]
			fmt.Fprintf(w, "gridbwd_follower_lag_bytes{follower=%q} %d\n", id, f.LagBytes)
			fmt.Fprintf(w, "gridbwd_follower_ack_age_seconds{follower=%q} %g\n", id, f.AgeS)
		}
	}
	if ws := s.watchdogStateNow(); ws != "" {
		fmt.Fprintf(w, "# TYPE gridbwd_watchdog_state gauge\n")
		for _, state := range []string{"follower", "suspect", "electing", "promoting", "primary"} {
			fmt.Fprintf(w, "gridbwd_watchdog_state{state=%q} %d\n", state, boolGauge(state == ws))
		}
	}
	if s.wal != nil {
		fmt.Fprintf(w, "# TYPE gridbwd_wal_records gauge\n")
		fmt.Fprintf(w, "gridbwd_wal_records %d\n", rs.WALRecords)
		fmt.Fprintf(w, "# TYPE gridbwd_wal_segment gauge\n")
		fmt.Fprintf(w, "gridbwd_wal_segment %d\n", rs.WALEnd.Seg)
		fmt.Fprintf(w, "# TYPE gridbwd_wal_offset_bytes gauge\n")
		fmt.Fprintf(w, "gridbwd_wal_offset_bytes %d\n", rs.WALEnd.Off)
	}
}

func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}
