package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"gridbw/internal/server"
	"gridbw/internal/units"
)

// TestSubmitBatchMixedOutcomes: one call carrying an accept, a domain
// rejection and a malformed submission answers all three, in input order.
func TestSubmitBatchMixedOutcomes(t *testing.T) {
	clk := &fakeClock{}
	s := newTestServer(t, uniformConfig(clk))
	res, err := s.SubmitBatch([]server.Submission{
		{From: 0, To: 1, Volume: 100 * units.GB, Deadline: 400, MaxRate: 1 * units.GBps},
		{From: 1, To: 0, Volume: 100 * units.GB, Deadline: 10, MaxRate: 1 * units.GBps}, // infeasible window
		{From: 9, To: 0, Volume: 1 * units.GB, Deadline: 100, MaxRate: 1 * units.GBps},  // bad ingress
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3", len(res))
	}
	if res[0].Err != nil || !res[0].Decision.Accepted {
		t.Errorf("item 0 = %+v, want accepted", res[0])
	}
	if res[1].Err != nil || res[1].Decision.Accepted {
		t.Errorf("item 1 = %+v, want rejected decision", res[1])
	}
	if res[1].Decision.State != server.StateRejected {
		t.Errorf("item 1 state = %q", res[1].Decision.State)
	}
	if res[2].Err == nil {
		t.Error("item 2 (bad ingress) returned no error")
	}
	if st := s.Status(); st.Stats.Batches != 1 || st.Stats.BatchRequests != 3 {
		t.Errorf("batch counters = %d/%d, want 1/3", st.Stats.Batches, st.Stats.BatchRequests)
	}
	if err := s.VerifyInvariant(); err != nil {
		t.Error(err)
	}
}

// TestSubmitBatchOrderIndependentOfRoute: results come back in input
// order even though admission runs in sorted pair order.
func TestSubmitBatchOrderIndependentOfRoute(t *testing.T) {
	clk := &fakeClock{}
	s := newTestServer(t, uniformConfig(clk))
	var subs []server.Submission
	for i := 0; i < 8; i++ {
		subs = append(subs, server.Submission{
			From: (i + 1) % 2, To: i % 2,
			Volume: 10 * units.GB, Deadline: 400, MaxRate: 1 * units.GBps,
		})
	}
	res, err := s.SubmitBatch(subs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil || !r.Decision.Accepted {
			t.Fatalf("item %d = %+v", i, r)
		}
		if i > 0 && res[i].Decision.ID <= res[i-1].Decision.ID {
			t.Errorf("IDs out of input order: %d then %d", res[i-1].Decision.ID, res[i].Decision.ID)
		}
	}
}

// TestSubmitBatchLimits: empty and oversized batches fail the whole call.
func TestSubmitBatchLimits(t *testing.T) {
	clk := &fakeClock{}
	cfg := uniformConfig(clk)
	cfg.MaxBatch = 2
	s := newTestServer(t, cfg)
	if _, err := s.SubmitBatch(nil); err == nil {
		t.Error("empty batch accepted")
	}
	sub := server.Submission{From: 0, To: 0, Volume: units.GB, Deadline: 100, MaxRate: units.GBps}
	if _, err := s.SubmitBatch([]server.Submission{sub, sub, sub}); err == nil {
		t.Error("oversized batch accepted")
	}
	if s.MaxBatch() != 2 {
		t.Errorf("MaxBatch = %d", s.MaxBatch())
	}
}

// TestSubmitBatchIdempotentRetry: re-sending a keyed batch answers every
// item from the cache — same IDs, nothing booked twice — including a key
// duplicated inside a single batch.
func TestSubmitBatchIdempotentRetry(t *testing.T) {
	clk := &fakeClock{}
	s := newTestServer(t, uniformConfig(clk))
	subs := []server.Submission{
		{From: 0, To: 1, Volume: 50 * units.GB, Deadline: 400, MaxRate: 1 * units.GBps, IdempotencyKey: "a"},
		{From: 1, To: 0, Volume: 50 * units.GB, Deadline: 400, MaxRate: 1 * units.GBps, IdempotencyKey: "b"},
	}
	first, err := s.SubmitBatch(subs)
	if err != nil {
		t.Fatal(err)
	}
	again, err := s.SubmitBatch(subs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range subs {
		if first[i].Err != nil || again[i].Err != nil {
			t.Fatalf("item %d errored: %+v / %+v", i, first[i], again[i])
		}
		if first[i].Decision.ID != again[i].Decision.ID {
			t.Errorf("retry of item %d booked %d, want original %d",
				i, again[i].Decision.ID, first[i].Decision.ID)
		}
	}
	if st := s.Status(); st.Stats.Accepted != 2 || st.Stats.IdempotentHits != 2 {
		t.Errorf("accepted=%d hits=%d, want 2/2", st.Stats.Accepted, st.Stats.IdempotentHits)
	}

	// The same key twice within one batch must also book exactly once.
	dup, err := s.SubmitBatch([]server.Submission{
		{From: 0, To: 0, Volume: 10 * units.GB, Deadline: 400, MaxRate: 1 * units.GBps, IdempotencyKey: "dup"},
		{From: 0, To: 0, Volume: 10 * units.GB, Deadline: 400, MaxRate: 1 * units.GBps, IdempotencyKey: "dup"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dup[0].Err != nil || dup[1].Err != nil || dup[0].Decision.ID != dup[1].Decision.ID {
		t.Errorf("intra-batch duplicate key: %+v vs %+v", dup[0], dup[1])
	}
	if st := s.Status(); st.Stats.Accepted != 3 {
		t.Errorf("accepted = %d, want 3", st.Stats.Accepted)
	}
}

// TestSubmitBatchParallelDisjointRoutes: concurrent batches over disjoint
// point pairs all admit, and the cross-shard audit plus independent replay
// stay clean throughout.
func TestSubmitBatchParallelDisjointRoutes(t *testing.T) {
	const points, perRoute, rounds = 4, 4, 8
	clk := &fakeClock{}
	var caps []units.Bandwidth
	for i := 0; i < points; i++ {
		caps = append(caps, 10*units.GBps)
	}
	s := newTestServer(t, server.Config{Ingress: caps, Egress: caps, Clock: clk.now})

	var wg sync.WaitGroup
	for p := 0; p < points; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				subs := make([]server.Submission, perRoute)
				for k := range subs {
					subs[k] = server.Submission{
						From: p, To: p,
						Volume: 1 * units.GB, Deadline: 1000, MaxRate: 200 * units.MBps,
					}
				}
				res, err := s.SubmitBatch(subs)
				if err != nil {
					t.Error(err)
					return
				}
				for _, r := range res {
					if r.Err != nil || !r.Decision.Accepted {
						t.Errorf("route %d: %+v", p, r)
						return
					}
				}
			}
		}(p)
	}
	wg.Wait()
	if err := s.VerifyInvariant(); err != nil {
		t.Fatal(err)
	}
	if got, want := len(s.LiveReservations()), points*perRoute*rounds; got != want {
		t.Errorf("live reservations = %d, want %d", got, want)
	}
}

// TestBatchHTTPEndpoint: POST /v1/batch decides well-formed items and
// reports malformed ones in place, keeping input order on the wire.
func TestBatchHTTPEndpoint(t *testing.T) {
	clk := &fakeClock{}
	s := newTestServer(t, uniformConfig(clk))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"requests":[
		{"from":0,"to":1,"volume_bytes":1e10,"max_rate_bps":1e9,"deadline_s":400},
		{"from":0,"to":0,"volume":"1GB","volume_bytes":5,"max_rate_bps":1e9,"deadline_s":400},
		{"from":1,"to":0,"volume":"10GB","max_rate":"1GB/s","deadline_s":400}
	]}`
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out server.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(out.Results))
	}
	if out.Results[0].Reservation == nil || !out.Results[0].Reservation.Accepted {
		t.Errorf("item 0 = %+v", out.Results[0])
	}
	if out.Results[1].Error == "" || out.Results[1].Reservation != nil {
		t.Errorf("item 1 (conflicting volume fields) = %+v", out.Results[1])
	}
	if out.Results[2].Reservation == nil || !out.Results[2].Reservation.Accepted {
		t.Errorf("item 2 = %+v", out.Results[2])
	}

	for bad, want := range map[string]int{
		`{"requests":[]}`: http.StatusBadRequest,
		`{"bogus":1}`:     http.StatusBadRequest,
	} {
		resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("POST %s = %d, want %d", bad, resp.StatusCode, want)
		}
	}
}

// TestClosedRefusesBatchAndCancel: a draining server answers ErrClosed to
// SubmitBatch and — the satellite-1 regression — to Cancel, whose seed
// implementation mutated the ledger with the expiry loop already stopped.
func TestClosedRefusesBatchAndCancel(t *testing.T) {
	clk := &fakeClock{}
	s := newTestServer(t, uniformConfig(clk))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	d, err := s.Submit(server.Submission{
		From: 0, To: 1, Volume: 10 * units.GB, Deadline: 400, MaxRate: 1 * units.GBps,
	})
	if err != nil || !d.Accepted {
		t.Fatalf("submit: %v %+v", err, d)
	}
	s.Close()

	if _, err := s.SubmitBatch([]server.Submission{{From: 0, To: 0, Volume: units.GB, Deadline: 100, MaxRate: units.GBps}}); err != server.ErrClosed {
		t.Errorf("SubmitBatch on closed = %v, want ErrClosed", err)
	}
	if _, err := s.Cancel(d.ID); err != server.ErrClosed {
		t.Errorf("Cancel on closed = %v, want ErrClosed", err)
	}

	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/requests/%d", ts.URL, d.ID), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("DELETE on draining daemon = %d, want 503", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/batch", "application/json",
		strings.NewReader(`{"requests":[{"from":0,"to":0,"volume_bytes":1e9,"max_rate_bps":1e9,"deadline_s":100}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("batch on draining daemon = %d, want 503", resp.StatusCode)
	}
	// The live reservation survived the refused cancel.
	if n := len(s.LiveReservations()); n != 1 {
		t.Errorf("live reservations = %d, want 1", n)
	}
}

// TestSnapshotCarriesTerminalIdempotency: the satellite-2 regression — a
// snapshot must persist decisions for rejected and cancelled keys too, so
// those retries stay idempotent across a restart instead of re-admitting.
func TestSnapshotCarriesTerminalIdempotency(t *testing.T) {
	clk := &fakeClock{}
	s := newTestServer(t, uniformConfig(clk))

	rejected, err := s.Submit(server.Submission{
		From: 0, To: 1, Volume: 100 * units.GB, Deadline: 10,
		MaxRate: 1 * units.GBps, IdempotencyKey: "rejected-key",
	})
	if err != nil || rejected.Accepted {
		t.Fatalf("want rejection: %v %+v", err, rejected)
	}
	cancelled, err := s.Submit(server.Submission{
		From: 0, To: 1, Volume: 10 * units.GB, Deadline: 400,
		MaxRate: 1 * units.GBps, IdempotencyKey: "cancelled-key",
	})
	if err != nil || !cancelled.Accepted {
		t.Fatalf("submit: %v %+v", err, cancelled)
	}
	if _, err := s.Cancel(cancelled.ID); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	s.Close()
	snap, err := server.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.IdempotencyDecisions) != 2 {
		t.Fatalf("snapshot carries %d idempotency decisions, want 2 (incl. terminal)",
			len(snap.IdempotencyDecisions))
	}
	s2, err := server.NewFromSnapshot(snap, server.Config{Clock: clk.now})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	d, err := s2.Submit(server.Submission{
		From: 0, To: 1, Volume: 100 * units.GB, Deadline: 10,
		MaxRate: 1 * units.GBps, IdempotencyKey: "rejected-key",
	})
	if err != nil || d.Accepted || d.ID != rejected.ID {
		t.Errorf("post-restart rejected retry = %v %+v, want original rejection %d", err, d, rejected.ID)
	}
	d, err = s2.Submit(server.Submission{
		From: 0, To: 1, Volume: 10 * units.GB, Deadline: 400,
		MaxRate: 1 * units.GBps, IdempotencyKey: "cancelled-key",
	})
	if err != nil || d.ID != cancelled.ID || d.State != server.StateCancelled {
		t.Errorf("post-restart cancelled retry = %v %+v, want cancelled %d", err, d, cancelled.ID)
	}
	if st := s2.Status(); st.Stats.IdempotentHits != 2 {
		t.Errorf("idempotent hits after restart = %d, want 2", st.Stats.IdempotentHits)
	}
	if n := len(s2.LiveReservations()); n != 0 {
		t.Errorf("restart re-admitted %d reservations", n)
	}
}

// TestSnapshotManyReservationsSorted: the satellite-3 regression — a
// snapshot with many live reservations lists them in strict ID order (the
// seed used an O(n²) insertion sort; correctness is the observable part).
func TestSnapshotManyReservationsSorted(t *testing.T) {
	const n = 500
	clk := &fakeClock{}
	caps := []units.Bandwidth{1000 * units.GBps}
	s := newTestServer(t, server.Config{Ingress: caps, Egress: caps, Clock: clk.now})
	for i := 0; i < n; i++ {
		d, err := s.Submit(server.Submission{
			From: 0, To: 0, Volume: 1 * units.GB, Deadline: 10000, MaxRate: 1 * units.GBps,
		})
		if err != nil || !d.Accepted {
			t.Fatalf("submit %d: %v %+v", i, err, d)
		}
	}
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := server.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Live) != n {
		t.Fatalf("snapshot holds %d reservations, want %d", len(snap.Live), n)
	}
	for i := 1; i < len(snap.Live); i++ {
		if snap.Live[i].ID <= snap.Live[i-1].ID {
			t.Fatalf("snapshot unsorted at %d: %d after %d", i, snap.Live[i].ID, snap.Live[i-1].ID)
		}
	}
}

// TestRetentionEvictionLifecycle: the satellite-5 contract — beyond
// FinishedRetention, terminal reservations disappear from lookup (404 on
// GET and DELETE) and evicted idempotency keys book afresh.
func TestRetentionEvictionLifecycle(t *testing.T) {
	clk := &fakeClock{}
	cfg := uniformConfig(clk)
	cfg.FinishedRetention = 2
	s := newTestServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submit := func(key string) server.Decision {
		t.Helper()
		d, err := s.Submit(server.Submission{
			From: 0, To: 1, Volume: 1 * units.GB, Deadline: 10000,
			MaxRate: 1 * units.GBps, IdempotencyKey: key,
		})
		if err != nil || !d.Accepted {
			t.Fatalf("submit: %v %+v", err, d)
		}
		return d
	}

	first := submit("evictable")
	if _, err := s.Cancel(first.ID); err != nil {
		t.Fatal(err)
	}
	// Push FinishedRetention newer terminal reservations through; both the
	// finished registry and the idempotency cache evict the oldest.
	for i := 0; i < cfg.FinishedRetention; i++ {
		d := submit(fmt.Sprintf("filler-%d", i))
		if _, err := s.Cancel(d.ID); err != nil {
			t.Fatal(err)
		}
	}

	if _, err := s.Lookup(first.ID); err != server.ErrNotFound {
		t.Errorf("Lookup of evicted reservation = %v, want ErrNotFound", err)
	}
	resp, err := http.Get(fmt.Sprintf("%s/v1/requests/%d", ts.URL, first.ID))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET evicted = %d, want 404", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/requests/%d", ts.URL, first.ID), nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE evicted = %d, want 404", resp.StatusCode)
	}

	// The key fell out of the bounded cache with it: reusing it books a
	// fresh reservation instead of answering from the cache.
	rebooked := submit("evictable")
	if rebooked.ID == first.ID {
		t.Errorf("evicted key answered original reservation %d", first.ID)
	}
	if st := s.Status(); st.Stats.IdempotentHits != 0 {
		t.Errorf("idempotent hits = %d, want 0 (key was evicted)", st.Stats.IdempotentHits)
	}
}
