package server

// Length-prefixed binary batch codec. POST /v1/batch accepts (and then
// answers with) this framing when the request Content-Type is
// BinaryBatchContentType; JSON remains the default. The format exists for
// the load-generation hot path: a 64-item JSON batch spends more time in
// encoding/json than the admission pipeline itself, while these frames
// encode and decode with two small allocations per call.
//
// Request frame (all integers little-endian):
//
//	magic "GBB1" | u32 bodyLen | u32 count | count × record
//	record: u8 flags | u32 from | u32 to | f64 volume | f64 maxRate
//	        | f64 notBefore | f64 deadline | u16 keyLen | key bytes
//	flags: bit0 durable, bit1 notBefore-relative, bit2 deadline-relative
//
// Relative times are resolved against a single service-clock read per
// batch on the server, mirroring the JSON fields start_in/deadline_in.
//
// Response frame:
//
//	magic "GBR1" | u32 bodyLen | u32 count | count × item
//	item: u8 kind; kind 0 (error):    u16 msgLen | msg bytes
//	               kind 1 (decision): u64 id | u8 accepted | u8 state
//	                                  | u8 durability | f64 rate
//	                                  | f64 sigma | f64 tau
//	                                  | u16 reasonLen | reason bytes
//
// bodyLen counts every byte after itself, so a reader can frame the
// message off a stream before parsing. A malformed frame rejects the
// whole batch (HTTP 400) — there is no per-item decode salvage, unlike
// JSON where parse errors fail item slots individually.

import (
	"encoding/binary"
	"fmt"
	"math"

	"gridbw/internal/units"
)

// BinaryBatchContentType selects the binary batch codec on POST /v1/batch.
const BinaryBatchContentType = "application/x-gridbw-batch"

// MaxBinaryBatchBytes is the body-size cap of a binary batch request —
// exported so proxying tiers bound their reads identically.
const MaxBinaryBatchBytes = wireMaxBatchBytes

const (
	wireReqMagic  = "GBB1"
	wireRespMagic = "GBR1"

	wireFlagDurable     = 1 << 0
	wireFlagRelNotBefor = 1 << 1
	wireFlagRelDeadline = 1 << 2

	wireKindError    = 0
	wireKindDecision = 1

	// wireMaxBatchBytes caps how much of a binary body the handler reads:
	// generous for any in-limit batch (records are ~40 bytes plus key),
	// small enough that a garbage length prefix cannot balloon memory.
	wireMaxBatchBytes = 8 << 20
)

// WireSubmission is one record of a binary batch request: a Submission
// plus the relative-time flags the server resolves against its clock.
type WireSubmission struct {
	From, To  int
	Volume    units.Volume
	MaxRate   units.Bandwidth
	NotBefore units.Time
	Deadline  units.Time
	// RelNotBefore/RelDeadline mark the corresponding field as an offset
	// from the server's current service time rather than an absolute
	// instant — the binary spelling of start_in / deadline_in.
	RelNotBefore   bool
	RelDeadline    bool
	Durable        bool
	IdempotencyKey string
}

// resolve converts the wire record to a Submission against the given
// service-clock reading.
func (ws WireSubmission) resolve(now units.Time) Submission {
	sub := Submission{
		From:           ws.From,
		To:             ws.To,
		Volume:         ws.Volume,
		MaxRate:        ws.MaxRate,
		NotBefore:      ws.NotBefore,
		Deadline:       ws.Deadline,
		IdempotencyKey: ws.IdempotencyKey,
		Durable:        ws.Durable,
	}
	if ws.RelNotBefore {
		sub.NotBefore = now + ws.NotBefore
	}
	if ws.RelDeadline {
		sub.Deadline = now + ws.Deadline
	}
	return sub
}

// Wire resolves the dual numeric/string quantity fields of the JSON
// request shape into a wire record without touching a clock: relative
// times stay relative (flagged), so whichever daemon finally decides the
// submission resolves them against its own service clock. The client's
// binary batch path and the router's re-sharding path share this.
func (req SubmitRequest) Wire() (WireSubmission, error) {
	ws := WireSubmission{
		From:           req.From,
		To:             req.To,
		Volume:         units.Volume(req.VolumeBytes),
		MaxRate:        units.Bandwidth(req.MaxRateBps),
		NotBefore:      units.Time(req.NotBeforeS),
		Deadline:       units.Time(req.DeadlineS),
		Durable:        req.Durable,
		IdempotencyKey: req.IdempotencyKey,
	}
	if req.Volume != "" {
		if req.VolumeBytes != 0 {
			return ws, fmt.Errorf("both volume and volume_bytes set")
		}
		v, err := units.ParseVolume(req.Volume)
		if err != nil {
			return ws, err
		}
		ws.Volume = v
	}
	if req.MaxRate != "" {
		if req.MaxRateBps != 0 {
			return ws, fmt.Errorf("both max_rate and max_rate_bps set")
		}
		b, err := units.ParseBandwidth(req.MaxRate)
		if err != nil {
			return ws, err
		}
		ws.MaxRate = b
	}
	if req.StartIn != "" {
		if req.NotBeforeS != 0 {
			return ws, fmt.Errorf("both start_in and not_before_s set")
		}
		d, err := units.ParseTime(req.StartIn)
		if err != nil {
			return ws, err
		}
		ws.NotBefore, ws.RelNotBefore = d, true
	}
	if req.DeadlineIn != "" {
		if req.DeadlineS != 0 {
			return ws, fmt.Errorf("both deadline_in and deadline_s set")
		}
		d, err := units.ParseTime(req.DeadlineIn)
		if err != nil {
			return ws, err
		}
		ws.Deadline, ws.RelDeadline = d, true
	}
	return ws, nil
}

func appendU16(dst []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(dst, v) }
func appendU32(dst []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(dst, v) }
func appendU64(dst []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(dst, v) }
func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

// wireReader walks a frame body with bounds checks; after any failure
// r.err is set and further reads return zero values.
type wireReader struct {
	data []byte
	off  int
	err  error
}

func (r *wireReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: truncated %s at offset %d", what, r.off)
	}
}

func (r *wireReader) u8(what string) byte {
	if r.err != nil || r.off+1 > len(r.data) {
		r.fail(what)
		return 0
	}
	v := r.data[r.off]
	r.off++
	return v
}

func (r *wireReader) u16(what string) uint16 {
	if r.err != nil || r.off+2 > len(r.data) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint16(r.data[r.off:])
	r.off += 2
	return v
}

func (r *wireReader) u32(what string) uint32 {
	if r.err != nil || r.off+4 > len(r.data) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v
}

func (r *wireReader) u64(what string) uint64 {
	if r.err != nil || r.off+8 > len(r.data) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v
}

func (r *wireReader) f64(what string) float64 { return math.Float64frombits(r.u64(what)) }

func (r *wireReader) bytes(n int, what string) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.data) {
		r.fail(what)
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

// frameBody validates a magic + length prefix and returns the framed body.
func frameBody(data []byte, magic string) ([]byte, error) {
	if len(data) < len(magic)+4 {
		return nil, fmt.Errorf("wire: frame shorter than header (%d bytes)", len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("wire: bad magic %q, want %q", data[:len(magic)], magic)
	}
	n := binary.LittleEndian.Uint32(data[len(magic):])
	body := data[len(magic)+4:]
	if uint32(len(body)) != n {
		return nil, fmt.Errorf("wire: length prefix %d but %d body bytes", n, len(body))
	}
	return body, nil
}

// AppendBinaryBatchRequest appends the framed request for subs to dst and
// returns it.
func AppendBinaryBatchRequest(dst []byte, subs []WireSubmission) []byte {
	dst = append(dst, wireReqMagic...)
	lenAt := len(dst)
	dst = appendU32(dst, 0)
	dst = appendU32(dst, uint32(len(subs)))
	for i := range subs {
		ws := &subs[i]
		var flags byte
		if ws.Durable {
			flags |= wireFlagDurable
		}
		if ws.RelNotBefore {
			flags |= wireFlagRelNotBefor
		}
		if ws.RelDeadline {
			flags |= wireFlagRelDeadline
		}
		dst = append(dst, flags)
		dst = appendU32(dst, uint32(ws.From))
		dst = appendU32(dst, uint32(ws.To))
		dst = appendF64(dst, float64(ws.Volume))
		dst = appendF64(dst, float64(ws.MaxRate))
		dst = appendF64(dst, float64(ws.NotBefore))
		dst = appendF64(dst, float64(ws.Deadline))
		dst = appendU16(dst, uint16(len(ws.IdempotencyKey)))
		dst = append(dst, ws.IdempotencyKey...)
	}
	binary.LittleEndian.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
	return dst
}

// DecodeBinaryBatchRequest parses a framed batch request. maxCount bounds
// the declared record count before any allocation (the server passes its
// MaxBatch; pass 0 for no bound).
func DecodeBinaryBatchRequest(data []byte, maxCount int) ([]WireSubmission, error) {
	body, err := frameBody(data, wireReqMagic)
	if err != nil {
		return nil, err
	}
	r := &wireReader{data: body}
	count := int(r.u32("count"))
	if r.err != nil {
		return nil, r.err
	}
	if count == 0 {
		return nil, fmt.Errorf("wire: empty batch")
	}
	if maxCount > 0 && count > maxCount {
		return nil, fmt.Errorf("wire: batch of %d exceeds limit %d", count, maxCount)
	}
	// Even a keyless record is 45 bytes; a count the body cannot hold is
	// rejected before allocating for it.
	if count > len(body)/45 {
		return nil, fmt.Errorf("wire: count %d exceeds body capacity", count)
	}
	subs := make([]WireSubmission, count)
	for i := range subs {
		ws := &subs[i]
		flags := r.u8("flags")
		ws.Durable = flags&wireFlagDurable != 0
		ws.RelNotBefore = flags&wireFlagRelNotBefor != 0
		ws.RelDeadline = flags&wireFlagRelDeadline != 0
		ws.From = int(int32(r.u32("from")))
		ws.To = int(int32(r.u32("to")))
		ws.Volume = units.Volume(r.f64("volume"))
		ws.MaxRate = units.Bandwidth(r.f64("max_rate"))
		ws.NotBefore = units.Time(r.f64("not_before"))
		ws.Deadline = units.Time(r.f64("deadline"))
		if n := int(r.u16("key length")); n > 0 {
			ws.IdempotencyKey = string(r.bytes(n, "key"))
		}
		if r.err != nil {
			return nil, fmt.Errorf("record %d: %w", i, r.err)
		}
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("wire: %d trailing bytes after %d records", len(body)-r.off, count)
	}
	return subs, nil
}

// Compact state and durability codes. Unknown values round-trip as the
// rejected / empty fallbacks rather than failing the frame — the codec
// must not turn a new server-side state into a client decode error.
var wireStates = [...]State{StateBooked, StateActive, StateExpired, StateCancelled, StateRejected}

func stateCode(s State) byte {
	for i, v := range wireStates {
		if v == s {
			return byte(i)
		}
	}
	return byte(len(wireStates) - 1)
}

func stateFromCode(c byte) State {
	if int(c) < len(wireStates) {
		return wireStates[c]
	}
	return StateRejected
}

func durabilityCode(d string) byte {
	switch d {
	case DurabilityReplicated:
		return 1
	case DurabilityDegraded:
		return 2
	default:
		return 0
	}
}

func durabilityFromCode(c byte) string {
	switch c {
	case 1:
		return DurabilityReplicated
	case 2:
		return DurabilityDegraded
	default:
		return ""
	}
}

// AppendBinaryBatchResponse appends the framed response for results to
// dst and returns it.
func AppendBinaryBatchResponse(dst []byte, results []BatchResult) []byte {
	dst = append(dst, wireRespMagic...)
	lenAt := len(dst)
	dst = appendU32(dst, 0)
	dst = appendU32(dst, uint32(len(results)))
	for i := range results {
		res := &results[i]
		if res.Err != nil {
			msg := res.Err.Error()
			dst = append(dst, wireKindError)
			dst = appendU16(dst, uint16(min(len(msg), math.MaxUint16)))
			dst = append(dst, msg[:min(len(msg), math.MaxUint16)]...)
			continue
		}
		d := &res.Decision
		dst = append(dst, wireKindDecision)
		dst = appendU64(dst, uint64(d.ID))
		if d.Accepted {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = append(dst, stateCode(d.State), durabilityCode(res.Durability))
		dst = appendF64(dst, float64(d.Rate))
		dst = appendF64(dst, float64(d.Sigma))
		dst = appendF64(dst, float64(d.Tau))
		dst = appendU16(dst, uint16(min(len(d.Reason), math.MaxUint16)))
		dst = append(dst, d.Reason[:min(len(d.Reason), math.MaxUint16)]...)
	}
	binary.LittleEndian.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
	return dst
}

// AppendBinaryBatchItems appends the framed response for items already in
// the JSON item shape — the router's gather format: shard answers arrive
// as BatchItemJSON and leave in the caller's codec without a detour
// through the server-internal BatchResult. The Routed marker has no slot
// in the binary frame and is dropped; JSON callers keep it.
func AppendBinaryBatchItems(dst []byte, items []BatchItemJSON) []byte {
	dst = append(dst, wireRespMagic...)
	lenAt := len(dst)
	dst = appendU32(dst, 0)
	dst = appendU32(dst, uint32(len(items)))
	for i := range items {
		it := &items[i]
		if it.Reservation == nil {
			msg := it.Error
			if msg == "" {
				msg = "no result"
			}
			dst = append(dst, wireKindError)
			dst = appendU16(dst, uint16(min(len(msg), math.MaxUint16)))
			dst = append(dst, msg[:min(len(msg), math.MaxUint16)]...)
			continue
		}
		rj := it.Reservation
		dst = append(dst, wireKindDecision)
		dst = appendU64(dst, uint64(rj.ID))
		if rj.Accepted {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = append(dst, stateCode(State(rj.State)), durabilityCode(rj.Durability))
		dst = appendF64(dst, rj.RateBps)
		dst = appendF64(dst, rj.SigmaS)
		dst = appendF64(dst, rj.TauS)
		dst = appendU16(dst, uint16(min(len(rj.Reason), math.MaxUint16)))
		dst = append(dst, rj.Reason[:min(len(rj.Reason), math.MaxUint16)]...)
	}
	binary.LittleEndian.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
	return dst
}

// DecodeBinaryBatchResponse parses a framed batch response into the same
// per-item form the JSON endpoint answers with, so callers classify
// results identically under either codec. (The human-readable Rate string
// is left empty — binary callers have RateBps.)
func DecodeBinaryBatchResponse(data []byte) ([]BatchItemJSON, error) {
	body, err := frameBody(data, wireRespMagic)
	if err != nil {
		return nil, err
	}
	r := &wireReader{data: body}
	count := int(r.u32("count"))
	if r.err != nil {
		return nil, r.err
	}
	// kind + u16 length is the 3-byte minimum item.
	if count > len(body)/3 {
		return nil, fmt.Errorf("wire: count %d exceeds body capacity", count)
	}
	out := make([]BatchItemJSON, count)
	for i := range out {
		switch kind := r.u8("kind"); kind {
		case wireKindError:
			n := int(r.u16("error length"))
			out[i].Error = string(r.bytes(n, "error"))
		case wireKindDecision:
			rj := &ReservationJSON{}
			rj.ID = int(r.u64("id"))
			rj.Accepted = r.u8("accepted") != 0
			rj.State = string(stateFromCode(r.u8("state")))
			rj.Durability = durabilityFromCode(r.u8("durability"))
			rj.RateBps = r.f64("rate")
			rj.SigmaS = r.f64("sigma")
			rj.TauS = r.f64("tau")
			n := int(r.u16("reason length"))
			if n > 0 {
				rj.Reason = string(r.bytes(n, "reason"))
			}
			out[i].Reservation = rj
		default:
			if r.err == nil {
				r.err = fmt.Errorf("wire: unknown item kind %d", kind)
			}
		}
		if r.err != nil {
			return nil, fmt.Errorf("item %d: %w", i, r.err)
		}
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("wire: %d trailing bytes after %d items", len(body)-r.off, count)
	}
	return out, nil
}
