package server

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"gridbw/internal/alloc"
	"gridbw/internal/request"
	"gridbw/internal/topology"
	"gridbw/internal/units"
	"gridbw/internal/wal"
)

// The batched admission pipeline. One SubmitBatch call decides N
// submissions in three phases:
//
//  1. Under s.mu: validate, resolve or seed the idempotency cache, clamp
//     NotBefore to the advanced clock, allocate IDs and settle the domain
//     rejections that need no capacity lookup.
//  2. Without s.mu: sort the survivors by (ingress, egress) pair and run
//     the admission search — breakpoint enumeration, policy assignment,
//     the two-sided reserve — holding each pair's shard locks once per
//     group instead of once per submission. Disjoint pairs from other
//     calls proceed in parallel throughout this phase.
//  3. Under s.mu again: publish the accepted entries, schedule expiries,
//     audit the decision log and fill the idempotency slots.
//
// Capacity is claimed in phase 2 in pair order, not input order; two
// submissions of one batch competing for the same scarce window are
// decided in (ingress, egress, input) order.
//
// Every per-call structure — the item table, the pending/waiting lists,
// the candidate-start scratch, the pair transaction — lives in a pooled
// batchScratch, so the steady-state pipeline performs no heap allocation
// of its own: Submit runs allocation-free end to end.

// Durability outcomes for decisions that waited on synchronous follower
// acks. Empty means no sync-ack wait applied to the call (async mode and
// no Durable flag), or the result was served from the idempotency cache
// by a flight whose wait already answered the original caller.
const (
	// DurabilityReplicated: enough follower cursors passed this call's
	// WAL frontier before the answer left — the decision survives the
	// loss of the primary.
	DurabilityReplicated = "replicated"
	// DurabilityDegraded: the sync-ack deadline lapsed; the decision is
	// only locally durable and the caller that asked for replicated
	// durability should retry or escalate.
	DurabilityDegraded = "degraded"
)

// BatchResult is one submission's outcome within a batch: either a
// Decision or a per-item error (malformed submission, or ErrClosed when
// the server drained mid-batch).
type BatchResult struct {
	Decision Decision
	Err      error
	// Durability reports the sync-ack outcome for this decision — see the
	// Durability* constants. A batch waits on one shared WAL frontier, so
	// every decision of a call carries the same outcome.
	Durability string
}

// batchItem carries one submission through the pipeline phases. Items live
// in the scratch table at their submission's index, so phase 3 publishes in
// input order by walking the table instead of re-sorting.
type batchItem struct {
	idx  int
	sub  Submission
	r    request.Request
	ent  *idemEntry // placeholder this call must fill, if keyed
	wait *idemEntry // existing slot to resolve instead of admitting

	// pending marks items that entered the phase-2 admission search.
	pending bool

	// minRateV caches r.MinRate() — a division the feasibility check and
	// the rigidity classification would otherwise each redo. Zero means
	// "not computed yet" (a real MinRate is always positive).
	minRateV units.Bandwidth

	// Admission outcome (phase 2).
	g        request.Grant
	accepted bool
	reason   string
}

// minRate computes r.MinRate once per item.
func (it *batchItem) minRate() units.Bandwidth {
	if it.minRateV == 0 {
		it.minRateV = it.r.MinRate()
	}
	return it.minRateV
}

// batchScratch is the pooled working set of one submitMany call.
type batchScratch struct {
	subs1   [1]Submission // backing array for the single-submission path
	items   []batchItem   // one per submission, indexed by input position
	results []BatchResult // one per submission, indexed by input position
	pending []*batchItem  // survivors entering the admission search
	waiting []*batchItem  // idempotent hits resolved in phase 4
	decided []int         // input indices whose decision this call published
	cands   []units.Time  // candidate-start scratch for admitTx
	tx      alloc.PairTx  // reusable pair transaction
}

var scratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

func getScratch(n int) *batchScratch {
	sc := scratchPool.Get().(*batchScratch)
	if cap(sc.items) < n {
		sc.items = make([]batchItem, n)
	}
	sc.items = sc.items[:n]
	if cap(sc.results) < n {
		sc.results = make([]BatchResult, n)
	}
	sc.results = sc.results[:n]
	clear(sc.results)
	sc.pending = sc.pending[:0]
	sc.waiting = sc.waiting[:0]
	sc.decided = sc.decided[:0]
	return sc
}

// putScratch drops every reference the call planted (idempotency slots,
// keys, shard pointers) so pooling never extends their lifetime.
func putScratch(sc *batchScratch) {
	clear(sc.items)
	clear(sc.results)
	clear(sc.pending)
	clear(sc.waiting)
	sc.subs1[0] = Submission{}
	sc.tx = alloc.PairTx{}
	scratchPool.Put(sc)
}

// SubmitBatch decides every submission in one pass and reports one result
// per input, in input order. The only call-level errors are an empty or
// oversized batch and ErrClosed; per-submission failures come back in the
// matching BatchResult.
func (s *Server) SubmitBatch(subs []Submission) ([]BatchResult, error) {
	sc := getScratch(len(subs))
	err := s.submitMany(subs, sc)
	if err != nil {
		putScratch(sc)
		return nil, err
	}
	out := make([]BatchResult, len(subs))
	copy(out, sc.results)
	putScratch(sc)
	s.recordBatch(len(subs))
	return out, nil
}

// submitOne runs one submission through the batch pipeline and keeps the
// full BatchResult, durability outcome included — the single-request HTTP
// handler needs it on the wire, where the Decision-only Submit would
// discard it.
func (s *Server) submitOne(sub Submission) (BatchResult, error) {
	sc := getScratch(1)
	sc.subs1[0] = sub
	err := s.submitMany(sc.subs1[:1], sc)
	if err != nil {
		putScratch(sc)
		return BatchResult{}, err
	}
	res := sc.results[0]
	putScratch(sc)
	if res.Err != nil {
		return BatchResult{}, res.Err
	}
	return res, nil
}

// byPair orders phase-2 survivors by (ingress, egress) so consecutive
// items share one shard-pair lock acquisition. Kept a named function so
// the sort call carries no closure.
func byPair(a, b *batchItem) int {
	if a.r.Ingress != b.r.Ingress {
		return int(a.r.Ingress) - int(b.r.Ingress)
	}
	return int(a.r.Egress) - int(b.r.Egress)
}

func (s *Server) submitMany(subs []Submission, sc *batchScratch) error {
	if len(subs) == 0 {
		return fmt.Errorf("server: empty batch")
	}
	if len(subs) > s.maxBatch {
		return fmt.Errorf("server: batch of %d exceeds limit %d", len(subs), s.maxBatch)
	}
	// Admission latency is measured on the real clock, not s.clock: it is
	// an observation of this process's decide pipeline, comparable with
	// what a load harness measures from outside, even when tests drive the
	// service clock manually.
	started := time.Now()
	results := sc.results

	// Phase 1: the global section — idempotency, IDs, domain checks.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.repl.following {
		s.mu.Unlock()
		return ErrReadOnly
	}
	s.advanceLocked()
	now := s.sim.Now()
	// A poisoned WAL cannot persist anything this call decides. Refusing
	// here — before idempotency slots or IDs are claimed — means a NACKed
	// durable submission leaves no trace and can be retried verbatim
	// against a healthy node.
	walPoisoned := s.wal != nil && s.wal.Poisoned() != nil
	for i := range subs {
		sub := subs[i]
		it := &sc.items[i]
		*it = batchItem{idx: i, sub: sub}
		if err := s.validateSubmission(sub); err != nil {
			results[i].Err = err
			continue
		}
		if walPoisoned && (s.syncNeed > 0 || sub.Durable) {
			results[i].Err = ErrDurabilityLost
			continue
		}
		if key := sub.IdempotencyKey; key != "" {
			if e, ok := s.idem[key]; ok {
				// A retry (or a concurrent duplicate still in flight):
				// never book again, answer from the original decision.
				s.stats.RecordIdempotentHit()
				it.wait = e
				sc.waiting = append(sc.waiting, it)
				continue
			}
			it.ent = &idemEntry{done: make(chan struct{})}
			s.rememberLocked(key, it.ent)
		}
		notBefore := sub.NotBefore
		if notBefore < now {
			notBefore = now
		}
		id := s.nextID
		s.nextID++
		it.r = request.Request{
			ID:      id,
			Ingress: topology.PointID(sub.From),
			Egress:  topology.PointID(sub.To),
			Start:   notBefore,
			Finish:  sub.Deadline,
			Volume:  sub.Volume,
			MaxRate: sub.MaxRate,
		}
		// Window and rate infeasibility are domain rejections, not API
		// errors; they need no capacity lookup, so they settle here.
		switch {
		case it.r.Finish <= it.r.Start:
			d := s.rejectLocked(it.r, fmt.Sprintf("empty window: deadline %v not after start %v", it.r.Finish, it.r.Start))
			s.settleLocked(it, d, nil)
			results[i].Decision = d
			sc.decided = append(sc.decided, i)
		case it.minRate() > it.r.MaxRate*(1+units.Eps):
			d := s.rejectLocked(it.r, fmt.Sprintf("infeasible: needs %v to move %v in window but MaxRate is %v",
				it.minRate(), it.r.Volume, it.r.MaxRate))
			s.settleLocked(it, d, nil)
			results[i].Decision = d
			sc.decided = append(sc.decided, i)
		default:
			if err := it.r.Validate(); err != nil {
				err = fmt.Errorf("server: %w", err)
				s.settleLocked(it, Decision{}, err)
				results[i].Err = err
				continue
			}
			it.pending = true
			sc.pending = append(sc.pending, it)
		}
	}
	s.mu.Unlock()

	// Phase 2: admission searches under shard pair locks only. Sorting by
	// point pair lets consecutive items share one lock acquisition and
	// keeps the ingress-before-egress global order.
	if len(sc.pending) > 1 {
		slices.SortStableFunc(sc.pending, byPair)
	}
	tx, locked := &sc.tx, false
	for _, it := range sc.pending {
		if locked && !tx.Covers(it.r.Ingress, it.r.Egress) {
			tx.Unlock()
			locked = false
		}
		if !locked {
			s.ledger.LockPair(tx, it.r.Ingress, it.r.Egress)
			locked = true
		}
		s.admitTx(tx, it, sc)
	}
	if locked {
		tx.Unlock()
	}

	// Phase 3: publish under the global section. Items sit in the scratch
	// table at their input position, so walking it publishes in input order
	// with no re-sort.
	durable := false
	for i := range subs {
		if subs[i].Durable {
			durable = true
			break
		}
	}
	s.mu.Lock()
	s.advanceLocked()
	for i := range sc.items {
		it := &sc.items[i]
		if !it.pending {
			continue
		}
		if s.closed {
			// The server drained between phases; an accepted grant must
			// not outlive a stopped expiry loop, so give it back.
			if it.accepted {
				s.ledger.Revoke(it.r)
			}
			s.settleLocked(it, Decision{}, ErrClosed)
			results[it.idx].Err = ErrClosed
			continue
		}
		var d Decision
		if it.accepted {
			d = s.acceptLocked(it.r, it.g)
		} else {
			d = s.rejectLocked(it.r, it.reason)
		}
		s.settleLocked(it, d, nil)
		results[it.idx].Decision = d
		sc.decided = append(sc.decided, it.idx)
	}
	// Synchronous-ack durability: the decisions just published were WAL'd
	// under s.mu, so the append frontier now covers every frame of this
	// call. If the mode (or a Durable flag) asks for follower acks, park
	// until enough follower cursors pass that frontier — outside s.mu, so
	// admissions keep flowing while this response waits on replication.
	var syncPos wal.Pos
	poisonedLate := false
	need := s.syncNeedFor(durable)
	decided := len(subs) - len(sc.waiting)
	if need > 0 && s.wal != nil && decided > 0 {
		if s.wal.Poisoned() != nil {
			// The WAL died between phase 1 and here: these decisions were
			// never persisted, so follower acks cannot vouch for them.
			// Waiting on the stale frontier would report "replicated" for
			// frames that do not exist — answer degraded instead.
			poisonedLate = true
		} else {
			syncPos = s.wal.End()
		}
	}
	s.mu.Unlock()

	degraded := poisonedLate
	if poisonedLate {
		for _, i := range sc.decided {
			results[i].Durability = DurabilityDegraded
		}
	}
	if !syncPos.IsZero() {
		degraded = !s.acks.Wait(s.stop, syncPos, need, s.syncTimeout)
		// The wait's outcome is part of each answer, not just a global
		// counter: a caller that asked for replicated durability must be
		// able to see when its specific ack was not replicated in time.
		outcome := DurabilityReplicated
		if degraded {
			outcome = DurabilityDegraded
		}
		for _, i := range sc.decided {
			results[i].Durability = outcome
		}
	}

	// Every submission this call decided (domain rejections from phase 1
	// included, idempotent waiters excluded — their decision was timed by
	// the owning flight) shares the call's pipeline latency, sync-ack
	// parking included: admit latency is the client-visible decide time.
	elapsed := time.Since(started)
	s.mu.Lock()
	if degraded {
		// The acks never came inside the deadline: answer anyway (the
		// decision is locally durable) but flip the degraded signal — the
		// caller was promised replicated durability it did not get.
		s.stats.RecordSyncDegraded()
	}
	for i := 0; i < decided; i++ {
		s.stats.RecordAdmitLatency(elapsed)
	}
	s.mu.Unlock()

	// Phase 4: resolve idempotent hits. The owning submission may still be
	// in flight on another goroutine; wait for it without holding any lock.
	for _, it := range sc.waiting {
		results[it.idx] = s.resolveIdem(it.wait)
	}
	return nil
}

// admitTx runs the admission search for one validated request against its
// locked point pair: rigid requests search every candidate start
// (book-ahead); flexible requests are decided at their earliest admissible
// instant only. On success the grant is already committed to the ledger.
func (s *Server) admitTx(tx *alloc.PairTx, it *batchItem, sc *batchScratch) {
	r := it.r
	latest := r.Finish - r.Volume.Over(r.MaxRate)
	candidates := append(sc.cands[:0], r.Start)
	rigid := units.ApproxEq(float64(it.minRate()), float64(r.MaxRate))
	if rigid && latest > r.Start {
		candidates = tx.Ingress().AppendBreakpointTimes(candidates, r.Start, latest)
		candidates = tx.Egress().AppendBreakpointTimes(candidates, r.Start, latest)
		slices.Sort(candidates)
	}
	sc.cands = candidates

	it.reason = "no feasible start in window"
	for i, sigma := range candidates {
		if i > 0 && sigma == candidates[i-1] {
			continue
		}
		bw, err := s.pol.Assign(r, sigma)
		if err != nil {
			it.reason = "policy: " + err.Error()
			continue
		}
		g, err := request.NewGrant(r, sigma, bw)
		if err != nil {
			it.reason = "grant: " + err.Error()
			continue
		}
		if err := tx.Reserve(r, g); err != nil {
			it.reason = "capacity saturated"
			continue
		}
		it.g, it.accepted = g, true
		return
	}
}

// settleLocked fills the item's idempotency slot, waking every retry
// blocked on it. Decisions stay cached; API errors are dropped from the
// cache so a corrected retry re-attempts instead of replaying the error.
func (s *Server) settleLocked(it *batchItem, d Decision, err error) {
	if it.ent == nil {
		return
	}
	it.ent.d, it.ent.err = d, err
	close(it.ent.done)
	if err != nil {
		if cur, ok := s.idem[it.sub.IdempotencyKey]; ok && cur == it.ent {
			delete(s.idem, it.sub.IdempotencyKey)
		}
	}
}

// resolveIdem waits for an idempotency slot to settle and re-derives the
// live state of an accepted reservation, exactly like a fresh Lookup.
func (s *Server) resolveIdem(e *idemEntry) BatchResult {
	<-e.done
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked()
	if e.err != nil {
		return BatchResult{Err: e.err}
	}
	d := e.d
	if le, live := s.resv[d.ID]; live && d.Accepted {
		d = s.decisionLocked(le)
	}
	return BatchResult{Decision: d}
}
