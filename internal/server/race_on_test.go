//go:build race

package server_test

// raceEnabled reports whether the race detector is active: its
// instrumentation defeats sync.Pool reuse, so the steady-state
// allocation fences are meaningless under -race and skip themselves.
const raceEnabled = true
