package server

// Log-shipping replication. The primary's WAL doubles as the replication
// stream: a follower long-polls GET /v1/replication/pull with its cursor,
// the primary answers with the decision records past it, and the follower
// replays them into its own sharded ledger — and into its own WAL, so a
// promoted follower owns a complete local history.
//
// Safety rests on three properties:
//
//   - Fencing: every shipped batch carries the sender's epoch. A receiver
//     whose epoch is higher refuses the batch outright, so a deposed
//     primary — still running after its follower was promoted — can never
//     push its decisions into the new primary's lineage.
//   - Idempotent apply: the follower's pull cursor is persisted after the
//     applied records, so a crash can rewind it. Re-delivered accepts that
//     match the applied grant byte-for-byte are skipped, and cancels or
//     expires of missing/terminal reservations are tolerated; replay from
//     any earlier cursor converges on the same state.
//   - Read-only while following: a follower answers every Submit and
//     Cancel with ErrReadOnly until promoted, so the only writer of its
//     ledger is the shipped stream. Promotion schedules the expiry timers
//     the follower deliberately never armed (shipped expire events played
//     that role), bumps and persists the fencing epoch, and records a
//     promote marker in the log.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"gridbw/internal/request"
	"gridbw/internal/trace"
	"gridbw/internal/units"
	"gridbw/internal/wal"
)

// Pull-loop tuning: the long-poll window the follower asks for, the batch
// bound, and the backoff band for transport errors.
const (
	pullWait        = 2 * time.Second
	pullMaxRecords  = 512
	pullMaxBytes    = 1 << 20
	pullBaseBackoff = 50 * time.Millisecond
	pullMaxBackoff  = 2 * time.Second
	// refollowAfter is how many consecutive transport failures against the
	// pull source a follower tolerates before probing the peer list for the
	// epoch-dominant live primary and re-pointing the loop. Three failures
	// at the doubling backoff is ~350ms — slow enough to ride out a restart
	// blip, fast enough that an election's losing follower converges onto
	// the winner promptly.
	refollowAfter    = 3
	refollowProbeTTL = 2 * time.Second
)

// replState is the replication role of one server, guarded by s.mu.
type replState struct {
	following bool
	source    string  // primary base URL while following
	epoch     uint64  // fencing epoch; grows on every promotion
	cursor    wal.Pos // next position to pull from the primary
	applied   uint64  // records applied since this process started
	lagBytes  int64   // primary bytes not yet applied, from the last batch
	lastPull  time.Time
	lastErr   string
	stopPull  chan struct{}
	pullDone  chan struct{}
	// votedEpoch/votedFor is the durable vote-once record: the highest
	// epoch this node granted a promotion vote in and the candidate it
	// endorsed. Persisted (wal.SaveVote) before any grant leaves the
	// node, so a crash-restart cannot endorse a second candidate.
	votedEpoch uint64
	votedFor   string
}

// ShippedBatch is one pull answer: the records between From and Next,
// fenced by the sender's epoch. End is the sender's append frontier and
// LagBytes the exact committed bytes between Next and End, so the
// follower can report how far behind it runs without guessing at segment
// sizes it cannot see.
type ShippedBatch struct {
	Epoch    uint64        `json:"epoch"`
	From     wal.Pos       `json:"from"`
	Next     wal.Pos       `json:"next"`
	End      wal.Pos       `json:"end"`
	LagBytes int64         `json:"lag_bytes"`
	Events   []trace.Event `json:"events"`
}

// initRepl resolves the fencing epoch — the largest of the explicit
// config, the snapshot's recorded value and the WAL directory's saved one,
// defaulting to 1 — and, when following, restores the persisted pull
// cursor. Called before the server goes concurrent.
func (s *Server) initRepl(cfg Config, snapEpoch uint64) error {
	epoch := cfg.Epoch
	if snapEpoch > epoch {
		epoch = snapEpoch
	}
	if s.wal != nil {
		saved, err := wal.LoadEpoch(s.wal.Dir())
		if err != nil {
			return err
		}
		if saved > epoch {
			epoch = saved
		}
	}
	if epoch == 0 {
		epoch = 1
	}
	s.repl.epoch = epoch
	if s.wal != nil {
		v, err := wal.LoadVote(s.wal.Dir())
		if err != nil {
			return err
		}
		s.repl.votedEpoch, s.repl.votedFor = v.Epoch, v.Candidate
	}
	if cfg.Follow != "" {
		s.repl.following = true
		s.repl.source = strings.TrimRight(cfg.Follow, "/")
		if s.wal != nil {
			cur, err := wal.LoadCursor(s.wal.Dir())
			if err != nil {
				return err
			}
			s.repl.cursor = cur
		}
	}
	return nil
}

func (s *Server) roleLocked() string {
	if s.repl.following {
		return "follower"
	}
	return "primary"
}

// Epoch reports the current fencing epoch.
func (s *Server) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.repl.epoch
}

// Following reports whether the server is a read-only follower.
func (s *Server) Following() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.repl.following
}

// stopPullLocked signals the pull loop to exit and returns its done
// channel (nil when no loop was started). Callers wait outside s.mu.
func (s *Server) stopPullLocked() chan struct{} {
	if s.repl.stopPull == nil {
		return nil
	}
	select {
	case <-s.repl.stopPull:
	default:
		close(s.repl.stopPull)
	}
	return s.repl.pullDone
}

// ApplyShipped replays one pulled batch into a follower. The batch is
// fenced (an epoch older than the receiver's is refused — the sender is a
// deposed primary) and the apply is idempotent, so a cursor that rewound
// across a crash re-delivers harmlessly.
func (s *Server) ApplyShipped(b ShippedBatch) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if !s.repl.following {
		return ErrNotFollower
	}
	if b.Epoch < s.repl.epoch {
		return &FencedError{Batch: b.Epoch, Current: s.repl.epoch}
	}
	if b.Epoch > s.repl.epoch {
		s.repl.epoch = b.Epoch
		if s.wal != nil {
			if err := s.wal.SaveEpoch(b.Epoch); err != nil {
				s.stats.RecordLogAppendFailure()
			}
		}
	}
	if !s.repl.cursor.IsZero() && b.From != s.repl.cursor {
		return fmt.Errorf("server: replication gap: batch starts at %v, cursor at %v", b.From, s.repl.cursor)
	}
	for _, ev := range b.Events {
		if err := s.applyEventLocked(ev, true); err != nil {
			return err
		}
	}
	s.repl.cursor = b.Next
	s.repl.applied += uint64(len(b.Events))
	s.repl.lagBytes = b.LagBytes
	s.repl.lastPull = s.clock()
	if s.wal != nil {
		// The cursor is persisted after the records it covers, so a crash
		// between the two re-pulls an already-applied suffix — which the
		// idempotent apply skips — instead of losing one.
		if err := s.wal.SaveCursor(b.Next); err != nil {
			s.stats.RecordLogAppendFailure()
		}
	}
	return nil
}

// ApplyEvents tolerantly replays recovered events — the WAL suffix past a
// snapshot, or a follower's own WAL at boot — into the server. The events
// are not re-recorded: they already live in the local WAL.
func (s *Server) ApplyEvents(events []trace.Event) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	applied := 0
	for _, ev := range events {
		if err := s.applyEventLocked(ev, false); err != nil {
			return applied, err
		}
		applied++
	}
	return applied, nil
}

// applyEventLocked replays one shipped (or recovered) event. Duplicates —
// re-deliveries of already-applied history — are skipped before they can
// double-book capacity or re-enter the local WAL, so replay converges
// from any cursor. While following, accepts are booked without expiry
// timers: the primary's shipped expire events retire them, and Promote
// arms the timers when the follower takes over.
func (s *Server) applyEventLocked(ev trace.Event, toWAL bool) error {
	switch ev.Kind {
	case trace.EventAccept:
		r, g, err := grantFromEvent(ev, s.net)
		if err != nil {
			return fmt.Errorf("server: apply: %w", err)
		}
		if e, ok := s.resv[r.ID]; ok {
			if e.req == r && e.grant == g {
				return nil // duplicate delivery of an applied accept
			}
			return fmt.Errorf("server: apply: reservation %d already exists with a different grant", r.ID)
		}
		if err := s.ledger.Reserve(r, g); err != nil {
			return fmt.Errorf("server: apply: %w", err)
		}
		e := s.allocEntry()
		e.req, e.grant, e.state = r, g, StateActive
		if !s.repl.following {
			at := g.Tau
			if now := s.sim.Now(); at < now {
				at = now
			}
			e.expire = s.sim.At(at, s.expireEvent(r.ID))
			s.poke()
		}
		s.resv[r.ID] = e
		s.stats.RecordAccept(g.Bandwidth, r.Volume)
	case trace.EventReject:
		s.stats.RecordReject()
	case trace.EventCancel, trace.EventExpire:
		e, ok := s.resv[request.ID(ev.Request)]
		if !ok || e.state != StateActive {
			return nil // duplicate, or history before this replica's horizon
		}
		s.sim.Cancel(e.expire)
		s.ledger.Revoke(e.req)
		if ev.Kind == trace.EventCancel {
			e.state = StateCancelled
			s.stats.RecordCancel()
		} else {
			e.state = StateExpired
			s.stats.RecordExpire()
		}
		s.retireLocked(request.ID(ev.Request))
	case trace.EventHoldReserve, trace.EventHoldConfirm, trace.EventHoldAbort,
		trace.EventHoldExpire, trace.EventHoldRelease:
		if err := s.applyHoldEventLocked(ev); err != nil {
			return err
		}
	case trace.EventRestore, trace.EventPanic, trace.EventPromote:
		// Markers carry no reservation state.
	default:
		return fmt.Errorf("server: apply: unknown event kind %q", ev.Kind)
	}
	if ev.Request >= int(s.nextID) {
		s.nextID = request.ID(ev.Request + 1)
	}
	s.reanchorLocked(ev.At)
	if toWAL {
		s.appendEventLocked(ev)
	}
	return nil
}

// reanchorLocked pulls the service clock forward to the primary's event
// time: a replica that booted later than its primary would otherwise sit
// hours behind, and promotion would misread every booked window. Only the
// epoch anchor moves — due expiries fire on the next ordinary advance,
// never in the middle of an apply.
func (s *Server) reanchorLocked(at float64) {
	if units.Time(at) > s.wallNow() {
		s.epoch = s.clock().Add(-time.Duration(at * float64(time.Second)))
	}
}

// Promote turns a follower into the primary: the pull loop stops, the
// fencing epoch grows and is persisted (so the fence survives a crash),
// every live reservation gets the expiry timer following had deferred,
// and a promote marker lands in the log. Promoting a primary is answered
// with ErrNotFollower and the unchanged epoch, making retries harmless.
//
// The installed epoch honours the durable vote record: a node whose own
// election was bid past old-epoch+1 installs the epoch its quorum
// actually endorsed, and a node that endorsed a rival at or past the
// epoch it would install refuses outright — two lineages must never
// share an epoch number.
func (s *Server) Promote() (uint64, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	if !s.repl.following {
		epoch := s.repl.epoch
		s.mu.Unlock()
		return epoch, ErrNotFollower
	}
	next := s.repl.epoch + 1
	if s.repl.votedEpoch >= next {
		if s.replID == "" || s.repl.votedFor != s.replID {
			// This node's durable vote endorses a rival at or past the
			// epoch it would install; promoting would plant a lineage on
			// a number the rival's election may own. Refuse and stay a
			// follower — the watchdog's next round bids past the record.
			err := fmt.Errorf("server: promotion refused: endorsed %q for epoch %d", s.repl.votedFor, s.repl.votedEpoch)
			epoch := s.repl.epoch
			s.mu.Unlock()
			return epoch, err
		}
		// An election with epoch bidding endorsed this node at a higher
		// number than old-epoch+1; install the quorum-endorsed epoch so
		// no rival can later be elected under the same number.
		next = s.repl.votedEpoch
	}
	s.advanceLocked()
	s.repl.following = false
	s.repl.source = ""
	s.repl.epoch = next
	epoch := s.repl.epoch
	done := s.stopPullLocked()
	if s.wal != nil {
		if err := s.wal.SaveEpoch(epoch); err != nil {
			// The fence is not durable; keep serving, but flag it loudly.
			s.stats.RecordLogAppendFailure()
		}
	}
	now := s.sim.Now()
	armed := 0
	for id, e := range s.resv {
		if e.state != StateActive {
			continue
		}
		at := e.grant.Tau
		if at < now {
			at = now
		}
		e.expire = s.sim.At(at, s.expireEvent(id))
		armed++
	}
	// Cross-shard holds the deposed primary left pending get their timers
	// back too: unconfirmed ones still roll back on TTL, confirmed ones
	// still release at τ.
	armed += s.armHoldTimersLocked()
	s.appendEventLocked(trace.Event{
		At: float64(now), Kind: trace.EventPromote, Request: -1,
		Reason: fmt.Sprintf("epoch %d, %d live reservations", epoch, armed),
	})
	s.mu.Unlock()
	s.poke()
	if done != nil {
		<-done
	}
	return epoch, nil
}

// StartFollowing launches the background pull loop against the primary
// configured in Config.Follow. Calling it on a primary is ErrNotFollower;
// calling it twice is a no-op.
func (s *Server) StartFollowing() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if !s.repl.following {
		return ErrNotFollower
	}
	if s.repl.stopPull != nil {
		return nil
	}
	s.repl.stopPull = make(chan struct{})
	s.repl.pullDone = make(chan struct{})
	go s.pullLoop(s.repl.source, s.repl.stopPull, s.repl.pullDone)
	return nil
}

func (s *Server) cursorNow() wal.Pos {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.repl.cursor
}

func (s *Server) setPullError(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err == nil {
		s.repl.lastErr = ""
	} else {
		s.repl.lastErr = err.Error()
	}
}

// pullLoop long-polls the primary for records past the cursor and applies
// each batch. Transport errors back off and retry; after refollowAfter of
// them in a row the loop probes the peer list for the epoch-dominant live
// primary and re-points itself — the fix for an election's losing
// follower, whose source is a dead endpoint. A source whose batches are
// fenced off (it is a deposed primary the follower has already out-epoched)
// triggers the same rediscovery immediately. A cursor the primary
// compacted away (410 Gone) triggers an automatic snapshot re-seed;
// divergence errors halt the loop — retrying cannot fix them, and
// continuing would corrupt the replica. The last error is surfaced on
// /v1/replication/status.
func (s *Server) pullLoop(source string, stop, done chan struct{}) {
	defer close(done)
	hc := &http.Client{Timeout: pullWait + 10*time.Second}
	backoff := pullBaseBackoff
	failures := 0
	for {
		select {
		case <-stop:
			return
		default:
		}
		b, err := pullOnce(hc, source, s.cursorNow(), s.replID, stop)
		if err == nil {
			failures = 0
			if err = s.ApplyShipped(b); err == nil {
				s.setPullError(nil)
				backoff = pullBaseBackoff
				continue
			}
			if errors.Is(err, ErrNotFollower) || errors.Is(err, ErrClosed) {
				return
			}
			var fenced *FencedError
			if errors.As(err, &fenced) {
				// The source is a deposed primary: this follower's epoch
				// already moved past the stream it serves. Find the lineage
				// that deposed it instead of halting.
				if next, ok := s.rediscoverPrimary(hc, stop); ok && next != source {
					source = next
					backoff = pullBaseBackoff
					s.setPullError(nil)
					continue
				}
			}
			s.setPullError(err)
			return
		}
		if errors.Is(err, errPullGone) {
			// The primary compacted our cursor away; rebuild from its
			// snapshot and resume pulling at the snapshot's frontier.
			err = s.reseedFromSource(hc, source, stop)
			if err == nil {
				s.setPullError(nil)
				backoff = pullBaseBackoff
				failures = 0
				continue
			}
			if errors.Is(err, ErrNotFollower) || errors.Is(err, ErrClosed) {
				return
			}
			var fenced *FencedError
			if errors.As(err, &fenced) {
				// The snapshot came from a deposed lineage; retrying pulls
				// the same stale history forever. Halt loudly.
				s.setPullError(err)
				return
			}
			// Transient download/validation failure: back off and retry the
			// pull, which will 410 again and re-attempt the re-seed.
		}
		s.setPullError(err)
		if failures++; failures >= refollowAfter {
			failures = 0
			if next, ok := s.rediscoverPrimary(hc, stop); ok && next != source {
				source = next
				backoff = pullBaseBackoff
				s.setPullError(nil)
				continue
			}
		}
		select {
		case <-stop:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > pullMaxBackoff {
			backoff = pullMaxBackoff
		}
	}
}

// rediscoverPrimary probes every configured peer's replication status
// concurrently and returns the base URL of the live primary with the
// highest epoch at or past this follower's own — the epoch-dominant
// primary. Peers that are down, still followers, or on a superseded
// lineage are ignored (the probing node itself answers as a follower, so
// listing yourself among the peers is harmless). On success the
// follower's source is re-pointed; the pull cursor is kept — every
// follower re-appends the identical shipped frames to its own WAL, so
// positions are comparable across group members, and a genuine divergence
// still halts on the gap check.
func (s *Server) rediscoverPrimary(hc *http.Client, stop <-chan struct{}) (string, bool) {
	peers := s.peers
	if len(peers) == 0 {
		return "", false
	}
	minEpoch := s.Epoch()
	ctx, cancel := context.WithTimeout(context.Background(), refollowProbeTTL)
	defer cancel()
	go func() {
		select {
		case <-stop:
			cancel()
		case <-ctx.Done():
		}
	}()
	type probe struct {
		url     string
		epoch   uint64
		primary bool
	}
	ch := make(chan probe, len(peers))
	for _, p := range peers {
		go func(base string) {
			rs, err := fetchReplStatus(ctx, hc, base)
			ch <- probe{url: base, epoch: rs.Epoch, primary: err == nil && rs.Role == "primary"}
		}(p)
	}
	var best string
	var bestEpoch uint64
	for range peers {
		p := <-ch
		if p.primary && p.epoch >= minEpoch && (best == "" || p.epoch > bestEpoch) {
			best, bestEpoch = p.url, p.epoch
		}
	}
	if best == "" {
		return "", false
	}
	s.retarget(best)
	return best, true
}

// retarget re-points the follower's pull source, keeping the status
// surface in sync with what the pull loop actually polls.
func (s *Server) retarget(source string) {
	s.mu.Lock()
	if s.repl.following {
		s.repl.source = source
	}
	s.mu.Unlock()
}

// fetchReplStatus GETs one peer's /v1/replication/status.
func fetchReplStatus(ctx context.Context, hc *http.Client, base string) (ReplicationStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/replication/status", nil)
	if err != nil {
		return ReplicationStatus{}, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return ReplicationStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 64*1024))
		return ReplicationStatus{}, fmt.Errorf("server: status probe: HTTP %d", resp.StatusCode)
	}
	var rs ReplicationStatus
	if err := json.NewDecoder(resp.Body).Decode(&rs); err != nil {
		return ReplicationStatus{}, err
	}
	return rs, nil
}

// normalizePeers trims trailing slashes and drops empty entries from a
// configured peer list.
func normalizePeers(peers []string) []string {
	out := make([]string, 0, len(peers))
	for _, p := range peers {
		if p = strings.TrimRight(p, "/"); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// pullOnce runs one long-poll round trip, aborted early if stop closes.
// The follower's id rides along so the primary can attribute the cursor:
// a presented cursor acknowledges that everything before it is applied
// and persisted on this follower.
func pullOnce(hc *http.Client, source string, cur wal.Pos, id string, stop <-chan struct{}) (ShippedBatch, error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		select {
		case <-stop:
			cancel()
		case <-ctx.Done():
		}
	}()
	u := fmt.Sprintf("%s/v1/replication/pull?seg=%d&off=%d&max=%d&wait_ms=%d&id=%s",
		source, cur.Seg, cur.Off, pullMaxRecords, pullWait.Milliseconds(), url.QueryEscape(id))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return ShippedBatch{}, fmt.Errorf("server: pull: %w", err)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return ShippedBatch{}, fmt.Errorf("server: pull: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusGone {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 64*1024))
		return ShippedBatch{}, errPullGone
	}
	if resp.StatusCode != http.StatusOK {
		var apiErr ErrorJSON
		msg := resp.Status
		blob, _ := io.ReadAll(io.LimitReader(resp.Body, 64*1024))
		if json.Unmarshal(blob, &apiErr) == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		return ShippedBatch{}, fmt.Errorf("server: pull: HTTP %d: %s", resp.StatusCode, msg)
	}
	var b ShippedBatch
	if err := json.NewDecoder(resp.Body).Decode(&b); err != nil {
		return ShippedBatch{}, fmt.Errorf("server: pull: decode: %w", err)
	}
	return b, nil
}

// FollowerStatus is one follower's replication progress as seen from its
// primary: the last cursor it presented on pull, how many committed
// bytes it still trails the frontier by, and how long ago it reported.
type FollowerStatus struct {
	Cursor   wal.Pos `json:"cursor"`
	LagBytes int64   `json:"lag_bytes"`
	AgeS     float64 `json:"age_s"`
}

// ReplicationStatus is the GET /v1/replication/status body.
type ReplicationStatus struct {
	Role    string  `json:"role"`
	ID      string  `json:"id,omitempty"`
	Epoch   uint64  `json:"epoch"`
	Source  string  `json:"source,omitempty"`
	Cursor  wal.Pos `json:"cursor"`
	Applied uint64  `json:"applied_records"`
	// LagBytes is the primary's committed bytes this follower has not yet
	// applied, as reported by the last pulled batch; 0 on a primary.
	LagBytes   int64   `json:"lag_bytes"`
	LastPullS  float64 `json:"last_pull_age_s,omitempty"`
	LastError  string  `json:"last_error,omitempty"`
	WALRecords uint64  `json:"wal_records"`
	WALEnd     wal.Pos `json:"wal_end"`
	// Followers maps each identified follower to its progress — only a
	// primary that has served identified pulls reports any.
	Followers map[string]FollowerStatus `json:"followers,omitempty"`
	// SyncMode/SyncAcks echo the configured synchronous-ack durability.
	SyncMode string `json:"sync_mode,omitempty"`
	SyncAcks int    `json:"sync_acks,omitempty"`
	// VotedEpoch/VotedFor expose the durable vote-once record.
	VotedEpoch uint64 `json:"voted_epoch,omitempty"`
	VotedFor   string `json:"voted_for,omitempty"`
}

// ReplicationStatus reports the replication role, epoch, cursor and lag.
func (s *Server) ReplicationStatus() ReplicationStatus {
	s.mu.Lock()
	rs := ReplicationStatus{
		Role: s.roleLocked(), ID: s.replID, Epoch: s.repl.epoch, Source: s.repl.source,
		Cursor: s.repl.cursor, Applied: s.repl.applied, LagBytes: s.repl.lagBytes,
		LastError:  s.repl.lastErr,
		VotedEpoch: s.repl.votedEpoch, VotedFor: s.repl.votedFor,
	}
	if !s.repl.lastPull.IsZero() {
		rs.LastPullS = s.clock().Sub(s.repl.lastPull).Seconds()
	}
	s.mu.Unlock()
	rs.SyncMode = s.syncMode
	rs.SyncAcks = s.durableNeed
	if s.wal != nil {
		rs.WALRecords = s.wal.Records()
		rs.WALEnd = s.wal.End()
	}
	if rs.Role == "primary" && s.wal != nil {
		now := s.clock()
		for id, fa := range s.acks.Snapshot() {
			lag, err := s.wal.SizeBetween(fa.Pos, rs.WALEnd)
			if err != nil {
				lag = 0
			}
			if rs.Followers == nil {
				rs.Followers = make(map[string]FollowerStatus)
			}
			rs.Followers[id] = FollowerStatus{
				Cursor:   fa.Pos,
				LagBytes: lag,
				AgeS:     now.Sub(fa.Seen).Seconds(),
			}
		}
	}
	return rs
}

// PromoteJSON is the POST /v1/replication/promote body.
type PromoteJSON struct {
	Role  string `json:"role"`
	Epoch uint64 `json:"epoch"`
}

func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	epoch, err := s.Promote()
	switch {
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrNotFollower), err == nil:
		// Already the primary, or just became it: idempotent success.
		writeJSON(w, http.StatusOK, PromoteJSON{Role: "primary", Epoch: epoch})
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

func (s *Server) handleReplStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.ReplicationStatus())
}

// VoteRequest asks this node to endorse Candidate's promotion to
// NewEpoch. Epoch and Cursor are the candidate's current lineage and
// applied frontier, so a voter on the same lineage can refuse a
// candidate that is behind its own history.
type VoteRequest struct {
	Candidate string  `json:"candidate"`
	NewEpoch  uint64  `json:"new_epoch"`
	Epoch     uint64  `json:"epoch"`
	Cursor    wal.Pos `json:"cursor"`
}

// VoteResponse is one voter's answer: granted or not, plus the voter's
// own identity, epoch and cursor so a denied candidate can see who beat
// it and by how much.
type VoteResponse struct {
	Granted bool    `json:"granted"`
	Voter   string  `json:"voter,omitempty"`
	Epoch   uint64  `json:"epoch"`
	Cursor  wal.Pos `json:"cursor"`
	Reason  string  `json:"reason,omitempty"`
}

// HandleVote decides one promotion-vote request. The grant rules make a
// split-brain promotion impossible from the minority side:
//
//   - a node that is itself a live primary refuses — a vote request that
//     reached it proves it is alive, and a live primary must not endorse
//     its own deposition (a dead one simply never answers);
//   - NewEpoch must beat the voter's current epoch, so votes for already
//     superseded lineages die;
//   - one vote per epoch, persisted before the grant leaves the node
//     (re-granting the same candidate is idempotent, so retries work);
//   - on the same lineage, a candidate whose applied cursor is behind
//     the voter's own is refused — promotion must go to the
//     most-caught-up member or acked history would be discarded.
func (s *Server) HandleVote(req VoteRequest) VoteResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp := VoteResponse{Voter: s.replID, Epoch: s.repl.epoch, Cursor: s.repl.cursor}
	deny := func(reason string) VoteResponse {
		resp.Reason = reason
		return resp
	}
	if s.closed {
		return deny("voter is draining")
	}
	if req.Candidate == "" {
		return deny("anonymous candidate")
	}
	if !s.repl.following {
		return deny("voter is a live primary")
	}
	if s.wal == nil {
		// A memory-only vote record is forgotten by a crash-restart, which
		// could then endorse a rival for the same epoch — the vote-once
		// guarantee only holds when the vote outlives the process.
		return deny("no durable vote store")
	}
	if req.NewEpoch <= s.repl.epoch {
		return deny(fmt.Sprintf("stale election: proposed epoch %d not past current %d", req.NewEpoch, s.repl.epoch))
	}
	if s.repl.votedEpoch >= req.NewEpoch && s.repl.votedFor != req.Candidate {
		return deny(fmt.Sprintf("already voted for %q in epoch %d", s.repl.votedFor, s.repl.votedEpoch))
	}
	if req.Epoch == s.repl.epoch && req.Cursor.Less(s.repl.cursor) {
		return deny(fmt.Sprintf("candidate cursor %v behind voter cursor %v", req.Cursor, s.repl.cursor))
	}
	if s.repl.votedEpoch < req.NewEpoch || s.repl.votedFor != req.Candidate {
		if err := s.wal.SaveVote(wal.Vote{Epoch: req.NewEpoch, Candidate: req.Candidate}); err != nil {
			// A vote that cannot be made durable must not be cast: a
			// crash could forget it and endorse a rival next boot.
			s.stats.RecordLogAppendFailure()
			return deny("vote persistence failed")
		}
		s.repl.votedEpoch, s.repl.votedFor = req.NewEpoch, req.Candidate
	}
	resp.Granted = true
	return resp
}

// handleVote serves POST /v1/replication/vote. A denied vote is still a
// 200 — denial is a protocol answer, not a transport failure.
func (s *Server) handleVote(w http.ResponseWriter, r *http.Request) {
	var req VoteRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode vote request: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, s.HandleVote(req))
}

// handleReplPull serves GET /v1/replication/pull?seg=&off=&max=&wait_ms=:
// the records past (seg, off), long-polling up to wait_ms when the caller
// is already at the frontier. A position compacted away answers 410 Gone —
// the follower must re-seed from a snapshot.
func (s *Server) handleReplPull(w http.ResponseWriter, r *http.Request) {
	if s.wal == nil {
		writeError(w, http.StatusConflict, errors.New("server: replication requires a WAL"))
		return
	}
	q := r.URL.Query()
	seg, err := queryUint(q.Get("seg"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad seg: %w", err))
		return
	}
	off, err := queryUint(q.Get("off"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad off: %w", err))
		return
	}
	maxRecords, err := queryUint(q.Get("max"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad max: %w", err))
		return
	}
	if maxRecords == 0 || maxRecords > 4096 {
		maxRecords = pullMaxRecords
	}
	waitMs, err := queryUint(q.Get("wait_ms"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad wait_ms: %w", err))
		return
	}
	if waitMs > 60_000 {
		waitMs = 60_000
	}
	pos := wal.Pos{Seg: seg, Off: int64(off)}
	// The presented cursor doubles as a durability ack: the follower only
	// advances it after the covered records are applied and persisted
	// locally, so everything before pos is replicated on that follower.
	// A zero cursor has nothing to acknowledge yet. A cursor past the
	// local frontier cannot be acknowledging local history — it is a
	// buggy or wrong-lineage caller, and recording it would forward-run
	// the ack table and falsely satisfy sync-ack quorum waits — so only
	// positions the WAL has actually written count.
	if id := q.Get("id"); id != "" && !pos.IsZero() && !s.wal.End().Less(pos) {
		s.acks.Record(id, pos)
	}
	// A zero cursor asks for the very beginning of history, not for
	// whatever is left of it: pin it to segment 1 so a compacted prefix
	// answers 410 Gone (and the follower re-seeds) instead of silently
	// serving a truncated stream the follower would diverge on.
	if pos.IsZero() {
		pos = wal.Pos{Seg: 1}
	}
	if waitMs > 0 {
		// A closing server must not strand a poller for the rest of its
		// long-poll window: wake on the request's cancellation OR the
		// server's stop signal. The quit channel bounds the goroutine to
		// this handler's lifetime.
		quit := make(chan struct{})
		defer close(quit)
		wake := make(chan struct{})
		go func() {
			defer close(wake)
			select {
			case <-r.Context().Done():
			case <-s.stop:
			case <-quit:
			}
		}()
		s.wal.Wait(wake, pos, time.Duration(waitMs)*time.Millisecond)
	}
	payloads, start, next, err := s.wal.ReadFrom(pos, int(maxRecords), pullMaxBytes)
	switch {
	case errors.Is(err, wal.ErrCompacted):
		writeError(w, http.StatusGone, err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	events, err := decodeEvents(payloads)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	end := s.wal.End()
	lag, err := s.wal.SizeBetween(next, end)
	if err != nil {
		lag = 0
	}
	writeJSON(w, http.StatusOK, ShippedBatch{
		Epoch: s.Epoch(), From: start, Next: next, End: end,
		LagBytes: lag, Events: events,
	})
}

func queryUint(v string) (uint64, error) {
	if v == "" {
		return 0, nil
	}
	return strconv.ParseUint(v, 10, 64)
}

func decodeEvents(payloads [][]byte) ([]trace.Event, error) {
	events := make([]trace.Event, 0, len(payloads))
	for _, p := range payloads {
		var ev trace.Event
		if err := json.Unmarshal(p, &ev); err != nil {
			return nil, fmt.Errorf("server: WAL record: %w", err)
		}
		events = append(events, ev)
	}
	return events, nil
}

// ReadWALEvents decodes every decision event from `from` to the current
// end of the WAL — the boot-recovery read. It returns the position after
// the last event read.
func ReadWALEvents(l *wal.Log, from wal.Pos) ([]trace.Event, wal.Pos, error) {
	var out []trace.Event
	pos := from
	for {
		payloads, _, next, err := l.ReadFrom(pos, 4096, 8<<20)
		if err != nil {
			return nil, pos, err
		}
		events, err := decodeEvents(payloads)
		if err != nil {
			return nil, pos, err
		}
		out = append(out, events...)
		if len(payloads) == 0 && next == pos {
			return out, next, nil
		}
		pos = next
	}
}
