package server_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gridbw/internal/server"
	"gridbw/internal/server/client"
)

// TestMetricszContentNegotiation pins the dual shape of /v1/metricsz:
// JSON by default (machine consumers), Prometheus text exposition when
// the scraper asks with Accept: text/plain.
func TestMetricszContentNegotiation(t *testing.T) {
	s := newTestServer(t, uniformConfig(nil))
	s.SetWatchdogState(func() string { return "follower" })
	if _, err := s.Submit(server.Submission{From: 0, To: 1, Volume: 1e9, Deadline: 3600, MaxRate: 50e6}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Default: JSON.
	resp, err := http.Get(ts.URL + "/v1/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("default content type = %q, want JSON", ct)
	}
	var m server.MetricsJSON
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Role != "primary" || m.Epoch != 1 || m.Active != 1 {
		t.Fatalf("metrics JSON = %+v, want primary epoch 1 with one active", m)
	}
	if m.WatchdogState != "follower" {
		t.Fatalf("watchdog_state = %q, want the installed hook's answer", m.WatchdogState)
	}
	if m.AdmitLatency.Count != 1 || m.AdmitLatency.MaxMs <= 0 {
		t.Fatalf("admit_latency = %+v, want one timed admission", m.AdmitLatency)
	}

	// Accept: text/plain switches to Prometheus exposition.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/metricsz", nil)
	req.Header.Set("Accept", "text/plain")
	tresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	blob, _ := io.ReadAll(tresp.Body)
	page := string(blob)
	for _, want := range []string{
		"gridbwd_replication_is_follower 0",
		"gridbwd_replication_epoch 1",
		"gridbwd_reseeds_total 0",
		`gridbwd_watchdog_state{state="follower"} 1`,
		`gridbwd_watchdog_state{state="primary"} 0`,
		`gridbwd_admit_latency_seconds{quantile="0.99"}`,
		"gridbwd_admit_latency_seconds_count 1",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("text exposition missing %q:\n%s", want, page)
		}
	}

	// The typed client helper reads the JSON shape.
	c := client.NewWithOptions(ts.URL, nil, client.Options{MaxRetries: -1})
	got, err := c.Metrics(context.Background())
	if err != nil || got.Active != 1 || got.WatchdogState != "follower" {
		t.Fatalf("client.Metrics = %+v, %v", got, err)
	}
}
