package server_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"gridbw/internal/server"
	"gridbw/internal/server/client"
	"gridbw/internal/units"
)

func randWireSubmission(rng *rand.Rand) server.WireSubmission {
	ws := server.WireSubmission{
		From:         rng.Intn(8) - 2, // includes invalid negatives: codec is shape-agnostic
		To:           rng.Intn(8) - 2,
		Volume:       units.Volume(rng.Float64() * 1e12),
		MaxRate:      units.Bandwidth(rng.Float64() * 1e9),
		NotBefore:    units.Time(rng.Float64() * 1e4),
		Deadline:     units.Time(rng.Float64() * 1e5),
		RelNotBefore: rng.Intn(2) == 0,
		RelDeadline:  rng.Intn(2) == 0,
		Durable:      rng.Intn(2) == 0,
	}
	if rng.Intn(3) > 0 {
		ws.IdempotencyKey = fmt.Sprintf("key-%d", rng.Int63())
	}
	if rng.Intn(16) == 0 {
		ws.Volume = units.Volume(math.Inf(1)) // codec must carry any f64 bit pattern
	}
	return ws
}

// TestBinaryBatchRequestRoundTrip: encode→decode is the identity on
// random submissions, byte-exact on every float.
func TestBinaryBatchRequestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(70)
		in := make([]server.WireSubmission, n)
		for i := range in {
			in[i] = randWireSubmission(rng)
		}
		blob := server.AppendBinaryBatchRequest(nil, in)
		out, err := server.DecodeBinaryBatchRequest(blob, 0)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if len(out) != len(in) {
			t.Fatalf("trial %d: %d records round-tripped to %d", trial, len(in), len(out))
		}
		for i := range in {
			if in[i] != out[i] {
				t.Fatalf("trial %d record %d: %+v != %+v", trial, i, in[i], out[i])
			}
		}
	}
}

// TestBinaryBatchResponseRoundTrip: server-side results survive the frame
// into the client-side item shape.
func TestBinaryBatchResponseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	states := []server.State{server.StateBooked, server.StateActive, server.StateExpired,
		server.StateCancelled, server.StateRejected}
	durs := []string{"", server.DurabilityReplicated, server.DurabilityDegraded}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(70)
		in := make([]server.BatchResult, n)
		for i := range in {
			if rng.Intn(4) == 0 {
				in[i].Err = fmt.Errorf("boom %d", rng.Int31())
				continue
			}
			in[i].Decision = server.Decision{
				ID:       42,
				Accepted: rng.Intn(2) == 0,
				State:    states[rng.Intn(len(states))],
				Rate:     units.Bandwidth(rng.Float64() * 1e9),
				Sigma:    units.Time(rng.Float64() * 100),
				Tau:      units.Time(rng.Float64() * 1000),
				Reason:   "because",
			}
			in[i].Durability = durs[rng.Intn(len(durs))]
		}
		blob := server.AppendBinaryBatchResponse(nil, in)
		out, err := server.DecodeBinaryBatchResponse(blob)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if len(out) != len(in) {
			t.Fatalf("trial %d: %d results round-tripped to %d", trial, len(in), len(out))
		}
		for i := range in {
			if in[i].Err != nil {
				if out[i].Error != in[i].Err.Error() || out[i].Reservation != nil {
					t.Fatalf("trial %d item %d: error round-trip %+v", trial, i, out[i])
				}
				continue
			}
			d, r := in[i].Decision, out[i].Reservation
			if r == nil {
				t.Fatalf("trial %d item %d: lost reservation", trial, i)
			}
			if r.ID != int(d.ID) || r.Accepted != d.Accepted || r.State != string(d.State) ||
				r.RateBps != float64(d.Rate) || r.SigmaS != float64(d.Sigma) ||
				r.TauS != float64(d.Tau) || r.Reason != d.Reason ||
				r.Durability != in[i].Durability {
				t.Fatalf("trial %d item %d: %+v != %+v (durability %q)", trial, i, r, d, in[i].Durability)
			}
		}
	}
}

// FuzzDecodeBinaryBatch throws arbitrary bytes at both decoders: they
// must never panic, and whatever a valid encode produced must decode.
func FuzzDecodeBinaryBatch(f *testing.F) {
	f.Add([]byte("GBB1"))
	f.Add([]byte("GBR1\x00\x00\x00\x00"))
	f.Add(server.AppendBinaryBatchRequest(nil, []server.WireSubmission{
		{From: 0, To: 1, Volume: 1e9, MaxRate: 1e8, Deadline: 100, IdempotencyKey: "k"},
	}))
	f.Add(server.AppendBinaryBatchResponse(nil, []server.BatchResult{
		{Decision: server.Decision{ID: 1, Accepted: true, State: server.StateBooked, Rate: 5e7}},
		{Err: fmt.Errorf("nope")},
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		if subs, err := server.DecodeBinaryBatchRequest(data, 1024); err == nil {
			// A successful decode must re-encode to an equally decodable frame.
			blob := server.AppendBinaryBatchRequest(nil, subs)
			if _, err := server.DecodeBinaryBatchRequest(blob, 1024); err != nil {
				t.Fatalf("re-encode of decoded frame fails: %v", err)
			}
		}
		_, _ = server.DecodeBinaryBatchResponse(data)
	})
}

// TestBinaryBatchDecidesLikeJSON drives two identical daemons with the
// same submission stream — one over the JSON batch endpoint, one over the
// binary codec — and requires identical decisions, including idempotent
// replays of repeated keys.
func TestBinaryBatchDecidesLikeJSON(t *testing.T) {
	clk := &fakeClock{}
	mk := func() (*server.Server, *client.Client) {
		cfg := uniformConfig(clk)
		cfg.MaxBatch = 128
		srv := newTestServer(t, cfg)
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		return srv, client.NewWithOptions(ts.URL, ts.Client(), client.Options{MaxRetries: -1})
	}
	_, jsonClient := mk()
	_, binClient := mk()

	rng := rand.New(rand.NewSource(3))
	ctx := context.Background()
	var prevKeys []string
	for round := 0; round < 20; round++ {
		n := 1 + rng.Intn(32)
		reqs := make([]server.SubmitRequest, n)
		for i := range reqs {
			reqs[i] = server.SubmitRequest{
				From:        rng.Intn(2),
				To:          rng.Intn(2),
				VolumeBytes: 1e9 + rng.Float64()*1e11,
				MaxRateBps:  1e7 + rng.Float64()*5e8,
				DeadlineS:   float64(clk.now().Unix()) + 50 + rng.Float64()*500,
			}
			switch rng.Intn(4) {
			case 0:
				// Human-readable spellings must decide identically too.
				reqs[i].VolumeBytes, reqs[i].Volume = 0, "10GB"
				reqs[i].MaxRateBps, reqs[i].MaxRate = 0, "100MB/s"
				reqs[i].DeadlineS, reqs[i].DeadlineIn = 0, "300s"
			case 1:
				if len(prevKeys) > 0 {
					// Replay an old key: both servers must answer from
					// their idempotency cache.
					reqs[i].IdempotencyKey = prevKeys[rng.Intn(len(prevKeys))]
				}
			case 2:
				reqs[i].IdempotencyKey = fmt.Sprintf("round-%d-item-%d", round, i)
				prevKeys = append(prevKeys, reqs[i].IdempotencyKey)
			}
		}
		jres, err := jsonClient.SubmitBatch(ctx, reqs)
		if err != nil {
			t.Fatalf("round %d: json: %v", round, err)
		}
		bres, err := binClient.SubmitBatchBinary(ctx, reqs)
		if err != nil {
			t.Fatalf("round %d: binary: %v", round, err)
		}
		for i := range jres {
			j, b := jres[i], bres[i]
			if (j.Reservation == nil) != (b.Reservation == nil) || j.Error != b.Error {
				t.Fatalf("round %d item %d: json %+v vs binary %+v", round, i, j, b)
			}
			if j.Reservation == nil {
				continue
			}
			jr, br := j.Reservation, b.Reservation
			if jr.ID != br.ID || jr.Accepted != br.Accepted || jr.State != br.State ||
				jr.RateBps != br.RateBps || jr.SigmaS != br.SigmaS || jr.TauS != br.TauS ||
				jr.Reason != br.Reason {
				t.Fatalf("round %d item %d: json %+v vs binary %+v", round, i, jr, br)
			}
		}
		clk.advance(time.Duration(rng.Int63n(int64(5 * time.Second))))
	}
}
