package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gridbw/internal/request"
	"gridbw/internal/server"
	"gridbw/internal/server/client"
	"gridbw/internal/units"
	"gridbw/internal/wal"
)

func openTestWAL(t *testing.T) *wal.Log {
	t.Helper()
	l, _, err := wal.Open(t.TempDir(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

// waitFor polls cond on real time — the pull loop runs on real goroutines
// even when the service clock is fake.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestReplicationFollowerLifecycle runs the whole warm-standby story over
// real HTTP: the primary's decisions ship to a follower, the follower is
// read-only until promoted, and promotion arms the deferred expiries.
func TestReplicationFollowerLifecycle(t *testing.T) {
	clk := &fakeClock{}

	pcfg := uniformConfig(clk)
	pcfg.WAL = openTestWAL(t)
	primary := newTestServer(t, pcfg)
	ts := httptest.NewServer(primary.Handler())
	defer ts.Close()

	// Three decisions on the primary: two stay live, one is cancelled.
	var ids []int
	for i := 0; i < 3; i++ {
		d, err := primary.Submit(server.Submission{
			From: i % 2, To: (i + 1) % 2,
			Volume: 10e9, Deadline: 400, MaxRate: 100e6,
		})
		if err != nil || !d.Accepted {
			t.Fatalf("submit %d: %v %+v", i, err, d)
		}
		ids = append(ids, int(d.ID))
	}
	if _, err := primary.Cancel(request.ID(ids[2])); err != nil {
		t.Fatal(err)
	}

	fcfg := uniformConfig(clk)
	fcfg.WAL = openTestWAL(t)
	fcfg.Follow = ts.URL
	follower, err := server.New(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	if err := follower.StartFollowing(); err != nil {
		t.Fatal(err)
	}

	waitFor(t, "follower catch-up", func() bool {
		rs := follower.ReplicationStatus()
		return rs.Applied >= 4 && rs.LagBytes == 0
	})
	st := follower.Status()
	if st.Role != "follower" || st.Active != 2 || st.Stats.Cancelled != 1 {
		t.Fatalf("follower status after catch-up: role %q, active %d, cancelled %d",
			st.Role, st.Active, st.Stats.Cancelled)
	}
	// The shipped history landed in the follower's own WAL too — a promoted
	// follower must own its lineage.
	if rs := follower.ReplicationStatus(); rs.WALRecords < 4 {
		t.Errorf("follower WAL holds %d records, want >= 4", rs.WALRecords)
	}

	// Writes are refused while following, at the API and over HTTP.
	if _, err := follower.Submit(server.Submission{From: 0, To: 1, Volume: 1e9, Deadline: 100, MaxRate: 1e9}); !errors.Is(err, server.ErrReadOnly) {
		t.Fatalf("follower Submit err = %v, want ErrReadOnly", err)
	}
	fts := httptest.NewServer(follower.Handler())
	defer fts.Close()
	fc := client.NewWithOptions(fts.URL, fts.Client(), client.Options{MaxRetries: -1})
	ctx := context.Background()
	if _, err := fc.Submit(ctx, server.SubmitRequest{From: 0, To: 1, VolumeBytes: 1e9, DeadlineS: 100, MaxRateBps: 1e9}); !client.IsReadOnly(err) {
		t.Fatalf("HTTP submit on follower: err = %v, want 403 read-only", err)
	}
	if _, err := fc.Cancel(ctx, ids[0]); !client.IsReadOnly(err) {
		t.Fatalf("HTTP cancel on follower: err = %v, want 403 read-only", err)
	}

	// Lag and role are on the metrics page.
	page, err := fc.Metricsz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"gridbwd_replication_is_follower 1",
		"gridbwd_replication_lag_bytes 0",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("follower metricsz missing %q", want)
		}
	}

	// Promote over HTTP; a second promote is an idempotent success.
	pr, err := fc.Promote(ctx)
	if err != nil || pr.Role != "primary" || pr.Epoch != 2 {
		t.Fatalf("promote: %+v, %v (want primary, epoch 2)", pr, err)
	}
	if pr2, err := fc.Promote(ctx); err != nil || pr2.Epoch != 2 {
		t.Fatalf("second promote: %+v, %v", pr2, err)
	}
	if follower.Following() {
		t.Fatal("still following after promote")
	}

	// The new primary accepts writes and expires what it inherited.
	d, err := follower.Submit(server.Submission{From: 0, To: 1, Volume: 1e9, Deadline: 100, MaxRate: 1e9})
	if err != nil || !d.Accepted {
		t.Fatalf("post-promote submit: %v %+v", err, d)
	}
	clk.advance(500 * time.Second)
	got, err := follower.Lookup(request.ID(ids[0]))
	if err != nil {
		t.Fatal(err)
	}
	if got.State != server.StateExpired {
		t.Fatalf("inherited reservation state after τ = %q, want expired", got.State)
	}
	if err := follower.VerifyInvariant(); err != nil {
		t.Fatal(err)
	}
}

// TestVoteRequiresDurableStore: a voter without a WAL would keep its vote
// only in memory, and a crash-restart could endorse a second candidate
// for the same epoch — so a WAL-less member must not vote at all.
func TestVoteRequiresDurableStore(t *testing.T) {
	cfg := uniformConfig(nil)
	cfg.Follow = "http://127.0.0.1:0"
	cfg.Epoch = 1
	s := newTestServer(t, cfg)
	resp := s.HandleVote(server.VoteRequest{Candidate: "b", NewEpoch: 2, Epoch: 1})
	if resp.Granted || !strings.Contains(resp.Reason, "durable") {
		t.Fatalf("WAL-less vote answer %+v, want denial citing the missing durable store", resp)
	}

	// The same request against a WAL-backed voter is granted.
	dcfg := uniformConfig(nil)
	dcfg.WAL = openTestWAL(t)
	dcfg.Follow = "http://127.0.0.1:0"
	dcfg.Epoch = 1
	durable := newTestServer(t, dcfg)
	if resp := durable.HandleVote(server.VoteRequest{Candidate: "b", NewEpoch: 2, Epoch: 1}); !resp.Granted {
		t.Fatalf("durable voter denied: %+v", resp)
	}
}

// TestSyncAckDurabilityOnTheWire pins down two sync-ack contracts at the
// HTTP layer. First, a pull presenting a cursor past the WAL frontier is
// not a durability ack — recording it would let one rogue (or buggy)
// caller forward-run the ack table and silently void every sync wait.
// Second, the sync wait's outcome is part of each answer: a durable
// submission that degrades at the deadline says "degraded" in its own
// result, and one whose acks arrived says "replicated" — the caller can
// tell, per request, whether the promised replication happened.
func TestSyncAckDurabilityOnTheWire(t *testing.T) {
	pcfg := uniformConfig(nil)
	pcfg.WAL = openTestWAL(t)
	pcfg.SyncMode = "one"
	pcfg.SyncTimeout = 500 * time.Millisecond
	primary := newTestServer(t, pcfg)
	ts := httptest.NewServer(primary.Handler())
	defer ts.Close()

	// A rogue caller acks a cursor far beyond anything the WAL has
	// written. If that entered the ack table, the sync wait below would
	// be satisfied instantly and falsely.
	if resp, err := ts.Client().Get(ts.URL + "/v1/replication/pull?seg=99&off=1048576&max=1&id=rogue"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	submitDurable := func() server.ReservationJSON {
		t.Helper()
		body := `{"from":0,"to":1,"volume_bytes":1e9,"deadline_s":3600,"max_rate_bps":1e9,"durable":true}`
		resp, err := ts.Client().Post(ts.URL+"/v1/requests", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rj server.ReservationJSON
		if err := json.NewDecoder(resp.Body).Decode(&rj); err != nil {
			t.Fatal(err)
		}
		if !rj.Accepted {
			t.Fatalf("durable submit not accepted: %+v", rj)
		}
		return rj
	}

	// No follower is attached: the wait must lapse, and the degradation
	// must be visible in this result, not just a global counter.
	if rj := submitDurable(); rj.Durability != server.DurabilityDegraded {
		t.Fatalf("durability with no follower = %q, want %q (rogue ack must not count)",
			rj.Durability, server.DurabilityDegraded)
	}

	// Attach a real named follower; once its pull cursor covers the next
	// decision's frame the same call must answer "replicated".
	fcfg := uniformConfig(nil)
	fcfg.WAL = openTestWAL(t)
	fcfg.Follow = ts.URL
	fcfg.ReplID = "f1"
	follower := newTestServer(t, fcfg)
	if err := follower.StartFollowing(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "follower catch-up", func() bool {
		return follower.ReplicationStatus().LagBytes == 0
	})
	if rj := submitDurable(); rj.Durability != server.DurabilityReplicated {
		t.Fatalf("durability with an acking follower = %q, want %q",
			rj.Durability, server.DurabilityReplicated)
	}

	// The batch endpoint carries the same per-result field.
	batch := `{"requests":[{"from":1,"to":0,"volume_bytes":1e9,"deadline_s":3600,"max_rate_bps":1e9,"durable":true}]}`
	resp, err := ts.Client().Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var br server.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 1 || br.Results[0].Reservation == nil {
		t.Fatalf("batch response: %+v", br)
	}
	if got := br.Results[0].Reservation.Durability; got != server.DurabilityReplicated {
		t.Fatalf("batch durability = %q, want %q", got, server.DurabilityReplicated)
	}
}

// TestReplicationFencing exercises the epoch fence directly: batches from
// a lower epoch are refused, higher epochs are adopted, and out-of-order
// cursors are diagnosed as gaps.
func TestReplicationFencing(t *testing.T) {
	cfg := uniformConfig(nil)
	cfg.Follow = "http://127.0.0.1:0" // never started; ApplyShipped is driven directly
	cfg.Epoch = 5
	s := newTestServer(t, cfg)

	err := s.ApplyShipped(server.ShippedBatch{Epoch: 3})
	var fenced *server.FencedError
	if !errors.As(err, &fenced) {
		t.Fatalf("low-epoch batch: err = %v, want FencedError", err)
	}
	if fenced.Batch != 3 || fenced.Current != 5 {
		t.Fatalf("fence = %+v", fenced)
	}

	// A higher epoch means a newer primary: adopt it.
	next := wal.Pos{Seg: 1, Off: 100}
	if err := s.ApplyShipped(server.ShippedBatch{Epoch: 7, Next: next}); err != nil {
		t.Fatal(err)
	}
	if got := s.Epoch(); got != 7 {
		t.Fatalf("epoch after adoption = %d, want 7", got)
	}

	// A batch that does not start at the cursor is a gap, not progress.
	err = s.ApplyShipped(server.ShippedBatch{Epoch: 7, From: wal.Pos{Seg: 1, Off: 50}})
	if err == nil || !strings.Contains(err.Error(), "replication gap") {
		t.Fatalf("gap batch: err = %v, want replication gap", err)
	}

	// A primary refuses shipped batches outright.
	pcfg := uniformConfig(nil)
	p := newTestServer(t, pcfg)
	if err := p.ApplyShipped(server.ShippedBatch{Epoch: 99}); !errors.Is(err, server.ErrNotFollower) {
		t.Fatalf("primary ApplyShipped err = %v, want ErrNotFollower", err)
	}
}

// TestApplyEventsIdempotent replays the same recovered history twice; the
// second pass must change nothing — that is what makes a rewound
// replication cursor (or a re-read WAL suffix) harmless.
func TestApplyEventsIdempotent(t *testing.T) {
	pcfg := uniformConfig(nil)
	pwal := openTestWAL(t)
	pcfg.WAL = pwal
	p := newTestServer(t, pcfg)
	var live server.Decision
	for i := 0; i < 2; i++ {
		d, err := p.Submit(server.Submission{From: 0, To: 1, Volume: 10e9, Deadline: 400, MaxRate: 100e6})
		if err != nil || !d.Accepted {
			t.Fatalf("submit: %v %+v", err, d)
		}
		if i == 0 {
			live = d
		} else if _, err := p.Cancel(d.ID); err != nil {
			t.Fatal(err)
		}
	}
	events, _, err := server.ReadWALEvents(pwal, wal.Pos{})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("recovered %d events, want 3", len(events))
	}

	s := newTestServer(t, uniformConfig(nil))
	for pass := 1; pass <= 2; pass++ {
		if n, err := s.ApplyEvents(events); err != nil || n != len(events) {
			t.Fatalf("pass %d: applied %d, %v", pass, n, err)
		}
		st := s.Status()
		if st.Active != 1 || st.Stats.Accepted != 2 || st.Stats.Cancelled != 1 {
			t.Fatalf("pass %d: active %d, accepted %d, cancelled %d",
				pass, st.Active, st.Stats.Accepted, st.Stats.Cancelled)
		}
		for _, pt := range st.Points {
			if pt.Used > units.Bandwidth(float64(live.Rate)*(1+units.Eps)) {
				t.Fatalf("pass %d: %s %d double-booked: used %v", pass, pt.Dir, pt.Point, pt.Used)
			}
		}
	}
	if err := s.VerifyInvariant(); err != nil {
		t.Fatal(err)
	}
}
