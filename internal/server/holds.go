package server

// Cross-shard two-phase holds. When the access-point space is partitioned
// across shard groups, a pair whose ingress and egress points live on
// different shards cannot be admitted by either one's two-sided pipeline.
// The router drives the wire form of the protocol that
// internal/distributed proved under fault injection:
//
//	RESERVE (ingress owner)  one-sided admission search over the ingress
//	                         profile only; proposes a concrete grant and
//	                         books tentative capacity under a TTL
//	RESERVE (egress owner)   authoritative one-sided check of the proposed
//	                         grant; books tentative capacity under a TTL
//	CONFIRM (both)           on dual success: the holds commit and stay
//	                         booked until τ, releasing on schedule
//	ABORT   (both)           on any failure: total rollback — unconfirmed
//	                         holds release at once, confirmed holds get a
//	                         compensating release, unknown keys leave a
//	                         refusal tombstone so a late RESERVE retry
//	                         cannot resurrect an aborted pair
//
// A hold that is never confirmed nor aborted (router crash, partition)
// rolls back when its TTL lapses — the same expiry semantics as
// distributed.Config.ReserveTimeout, so capacity cannot leak.
//
// Every transition is WAL-logged (trace.EventHold*) and replayed by
// followers and boot recovery, so holds survive failover: a promoted
// follower re-arms the TTL and release timers its primary had pending.
// All hold state is guarded by s.mu; the one-sided searches take the
// single point-shard lock under it, the same nesting direction as the
// expiry and cancel paths.

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"encoding/json"

	"gridbw/internal/des"
	"gridbw/internal/request"
	"gridbw/internal/topology"
	"gridbw/internal/trace"
	"gridbw/internal/units"
)

const (
	// defaultHoldTTL bounds an unconfirmed hold's life when the caller
	// does not say; maxHoldTTL caps what a caller may ask for, so a buggy
	// router cannot park capacity for hours.
	defaultHoldTTL = 5 * time.Second
	maxHoldTTL     = 60 * time.Second
)

// ErrHoldAborted reports a CONFIRM of a hold that already rolled back
// (TTL lapse or explicit abort) — the router must abort the peer side.
var ErrHoldAborted = errors.New("server: hold already aborted")

type holdState int

const (
	holdHeld holdState = iota + 1
	holdConfirmed
	holdAborted
)

func (st holdState) String() string {
	switch st {
	case holdHeld:
		return "held"
	case holdConfirmed:
		return "confirmed"
	case holdAborted:
		return "aborted"
	}
	return fmt.Sprintf("holdState(%d)", int(st))
}

// holdEntry is one side of a cross-shard admission, keyed by the
// router-generated hold key both sides share.
type holdEntry struct {
	key  string
	side string // trace.HoldSideIngress or trace.HoldSideEgress
	// point is the local access point booked; peer is the other side's
	// point index on its owning shard (audit and cancel routing only).
	point topology.PointID
	peer  int
	// id is the local request ID the ingress side allocated for the pair
	// (the router namespaces it into the client-visible ID); -1 on the
	// egress side.
	id request.ID
	// The proposed grant and the submission echo behind it.
	bw       units.Bandwidth
	sigma    units.Time
	tau      units.Time
	volume   units.Volume
	maxRate  units.Bandwidth
	expireAt units.Time
	state    holdState
	// booked tracks whether the one-sided capacity is currently reserved
	// in the ledger (false once released, aborted or refused).
	booked bool
	reason string // refusal reason for held=false tombstones
}

func (e *holdEntry) dir() topology.Direction {
	if e.side == trace.HoldSideIngress {
		return topology.Ingress
	}
	return topology.Egress
}

// HoldReserveJSON is the POST /v1/reserve body. The ingress side carries
// the submission (this shard runs the one-sided admission search and
// proposes the grant); the egress side carries the proposed grant for an
// authoritative one-sided check.
type HoldReserveJSON struct {
	Hold string `json:"hold"`
	Side string `json:"side"` // "in" or "eg"
	// Point is the local access point to book; PeerPoint the other
	// side's index on its owning shard.
	Point     int     `json:"point"`
	PeerPoint int     `json:"peer_point"`
	TTLS      float64 `json:"ttl_s,omitempty"`
	// RelTimes marks every time field as an offset from this shard's
	// current service clock instead of an absolute instant. Shard groups
	// keep independent service clocks, so a router spanning them converts
	// one shard's absolute window into offsets (via the NowS it answered)
	// before presenting it to the other.
	RelTimes bool `json:"rel_times,omitempty"`
	// Submission fields (ingress side).
	VolumeBytes float64 `json:"volume_bytes,omitempty"`
	MaxRateBps  float64 `json:"max_rate_bps,omitempty"`
	NotBeforeS  float64 `json:"not_before_s,omitempty"`
	DeadlineS   float64 `json:"deadline_s,omitempty"`
	// Proposed grant (egress side).
	RateBps float64 `json:"rate_bps,omitempty"`
	SigmaS  float64 `json:"sigma_s,omitempty"`
	TauS    float64 `json:"tau_s,omitempty"`
}

// HoldReserveResponseJSON is the POST /v1/reserve answer. Held=false is
// a domain refusal (200), not a transport failure.
type HoldReserveResponseJSON struct {
	Hold string `json:"hold"`
	Held bool   `json:"held"`
	// ID is the ingress-side local request ID backing the pair; -1 on
	// the egress side.
	ID      int     `json:"id"`
	RateBps float64 `json:"rate_bps,omitempty"`
	SigmaS  float64 `json:"sigma_s,omitempty"`
	TauS    float64 `json:"tau_s,omitempty"`
	// Epoch is this shard's fencing epoch at reserve time; the router
	// presents it on CONFIRM so a failover mid-hold is detected.
	Epoch uint64 `json:"epoch"`
	// NowS is this shard's service clock at answer time, so the caller
	// can convert the absolute grant window into offsets for the peer
	// shard (whose service clock is independent).
	NowS   float64 `json:"now_s"`
	Reason string  `json:"reason,omitempty"`
}

// HoldRefJSON addresses a hold on POST /v1/confirm and /v1/abort: by key,
// or (abort only) by the ingress-side local request ID a cancel resolved.
type HoldRefJSON struct {
	Hold string `json:"hold,omitempty"`
	// ID is a pointer because 0 is a valid request ID: absent and zero
	// must stay distinguishable on the wire.
	ID *int `json:"id,omitempty"`
	// Epoch, when non-zero on confirm, must match the shard's current
	// fencing epoch — a confirm aimed at a deposed lineage is refused.
	Epoch uint64 `json:"epoch,omitempty"`
}

// HoldStateJSON answers confirm and abort.
type HoldStateJSON struct {
	Hold  string `json:"hold"`
	State string `json:"state"`
	// Released reports whether this call returned booked capacity.
	Released bool `json:"released"`
	// Side/PeerPoint let an abort-by-ID caller find the other half of
	// the pair.
	Side      string `json:"side,omitempty"`
	PeerPoint int    `json:"peer_point"`
	Epoch     uint64 `json:"epoch"`
}

// HoldReserve places (or idempotently re-answers) a one-sided hold.
func (s *Server) HoldReserve(req HoldReserveJSON) (HoldReserveResponseJSON, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return HoldReserveResponseJSON{}, ErrClosed
	}
	if s.repl.following {
		return HoldReserveResponseJSON{}, ErrReadOnly
	}
	if s.wal != nil && s.wal.Poisoned() != nil {
		// A hold that cannot be WAL-logged would vanish on failover while
		// its peer side survives — exactly the half-commit the protocol
		// exists to prevent. Refuse outright.
		return HoldReserveResponseJSON{}, ErrDurabilityLost
	}
	if req.Hold == "" {
		return HoldReserveResponseJSON{}, fmt.Errorf("server: reserve without hold key")
	}
	s.advanceLocked()
	if e, ok := s.holds[req.Hold]; ok {
		// Idempotent re-delivery: answer what the first reserve decided.
		return s.holdReserveAnswerLocked(e), nil
	}
	ttl := time.Duration(req.TTLS * float64(time.Second))
	if ttl <= 0 {
		ttl = defaultHoldTTL
	}
	if ttl > maxHoldTTL {
		ttl = maxHoldTTL
	}
	now := s.sim.Now()
	expireAt := now + units.Time(ttl.Seconds())

	var e *holdEntry
	switch req.Side {
	case trace.HoldSideIngress:
		var err error
		if e, err = s.holdReserveIngressLocked(req, now, expireAt); err != nil {
			return HoldReserveResponseJSON{}, err
		}
	case trace.HoldSideEgress:
		var err error
		if e, err = s.holdReserveEgressLocked(req, now, expireAt); err != nil {
			return HoldReserveResponseJSON{}, err
		}
	default:
		return HoldReserveResponseJSON{}, fmt.Errorf("server: unknown hold side %q (want %q or %q)",
			req.Side, trace.HoldSideIngress, trace.HoldSideEgress)
	}
	s.holds[req.Hold] = e
	if e.id >= 0 {
		s.holdsByID[e.id] = req.Hold
	}
	if e.state == holdHeld {
		s.sim.At(e.expireAt, s.holdExpireEvent(req.Hold))
		s.logHoldLocked(trace.EventHoldReserve, e)
		if e.expireAt < s.loopNext {
			s.poke()
		}
	} else {
		// A refusal is remembered (like the egress refused state in
		// internal/distributed) so duplicate RESERVEs answer identically,
		// but it holds no capacity and needs no WAL record.
		s.retireHoldLocked(req.Hold)
	}
	return s.holdReserveAnswerLocked(e), nil
}

func (s *Server) holdReserveAnswerLocked(e *holdEntry) HoldReserveResponseJSON {
	resp := HoldReserveResponseJSON{
		Hold: e.key, ID: int(e.id), Epoch: s.repl.epoch,
		NowS: float64(s.sim.Now()), Reason: e.reason,
	}
	if e.state == holdHeld || e.state == holdConfirmed {
		resp.Held = true
		resp.RateBps = float64(e.bw)
		resp.SigmaS = float64(e.sigma)
		resp.TauS = float64(e.tau)
	} else if resp.Reason == "" {
		resp.Reason = "hold aborted"
	}
	return resp
}

// holdReserveIngressLocked runs the one-sided admission search: the same
// breakpoint-candidate enumeration and policy assignment as admitTx, but
// against only the ingress profile — the egress owner's authoritative
// check is the second RESERVE of the protocol.
func (s *Server) holdReserveIngressLocked(req HoldReserveJSON, now, expireAt units.Time) (*holdEntry, error) {
	if req.Point < 0 || req.Point >= s.net.NumIngress() {
		return nil, fmt.Errorf("server: ingress %d out of range [0,%d)", req.Point, s.net.NumIngress())
	}
	if req.VolumeBytes <= 0 || req.MaxRateBps <= 0 {
		return nil, fmt.Errorf("server: non-positive volume or max rate")
	}
	start := units.Time(req.NotBeforeS)
	deadline := units.Time(req.DeadlineS)
	if req.RelTimes {
		start += now
		deadline += now
	}
	if start < now {
		start = now
	}
	e := &holdEntry{
		key: req.Hold, side: trace.HoldSideIngress,
		point: topology.PointID(req.Point), peer: req.PeerPoint,
		id:       s.nextID,
		volume:   units.Volume(req.VolumeBytes),
		maxRate:  units.Bandwidth(req.MaxRateBps),
		expireAt: expireAt,
	}
	s.nextID++
	r := request.Request{
		ID: e.id, Ingress: e.point, Egress: topology.PointID(req.PeerPoint),
		Start: start, Finish: deadline, Volume: e.volume, MaxRate: e.maxRate,
	}
	if deadline <= start {
		e.state, e.reason = holdAborted, fmt.Sprintf("empty window: deadline %v not after start %v", deadline, start)
		return e, nil
	}
	if r.MinRate() > r.MaxRate*(1+units.Eps) {
		e.state, e.reason = holdAborted, fmt.Sprintf("infeasible: needs %v to move %v in window but MaxRate is %v",
			r.MinRate(), r.Volume, r.MaxRate)
		return e, nil
	}

	latest := r.Finish - r.Volume.Over(r.MaxRate)
	tx := s.ledger.LockPoint(topology.Ingress, e.point)
	defer tx.Unlock()
	candidates := []units.Time{r.Start}
	if units.ApproxEq(float64(r.MinRate()), float64(r.MaxRate)) && latest > r.Start {
		candidates = tx.Profile().AppendBreakpointTimes(candidates, r.Start, latest)
	}
	e.state, e.reason = holdAborted, "no feasible start in window"
	for i, sigma := range candidates {
		if i > 0 && sigma == candidates[i-1] {
			continue
		}
		bw, err := s.pol.Assign(r, sigma)
		if err != nil {
			e.reason = "policy: " + err.Error()
			continue
		}
		g, err := request.NewGrant(r, sigma, bw)
		if err != nil {
			e.reason = "grant: " + err.Error()
			continue
		}
		if err := tx.Profile().Reserve(g.Sigma, g.Tau, g.Bandwidth); err != nil {
			e.reason = "ingress capacity saturated"
			continue
		}
		e.bw, e.sigma, e.tau = g.Bandwidth, g.Sigma, g.Tau
		e.state, e.reason, e.booked = holdHeld, "", true
		break
	}
	return e, nil
}

// holdReserveEgressLocked checks the proposed grant against the egress
// profile and books it tentatively.
func (s *Server) holdReserveEgressLocked(req HoldReserveJSON, now, expireAt units.Time) (*holdEntry, error) {
	if req.Point < 0 || req.Point >= s.net.NumEgress() {
		return nil, fmt.Errorf("server: egress %d out of range [0,%d)", req.Point, s.net.NumEgress())
	}
	sigma := units.Time(req.SigmaS)
	tau := units.Time(req.TauS)
	if req.RelTimes {
		sigma += now
		tau += now
		if sigma < now {
			// In-flight delay pushed the proposed start into this shard's
			// past; book from now so the window stays live.
			sigma = now
		}
	}
	if req.RateBps <= 0 || tau <= sigma {
		return nil, fmt.Errorf("server: degenerate proposed grant")
	}
	e := &holdEntry{
		key: req.Hold, side: trace.HoldSideEgress,
		point: topology.PointID(req.Point), peer: req.PeerPoint,
		id:       -1,
		bw:       units.Bandwidth(req.RateBps),
		sigma:    sigma,
		tau:      tau,
		volume:   units.Volume(req.VolumeBytes),
		maxRate:  units.Bandwidth(req.MaxRateBps),
		expireAt: expireAt,
	}
	tx := s.ledger.LockPoint(topology.Egress, e.point)
	defer tx.Unlock()
	if err := tx.Profile().Reserve(e.sigma, e.tau, e.bw); err != nil {
		e.state, e.reason = holdAborted, "egress capacity saturated"
		return e, nil
	}
	e.state, e.booked = holdHeld, true
	return e, nil
}

// HoldConfirm commits a held reservation: the capacity stays booked and
// releases on schedule at τ. Confirming a confirmed hold is idempotent;
// confirming an aborted one is ErrHoldAborted (the router must abort the
// peer); an unknown key is ErrNotFound. A non-zero epoch that does not
// match the shard's fences the confirm off — the reserve was placed on a
// deposed lineage.
func (s *Server) HoldConfirm(key string, epoch uint64) (HoldStateJSON, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return HoldStateJSON{}, ErrClosed
	}
	if s.repl.following {
		return HoldStateJSON{}, ErrReadOnly
	}
	if epoch != 0 && epoch != s.repl.epoch {
		return HoldStateJSON{}, &FencedError{Batch: epoch, Current: s.repl.epoch}
	}
	s.advanceLocked()
	e, ok := s.holds[key]
	if !ok {
		return HoldStateJSON{}, ErrNotFound
	}
	switch e.state {
	case holdAborted:
		return s.holdStateLocked(e, false), ErrHoldAborted
	case holdConfirmed:
		return s.holdStateLocked(e, false), nil
	}
	e.state = holdConfirmed
	s.logHoldLocked(trace.EventHoldConfirm, e)
	s.armHoldReleaseLocked(key, e)
	return s.holdStateLocked(e, false), nil
}

// armHoldReleaseLocked schedules a confirmed hold's on-time release at τ.
func (s *Server) armHoldReleaseLocked(key string, e *holdEntry) {
	at := e.tau
	if now := s.sim.Now(); at < now {
		at = now
	}
	s.sim.At(at, s.holdReleaseEvent(key))
	if at < s.loopNext {
		s.poke()
	}
}

// HoldAbort rolls a hold back, totally: held and confirmed holds release
// their capacity (the latter is the compensating abort of a router that
// crashed between CONFIRMs, or a cross-shard cancel), aborted holds are
// a no-op, and an unknown key leaves a refusal tombstone so a late
// RESERVE retry of an already-aborted pair cannot book fresh capacity.
// Abort is never fenced and never fails on state — it must always be able
// to converge both sides.
func (s *Server) HoldAbort(key string) (HoldStateJSON, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return HoldStateJSON{}, ErrClosed
	}
	if s.repl.following {
		return HoldStateJSON{}, ErrReadOnly
	}
	s.advanceLocked()
	e, ok := s.holds[key]
	if !ok {
		e = &holdEntry{key: key, id: -1, peer: -1, state: holdAborted, reason: "aborted before reserve"}
		s.holds[key] = e
		s.retireHoldLocked(key)
		s.logHoldLocked(trace.EventHoldAbort, e)
		return s.holdStateLocked(e, false), nil
	}
	released := s.holdRollbackLocked(e, trace.EventHoldAbort)
	return s.holdStateLocked(e, released), nil
}

// HoldAbortByID aborts the hold backing ingress-side local request id —
// the cancel path: the router resolves a client cancel of a cross-shard
// reservation into an abort on both owners.
func (s *Server) HoldAbortByID(id request.ID) (HoldStateJSON, error) {
	s.mu.Lock()
	key, ok := s.holdsByID[id]
	s.mu.Unlock()
	if !ok {
		return HoldStateJSON{}, ErrNotFound
	}
	return s.HoldAbort(key)
}

// holdRollbackLocked releases whatever the hold still books and marks it
// aborted, logging the transition as kind (abort vs TTL expiry). It
// reports whether capacity was actually returned.
func (s *Server) holdRollbackLocked(e *holdEntry, kind string) bool {
	if e.state == holdAborted {
		return false
	}
	released := false
	if e.booked {
		s.ledger.HoldRelease(e.dir(), e.point, e.sigma, e.tau, e.bw)
		e.booked = false
		released = true
	}
	e.state = holdAborted
	s.logHoldLocked(kind, e)
	s.retireHoldLocked(e.key)
	return released
}

// holdExpireEvent returns the TTL rollback callback for an unconfirmed
// hold. It runs under s.mu (all sim.RunUntil call sites hold it) and
// checks state, so a confirm or abort that won the race makes it a no-op.
func (s *Server) holdExpireEvent(key string) des.Event {
	return func(*des.Simulator) {
		e, ok := s.holds[key]
		if !ok || e.state != holdHeld {
			return
		}
		s.holdRollbackLocked(e, trace.EventHoldExpire)
	}
}

// holdReleaseEvent returns the on-schedule release callback of a
// confirmed hold at τ.
func (s *Server) holdReleaseEvent(key string) des.Event {
	return func(*des.Simulator) {
		e, ok := s.holds[key]
		if !ok || e.state != holdConfirmed || !e.booked {
			return
		}
		s.ledger.HoldRelease(e.dir(), e.point, e.sigma, e.tau, e.bw)
		e.booked = false
		s.logHoldLocked(trace.EventHoldRelease, e)
		s.retireHoldLocked(key)
	}
}

// retireHoldLocked queues a resolved hold for FIFO eviction under the
// same retention bound as finished reservations, so tombstones answer
// duplicate protocol messages for a while without growing forever.
func (s *Server) retireHoldLocked(key string) {
	s.holdsDone = append(s.holdsDone, key)
	for len(s.holdsDone) > s.retention {
		evict := s.holdsDone[0]
		s.holdsDone = s.holdsDone[1:]
		if e, ok := s.holds[evict]; ok && (e.state == holdAborted || !e.booked) {
			delete(s.holds, evict)
			if e.id >= 0 {
				delete(s.holdsByID, e.id)
			}
		}
	}
}

func (s *Server) holdStateLocked(e *holdEntry, released bool) HoldStateJSON {
	return HoldStateJSON{
		Hold: e.key, State: e.state.String(), Released: released,
		Side: e.side, PeerPoint: e.peer, Epoch: s.repl.epoch,
	}
}

// HoldStats reports how many holds currently book capacity, by state —
// the metrics surface and the leak check of the chaos tests.
func (s *Server) HoldStats() (held, confirmed int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked()
	for _, e := range s.holds {
		if !e.booked {
			continue
		}
		switch e.state {
		case holdHeld:
			held++
		case holdConfirmed:
			confirmed++
		}
	}
	return held, confirmed
}

// logHoldLocked audits one hold transition. The local point index rides
// in Ingress or Egress according to the side; the peer side's index (on
// its own shard) fills the other slot so the log alone names the pair.
func (s *Server) logHoldLocked(kind string, e *holdEntry) {
	ev := trace.Event{
		At: float64(s.sim.Now()), Kind: kind, Request: int(e.id),
		Ingress: -1, Egress: -1,
		RateBps: float64(e.bw), SigmaS: float64(e.sigma), TauS: float64(e.tau),
		VolumeB: float64(e.volume), MaxRateBps: float64(e.maxRate),
		Hold: e.key, Side: e.side, Reason: e.reason,
	}
	if e.side == trace.HoldSideIngress {
		ev.Ingress, ev.Egress = int(e.point), e.peer
	} else if e.side == trace.HoldSideEgress {
		ev.Ingress, ev.Egress = e.peer, int(e.point)
	}
	if kind == trace.EventHoldReserve {
		ev.ExpireS = float64(e.expireAt)
	}
	s.appendEventLocked(ev)
}

// applyHoldEventLocked replays one shipped (or recovered) hold event —
// the hold half of applyEventLocked. Idempotent like the reservation
// cases: duplicates and history before this replica's horizon are
// tolerated. While following, no timers are armed; Promote arms them.
func (s *Server) applyHoldEventLocked(ev trace.Event) error {
	switch ev.Kind {
	case trace.EventHoldReserve:
		if _, ok := s.holds[ev.Hold]; ok {
			return nil // duplicate delivery
		}
		point, err := holdPointFromEvent(ev, s.net)
		if err != nil {
			return err
		}
		e := &holdEntry{
			key: ev.Hold, side: ev.Side, point: point, peer: holdPeerFromEvent(ev),
			id:    request.ID(ev.Request),
			bw:    units.Bandwidth(ev.RateBps),
			sigma: units.Time(ev.SigmaS), tau: units.Time(ev.TauS),
			volume: units.Volume(ev.VolumeB), maxRate: units.Bandwidth(ev.MaxRateBps),
			expireAt: units.Time(ev.ExpireS),
			state:    holdHeld,
		}
		if err := s.ledger.HoldReserve(e.dir(), e.point, e.sigma, e.tau, e.bw); err != nil {
			return fmt.Errorf("server: apply hold: %w", err)
		}
		e.booked = true
		s.holds[ev.Hold] = e
		if e.id >= 0 {
			s.holdsByID[e.id] = ev.Hold
		}
		if !s.repl.following {
			s.sim.At(maxTime(e.expireAt, s.sim.Now()), s.holdExpireEvent(ev.Hold))
			s.poke()
		}
	case trace.EventHoldConfirm:
		e, ok := s.holds[ev.Hold]
		if !ok || e.state != holdHeld {
			return nil
		}
		e.state = holdConfirmed
		if !s.repl.following {
			s.armHoldReleaseLocked(ev.Hold, e)
		}
	case trace.EventHoldAbort, trace.EventHoldExpire:
		e, ok := s.holds[ev.Hold]
		if !ok {
			e = &holdEntry{key: ev.Hold, id: -1, peer: -1, state: holdAborted}
			s.holds[ev.Hold] = e
			s.retireHoldLocked(ev.Hold)
			return nil
		}
		if e.state == holdAborted {
			return nil
		}
		if e.booked {
			s.ledger.HoldRelease(e.dir(), e.point, e.sigma, e.tau, e.bw)
			e.booked = false
		}
		e.state = holdAborted
		s.retireHoldLocked(ev.Hold)
	case trace.EventHoldRelease:
		e, ok := s.holds[ev.Hold]
		if !ok || e.state != holdConfirmed || !e.booked {
			return nil
		}
		s.ledger.HoldRelease(e.dir(), e.point, e.sigma, e.tau, e.bw)
		e.booked = false
		s.retireHoldLocked(ev.Hold)
	default:
		return fmt.Errorf("server: apply: unknown hold event kind %q", ev.Kind)
	}
	return nil
}

// holdPointFromEvent resolves the local point a hold event books, range
// checking it against this replica's platform.
func holdPointFromEvent(ev trace.Event, net *topology.Network) (topology.PointID, error) {
	switch ev.Side {
	case trace.HoldSideIngress:
		if ev.Ingress < 0 || ev.Ingress >= net.NumIngress() {
			return 0, fmt.Errorf("server: apply hold: ingress %d out of range", ev.Ingress)
		}
		return topology.PointID(ev.Ingress), nil
	case trace.HoldSideEgress:
		if ev.Egress < 0 || ev.Egress >= net.NumEgress() {
			return 0, fmt.Errorf("server: apply hold: egress %d out of range", ev.Egress)
		}
		return topology.PointID(ev.Egress), nil
	}
	return 0, fmt.Errorf("server: apply hold: unknown side %q", ev.Side)
}

func holdPeerFromEvent(ev trace.Event) int {
	if ev.Side == trace.HoldSideIngress {
		return ev.Egress
	}
	return ev.Ingress
}

func maxTime(a, b units.Time) units.Time {
	if a > b {
		return a
	}
	return b
}

// armHoldTimersLocked re-arms every pending hold timer after a promotion
// or a restore: held holds get their TTL rollback, confirmed ones their
// on-time release. Deadlines already in the past fire on the next clock
// advance.
func (s *Server) armHoldTimersLocked() int {
	now := s.sim.Now()
	armed := 0
	for key, e := range s.holds {
		if !e.booked {
			continue
		}
		switch e.state {
		case holdHeld:
			s.sim.At(maxTime(e.expireAt, now), s.holdExpireEvent(key))
			armed++
		case holdConfirmed:
			s.sim.At(maxTime(e.tau, now), s.holdReleaseEvent(key))
			armed++
		}
	}
	return armed
}

// --- HTTP surface -------------------------------------------------------

func (s *Server) handleHoldReserve(w http.ResponseWriter, r *http.Request) {
	var body HoldReserveJSON
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode reserve: %w", err))
		return
	}
	resp, err := s.HoldReserve(body)
	switch {
	case errors.Is(err, ErrClosed), errors.Is(err, ErrDurabilityLost):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrReadOnly):
		writeError(w, http.StatusForbidden, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	case resp.Held:
		writeJSON(w, http.StatusCreated, resp)
	default:
		writeJSON(w, http.StatusOK, resp)
	}
}

func (s *Server) handleHoldConfirm(w http.ResponseWriter, r *http.Request) {
	var body HoldRefJSON
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode confirm: %w", err))
		return
	}
	if body.Hold == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("confirm without hold key"))
		return
	}
	resp, err := s.HoldConfirm(body.Hold, body.Epoch)
	var fenced *FencedError
	switch {
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrReadOnly), errors.As(err, &fenced):
		writeError(w, http.StatusForbidden, err)
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrHoldAborted):
		writeJSON(w, http.StatusConflict, resp)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusOK, resp)
	}
}

func (s *Server) handleHoldAbort(w http.ResponseWriter, r *http.Request) {
	var body HoldRefJSON
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode abort: %w", err))
		return
	}
	var resp HoldStateJSON
	var err error
	switch {
	case body.Hold != "":
		resp, err = s.HoldAbort(body.Hold)
	case body.ID != nil && *body.ID >= 0:
		resp, err = s.HoldAbortByID(request.ID(*body.ID))
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("abort needs a hold key or id"))
		return
	}
	switch {
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrReadOnly):
		writeError(w, http.StatusForbidden, err)
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusOK, resp)
	}
}
