package server

// Snapshot re-seeding: the recovery path for a follower whose pull cursor
// was compacted away on the primary (410 Gone). Before this existed, 410
// meant a manual resync — stop the standby, copy state by hand, restart.
// Now the pull loop downloads GET /v1/replication/snapshot (a fresh,
// consistent snapshot carrying the fencing epoch and the exact WAL
// position it covers), rebuilds the follower's ledger through the same
// equation-(1) replay the boot ladder uses, persists the new cursor, and
// resumes pulling from the snapshot's frontier.
//
// Crash safety mirrors the boot ladder: the follower's own WAL no longer
// covers its state after a re-seed (the compacted gap is missing from
// it), so Reseed first persists the downloaded snapshot — rewritten to
// record the follower's *local* WAL frontier — as ReseedSnapshotName in
// the WAL directory, then the cursor, and only then mutates memory. A
// reboot restores that snapshot plus the local WAL suffix past it; a
// crash between persist and the in-memory swap just re-seeds from disk.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"

	"gridbw/internal/alloc"
	"gridbw/internal/request"
	"gridbw/internal/topology"
	"gridbw/internal/trace"
)

// ReseedSnapshotName is the file a re-seeded follower writes into its WAL
// directory; the boot ladder restores it (plus the local WAL suffix past
// the position it records) in preference to a full local-WAL replay,
// which would misread the compacted gap.
const ReseedSnapshotName = "reseed.snap.json"

// errPullGone marks a pull answered 410 Gone: the cursor's history was
// compacted away and only a snapshot re-seed can recover.
var errPullGone = errors.New("server: pull position compacted away")

// handleReplSnapshot serves GET /v1/replication/snapshot: a fresh,
// consistent snapshot of the whole control plane, carrying the fencing
// epoch and the exact WAL position it covers — the re-seed source for a
// follower whose pull cursor was compacted away.
func (s *Server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	snap := s.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Gridbw-Epoch", strconv.FormatUint(snap.Epoch, 10))
	w.WriteHeader(http.StatusOK)
	_ = snap.Write(w)
}

// Reseed replaces a follower's entire control-plane state with snap —
// the recovery from a compacted-away pull cursor. The snapshot's live
// reservations are replayed through a fresh sharded ledger (re-checking
// equation (1)), the idempotency cache is rebuilt from the snapshot's
// decisions, the pull cursor jumps to the WAL position the snapshot
// covers, and the fencing epoch is adopted — a snapshot from an epoch
// older than the follower's own is refused with FencedError, so a
// deposed primary cannot re-seed a follower of the new lineage backwards.
//
// Persistence happens before the in-memory swap: the snapshot (rewritten
// to record the follower's local WAL frontier) lands in the WAL directory
// as ReseedSnapshotName, then the epoch and cursor metadata. A crash at
// any instant leaves a bootable state; a persistence failure aborts the
// re-seed with the follower unchanged.
func (s *Server) Reseed(snap *Snapshot) error {
	if snap.Version < 1 || snap.Version > SnapshotVersion {
		return fmt.Errorf("server: reseed: unsupported snapshot version %d", snap.Version)
	}
	if snap.NowS < 0 || snap.NextID < 0 {
		return fmt.Errorf("server: reseed: negative clock or ID counter")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if !s.repl.following {
		return ErrNotFollower
	}
	if snap.Epoch < s.repl.epoch {
		return &FencedError{Batch: snap.Epoch, Current: s.repl.epoch}
	}
	if err := s.checkPlatformLocked(snap); err != nil {
		return err
	}

	// Phase 1 — build and validate everything fallibly, touching no
	// shared state: the fresh ledger replays every live grant through the
	// capacity checks, and the idempotency decisions are validated against
	// the snapshot's own registry.
	fresh := alloc.NewSharded(s.net)
	entries, err := liveFromSnapshot(snap, s.net, fresh)
	if err != nil {
		return fmt.Errorf("server: reseed: %w", err)
	}
	oldIdem, oldOrder := s.idem, s.idemOrder
	s.idem, s.idemOrder = make(map[string]*idemEntry), nil
	if err := s.restoreIdempotency(snap, entries); err != nil {
		s.idem, s.idemOrder = oldIdem, oldOrder
		return fmt.Errorf("server: reseed: %w", err)
	}

	// Phase 2 — persist. The local boot snapshot records the follower's
	// own WAL frontier, so a reboot replays exactly the shipped records
	// appended after this point; the cursor records the primary-side
	// position pulling resumes from.
	if s.wal != nil {
		localEnd := s.wal.End()
		local := *snap
		local.WALSeg, local.WALOff = localEnd.Seg, localEnd.Off
		path := filepath.Join(s.wal.Dir(), ReseedSnapshotName)
		if err := local.WriteFile(path); err != nil {
			s.idem, s.idemOrder = oldIdem, oldOrder
			return fmt.Errorf("server: reseed: persist snapshot: %w", err)
		}
		if snap.Epoch > s.repl.epoch {
			if err := s.wal.SaveEpoch(snap.Epoch); err != nil {
				s.stats.RecordLogAppendFailure()
			}
		}
		if err := s.wal.SaveCursor(snap.WALPos()); err != nil {
			s.stats.RecordLogAppendFailure()
		}
		// The pre-reseed local segments are covered by the persisted
		// snapshot; dropping whole old segments bounds the disk without
		// touching the suffix a reboot still replays.
		if _, err := s.wal.CompactBefore(localEnd); err != nil {
			s.stats.RecordLogAppendFailure()
		}
	}

	// Phase 3 — swap, infallibly. Followers never arm expiry timers, but
	// cancel defensively in case this state was restored by an older boot
	// path that did.
	for _, e := range s.resv {
		if e.state == StateActive {
			s.sim.Cancel(e.expire)
		}
	}
	s.ledger = fresh
	s.resv = entries
	s.finished = nil
	if request.ID(snap.NextID) > s.nextID {
		s.nextID = request.ID(snap.NextID)
	}
	localFailures, reseeds := s.stats.LogAppendFailures, s.stats.Reseeds
	admitLat := s.stats.AdmitLatency // process-local, never shipped in snapshots
	s.stats = snap.Counters
	s.stats.LogAppendFailures += localFailures
	s.stats.Reseeds = reseeds
	s.stats.AdmitLatency = admitLat
	s.stats.RecordReseed()
	if snap.Epoch > s.repl.epoch {
		s.repl.epoch = snap.Epoch
	}
	s.repl.cursor = snap.WALPos()
	s.repl.lagBytes = 0
	s.repl.lastPull = s.clock()
	s.reanchorLocked(snap.NowS)
	s.appendEventLocked(trace.Event{
		At: snap.NowS, Kind: trace.EventRestore, Request: -1,
		Reason: fmt.Sprintf("reseed: epoch %d, %d live reservations, cursor %v",
			s.repl.epoch, len(snap.Live), s.repl.cursor),
	})
	return nil
}

// checkPlatformLocked verifies snap describes the same access points this
// server was built for — re-seeding across platforms would replay grants
// against capacities they were never admitted under.
func (s *Server) checkPlatformLocked(snap *Snapshot) error {
	if len(snap.IngressBps) != s.net.NumIngress() || len(snap.EgressBps) != s.net.NumEgress() {
		return fmt.Errorf("server: reseed: snapshot platform %dx%d, server %dx%d",
			len(snap.IngressBps), len(snap.EgressBps), s.net.NumIngress(), s.net.NumEgress())
	}
	for i, c := range snap.IngressBps {
		if c != float64(s.net.Bin(topology.PointID(i))) {
			return fmt.Errorf("server: reseed: ingress %d capacity %g differs from server's %g",
				i, c, float64(s.net.Bin(topology.PointID(i))))
		}
	}
	for e, c := range snap.EgressBps {
		if c != float64(s.net.Bout(topology.PointID(e))) {
			return fmt.Errorf("server: reseed: egress %d capacity %g differs from server's %g",
				e, c, float64(s.net.Bout(topology.PointID(e))))
		}
	}
	if snap.Policy != "" && snap.Policy != s.policyName {
		return fmt.Errorf("server: reseed: snapshot policy %q differs from server's %q", snap.Policy, s.policyName)
	}
	return nil
}

// reseedFromSource downloads the primary's snapshot and re-seeds this
// follower from it — the pull loop's answer to 410 Gone. stop aborts the
// download early.
func (s *Server) reseedFromSource(hc *http.Client, source string, stop <-chan struct{}) error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		select {
		case <-stop:
			cancel()
		case <-ctx.Done():
		}
	}()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, source+"/v1/replication/snapshot", nil)
	if err != nil {
		return fmt.Errorf("server: reseed: %w", err)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return fmt.Errorf("server: reseed: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server: reseed: snapshot endpoint answered HTTP %d", resp.StatusCode)
	}
	snap, err := ReadSnapshot(resp.Body)
	if err != nil {
		return fmt.Errorf("server: reseed: %w", err)
	}
	return s.Reseed(snap)
}
