package server_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"gridbw/internal/faults"
	"gridbw/internal/server"
	"gridbw/internal/wal"
)

// Snapshot writes are the one place a disk fault could corrupt recovery
// *ahead* of the WAL: the boot ladder prefers *.snap.json, so a
// half-written snapshot would beat an intact log. These tests tear the
// write at the rename and dir-fsync steps and demand the previous
// snapshot stays the one recovery sees.

func snapshotOf(t *testing.T, accepts int) *server.Snapshot {
	t.Helper()
	s := newTestServer(t, uniformConfig(nil))
	for i := 0; i < accepts; i++ {
		if d, err := s.Submit(submission(i, false)); err != nil || !d.Accepted {
			t.Fatalf("submit %d: %v %+v", i, err, d)
		}
	}
	return s.Snapshot()
}

func readSnapFile(t *testing.T, path string) *server.Snapshot {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open snapshot: %v", err)
	}
	defer f.Close()
	snap, err := server.ReadSnapshot(f)
	if err != nil {
		t.Fatalf("parse snapshot: %v", err)
	}
	return snap
}

func TestSnapshotRenameFaultKeepsOldSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap.json")

	old := snapshotOf(t, 2)
	if err := old.WriteFile(path); err != nil {
		t.Fatalf("baseline write: %v", err)
	}

	dfs := faults.NewDiskFS(nil, faults.DiskConfig{Seed: 1})
	dfs.FailNextRenames(1)
	next := snapshotOf(t, 4)
	err := next.WriteFileFS(dfs, path)
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("torn write: %v, want injected fault", err)
	}

	// The previous snapshot is untouched and no temp debris survives to
	// confuse a later boot.
	got := readSnapFile(t, path)
	if len(got.Live) != len(old.Live) {
		t.Fatalf("snapshot has %d reservations after torn write, want the old %d",
			len(got.Live), len(old.Live))
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left behind: %v", err)
	}

	// A later healthy write goes through on the same fsys.
	if err := next.WriteFileFS(dfs, path); err != nil {
		t.Fatalf("write after fault cleared: %v", err)
	}
	if got := readSnapFile(t, path); len(got.Live) != len(next.Live) {
		t.Fatalf("recovered write lost reservations: %d", len(got.Live))
	}
}

func TestSnapshotDirSyncFaultReportsNotTaken(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap.json")
	old := snapshotOf(t, 2)
	if err := old.WriteFile(path); err != nil {
		t.Fatalf("baseline write: %v", err)
	}

	dfs := faults.NewDiskFS(nil, faults.DiskConfig{Seed: 1})
	dfs.FailNextDirSyncs(1)
	next := snapshotOf(t, 4)
	if err := next.WriteFileFS(dfs, path); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("dir-fsync fault: %v, want injected fault", err)
	}

	// The rename happened, so the file may be old or new — but whichever
	// it is must parse, and the caller got an error, so it must not have
	// compacted the WAL past either state.
	got := readSnapFile(t, path)
	if n := len(got.Live); n != len(old.Live) && n != len(next.Live) {
		t.Fatalf("snapshot after dir-fsync fault holds %d reservations, want %d or %d",
			n, len(old.Live), len(next.Live))
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

func TestSnapshotCreateFaultLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap.json")
	dfs := faults.NewDiskFS(nil, faults.DiskConfig{Seed: 1})
	dfs.FailNextENOSPC(1)
	snap := snapshotOf(t, 2)
	// ENOSPC fires on the temp file's first write; with no previous
	// snapshot the boot ladder must find a clean directory, not a stub.
	if err := snap.WriteFileFS(dfs, path); err == nil {
		t.Fatal("torn first write reported success")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("snapshot path exists after torn first write: %v", err)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left behind: %v", err)
	}
	// wal.OSFS is the production path; prove the same write succeeds there.
	if err := snap.WriteFileFS(wal.OSFS{}, path); err != nil {
		t.Fatalf("healthy write: %v", err)
	}
}
