package server_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gridbw/internal/server"
	"gridbw/internal/trace"
	"gridbw/internal/units"
)

// TestIdempotentSubmit: the same idempotency key returns the original
// decision without booking twice; a different key books again.
func TestIdempotentSubmit(t *testing.T) {
	clk := &fakeClock{}
	s := newTestServer(t, uniformConfig(clk))
	sub := server.Submission{
		From: 0, To: 0, Volume: 100 * units.GB, Deadline: 400,
		MaxRate: 1 * units.GBps, IdempotencyKey: "k1",
	}
	d1, err := s.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := s.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	if d2.ID != d1.ID || !d2.Accepted {
		t.Fatalf("retry got %+v, want original %+v", d2, d1)
	}
	st := s.Status()
	if st.Stats.Accepted != 1 || st.Stats.Submitted != 1 {
		t.Errorf("accepted/submitted = %d/%d, want 1/1", st.Stats.Accepted, st.Stats.Submitted)
	}
	if st.Stats.IdempotentHits != 1 {
		t.Errorf("idempotent hits = %d, want 1", st.Stats.IdempotentHits)
	}
	sub.IdempotencyKey = "k2"
	d3, err := s.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	if d3.ID == d1.ID {
		t.Error("fresh key reused the old reservation")
	}
	if err := s.VerifyInvariant(); err != nil {
		t.Error(err)
	}
}

// TestIdempotentSubmitCachesRejections: a rejected submission retried
// under the same key answers the same rejection without re-running (and
// re-counting) admission.
func TestIdempotentSubmitCachesRejections(t *testing.T) {
	s := newTestServer(t, uniformConfig(nil))
	sub := server.Submission{
		From: 0, To: 0, Volume: 100 * units.GB, Deadline: 1,
		MaxRate: 1 * units.MBps, IdempotencyKey: "doomed",
	}
	d1, err := s.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Accepted {
		t.Fatal("infeasible submission accepted")
	}
	d2, err := s.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Accepted || d2.Reason != d1.Reason {
		t.Errorf("retry answered %+v, want cached rejection %+v", d2, d1)
	}
	if st := s.Status(); st.Stats.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", st.Stats.Rejected)
	}
}

// TestLoadShedding: with one in-flight slot occupied by a submission
// whose body never finishes arriving, the next submission is shed with
// 429 and a Retry-After hint, while read endpoints keep answering.
func TestLoadShedding(t *testing.T) {
	clk := &fakeClock{}
	cfg := uniformConfig(clk)
	cfg.MaxInFlight = 1
	cfg.RetryAfter = 3 * time.Second
	s := newTestServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the only slot: the handler blocks reading this body.
	pr, pw := io.Pipe()
	defer pw.Close()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/requests", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.InFlight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("blocked submission never took the in-flight slot")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := ts.Client().Post(ts.URL+"/v1/requests", "application/json",
		strings.NewReader(`{"from":0,"to":0,"volume_bytes":1,"max_rate_bps":1,"deadline_s":10}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", ra)
	}

	// Reads are not shed: healthz still answers and reports the pressure.
	hresp, err := ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health server.HealthJSON
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || health.Status != "ok" {
		t.Errorf("healthz = %d %q, want 200 ok", hresp.StatusCode, health.Status)
	}
	if health.InFlight != 1 || health.MaxInFlight != 1 {
		t.Errorf("in_flight = %d/%d, want 1/1", health.InFlight, health.MaxInFlight)
	}
	if health.Shed != 1 {
		t.Errorf("shed_total = %d, want 1", health.Shed)
	}

	// Release the blocked submission; the slot must come back.
	pw.CloseWithError(io.ErrClosedPipe)
	<-errc
	deadline = time.Now().Add(5 * time.Second)
	for s.InFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight slot never released")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRecovererTurnsPanicsInto500: a panicking handler yields a 500 and
// a counted, audited panic — not a dropped connection.
func TestRecovererTurnsPanicsInto500(t *testing.T) {
	var log bytes.Buffer
	clk := &fakeClock{}
	cfg := uniformConfig(clk)
	cfg.Decisions = trace.NewDecisionLog(&log)
	s := newTestServer(t, cfg)

	mux := http.NewServeMux()
	mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) { panic("kaboom") })
	ts := httptest.NewServer(s.Recoverer(mux))
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if st := s.Status(); st.Stats.Panics != 1 {
		t.Errorf("panics = %d, want 1", st.Stats.Panics)
	}
	events, err := trace.ReadDecisions(&log)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Kind != trace.EventPanic ||
		!strings.Contains(events[0].Reason, "kaboom") {
		t.Errorf("decision log = %+v, want one panic event naming kaboom", events)
	}
}

// TestHealthzDraining: the readiness probe flips to 503 once the server
// closes.
func TestHealthzDraining(t *testing.T) {
	s := newTestServer(t, uniformConfig(nil))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("open server healthz = %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	resp, err = ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health server.HealthJSON
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || health.Status != "draining" {
		t.Errorf("closed server healthz = %d %q, want 503 draining", resp.StatusCode, health.Status)
	}
}

// TestIdempotencyHeaderSpellings: the Idempotency-Key header works, and
// a header/body disagreement is a 400.
func TestIdempotencyHeaderSpellings(t *testing.T) {
	s := newTestServer(t, uniformConfig(nil))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(hdr, body string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/requests",
			strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if hdr != "" {
			req.Header.Set("Idempotency-Key", hdr)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	good := `{"from":0,"to":0,"volume_bytes":1e9,"max_rate_bps":1e9,"deadline_s":100}`
	if resp := post("hk", good); resp.StatusCode != http.StatusCreated {
		t.Fatalf("header-keyed submit = %d", resp.StatusCode)
	}
	var first server.ReservationJSON
	resp := post("hk", good)
	if err := json.NewDecoder(resp.Body).Decode(&first); err != nil {
		t.Fatal(err)
	}
	if st := s.Status(); st.Stats.IdempotentHits != 1 {
		t.Errorf("idempotent hits = %d, want 1 from header retry", st.Stats.IdempotentHits)
	}
	conflict := `{"from":0,"to":0,"volume_bytes":1e9,"max_rate_bps":1e9,"deadline_s":100,"idempotency_key":"other"}`
	if resp := post("hk", conflict); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("disagreeing keys = %d, want 400", resp.StatusCode)
	}
}

// TestSnapshotCarriesIdempotencyKeys: a restored daemon still refuses to
// double-book a retry that crosses the restart.
func TestSnapshotCarriesIdempotencyKeys(t *testing.T) {
	clk := &fakeClock{}
	s := newTestServer(t, uniformConfig(clk))
	sub := server.Submission{
		From: 0, To: 1, Volume: 100 * units.GB, Deadline: 400,
		MaxRate: 1 * units.GBps, IdempotencyKey: "restart-safe",
	}
	d1, err := s.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	s.Close()

	snap, err := server.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.IdempotencyDecisions) != 1 {
		t.Fatalf("snapshot idempotency decisions = %v", snap.IdempotencyDecisions)
	}
	if sd := snap.IdempotencyDecisions["restart-safe"]; sd.ID != int(d1.ID) || !sd.Accepted {
		t.Fatalf("snapshot idempotency decision = %+v, want accepted id %d", sd, d1.ID)
	}
	s2, err := server.NewFromSnapshot(snap, server.Config{Clock: clk.now})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	d2, err := s2.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	if d2.ID != d1.ID {
		t.Errorf("post-restart retry booked %d, want original %d", d2.ID, d1.ID)
	}
	if st := s2.Status(); st.Stats.Accepted != 1 {
		t.Errorf("accepted = %d after restart retry, want 1", st.Stats.Accepted)
	}
}

// TestNewFromDecisions rebuilds the daemon from its audit log alone and
// checks the result against the live server it mirrors.
func TestNewFromDecisions(t *testing.T) {
	var log bytes.Buffer
	clk := &fakeClock{}
	cfg := uniformConfig(clk)
	cfg.Decisions = trace.NewDecisionLog(&log)
	s := newTestServer(t, cfg)

	subs := []server.Submission{
		{From: 0, To: 1, Volume: 100 * units.GB, Deadline: 400, MaxRate: 1 * units.GBps},
		{From: 1, To: 0, Volume: 50 * units.GB, Deadline: 200, MaxRate: 500 * units.MBps},
		{From: 0, To: 0, Volume: 10 * units.GB, Deadline: 5, MaxRate: 1 * units.MBps}, // infeasible
	}
	var ids []int
	for _, sub := range subs {
		d, err := s.Submit(sub)
		if err != nil {
			t.Fatal(err)
		}
		if d.Accepted {
			ids = append(ids, int(d.ID))
		}
	}
	if len(ids) != 2 {
		t.Fatalf("accepted %d, want 2", len(ids))
	}
	if _, err := s.Cancel(2); err == nil {
		t.Fatal("cancel of rejected id succeeded")
	}
	if _, err := s.Cancel(1); err != nil {
		t.Fatal(err)
	}

	events, err := trace.ReadDecisions(bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := server.NewFromDecisions(events, server.Config{
		Ingress: []units.Bandwidth{1 * units.GBps, 1 * units.GBps},
		Egress:  []units.Bandwidth{1 * units.GBps, 1 * units.GBps},
		Clock:   clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	if err := s2.VerifyInvariant(); err != nil {
		t.Error(err)
	}
	want := s.LiveReservations()
	got := s2.LiveReservations()
	if len(got) != len(want) || len(got) != 1 {
		t.Fatalf("live after replay = %d, want %d", len(got), len(want))
	}
	if got[0].Req.ID != want[0].Req.ID || got[0].Grant != want[0].Grant {
		t.Errorf("replayed reservation %+v, want %+v", got[0], want[0])
	}
	st, st2 := s.Status(), s2.Status()
	if st2.Stats.Accepted != st.Stats.Accepted || st2.Stats.Rejected != st.Stats.Rejected ||
		st2.Stats.Cancelled != st.Stats.Cancelled {
		t.Errorf("replayed counters %+v, want %+v", st2.Stats, st.Stats)
	}
	// IDs keep flowing after the replayed ones.
	d, err := s2.Submit(server.Submission{
		From: 0, To: 0, Volume: 1 * units.GB, Deadline: 100, MaxRate: 1 * units.GBps,
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(d.ID) < len(subs) {
		t.Errorf("post-replay ID %d collides with replayed range", d.ID)
	}
}

// TestNewFromDecisionsExpiresPassedWindows: a reservation whose τ(r)
// passed before the log ends — the daemon died before writing the expire
// event — comes back expired, not active.
func TestNewFromDecisionsExpiresPassedWindows(t *testing.T) {
	events := []trace.Event{
		{At: 0, Kind: trace.EventAccept, Request: 0, Ingress: 0, Egress: 0,
			RateBps: 1e9, SigmaS: 0, TauS: 10, VolumeB: 1e10, MaxRateBps: 1e9},
		// A later rejection proves the clock reached t=50 with no expire
		// event for request 0 ever logged.
		{At: 50, Kind: trace.EventReject, Request: 1, Ingress: 0, Egress: 0,
			Reason: "capacity saturated"},
	}
	clk := &fakeClock{}
	s, err := server.NewFromDecisions(events, server.Config{
		Ingress: []units.Bandwidth{1 * units.GBps},
		Egress:  []units.Bandwidth{1 * units.GBps},
		Clock:   clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if live := s.LiveReservations(); len(live) != 0 {
		t.Errorf("live = %d, want 0", len(live))
	}
	st := s.Status()
	if st.Stats.Accepted != 1 || st.Stats.Expired != 1 {
		t.Errorf("counters = %+v, want accepted 1 expired 1", st.Stats)
	}
}
