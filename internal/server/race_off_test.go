//go:build !race

package server_test

// See race_on_test.go.
const raceEnabled = false
