package server

import (
	"fmt"
	"slices"
	"time"

	"gridbw/internal/core"
	"gridbw/internal/request"
	"gridbw/internal/topology"
	"gridbw/internal/trace"
	"gridbw/internal/units"
)

// NewFromDecisions rebuilds a server from its decision audit log — the
// disaster-recovery path for a corrupt or missing snapshot. Unlike
// NewFromSnapshot, the log does not carry the platform, so cfg must
// supply Ingress/Egress/Policy (the normal New configuration).
//
// The log is replayed in order: accepts book capacity, cancels and
// expires release it, and the service clock resumes at the last event's
// timestamp. Reservations whose τ(r) has passed by then are retired as
// expired even without an explicit expire event (the daemon may have
// died before writing one). Survivors go through the ledger's own
// constraint checks, so a tampered log cannot admit an infeasible state.
func NewFromDecisions(events []trace.Event, cfg Config) (*Server, error) {
	net, err := topology.New(topology.Config{Ingress: cfg.Ingress, Egress: cfg.Egress})
	if err != nil {
		return nil, fmt.Errorf("server: replay: %w", err)
	}
	name := cfg.Policy
	if name == "" {
		name = "minbw"
	}
	pol, err := core.ParsePolicy(name)
	if err != nil {
		return nil, fmt.Errorf("server: replay: %w", err)
	}
	s := newServer(cfg, net, pol, name)

	type liveGrant struct {
		r request.Request
		g request.Grant
	}
	live := make(map[request.ID]liveGrant)
	var now float64
	var nextID int
	for i, ev := range events {
		if ev.At < now {
			return nil, fmt.Errorf("server: replay: event %d goes back in time (%g < %g)", i, ev.At, now)
		}
		now = ev.At
		if ev.Request >= nextID {
			nextID = ev.Request + 1
		}
		switch ev.Kind {
		case trace.EventAccept:
			id := request.ID(ev.Request)
			if _, dup := live[id]; dup {
				return nil, fmt.Errorf("server: replay: reservation %d accepted twice", ev.Request)
			}
			r, g, err := grantFromEvent(ev, net)
			if err != nil {
				return nil, fmt.Errorf("server: replay: %w", err)
			}
			live[id] = liveGrant{r: r, g: g}
			s.stats.RecordAccept(g.Bandwidth, r.Volume)
		case trace.EventReject:
			s.stats.RecordReject()
		case trace.EventCancel:
			if _, ok := live[request.ID(ev.Request)]; !ok {
				return nil, fmt.Errorf("server: replay: cancel of unknown reservation %d", ev.Request)
			}
			delete(live, request.ID(ev.Request))
			s.stats.RecordCancel()
		case trace.EventExpire:
			if _, ok := live[request.ID(ev.Request)]; !ok {
				return nil, fmt.Errorf("server: replay: expire of unknown reservation %d", ev.Request)
			}
			delete(live, request.ID(ev.Request))
			s.stats.RecordExpire()
		case trace.EventRestore, trace.EventPanic, trace.EventPromote:
			// Markers only; they carry no reservation state.
		default:
			return nil, fmt.Errorf("server: replay: unknown event kind %q", ev.Kind)
		}
	}

	s.epoch = s.clock().Add(-time.Duration(now * float64(time.Second)))
	s.nextID = request.ID(nextID)
	ids := make([]request.ID, 0, len(live))
	for id := range live {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		lg := live[id]
		if float64(lg.g.Tau) <= now {
			// The window passed while the daemon was down; the expire
			// event just never made it to the log.
			s.stats.RecordExpire()
			continue
		}
		if err := s.ledger.Reserve(lg.r, lg.g); err != nil {
			return nil, fmt.Errorf("server: replay: %w", err)
		}
		e := &entry{req: lg.r, grant: lg.g, state: StateActive}
		e.expire = s.sim.At(lg.g.Tau, s.expireEvent(id))
		s.resv[id] = e
	}
	if err := s.initRepl(cfg, 0); err != nil {
		return nil, err
	}
	s.appendEventLocked(trace.Event{
		At: now, Kind: trace.EventRestore, Request: -1,
		Reason: fmt.Sprintf("replayed %d events, %d reservations live", len(events), len(s.resv)),
	})
	go s.loop()
	return s, nil
}

// grantFromEvent reconstructs the request and grant an accept event
// recorded, re-deriving the submission echo older logs omitted (the
// daemon's grants always satisfy vol = bw·(τ−σ) exactly).
func grantFromEvent(ev trace.Event, net *topology.Network) (request.Request, request.Grant, error) {
	id := request.ID(ev.Request)
	g := request.Grant{
		Request:   id,
		Bandwidth: units.Bandwidth(ev.RateBps),
		Sigma:     units.Time(ev.SigmaS),
		Tau:       units.Time(ev.TauS),
	}
	if g.Tau <= g.Sigma || g.Bandwidth <= 0 {
		return request.Request{}, g, fmt.Errorf("reservation %d has degenerate grant", ev.Request)
	}
	vol := units.Volume(ev.VolumeB)
	maxRate := units.Bandwidth(ev.MaxRateBps)
	if vol <= 0 {
		vol = g.Bandwidth.For(g.Tau - g.Sigma)
		maxRate = g.Bandwidth
	}
	r := request.Request{
		ID:      id,
		Ingress: topology.PointID(ev.Ingress), Egress: topology.PointID(ev.Egress),
		Start: g.Sigma, Finish: g.Tau,
		Volume: vol, MaxRate: maxRate,
	}
	if int(r.Ingress) >= net.NumIngress() || int(r.Egress) >= net.NumEgress() ||
		r.Ingress < 0 || r.Egress < 0 {
		return r, g, fmt.Errorf("reservation %d routed through unknown point", ev.Request)
	}
	return r, g, nil
}
