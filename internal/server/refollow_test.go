package server_test

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"gridbw/internal/server"
)

// TestFollowerRediscoversPrimaryAfterFailover is the regression test for
// the post-election orphan: a three-node group loses its primary, one
// follower is promoted, and the *other* follower — still pointed at the
// dead endpoint — must rediscover the epoch-dominant primary from its
// configured peer list, re-point its pull cursor, and resume applying the
// new primary's decisions.
func TestFollowerRediscoversPrimaryAfterFailover(t *testing.T) {
	clk := &fakeClock{}

	// The follower servers need their own base URLs in every peer list
	// before they exist, so each httptest server delegates through a
	// late-bound pointer. No request arrives before the pointer is set.
	var srvP, srvA, srvB *server.Server
	tsP := newDelegatingServer(t, &srvP)
	tsA := newDelegatingServer(t, &srvA)
	tsB := newDelegatingServer(t, &srvB)
	peers := []string{tsP.URL, tsA.URL, tsB.URL}

	pcfg := uniformConfig(clk)
	pcfg.WAL = openTestWAL(t)
	pcfg.Peers = peers
	srvP = newTestServer(t, pcfg)

	newFollower := func(name string) *server.Server {
		cfg := uniformConfig(clk)
		cfg.WAL = openTestWAL(t)
		cfg.Follow = tsP.URL
		cfg.Peers = peers
		s := newTestServer(t, cfg)
		if err := s.StartFollowing(); err != nil {
			t.Fatalf("%s StartFollowing: %v", name, err)
		}
		return s
	}
	srvA = newFollower("A")
	srvB = newFollower("B")

	// Seed history so both followers share the primary's lineage.
	d, err := srvP.Submit(server.Submission{From: 0, To: 1, Volume: 10e9, Deadline: 400, MaxRate: 100e6})
	if err != nil || !d.Accepted {
		t.Fatalf("seed submit: %v %+v", err, d)
	}
	for name, s := range map[string]*server.Server{"A": srvA, "B": srvB} {
		s := s
		waitFor(t, name+" catch-up", func() bool {
			rs := s.ReplicationStatus()
			return rs.Applied >= 1 && rs.LagBytes == 0
		})
	}

	// Kill the primary: endpoint down, process gone.
	tsP.Close()
	srvP.Close()

	// Promote A directly (the watchdog path is exercised elsewhere).
	if _, err := srvA.Promote(); err != nil {
		t.Fatalf("promote A: %v", err)
	}

	// B must converge on A without any nudge: its pull loop sees repeated
	// transport failures against the dead endpoint, probes the peer list,
	// and re-points at the highest-epoch live primary.
	waitFor(t, "B re-pointing at A", func() bool {
		rs := srvB.ReplicationStatus()
		return rs.Role == "follower" && rs.Source == tsA.URL
	})

	// New decisions on A reach B through the re-pointed stream.
	d2, err := srvA.Submit(server.Submission{From: 1, To: 0, Volume: 5e9, Deadline: 400, MaxRate: 100e6})
	if err != nil || !d2.Accepted {
		t.Fatalf("post-failover submit on A: %v %+v", err, d2)
	}
	waitFor(t, "B applying A's decision", func() bool {
		rs := srvB.ReplicationStatus()
		if rs.Epoch < 2 {
			return false
		}
		_, err := srvB.Lookup(d2.ID)
		return err == nil
	})
	if st := srvB.Status(); st.Active != 2 {
		t.Fatalf("B active after failover = %d, want 2", st.Active)
	}
}

// newDelegatingServer starts an httptest server whose handler resolves the
// target *server.Server at request time, so the URL exists before the
// server it fronts.
func newDelegatingServer(t *testing.T, target **server.Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s := *target
		if s == nil {
			http.Error(w, "not up yet", http.StatusServiceUnavailable)
			return
		}
		s.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts
}
