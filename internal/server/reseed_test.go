package server_test

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gridbw/internal/request"
	"gridbw/internal/server"
	"gridbw/internal/units"
	"gridbw/internal/wal"
)

// openSmallWAL opens a WAL with tiny segments so a handful of events
// rotates it and compaction has whole segments to drop.
func openSmallWAL(t *testing.T) *wal.Log {
	t.Helper()
	l, _, err := wal.Open(t.TempDir(), wal.Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

// TestReplPullUnblocksOnClose pins the shutdown deadline on the long-poll:
// a closing server wakes every parked poller immediately instead of
// stranding it for the rest of its wait_ms window.
func TestReplPullUnblocksOnClose(t *testing.T) {
	cfg := uniformConfig(nil)
	cfg.WAL = openTestWAL(t)
	s := newTestServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Park a poller at the WAL frontier with a 30s window.
	done := make(chan error, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/replication/pull?wait_ms=30000")
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the poller park

	start := time.Now()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("parked pull failed outright: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close left the long-poller parked")
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("poller released %v after Close, want immediate", waited)
	}
}

// TestReplPullCompactionRace runs a follower's pull loop against a primary
// whose WAL is being compacted concurrently with new decisions. Whatever
// the interleaving — clean continue past the compaction, or 410 and a
// snapshot re-seed — the follower must converge on the primary's exact
// state; a torn stream would surface as a divergent ledger or a broken
// invariant.
func TestReplPullCompactionRace(t *testing.T) {
	pcfg := uniformConfig(nil)
	pwal := openSmallWAL(t)
	pcfg.WAL = pwal
	primary := newTestServer(t, pcfg)
	ts := httptest.NewServer(primary.Handler())
	defer ts.Close()

	fcfg := uniformConfig(nil)
	fcfg.WAL = openTestWAL(t)
	fcfg.Follow = ts.URL
	follower := newTestServer(t, fcfg)
	if err := follower.StartFollowing(); err != nil {
		t.Fatal(err)
	}

	// Load and compaction interleave: every few decisions the primary
	// drops all complete segments, racing the follower's in-flight pulls.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 24; i++ {
			if i%4 == 3 {
				if _, err := pwal.CompactBefore(pwal.End()); err != nil {
					t.Errorf("compact %d: %v", i, err)
					return
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	for i := 0; i < 24; i++ {
		d, err := primary.Submit(server.Submission{
			From: i % 2, To: (i + 1) % 2,
			Volume: 1e9, Deadline: 3600, MaxRate: 20e6,
		})
		if err != nil || !d.Accepted {
			t.Fatalf("submit %d: %v %+v", i, err, d)
		}
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()

	waitFor(t, "follower convergence", func() bool {
		fs, ps := follower.Status(), primary.Status()
		return fs.Active == ps.Active && follower.ReplicationStatus().LagBytes == 0
	})
	rs := follower.ReplicationStatus()
	if rs.LastError != "" {
		t.Fatalf("follower converged but holds error %q", rs.LastError)
	}
	if err := follower.VerifyInvariant(); err != nil {
		t.Fatal(err)
	}
	t.Logf("converged: %d applied, %d reseeds", rs.Applied, follower.Status().Stats.Reseeds)
}

// TestReplPullStaleCursorReseeds is the deterministic 410 path end to end
// over the real pull loop: the primary compacts its WAL before the
// follower ever connects, so the follower's zero cursor is unservable and
// the loop must download the snapshot, re-seed, and catch up.
func TestReplPullStaleCursorReseeds(t *testing.T) {
	pcfg := uniformConfig(nil)
	pwal := openSmallWAL(t)
	pcfg.WAL = pwal
	primary := newTestServer(t, pcfg)
	ts := httptest.NewServer(primary.Handler())
	defer ts.Close()

	var keptID int
	for i := 0; i < 8; i++ {
		d, err := primary.Submit(server.Submission{
			From: i % 2, To: (i + 1) % 2,
			Volume: 1e9, Deadline: 3600, MaxRate: 50e6,
			IdempotencyKey: fmt.Sprintf("seed-%d", i),
		})
		if err != nil || !d.Accepted {
			t.Fatalf("submit %d: %v %+v", i, err, d)
		}
		keptID = int(d.ID)
	}
	dropped, err := pwal.CompactBefore(pwal.End())
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 {
		t.Fatal("WAL never rotated; the zero cursor would still be servable")
	}

	fcfg := uniformConfig(nil)
	fwal := openTestWAL(t)
	fcfg.WAL = fwal
	fcfg.Follow = ts.URL
	follower := newTestServer(t, fcfg)
	if err := follower.StartFollowing(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "auto-reseed", func() bool {
		st := follower.Status()
		return st.Stats.Reseeds == 1 && st.Active == primary.Status().Active
	})

	// The re-seeded state is durable: the boot snapshot is on disk and the
	// persisted cursor matches the snapshot frontier, so a reboot replays
	// only the shipped suffix — never the compacted gap.
	if _, err := os.Stat(filepath.Join(fwal.Dir(), server.ReseedSnapshotName)); err != nil {
		t.Fatalf("reseed snapshot not persisted: %v", err)
	}
	cur, err := wal.LoadCursor(fwal.Dir())
	if err != nil {
		t.Fatalf("cursor not persisted: %v", err)
	}
	if cur.IsZero() {
		t.Fatal("persisted cursor still zero after reseed")
	}

	// And pulling continues live past the re-seed.
	d, err := primary.Submit(server.Submission{From: 0, To: 1, Volume: 1e9, Deadline: 3600, MaxRate: 50e6})
	if err != nil || !d.Accepted {
		t.Fatalf("post-reseed submit: %v %+v", err, d)
	}
	waitFor(t, "post-reseed catch-up", func() bool {
		return follower.Status().Active == primary.Status().Active
	})
	if got, err := follower.Lookup(request.ID(keptID)); err != nil || !got.Accepted {
		t.Fatalf("reservation %d lost across reseed: %v %+v", keptID, err, got)
	}
}

// TestReseedRefusals pins the guard rails: a snapshot from an older epoch
// is fenced, a snapshot from a different platform is refused, and a
// primary cannot be re-seeded at all.
func TestReseedRefusals(t *testing.T) {
	donor := newTestServer(t, uniformConfig(nil))
	if _, err := donor.Submit(server.Submission{From: 0, To: 1, Volume: 1e9, Deadline: 3600, MaxRate: 50e6}); err != nil {
		t.Fatal(err)
	}
	snap := donor.Snapshot()

	// Older epoch: the deposed primary cannot drag a new-lineage follower
	// backwards.
	fcfg := uniformConfig(nil)
	fcfg.Follow = "http://127.0.0.1:0" // driven directly, never dialed
	fcfg.Epoch = 5
	f := newTestServer(t, fcfg)
	err := f.Reseed(snap)
	var fenced *server.FencedError
	if !errors.As(err, &fenced) {
		t.Fatalf("old-epoch reseed: err = %v, want FencedError", err)
	}
	if fenced.Batch != snap.Epoch || fenced.Current != 5 {
		t.Fatalf("fence = %+v, want batch %d vs current 5", fenced, snap.Epoch)
	}

	// Wrong platform: replaying grants against capacities they were never
	// admitted under is refused outright.
	ncfg := server.Config{
		Ingress: []units.Bandwidth{1 * units.GBps},
		Egress:  []units.Bandwidth{1 * units.GBps},
		Follow:  "http://127.0.0.1:0",
	}
	narrow := newTestServer(t, ncfg)
	if err := narrow.Reseed(snap); err == nil || !strings.Contains(err.Error(), "platform") {
		t.Fatalf("cross-platform reseed: err = %v, want platform mismatch", err)
	}

	// A primary is nobody's re-seed target.
	p := newTestServer(t, uniformConfig(nil))
	if err := p.Reseed(snap); !errors.Is(err, server.ErrNotFollower) {
		t.Fatalf("primary reseed: err = %v, want ErrNotFollower", err)
	}
}

// TestReseedRestoresIdempotency proves a re-seeded follower inherits the
// donor's idempotency decisions: after promotion, re-sending a key the old
// primary already answered returns the original reservation instead of
// booking twice.
func TestReseedRestoresIdempotency(t *testing.T) {
	dcfg := uniformConfig(nil)
	dcfg.WAL = openTestWAL(t)
	donor := newTestServer(t, dcfg)
	first, err := donor.Submit(server.Submission{
		From: 0, To: 1, Volume: 1e9, Deadline: 3600, MaxRate: 50e6,
		IdempotencyKey: "carried-key",
	})
	if err != nil || !first.Accepted {
		t.Fatalf("donor submit: %v %+v", err, first)
	}
	snap := donor.Snapshot()

	fcfg := uniformConfig(nil)
	fcfg.WAL = openTestWAL(t)
	fcfg.Follow = "http://127.0.0.1:0"
	f := newTestServer(t, fcfg)
	if err := f.Reseed(snap); err != nil {
		t.Fatal(err)
	}
	st := f.Status()
	if st.Active != 1 {
		t.Fatalf("active after reseed = %d, want 1", st.Active)
	}
	if f.ReplicationStatus().Cursor != snap.WALPos() {
		t.Fatalf("cursor after reseed = %v, want the snapshot frontier %v",
			f.ReplicationStatus().Cursor, snap.WALPos())
	}

	if _, err := f.Promote(); err != nil {
		t.Fatal(err)
	}
	again, err := f.Submit(server.Submission{
		From: 0, To: 1, Volume: 1e9, Deadline: 3600, MaxRate: 50e6,
		IdempotencyKey: "carried-key",
	})
	if err != nil || again.ID != first.ID {
		t.Fatalf("re-sent key after failover: id %d err %v, want the donor's id %d", again.ID, err, first.ID)
	}
	if got := f.Status().Active; got != 1 {
		t.Fatalf("active after idempotent re-send = %d, want still 1", got)
	}
}
