package server_test

import (
	"testing"
	"time"

	"gridbw/internal/server"
	"gridbw/internal/units"
)

// The steady-state allocation tests below are the regression fence for
// the zero-alloc admission work: they warm the server past the
// finished-decision retention ring (4096 — reservation entries recycle
// through the pool only once retention evicts them) and then assert that
// the hot path has stopped allocating. Thresholds leave slack for
// background goroutine noise, not for hot-path regressions.

func steadyServer(t *testing.T) (*server.Server, *fakeClock) {
	t.Helper()
	clk := &fakeClock{}
	return newTestServer(t, uniformConfig(clk)), clk
}

// 100 MB at a granted 100 MB/s lasts one second; advancing the clock two
// seconds per submission keeps occupancy at most one grant per route, so
// admission never starts failing mid-run.
func steadySubmit(t *testing.T, srv *server.Server, clk *fakeClock, i int) {
	t.Helper()
	now := srv.Now()
	d, err := srv.Submit(server.Submission{
		From: i % 2, To: (i / 2) % 2,
		Volume: 100 * units.MB, MaxRate: 200 * units.MBps,
		NotBefore: now, Deadline: now + 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accepted {
		t.Fatalf("submission %d rejected: %s", i, d.Reason)
	}
	clk.advance(2 * time.Second)
}

func TestSubmitSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation defeats sync.Pool reuse")
	}
	srv, clk := steadyServer(t)
	i := 0
	submit := func() { steadySubmit(t, srv, clk, i); i++ }
	for n := 0; n < 5000; n++ {
		submit()
	}
	if avg := testing.AllocsPerRun(200, submit); avg > 1 {
		t.Errorf("steady-state Submit allocates %.2f objects/op, want 0 (≤1 with noise slack)", avg)
	}
}

func TestSubmitBatchSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation defeats sync.Pool reuse")
	}
	srv, clk := steadyServer(t)
	const batch = 16
	subs := make([]server.Submission, batch)
	submit := func() {
		now := srv.Now()
		for k := range subs {
			subs[k] = server.Submission{
				From: k % 2, To: (k / 2) % 2,
				Volume: 100 * units.MB, MaxRate: 200 * units.MBps,
				NotBefore: now, Deadline: now + 100,
			}
		}
		res, err := srv.SubmitBatch(subs)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			if r.Err != nil || !r.Decision.Accepted {
				t.Fatalf("batch item: %+v", r)
			}
		}
		clk.advance(2 * time.Second)
	}
	for n := 0; n < 400; n++ { // 6400 decisions: past the retention ring
		submit()
	}
	// The pooled batch pipeline runs a 16-submission batch in a handful of
	// allocations (the results slice plus pool-miss stragglers); the old
	// sort.Slice-closure pipeline took ~92. The fence is the gap between
	// the two, with slack for noise.
	if avg := testing.AllocsPerRun(100, submit); avg > 16 {
		t.Errorf("steady-state SubmitBatch(16) allocates %.1f objects/op, want ≲5 (≤16 with slack)", avg)
	}
}
