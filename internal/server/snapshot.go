package server

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"slices"
	"time"

	"gridbw/internal/alloc"
	"gridbw/internal/core"
	"gridbw/internal/metrics"
	"gridbw/internal/request"
	"gridbw/internal/topology"
	"gridbw/internal/trace"
	"gridbw/internal/units"
	"gridbw/internal/wal"
)

// SnapshotVersion is bumped on incompatible snapshot schema changes.
// Version 2 replaced the live-only idempotency key map with full cached
// decisions, so retries of rejected or already-finished submissions stay
// idempotent across a restart. Version 3 added cross-shard holds, so
// tentative and confirmed one-sided bookings survive a snapshot-based
// restore. Older snapshots are still readable.
const SnapshotVersion = 3

// snapReservation is the wire form of one live reservation: the full
// request plus its grant, so restore can replay it through the ledger's
// own constraint checks.
type snapReservation struct {
	ID         int     `json:"id"`
	Ingress    int     `json:"ingress"`
	Egress     int     `json:"egress"`
	StartS     float64 `json:"start_s"`
	FinishS    float64 `json:"finish_s"`
	VolumeB    float64 `json:"volume_bytes"`
	MaxRateBps float64 `json:"max_rate_bps"`
	RateBps    float64 `json:"rate_bps"`
	SigmaS     float64 `json:"sigma_s"`
	TauS       float64 `json:"tau_s"`
}

// snapDecision is the wire form of one cached idempotency decision —
// enough to answer a retry without re-admitting, whatever state the
// original reservation has reached by now.
type snapDecision struct {
	ID       int     `json:"id"`
	Accepted bool    `json:"accepted"`
	State    string  `json:"state"`
	RateBps  float64 `json:"rate_bps,omitempty"`
	SigmaS   float64 `json:"sigma_s,omitempty"`
	TauS     float64 `json:"tau_s,omitempty"`
	Reason   string  `json:"reason,omitempty"`
}

// snapHold is the wire form of one live (capacity-booking) cross-shard
// hold: held ones re-arm their TTL rollback on restore, confirmed ones
// their on-time release at tau. Aborted tombstones are not persisted —
// they only answer duplicate protocol messages, and the retry windows
// they serve are far shorter than a restart.
type snapHold struct {
	Key        string  `json:"key"`
	Side       string  `json:"side"`
	Point      int     `json:"point"`
	PeerPoint  int     `json:"peer_point"`
	ID         int     `json:"id"`
	RateBps    float64 `json:"rate_bps"`
	SigmaS     float64 `json:"sigma_s"`
	TauS       float64 `json:"tau_s"`
	VolumeB    float64 `json:"volume_bytes,omitempty"`
	MaxRateBps float64 `json:"max_rate_bps,omitempty"`
	ExpireS    float64 `json:"expire_s"`
	Confirmed  bool    `json:"confirmed,omitempty"`
}

// Snapshot is the persisted control-plane state. Service time is
// continuous across restarts: a restored daemon resumes at NowS no matter
// how long it was down, so booked windows keep their meaning.
type Snapshot struct {
	Version    int            `json:"version"`
	Policy     string         `json:"policy"`
	NowS       float64        `json:"now_s"`
	NextID     int            `json:"next_id"`
	IngressBps []float64      `json:"ingress_capacity_bps"`
	EgressBps  []float64      `json:"egress_capacity_bps"`
	Counters   metrics.Online `json:"counters"`
	// Epoch is the fencing epoch at snapshot time; restore resumes at
	// least here, so a deposed primary's batches stay fenced off.
	Epoch uint64 `json:"epoch,omitempty"`
	// WALSeg/WALOff record the WAL append position this snapshot covers:
	// boot restores the snapshot, then replays only the WAL suffix past
	// this position, and compaction may drop whole segments before it.
	WALSeg uint64            `json:"wal_seg,omitempty"`
	WALOff int64             `json:"wal_off,omitempty"`
	Live   []snapReservation `json:"reservations"`
	// Idempotency is the legacy (version 1) key map: submission key to the
	// live reservation it booked. Read for compatibility, never written.
	Idempotency map[string]int `json:"idempotency_keys,omitempty"`
	// IdempotencyDecisions maps submission keys to their full cached
	// decisions — including rejections and terminal reservations — so a
	// client retrying with the same key after a daemon restart gets the
	// original answer instead of booking a duplicate transfer.
	IdempotencyDecisions map[string]snapDecision `json:"idempotency_decisions,omitempty"`
	// Holds are the cross-shard one-sided bookings alive at snapshot time
	// (version 3).
	Holds []snapHold `json:"holds,omitempty"`
}

// Snapshot captures the current state. It works on a closed server, so a
// draining daemon can persist its final ledger.
func (s *Server) Snapshot() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked()
	snap := &Snapshot{
		Version:  SnapshotVersion,
		Policy:   s.policyName,
		NowS:     float64(s.sim.Now()),
		NextID:   int(s.nextID),
		Counters: s.stats,
		Epoch:    s.repl.epoch,
	}
	if s.wal != nil {
		// Appends happen under s.mu, so the frontier read here is exactly
		// the boundary between history this snapshot covers and the WAL
		// suffix boot must replay on top of it.
		end := s.wal.End()
		snap.WALSeg, snap.WALOff = end.Seg, end.Off
	}
	for i := 0; i < s.net.NumIngress(); i++ {
		snap.IngressBps = append(snap.IngressBps, float64(s.net.Bin(topology.PointID(i))))
	}
	for e := 0; e < s.net.NumEgress(); e++ {
		snap.EgressBps = append(snap.EgressBps, float64(s.net.Bout(topology.PointID(e))))
	}
	for _, id := range s.sortedLiveIDsLocked() {
		e := s.resv[id]
		snap.Live = append(snap.Live, snapReservation{
			ID:      int(e.req.ID),
			Ingress: int(e.req.Ingress), Egress: int(e.req.Egress),
			StartS: float64(e.req.Start), FinishS: float64(e.req.Finish),
			VolumeB: float64(e.req.Volume), MaxRateBps: float64(e.req.MaxRate),
			RateBps: float64(e.grant.Bandwidth),
			SigmaS:  float64(e.grant.Sigma), TauS: float64(e.grant.Tau),
		})
	}
	for key, ie := range s.idem {
		select {
		case <-ie.done:
		default:
			// Still in flight: the submission will settle after this
			// snapshot, so it has no decision to persist yet.
			continue
		}
		if ie.err != nil {
			continue
		}
		d := ie.d
		sd := snapDecision{
			ID: int(d.ID), Accepted: d.Accepted, State: string(d.State),
			RateBps: float64(d.Rate), SigmaS: float64(d.Sigma), TauS: float64(d.Tau),
			Reason: d.Reason,
		}
		if d.Accepted {
			// The cached decision froze the state at decision time;
			// persist where the reservation actually is now.
			if e, ok := s.resv[d.ID]; ok {
				sd.State = string(s.liveStateLocked(e))
			} else {
				// Evicted from the registry: terminal long ago.
				sd.State = string(StateExpired)
			}
		}
		if snap.IdempotencyDecisions == nil {
			snap.IdempotencyDecisions = make(map[string]snapDecision)
		}
		snap.IdempotencyDecisions[key] = sd
	}
	holdKeys := make([]string, 0, len(s.holds))
	for key, e := range s.holds {
		if e.booked {
			holdKeys = append(holdKeys, key)
		}
	}
	slices.Sort(holdKeys)
	for _, key := range holdKeys {
		e := s.holds[key]
		snap.Holds = append(snap.Holds, snapHold{
			Key: key, Side: e.side, Point: int(e.point), PeerPoint: e.peer,
			ID:      int(e.id),
			RateBps: float64(e.bw), SigmaS: float64(e.sigma), TauS: float64(e.tau),
			VolumeB: float64(e.volume), MaxRateBps: float64(e.maxRate),
			ExpireS: float64(e.expireAt), Confirmed: e.state == holdConfirmed,
		})
	}
	return snap
}

func (s *Server) sortedLiveIDsLocked() []request.ID {
	ids := make([]request.ID, 0, len(s.resv))
	for id, e := range s.resv {
		if e.state == StateActive {
			ids = append(ids, id)
		}
	}
	slices.Sort(ids)
	return ids
}

// WriteSnapshot serializes the current state as indented JSON.
func (s *Server) WriteSnapshot(w io.Writer) error {
	return s.Snapshot().Write(w)
}

// Write serializes the snapshot as indented JSON.
func (snap *Snapshot) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("server: write snapshot: %w", err)
	}
	return nil
}

// WriteFile writes the snapshot durably: temp file + fsync + rename +
// directory fsync, so a crash at any instant leaves either the old file
// or the new one — complete and durable — never a torn or vanishing one.
func (snap *Snapshot) WriteFile(path string) error {
	return snap.WriteFileFS(wal.OSFS{}, path)
}

// WriteFileFS is WriteFile through an injectable filesystem, so fault
// harnesses can tear the write at any step. On any failure the temp file
// is removed and the previous snapshot (if any) is left untouched, so
// the boot ladder can never read a half-written *.snap.json ahead of the
// WAL; callers must treat an error as "snapshot not taken" and skip WAL
// compaction.
func (snap *Snapshot) WriteFileFS(fsys wal.FS, path string) error {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if err := snap.Write(f); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	// The rename is only durable once the directory entry is.
	return fsys.SyncDir(filepath.Dir(path))
}

// WALPos reports the WAL position the snapshot covers (zero when the
// snapshot predates the WAL or none was configured).
func (snap *Snapshot) WALPos() wal.Pos {
	return wal.Pos{Seg: snap.WALSeg, Off: snap.WALOff}
}

// ReadSnapshot parses a snapshot. All versions from 1 (live-only
// idempotency keys) through the current one are accepted.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var snap Snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("server: decode snapshot: %w", err)
	}
	if snap.Version < 1 || snap.Version > SnapshotVersion {
		return nil, fmt.Errorf("server: unsupported snapshot version %d (want 1..%d)", snap.Version, SnapshotVersion)
	}
	return &snap, nil
}

// NewFromSnapshot restores a server from snap. Platform capacities and
// policy come from the snapshot; cfg supplies the runtime wiring (Clock,
// Decisions, FinishedRetention — its Ingress/Egress/Policy fields must be
// empty). Every live reservation is replayed through the ledger, so a
// tampered or inconsistent snapshot fails restore instead of admitting an
// infeasible state.
func NewFromSnapshot(snap *Snapshot, cfg Config) (*Server, error) {
	if len(cfg.Ingress) != 0 || len(cfg.Egress) != 0 || cfg.Policy != "" {
		return nil, fmt.Errorf("server: restore takes platform and policy from the snapshot")
	}
	tcfg := topology.Config{}
	for _, c := range snap.IngressBps {
		tcfg.Ingress = append(tcfg.Ingress, units.Bandwidth(c))
	}
	for _, c := range snap.EgressBps {
		tcfg.Egress = append(tcfg.Egress, units.Bandwidth(c))
	}
	net, err := topology.New(tcfg)
	if err != nil {
		return nil, fmt.Errorf("server: restore: %w", err)
	}
	name := snap.Policy
	if name == "" {
		name = "minbw"
	}
	pol, err := core.ParsePolicy(name)
	if err != nil {
		return nil, fmt.Errorf("server: restore: %w", err)
	}
	if snap.NowS < 0 || snap.NextID < 0 {
		return nil, fmt.Errorf("server: restore: negative clock or ID counter")
	}

	s := newServer(cfg, net, pol, name)
	// Anchor the epoch so service time resumes exactly at NowS.
	s.epoch = s.clock().Add(-time.Duration(snap.NowS * float64(time.Second)))
	s.nextID = request.ID(snap.NextID)
	s.stats = snap.Counters

	entries, err := liveFromSnapshot(snap, net, s.ledger)
	if err != nil {
		return nil, err
	}
	for id, e := range entries {
		if cfg.Follow == "" {
			// A follower deliberately leaves expiry timers unarmed: the
			// primary's shipped expire events retire grants, and Promote
			// arms the timers when the follower takes over.
			e.expire = s.sim.At(e.grant.Tau, s.expireEvent(id))
		}
		s.resv[id] = e
	}
	if err := s.restoreIdempotency(snap, s.resv); err != nil {
		return nil, err
	}
	if err := s.restoreHolds(snap, cfg.Follow != ""); err != nil {
		return nil, err
	}
	if err := s.initRepl(cfg, snap.Epoch); err != nil {
		return nil, err
	}
	s.appendEventLocked(trace.Event{
		At: snap.NowS, Kind: trace.EventRestore, Request: -1,
		Reason: fmt.Sprintf("%d live reservations", len(snap.Live)),
	})
	go s.loop()
	return s, nil
}

// liveFromSnapshot validates snap's live reservations and reserves each
// grant in ledger — the ledger re-checks equation (1), so an infeasible
// or tampered snapshot is rejected rather than silently over-committing a
// point. The returned entries carry no expiry timers; callers arm them
// (or deliberately do not, on a follower).
func liveFromSnapshot(snap *Snapshot, net *topology.Network, ledger *alloc.Sharded) (map[request.ID]*entry, error) {
	entries := make(map[request.ID]*entry, len(snap.Live))
	for _, sr := range snap.Live {
		r := request.Request{
			ID:      request.ID(sr.ID),
			Ingress: topology.PointID(sr.Ingress),
			Egress:  topology.PointID(sr.Egress),
			Start:   units.Time(sr.StartS),
			Finish:  units.Time(sr.FinishS),
			Volume:  units.Volume(sr.VolumeB),
			MaxRate: units.Bandwidth(sr.MaxRateBps),
		}
		if int(r.Ingress) >= net.NumIngress() || int(r.Egress) >= net.NumEgress() ||
			r.Ingress < 0 || r.Egress < 0 {
			return nil, fmt.Errorf("server: restore: reservation %d routed through unknown point", sr.ID)
		}
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("server: restore: %w", err)
		}
		if int(r.ID) >= snap.NextID {
			return nil, fmt.Errorf("server: restore: reservation %d not below next_id %d", sr.ID, snap.NextID)
		}
		g := request.Grant{
			Request:   r.ID,
			Bandwidth: units.Bandwidth(sr.RateBps),
			Sigma:     units.Time(sr.SigmaS),
			Tau:       units.Time(sr.TauS),
		}
		if g.Tau <= g.Sigma || g.Bandwidth <= 0 {
			return nil, fmt.Errorf("server: restore: reservation %d has degenerate grant", sr.ID)
		}
		if err := ledger.Reserve(r, g); err != nil {
			return nil, fmt.Errorf("server: restore: %w", err)
		}
		entries[r.ID] = &entry{req: r, grant: g, state: StateActive}
	}
	return entries, nil
}

// restoreHolds rebuilds the cross-shard hold registry: each persisted
// hold re-books its one-sided capacity through the ledger's own checks,
// and (unless following) re-arms its TTL rollback or on-time release.
func (s *Server) restoreHolds(snap *Snapshot, following bool) error {
	for _, sh := range snap.Holds {
		if _, dup := s.holds[sh.Key]; dup {
			return fmt.Errorf("server: restore: duplicate hold %q", sh.Key)
		}
		e := &holdEntry{
			key: sh.Key, side: sh.Side, peer: sh.PeerPoint,
			id:    request.ID(sh.ID),
			bw:    units.Bandwidth(sh.RateBps),
			sigma: units.Time(sh.SigmaS), tau: units.Time(sh.TauS),
			volume: units.Volume(sh.VolumeB), maxRate: units.Bandwidth(sh.MaxRateBps),
			expireAt: units.Time(sh.ExpireS),
			state:    holdHeld,
		}
		if sh.Confirmed {
			e.state = holdConfirmed
		}
		switch sh.Side {
		case trace.HoldSideIngress:
			if sh.Point < 0 || sh.Point >= s.net.NumIngress() {
				return fmt.Errorf("server: restore: hold %q on unknown ingress %d", sh.Key, sh.Point)
			}
		case trace.HoldSideEgress:
			if sh.Point < 0 || sh.Point >= s.net.NumEgress() {
				return fmt.Errorf("server: restore: hold %q on unknown egress %d", sh.Key, sh.Point)
			}
		default:
			return fmt.Errorf("server: restore: hold %q has unknown side %q", sh.Key, sh.Side)
		}
		e.point = topology.PointID(sh.Point)
		if sh.RateBps <= 0 || sh.TauS <= sh.SigmaS {
			return fmt.Errorf("server: restore: hold %q has degenerate grant", sh.Key)
		}
		if err := s.ledger.HoldReserve(e.dir(), e.point, e.sigma, e.tau, e.bw); err != nil {
			return fmt.Errorf("server: restore: hold %q: %w", sh.Key, err)
		}
		e.booked = true
		s.holds[sh.Key] = e
		if e.id >= 0 {
			s.holdsByID[e.id] = sh.Key
		}
	}
	if !following {
		s.armHoldTimersLocked()
	}
	return nil
}

// restoreIdempotency rebuilds the idempotency cache, validating live
// claims against resv (the registry the snapshot restored). Version-2
// snapshots carry full decisions; the legacy version-1 map only knew live
// keys. Keys are inserted in sorted order so the FIFO eviction queue is
// deterministic across restores.
func (s *Server) restoreIdempotency(snap *Snapshot, resv map[request.ID]*entry) error {
	settled := func(d Decision) *idemEntry {
		e := &idemEntry{done: make(chan struct{}), d: d}
		close(e.done)
		return e
	}
	keys := make([]string, 0, len(snap.IdempotencyDecisions))
	for key := range snap.IdempotencyDecisions {
		keys = append(keys, key)
	}
	slices.Sort(keys)
	for _, key := range keys {
		sd := snap.IdempotencyDecisions[key]
		d := Decision{
			ID: request.ID(sd.ID), Accepted: sd.Accepted, State: State(sd.State),
			Rate: units.Bandwidth(sd.RateBps), Sigma: units.Time(sd.SigmaS), Tau: units.Time(sd.TauS),
			Reason: sd.Reason,
		}
		switch d.State {
		case StateBooked, StateActive, StateExpired, StateCancelled, StateRejected:
		default:
			return fmt.Errorf("server: restore: idempotency key %q has unknown state %q", key, sd.State)
		}
		if d.Accepted {
			if int(d.ID) >= snap.NextID || d.ID < 0 {
				return fmt.Errorf("server: restore: idempotency key %q for reservation %d not below next_id %d",
					key, sd.ID, snap.NextID)
			}
			if _, live := resv[d.ID]; !live && (d.State == StateBooked || d.State == StateActive) {
				return fmt.Errorf("server: restore: idempotency key %q claims live reservation %d absent from snapshot",
					key, sd.ID)
			}
		}
		s.rememberLocked(key, settled(d))
	}

	// Legacy version-1 map: key -> live reservation ID.
	legacy := make([]string, 0, len(snap.Idempotency))
	for key := range snap.Idempotency {
		legacy = append(legacy, key)
	}
	slices.Sort(legacy)
	for _, key := range legacy {
		id := snap.Idempotency[key]
		e, ok := resv[request.ID(id)]
		if !ok {
			return fmt.Errorf("server: restore: idempotency key for unknown reservation %d", id)
		}
		s.rememberLocked(key, settled(Decision{
			ID: e.req.ID, Accepted: true, State: StateActive,
			Rate: e.grant.Bandwidth, Sigma: e.grant.Sigma, Tau: e.grant.Tau,
		}))
	}
	return nil
}
