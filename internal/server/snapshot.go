package server

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"gridbw/internal/core"
	"gridbw/internal/metrics"
	"gridbw/internal/request"
	"gridbw/internal/topology"
	"gridbw/internal/trace"
	"gridbw/internal/units"
)

// SnapshotVersion is bumped on incompatible snapshot schema changes.
const SnapshotVersion = 1

// snapReservation is the wire form of one live reservation: the full
// request plus its grant, so restore can replay it through the ledger's
// own constraint checks.
type snapReservation struct {
	ID         int     `json:"id"`
	Ingress    int     `json:"ingress"`
	Egress     int     `json:"egress"`
	StartS     float64 `json:"start_s"`
	FinishS    float64 `json:"finish_s"`
	VolumeB    float64 `json:"volume_bytes"`
	MaxRateBps float64 `json:"max_rate_bps"`
	RateBps    float64 `json:"rate_bps"`
	SigmaS     float64 `json:"sigma_s"`
	TauS       float64 `json:"tau_s"`
}

// Snapshot is the persisted control-plane state. Service time is
// continuous across restarts: a restored daemon resumes at NowS no matter
// how long it was down, so booked windows keep their meaning.
type Snapshot struct {
	Version    int               `json:"version"`
	Policy     string            `json:"policy"`
	NowS       float64           `json:"now_s"`
	NextID     int               `json:"next_id"`
	IngressBps []float64         `json:"ingress_capacity_bps"`
	EgressBps  []float64         `json:"egress_capacity_bps"`
	Counters   metrics.Online    `json:"counters"`
	Live       []snapReservation `json:"reservations"`
	// Idempotency maps submission idempotency keys to the reservation
	// they booked, for keys whose reservation is still live — so a client
	// retrying across a daemon restart still cannot double-book.
	Idempotency map[string]int `json:"idempotency_keys,omitempty"`
}

// Snapshot captures the current state. It works on a closed server, so a
// draining daemon can persist its final ledger.
func (s *Server) Snapshot() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked()
	snap := &Snapshot{
		Version:  SnapshotVersion,
		Policy:   s.policyName,
		NowS:     float64(s.sim.Now()),
		NextID:   int(s.nextID),
		Counters: s.stats,
	}
	for i := 0; i < s.net.NumIngress(); i++ {
		snap.IngressBps = append(snap.IngressBps, float64(s.net.Bin(topology.PointID(i))))
	}
	for e := 0; e < s.net.NumEgress(); e++ {
		snap.EgressBps = append(snap.EgressBps, float64(s.net.Bout(topology.PointID(e))))
	}
	for _, id := range s.sortedLiveIDsLocked() {
		e := s.resv[id]
		snap.Live = append(snap.Live, snapReservation{
			ID:      int(e.req.ID),
			Ingress: int(e.req.Ingress), Egress: int(e.req.Egress),
			StartS: float64(e.req.Start), FinishS: float64(e.req.Finish),
			VolumeB: float64(e.req.Volume), MaxRateBps: float64(e.req.MaxRate),
			RateBps: float64(e.grant.Bandwidth),
			SigmaS:  float64(e.grant.Sigma), TauS: float64(e.grant.Tau),
		})
	}
	for key, d := range s.idem {
		if !d.Accepted {
			continue
		}
		if e, ok := s.resv[d.ID]; ok && e.state == StateActive {
			if snap.Idempotency == nil {
				snap.Idempotency = make(map[string]int)
			}
			snap.Idempotency[key] = int(d.ID)
		}
	}
	return snap
}

func (s *Server) sortedLiveIDsLocked() []request.ID {
	var ids []request.ID
	for id, e := range s.resv {
		if e.state == StateActive {
			ids = append(ids, id)
		}
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

// WriteSnapshot serializes the current state as indented JSON.
func (s *Server) WriteSnapshot(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.Snapshot()); err != nil {
		return fmt.Errorf("server: write snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot parses a snapshot.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var snap Snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("server: decode snapshot: %w", err)
	}
	if snap.Version != SnapshotVersion {
		return nil, fmt.Errorf("server: unsupported snapshot version %d (want %d)", snap.Version, SnapshotVersion)
	}
	return &snap, nil
}

// NewFromSnapshot restores a server from snap. Platform capacities and
// policy come from the snapshot; cfg supplies the runtime wiring (Clock,
// Decisions, FinishedRetention — its Ingress/Egress/Policy fields must be
// empty). Every live reservation is replayed through the ledger, so a
// tampered or inconsistent snapshot fails restore instead of admitting an
// infeasible state.
func NewFromSnapshot(snap *Snapshot, cfg Config) (*Server, error) {
	if len(cfg.Ingress) != 0 || len(cfg.Egress) != 0 || cfg.Policy != "" {
		return nil, fmt.Errorf("server: restore takes platform and policy from the snapshot")
	}
	tcfg := topology.Config{}
	for _, c := range snap.IngressBps {
		tcfg.Ingress = append(tcfg.Ingress, units.Bandwidth(c))
	}
	for _, c := range snap.EgressBps {
		tcfg.Egress = append(tcfg.Egress, units.Bandwidth(c))
	}
	net, err := topology.New(tcfg)
	if err != nil {
		return nil, fmt.Errorf("server: restore: %w", err)
	}
	name := snap.Policy
	if name == "" {
		name = "minbw"
	}
	pol, err := core.ParsePolicy(name)
	if err != nil {
		return nil, fmt.Errorf("server: restore: %w", err)
	}
	if snap.NowS < 0 || snap.NextID < 0 {
		return nil, fmt.Errorf("server: restore: negative clock or ID counter")
	}

	s := newServer(cfg, net, pol, name)
	// Anchor the epoch so service time resumes exactly at NowS.
	s.epoch = s.clock().Add(-time.Duration(snap.NowS * float64(time.Second)))
	s.nextID = request.ID(snap.NextID)
	s.stats = snap.Counters

	for _, sr := range snap.Live {
		r := request.Request{
			ID:      request.ID(sr.ID),
			Ingress: topology.PointID(sr.Ingress),
			Egress:  topology.PointID(sr.Egress),
			Start:   units.Time(sr.StartS),
			Finish:  units.Time(sr.FinishS),
			Volume:  units.Volume(sr.VolumeB),
			MaxRate: units.Bandwidth(sr.MaxRateBps),
		}
		if int(r.Ingress) >= net.NumIngress() || int(r.Egress) >= net.NumEgress() ||
			r.Ingress < 0 || r.Egress < 0 {
			return nil, fmt.Errorf("server: restore: reservation %d routed through unknown point", sr.ID)
		}
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("server: restore: %w", err)
		}
		if int(r.ID) >= snap.NextID {
			return nil, fmt.Errorf("server: restore: reservation %d not below next_id %d", sr.ID, snap.NextID)
		}
		g := request.Grant{
			Request:   r.ID,
			Bandwidth: units.Bandwidth(sr.RateBps),
			Sigma:     units.Time(sr.SigmaS),
			Tau:       units.Time(sr.TauS),
		}
		if g.Tau <= g.Sigma || g.Bandwidth <= 0 {
			return nil, fmt.Errorf("server: restore: reservation %d has degenerate grant", sr.ID)
		}
		// The ledger re-checks equation (1): an infeasible snapshot is
		// rejected here rather than silently over-committing a point.
		if err := s.ledger.Reserve(r, g); err != nil {
			return nil, fmt.Errorf("server: restore: %w", err)
		}
		e := &entry{req: r, grant: g, state: StateActive}
		e.expire = s.sim.At(g.Tau, s.expireEvent(r.ID))
		s.resv[r.ID] = e
	}
	idemKeys := make([]string, 0, len(snap.Idempotency))
	for key := range snap.Idempotency {
		idemKeys = append(idemKeys, key)
	}
	sort.Strings(idemKeys)
	for _, key := range idemKeys {
		id := snap.Idempotency[key]
		e, ok := s.resv[request.ID(id)]
		if !ok {
			return nil, fmt.Errorf("server: restore: idempotency key for unknown reservation %d", id)
		}
		s.rememberLocked(key, Decision{
			ID: e.req.ID, Accepted: true, State: StateActive,
			Rate: e.grant.Bandwidth, Sigma: e.grant.Sigma, Tau: e.grant.Tau,
		})
	}
	if s.decisions != nil {
		_ = s.decisions.Append(trace.Event{
			At: snap.NowS, Kind: trace.EventRestore, Request: -1,
			Reason: fmt.Sprintf("%d live reservations", len(snap.Live)),
		})
	}
	go s.loop()
	return s, nil
}
