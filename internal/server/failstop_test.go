package server_test

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gridbw/internal/faults"
	"gridbw/internal/server"
	"gridbw/internal/units"
	"gridbw/internal/wal"
)

// The fail-stop contract after a disk fault (the fsyncgate lesson): once
// an fsync fails, the kernel may have silently dropped the dirty pages,
// so no later fsync can be trusted to cover the lost write. The WAL
// poisons itself, and the server must (a) refuse every durable admission
// with ErrDurabilityLost, (b) never again answer "replicated", (c) keep
// serving non-durable work while advertising degradation — and only a
// restart, which re-reads what is really on disk, clears the state.

func submission(i int, durable bool) server.Submission {
	return server.Submission{
		From: i % 2, To: (i + 1) % 2,
		Volume: 5 * units.GB, Deadline: 40000, MaxRate: 50 * units.MBps,
		Durable: durable,
	}
}

func TestWALPoisonRefusesDurableUntilRestart(t *testing.T) {
	dir := t.TempDir()
	dfs := faults.NewDiskFS(nil, faults.DiskConfig{Seed: 1})
	l, _, err := wal.Open(dir, wal.Options{FS: dfs})
	if err != nil {
		t.Fatal(err)
	}
	cfg := uniformConfig(nil)
	cfg.WAL = l
	cfg.SyncTimeout = 50 * time.Millisecond
	s := newTestServer(t, cfg)

	if d, err := s.Submit(submission(0, false)); err != nil || !d.Accepted {
		t.Fatalf("healthy submit: %v %+v", err, d)
	}
	if s.WALPoisoned() {
		t.Fatal("poisoned before any fault")
	}

	// The injected fsync failure fires inside this append; the decision
	// itself stands (async durability model) but the WAL is now poisoned.
	dfs.FailNextFsyncs(1)
	if d, err := s.Submit(submission(1, false)); err != nil || !d.Accepted {
		t.Fatalf("submit during fault: %v %+v", err, d)
	}
	if !s.WALPoisoned() {
		t.Fatal("WAL not poisoned after fsync failure")
	}

	// Every durable admission is now refused — including long after the
	// fault itself cleared; fail-stop is sticky by design.
	for try := 0; try < 3; try++ {
		_, err := s.Submit(submission(2+try, true))
		if !errors.Is(err, server.ErrDurabilityLost) {
			t.Fatalf("durable submit %d after poison: %v, want ErrDurabilityLost", try, err)
		}
	}

	// Non-durable work keeps flowing; the degradation is advertised, not
	// hidden.
	if d, err := s.Submit(submission(5, false)); err != nil || !d.Accepted {
		t.Fatalf("async submit on poisoned WAL: %v %+v", err, d)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health server.HealthJSON
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !health.WALPoisoned || health.Status != "degraded" {
		t.Fatalf("healthz on poisoned WAL: %+v", health)
	}

	// Over HTTP the refusal is a 503: the client should fail over, not
	// believe this node can make anything durable.
	body := strings.NewReader(`{"from":0,"to":1,"volume_bytes":5e9,"deadline_s":40000,"max_rate_bps":5e7,"durable":true}`)
	resp, err = http.Post(ts.URL+"/v1/requests", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("durable submit on poisoned WAL: HTTP %d, want 503", resp.StatusCode)
	}

	// The Prometheus surface carries the same signal for alerting.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/metricsz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	prom, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(prom), "gridbwd_wal_poisoned 1") {
		t.Fatal("metricsz does not report gridbwd_wal_poisoned 1")
	}

	// Restart: close everything, reopen the same directory on the real
	// filesystem. Recovery reads what truly hit the disk, so the fresh
	// process is trustworthy again and durable admissions resume.
	s.Close()
	l.Close()
	l2, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatalf("reopen after poison: %v", err)
	}
	cfg2 := uniformConfig(nil)
	cfg2.WAL = l2
	cfg2.SyncTimeout = 50 * time.Millisecond
	events, _, err := server.ReadWALEvents(l2, wal.Pos{})
	if err != nil {
		t.Fatalf("read recovered events: %v", err)
	}
	s2, err := server.NewFromDecisions(events, cfg2)
	if err != nil {
		t.Fatalf("boot after restart: %v", err)
	}
	defer func() {
		s2.Close()
		l2.Close()
	}()
	if s2.WALPoisoned() {
		t.Fatal("fresh process still poisoned")
	}
	d, err := s2.Submit(submission(9, true))
	if err != nil || !d.Accepted {
		t.Fatalf("durable submit after restart: %v %+v", err, d)
	}
}
