package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gridbw/internal/server"
)

// fakeDaemon is a scriptable endpoint for failover tests: it answers the
// replication-status probe with a fixed role/epoch and runs a scripted
// handler for submissions, recording every idempotency key it sees.
type fakeDaemon struct {
	ts     *httptest.Server
	role   string
	epoch  uint64
	delay  time.Duration // added to every status answer
	submit http.HandlerFunc

	mu   sync.Mutex
	keys []string
}

func newFakeDaemon(t *testing.T, role string, epoch uint64, submit http.HandlerFunc) *fakeDaemon {
	t.Helper()
	d := &fakeDaemon{role: role, epoch: epoch, submit: submit}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/replication/status", func(w http.ResponseWriter, r *http.Request) {
		if d.delay > 0 {
			time.Sleep(d.delay)
		}
		json.NewEncoder(w).Encode(server.ReplicationStatus{Role: d.role, Epoch: d.epoch})
	})
	mux.HandleFunc("POST /v1/requests", func(w http.ResponseWriter, r *http.Request) {
		var body server.SubmitRequest
		json.NewDecoder(r.Body).Decode(&body)
		d.mu.Lock()
		d.keys = append(d.keys, body.IdempotencyKey)
		d.mu.Unlock()
		d.submit(w, r)
	})
	d.ts = httptest.NewServer(mux)
	t.Cleanup(d.ts.Close)
	return d
}

func (d *fakeDaemon) seenKeys() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]string(nil), d.keys...)
}

func acceptSubmit(w http.ResponseWriter, r *http.Request) {
	json.NewEncoder(w).Encode(server.ReservationJSON{ID: 7, Accepted: true, State: "active"})
}

func refuseReadOnly(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusForbidden)
	json.NewEncoder(w).Encode(server.ErrorJSON{Error: "server: read-only follower"})
}

// TestFailoverOnTransportError: the configured primary is unreachable; the
// client re-discovers the real primary among its fallbacks and re-sends
// the same idempotency key there.
func TestFailoverOnTransportError(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // connection refused from the first byte
	alive := newFakeDaemon(t, "primary", 2, acceptSubmit)

	c := NewWithOptions(dead.URL, nil, instant(nil), alive.ts.URL)
	r, err := c.Submit(context.Background(), server.SubmitRequest{
		From: 0, To: 1, VolumeBytes: 1e9, DeadlineS: 100, MaxRateBps: 1e9,
		IdempotencyKey: "xfer-42",
	})
	if err != nil || !r.Accepted {
		t.Fatalf("submit across dead primary: %v %+v", err, r)
	}
	if c.Endpoint() != alive.ts.URL {
		t.Fatalf("endpoint after failover = %s, want %s", c.Endpoint(), alive.ts.URL)
	}
	if keys := alive.seenKeys(); len(keys) != 1 || keys[0] != "xfer-42" {
		t.Fatalf("new primary saw keys %v, want exactly the original [xfer-42]", keys)
	}
}

// TestFailoverOnReadOnly: a 403 from a demoted-or-never-primary endpoint
// is not retryable in place, but with fallbacks it triggers re-discovery —
// and the same key lands on the primary.
func TestFailoverOnReadOnly(t *testing.T) {
	follower := newFakeDaemon(t, "follower", 2, refuseReadOnly)
	primary := newFakeDaemon(t, "primary", 2, acceptSubmit)

	c := NewWithOptions(follower.ts.URL, nil, instant(nil), primary.ts.URL)
	r, err := c.Submit(context.Background(), server.SubmitRequest{
		From: 0, To: 1, VolumeBytes: 1e9, DeadlineS: 100, MaxRateBps: 1e9,
		IdempotencyKey: "xfer-43",
	})
	if err != nil || !r.Accepted {
		t.Fatalf("submit via follower: %v %+v", err, r)
	}
	if got := follower.seenKeys(); len(got) != 1 {
		t.Fatalf("follower saw %d submits, want exactly 1 before failover", len(got))
	}
	if keys := primary.seenKeys(); len(keys) != 1 || keys[0] != "xfer-43" {
		t.Fatalf("primary saw keys %v, want [xfer-43]", keys)
	}
}

// TestRediscoverPrefersHighestEpoch: during a partition both sides may
// claim primary; the client must side with the higher fencing epoch — the
// lineage whose writes are not fenced off.
func TestRediscoverPrefersHighestEpoch(t *testing.T) {
	deposed := newFakeDaemon(t, "primary", 1, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(server.ErrorJSON{Error: "flapping"})
	})
	promoted := newFakeDaemon(t, "primary", 2, acceptSubmit)

	c := NewWithOptions(deposed.ts.URL, nil, instant(nil), promoted.ts.URL)
	r, err := c.Submit(context.Background(), server.SubmitRequest{
		From: 0, To: 1, VolumeBytes: 1e9, DeadlineS: 100, MaxRateBps: 1e9,
	})
	if err != nil || !r.Accepted {
		t.Fatalf("submit during split-brain: %v %+v", err, r)
	}
	if c.Endpoint() != promoted.ts.URL {
		t.Fatalf("client sided with epoch-1 claimant %s, want the epoch-2 primary", c.Endpoint())
	}
}

// TestRediscoverOutwaitsFastStaleClaimant: the deposed epoch-1 primary
// answers the status probe instantly while the real epoch-2 primary is
// slow; a follower's fast answer already proves epoch 2 exists. Settling
// once "a majority answered and some primary was seen" would retarget
// the fenced claimant — the sweep must keep draining until the best
// primary seen is at the answered group's maximum epoch.
func TestRediscoverOutwaitsFastStaleClaimant(t *testing.T) {
	deposed := newFakeDaemon(t, "primary", 1, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(server.ErrorJSON{Error: "flapping"})
	})
	follower := newFakeDaemon(t, "follower", 2, refuseReadOnly)
	promoted := newFakeDaemon(t, "primary", 2, acceptSubmit)
	promoted.delay = 150 * time.Millisecond // last to answer, but the real winner

	opts := instant(nil)
	opts.CallTimeout = 2 * time.Second
	c := NewWithOptions(deposed.ts.URL, nil, opts, follower.ts.URL, promoted.ts.URL)
	r, err := c.Submit(context.Background(), server.SubmitRequest{
		From: 0, To: 1, VolumeBytes: 1e9, DeadlineS: 100, MaxRateBps: 1e9,
		IdempotencyKey: "xfer-45",
	})
	if err != nil || !r.Accepted {
		t.Fatalf("submit past a fast fenced claimant: %v %+v", err, r)
	}
	if c.Endpoint() != promoted.ts.URL {
		t.Fatalf("client settled on %s, want the slow epoch-2 primary", c.Endpoint())
	}
	if keys := promoted.seenKeys(); len(keys) != 1 || keys[0] != "xfer-45" {
		t.Fatalf("promoted primary saw keys %v, want [xfer-45]", keys)
	}
}

// TestRotateWhenNoPrimary: nothing answers as primary mid-failover; the
// retry loop sweeps the endpoint list instead of hammering one address,
// and the terminal error is the daemon's, not an invented one.
func TestRotateWhenNoPrimary(t *testing.T) {
	a := newFakeDaemon(t, "follower", 1, refuseReadOnly)
	b := newFakeDaemon(t, "follower", 1, refuseReadOnly)

	opts := instant(nil)
	opts.MaxRetries = 3
	c := NewWithOptions(a.ts.URL, nil, opts, b.ts.URL)
	_, err := c.Submit(context.Background(), server.SubmitRequest{
		From: 0, To: 1, VolumeBytes: 1e9, DeadlineS: 100, MaxRateBps: 1e9,
	})
	if !IsReadOnly(err) {
		t.Fatalf("err = %v, want the read-only refusal surfaced", err)
	}
	if len(a.seenKeys()) == 0 || len(b.seenKeys()) == 0 {
		t.Fatalf("sweep skipped an endpoint: a=%d b=%d submits", len(a.seenKeys()), len(b.seenKeys()))
	}
}

// TestRediscoverBoundedByHungEndpoint: at N=5, one endpoint that accepts
// the connection and never answers must not serialize re-discovery — the
// probes run concurrently and the sweep settles on the primary as soon as
// a majority of the group has answered, so failover latency is bounded by
// the fastest majority, not by per-endpoint timeouts stacked in sequence.
func TestRediscoverBoundedByHungEndpoint(t *testing.T) {
	follower := newFakeDaemon(t, "follower", 2, refuseReadOnly)
	primary := newFakeDaemon(t, "primary", 2, acceptSubmit)
	f2 := newFakeDaemon(t, "follower", 2, refuseReadOnly)
	f3 := newFakeDaemon(t, "follower", 2, refuseReadOnly)
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // answer nothing until the caller gives up
	}))
	t.Cleanup(hung.Close)

	opts := instant(nil)
	opts.CallTimeout = 500 * time.Millisecond
	// The hung endpoint sits ahead of the primary in the list, so the old
	// sequential sweep would stall a full CallTimeout before reaching it.
	c := NewWithOptions(follower.ts.URL, nil, opts, hung.URL, f2.ts.URL, f3.ts.URL, primary.ts.URL)
	started := time.Now()
	r, err := c.Submit(context.Background(), server.SubmitRequest{
		From: 0, To: 1, VolumeBytes: 1e9, DeadlineS: 100, MaxRateBps: 1e9,
		IdempotencyKey: "xfer-44",
	})
	elapsed := time.Since(started)
	if err != nil || !r.Accepted {
		t.Fatalf("submit with a hung endpoint in the group: %v %+v", err, r)
	}
	if c.Endpoint() != primary.ts.URL {
		t.Fatalf("endpoint after failover = %s, want the primary", c.Endpoint())
	}
	if elapsed >= opts.CallTimeout {
		t.Fatalf("failover took %v, want bounded below the %v per-attempt timeout (hung endpoint serialized the sweep)", elapsed, opts.CallTimeout)
	}
	if keys := primary.seenKeys(); len(keys) != 1 || keys[0] != "xfer-44" {
		t.Fatalf("primary saw keys %v, want [xfer-44]", keys)
	}
}

// TestSingleEndpointReadOnlyFailsFast: without fallbacks a 403 keeps its
// old semantics — one attempt, immediate error, no invented retries.
func TestSingleEndpointReadOnlyFailsFast(t *testing.T) {
	follower := newFakeDaemon(t, "follower", 1, refuseReadOnly)
	c := NewWithOptions(follower.ts.URL, nil, instant(nil))
	_, err := c.Submit(context.Background(), server.SubmitRequest{
		From: 0, To: 1, VolumeBytes: 1e9, DeadlineS: 100, MaxRateBps: 1e9,
	})
	if !IsReadOnly(err) {
		t.Fatalf("err = %v, want read-only", err)
	}
	if n := len(follower.seenKeys()); n != 1 {
		t.Fatalf("single-endpoint client tried %d times on 403, want 1", n)
	}
}

// TestProbeCooldownCachesNegativeSweeps is the regression test for the
// rediscovery storm: a group whose members are all permanently fenced
// (read-only followers, no primary anywhere) used to trigger a full
// status-probe sweep on every failed request. The negative-result cache
// must swallow repeat sweeps until the cooldown lapses, then allow
// exactly one more.
func TestProbeCooldownCachesNegativeSweeps(t *testing.T) {
	var probes atomic.Int64
	follower := func() *httptest.Server {
		mux := http.NewServeMux()
		mux.HandleFunc("GET /v1/replication/status", func(w http.ResponseWriter, r *http.Request) {
			probes.Add(1)
			json.NewEncoder(w).Encode(server.ReplicationStatus{Role: "follower", Epoch: 3})
		})
		mux.HandleFunc("POST /v1/requests", refuseReadOnly)
		ts := httptest.NewServer(mux)
		t.Cleanup(ts.Close)
		return ts
	}
	a, b := follower(), follower()

	now := time.Unix(0, 0)
	var mu sync.Mutex
	opts := instant(nil)
	opts.MaxRetries = -1 // one attempt per call: sweeps map 1:1 to Submits
	opts.Now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	c := NewWithOptions(a.URL, nil, opts, b.URL)

	submit := func() {
		t.Helper()
		_, err := c.Submit(context.Background(), server.SubmitRequest{
			From: 0, To: 0, VolumeBytes: 1e9, MaxRateBps: 1e8, DeadlineS: 100,
		})
		if err == nil {
			t.Fatal("submit to an all-follower group succeeded")
		}
	}

	submit()
	after := probes.Load()
	if after == 0 {
		t.Fatal("first failure swept no endpoints")
	}
	// Within the cooldown: rotate blindly, no new probes.
	for i := 0; i < 5; i++ {
		submit()
	}
	if got := probes.Load(); got != after {
		t.Fatalf("probes during cooldown = %d, want frozen at %d", got, after)
	}
	// Past the cooldown: exactly one more sweep is allowed.
	mu.Lock()
	now = now.Add(defaultProbeCooldown + time.Millisecond)
	mu.Unlock()
	submit()
	if got := probes.Load(); got <= after || got > after+2 {
		t.Fatalf("probes after cooldown = %d, want one fresh sweep over 2 endpoints (was %d)", got, after)
	}
}
