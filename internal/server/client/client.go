// Package client is the typed Go client of the gridbwd HTTP API — the
// counterpart middleware links against instead of hand-rolling JSON.
// All calls take a context; cancelling it aborts the HTTP round trip.
//
// The client is failure-aware by default: every call gets a per-attempt
// deadline, transient failures (transport errors, 429, 502/503/504) are
// retried with exponential backoff and jitter, and Submit attaches an
// idempotency key so a retried submission can never book twice — the
// daemon answers the retry from its idempotency cache.
//
// Given more than one endpoint, the client is also failover-aware: when
// the active endpoint stops answering like a primary (connection failure,
// 403 read-only, a gateway error, or a fencing refusal), the client asks
// every endpoint for its replication status, re-targets the one that
// reports itself primary with the highest fencing epoch, and re-sends the
// identical request — same body, same idempotency key — so a submission
// that straddles a failover still books exactly once. Endpoint reports
// which daemon the client is currently talking to.
package client

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"gridbw/internal/server"
)

// Defaults for Options' zero values.
const (
	defaultHTTPTimeout   = 30 * time.Second
	defaultCallTimeout   = 10 * time.Second
	defaultMaxRetries    = 3
	defaultBaseBackoff   = 100 * time.Millisecond
	defaultMaxBackoff    = 2 * time.Second
	defaultProbeCooldown = 500 * time.Millisecond
)

// Options tunes the client's failure handling. The zero value means
// "sensible defaults"; explicit negatives disable a mechanism.
type Options struct {
	// CallTimeout bounds each attempt (not the whole retry sequence);
	// 0 means 10s, negative disables the per-attempt deadline.
	CallTimeout time.Duration
	// MaxRetries is how many times a transient failure is retried after
	// the first attempt; 0 means 3, negative disables retries.
	MaxRetries int
	// BaseBackoff and MaxBackoff shape the exponential backoff
	// (base·2^attempt capped at max, with up to 50% random jitter);
	// zeros mean 100ms and 2s.
	BaseBackoff, MaxBackoff time.Duration
	// Jitter returns a uniform [0,1) draw; nil uses a time-seeded
	// default. Tests inject a constant for determinism.
	Jitter func() float64
	// Sleep waits between attempts; nil sleeps on the real clock,
	// honoring ctx. Tests inject a recorder to run instantly.
	Sleep func(ctx context.Context, d time.Duration) error
	// ProbeCooldown is the negative-result cache of primary rediscovery:
	// after a probe sweep that finds no new primary, further sweeps are
	// skipped (the client just rotates blindly) until the cooldown lapses,
	// so one flapping or permanently-fenced endpoint cannot turn every
	// request into a full group probe. 0 means 500ms, negative disables
	// the cache.
	ProbeCooldown time.Duration
	// Now is the clock the probe cooldown reads; nil uses time.Now.
	// Tests inject a fake to step time deterministically.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.CallTimeout == 0 {
		o.CallTimeout = defaultCallTimeout
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = defaultMaxRetries
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = defaultBaseBackoff
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = defaultMaxBackoff
	}
	if o.Jitter == nil {
		o.Jitter = func() float64 {
			return float64(time.Now().UnixNano()%1000) / 1000
		}
	}
	if o.Sleep == nil {
		o.Sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		}
	}
	if o.ProbeCooldown == 0 {
		o.ProbeCooldown = defaultProbeCooldown
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Client talks to a gridbwd daemon — or, given fallback endpoints, to
// whichever member of a primary/standby pair currently is the primary.
type Client struct {
	hc   *http.Client
	opts Options

	// mu guards the endpoint list rotation; endpoints is set at
	// construction and never resized afterwards.
	mu        sync.Mutex
	endpoints []string
	cur       int
	// probeBlockUntil is the negative-result cache of rediscover: until
	// this instant, failed sweeps are not repeated (see
	// Options.ProbeCooldown).
	probeBlockUntil time.Time
}

// New returns a client for the daemon at base (e.g. "http://127.0.0.1:8080")
// with default failure handling. A nil hc uses an internal client with a
// 30s timeout — never http.DefaultClient, whose zero timeout would hang a
// call forever on a stuck daemon. Additional fallback endpoints make the
// client failover-aware: when base stops acting like a primary, the
// client re-discovers the primary among all endpoints and retries there.
func New(base string, hc *http.Client, fallbacks ...string) *Client {
	return NewWithOptions(base, hc, Options{}, fallbacks...)
}

// NewWithOptions returns a client with explicit failure handling.
func NewWithOptions(base string, hc *http.Client, opts Options, fallbacks ...string) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: defaultHTTPTimeout}
	}
	endpoints := make([]string, 0, 1+len(fallbacks))
	endpoints = append(endpoints, strings.TrimRight(base, "/"))
	for _, f := range fallbacks {
		endpoints = append(endpoints, strings.TrimRight(f, "/"))
	}
	return &Client{hc: hc, opts: opts.withDefaults(), endpoints: endpoints}
}

// Endpoint reports the endpoint the client currently targets — after a
// successful call, the daemon that answered it.
func (c *Client) Endpoint() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.endpoints[c.cur]
}

func (c *Client) multi() bool { return len(c.endpoints) > 1 }

// rotate moves to the next endpoint in order — the blind fallback when
// discovery cannot find a live primary either.
func (c *Client) rotate() {
	c.mu.Lock()
	c.cur = (c.cur + 1) % len(c.endpoints)
	c.mu.Unlock()
}

// setEndpoint re-targets the endpoint at index i.
func (c *Client) setEndpoint(i int) {
	c.mu.Lock()
	c.cur = i
	c.mu.Unlock()
}

// NewIdempotencyKey returns a fresh random submission key.
func NewIdempotencyKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform is broken; fall back to
		// a time-derived key rather than sending duplicate-prone calls.
		return fmt.Sprintf("t-%d", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// APIError is a non-2xx daemon answer.
type APIError struct {
	StatusCode int
	Message    string
	// RetryAfter is the daemon's backoff hint on 429 answers; zero
	// otherwise.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("gridbwd: HTTP %d: %s", e.StatusCode, e.Message)
}

// IsNotFound reports whether err is the daemon's 404 answer.
func IsNotFound(err error) bool {
	ae, ok := err.(*APIError)
	return ok && ae.StatusCode == http.StatusNotFound
}

// IsConflict reports whether err is the daemon's 409 answer (cancel of an
// already finished reservation).
func IsConflict(err error) bool {
	ae, ok := err.(*APIError)
	return ok && ae.StatusCode == http.StatusConflict
}

// IsOverloaded reports whether err is the daemon's 429 shed answer.
func IsOverloaded(err error) bool {
	ae, ok := err.(*APIError)
	return ok && ae.StatusCode == http.StatusTooManyRequests
}

// IsReadOnly reports whether err is the daemon's 403 answer — the daemon
// is a follower and refuses writes until promoted. Not retryable: the
// caller should redirect the write to the primary (or promote).
func IsReadOnly(err error) bool {
	ae, ok := err.(*APIError)
	return ok && ae.StatusCode == http.StatusForbidden
}

// retryable reports whether err is worth another attempt: transport
// failures and the transient HTTP answers (shed, gateway trouble).
func retryable(err error) bool {
	if ae, ok := err.(*APIError); ok {
		switch ae.StatusCode {
		case http.StatusTooManyRequests, http.StatusBadGateway,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return true
		}
		return false
	}
	// Anything that never produced an HTTP status is a transport-level
	// failure (dial refused, reset, attempt deadline).
	return err != nil
}

// failoverWorthy reports whether err suggests the targeted endpoint is no
// longer the primary (or no longer there at all), so a multi-endpoint
// client should re-discover before retrying: connection failures, the
// follower's 403 read-only refusal, gateway errors, and any answer shaped
// like a fencing refusal — a deposed primary talking about an epoch that
// outran it.
func failoverWorthy(err error) bool {
	if err == nil {
		return false
	}
	ae, ok := err.(*APIError)
	if !ok {
		return true // transport-level: the endpoint may be gone
	}
	switch ae.StatusCode {
	case http.StatusForbidden, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return strings.Contains(ae.Message, "fenced")
}

// backoff computes the wait before retry attempt (0-based), preferring
// the daemon's own Retry-After hint over the exponential schedule.
func (c *Client) backoff(attempt int, err error) time.Duration {
	if ae, ok := err.(*APIError); ok && ae.RetryAfter > 0 {
		return ae.RetryAfter
	}
	d := c.opts.BaseBackoff << uint(attempt)
	if d > c.opts.MaxBackoff || d <= 0 {
		d = c.opts.MaxBackoff
	}
	return d + time.Duration(c.opts.Jitter()*float64(d)/2)
}

// do runs one retrying call. The body is marshalled once and the same
// bytes re-sent per attempt, so every retry carries the complete request
// (including the same idempotency key). On a failover-worthy error a
// multi-endpoint client re-discovers the primary before the next attempt,
// which makes the error itself worth that attempt even when it is not
// transiently retryable (a 403 from a follower will not heal by waiting,
// but it will by moving).
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var blob []byte
	if body != nil {
		var err error
		if blob, err = json.Marshal(body); err != nil {
			return fmt.Errorf("gridbwd: encode request: %w", err)
		}
	}
	retries := c.opts.MaxRetries
	if retries < 0 {
		retries = 0
	}
	var err error
	for attempt := 0; ; attempt++ {
		err = c.attempt(ctx, c.Endpoint(), method, path, blob, out)
		if err == nil {
			return nil
		}
		moved := false
		if c.multi() && failoverWorthy(err) {
			moved = true
			c.rediscover(ctx)
		}
		if (!retryable(err) && !moved) || attempt >= retries {
			return err
		}
		if ctx.Err() != nil {
			return err
		}
		if serr := c.opts.Sleep(ctx, c.backoff(attempt, err)); serr != nil {
			return err
		}
	}
}

// rediscover probes every endpoint's replication status concurrently and
// re-targets the one that reports itself primary, preferring the highest
// fencing epoch — during a partition both sides may claim the role, and
// the higher epoch is the lineage whose writes are not fenced off. The
// sweep stops early only once a strict majority of the group's members
// have answered AND the best primary seen is at the answered group's
// maximum epoch: a majority of live answers none of which out-epochs the
// chosen primary means no fenced claimant can be hiding a newer lineage
// among them, while a fast answer from a deposed primary alone proves
// nothing — the slower, higher-epoch winner must still be waited for.
// Errors never count toward that majority (a refused dial says nothing
// about the group), so at worst the sweep drains every endpoint under
// the per-attempt timeout instead of settling on a stale lineage. When
// nothing answers as primary the client just rotates, so repeated
// retries still sweep the list.
func (c *Client) rediscover(ctx context.Context) {
	c.mu.Lock()
	endpoints := c.endpoints
	blocked := c.opts.ProbeCooldown > 0 && c.opts.Now().Before(c.probeBlockUntil)
	c.mu.Unlock()
	if blocked {
		// A sweep just failed to move us anywhere useful; probing the whole
		// group again this soon would only amplify one flapping endpoint's
		// errors into group-wide status traffic. Rotate blindly instead.
		c.rotate()
		return
	}
	type answer struct {
		idx int
		rs  server.ReplicationStatus
		err error
	}
	ch := make(chan answer, len(endpoints))
	for i, base := range endpoints {
		go func(i int, base string) {
			var rs server.ReplicationStatus
			err := c.attempt(ctx, base, http.MethodGet, "/v1/replication/status", nil, &rs)
			ch <- answer{i, rs, err}
		}(i, base)
	}
	majority := len(endpoints)/2 + 1
	best, bestEpoch := -1, uint64(0)
	answered, maxEpoch := 0, uint64(0)
	for n := 1; n <= len(endpoints); n++ {
		a := <-ch
		if a.err != nil {
			continue
		}
		answered++
		if a.rs.Epoch > maxEpoch {
			maxEpoch = a.rs.Epoch
		}
		if a.rs.Role == "primary" && (best == -1 || a.rs.Epoch > bestEpoch) {
			best, bestEpoch = a.idx, a.rs.Epoch
		}
		if answered >= majority && best >= 0 && bestEpoch >= maxEpoch {
			break
		}
	}
	c.mu.Lock()
	if best >= 0 && best != c.cur {
		// The sweep actually moved us to a different primary: a useful
		// answer, so the next failure may probe again immediately (fast
		// failover convergence is worth the traffic).
		c.cur = best
		c.mu.Unlock()
		return
	}
	// Negative result: no primary anywhere, or the sweep re-picked the
	// endpoint that just failed us (a flapping shard whose status page
	// still says primary). Cache it so the next failures within the
	// cooldown skip the group probe.
	if c.opts.ProbeCooldown > 0 {
		c.probeBlockUntil = c.opts.Now().Add(c.opts.ProbeCooldown)
	}
	if best < 0 {
		c.cur = (c.cur + 1) % len(c.endpoints)
	}
	c.mu.Unlock()
}

// attempt runs one HTTP round trip against base under the per-attempt
// deadline.
// apiErrorMessage extracts the error text of a non-2xx response: the JSON
// error envelope when present, otherwise the raw body (a 409 cancel
// answer carries the reservation, not an envelope), otherwise the status.
func apiErrorMessage(resp *http.Response) string {
	var apiErr server.ErrorJSON
	msg := resp.Status
	blob, _ := io.ReadAll(io.LimitReader(resp.Body, 64*1024))
	if json.Unmarshal(blob, &apiErr) == nil && apiErr.Error != "" {
		msg = apiErr.Error
	} else if len(blob) > 0 {
		msg = strings.TrimSpace(string(blob))
	}
	return msg
}

func (c *Client) attempt(ctx context.Context, base, method, path string, blob []byte, out any) error {
	if c.opts.CallTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.opts.CallTimeout)
		defer cancel()
	}
	var rd io.Reader
	if blob != nil {
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, base+path, rd)
	if err != nil {
		return fmt.Errorf("gridbwd: %w", err)
	}
	if blob != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("gridbwd: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		ae := &APIError{StatusCode: resp.StatusCode, Message: apiErrorMessage(resp)}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
				ae.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return ae
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("gridbwd: decode response: %w", err)
	}
	return nil
}

// Submit posts a reservation request and returns the daemon's decision.
// A rejection is a normal answer (Accepted == false), not an error. If
// req carries no idempotency key, one is generated, so the retry loop
// (and any caller-level retry of the returned error) can never book the
// same submission twice.
func (c *Client) Submit(ctx context.Context, req server.SubmitRequest) (server.ReservationJSON, error) {
	if req.IdempotencyKey == "" {
		req.IdempotencyKey = NewIdempotencyKey()
	}
	var out server.ReservationJSON
	err := c.do(ctx, http.MethodPost, "/v1/requests", req, &out)
	return out, err
}

// SubmitBatch posts many reservation requests decided in one pass and
// returns one result per input, in input order. Items missing an
// idempotency key get a generated one (on a copy — the caller's slice is
// not modified), so the retry loop re-sends the identical batch and the
// daemon answers already-decided items from its idempotency cache instead
// of booking them twice.
func (c *Client) SubmitBatch(ctx context.Context, reqs []server.SubmitRequest) ([]server.BatchItemJSON, error) {
	keyed := make([]server.SubmitRequest, len(reqs))
	for i, req := range reqs {
		if req.IdempotencyKey == "" {
			req.IdempotencyKey = NewIdempotencyKey()
		}
		keyed[i] = req
	}
	var out server.BatchResponse
	if err := c.do(ctx, http.MethodPost, "/v1/batch", server.BatchRequest{Requests: keyed}, &out); err != nil {
		return nil, err
	}
	if len(out.Results) != len(reqs) {
		return nil, fmt.Errorf("gridbwd: batch answered %d results for %d requests", len(out.Results), len(reqs))
	}
	return out.Results, nil
}

// Get looks up one reservation.
func (c *Client) Get(ctx context.Context, id int) (server.ReservationJSON, error) {
	var out server.ReservationJSON
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/requests/%d", id), nil, &out)
	return out, err
}

// Cancel revokes a live reservation and returns its final record.
// Cancels are not retried blindly: a cancel is idempotent on the daemon
// (a second cancel answers 409 with the final record), so retries are
// safe, and the usual transient classification applies.
func (c *Client) Cancel(ctx context.Context, id int) (server.ReservationJSON, error) {
	var out server.ReservationJSON
	err := c.do(ctx, http.MethodDelete, fmt.Sprintf("/v1/requests/%d", id), nil, &out)
	return out, err
}

// HoldReserve places one side of a cross-shard two-phase admission. The
// call retries and fails over like any write; the hold key makes retries
// idempotent on the daemon.
func (c *Client) HoldReserve(ctx context.Context, req server.HoldReserveJSON) (server.HoldReserveResponseJSON, error) {
	var out server.HoldReserveResponseJSON
	err := c.do(ctx, http.MethodPost, "/v1/reserve", req, &out)
	return out, err
}

// HoldConfirm commits a held reservation. A non-zero epoch must match the
// shard's current fencing epoch (the one HoldReserve answered); a 403
// after the built-in failover retries means the shard changed lineage
// mid-hold — refresh the epoch via Replication and confirm once more, or
// abort both sides.
func (c *Client) HoldConfirm(ctx context.Context, hold string, epoch uint64) (server.HoldStateJSON, error) {
	var out server.HoldStateJSON
	err := c.do(ctx, http.MethodPost, "/v1/confirm", server.HoldRefJSON{Hold: hold, Epoch: epoch}, &out)
	return out, err
}

// HoldAbort rolls a hold back by key. Always safe: aborting an unknown or
// already-aborted hold is a recorded no-op on the daemon.
func (c *Client) HoldAbort(ctx context.Context, hold string) (server.HoldStateJSON, error) {
	var out server.HoldStateJSON
	err := c.do(ctx, http.MethodPost, "/v1/abort", server.HoldRefJSON{Hold: hold}, &out)
	return out, err
}

// HoldAbortByID aborts the hold backing an ingress-side local request ID —
// the cancel path of a cross-shard reservation. The answer names the hold
// key and the peer point so the caller can abort the other side too.
func (c *Client) HoldAbortByID(ctx context.Context, id int) (server.HoldStateJSON, error) {
	var out server.HoldStateJSON
	err := c.do(ctx, http.MethodPost, "/v1/abort", server.HoldRefJSON{ID: &id}, &out)
	return out, err
}

// Status fetches the live control-plane view.
func (c *Client) Status(ctx context.Context) (server.StatusJSON, error) {
	var out server.StatusJSON
	err := c.do(ctx, http.MethodGet, "/v1/status", nil, &out)
	return out, err
}

// Health fetches the readiness probe. A draining daemon answers 503,
// surfaced as an *APIError. Health is never retried — a probe wants the
// current truth, not an eventually-friendly answer.
func (c *Client) Health(ctx context.Context) (server.HealthJSON, error) {
	var out server.HealthJSON
	err := c.attempt(ctx, c.Endpoint(), http.MethodGet, "/v1/healthz", nil, &out)
	return out, err
}

// Replication fetches the daemon's replication view: role, fencing
// epoch, cursor, and lag. Works on primaries and followers alike.
func (c *Client) Replication(ctx context.Context) (server.ReplicationStatus, error) {
	var out server.ReplicationStatus
	err := c.do(ctx, http.MethodGet, "/v1/replication/status", nil, &out)
	return out, err
}

// Promote turns a following daemon into a primary. Idempotent: promoting
// a daemon that is already primary answers its current role and epoch.
// Not retried — failover tooling wants to observe each attempt.
func (c *Client) Promote(ctx context.Context) (server.PromoteJSON, error) {
	var out server.PromoteJSON
	err := c.attempt(ctx, c.Endpoint(), http.MethodPost, "/v1/replication/promote", nil, &out)
	return out, err
}

// Metrics fetches the metrics counters in their JSON form.
func (c *Client) Metrics(ctx context.Context) (server.MetricsJSON, error) {
	var out server.MetricsJSON
	err := c.do(ctx, http.MethodGet, "/v1/metricsz", nil, &out)
	return out, err
}

// Metricsz fetches the Prometheus-format metrics page verbatim. The
// per-attempt deadline applies to the whole exchange including the body
// read, so a stalled scrape (slow-loris daemon, wedged proxy) returns
// an error instead of hanging the poller.
func (c *Client) Metricsz(ctx context.Context) (string, error) {
	if c.opts.CallTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.opts.CallTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Endpoint()+"/v1/metricsz", nil)
	if err != nil {
		return "", fmt.Errorf("gridbwd: %w", err)
	}
	// The daemon negotiates the metrics encoding; ask for the text form.
	req.Header.Set("Accept", "text/plain")
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", fmt.Errorf("gridbwd: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{StatusCode: resp.StatusCode, Message: resp.Status}
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("gridbwd: %w", err)
	}
	return string(blob), nil
}
