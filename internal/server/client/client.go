// Package client is the typed Go client of the gridbwd HTTP API — the
// counterpart middleware links against instead of hand-rolling JSON.
// All calls take a context; cancelling it aborts the HTTP round trip.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"gridbw/internal/server"
)

// Client talks to one gridbwd daemon.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for the daemon at base (e.g. "http://127.0.0.1:8080").
// A nil hc uses http.DefaultClient.
func New(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// APIError is a non-2xx daemon answer.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("gridbwd: HTTP %d: %s", e.StatusCode, e.Message)
}

// IsNotFound reports whether err is the daemon's 404 answer.
func IsNotFound(err error) bool {
	ae, ok := err.(*APIError)
	return ok && ae.StatusCode == http.StatusNotFound
}

// IsConflict reports whether err is the daemon's 409 answer (cancel of an
// already finished reservation).
func IsConflict(err error) bool {
	ae, ok := err.(*APIError)
	return ok && ae.StatusCode == http.StatusConflict
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("gridbwd: encode request: %w", err)
		}
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("gridbwd: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("gridbwd: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var apiErr server.ErrorJSON
		msg := resp.Status
		blob, _ := io.ReadAll(io.LimitReader(resp.Body, 64*1024))
		if json.Unmarshal(blob, &apiErr) == nil && apiErr.Error != "" {
			msg = apiErr.Error
		} else if len(blob) > 0 {
			// A 409 cancel answer carries the reservation, not an error
			// envelope; surface the raw body.
			msg = strings.TrimSpace(string(blob))
		}
		return &APIError{StatusCode: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("gridbwd: decode response: %w", err)
	}
	return nil
}

// Submit posts a reservation request and returns the daemon's decision.
// A rejection is a normal answer (Accepted == false), not an error.
func (c *Client) Submit(ctx context.Context, req server.SubmitRequest) (server.ReservationJSON, error) {
	var out server.ReservationJSON
	err := c.do(ctx, http.MethodPost, "/v1/requests", req, &out)
	return out, err
}

// Get looks up one reservation.
func (c *Client) Get(ctx context.Context, id int) (server.ReservationJSON, error) {
	var out server.ReservationJSON
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/requests/%d", id), nil, &out)
	return out, err
}

// Cancel revokes a live reservation and returns its final record.
func (c *Client) Cancel(ctx context.Context, id int) (server.ReservationJSON, error) {
	var out server.ReservationJSON
	err := c.do(ctx, http.MethodDelete, fmt.Sprintf("/v1/requests/%d", id), nil, &out)
	return out, err
}

// Status fetches the live control-plane view.
func (c *Client) Status(ctx context.Context) (server.StatusJSON, error) {
	var out server.StatusJSON
	err := c.do(ctx, http.MethodGet, "/v1/status", nil, &out)
	return out, err
}

// Metricsz fetches the Prometheus-format metrics page verbatim.
func (c *Client) Metricsz(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/metricsz", nil)
	if err != nil {
		return "", fmt.Errorf("gridbwd: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", fmt.Errorf("gridbwd: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{StatusCode: resp.StatusCode, Message: resp.Status}
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("gridbwd: %w", err)
	}
	return string(blob), nil
}
