package client

// Binary batch support: SubmitBatchBinary speaks the length-prefixed
// codec of POST /v1/batch (see server/wire.go) through the same retry,
// failover and idempotency machinery as the JSON methods. The request is
// framed once and the identical bytes re-sent per attempt.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"gridbw/internal/server"
)

// wireFromSubmitRequest resolves the dual numeric/string quantity fields
// of the JSON request shape into a binary record (server.SubmitRequest.Wire
// with this package's error prefix). Relative times stay relative on the
// wire — the server resolves them against its own clock, exactly like
// start_in / deadline_in.
func wireFromSubmitRequest(req server.SubmitRequest) (server.WireSubmission, error) {
	ws, err := req.Wire()
	if err != nil {
		return ws, fmt.Errorf("gridbwd: %w", err)
	}
	return ws, nil
}

// SubmitBatchBinary is SubmitBatch over the binary codec: many requests
// decided in one pass, one result per input in input order, with the
// same generated-idempotency-key retry safety. Results come back in the
// JSON item shape so callers classify them identically under either
// codec; the human-readable Rate string is empty (RateBps is set).
func (c *Client) SubmitBatchBinary(ctx context.Context, reqs []server.SubmitRequest) ([]server.BatchItemJSON, error) {
	subs := make([]server.WireSubmission, len(reqs))
	for i, req := range reqs {
		ws, err := wireFromSubmitRequest(req)
		if err != nil {
			return nil, fmt.Errorf("request %d: %w", i, err)
		}
		if ws.IdempotencyKey == "" {
			ws.IdempotencyKey = NewIdempotencyKey()
		}
		subs[i] = ws
	}
	blob := server.AppendBinaryBatchRequest(nil, subs)
	var out []server.BatchItemJSON
	err := c.doRaw(ctx, "/v1/batch", server.BinaryBatchContentType, blob, func(body []byte) error {
		var derr error
		out, derr = server.DecodeBinaryBatchResponse(body)
		return derr
	})
	if err != nil {
		return nil, err
	}
	if len(out) != len(reqs) {
		return nil, fmt.Errorf("gridbwd: batch answered %d results for %d requests", len(out), len(reqs))
	}
	return out, nil
}

// SubmitBatchWire is SubmitBatchBinary for callers that already hold
// decoded wire records — the router re-shards incoming binary batches
// without a detour through the JSON request shape. Records missing an
// idempotency key get a generated one (subs is modified in place, so
// retries at any layer re-send the same keys).
func (c *Client) SubmitBatchWire(ctx context.Context, subs []server.WireSubmission) ([]server.BatchItemJSON, error) {
	for i := range subs {
		if subs[i].IdempotencyKey == "" {
			subs[i].IdempotencyKey = NewIdempotencyKey()
		}
	}
	blob := server.AppendBinaryBatchRequest(nil, subs)
	var out []server.BatchItemJSON
	err := c.doRaw(ctx, "/v1/batch", server.BinaryBatchContentType, blob, func(body []byte) error {
		var derr error
		out, derr = server.DecodeBinaryBatchResponse(body)
		return derr
	})
	if err != nil {
		return nil, err
	}
	if len(out) != len(subs) {
		return nil, fmt.Errorf("gridbwd: batch answered %d results for %d requests", len(out), len(subs))
	}
	return out, nil
}

// doRaw is do for non-JSON bodies: the same retry/failover loop around
// attemptRaw, re-sending the identical pre-encoded blob per attempt.
func (c *Client) doRaw(ctx context.Context, path, contentType string, blob []byte, decode func([]byte) error) error {
	retries := c.opts.MaxRetries
	if retries < 0 {
		retries = 0
	}
	var err error
	for attempt := 0; ; attempt++ {
		err = c.attemptRaw(ctx, c.Endpoint(), path, contentType, blob, decode)
		if err == nil {
			return nil
		}
		moved := false
		if c.multi() && failoverWorthy(err) {
			moved = true
			c.rediscover(ctx)
		}
		if (!retryable(err) && !moved) || attempt >= retries {
			return err
		}
		if ctx.Err() != nil {
			return err
		}
		if serr := c.opts.Sleep(ctx, c.backoff(attempt, err)); serr != nil {
			return err
		}
	}
}

// attemptRaw runs one POST of a pre-encoded body under the per-attempt
// deadline. Error responses still carry the JSON envelope and map to the
// same APIError the JSON methods surface.
func (c *Client) attemptRaw(ctx context.Context, base, path, contentType string, blob []byte, decode func([]byte) error) error {
	if c.opts.CallTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.opts.CallTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(blob))
	if err != nil {
		return fmt.Errorf("gridbwd: %w", err)
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("gridbwd: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		ae := &APIError{StatusCode: resp.StatusCode, Message: apiErrorMessage(resp)}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
				ae.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return ae
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("gridbwd: read response: %w", err)
	}
	if err := decode(body); err != nil {
		return fmt.Errorf("gridbwd: decode response: %w", err)
	}
	return nil
}
