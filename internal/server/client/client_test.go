package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"gridbw/internal/server"
	"gridbw/internal/units"
)

// instant returns Options that never sleep on the real clock and record
// every backoff the retry loop chose.
func instant(backoffs *[]time.Duration) Options {
	return Options{
		Jitter: func() float64 { return 0 },
		Sleep: func(ctx context.Context, d time.Duration) error {
			if backoffs != nil {
				*backoffs = append(*backoffs, d)
			}
			return ctx.Err()
		},
	}
}

// TestDefaultTimeoutsNonZero: a nil *http.Client must not degrade to
// http.DefaultClient, whose zero timeout hangs forever on a stuck daemon.
func TestDefaultTimeoutsNonZero(t *testing.T) {
	c := New("http://127.0.0.1:0", nil)
	if c.hc == http.DefaultClient {
		t.Fatal("nil hc degraded to http.DefaultClient")
	}
	if c.hc.Timeout <= 0 {
		t.Fatalf("default HTTP client timeout = %v, want > 0", c.hc.Timeout)
	}
	if c.opts.CallTimeout <= 0 {
		t.Fatalf("default per-call timeout = %v, want > 0", c.opts.CallTimeout)
	}
}

// TestRetriesTransient503: two 503 answers then success — the call
// succeeds after backing off twice.
func TestRetriesTransient503(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":"warming up"}`, http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"now_s":1,"policy":"minbw"}`))
	}))
	defer ts.Close()

	var backoffs []time.Duration
	c := NewWithOptions(ts.URL, nil, instant(&backoffs))
	st, err := c.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Policy != "minbw" {
		t.Errorf("policy = %q", st.Policy)
	}
	if calls.Load() != 3 {
		t.Errorf("calls = %d, want 3", calls.Load())
	}
	if len(backoffs) != 2 {
		t.Fatalf("backoffs = %v, want 2 waits", backoffs)
	}
	if backoffs[1] <= backoffs[0] {
		t.Errorf("backoff not growing: %v", backoffs)
	}
}

// TestHonorsRetryAfter: a 429 with Retry-After overrides the exponential
// schedule.
func TestHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "7")
			http.Error(w, `{"error":"overloaded"}`, http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"now_s":1}`))
	}))
	defer ts.Close()

	var backoffs []time.Duration
	c := NewWithOptions(ts.URL, nil, instant(&backoffs))
	if _, err := c.Status(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(backoffs) != 1 || backoffs[0] != 7*time.Second {
		t.Errorf("backoffs = %v, want [7s] from Retry-After", backoffs)
	}
}

// TestNoRetryOnClientError: a 400 is the caller's bug; retrying would
// just repeat it.
func TestNoRetryOnClientError(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"bad"}`, http.StatusBadRequest)
	}))
	defer ts.Close()

	c := NewWithOptions(ts.URL, nil, instant(nil))
	_, err := c.Status(context.Background())
	if err == nil {
		t.Fatal("expected error")
	}
	if calls.Load() != 1 {
		t.Errorf("calls = %d, want 1 (no retries on 4xx)", calls.Load())
	}
}

// TestRetryLimitExhausted: a daemon that never recovers yields the last
// error after MaxRetries extra attempts.
func TestRetryLimitExhausted(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"down"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := NewWithOptions(ts.URL, nil, func() Options {
		o := instant(nil)
		o.MaxRetries = 2
		return o
	}())
	_, err := c.Status(context.Background())
	ae, ok := err.(*APIError)
	if !ok || ae.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("err = %v", err)
	}
	if calls.Load() != 3 {
		t.Errorf("calls = %d, want 1 + 2 retries", calls.Load())
	}
}

// TestSubmitRetryNeverBooksTwice drives a retried Submit against a real
// server: the first answer is dropped on the floor (simulating a lost
// response), the retry carries the same auto-generated idempotency key,
// and the daemon books exactly once.
func TestSubmitRetryNeverBooksTwice(t *testing.T) {
	srv, err := server.New(server.Config{
		Ingress: []units.Bandwidth{units.GBps},
		Egress:  []units.Bandwidth{units.GBps},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// failFirst drops the first response after the server has fully
	// processed it — the client sees a transport error and retries.
	var calls atomic.Int64
	inner := srv.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && calls.Add(1) == 1 {
			rec := httptest.NewRecorder()
			inner.ServeHTTP(rec, r)     // decision made and logged...
			panic(http.ErrAbortHandler) // ...but the answer never leaves
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	c := NewWithOptions(ts.URL, nil, instant(nil))
	dec, err := c.Submit(context.Background(), server.SubmitRequest{
		From: 0, To: 0,
		VolumeBytes: 1e9, MaxRateBps: 1e8, DeadlineS: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Accepted {
		t.Fatalf("decision = %+v", dec)
	}
	st := srv.Status()
	if st.Stats.Accepted != 1 {
		t.Errorf("accepted = %d, want exactly 1 booking across the retry", st.Stats.Accepted)
	}
	if st.Stats.IdempotentHits != 1 {
		t.Errorf("idempotent hits = %d, want 1 (the retry)", st.Stats.IdempotentHits)
	}
	if len(srv.LiveReservations()) != 1 {
		t.Errorf("live reservations = %d, want 1", len(srv.LiveReservations()))
	}
}

// TestIdempotencyKeyStable: an explicit key is preserved, a missing one
// is filled in.
func TestIdempotencyKeyStable(t *testing.T) {
	var seen []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var body server.SubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			t.Error(err)
		}
		seen = append(seen, body.IdempotencyKey)
		w.Write([]byte(`{"id":0,"accepted":true,"state":"active"}`))
	}))
	defer ts.Close()

	c := NewWithOptions(ts.URL, nil, instant(nil))
	ctx := context.Background()
	if _, err := c.Submit(ctx, server.SubmitRequest{IdempotencyKey: "fixed"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(ctx, server.SubmitRequest{}); err != nil {
		t.Fatal(err)
	}
	if seen[0] != "fixed" {
		t.Errorf("explicit key overwritten: %q", seen[0])
	}
	if seen[1] == "" {
		t.Error("no key auto-generated")
	}
	if k := NewIdempotencyKey(); k == NewIdempotencyKey() {
		t.Errorf("generated keys collide: %q", k)
	}
}

// TestSubmitBatchRetryNeverBooksTwice: a dropped batch response is
// retried wholesale, and every item answers from the idempotency cache —
// the daemon books each submission exactly once.
func TestSubmitBatchRetryNeverBooksTwice(t *testing.T) {
	srv, err := server.New(server.Config{
		Ingress: []units.Bandwidth{units.GBps, units.GBps},
		Egress:  []units.Bandwidth{units.GBps, units.GBps},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var calls atomic.Int64
	inner := srv.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && calls.Add(1) == 1 {
			rec := httptest.NewRecorder()
			inner.ServeHTTP(rec, r)     // batch decided and logged...
			panic(http.ErrAbortHandler) // ...but the answer never leaves
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	c := NewWithOptions(ts.URL, nil, instant(nil))
	results, err := c.SubmitBatch(context.Background(), []server.SubmitRequest{
		{From: 0, To: 1, VolumeBytes: 1e9, MaxRateBps: 1e8, DeadlineS: 100},
		{From: 1, To: 0, VolumeBytes: 1e9, MaxRateBps: 1e8, DeadlineS: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	for i, res := range results {
		if res.Error != "" || res.Reservation == nil || !res.Reservation.Accepted {
			t.Fatalf("item %d = %+v", i, res)
		}
	}
	st := srv.Status()
	if st.Stats.Accepted != 2 {
		t.Errorf("accepted = %d, want exactly 2 bookings across the retry", st.Stats.Accepted)
	}
	if st.Stats.IdempotentHits != 2 {
		t.Errorf("idempotent hits = %d, want 2 (the retried batch)", st.Stats.IdempotentHits)
	}
	if n := len(srv.LiveReservations()); n != 2 {
		t.Errorf("live reservations = %d, want 2", n)
	}
}
