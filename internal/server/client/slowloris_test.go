package client

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gridbw/internal/chaosnet"
)

// A slow-loris daemon (or a wedged middlebox) answers the scrape, sends
// part of the body, then stops without closing the connection. Every
// client call must come back within its per-attempt deadline anyway —
// including Metricsz, whose body read happens outside do().

func stallingMetricsz(t *testing.T, stallAfter int64) (*chaosnet.Proxy, func()) {
	t.Helper()
	page := "# HELP gridbwd_up 1 means serving\ngridbwd_up 1\n" +
		strings.Repeat("gridbwd_filler_total 12345\n", 200)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		w.Write([]byte(page))
	}))
	proxy, err := chaosnet.New("loris", "127.0.0.1:0", strings.TrimPrefix(ts.URL, "http://"), 1)
	if err != nil {
		ts.Close()
		t.Fatal(err)
	}
	if stallAfter > 0 {
		// Big enough for the request line and headers to pass untouched;
		// the stall lands mid-body on the way back.
		proxy.SetRules(chaosnet.Rules{StallAfterBytes: stallAfter})
	}
	return proxy, func() {
		proxy.Close()
		ts.Close()
	}
}

func TestMetricszDeadlineSurvivesSlowLoris(t *testing.T) {
	proxy, cleanup := stallingMetricsz(t, 700)
	defer cleanup()

	cl := NewWithOptions(proxy.URL(), nil, Options{
		CallTimeout: 250 * time.Millisecond,
		MaxRetries:  -1,
	})
	start := time.Now()
	_, err := cl.Metricsz(t.Context())
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Metricsz returned cleanly through a stalled proxy")
	}
	if elapsed > 3*time.Second {
		t.Fatalf("Metricsz took %v against a slow-loris peer; the per-attempt deadline did not bound the body read", elapsed)
	}
}

func TestMetricszHealthyThroughProxy(t *testing.T) {
	proxy, cleanup := stallingMetricsz(t, 0)
	defer cleanup()

	cl := NewWithOptions(proxy.URL(), nil, Options{CallTimeout: 5 * time.Second, MaxRetries: -1})
	page, err := cl.Metricsz(t.Context())
	if err != nil {
		t.Fatalf("healthy scrape: %v", err)
	}
	if !strings.Contains(page, "gridbwd_up 1") {
		t.Fatalf("scrape lost content: %q", page[:min(len(page), 80)])
	}
}
