package server_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gridbw/internal/alloc"
	"gridbw/internal/request"
	"gridbw/internal/server"
	"gridbw/internal/server/client"
	"gridbw/internal/trace"
	"gridbw/internal/units"
)

// fakeClock is a manually advanced wall clock shared by a server and its
// test, so expiry is deterministic without sleeping.
type fakeClock struct{ ns atomic.Int64 }

func (c *fakeClock) now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *fakeClock) advance(d time.Duration) { c.ns.Add(int64(d)) }

func newTestServer(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func uniformConfig(clk *fakeClock) server.Config {
	cfg := server.Config{
		Ingress: []units.Bandwidth{1 * units.GBps, 1 * units.GBps},
		Egress:  []units.Bandwidth{1 * units.GBps, 1 * units.GBps},
	}
	if clk != nil {
		cfg.Clock = clk.now
	}
	return cfg
}

// TestE2ELifecycle drives the full accepted-reservation lifecycle through
// the HTTP API: submit → accepted with MinRate ≤ bw ≤ MaxRate → visible in
// /v1/status → expires at τ(r) → capacity returned.
func TestE2ELifecycle(t *testing.T) {
	clk := &fakeClock{}
	s := newTestServer(t, uniformConfig(clk))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := client.New(ts.URL, ts.Client())
	ctx := context.Background()

	// 100 GB in a 400 s window at up to 1 GB/s: MinRate is 250 MB/s.
	d, err := c.Submit(ctx, server.SubmitRequest{
		From: 0, To: 1, VolumeBytes: 100e9, DeadlineS: 400, MaxRateBps: 1e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accepted {
		t.Fatalf("rejected: %s", d.Reason)
	}
	minRate, maxRate := 100e9/400.0, 1e9
	if d.RateBps < minRate*(1-units.Eps) || d.RateBps > maxRate*(1+units.Eps) {
		t.Errorf("granted rate %v outside [MinRate %v, MaxRate %v]", d.RateBps, minRate, maxRate)
	}
	if d.State != string(server.StateActive) {
		t.Errorf("state = %q, want active", d.State)
	}
	if moved := d.RateBps * (d.TauS - d.SigmaS); !units.ApproxEq(moved, 100e9) {
		t.Errorf("grant moves %v bytes, want 1e11", moved)
	}

	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Active != 1 || st.Accepted != 1 {
		t.Errorf("status after accept: %+v", st)
	}
	var usedIn0 float64
	for _, p := range st.Points {
		if p.Dir == "ingress" && p.Point == 0 {
			usedIn0 = p.UsedBps
		}
	}
	if !units.ApproxEq(usedIn0, d.RateBps) {
		t.Errorf("ingress 0 used = %v, want %v", usedIn0, d.RateBps)
	}

	// Past τ(r) the grant expires and the capacity comes back.
	clk.advance(time.Duration(d.TauS+1) * time.Second)
	got, err := c.Get(ctx, d.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != string(server.StateExpired) {
		t.Errorf("state after τ = %q, want expired", got.State)
	}
	st, err = c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Active != 0 || st.Expired != 1 {
		t.Errorf("status after expiry: %+v", st)
	}
	for _, p := range st.Points {
		if p.UsedBps != 0 {
			t.Errorf("%s %d still holds %v after expiry", p.Dir, p.Point, p.UsedBps)
		}
	}

	// The freed point admits a full-rate transfer again.
	d2, err := c.Submit(ctx, server.SubmitRequest{
		From: 0, To: 1, Volume: "100GB", DeadlineIn: "100s", MaxRate: "1GB/s",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Accepted {
		t.Errorf("post-expiry submission rejected: %s", d2.Reason)
	}

	// /v1/metricsz reflects the lifetime counters.
	page, err := c.Metricsz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"gridbwd_requests_submitted_total 2",
		"gridbwd_requests_accepted_total 2",
		"gridbwd_reservations_expired_total 1",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("metricsz missing %q:\n%s", want, page)
		}
	}
}

// TestBookAheadRigid books a rigid future rectangle, rejects a colliding
// one, and re-admits it after cancellation frees the window.
func TestBookAheadRigid(t *testing.T) {
	clk := &fakeClock{}
	s := newTestServer(t, uniformConfig(clk))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := client.New(ts.URL, ts.Client())
	ctx := context.Background()

	// 100 GB over exactly [1000, 1100] at 1 GB/s: MinRate = MaxRate.
	rigid := server.SubmitRequest{
		From: 0, To: 0, VolumeBytes: 100e9,
		NotBeforeS: 1000, DeadlineS: 1100, MaxRateBps: 1e9,
	}
	d, err := c.Submit(ctx, rigid)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accepted || d.State != string(server.StateBooked) {
		t.Fatalf("book-ahead decision = %+v", d)
	}
	if d.SigmaS != 1000 || d.TauS != 1100 {
		t.Errorf("booked window [%v, %v], want [1000, 1100]", d.SigmaS, d.TauS)
	}

	// The same rectangle again saturates ingress 0 in the future.
	d2, err := c.Submit(ctx, rigid)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Accepted {
		t.Error("colliding book-ahead was accepted")
	}

	// Cancelling the booking frees the window for rebooking.
	if _, err := c.Cancel(ctx, d.ID); err != nil {
		t.Fatal(err)
	}
	d3, err := c.Submit(ctx, rigid)
	if err != nil {
		t.Fatal(err)
	}
	if !d3.Accepted {
		t.Errorf("rebooking after cancel rejected: %s", d3.Reason)
	}
}

func TestHTTPErrorPaths(t *testing.T) {
	s := newTestServer(t, uniformConfig(nil))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := client.New(ts.URL, ts.Client())
	ctx := context.Background()

	// Malformed JSON body.
	resp, err := ts.Client().Post(ts.URL+"/v1/requests", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: HTTP %d, want 400", resp.StatusCode)
	}

	// Conflicting dual fields and bad unit strings.
	for _, req := range []server.SubmitRequest{
		{From: 0, To: 0, VolumeBytes: 1e9, Volume: "1GB", DeadlineS: 10, MaxRateBps: 1e9},
		{From: 0, To: 0, Volume: "1 parsec", DeadlineS: 10, MaxRateBps: 1e9},
		{From: 9, To: 0, VolumeBytes: 1e9, DeadlineS: 10, MaxRateBps: 1e9},
		{From: 0, To: 0, VolumeBytes: -1, DeadlineS: 10, MaxRateBps: 1e9},
	} {
		if _, err := c.Submit(ctx, req); err == nil {
			t.Errorf("submission %+v did not error", req)
		}
	}

	// Unknown and malformed IDs.
	if _, err := c.Get(ctx, 999); !client.IsNotFound(err) {
		t.Errorf("Get(999) = %v, want 404", err)
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/requests/zzz", nil)
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id: HTTP %d, want 400", resp.StatusCode)
	}

	// Double cancel conflicts.
	d, err := c.Submit(ctx, server.SubmitRequest{From: 0, To: 0, VolumeBytes: 1e9, DeadlineS: 100, MaxRateBps: 1e9})
	if err != nil || !d.Accepted {
		t.Fatalf("seed submission: %v %+v", err, d)
	}
	if _, err := c.Cancel(ctx, d.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(ctx, d.ID); !client.IsConflict(err) {
		t.Errorf("double cancel = %v, want 409", err)
	}

	// Domain rejections are 200 answers, not errors.
	dr, err := c.Submit(ctx, server.SubmitRequest{From: 0, To: 0, VolumeBytes: 1e12, DeadlineS: 10, MaxRateBps: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if dr.Accepted || dr.Reason == "" {
		t.Errorf("infeasible submission = %+v, want reject with reason", dr)
	}

	// A closed server answers 503.
	s.Close()
	if _, err := c.Submit(ctx, server.SubmitRequest{From: 0, To: 0, VolumeBytes: 1e9, DeadlineS: 10, MaxRateBps: 1e9}); err == nil {
		t.Error("submit after Close did not error")
	} else if ae, ok := err.(*client.APIError); !ok || ae.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit after Close = %v, want 503", err)
	}
}

// TestSnapshotRestoreRoundTrip proves a restarted daemon resumes with the
// exact ledger occupancy: the restored snapshot equals the original, and
// pending expiries still fire.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	clk := &fakeClock{}
	s := newTestServer(t, uniformConfig(clk))

	// A mix: an active flexible transfer, a booked rigid rectangle, a
	// rejection and a cancellation, so every counter is non-zero.
	d1, err := s.Submit(server.Submission{From: 0, To: 1, Volume: 100 * units.GB, Deadline: 400, MaxRate: 1 * units.GBps})
	if err != nil || !d1.Accepted {
		t.Fatalf("flexible: %v %+v", err, d1)
	}
	d2, err := s.Submit(server.Submission{From: 1, To: 0, Volume: 100 * units.GB, NotBefore: 1000, Deadline: 1100, MaxRate: 1 * units.GBps})
	if err != nil || !d2.Accepted {
		t.Fatalf("rigid booking: %v %+v", err, d2)
	}
	if d, err := s.Submit(server.Submission{From: 0, To: 1, Volume: 1 * units.TB, Deadline: 10, MaxRate: 1 * units.GBps}); err != nil || d.Accepted {
		t.Fatalf("infeasible: %v %+v", err, d)
	}
	d4, err := s.Submit(server.Submission{From: 1, To: 1, Volume: 1 * units.GB, Deadline: 500, MaxRate: 100 * units.MBps})
	if err != nil || !d4.Accepted {
		t.Fatalf("cancel seed: %v %+v", err, d4)
	}
	if _, err := s.Cancel(d4.ID); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.String()
	snap, err := server.ReadSnapshot(strings.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	restored, err := server.NewFromSnapshot(snap, server.Config{Clock: clk.now})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if err := restored.VerifyInvariant(); err != nil {
		t.Fatal(err)
	}

	// Occupancy is preserved exactly: the restored snapshot is identical.
	var buf2 bytes.Buffer
	if err := restored.WriteSnapshot(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != blob {
		t.Errorf("snapshot drifted across restore:\n--- before ---\n%s\n--- after ---\n%s", blob, buf2.String())
	}

	// New IDs continue past the old counter.
	d5, err := restored.Submit(server.Submission{From: 0, To: 0, Volume: 1 * units.GB, Deadline: 800, MaxRate: 100 * units.MBps})
	if err != nil || !d5.Accepted {
		t.Fatalf("post-restore submission: %v %+v", err, d5)
	}
	if d5.ID <= d4.ID {
		t.Errorf("post-restore ID %d does not continue past %d", d5.ID, d4.ID)
	}

	// The restored expiry schedule still fires: past τ(d1) the flexible
	// transfer is gone and its points are free at the then-current instant.
	clk.advance(500 * time.Second)
	got, err := restored.Lookup(d1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != server.StateExpired {
		t.Errorf("restored reservation state after τ = %q, want expired", got.State)
	}
	st := restored.Status()
	if st.Stats.Expired == 0 {
		t.Error("restored server did not count the expiry")
	}
	// The rigid booking at [1000, 1100] survives as booked.
	gotBooked, err := restored.Lookup(d2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if gotBooked.State != server.StateBooked {
		t.Errorf("booking state at t=500 = %q, want booked", gotBooked.State)
	}
}

func TestRestoreRejectsCorruptSnapshot(t *testing.T) {
	clk := &fakeClock{}
	s := newTestServer(t, uniformConfig(clk))
	// A rigid seed: minbw grants exactly 1 GB/s, so the grant rate is a
	// known literal in the snapshot JSON below.
	if d, err := s.Submit(server.Submission{From: 0, To: 0, Volume: 100 * units.GB, Deadline: 100, MaxRate: 1 * units.GBps}); err != nil || !d.Accepted {
		t.Fatalf("seed: %v %+v", err, d)
	}
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// Doubling a live grant's bandwidth over-commits the point; restore
	// must refuse rather than violate equation (1).
	blob := strings.ReplaceAll(buf.String(), "\"rate_bps\": 1000000000", "\"rate_bps\": 2000000000")
	if blob == buf.String() {
		t.Fatal("corruption did not apply; grant rate not found in snapshot")
	}
	bad, err := server.ReadSnapshot(strings.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.NewFromSnapshot(bad, server.Config{Clock: clk.now}); err == nil {
		t.Error("over-committed snapshot restored without error")
	}

	// Restore refuses platform overrides in cfg.
	if _, err := server.NewFromSnapshot(s.Snapshot(), server.Config{Clock: clk.now, Policy: "f=1"}); err == nil {
		t.Error("restore accepted a cfg policy override")
	}
}

// TestConcurrentAdmissionStress fires goroutines of overlapping
// reservations at one ingress and proves the ledger never exceeds Bin(i)
// at any instant: every surviving grant replays into a fresh ledger whose
// Reserve enforces the capacity constraint over the full time axis. Run
// under -race this also checks the locking of the control plane.
func TestConcurrentAdmissionStress(t *testing.T) {
	clk := &fakeClock{}
	cfg := server.Config{
		Ingress: []units.Bandwidth{1 * units.GBps},
		Egress:  []units.Bandwidth{500 * units.MBps, 500 * units.MBps, 500 * units.MBps, 500 * units.MBps},
		Policy:  "f=0.5",
		Clock:   clk.now,
	}
	s := newTestServer(t, cfg)

	const workers = 16
	const perWorker = 40
	var wg sync.WaitGroup
	var accepted atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Overlapping windows, all on ingress 0; deterministic
				// per-goroutine mix of sizes and deadlines.
				vol := units.Volume(1+(w+i)%7) * 10 * units.GB
				deadline := units.Time(200 + 50*((w+2*i)%9))
				notBefore := units.Time(10 * ((w * i) % 5))
				d, err := s.Submit(server.Submission{
					From: 0, To: (w + i) % 4,
					Volume: vol, NotBefore: notBefore, Deadline: deadline,
					MaxRate: 200 * units.MBps,
				})
				if err != nil {
					t.Error(err)
					return
				}
				if d.Accepted {
					accepted.Add(1)
					if i%5 == 0 {
						if _, err := s.Cancel(d.ID); err != nil {
							t.Error(err)
							return
						}
					}
				}
			}
		}(w)
	}
	// Concurrent readers exercise Status/Lookup against the writers.
	stopReaders := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < 4; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				st := s.Status()
				for _, p := range st.Points {
					if p.Used > p.Capacity*(1+units.Eps) {
						t.Errorf("instantaneous over-commit: %s %d used %v of %v",
							p.Dir, p.Point, p.Used, p.Capacity)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stopReaders)
	rg.Wait()

	if accepted.Load() == 0 {
		t.Fatal("stress run accepted nothing; load model is broken")
	}
	if err := s.VerifyInvariant(); err != nil {
		t.Fatal(err)
	}

	// Independent replay: a fresh ledger must admit every surviving grant.
	live := s.LiveReservations()
	fresh := alloc.NewLedger(s.Network())
	for _, rec := range live {
		if rec.Grant.Bandwidth > rec.Req.MaxRate*(1+units.Eps) {
			t.Errorf("request %d granted %v above MaxRate %v", rec.Req.ID, rec.Grant.Bandwidth, rec.Req.MaxRate)
		}
		if rec.Grant.Sigma < rec.Req.Start || rec.Grant.Tau > rec.Req.Finish*(1+units.Eps) {
			t.Errorf("request %d window [%v,%v] outside [%v,%v]",
				rec.Req.ID, rec.Grant.Sigma, rec.Grant.Tau, rec.Req.Start, rec.Req.Finish)
		}
		if err := fresh.Reserve(rec.Req, rec.Grant); err != nil {
			t.Fatalf("replay violates capacity: %v", err)
		}
	}
	if err := fresh.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	t.Logf("stress: %d submitted, %d accepted, %d live at end",
		workers*perWorker, accepted.Load(), len(live))
}

// TestDecisionLogAudit checks the admission audit trail: every lifecycle
// transition is logged and the accepts replay into a fresh ledger.
func TestDecisionLogAudit(t *testing.T) {
	clk := &fakeClock{}
	var buf bytes.Buffer
	log := trace.NewDecisionLog(&buf)
	cfg := uniformConfig(clk)
	cfg.Decisions = log
	s := newTestServer(t, cfg)

	d1, err := s.Submit(server.Submission{From: 0, To: 0, Volume: 50 * units.GB, Deadline: 100, MaxRate: 1 * units.GBps})
	if err != nil || !d1.Accepted {
		t.Fatalf("accept: %v %+v", err, d1)
	}
	if d, err := s.Submit(server.Submission{From: 0, To: 0, Volume: 1 * units.TB, Deadline: 50, MaxRate: 1 * units.GBps}); err != nil || d.Accepted {
		t.Fatalf("reject: %v %+v", err, d)
	}
	clk.advance(200 * time.Second)
	s.Now() // fires the expiry

	events, err := trace.ReadDecisions(&buf)
	if err != nil {
		t.Fatal(err)
	}
	kinds := make(map[string]int)
	for _, ev := range events {
		kinds[ev.Kind]++
	}
	if kinds[trace.EventAccept] != 1 || kinds[trace.EventReject] != 1 || kinds[trace.EventExpire] != 1 {
		t.Errorf("event kinds = %v", kinds)
	}
	for _, ev := range events {
		if ev.Kind == trace.EventAccept && ev.RateBps*(ev.TauS-ev.SigmaS) == 0 {
			t.Errorf("accept event lacks grant data: %+v", ev)
		}
	}
}

func TestLookupEvictionBound(t *testing.T) {
	clk := &fakeClock{}
	cfg := uniformConfig(clk)
	cfg.FinishedRetention = 2
	s := newTestServer(t, cfg)

	var ids []request.ID
	for i := 0; i < 4; i++ {
		d, err := s.Submit(server.Submission{From: 0, To: 0, Volume: 1 * units.GB, Deadline: 1000, MaxRate: 100 * units.MBps})
		if err != nil || !d.Accepted {
			t.Fatalf("seed %d: %v %+v", i, err, d)
		}
		ids = append(ids, d.ID)
		if _, err := s.Cancel(d.ID); err != nil {
			t.Fatal(err)
		}
	}
	// Only the two newest terminal records survive.
	for _, id := range ids[:2] {
		if _, err := s.Lookup(id); err == nil {
			t.Errorf("evicted reservation %d still resolves", id)
		}
	}
	for _, id := range ids[2:] {
		if d, err := s.Lookup(id); err != nil || d.State != server.StateCancelled {
			t.Errorf("retained reservation %d = %+v, %v", id, d, err)
		}
	}
}
