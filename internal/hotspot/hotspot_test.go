package hotspot

import (
	"testing"
	"testing/quick"

	"gridbw/internal/policy"
	"gridbw/internal/request"
	"gridbw/internal/rng"
	"gridbw/internal/sched"
	"gridbw/internal/sched/flexible"
	"gridbw/internal/topology"
	"gridbw/internal/units"
)

func skewedSet(n int) *request.Set {
	// Everything enters at ingress 0; egress spreads evenly.
	reqs := make([]request.Request, n)
	for i := range reqs {
		start := units.Time(i)
		reqs[i] = request.Request{
			ID:      request.ID(i),
			Ingress: 0,
			Egress:  topology.PointID(i % 4),
			Start:   start, Finish: start + 200,
			Volume:  40 * units.GB, // 200 MB/s floor
			MaxRate: 400 * units.MBps,
		}
	}
	return request.MustNewSet(reqs)
}

func scheduleAll(t *testing.T, net *topology.Network, reqs *request.Set) *sched.Outcome {
	t.Helper()
	out, err := flexible.Greedy{Policy: policy.MinRate()}.Schedule(net, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Verify(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAnalyzeFindsTheHotIngress(t *testing.T) {
	net := topology.Uniform(4, 4, 1*units.GBps)
	out := scheduleAll(t, net, skewedSet(20))
	rep := Analyze(out)

	hot := rep.Hottest(1)[0]
	if hot.Dir != topology.Ingress || hot.ID != 0 {
		t.Errorf("hottest = %+v, want ingress 0", hot)
	}
	if hot.Demand != 20*200*units.MBps {
		t.Errorf("hot demand = %v", hot.Demand)
	}
	if rep.Imbalance <= 0.3 {
		t.Errorf("imbalance = %v, want clearly skewed", rep.Imbalance)
	}
	// The idle ingress points carry nothing.
	if rep.Ingress[1].Demand != 0 || rep.Ingress[1].Rejections != 0 {
		t.Error("idle point has demand")
	}
	// Rejections are charged to the bottleneck.
	if hot.Rejections == 0 {
		t.Error("saturated ingress shows no rejections")
	}
}

func TestAnalyzeBalancedIsLowImbalance(t *testing.T) {
	net := topology.Uniform(4, 4, 1*units.GBps)
	reqs := make([]request.Request, 16)
	for i := range reqs {
		start := units.Time(i)
		reqs[i] = request.Request{
			ID:      request.ID(i),
			Ingress: topology.PointID(i % 4),
			Egress:  topology.PointID((i / 4) % 4),
			Start:   start, Finish: start + 100,
			Volume:  10 * units.GB,
			MaxRate: 200 * units.MBps,
		}
	}
	out := scheduleAll(t, net, request.MustNewSet(reqs))
	rep := Analyze(out)
	if rep.Imbalance > 0.15 {
		t.Errorf("imbalance = %v for a balanced workload", rep.Imbalance)
	}
}

func TestHottestOrderingAndClamp(t *testing.T) {
	net := topology.Uniform(4, 4, 1*units.GBps)
	out := scheduleAll(t, net, skewedSet(4))
	rep := Analyze(out)
	all := rep.Hottest(100)
	if len(all) != 8 {
		t.Errorf("Hottest(100) = %d points", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Pressure() > all[i-1].Pressure() {
			t.Error("Hottest not sorted")
		}
	}
}

func TestRehomeBalancedSpreadsLoad(t *testing.T) {
	net := topology.Uniform(4, 4, 1*units.GBps)
	reqs := skewedSet(20)
	// Every dataset is replicated on all four ingress sites.
	alts := Alternatives{}
	for i := 0; i < reqs.Len(); i++ {
		alts[request.ID(i)] = []topology.PointID{0, 1, 2, 3}
	}
	rehomed, err := RehomeBalanced(net, reqs, alts)
	if err != nil {
		t.Fatal(err)
	}

	before := scheduleAll(t, net, reqs)
	after := scheduleAll(t, net, rehomed)
	if after.AcceptedCount() <= before.AcceptedCount() {
		t.Errorf("rehoming did not help: %d -> %d accepted",
			before.AcceptedCount(), after.AcceptedCount())
	}
	if rb, ra := Analyze(before).Imbalance, Analyze(after).Imbalance; ra >= rb {
		t.Errorf("imbalance did not drop: %.3f -> %.3f", rb, ra)
	}
	// Only ingress changed.
	for i := 0; i < reqs.Len(); i++ {
		orig, got := reqs.Get(request.ID(i)), rehomed.Get(request.ID(i))
		if orig.Egress != got.Egress || orig.Volume != got.Volume ||
			orig.Start != got.Start || orig.Finish != got.Finish {
			t.Fatal("rehoming changed more than the ingress")
		}
	}
}

func TestRehomeWithoutAlternativesIsIdentity(t *testing.T) {
	net := topology.Uniform(4, 4, 1*units.GBps)
	reqs := skewedSet(5)
	rehomed, err := RehomeBalanced(net, reqs, Alternatives{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < reqs.Len(); i++ {
		if reqs.Get(request.ID(i)) != rehomed.Get(request.ID(i)) {
			t.Fatal("identity rehoming changed a request")
		}
	}
}

func TestRehomeRejectsBadAlternative(t *testing.T) {
	net := topology.Uniform(2, 2, 1*units.GBps)
	reqs := skewedSet(2)
	_, err := RehomeBalanced(net, reqs, Alternatives{0: []topology.PointID{9}})
	if err == nil {
		t.Error("out-of-range alternative accepted")
	}
}

func TestImbalanceBounds(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		net := topology.Uniform(3, 3, 1*units.GBps)
		n := src.Intn(25) + 1
		reqs := make([]request.Request, n)
		for i := range reqs {
			start := units.Time(src.Intn(100))
			dur := units.Time(src.Intn(100) + 10)
			rate := units.Bandwidth(src.Intn(400)+50) * units.MBps
			reqs[i] = request.Request{
				ID:      request.ID(i),
				Ingress: topology.PointID(src.Intn(3)),
				Egress:  topology.PointID(src.Intn(3)),
				Start:   start, Finish: start + dur,
				Volume: rate.For(dur), MaxRate: rate,
			}
		}
		set := request.MustNewSet(reqs)
		out, err := flexible.Greedy{Policy: policy.MinRate()}.Schedule(net, set)
		if err != nil {
			return false
		}
		rep := Analyze(out)
		if rep.Imbalance < -1e-9 || rep.Imbalance > 1 {
			return false
		}
		// Demand accounting is conserved: Σ ingress demand = Σ egress demand.
		var din, dout units.Bandwidth
		for _, p := range rep.Ingress {
			din += p.Demand
		}
		for _, p := range rep.Egress {
			dout += p.Demand
		}
		return units.ApproxEq(float64(din), float64(dout))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
