// Package hotspot implements the paper's first future-work direction
// (§7): "relieving tentative hot spots in the network, that is,
// ingress/egress points that are heavily demanded."
//
// Two pieces are provided. Analyze inspects a scheduling outcome and
// quantifies per-point pressure — demanded versus granted bandwidth,
// rejections charged to each point, and a Gini-style imbalance index over
// normalized demand. RehomeBalanced is a relief heuristic for workloads
// with replicated data: when a dataset is available at several sites
// (a standard data-grid situation the paper's §1 motivates), the ingress
// of each transfer can be chosen among the replica holders; re-homing
// greedily to the least-demanded replica flattens hot spots before
// scheduling even starts.
package hotspot

import (
	"fmt"
	"sort"

	"gridbw/internal/request"
	"gridbw/internal/sched"
	"gridbw/internal/topology"
	"gridbw/internal/units"
)

// PointStats is the pressure record of one access point.
type PointStats struct {
	Dir      topology.Direction
	ID       topology.PointID
	Capacity units.Bandwidth
	// Demand is the summed MinRate of all requests through the point.
	Demand units.Bandwidth
	// Granted is the summed granted bandwidth of accepted requests.
	Granted units.Bandwidth
	// Rejections counts rejected requests routed through the point.
	Rejections int
}

// Pressure is Demand / Capacity (0 for a zero-capacity point).
func (p PointStats) Pressure() float64 {
	if p.Capacity == 0 {
		return 0
	}
	return float64(p.Demand) / float64(p.Capacity)
}

// Report is the hot-spot analysis of one outcome.
type Report struct {
	Ingress, Egress []PointStats
	// Imbalance is the Gini coefficient of point pressures across both
	// directions: 0 = perfectly even demand, →1 = all demand on one point.
	Imbalance float64
}

// Hottest returns the k highest-pressure points across both directions.
func (r *Report) Hottest(k int) []PointStats {
	all := append(append([]PointStats{}, r.Ingress...), r.Egress...)
	sort.Slice(all, func(i, j int) bool {
		pi, pj := all[i].Pressure(), all[j].Pressure()
		if pi != pj {
			return pi > pj
		}
		if all[i].Dir != all[j].Dir {
			return all[i].Dir < all[j].Dir
		}
		return all[i].ID < all[j].ID
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// Analyze computes per-point pressure from a scheduling outcome.
func Analyze(out *sched.Outcome) *Report {
	net := out.Network
	rep := &Report{}
	for i := 0; i < net.NumIngress(); i++ {
		rep.Ingress = append(rep.Ingress, PointStats{
			Dir: topology.Ingress, ID: topology.PointID(i), Capacity: net.Bin(topology.PointID(i)),
		})
	}
	for e := 0; e < net.NumEgress(); e++ {
		rep.Egress = append(rep.Egress, PointStats{
			Dir: topology.Egress, ID: topology.PointID(e), Capacity: net.Bout(topology.PointID(e)),
		})
	}
	for _, d := range out.Decisions() {
		r := out.Requests.Get(d.Request)
		in := &rep.Ingress[int(r.Ingress)]
		eg := &rep.Egress[int(r.Egress)]
		in.Demand += r.MinRate()
		eg.Demand += r.MinRate()
		if d.Accepted {
			in.Granted += d.Grant.Bandwidth
			eg.Granted += d.Grant.Bandwidth
		} else {
			in.Rejections++
			eg.Rejections++
		}
	}
	rep.Imbalance = gini(rep)
	return rep
}

// gini computes the Gini coefficient over point pressures.
func gini(rep *Report) float64 {
	var xs []float64
	for _, p := range rep.Ingress {
		xs = append(xs, p.Pressure())
	}
	for _, p := range rep.Egress {
		xs = append(xs, p.Pressure())
	}
	sort.Float64s(xs)
	n := len(xs)
	var sum, weighted float64
	for i, x := range xs {
		sum += x
		weighted += float64(i+1) * x
	}
	if sum == 0 {
		return 0
	}
	return (2*weighted - float64(n+1)*sum) / (float64(n) * sum)
}

// Alternatives maps a request ID to the ingress points that hold a
// replica of its dataset (must include at least one point; the original
// ingress need not be listed).
type Alternatives map[request.ID][]topology.PointID

// RehomeBalanced rewrites each request's ingress to the least-loaded
// replica holder, processing requests in decreasing MinRate order so the
// big flows spread first. Requests without alternatives keep their
// ingress. It returns the rewritten set; windows, volumes and egress
// points are untouched.
func RehomeBalanced(net *topology.Network, reqs *request.Set, alts Alternatives) (*request.Set, error) {
	load := make([]units.Bandwidth, net.NumIngress())
	all := reqs.All()
	order := make([]int, len(all))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ra, rb := all[order[a]], all[order[b]]
		if am, bm := ra.MinRate(), rb.MinRate(); am != bm {
			return am > bm
		}
		return ra.ID < rb.ID
	})
	out := make([]request.Request, len(all))
	copy(out, all)
	for _, idx := range order {
		r := &out[idx]
		choices, ok := alts[r.ID]
		if !ok || len(choices) == 0 {
			load[int(r.Ingress)] += r.MinRate()
			continue
		}
		best := -1
		var bestRatio float64
		for _, c := range choices {
			if int(c) < 0 || int(c) >= net.NumIngress() {
				return nil, fmt.Errorf("hotspot: request %d alternative ingress %d out of range", r.ID, c)
			}
			capc := net.Bin(c)
			var ratio float64
			if capc > 0 {
				ratio = float64(load[int(c)]+r.MinRate()) / float64(capc)
			} else {
				ratio = 1e18
			}
			if best < 0 || ratio < bestRatio {
				best, bestRatio = int(c), ratio
			}
		}
		r.Ingress = topology.PointID(best)
		load[best] += r.MinRate()
	}
	return request.NewSet(out)
}
