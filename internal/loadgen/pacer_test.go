package loadgen

import (
	"math"
	"testing"
	"time"

	"gridbw/internal/workload"
)

func testPacer(t *testing.T, seed int64, phases []Phase) *pacer {
	t.Helper()
	arr, err := workload.NewArrivals(seed, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := newPacer(phases, arr)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func collect(p *pacer) (offsets []time.Duration, phases []int) {
	for {
		off, ph, ok := p.Next()
		if !ok {
			return offsets, phases
		}
		offsets = append(offsets, off)
		phases = append(phases, ph)
	}
}

// TestPacerSchedule pins the core properties of the warped schedule:
// deterministic in the seed, monotone, bounded by the profile length, and
// offering approximately the profile's integral worth of arrivals.
func TestPacerSchedule(t *testing.T) {
	phases := Ramp(2*time.Second, 5*time.Second, 3*time.Second, 100)
	offs, phs := collect(testPacer(t, 42, phases))

	// Expected arrivals: 100 (ramp-up) + 500 (steady) + 150 (ramp-down).
	if len(offs) < 650 || len(offs) > 850 {
		t.Fatalf("schedule offered %d arrivals, want ≈ 750", len(offs))
	}
	end := 10 * time.Second
	for i, off := range offs {
		if off < 0 || off > end {
			t.Fatalf("arrival %d at offset %v outside [0, %v]", i, off, end)
		}
		if i > 0 && off < offs[i-1] {
			t.Fatalf("arrival %d at %v before its predecessor at %v", i, off, offs[i-1])
		}
		wantPhase := 2
		if off <= 2*time.Second {
			wantPhase = 0
		} else if off <= 7*time.Second {
			wantPhase = 1
		}
		// Phase boundaries are shared instants; allow the neighbor there.
		if phs[i] != wantPhase && !(off == 2*time.Second || off == 7*time.Second) {
			t.Fatalf("arrival %d at %v tagged phase %d, want %d", i, off, phs[i], wantPhase)
		}
	}

	// Same seed, same schedule — bit for bit.
	offs2, _ := collect(testPacer(t, 42, phases))
	if len(offs) != len(offs2) {
		t.Fatalf("replay offered %d arrivals, first run %d", len(offs2), len(offs))
	}
	for i := range offs {
		if offs[i] != offs2[i] {
			t.Fatalf("replay arrival %d at %v, first run %v", i, offs2[i], offs[i])
		}
	}
}

// TestPacerRampDensity checks the warp itself: on a linear 0→rate ramp
// the cumulative arrivals grow quadratically, so the first half of the
// ramp holds about a quarter of its arrivals — not half, which is what a
// naive constant-rate schedule would produce.
func TestPacerRampDensity(t *testing.T) {
	phases := []Phase{{Name: "ramp", Duration: 10 * time.Second, StartRate: 0, EndRate: 200}}
	offs, _ := collect(testPacer(t, 7, phases))
	if len(offs) < 850 || len(offs) > 1150 {
		t.Fatalf("ramp offered %d arrivals, want ≈ 1000", len(offs))
	}
	var firstHalf int
	for _, off := range offs {
		if off < 5*time.Second {
			firstHalf++
		}
	}
	frac := float64(firstHalf) / float64(len(offs))
	if math.Abs(frac-0.25) > 0.05 {
		t.Fatalf("first half of the ramp holds %.1f%% of arrivals, want ≈ 25%%", frac*100)
	}
}

// TestInvertPhaseRoundTrip checks the quadratic inversion against the
// forward integral for both ramp directions and the constant plateau.
func TestInvertPhaseRoundTrip(t *testing.T) {
	phases := []Phase{
		{Name: "up", Duration: 4 * time.Second, StartRate: 10, EndRate: 90},
		{Name: "flat", Duration: 4 * time.Second, StartRate: 50, EndRate: 50},
		{Name: "down", Duration: 4 * time.Second, StartRate: 90, EndRate: 10},
	}
	integral := func(p Phase, tSec float64) float64 {
		slope := (p.EndRate - p.StartRate) / p.Duration.Seconds()
		return p.StartRate*tSec + slope*tSec*tSec/2
	}
	for _, ph := range phases {
		total := ph.expectedArrivals()
		for _, frac := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
			u := frac * total
			tt := invertPhase(ph, u)
			back := integral(ph, tt.Seconds())
			if math.Abs(back-u) > 1e-6*total {
				t.Errorf("%s: invert(%.3f) = %v, integral back = %.6f", ph.Name, u, tt, back)
			}
		}
	}
}

func TestRampOmitsZeroPhases(t *testing.T) {
	phases := Ramp(0, 5*time.Second, 0, 100)
	if len(phases) != 1 || phases[0].Name != "steady" {
		t.Fatalf("Ramp(0, 5s, 0) = %+v, want the lone steady phase", phases)
	}
	if got := Ramp(time.Second, time.Second, time.Second, 10); len(got) != 3 {
		t.Fatalf("full Ramp built %d phases, want 3", len(got))
	}
}

func TestNewPacerValidation(t *testing.T) {
	arr, err := workload.NewArrivals(1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := newPacer(nil, arr); err == nil {
		t.Error("accepted an empty profile")
	}
	if _, err := newPacer([]Phase{{Name: "bad", Duration: -time.Second, StartRate: 1, EndRate: 1}}, arr); err == nil {
		t.Error("accepted a negative duration")
	}
	if _, err := newPacer([]Phase{{Name: "idle", Duration: time.Second}}, arr); err == nil {
		t.Error("accepted an all-zero-rate profile")
	}
}
