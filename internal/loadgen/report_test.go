package loadgen

import (
	"strings"
	"testing"

	"gridbw/internal/metrics"
)

func TestParseGate(t *testing.T) {
	g, err := ParseGate("p99<50ms, errors<0.1%,admit_rate>50%,drops<=1%")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.terms) != 4 {
		t.Fatalf("parsed %d terms, want 4", len(g.terms))
	}
	if g.terms[0].metric != "p99" || g.terms[0].op != "<" || g.terms[0].threshold != 50e6 {
		t.Fatalf("p99 term = %+v, want 50ms in ns", g.terms[0])
	}
	if g.terms[1].threshold != 0.001 {
		t.Fatalf("errors threshold = %v, want 0.001", g.terms[1].threshold)
	}

	for _, bad := range []string{
		"",
		"p42<1ms",       // unknown quantile
		"p99<fast",      // unparsable duration
		"errors=0.1%",   // bad operator
		"latency_ms<10", // unknown metric
		"p99 50ms",      // no operator at all
	} {
		if _, err := ParseGate(bad); err == nil {
			t.Errorf("ParseGate(%q) accepted a bad spec", bad)
		}
	}
}

func gateTotal() PhaseReport {
	return PhaseReport{
		Name: "total",
		Outcomes: map[string]uint64{
			"admitted": 800, "deduped": 10, "rejected": 150,
			"timeout": 20, "transport_error": 10, "error": 5, "shed": 5,
		},
		Offered:  1010,
		Finished: 1000,
		Dropped:  10,
		Latency:  metrics.LatencySummary{Count: 1000, P50Ms: 2, P99Ms: 40, P999Ms: 120},
	}
}

func TestGateEvaluate(t *testing.T) {
	total := gateTotal()

	pass, err := ParseGate("p99<50ms,errors<5%,admit_rate>80%")
	if err != nil {
		t.Fatal(err)
	}
	if rep := pass.Evaluate(total); !rep.Pass || len(rep.Violations) != 0 {
		t.Fatalf("healthy run failed its gate: %+v", rep)
	}

	// errors = 35/1000 = 3.5%; p999 = 120ms; drops = 10/1010 ≈ 0.99%.
	fail, err := ParseGate("p999<100ms,errors<1%,drops<=0.5%")
	if err != nil {
		t.Fatal(err)
	}
	rep := fail.Evaluate(total)
	if rep.Pass || len(rep.Violations) != 3 {
		t.Fatalf("unhealthy run passed: %+v", rep)
	}
	for _, v := range rep.Violations {
		if !strings.Contains(v, "want") {
			t.Errorf("violation %q does not state the threshold", v)
		}
	}

	// Boundary semantics: <= admits equality, < does not.
	eq, _ := ParseGate("errors<=3.5%")
	if rep := eq.Evaluate(total); !rep.Pass {
		t.Fatalf("errors<=3.5%% should pass at exactly 3.5%%: %+v", rep)
	}
	lt, _ := ParseGate("errors<3.5%")
	if rep := lt.Evaluate(total); rep.Pass {
		t.Fatal("errors<3.5% should fail at exactly 3.5%")
	}
}

func TestBuildReport(t *testing.T) {
	rec := newRecorder([]Phase{{Name: "a"}, {Name: "b"}}, 4)
	rec.arrival(0)
	rec.count(0, OutAdmitted)
	rec.arrival(0)
	rec.count(0, OutDropped)
	rec.arrival(1)
	rec.count(1, OutRejected)
	rec.latency(0, 5e6)
	rec.latency(1, 10e6)
	rep := rec.buildReport(2e9)
	if rep.OfferedArrivals != 3 {
		t.Fatalf("offered = %d, want 3 (2 finished + 1 dropped)", rep.OfferedArrivals)
	}
	if rep.Total.Finished != 2 || rep.Total.Dropped != 1 {
		t.Fatalf("total = %+v", rep.Total)
	}
	if rep.AchievedRPS != 1 {
		t.Fatalf("achieved rps = %v, want 2 finished / 2s = 1", rep.AchievedRPS)
	}
	if rep.Phases[0].Outcomes["admitted"] != 1 || rep.Phases[1].Outcomes["rejected"] != 1 {
		t.Fatalf("phase outcomes = %+v / %+v", rep.Phases[0].Outcomes, rep.Phases[1].Outcomes)
	}
	if _, ok := rep.Total.Outcomes["shed"]; ok {
		t.Fatal("zero outcomes must be omitted from the map")
	}
}
