package loadgen

import (
	"fmt"
	"math"
	"time"

	"gridbw/internal/workload"
)

// Phase is one leg of the ramp profile: the offered arrival rate moves
// linearly from StartRate to EndRate over Duration. A classic run is
// three phases — linear ramp-up, steady plateau, ramp-down.
type Phase struct {
	Name string `json:"name"`
	// Duration is the phase's wall-clock length.
	Duration time.Duration `json:"duration"`
	// StartRate and EndRate are offered arrivals per second at the
	// phase's boundaries; the rate between them is linear.
	StartRate float64 `json:"start_rate"`
	EndRate   float64 `json:"end_rate"`
}

// expectedArrivals is the integral of the phase's rate: the mean number
// of arrivals the phase offers.
func (p Phase) expectedArrivals() float64 {
	return (p.StartRate + p.EndRate) / 2 * p.Duration.Seconds()
}

func (p Phase) validate() error {
	switch {
	case p.Duration <= 0:
		return fmt.Errorf("loadgen: phase %q has non-positive duration %v", p.Name, p.Duration)
	case p.StartRate < 0 || p.EndRate < 0:
		return fmt.Errorf("loadgen: phase %q has negative rate", p.Name)
	}
	return nil
}

// Ramp builds the standard three-phase profile: linear ramp-up from zero
// to rate, a steady plateau, and a linear ramp-down back to zero. Phases
// with zero duration are omitted.
func Ramp(up, steady, down time.Duration, rate float64) []Phase {
	var phases []Phase
	if up > 0 {
		phases = append(phases, Phase{Name: "ramp-up", Duration: up, StartRate: 0, EndRate: rate})
	}
	if steady > 0 {
		phases = append(phases, Phase{Name: "steady", Duration: steady, StartRate: rate, EndRate: rate})
	}
	if down > 0 {
		phases = append(phases, Phase{Name: "ramp-down", Duration: down, StartRate: rate, EndRate: 0})
	}
	return phases
}

// pacer turns a unit-mean arrival process into a wall-clock fire
// schedule shaped by the ramp profile. The arrival stream runs at mean
// rate 1, so its instants are cumulative expected-arrival counts; the
// pacer inverts the profile's cumulative-rate integral to map each count
// to the wall offset where the time-varying process reaches it. The
// schedule is a pure function of (seed, phases): it never looks at
// responses, which is what makes the load open-loop — a stalled request
// cannot push later arrivals back (no coordinated omission).
type pacer struct {
	phases   []Phase
	arr      *workload.Arrivals
	cumArr   []float64       // expected arrivals before each phase
	offStart []time.Duration // wall offset at each phase start
	total    float64         // expected arrivals over the whole profile
}

func newPacer(phases []Phase, arr *workload.Arrivals) (*pacer, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("loadgen: no phases")
	}
	p := &pacer{phases: phases, arr: arr}
	var cum float64
	var off time.Duration
	for _, ph := range phases {
		if err := ph.validate(); err != nil {
			return nil, err
		}
		p.cumArr = append(p.cumArr, cum)
		p.offStart = append(p.offStart, off)
		cum += ph.expectedArrivals()
		off += ph.Duration
	}
	if cum <= 0 {
		return nil, fmt.Errorf("loadgen: profile offers no arrivals (all rates zero)")
	}
	p.total = cum
	return p, nil
}

// Next returns the wall-clock offset and phase index of the next
// scheduled arrival; ok is false once the profile's arrival budget is
// spent.
func (p *pacer) Next() (offset time.Duration, phase int, ok bool) {
	u := float64(p.arr.Next())
	if u >= p.total {
		return 0, 0, false
	}
	// Find the phase this cumulative count lands in, skipping phases that
	// offer nothing.
	k := len(p.phases) - 1
	for i := 1; i < len(p.phases); i++ {
		if u < p.cumArr[i] {
			k = i - 1
			break
		}
	}
	t := invertPhase(p.phases[k], u-p.cumArr[k])
	return p.offStart[k] + t, k, true
}

// invertPhase solves ∫₀ᵗ r(s) ds = u for t within one phase, where
// r(s) = r0 + (r1-r0)·s/D is the linear ramp. The integral is
// r0·t + slope·t²/2, a quadratic whose positive root is the fire time.
func invertPhase(ph Phase, u float64) time.Duration {
	d := ph.Duration.Seconds()
	r0, r1 := ph.StartRate, ph.EndRate
	slope := (r1 - r0) / d
	var t float64
	if slope == 0 {
		// Constant rate; r0 > 0 here, or the phase offered no arrivals
		// and Next could not land in it.
		t = u / r0
	} else {
		disc := r0*r0 + 2*slope*u
		if disc < 0 {
			disc = 0
		}
		t = (math.Sqrt(disc) - r0) / slope
	}
	if t < 0 {
		t = 0
	}
	if t > d {
		t = d
	}
	return time.Duration(t * float64(time.Second))
}
