package loadgen

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"gridbw/internal/check"
	"gridbw/internal/server"
)

// fakeClock satisfies the Now/SleepUntil seams: SleepUntil teleports to
// the requested instant and records it, so a test sees exactly when the
// schedule fired without any real waiting.
type fakeClock struct {
	mu    sync.Mutex
	now   time.Time
	fires []time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) SleepUntil(ctx context.Context, t time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.After(c.now) {
		c.now = t
	}
	c.fires = append(c.fires, t)
	return ctx.Err()
}

// fakeBackend scripts per-call behavior.
type fakeBackend struct {
	mu     sync.Mutex
	calls  int
	keys   []string
	submit func(call int, req server.SubmitRequest) (server.ReservationJSON, error)
}

func (f *fakeBackend) Submit(ctx context.Context, req server.SubmitRequest) (server.ReservationJSON, error) {
	f.mu.Lock()
	call := f.calls
	f.calls++
	f.keys = append(f.keys, req.IdempotencyKey)
	fn := f.submit
	f.mu.Unlock()
	if fn == nil {
		return server.ReservationJSON{ID: call + 1, Accepted: true, State: "admitted"}, nil
	}
	return fn(call, req)
}

func (f *fakeBackend) SubmitBatch(ctx context.Context, reqs []server.SubmitRequest) ([]server.BatchItemJSON, error) {
	items := make([]server.BatchItemJSON, len(reqs))
	for i, req := range reqs {
		res, err := f.Submit(ctx, req)
		if err != nil {
			return nil, err
		}
		items[i] = server.BatchItemJSON{Reservation: &res}
	}
	return items, nil
}

func (f *fakeBackend) Cancel(ctx context.Context, id int) (server.ReservationJSON, error) {
	return server.ReservationJSON{ID: id, State: "cancelled"}, nil
}

// stallingBackend never answers: every submit blocks until the request
// context dies. The worst daemon imaginable, for proving the schedule
// does not care.
type stallingBackend struct{ fakeBackend }

func (s *stallingBackend) Submit(ctx context.Context, req server.SubmitRequest) (server.ReservationJSON, error) {
	<-ctx.Done()
	return server.ReservationJSON{}, ctx.Err()
}

func (s *stallingBackend) SubmitBatch(ctx context.Context, reqs []server.SubmitRequest) ([]server.BatchItemJSON, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestNoCoordinatedOmission is the harness's reason to exist: one virtual
// user, a daemon that never answers, and the arrival schedule must still
// fire every instant on time. A closed-loop generator would send one
// request and then nothing — silently omitting every sample the stall
// caused. Here the stall costs drops, which are counted, not omitted.
func TestNoCoordinatedOmission(t *testing.T) {
	clock := newFakeClock()
	be := &stallingBackend{}
	phases := []Phase{{Name: "steady", Duration: 5 * time.Second, StartRate: 10, EndRate: 10}}
	rep, err := Run(context.Background(), Config{
		VUs:          1,
		Phases:       phases,
		Mix:          Mix{Submit: 1},
		Seed:         3,
		Timeout:      50 * time.Millisecond,
		Retries:      -1,
		DrainTimeout: 2 * time.Second,
		Backend:      be,
		Now:          clock.Now,
		SleepUntil:   clock.SleepUntil,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The schedule fired exactly the instants the pacer would produce for
	// this seed and profile, with zero influence from the stalled backend.
	offs, _ := collect(testPacer(t, 3, phases))
	if len(clock.fires) != len(offs) {
		t.Fatalf("schedule fired %d arrivals, pacer alone produces %d", len(clock.fires), len(offs))
	}
	start := time.Unix(1000, 0)
	for i, fired := range clock.fires {
		if want := start.Add(offs[i]); !fired.Equal(want) {
			t.Fatalf("arrival %d fired at %v, scheduled %v — the stalled backend moved the schedule", i, fired, want)
		}
	}

	// One virtual user was captured by the stall; every later arrival was
	// dropped on schedule, not queued behind it.
	offered := rep.OfferedArrivals
	if offered != uint64(len(offs)) {
		t.Fatalf("offered %d, want %d", offered, len(offs))
	}
	if rep.Total.Finished+rep.Total.Dropped != offered {
		t.Fatalf("finished %d + dropped %d != offered %d", rep.Total.Finished, rep.Total.Dropped, offered)
	}
	if rep.Total.Dropped != offered-1 {
		t.Fatalf("dropped %d of %d — a busy VU must drop arrivals, not defer them", rep.Total.Dropped, offered)
	}
	if got := rep.Total.Outcomes["timeout"]; got != 1 {
		t.Fatalf("timeouts = %d, want the one stalled request", got)
	}
}

// TestRunHappyPath drives the full runner against an instantly-answering
// fake and checks the report's accounting: every offered arrival lands in
// exactly one outcome, phases sum to the total, throughput is positive.
func TestRunHappyPath(t *testing.T) {
	clock := newFakeClock()
	be := &fakeBackend{}
	rep, err := Run(context.Background(), Config{
		VUs:          64,
		Phases:       Ramp(time.Second, 3*time.Second, time.Second, 50),
		Mix:          Mix{Submit: 80, Cancel: 10, Batch: 10, BatchSize: 4},
		Seed:         9,
		DrainTimeout: 5 * time.Second,
		Backend:      be,
		Now:          clock.Now,
		SleepUntil:   clock.SleepUntil,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Under the teleporting clock the whole profile dispatches in ~zero
	// real time, so some drops are legitimate; what must hold is the
	// accounting: every pacer arrival fired exactly once.
	offs, _ := collect(testPacer(t, 9, Ramp(time.Second, 3*time.Second, time.Second, 50)))
	if rep.OfferedArrivals != uint64(len(offs)) {
		t.Fatalf("offered %d arrivals, pacer produces %d", rep.OfferedArrivals, len(offs))
	}
	if rep.Total.Outcomes["admitted"] == 0 {
		t.Fatal("no admissions recorded")
	}
	if rep.Total.Outcomes["deduped"] != 0 {
		t.Fatalf("deduped = %d without any retries", rep.Total.Outcomes["deduped"])
	}
	var phaseFinished uint64
	for _, ph := range rep.Phases {
		phaseFinished += ph.Finished
	}
	if phaseFinished != rep.Total.Finished {
		t.Fatalf("phase finished sum %d != total %d", phaseFinished, rep.Total.Finished)
	}
	if len(rep.Phases) != 3 {
		t.Fatalf("report has %d phases, want 3", len(rep.Phases))
	}
	// Everyone got a latency sample: cancels that found no target skip the
	// histogram, everything else records exactly once per arrival... except
	// batch calls, which record once per call. So the histogram count is
	// bounded by finished outcomes and positive.
	if rep.Total.Latency.Count == 0 {
		t.Fatal("no latency samples recorded")
	}
}

// TestRetryReusesIdempotencyKey pins the dedup fix: a submit that fails
// at transport level is retried with the byte-identical idempotency key,
// and an admission confirmed on a retry is counted as deduped, never as a
// second admission.
func TestRetryReusesIdempotencyKey(t *testing.T) {
	clock := newFakeClock()
	be := &fakeBackend{}
	be.submit = func(call int, req server.SubmitRequest) (server.ReservationJSON, error) {
		if call == 0 {
			// The daemon admitted it, but the connection died before the
			// answer came back — the classic double-count trap.
			return server.ReservationJSON{}, fmt.Errorf("connection reset")
		}
		return server.ReservationJSON{ID: 7, Accepted: true, State: "admitted"}, nil
	}
	rep, err := Run(context.Background(), Config{
		VUs:          1,
		Phases:       []Phase{{Name: "one", Duration: time.Second, StartRate: 5, EndRate: 5}},
		Mix:          Mix{Submit: 1},
		Seed:         600,
		Retries:      2,
		DrainTimeout: 5 * time.Second,
		Backend:      be,
		Now:          clock.Now,
		SleepUntil:   clock.SleepUntil,
	})
	if err != nil {
		t.Fatal(err)
	}
	if be.calls < 2 {
		t.Fatalf("expected a retry after the transport failure, saw %d calls", be.calls)
	}
	if be.keys[0] == "" || be.keys[0] != be.keys[1] {
		t.Fatalf("retry changed the idempotency key: %q then %q", be.keys[0], be.keys[1])
	}
	if rep.Total.Outcomes["deduped"] != 1 {
		t.Fatalf("outcomes = %v, want exactly one deduped admission from the retried submit", rep.Total.Outcomes)
	}
	admitted := rep.Total.Outcomes["admitted"] + rep.Total.Outcomes["deduped"]
	if admitted != uint64(be.calls-1) {
		// calls-1 distinct keys succeeded (call 0 and call 1 shared one);
		// anything else means an admission was double-counted.
		t.Fatalf("admitted+deduped = %d, want %d (one per distinct successful key)", admitted, be.calls-1)
	}
}

// TestPromEndpoint scrapes the live endpoint mid-run shape: after a run
// with PromAddr set, the report carries the bound address, and the
// recorder's exposition contains the expected families.
func TestPromEndpoint(t *testing.T) {
	clock := newFakeClock()
	be := &fakeBackend{}
	rep, err := Run(context.Background(), Config{
		VUs:          8,
		Phases:       []Phase{{Name: "steady", Duration: time.Second, StartRate: 20, EndRate: 20}},
		Mix:          Mix{Submit: 1},
		Seed:         5,
		PromAddr:     "127.0.0.1:0",
		DrainTimeout: 5 * time.Second,
		Backend:      be,
		Now:          clock.Now,
		SleepUntil:   clock.SleepUntil,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PromAddr == "" {
		t.Fatal("report did not record the bound Prometheus address")
	}

	// The listener is closed after Run; render the exposition directly and
	// check the families a scraper would have seen live.
	rec := newRecorder([]Phase{{Name: "steady"}}, 8)
	rec.arrival(0)
	rec.count(0, OutAdmitted)
	rec.latency(0, 3*time.Millisecond)
	var sb strings.Builder
	rec.WritePrometheus(&sb)
	page := sb.String()
	for _, want := range []string{
		`gridbwload_arrivals_total{phase="steady"} 1`,
		`gridbwload_ops_total{phase="steady",outcome="admitted"} 1`,
		"gridbwload_inflight_vus 0",
		`gridbwload_latency_seconds{phase="total",quantile="0.99"}`,
		`gridbwload_latency_bucket_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("exposition missing %q:\n%s", want, page)
		}
	}
}

// TestPromServesLive checks the actual HTTP surface: /metrics answers in
// text exposition and /report with the in-progress JSON document.
func TestPromServesLive(t *testing.T) {
	rec := newRecorder([]Phase{{Name: "p"}}, 4)
	rec.count(0, OutAdmitted)
	rec.latency(0, time.Millisecond)
	addr, stop, err := rec.serveProm("127.0.0.1:0", func() Report {
		return rec.buildReport(time.Second)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		blob, _ := io.ReadAll(resp.Body)
		return string(blob)
	}
	if page := get("/metrics"); !strings.Contains(page, "gridbwload_ops_total") {
		t.Errorf("/metrics missing ops counter:\n%s", page)
	}
	if page := get("/report"); !strings.Contains(page, `"achieved_rps"`) {
		t.Errorf("/report missing report JSON:\n%s", page)
	}
}

// TestHistoryRecordsClientObservations: with a History recorder attached,
// every submit, batch item and cancel the harness performs shows up as a
// checkable op — keys for submits, IDs for cancels, errors verbatim.
func TestHistoryRecordsClientObservations(t *testing.T) {
	clock := newFakeClock()
	be := &fakeBackend{}
	hist := check.NewRecorder()
	_, err := Run(context.Background(), Config{
		VUs:          8,
		Phases:       []Phase{{Name: "steady", Duration: 2 * time.Second, StartRate: 20, EndRate: 20}},
		Mix:          Mix{Submit: 2, Cancel: 1, Batch: 1, BatchSize: 3},
		Seed:         11,
		Timeout:      time.Second,
		Retries:      -1,
		DrainTimeout: 2 * time.Second,
		Backend:      be,
		Now:          clock.Now,
		SleepUntil:   clock.SleepUntil,
		History:      hist,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hist.Len() == 0 {
		t.Fatal("history recorded nothing")
	}
	var submits, cancels int
	for _, op := range hist.Ops() {
		switch op.Kind {
		case check.OpSubmit:
			submits++
			if op.Key == "" {
				t.Fatalf("submit op without idempotency key: %+v", op)
			}
			if op.Err == "" && !op.Accepted {
				t.Fatalf("fake backend accepts everything, op says otherwise: %+v", op)
			}
		case check.OpCancel:
			cancels++
			if op.ID == 0 {
				t.Fatalf("cancel op without an ID: %+v", op)
			}
		}
	}
	if submits == 0 || cancels == 0 {
		t.Fatalf("history missing op kinds: %d submits, %d cancels", submits, cancels)
	}
	// Every wire submit the backend saw is in the history, one op each.
	if submits != len(be.keys) {
		t.Fatalf("history holds %d submits, backend saw %d", submits, len(be.keys))
	}
}
