package loadgen

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"time"

	"gridbw/internal/metrics"
)

// PhaseReport is one phase's (or the run total's) machine-readable
// summary.
type PhaseReport struct {
	Name string `json:"name"`
	// Outcomes maps outcome name to count; only non-zero outcomes appear.
	Outcomes map[string]uint64 `json:"outcomes"`
	// Offered is the number of scheduled arrivals that fired in the
	// phase, dropped or not. Finished can exceed Offered - Dropped when
	// batch operations fan one arrival into several submissions.
	Offered uint64 `json:"offered"`
	// Finished is the number of operations that ran to a classified
	// outcome (everything except drops).
	Finished uint64 `json:"finished"`
	// Dropped is the number of scheduled arrivals that fired while every
	// virtual user was busy.
	Dropped uint64                 `json:"dropped"`
	Latency metrics.LatencySummary `json:"latency"`
	// CrossShard counts decisions a router tier answered through the
	// cross-shard two-phase hold protocol; CrossShardLatency summarizes
	// their wall latency separately from the aggregate. Both are zero
	// (and omitted) when the target is a bare daemon.
	CrossShard        uint64                  `json:"cross_shard,omitempty"`
	CrossShardLatency *metrics.LatencySummary `json:"cross_shard_latency,omitempty"`
}

func (ps *phaseStats) report() PhaseReport {
	pr := PhaseReport{
		Name:     ps.name,
		Outcomes: make(map[string]uint64),
		Latency:  ps.lat.Summary(),
	}
	for o := Outcome(0); o < numOutcomes; o++ {
		if n := ps.outcomes[o].Load(); n > 0 {
			pr.Outcomes[o.String()] = n
		}
	}
	pr.Offered = ps.fired.Load()
	pr.Dropped = ps.outcomes[OutDropped].Load()
	pr.Finished = ps.finished()
	if n := ps.cross.Load(); n > 0 {
		pr.CrossShard = n
		s := ps.latCross.Summary()
		pr.CrossShardLatency = &s
	}
	return pr
}

func (pr PhaseReport) outcome(o Outcome) uint64 { return pr.Outcomes[o.String()] }

// GateReport records how the run fared against a --fail-on spec.
type GateReport struct {
	Spec       string   `json:"spec"`
	Violations []string `json:"violations,omitempty"`
	Pass       bool     `json:"pass"`
}

// Report is the JSON document gridbwload writes on exit.
type Report struct {
	Targets []string `json:"targets"`
	VUs     int      `json:"vus"`
	Seed    int64    `json:"seed"`
	// WallSeconds is the measured wall-clock length of the run, including
	// the drain.
	WallSeconds float64 `json:"wall_seconds"`
	// OfferedArrivals is the number of arrivals the schedule fired
	// (finished + dropped).
	OfferedArrivals uint64 `json:"offered_arrivals"`
	// AchievedRPS is finished operations per wall second.
	AchievedRPS float64       `json:"achieved_rps"`
	Phases      []PhaseReport `json:"phases"`
	Total       PhaseReport   `json:"total"`
	Gate        *GateReport   `json:"gate,omitempty"`
	// Interrupted is set when the run was cut short by a signal or a
	// cancelled context.
	Interrupted bool `json:"interrupted,omitempty"`
	// PromAddr is the address the live Prometheus endpoint listened on.
	PromAddr string `json:"prom_addr,omitempty"`
}

func (r *Recorder) buildReport(wall time.Duration) Report {
	rep := Report{Total: r.total.report()}
	for _, ps := range r.phases {
		rep.Phases = append(rep.Phases, ps.report())
	}
	rep.WallSeconds = wall.Seconds()
	rep.OfferedArrivals = rep.Total.Offered
	if rep.WallSeconds > 0 {
		rep.AchievedRPS = float64(rep.Total.Finished) / rep.WallSeconds
	}
	return rep
}

// Gate is a parsed --fail-on spec: a conjunction of thresholds the run's
// totals must satisfy.
type Gate struct {
	spec  string
	terms []gateTerm
}

type gateTerm struct {
	metric string
	op     string
	// threshold is nanoseconds for latency metrics, a fraction for ratio
	// metrics.
	threshold float64
}

var gateTermRE = regexp.MustCompile(`^([a-z0-9_]+)\s*(<=|>=|<|>)\s*(.+)$`)

// latencyMetrics maps gate metric names to histogram quantiles.
var latencyMetrics = map[string]float64{
	"p50": 0.50, "p90": 0.90, "p95": 0.95, "p99": 0.99, "p999": 0.999,
}

// ratioMetrics defines the gate's fraction-valued metrics as functions of
// the run totals.
var ratioMetrics = map[string]func(PhaseReport) float64{
	// errors: hard failures (timeouts, exhausted transport retries,
	// unexpected answers) over finished operations.
	"errors": func(t PhaseReport) float64 {
		return ratio(t.outcome(OutTimeout)+t.outcome(OutTransport)+t.outcome(OutError), t.Finished)
	},
	// shed: overload backpressure over finished operations.
	"shed": func(t PhaseReport) float64 {
		return ratio(t.outcome(OutShed), t.Finished)
	},
	// drops: arrivals lost to VU starvation over offered arrivals.
	"drops": func(t PhaseReport) float64 {
		return ratio(t.Dropped, t.Offered)
	},
	// admit_rate: accepted submissions over decided submissions.
	"admit_rate": func(t PhaseReport) float64 {
		adm := t.outcome(OutAdmitted) + t.outcome(OutDeduped)
		return ratio(adm, adm+t.outcome(OutRejected))
	},
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// ParseGate parses a --fail-on spec: comma-separated terms like
// "p99<50ms,errors<0.1%,admit_rate>50%". Latency metrics (p50, p90, p95,
// p99, p999) compare against a Go duration; ratio metrics (errors, shed,
// drops, admit_rate) compare against a percentage ("0.1%") or a bare
// fraction ("0.001").
func ParseGate(spec string) (*Gate, error) {
	g := &Gate{spec: spec}
	for _, raw := range strings.Split(spec, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		m := gateTermRE.FindStringSubmatch(raw)
		if m == nil {
			return nil, fmt.Errorf("loadgen: bad gate term %q (want metric<op>value)", raw)
		}
		term := gateTerm{metric: m[1], op: m[2]}
		val := strings.TrimSpace(m[3])
		switch {
		case latencyMetrics[term.metric] != 0:
			d, err := time.ParseDuration(val)
			if err != nil {
				return nil, fmt.Errorf("loadgen: gate term %q: %v", raw, err)
			}
			term.threshold = float64(d.Nanoseconds())
		case ratioMetrics[term.metric] != nil:
			f, err := parseFraction(val)
			if err != nil {
				return nil, fmt.Errorf("loadgen: gate term %q: %v", raw, err)
			}
			term.threshold = f
		default:
			return nil, fmt.Errorf("loadgen: gate term %q: unknown metric %q", raw, term.metric)
		}
		g.terms = append(g.terms, term)
	}
	if len(g.terms) == 0 {
		return nil, fmt.Errorf("loadgen: empty gate spec %q", spec)
	}
	return g, nil
}

func parseFraction(s string) (float64, error) {
	if pct, ok := strings.CutSuffix(s, "%"); ok {
		f, err := strconv.ParseFloat(strings.TrimSpace(pct), 64)
		if err != nil {
			return 0, err
		}
		return f / 100, nil
	}
	return strconv.ParseFloat(s, 64)
}

// Evaluate checks the run totals against every gate term and reports the
// violations.
func (g *Gate) Evaluate(total PhaseReport) GateReport {
	rep := GateReport{Spec: g.spec, Pass: true}
	for _, t := range g.terms {
		var got float64
		var gotStr, wantStr string
		if _, ok := latencyMetrics[t.metric]; ok {
			ms, _ := total.Latency.QuantileMs(t.metric)
			got = ms * 1e6 // ns
			gotStr = fmt.Sprintf("%v", time.Duration(got).Round(time.Microsecond))
			wantStr = fmt.Sprintf("%v", time.Duration(t.threshold))
		} else {
			got = ratioMetrics[t.metric](total)
			gotStr = fmt.Sprintf("%.3f%%", got*100)
			wantStr = fmt.Sprintf("%.3f%%", t.threshold*100)
		}
		if !compare(got, t.op, t.threshold) {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("%s = %s, want %s %s", t.metric, gotStr, t.op, wantStr))
			rep.Pass = false
		}
	}
	return rep
}

func compare(got float64, op string, want float64) bool {
	switch op {
	case "<":
		return got < want
	case "<=":
		return got <= want
	case ">":
		return got > want
	case ">=":
		return got >= want
	}
	return false
}
