// Package loadgen is an open-loop scaletest harness for gridbwd: it
// drives a running daemon (or failover pair) with thousands of concurrent
// virtual users paced by the arrival processes of internal/workload.
//
// The defining property is the open loop. Arrivals fire on a schedule
// that is a pure function of (seed, ramp profile) and never of responses:
// a stalled daemon cannot slow the offered rate down, so the measured
// latency distribution reflects what clients would actually experience —
// the coordinated-omission trap of closed-loop harnesses (each virtual
// user politely waiting for its previous response before sending the
// next) is structurally impossible. When every virtual user is busy at an
// arrival instant the arrival is dropped and counted, never deferred.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"gridbw/internal/check"
	"gridbw/internal/rng"
	"gridbw/internal/server"
	"gridbw/internal/server/client"
	"gridbw/internal/units"
	"gridbw/internal/workload"
)

// Backend is the surface of server/client the harness drives; a seam so
// tests can substitute a fake daemon with scripted behavior.
type Backend interface {
	Submit(ctx context.Context, req server.SubmitRequest) (server.ReservationJSON, error)
	SubmitBatch(ctx context.Context, reqs []server.SubmitRequest) ([]server.BatchItemJSON, error)
	Cancel(ctx context.Context, id int) (server.ReservationJSON, error)
}

// binaryBatcher is the optional Backend extension for the length-prefixed
// binary batch codec. The daemon client implements it; scripted test
// fakes need not. Config.Codec "binary" uses it when present and falls
// back to JSON SubmitBatch otherwise.
type binaryBatcher interface {
	SubmitBatchBinary(ctx context.Context, reqs []server.SubmitRequest) ([]server.BatchItemJSON, error)
}

// Mix sets the relative weights of the operation types; weights need not
// sum to anything particular.
type Mix struct {
	Submit int `json:"submit"`
	Cancel int `json:"cancel"`
	Batch  int `json:"batch"`
	// BatchSize is the number of submissions per batch operation.
	BatchSize int `json:"batch_size"`
}

func (m Mix) total() int { return m.Submit + m.Cancel + m.Batch }

// Config describes one scaletest run. Zero fields take the documented
// defaults.
type Config struct {
	// Targets are the daemon base URLs; the first is primary, the rest
	// failover fallbacks. Ignored when Backend is set.
	Targets []string
	// VUs caps concurrency: the number of virtual users. An arrival that
	// fires while all VUs are busy is dropped (open loop), not queued.
	VUs int
	// Phases is the ramp profile; see Ramp for the standard shape.
	Phases []Phase
	// Burst, when non-nil, replaces Poisson arrivals with the on/off
	// modulated process of workload.BurstConfig.
	Burst *workload.BurstConfig
	// Mix weights the operation types. Default 90% submit, 5% cancel,
	// 5% batch of 8.
	Mix Mix
	// Timeout is the per-request deadline. Default 5s.
	Timeout time.Duration
	// Retries is the number of extra attempts after a transport-level
	// failure. Every attempt re-sends the same idempotency key, so a
	// submit that actually landed before the connection broke is
	// deduplicated by the daemon rather than double-admitted; such
	// late-confirmed admissions are counted as "deduped", never
	// "admitted". Default 2; negative disables.
	Retries int
	// Seed makes the arrival schedule and every request draw
	// reproducible.
	Seed int64
	// NumIngress and NumEgress bound the uniform placement draw; they
	// must match the daemon's topology. Default 2×2 (the gridbwd
	// default).
	NumIngress, NumEgress int
	// Volumes is the volume ladder; default workload.PaperVolumes.
	Volumes []units.Volume
	// RateMin and RateMax bound the uniform host-rate draw; default
	// 10 MB/s … 1 GB/s (§5.3).
	RateMin, RateMax units.Bandwidth
	// Slack stretches request deadlines: deadline = Slack × vol/maxRate
	// from now. Default 2.
	Slack float64
	// FailOn is an optional regression gate; see ParseGate.
	FailOn string
	// PromAddr, when non-empty, serves live Prometheus text on
	// addr/metrics and the in-progress JSON report on addr/report for the
	// duration of the run. ":0" picks a free port (reported in the
	// Report).
	PromAddr string
	// HTTPClient overrides the transport used to reach Targets; nil uses
	// one tuned for many concurrent connections.
	HTTPClient *http.Client
	// Backend substitutes the daemon client entirely (tests).
	Backend Backend
	// Codec selects the batch wire format: "json" (default) or "binary"
	// (the length-prefixed frame of POST /v1/batch, roughly halving
	// per-batch encode cost). Single submits and cancels stay JSON.
	Codec string
	// DrainTimeout bounds the wait for in-flight requests after the last
	// arrival. Default 30s.
	DrainTimeout time.Duration
	// History, when non-nil, records every client-observed operation for
	// offline invariant checking (internal/check): what each submit and
	// cancel was answered, under which idempotency key. The recorder is
	// concurrency-safe; the caller persists it after Run returns.
	History *check.Recorder
	// Durable marks every generated submission durable: the daemon parks
	// the ack until the decision's WAL frame is replicated, and the
	// response's durability field becomes a checkable promise.
	Durable bool

	// Now and SleepUntil are clock seams; tests install a deterministic
	// clock. Defaults use the real clock.
	Now        func() time.Time
	SleepUntil func(ctx context.Context, t time.Time) error
}

func (c Config) withDefaults() Config {
	if c.VUs == 0 {
		c.VUs = 1000
	}
	if c.Mix.total() == 0 {
		c.Mix = Mix{Submit: 90, Cancel: 5, Batch: 5}
	}
	if c.Mix.BatchSize <= 0 {
		c.Mix.BatchSize = 8
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.Retries == 0 {
		c.Retries = 2
	} else if c.Retries < 0 {
		c.Retries = 0
	}
	if c.NumIngress <= 0 {
		c.NumIngress = 2
	}
	if c.NumEgress <= 0 {
		c.NumEgress = 2
	}
	if len(c.Volumes) == 0 {
		c.Volumes = workload.PaperVolumes()
	}
	if c.RateMin <= 0 {
		c.RateMin = 10 * units.MBps
	}
	if c.RateMax <= 0 {
		c.RateMax = 1 * units.GBps
	}
	if c.Slack <= 0 {
		c.Slack = 2
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.SleepUntil == nil {
		c.SleepUntil = func(ctx context.Context, t time.Time) error {
			d := time.Until(t)
			if d <= 0 {
				return ctx.Err()
			}
			timer := time.NewTimer(d)
			defer timer.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-timer.C:
				return nil
			}
		}
	}
	return c
}

// newBackend builds the failover-aware daemon client. The client's own
// retry and timeout machinery is disabled: the harness owns both (one
// idempotency key per logical submission across its retries, one deadline
// per operation), and double-layered retries would blur the latency
// attribution. Failover re-discovery still works — it triggers inside
// each attempt.
func (c Config) newBackend() (Backend, error) {
	if c.Backend != nil {
		return c.Backend, nil
	}
	if len(c.Targets) == 0 {
		return nil, fmt.Errorf("loadgen: no targets and no backend")
	}
	hc := c.HTTPClient
	if hc == nil {
		tr := &http.Transport{
			MaxIdleConns:        c.VUs + 64,
			MaxIdleConnsPerHost: c.VUs + 64,
			IdleConnTimeout:     90 * time.Second,
		}
		hc = &http.Client{Transport: tr}
	}
	return client.NewWithOptions(c.Targets[0], hc,
		client.Options{MaxRetries: -1, CallTimeout: -1}, c.Targets[1:]...), nil
}

// opKind is what one arrival does.
type opKind int

const (
	opSubmit opKind = iota
	opCancel
	opBatch
)

// op is one scheduled operation, fully drawn in the dispatcher so the
// request stream is a deterministic function of the seed regardless of
// goroutine interleaving.
type op struct {
	kind  opKind
	phase int
	t0    time.Time
	reqs  []server.SubmitRequest
}

// Run executes the configured scaletest and returns its report. The
// returned error covers harness failures (bad config, dead listener);
// daemon misbehavior lands in the report's outcome counters, and gate
// violations land in Report.Gate, not the error.
func Run(ctx context.Context, cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	if cfg.VUs < 1 {
		return Report{}, fmt.Errorf("loadgen: need at least one virtual user")
	}
	switch cfg.Codec {
	case "", "json", "binary":
	default:
		return Report{}, fmt.Errorf("loadgen: unknown codec %q (want json or binary)", cfg.Codec)
	}
	var gate *Gate
	if cfg.FailOn != "" {
		var err error
		if gate, err = ParseGate(cfg.FailOn); err != nil {
			return Report{}, err
		}
	}
	backend, err := cfg.newBackend()
	if err != nil {
		return Report{}, err
	}
	// Unit-mean arrivals: instants are cumulative expected-arrival counts
	// that the pacer warps onto the ramp profile.
	arr, err := workload.NewArrivals(cfg.Seed, 1, cfg.Burst)
	if err != nil {
		return Report{}, err
	}
	pc, err := newPacer(cfg.Phases, arr)
	if err != nil {
		return Report{}, err
	}

	rec := newRecorder(cfg.Phases, cfg.VUs)
	start := cfg.Now()
	rep := func() Report {
		r := rec.buildReport(cfg.Now().Sub(start))
		r.Targets, r.VUs, r.Seed = cfg.Targets, cfg.VUs, cfg.Seed
		return r
	}
	var promAddr string
	if cfg.PromAddr != "" {
		addr, stop, err := rec.serveProm(cfg.PromAddr, rep)
		if err != nil {
			return Report{}, err
		}
		promAddr = addr
		defer stop()
	}

	// One random key per run namespaces the per-arrival idempotency keys,
	// so repeated runs against one daemon never collide in its dedup
	// window.
	runID := client.NewIdempotencyKey()
	root := rng.New(cfg.Seed)
	draws := &drawState{
		mix:       root.Split("mix"),
		volumes:   root.Split("volumes"),
		rates:     root.Split("rates"),
		placement: root.Split("placement"),
		ring:      newIDRing(4096, root.Split("ring")),
		cfg:       cfg,
		runID:     runID,
	}

	slots := make(chan struct{}, cfg.VUs)
	var wg sync.WaitGroup
	interrupted := false
	for {
		off, phase, ok := pc.Next()
		if !ok {
			break
		}
		if err := cfg.SleepUntil(ctx, start.Add(off)); err != nil {
			interrupted = true
			break
		}
		rec.arrival(phase)
		o := draws.draw(phase, cfg.Now())
		select {
		case slots <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-slots }()
				execute(ctx, cfg, backend, rec, draws.ring, o)
			}()
		default:
			// Open loop: never wait for a free virtual user.
			rec.count(phase, OutDropped)
		}
	}

	// Drain, bounded: a hung daemon must not hang the report.
	drained := make(chan struct{})
	go func() { wg.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(cfg.DrainTimeout):
	case <-ctx.Done():
		interrupted = true
		select {
		case <-drained:
		case <-time.After(cfg.Timeout):
		}
	}

	out := rep()
	out.Interrupted = interrupted
	out.PromAddr = promAddr
	if gate != nil {
		g := gate.Evaluate(out.Total)
		out.Gate = &g
	}
	return out, nil
}

// drawState holds the rng splits the dispatcher draws requests from.
type drawState struct {
	mix       *rng.Source
	volumes   *rng.Source
	rates     *rng.Source
	placement *rng.Source
	ring      *idRing
	cfg       Config
	runID     string
	arrivals  int
}

func (d *drawState) draw(phase int, t0 time.Time) op {
	idx := d.arrivals
	d.arrivals++
	o := op{phase: phase, t0: t0}
	pick := d.mix.Intn(d.cfg.Mix.total())
	switch {
	case pick < d.cfg.Mix.Submit:
		o.kind = opSubmit
		o.reqs = []server.SubmitRequest{d.submitReq(fmt.Sprintf("%s-%d", d.runID, idx))}
	case pick < d.cfg.Mix.Submit+d.cfg.Mix.Cancel:
		o.kind = opCancel
	default:
		o.kind = opBatch
		for j := 0; j < d.cfg.Mix.BatchSize; j++ {
			o.reqs = append(o.reqs, d.submitReq(fmt.Sprintf("%s-%d-%d", d.runID, idx, j)))
		}
	}
	return o
}

func (d *drawState) submitReq(key string) server.SubmitRequest {
	vol := rng.Choice(d.volumes, d.cfg.Volumes)
	rate := units.Bandwidth(d.rates.Uniform(float64(d.cfg.RateMin), float64(d.cfg.RateMax)))
	deadline := d.cfg.Slack * float64(vol) / float64(rate)
	return server.SubmitRequest{
		From:           d.placement.Intn(d.cfg.NumIngress),
		To:             d.placement.Intn(d.cfg.NumEgress),
		VolumeBytes:    float64(vol),
		MaxRateBps:     float64(rate),
		DeadlineIn:     fmt.Sprintf("%.3fs", deadline),
		IdempotencyKey: key,
		Durable:        d.cfg.Durable,
	}
}

// history records a client-observed operation when recording is on.
func (c Config) history(op check.Op) {
	if c.History != nil {
		c.History.Record(op)
	}
}

// submitOp translates one submit exchange into the checker's vocabulary.
func submitOp(req server.SubmitRequest, res server.ReservationJSON, err error) check.Op {
	op := check.Op{
		Kind: check.OpSubmit, Key: req.IdempotencyKey,
		Ingress: req.From, Egress: req.To,
		VolumeB: req.VolumeBytes, Durable: req.Durable,
	}
	if err != nil {
		op.Err = err.Error()
		return op
	}
	op.ID, op.Accepted, op.Durability = res.ID, res.Accepted, res.Durability
	op.RateBps, op.SigmaS, op.TauS = res.RateBps, res.SigmaS, res.TauS
	op.Routed = res.Routed
	return op
}

// execute runs one operation to a classified outcome.
func execute(ctx context.Context, cfg Config, backend Backend, rec *Recorder, ring *idRing, o op) {
	rec.inflight.Add(1)
	defer rec.inflight.Add(-1)
	opCtx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()

	switch o.kind {
	case opSubmit:
		executeSubmit(opCtx, cfg, backend, rec, ring, o)
	case opCancel:
		executeCancel(opCtx, cfg, backend, rec, ring, o)
	case opBatch:
		executeBatch(opCtx, cfg, backend, rec, ring, o)
	}
}

func executeSubmit(ctx context.Context, cfg Config, backend Backend, rec *Recorder, ring *idRing, o op) {
	req := o.reqs[0]
	for attempt := 0; ; attempt++ {
		res, err := backend.Submit(ctx, req)
		if err == nil {
			cfg.history(submitOp(req, res, nil))
			lat := cfg.Now().Sub(o.t0)
			rec.latency(o.phase, lat)
			if res.Routed == server.RoutedCrossShard {
				rec.crossShard(o.phase, lat)
			}
			if !res.Accepted {
				rec.count(o.phase, OutRejected)
				return
			}
			ring.push(res.ID)
			if attempt > 0 {
				// A retry that re-sent the same key: the daemon may have
				// answered from its idempotency cache. One logical
				// admission, recorded once, here.
				rec.count(o.phase, OutDeduped)
			} else {
				rec.count(o.phase, OutAdmitted)
			}
			return
		}
		out, retryable := classify(ctx, err)
		if retryable && attempt < cfg.Retries {
			continue // same idempotency key, by construction
		}
		cfg.history(submitOp(req, server.ReservationJSON{}, err))
		rec.latency(o.phase, cfg.Now().Sub(o.t0))
		rec.count(o.phase, out)
		return
	}
}

func executeCancel(ctx context.Context, cfg Config, backend Backend, rec *Recorder, ring *idRing, o op) {
	id, ok := ring.pop()
	if !ok {
		// Nothing admitted yet to revoke; no wire call, no latency sample.
		rec.count(o.phase, OutCancelNoop)
		return
	}
	_, err := backend.Cancel(ctx, id)
	cop := check.Op{Kind: check.OpCancel, ID: id}
	if err != nil {
		cop.Err = err.Error()
	}
	cfg.history(cop)
	rec.latency(o.phase, cfg.Now().Sub(o.t0))
	switch {
	case err == nil, client.IsConflict(err):
		// 409 means the transfer already finished — equally gone.
		rec.count(o.phase, OutCancelled)
	case client.IsNotFound(err):
		rec.count(o.phase, OutCancelNoop)
	default:
		out, _ := classify(ctx, err)
		rec.count(o.phase, out)
	}
}

func executeBatch(ctx context.Context, cfg Config, backend Backend, rec *Recorder, ring *idRing, o op) {
	submit := backend.SubmitBatch
	if cfg.Codec == "binary" {
		if bb, ok := backend.(binaryBatcher); ok {
			submit = bb.SubmitBatchBinary
		}
	}
	for attempt := 0; ; attempt++ {
		items, err := submit(ctx, o.reqs)
		if err != nil {
			out, retryable := classify(ctx, err)
			if retryable && attempt < cfg.Retries {
				continue // same idempotency keys
			}
			rec.latency(o.phase, cfg.Now().Sub(o.t0))
			// The call failed as a unit; every submission in it did.
			for _, r := range o.reqs {
				cfg.history(submitOp(r, server.ReservationJSON{}, err))
				rec.count(o.phase, out)
			}
			return
		}
		lat := cfg.Now().Sub(o.t0)
		rec.latency(o.phase, lat)
		for i, it := range items {
			switch {
			case it.Reservation != nil:
				cfg.history(submitOp(o.reqs[i], *it.Reservation, nil))
				// Routed markers only survive the JSON codec; the binary
				// response frame has no slot for them, so binary-batch runs
				// against a router undercount cross_shard.
				if it.Reservation.Routed == server.RoutedCrossShard {
					rec.crossShard(o.phase, lat)
				}
			case it.Error != "":
				cfg.history(submitOp(o.reqs[i], server.ReservationJSON{}, errors.New(it.Error)))
			}
		}
		for _, it := range items {
			switch {
			case it.Error != "":
				rec.count(o.phase, OutError)
			case it.Reservation == nil:
				rec.count(o.phase, OutError)
			case it.Reservation.Accepted:
				ring.push(it.Reservation.ID)
				if attempt > 0 {
					rec.count(o.phase, OutDeduped)
				} else {
					rec.count(o.phase, OutAdmitted)
				}
			default:
				rec.count(o.phase, OutRejected)
			}
		}
		return
	}
}

// classify maps an operation error to an outcome and whether the harness
// should burn a retry on it. Only transport-level failures are retried:
// those are the ones where the request may or may not have landed, which
// is exactly what the stable idempotency key exists for.
func classify(ctx context.Context, err error) (Outcome, bool) {
	switch {
	case errors.Is(err, context.DeadlineExceeded) || ctx.Err() != nil:
		return OutTimeout, false
	case client.IsOverloaded(err):
		return OutShed, false
	}
	var ae *client.APIError
	if !errors.As(err, &ae) {
		return OutTransport, true
	}
	return OutError, false
}
