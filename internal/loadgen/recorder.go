package loadgen

import (
	"sync"
	"sync/atomic"
	"time"

	"gridbw/internal/metrics"
	"gridbw/internal/rng"
)

// Outcome classifies what became of one offered arrival.
type Outcome int

const (
	// OutAdmitted: the daemon accepted the reservation on the first
	// attempt.
	OutAdmitted Outcome = iota
	// OutDeduped: the reservation was accepted on a retry that re-sent the
	// same idempotency key — the daemon may have answered from its
	// idempotency cache, so the admission is counted here, never a second
	// time under OutAdmitted. Throughput = admitted + deduped, each logical
	// submission once.
	OutDeduped
	// OutRejected: a well-formed domain rejection (no feasible window).
	OutRejected
	// OutShed: the daemon refused with 429 overload backpressure.
	OutShed
	// OutTimeout: the per-request deadline expired.
	OutTimeout
	// OutTransport: a transport-level failure (dial refused, reset) that
	// survived the retry budget.
	OutTransport
	// OutError: any other unexpected API answer.
	OutError
	// OutCancelled: a cancel op found its target (including 409
	// already-finished answers — the reservation is equally gone).
	OutCancelled
	// OutCancelNoop: a cancel op had no admitted reservation to revoke, or
	// its target was already evicted (404).
	OutCancelNoop
	// OutDropped: the arrival fired on schedule but every virtual user was
	// busy. The schedule is never delayed for a free VU — dropping keeps
	// the load open-loop and the drop count makes VU starvation visible
	// instead of silently thinning the offered rate.
	OutDropped

	numOutcomes
)

var outcomeNames = [numOutcomes]string{
	"admitted", "deduped", "rejected", "shed", "timeout",
	"transport_error", "error", "cancelled", "cancel_noop", "dropped",
}

func (o Outcome) String() string { return outcomeNames[o] }

// phaseStats accumulates one phase's counters and latency histogram. All
// fields are atomic: virtual users record concurrently while the
// Prometheus handler reads.
type phaseStats struct {
	name string
	// fired counts scheduled arrivals that fired in this phase, dropped
	// or not. Tracked separately from outcomes because one batch arrival
	// yields several per-submission outcomes.
	fired    atomic.Uint64
	outcomes [numOutcomes]atomic.Uint64
	lat      *metrics.Histogram
	// cross counts decisions the router tier marked routed=cross_shard —
	// admissions (or rejections) that went through the two-phase hold
	// protocol; latCross is their own latency histogram, kept apart
	// because the protocol's extra round trips would otherwise hide
	// inside the aggregate tail. Zero against a bare daemon.
	cross    atomic.Uint64
	latCross *metrics.Histogram
}

func newPhaseStats(name string) *phaseStats {
	return &phaseStats{name: name, lat: metrics.NewHistogram(), latCross: metrics.NewHistogram()}
}

func (ps *phaseStats) finished() uint64 {
	var n uint64
	for o := Outcome(0); o < numOutcomes; o++ {
		if o != OutDropped {
			n += ps.outcomes[o].Load()
		}
	}
	return n
}

// Recorder is the harness's metrics hub: per-phase counters and
// histograms plus the run-wide aggregate, safe for concurrent recording
// and scraping.
type Recorder struct {
	phases   []*phaseStats
	total    *phaseStats
	inflight atomic.Int64
	vus      int
}

func newRecorder(phases []Phase, vus int) *Recorder {
	r := &Recorder{total: newPhaseStats("total"), vus: vus}
	for _, ph := range phases {
		r.phases = append(r.phases, newPhaseStats(ph.Name))
	}
	return r
}

// arrival records one scheduled arrival firing in a phase.
func (r *Recorder) arrival(phase int) {
	r.phases[phase].fired.Add(1)
	r.total.fired.Add(1)
}

// count records an outcome against a phase and the total.
func (r *Recorder) count(phase int, o Outcome) {
	r.phases[phase].outcomes[o].Add(1)
	r.total.outcomes[o].Add(1)
}

// latency records one completed operation's wall latency.
func (r *Recorder) latency(phase int, d time.Duration) {
	r.phases[phase].lat.Record(d)
	r.total.lat.Record(d)
}

// crossShard records one decision the router answered through the
// cross-shard two-phase protocol, with the operation's wall latency.
func (r *Recorder) crossShard(phase int, d time.Duration) {
	r.phases[phase].cross.Add(1)
	r.phases[phase].latCross.Record(d)
	r.total.cross.Add(1)
	r.total.latCross.Record(d)
}

// idRing remembers recently admitted reservation IDs so cancel ops have
// live targets. Bounded: old IDs fall off once the ring is full — they
// are likely expired or evicted on the daemon anyway.
type idRing struct {
	mu  sync.Mutex
	ids []int
	cap int
	src *rng.Source
}

func newIDRing(capacity int, src *rng.Source) *idRing {
	return &idRing{cap: capacity, src: src}
}

func (r *idRing) push(id int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.ids) < r.cap {
		r.ids = append(r.ids, id)
		return
	}
	r.ids[r.src.Intn(len(r.ids))] = id
}

// pop removes and returns a uniformly drawn remembered ID.
func (r *idRing) pop() (int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.ids) == 0 {
		return 0, false
	}
	i := r.src.Intn(len(r.ids))
	id := r.ids[i]
	last := len(r.ids) - 1
	r.ids[i] = r.ids[last]
	r.ids = r.ids[:last]
	return id, true
}
