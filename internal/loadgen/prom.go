package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"
)

// promLEBounds are the fixed upper bounds of the exported latency
// histogram, chosen to bracket sub-millisecond LAN admissions up through
// multi-second stalls.
var promLEBounds = []time.Duration{
	time.Millisecond, 2500 * time.Microsecond, 5 * time.Millisecond,
	10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
	time.Second, 2500 * time.Millisecond, 5 * time.Second, 10 * time.Second,
}

// WritePrometheus renders the recorder's live state in Prometheus text
// exposition format.
func (r *Recorder) WritePrometheus(w io.Writer) {
	fmt.Fprintf(w, "# HELP gridbwload_arrivals_total Scheduled arrivals fired, by phase.\n")
	fmt.Fprintf(w, "# TYPE gridbwload_arrivals_total counter\n")
	for _, ps := range r.phases {
		fmt.Fprintf(w, "gridbwload_arrivals_total{phase=%q} %d\n", ps.name, ps.fired.Load())
	}

	fmt.Fprintf(w, "# HELP gridbwload_ops_total Operation outcomes, by phase.\n")
	fmt.Fprintf(w, "# TYPE gridbwload_ops_total counter\n")
	for _, ps := range r.phases {
		for o := Outcome(0); o < numOutcomes; o++ {
			if n := ps.outcomes[o].Load(); n > 0 {
				fmt.Fprintf(w, "gridbwload_ops_total{phase=%q,outcome=%q} %d\n", ps.name, o, n)
			}
		}
	}

	fmt.Fprintf(w, "# HELP gridbwload_cross_shard_total Decisions routed through the cross-shard two-phase protocol, by phase.\n")
	fmt.Fprintf(w, "# TYPE gridbwload_cross_shard_total counter\n")
	for _, ps := range r.phases {
		if n := ps.cross.Load(); n > 0 {
			fmt.Fprintf(w, "gridbwload_cross_shard_total{phase=%q} %d\n", ps.name, n)
		}
	}

	fmt.Fprintf(w, "# HELP gridbwload_inflight_vus Virtual users with a request in flight.\n")
	fmt.Fprintf(w, "# TYPE gridbwload_inflight_vus gauge\n")
	fmt.Fprintf(w, "gridbwload_inflight_vus %d\n", r.inflight.Load())
	fmt.Fprintf(w, "gridbwload_max_vus %d\n", r.vus)

	fmt.Fprintf(w, "# TYPE gridbwload_latency_seconds summary\n")
	for _, ps := range append(r.phases, r.total) {
		s := ps.lat.Summary()
		for _, q := range []struct {
			label string
			ms    float64
		}{
			{"0.5", s.P50Ms}, {"0.9", s.P90Ms}, {"0.95", s.P95Ms},
			{"0.99", s.P99Ms}, {"0.999", s.P999Ms},
		} {
			fmt.Fprintf(w, "gridbwload_latency_seconds{phase=%q,quantile=%q} %g\n",
				ps.name, q.label, q.ms/1e3)
		}
		fmt.Fprintf(w, "gridbwload_latency_seconds_sum{phase=%q} %g\n", ps.name, ps.lat.Sum().Seconds())
		fmt.Fprintf(w, "gridbwload_latency_seconds_count{phase=%q} %d\n", ps.name, ps.lat.Count())
	}

	// Cross-shard decisions carry their own route-tagged summary so the
	// two-phase protocol's extra round trips stay visible instead of
	// averaging into the aggregate tail. Series appear only once a phase
	// has seen a routed decision.
	for _, ps := range append(r.phases, r.total) {
		if ps.latCross.Count() == 0 {
			continue
		}
		s := ps.latCross.Summary()
		for _, q := range []struct {
			label string
			ms    float64
		}{
			{"0.5", s.P50Ms}, {"0.9", s.P90Ms}, {"0.95", s.P95Ms},
			{"0.99", s.P99Ms}, {"0.999", s.P999Ms},
		} {
			fmt.Fprintf(w, "gridbwload_latency_seconds{phase=%q,route=\"cross_shard\",quantile=%q} %g\n",
				ps.name, q.label, q.ms/1e3)
		}
		fmt.Fprintf(w, "gridbwload_latency_seconds_sum{phase=%q,route=\"cross_shard\"} %g\n", ps.name, ps.latCross.Sum().Seconds())
		fmt.Fprintf(w, "gridbwload_latency_seconds_count{phase=%q,route=\"cross_shard\"} %d\n", ps.name, ps.latCross.Count())
	}

	// A classic le-bucketed histogram over the whole run for scrapers that
	// aggregate with histogram_quantile.
	fmt.Fprintf(w, "# TYPE gridbwload_latency_bucket_seconds histogram\n")
	for _, le := range promLEBounds {
		fmt.Fprintf(w, "gridbwload_latency_bucket_seconds_bucket{le=%q} %d\n",
			formatLE(le), r.total.lat.CumulativeLE(le))
	}
	fmt.Fprintf(w, "gridbwload_latency_bucket_seconds_bucket{le=\"+Inf\"} %d\n", r.total.lat.Count())
	fmt.Fprintf(w, "gridbwload_latency_bucket_seconds_sum %g\n", r.total.lat.Sum().Seconds())
	fmt.Fprintf(w, "gridbwload_latency_bucket_seconds_count %d\n", r.total.lat.Count())
}

func formatLE(d time.Duration) string {
	return fmt.Sprintf("%g", d.Seconds())
}

// serveProm starts the live observation endpoint on addr: /metrics in
// Prometheus text form, /report as the in-progress JSON report. It
// returns the bound address (so ":0" works) and a shutdown func.
func (r *Recorder) serveProm(addr string, report func() Report) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("loadgen: prometheus listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/report", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(report())
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), func() { srv.Close() }, nil
}
