package threedm

import (
	"testing"
	"testing/quick"

	"gridbw/internal/exact"
	"gridbw/internal/rng"
)

func TestValidate(t *testing.T) {
	good := Instance{N: 2, Triples: []Triple{{0, 1, 0}, {1, 0, 1}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Instance{N: 0}).Validate(); err == nil {
		t.Error("n=0 validated")
	}
	if err := (Instance{N: 2, Triples: []Triple{{2, 0, 0}}}).Validate(); err == nil {
		t.Error("out-of-range triple validated")
	}
}

func TestIsMatching(t *testing.T) {
	inst := Instance{N: 2, Triples: []Triple{{0, 1, 0}, {1, 0, 1}, {0, 0, 1}}}
	if !inst.IsMatching([]int{0, 1}) {
		t.Error("valid matching rejected")
	}
	if inst.IsMatching([]int{0, 2}) {
		t.Error("X-coordinate clash accepted")
	}
	if inst.IsMatching([]int{0}) {
		t.Error("undersized selection accepted")
	}
	if inst.IsMatching([]int{0, 7}) {
		t.Error("bad index accepted")
	}
}

func TestBruteForceFindsPlanted(t *testing.T) {
	for n := 1; n <= 5; n++ {
		for seed := int64(0); seed < 5; seed++ {
			inst := RandomPlanted(n, n, seed)
			sel, ok := inst.BruteForce()
			if !ok {
				t.Fatalf("n=%d seed=%d: planted matching not found", n, seed)
			}
			if !inst.IsMatching(sel) {
				t.Fatalf("n=%d seed=%d: returned selection is not a matching", n, seed)
			}
		}
	}
}

func TestBruteForceNoMatching(t *testing.T) {
	// All triples share x=0: no matching for n >= 2.
	inst := Instance{N: 2, Triples: []Triple{{0, 0, 0}, {0, 1, 1}, {0, 1, 0}}}
	if _, ok := inst.BruteForce(); ok {
		t.Error("matching found where none exists")
	}
	// Empty triple set.
	if _, ok := (Instance{N: 2}).BruteForce(); ok {
		t.Error("matching found in empty T")
	}
}

func TestReduceShape(t *testing.T) {
	inst := RandomPlanted(3, 4, 1)
	red, err := Reduce(inst)
	if err != nil {
		t.Fatal(err)
	}
	n := inst.N
	if got := len(red.Unit.Requests); got != len(inst.Triples)+2*n*(n-1) {
		t.Errorf("request count = %d, want |T| + 2n(n-1) = %d", got, len(inst.Triples)+2*n*(n-1))
	}
	if red.K != n+2*n*(n-1) {
		t.Errorf("K = %d", red.K)
	}
	if len(red.Unit.CapIn) != n+1 || len(red.Unit.CapOut) != n+1 {
		t.Error("platform size wrong")
	}
	for i := 0; i < n; i++ {
		if red.Unit.CapIn[i] != 1 || red.Unit.CapOut[i] != 1 {
			t.Error("regular point capacity != 1")
		}
	}
	if red.Unit.CapIn[n] != n-1 || red.Unit.CapOut[n] != n-1 {
		t.Error("special point capacity != n-1")
	}
	if err := red.Unit.Validate(); err != nil {
		t.Errorf("reduced instance invalid: %v", err)
	}
	// Regular requests are rigid (window 1) and map back to their triples.
	for u, src := range red.RegularOf {
		r := red.Unit.Requests[u]
		if src >= 0 {
			tr := inst.Triples[src]
			if r.Ingress != tr.X || r.Egress != tr.Y || r.Release != tr.Z || r.Window() != 1 {
				t.Errorf("regular request %d mismatched with triple %+v", u, tr)
			}
		} else if r.Window() != inst.N {
			t.Errorf("special request %d window %d, want n", u, r.Window())
		}
	}
}

func TestReduceRejectsInvalid(t *testing.T) {
	if _, err := Reduce(Instance{N: 0}); err == nil {
		t.Error("invalid instance reduced")
	}
}

func TestScheduleFromMatchingForward(t *testing.T) {
	inst := RandomPlanted(4, 6, 3)
	red, err := Reduce(inst)
	if err != nil {
		t.Fatal(err)
	}
	sel, ok := inst.BruteForce()
	if !ok {
		t.Fatal("no matching in planted instance")
	}
	a, err := red.ScheduleFromMatching(sel)
	if err != nil {
		t.Fatal(err)
	}
	got, err := exact.VerifyUnit(red.Unit, a)
	if err != nil {
		t.Fatalf("forward schedule infeasible: %v", err)
	}
	if got != red.K {
		t.Errorf("forward schedule accepts %d, want K = %d", got, red.K)
	}
}

func TestScheduleFromMatchingRejectsNonMatching(t *testing.T) {
	inst := Instance{N: 2, Triples: []Triple{{0, 0, 0}, {0, 1, 1}}}
	red, err := Reduce(inst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := red.ScheduleFromMatching([]int{0, 1}); err == nil {
		t.Error("non-matching accepted")
	}
}

func TestExtractMatchingConverse(t *testing.T) {
	inst := RandomPlanted(3, 5, 7)
	red, err := Reduce(inst)
	if err != nil {
		t.Fatal(err)
	}
	opt, a, err := exact.MaxUnit(red.Unit, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt < red.K {
		t.Fatalf("optimum %d < K %d on an instance with a planted matching", opt, red.K)
	}
	sel, err := red.ExtractMatching(a)
	if err != nil {
		t.Fatal(err)
	}
	if !inst.IsMatching(sel) {
		t.Error("extracted selection not a matching")
	}
}

func TestExtractMatchingRejectsShortAssignment(t *testing.T) {
	inst := RandomPlanted(2, 2, 1)
	red, err := Reduce(inst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := red.ExtractMatching(exact.UnitAssignment{}); err == nil {
		t.Error("empty assignment extracted")
	}
}

// TestTheoremOneEquivalence is the central property (Table T2): for random
// instances — planted and not — the 3-DM instance has a matching if and
// only if the reduced scheduling instance can accept K requests.
func TestTheoremOneEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		n := src.Intn(2) + 2 // n in {2,3}; n=4 instances take minutes
		var inst Instance
		if src.Bool(0.5) {
			inst = RandomPlanted(n, src.Intn(2*n), seed)
		} else {
			inst = Random(n, src.Intn(3*n)+1, seed)
		}
		_, hasMatching := inst.BruteForce()
		red, err := Reduce(inst)
		if err != nil {
			return false
		}
		opt, a, err := exact.MaxUnit(red.Unit, 0)
		if err != nil {
			return false
		}
		if got, err := exact.VerifyUnit(red.Unit, a); err != nil || got != opt {
			return false
		}
		schedulable := opt >= red.K
		if schedulable != hasMatching {
			return false
		}
		if schedulable {
			// The converse mapping must recover a real matching.
			if sel, err := red.ExtractMatching(a); err != nil || !inst.IsMatching(sel) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
