package threedm_test

import (
	"fmt"
	"log"

	"gridbw/internal/exact"
	"gridbw/internal/threedm"
)

// ExampleReduce runs the Theorem-1 reduction end to end: a 3-DM instance
// with a planted matching becomes a scheduling instance that accepts
// exactly K = n + 2n(n−1) requests, and the matching is recoverable from
// the optimal schedule.
func ExampleReduce() {
	inst := threedm.Instance{
		N: 2,
		Triples: []threedm.Triple{
			{X: 0, Y: 1, Z: 0},
			{X: 1, Y: 0, Z: 1},
			{X: 0, Y: 0, Z: 1}, // noise
		},
	}
	red, err := threedm.Reduce(inst)
	if err != nil {
		log.Fatal(err)
	}
	opt, assign, err := exact.MaxUnit(red.Unit, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("K=%d optimum=%d schedulable=%v\n", red.K, opt, opt >= red.K)
	sel, err := red.ExtractMatching(assign)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matching of size %d recovered: %v\n", len(sel), inst.IsMatching(sel))
	// Output:
	// K=6 optimum=6 schedulable=true
	// matching of size 2 recovered: true
}
