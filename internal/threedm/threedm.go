// Package threedm implements 3-Dimensional Matching and the Theorem-1
// reduction of the paper.
//
// 3-DM: given disjoint sets X, Y, Z of cardinality n and triples
// T ⊆ X×Y×Z, decide whether T contains a matching T' of n triples with no
// two agreeing in any coordinate. The paper reduces 3-DM to
// MAX-REQUESTS-DEC — scheduling uniform unit requests on an (n+1)×(n+1)
// platform — to prove the bandwidth-sharing problem NP-complete. This
// package provides the instance type, a brute-force matcher (ground
// truth), random instance generators, the reduction B1 → B2, and the
// solution mappings in both directions, so the equivalence can be property
// tested (Table T2 of DESIGN.md).
package threedm

import (
	"fmt"

	"gridbw/internal/exact"
	"gridbw/internal/rng"
)

// Triple is one element of T, with 0-based coordinates in [0, n).
type Triple struct {
	X, Y, Z int
}

// Instance is a 3-DM instance.
type Instance struct {
	N       int
	Triples []Triple
}

// Validate checks coordinate ranges.
func (inst Instance) Validate() error {
	if inst.N <= 0 {
		return fmt.Errorf("threedm: non-positive n %d", inst.N)
	}
	for i, t := range inst.Triples {
		if t.X < 0 || t.X >= inst.N || t.Y < 0 || t.Y >= inst.N || t.Z < 0 || t.Z >= inst.N {
			return fmt.Errorf("threedm: triple %d = %+v out of range [0,%d)", i, t, inst.N)
		}
	}
	return nil
}

// IsMatching reports whether the triple indices in sel form a perfect
// matching: exactly n triples, no coordinate repeated.
func (inst Instance) IsMatching(sel []int) bool {
	if len(sel) != inst.N {
		return false
	}
	var ux, uy, uz = make([]bool, inst.N), make([]bool, inst.N), make([]bool, inst.N)
	for _, idx := range sel {
		if idx < 0 || idx >= len(inst.Triples) {
			return false
		}
		t := inst.Triples[idx]
		if ux[t.X] || uy[t.Y] || uz[t.Z] {
			return false
		}
		ux[t.X], uy[t.Y], uz[t.Z] = true, true, true
	}
	return true
}

// BruteForce searches for a perfect matching by depth-first search over
// the Z coordinate; it returns the triple indices of one matching and
// whether one exists. Intended for small n (the search is exponential —
// that is the point of the reduction).
func (inst Instance) BruteForce() ([]int, bool) {
	if inst.Validate() != nil {
		return nil, false
	}
	// Index triples by Z so each DFS level only scans candidates for one z.
	byZ := make([][]int, inst.N)
	for i, t := range inst.Triples {
		byZ[t.Z] = append(byZ[t.Z], i)
	}
	usedX := make([]bool, inst.N)
	usedY := make([]bool, inst.N)
	sel := make([]int, 0, inst.N)
	var dfs func(z int) bool
	dfs = func(z int) bool {
		if z == inst.N {
			return true
		}
		for _, idx := range byZ[z] {
			t := inst.Triples[idx]
			if usedX[t.X] || usedY[t.Y] {
				continue
			}
			usedX[t.X], usedY[t.Y] = true, true
			sel = append(sel, idx)
			if dfs(z + 1) {
				return true
			}
			sel = sel[:len(sel)-1]
			usedX[t.X], usedY[t.Y] = false, false
		}
		return false
	}
	if dfs(0) {
		return sel, true
	}
	return nil, false
}

// RandomPlanted generates an instance that is guaranteed to contain a
// matching: n triples formed from two random permutations, plus extra
// random triples as noise.
func RandomPlanted(n, extra int, seed int64) Instance {
	src := rng.New(seed)
	px := src.Perm(n)
	py := src.Perm(n)
	inst := Instance{N: n}
	for k := 0; k < n; k++ {
		inst.Triples = append(inst.Triples, Triple{X: px[k], Y: py[k], Z: k})
	}
	for i := 0; i < extra; i++ {
		inst.Triples = append(inst.Triples, Triple{X: src.Intn(n), Y: src.Intn(n), Z: src.Intn(n)})
	}
	rng.Shuffle(src, inst.Triples)
	return inst
}

// Random generates an instance with m uniformly random triples; it may or
// may not contain a matching.
func Random(n, m int, seed int64) Instance {
	src := rng.New(seed)
	inst := Instance{N: n}
	for i := 0; i < m; i++ {
		inst.Triples = append(inst.Triples, Triple{X: src.Intn(n), Y: src.Intn(n), Z: src.Intn(n)})
	}
	return inst
}

// Reduction is the Theorem-1 construction B1 → B2.
type Reduction struct {
	Source Instance
	// Unit is the scheduling instance: n+1 ingress and egress points
	// (point n is the special one with capacity n−1), n time steps.
	Unit exact.UnitInstance
	// K is the acceptance target: the 3-DM instance has a matching iff
	// at least K requests of Unit can be accepted.
	K int
	// RegularOf maps unit-request index → triple index for the first |T|
	// (regular) requests; special requests map to -1.
	RegularOf []int
}

// Reduce builds the Theorem-1 scheduling instance from a 3-DM instance.
// Using 0-based steps: the regular request of triple (x, y, z) occupies
// ingress x, egress y at exactly step z; each regular point gets n−1
// flexible special requests to/from the special point, free to pick any
// step.
func Reduce(inst Instance) (*Reduction, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	n := inst.N
	red := &Reduction{Source: inst}
	capIn := make([]int, n+1)
	capOut := make([]int, n+1)
	for i := 0; i < n; i++ {
		capIn[i], capOut[i] = 1, 1
	}
	capIn[n], capOut[n] = n-1, n-1

	var reqs []exact.UnitRequest
	var regularOf []int
	for idx, t := range inst.Triples {
		reqs = append(reqs, exact.UnitRequest{
			Ingress: t.X, Egress: t.Y, Release: t.Z, Deadline: t.Z + 1,
		})
		regularOf = append(regularOf, idx)
	}
	for i := 0; i < n; i++ {
		for c := 0; c < n-1; c++ {
			reqs = append(reqs, exact.UnitRequest{Ingress: i, Egress: n, Release: 0, Deadline: n})
			regularOf = append(regularOf, -1)
		}
	}
	for e := 0; e < n; e++ {
		for c := 0; c < n-1; c++ {
			reqs = append(reqs, exact.UnitRequest{Ingress: n, Egress: e, Release: 0, Deadline: n})
			regularOf = append(regularOf, -1)
		}
	}
	red.Unit = exact.UnitInstance{CapIn: capIn, CapOut: capOut, Requests: reqs, Steps: n}
	red.K = n + 2*n*(n-1)
	red.RegularOf = regularOf
	return red, nil
}

// ExtractMatching recovers a 3-DM matching from a scheduling assignment
// that accepts at least K requests, following the converse direction of
// the Theorem-1 proof: the accepted regular requests form the matching.
func (red *Reduction) ExtractMatching(a exact.UnitAssignment) ([]int, error) {
	if len(a) < red.K {
		return nil, fmt.Errorf("threedm: assignment accepts %d < K = %d", len(a), red.K)
	}
	var sel []int
	for idx := range a {
		if red.RegularOf[idx] >= 0 {
			sel = append(sel, red.RegularOf[idx])
		}
	}
	if !red.Source.IsMatching(sel) {
		return nil, fmt.Errorf("threedm: accepted regular requests do not form a matching (%d of n=%d)",
			len(sel), red.Source.N)
	}
	return sel, nil
}

// ScheduleFromMatching builds a feasible assignment accepting exactly K
// requests from a matching, following the forward direction of the proof:
// at step z schedule the matching triple's regular request plus one
// special request from every other ingress and to every other egress.
func (red *Reduction) ScheduleFromMatching(sel []int) (exact.UnitAssignment, error) {
	if !red.Source.IsMatching(sel) {
		return nil, fmt.Errorf("threedm: not a matching")
	}
	n := red.Source.N
	a := exact.UnitAssignment{}
	// Triple chosen for each step z.
	tripleAt := make([]Triple, n)
	for _, idx := range sel {
		t := red.Source.Triples[idx]
		tripleAt[t.Z] = t
		// Find the regular request of this triple.
		for u, src := range red.RegularOf {
			if src == idx {
				a[u] = t.Z
				break
			}
		}
	}
	// Special requests: ingress i sends its n−1 requests at every step
	// except the one where i is the matched ingress; similarly for egress.
	specialIn := make([][]int, n)  // request indices per ingress
	specialOut := make([][]int, n) // request indices per egress
	for u, src := range red.RegularOf {
		if src >= 0 {
			continue
		}
		r := red.Unit.Requests[u]
		if r.Egress == n {
			specialIn[r.Ingress] = append(specialIn[r.Ingress], u)
		} else {
			specialOut[r.Egress] = append(specialOut[r.Egress], u)
		}
	}
	for i := 0; i < n; i++ {
		k := 0
		for z := 0; z < n; z++ {
			if tripleAt[z].X == i {
				continue // ingress i carries the regular request at z
			}
			a[specialIn[i][k]] = z
			k++
		}
	}
	for e := 0; e < n; e++ {
		k := 0
		for z := 0; z < n; z++ {
			if tripleAt[z].Y == e {
				continue
			}
			a[specialOut[e][k]] = z
			k++
		}
	}
	return a, nil
}
