// Package teletraffic provides analytic loss formulas for multirate
// Erlang systems — an independent, theory-side check on the simulator.
//
// A grid access point carrying constant-rate reservations is exactly the
// classical multirate loss link: requests of class k demand b_k bandwidth
// units for an exponentially-ish distributed holding time and are blocked
// when the units are not free. The Kaufman-Roberts recursion computes the
// per-class blocking of one link exactly under Poisson arrivals; the
// paper's platform couples two links per request (ingress AND egress),
// which the classical reduced-load (Erlang fixed-point) approximation
// handles by thinning each link's offered traffic by the blocking of the
// partner links and iterating.
//
// Table T15 compares these analytic accept rates against the simulated
// greedy scheduler in steady state (long horizon, warm-up excluded):
// agreement there means the simulator's behaviour is not an artifact of
// its implementation, and the residual gap measures exactly the
// non-Poisson, non-product-form effects the simulation captures.
package teletraffic

import (
	"fmt"
	"math"
)

// Class is one traffic class offered to a link.
type Class struct {
	// Units is the integer bandwidth demand b_k (in discretization units).
	Units int
	// Erlangs is the offered traffic a_k = λ_k × E[holding time].
	Erlangs float64
}

// KaufmanRoberts computes the per-class blocking probabilities of a
// single link with the given integer capacity. It returns one blocking
// probability per class, in input order.
func KaufmanRoberts(capacity int, classes []Class) ([]float64, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("teletraffic: non-positive capacity %d", capacity)
	}
	for i, c := range classes {
		if c.Units <= 0 {
			return nil, fmt.Errorf("teletraffic: class %d has non-positive demand %d", i, c.Units)
		}
		if c.Erlangs < 0 {
			return nil, fmt.Errorf("teletraffic: class %d has negative offered traffic", i)
		}
	}
	// Unnormalized occupancy distribution q(x), x = 0..capacity.
	q := make([]float64, capacity+1)
	q[0] = 1
	for x := 1; x <= capacity; x++ {
		var sum float64
		for _, c := range classes {
			if c.Units <= x {
				sum += c.Erlangs * float64(c.Units) * q[x-c.Units]
			}
		}
		q[x] = sum / float64(x)
		// Rescale against overflow on large capacities.
		if q[x] > 1e280 {
			var scale float64 = 1e-280
			for i := range q[:x+1] {
				q[i] *= scale
			}
		}
	}
	var total float64
	for _, v := range q {
		total += v
	}
	out := make([]float64, len(classes))
	for i, c := range classes {
		var blocked float64
		for x := capacity - c.Units + 1; x <= capacity; x++ {
			if x >= 0 {
				blocked += q[x]
			}
		}
		out[i] = blocked / total
	}
	return out, nil
}

// PairSystem describes the two-sided platform for the fixed-point
// approximation: uniform links and classes, with requests uniformly
// routed over In ingress and Out egress links.
type PairSystem struct {
	// CapacityUnits is each link's capacity in discretization units.
	CapacityUnits int
	// In and Out are the link counts (M and N).
	In, Out int
	// Classes are the traffic classes of the total arrival stream;
	// Erlangs here is the SYSTEM-WIDE offered traffic of the class
	// (λ_total,k × E[hold_k]); routing spreads it uniformly.
	Classes []Class
	// MaxIterations and Tolerance bound the fixed-point loop.
	MaxIterations int
	Tolerance     float64
}

// Result is the fixed-point outcome.
type Result struct {
	// PerClassAccept is the end-to-end acceptance probability per class.
	PerClassAccept []float64
	// AcceptRate is the arrival-weighted overall acceptance probability.
	AcceptRate float64
	// Iterations is the number of fixed-point rounds used.
	Iterations int
}

// Solve runs the reduced-load approximation: each side's per-class
// offered traffic is the system traffic divided by its link count and
// thinned by the partner side's blocking; iterate Kaufman-Roberts on both
// sides until the blocking vector converges. End-to-end acceptance is
// (1−B_in)(1−B_out) under the standard independence assumption.
func (p PairSystem) Solve() (*Result, error) {
	if p.In <= 0 || p.Out <= 0 {
		return nil, fmt.Errorf("teletraffic: non-positive link counts %dx%d", p.In, p.Out)
	}
	if len(p.Classes) == 0 {
		return nil, fmt.Errorf("teletraffic: no classes")
	}
	maxIter := p.MaxIterations
	if maxIter <= 0 {
		maxIter = 100
	}
	tol := p.Tolerance
	if tol <= 0 {
		tol = 1e-9
	}

	k := len(p.Classes)
	bIn := make([]float64, k)
	bOut := make([]float64, k)
	newOffered := func(thin []float64, links int) []Class {
		out := make([]Class, k)
		for i, c := range p.Classes {
			out[i] = Class{
				Units:   c.Units,
				Erlangs: c.Erlangs / float64(links) * (1 - thin[i]),
			}
		}
		return out
	}

	iters := 0
	for ; iters < maxIter; iters++ {
		nbIn, err := KaufmanRoberts(p.CapacityUnits, newOffered(bOut, p.In))
		if err != nil {
			return nil, err
		}
		nbOut, err := KaufmanRoberts(p.CapacityUnits, newOffered(nbIn, p.Out))
		if err != nil {
			return nil, err
		}
		var delta float64
		for i := 0; i < k; i++ {
			delta = math.Max(delta, math.Abs(nbIn[i]-bIn[i]))
			delta = math.Max(delta, math.Abs(nbOut[i]-bOut[i]))
		}
		bIn, bOut = nbIn, nbOut
		if delta < tol {
			iters++
			break
		}
	}

	res := &Result{PerClassAccept: make([]float64, k), Iterations: iters}
	var wAccept, wTotal float64
	for i, c := range p.Classes {
		acc := (1 - bIn[i]) * (1 - bOut[i])
		res.PerClassAccept[i] = acc
		// AcceptRate weights by offered Erlangs — exact only when classes
		// share a holding time. Callers whose classes differ in holding
		// time (arrival weight ∝ Erlangs / E[hold]) should combine
		// PerClassAccept with WeightedAccept instead.
		wAccept += acc * c.Erlangs
		wTotal += c.Erlangs
	}
	if wTotal > 0 {
		res.AcceptRate = wAccept / wTotal
	}
	return res, nil
}

// WeightedAccept combines per-class acceptance with explicit arrival
// weights (e.g. class probabilities), for callers whose classes have
// unequal holding times.
func WeightedAccept(perClass, weights []float64) (float64, error) {
	if len(perClass) != len(weights) {
		return 0, fmt.Errorf("teletraffic: %d classes vs %d weights", len(perClass), len(weights))
	}
	var num, den float64
	for i := range perClass {
		if weights[i] < 0 {
			return 0, fmt.Errorf("teletraffic: negative weight at class %d", i)
		}
		num += perClass[i] * weights[i]
		den += weights[i]
	}
	if den == 0 {
		return 0, fmt.Errorf("teletraffic: zero total weight")
	}
	return num / den, nil
}
