package teletraffic

import (
	"math"
	"testing"
	"testing/quick"

	"gridbw/internal/rng"
)

// erlangB computes the classic single-rate Erlang-B blocking via the
// standard recursion, as an independent reference.
func erlangB(servers int, erlangs float64) float64 {
	b := 1.0
	for n := 1; n <= servers; n++ {
		b = erlangs * b / (float64(n) + erlangs*b)
	}
	return b
}

func TestKaufmanRobertsMatchesErlangB(t *testing.T) {
	// Single class with unit demand: Kaufman-Roberts must reproduce
	// Erlang-B exactly.
	for _, tc := range []struct {
		capacity int
		erlangs  float64
	}{
		{1, 0.5}, {5, 3}, {10, 8}, {20, 25}, {50, 40},
	} {
		got, err := KaufmanRoberts(tc.capacity, []Class{{Units: 1, Erlangs: tc.erlangs}})
		if err != nil {
			t.Fatal(err)
		}
		want := erlangB(tc.capacity, tc.erlangs)
		if math.Abs(got[0]-want) > 1e-12 {
			t.Errorf("C=%d a=%g: KR=%.12f ErlangB=%.12f", tc.capacity, tc.erlangs, got[0], want)
		}
	}
}

func TestKaufmanRobertsKnownMultirate(t *testing.T) {
	// C=2, one class with b=2, a=1: only states 0 and 2 are reachable.
	// q(0)=1, q(1)=0, q(2)=(1/2)(1·2·q(0))=1. Blocking = q(1)+q(2) over
	// total = 1/2.
	got, err := KaufmanRoberts(2, []Class{{Units: 2, Erlangs: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-0.5) > 1e-12 {
		t.Errorf("blocking = %v, want 0.5", got[0])
	}
}

func TestKaufmanRobertsWideClassAlwaysBlockedMore(t *testing.T) {
	classes := []Class{
		{Units: 1, Erlangs: 4},
		{Units: 5, Erlangs: 1},
	}
	b, err := KaufmanRoberts(10, classes)
	if err != nil {
		t.Fatal(err)
	}
	if b[1] <= b[0] {
		t.Errorf("wide class blocked less: %v vs %v", b[1], b[0])
	}
}

func TestKaufmanRobertsValidation(t *testing.T) {
	if _, err := KaufmanRoberts(0, []Class{{Units: 1, Erlangs: 1}}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := KaufmanRoberts(5, []Class{{Units: 0, Erlangs: 1}}); err == nil {
		t.Error("zero demand accepted")
	}
	if _, err := KaufmanRoberts(5, []Class{{Units: 1, Erlangs: -1}}); err == nil {
		t.Error("negative traffic accepted")
	}
}

func TestKaufmanRobertsZeroTraffic(t *testing.T) {
	b, err := KaufmanRoberts(5, []Class{{Units: 2, Erlangs: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 0 {
		t.Errorf("zero traffic blocked: %v", b[0])
	}
}

// TestKaufmanRobertsMonotoneInLoad: blocking grows with offered traffic.
func TestKaufmanRobertsMonotoneInLoad(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		capacity := src.Intn(40) + 5
		units := src.Intn(4) + 1
		a := src.Uniform(0.5, 20)
		b1, err := KaufmanRoberts(capacity, []Class{{Units: units, Erlangs: a}})
		if err != nil {
			return false
		}
		b2, err := KaufmanRoberts(capacity, []Class{{Units: units, Erlangs: a * 1.5}})
		if err != nil {
			return false
		}
		return b2[0] >= b1[0]-1e-12 && b1[0] >= 0 && b2[0] <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPairSystemSolveSymmetric(t *testing.T) {
	// Symmetric two-sided system: acceptance ≈ (1−B)² for the one-link
	// blocking B at the thinned load. Sanity: acceptance in (0,1) and
	// below the single-link acceptance.
	sys := PairSystem{
		CapacityUnits: 10,
		In:            2, Out: 2,
		Classes: []Class{{Units: 1, Erlangs: 16}}, // 8 Erlangs per link before thinning
	}
	res, err := sys.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.AcceptRate <= 0 || res.AcceptRate >= 1 {
		t.Fatalf("accept = %v", res.AcceptRate)
	}
	oneSide, err := KaufmanRoberts(10, []Class{{Units: 1, Erlangs: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if res.AcceptRate > (1-oneSide[0])+1e-9 {
		t.Errorf("two-sided acceptance %v above single-link %v", res.AcceptRate, 1-oneSide[0])
	}
	if res.Iterations < 2 {
		t.Errorf("fixed point converged suspiciously fast: %d", res.Iterations)
	}
}

func TestPairSystemLightLoadAcceptsAll(t *testing.T) {
	sys := PairSystem{
		CapacityUnits: 100,
		In:            10, Out: 10,
		Classes: []Class{{Units: 1, Erlangs: 5}},
	}
	res, err := sys.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.AcceptRate < 0.999 {
		t.Errorf("light load acceptance = %v", res.AcceptRate)
	}
}

func TestPairSystemValidation(t *testing.T) {
	if _, err := (PairSystem{CapacityUnits: 10, In: 0, Out: 1, Classes: []Class{{Units: 1, Erlangs: 1}}}).Solve(); err == nil {
		t.Error("zero links accepted")
	}
	if _, err := (PairSystem{CapacityUnits: 10, In: 1, Out: 1}).Solve(); err == nil {
		t.Error("no classes accepted")
	}
}

func TestWeightedAccept(t *testing.T) {
	got, err := WeightedAccept([]float64{1, 0}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.75) > 1e-12 {
		t.Errorf("weighted = %v", got)
	}
	if _, err := WeightedAccept([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := WeightedAccept([]float64{1}, []float64{-1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := WeightedAccept([]float64{1}, []float64{0}); err == nil {
		t.Error("zero weight total accepted")
	}
}
