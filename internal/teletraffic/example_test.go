package teletraffic_test

import (
	"fmt"
	"log"

	"gridbw/internal/teletraffic"
)

// ExampleKaufmanRoberts computes multirate blocking on one 10-unit link
// shared by thin and wide reservations.
func ExampleKaufmanRoberts() {
	blocking, err := teletraffic.KaufmanRoberts(10, []teletraffic.Class{
		{Units: 1, Erlangs: 4}, // thin flows
		{Units: 5, Erlangs: 1}, // wide flows
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("thin blocking %.3f, wide blocking %.3f\n", blocking[0], blocking[1])
	// Output:
	// thin blocking 0.095, wide blocking 0.552
}
