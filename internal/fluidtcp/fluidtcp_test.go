package fluidtcp

import (
	"strings"
	"testing"
	"testing/quick"

	"gridbw/internal/request"
	"gridbw/internal/topology"
	"gridbw/internal/units"
	"gridbw/internal/workload"
)

func flow(id int, in, eg topology.PointID, start units.Time, vol units.Volume, maxRate units.Bandwidth, slack float64) request.Request {
	return request.Request{
		ID: request.ID(id), Ingress: in, Egress: eg,
		Start: start, Finish: start + vol.Over(maxRate)*units.Time(slack),
		Volume: vol, MaxRate: maxRate,
	}
}

func TestSingleFlowRunsAtCap(t *testing.T) {
	net := topology.Uniform(1, 1, 1*units.GBps)
	reqs := request.MustNewSet([]request.Request{
		flow(0, 0, 0, 10, 100*units.GB, 500*units.MBps, 3),
	})
	res, err := Simulate(net, reqs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) != 1 {
		t.Fatalf("flows = %d", len(res.Flows))
	}
	f := res.Flows[0]
	if f.Outcome != Completed {
		t.Fatalf("outcome = %v", f.Outcome)
	}
	// 100 GB at the 500 MB/s host cap: 200 s, finishing at t=210.
	if !units.ApproxEq(float64(f.Finish), 210) {
		t.Errorf("finish = %v, want 210", f.Finish)
	}
	if !units.ApproxEq(f.Slowdown, 1) {
		t.Errorf("slowdown = %v, want 1", f.Slowdown)
	}
	if !units.ApproxEq(float64(f.Moved), float64(100*units.GB)) {
		t.Errorf("moved = %v", f.Moved)
	}
}

func TestTwoFlowsShareThenSpeedUp(t *testing.T) {
	net := topology.Uniform(1, 1, 1*units.GBps)
	// Both uncapped-by-host (cap = 1 GB/s): they split the gigabit while
	// both active; the second finishes faster after the first completes.
	reqs := request.MustNewSet([]request.Request{
		flow(0, 0, 0, 0, 50*units.GB, 1*units.GBps, 10),
		flow(1, 0, 0, 0, 100*units.GB, 1*units.GBps, 10),
	})
	res, err := Simulate(net, reqs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f0, f1 := res.Flows[0], res.Flows[1]
	if f0.Outcome != Completed || f1.Outcome != Completed {
		t.Fatalf("outcomes = %v, %v", f0.Outcome, f1.Outcome)
	}
	// Flow 0: 50 GB at 500 MB/s → t=100. Flow 1: 50 GB at 500 then 50 GB
	// at 1000 → t=150.
	if !units.ApproxEq(float64(f0.Finish), 100) {
		t.Errorf("f0 finish = %v, want 100", f0.Finish)
	}
	if !units.ApproxEq(float64(f1.Finish), 150) {
		t.Errorf("f1 finish = %v, want 150", f1.Finish)
	}
}

func TestDeadlineMiss(t *testing.T) {
	net := topology.Uniform(1, 1, 1*units.GBps)
	// Two flows with slack 1.5 sharing one point: each gets 500 MB/s but
	// needs ~667 MB/s on average to make its deadline.
	reqs := request.MustNewSet([]request.Request{
		flow(0, 0, 0, 0, 100*units.GB, 1*units.GBps, 1.5),
		flow(1, 0, 0, 0, 100*units.GB, 1*units.GBps, 1.5),
	})
	res, err := Simulate(net, reqs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// One of them completes only if the other dies first; with identical
	// flows both straddle: flow 0 and 1 split until t=150 (deadline), each
	// having moved 75 GB < 100 GB: both miss.
	for _, f := range res.Flows {
		if f.Outcome != DeadlineMissed {
			t.Errorf("flow %d outcome = %v, want deadline-missed", f.Request, f.Outcome)
		}
		if f.Moved >= 100*units.GB {
			t.Errorf("flow %d moved %v yet missed", f.Request, f.Moved)
		}
	}
	if res.FailureRate() != 1 {
		t.Errorf("failure rate = %v", res.FailureRate())
	}
}

func TestDeadlinesNotEnforced(t *testing.T) {
	net := topology.Uniform(1, 1, 1*units.GBps)
	reqs := request.MustNewSet([]request.Request{
		flow(0, 0, 0, 0, 100*units.GB, 1*units.GBps, 1.5),
		flow(1, 0, 0, 0, 100*units.GB, 1*units.GBps, 1.5),
	})
	cfg := Config{EnforceDeadlines: false}
	res, err := Simulate(net, reqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Flows {
		if f.Outcome != Completed {
			t.Errorf("flow %d outcome = %v", f.Request, f.Outcome)
		}
	}
	if res.MeanSlowdown() <= 1 {
		t.Errorf("mean slowdown = %v, want > 1 under contention", res.MeanSlowdown())
	}
}

func TestStarvationAbort(t *testing.T) {
	// A dead ingress point: the flow's share is 0 forever; with a floor
	// and timeout it aborts at start + timeout.
	net, err := topology.New(topology.Config{
		Ingress: []units.Bandwidth{0},
		Egress:  []units.Bandwidth{1 * units.GBps},
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := request.MustNewSet([]request.Request{
		flow(0, 0, 0, 5, 10*units.GB, 100*units.MBps, 100),
	})
	cfg := Config{StarvationRate: 1 * units.MBps, StarvationTimeout: 30, EnforceDeadlines: false}
	res, err := Simulate(net, reqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := res.Flows[0]
	if f.Outcome != Starved {
		t.Fatalf("outcome = %v", f.Outcome)
	}
	if !units.ApproxEq(float64(f.Finish), 35) {
		t.Errorf("abort at %v, want 35", f.Finish)
	}
	if f.Moved != 0 {
		t.Errorf("moved = %v", f.Moved)
	}
}

func TestStarvationConfigValidation(t *testing.T) {
	net := topology.Uniform(1, 1, 1*units.GBps)
	reqs := request.MustNewSet(nil)
	cfg := Config{StarvationRate: 1 * units.MBps, StarvationTimeout: 0}
	if _, err := Simulate(net, reqs, cfg); err == nil {
		t.Error("floor without timeout accepted")
	}
}

func TestZeroCapacityWithNoFailureModelTerminates(t *testing.T) {
	net, err := topology.New(topology.Config{
		Ingress: []units.Bandwidth{0},
		Egress:  []units.Bandwidth{1 * units.GBps},
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := request.MustNewSet([]request.Request{
		flow(0, 0, 0, 0, 10*units.GB, 100*units.MBps, 2),
	})
	res, err := Simulate(net, reqs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows[0].Outcome != Starved {
		t.Errorf("outcome = %v", res.Flows[0].Outcome)
	}
}

func TestEmptySet(t *testing.T) {
	net := topology.Uniform(1, 1, 1*units.GBps)
	res, err := Simulate(net, request.MustNewSet(nil), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) != 0 || res.FailureRate() != 0 || res.MeanSlowdown() != 0 || res.SlowdownP95() != 0 {
		t.Error("empty run not empty")
	}
}

func TestOutcomeString(t *testing.T) {
	if Completed.String() != "completed" || DeadlineMissed.String() != "deadline-missed" || Starved.String() != "starved" {
		t.Error("outcome strings")
	}
	if !strings.Contains(Outcome(9).String(), "9") {
		t.Error("unknown outcome string")
	}
}

// TestVolumeConservationProperty: on random workloads every flow's moved
// volume never exceeds its request volume, completed flows move exactly
// their volume, and all flows terminate.
func TestVolumeConservationProperty(t *testing.T) {
	cfg := workload.Default(workload.Flexible)
	cfg.Horizon = 200
	cfg.MeanInterArrival = 2
	f := func(seed int64) bool {
		reqs, err := cfg.Generate(seed)
		if err != nil {
			return false
		}
		res, err := Simulate(cfg.Network(), reqs, DefaultConfig())
		if err != nil {
			return false
		}
		if len(res.Flows) != reqs.Len() {
			return false
		}
		for _, f := range res.Flows {
			r := reqs.Get(f.Request)
			if f.Moved > r.Volume*(1+units.Eps) {
				return false
			}
			if f.Outcome == Completed {
				if !units.ApproxEq(float64(f.Moved), float64(r.Volume)) {
					return false
				}
				if f.Finish > r.Finish*(1+units.Eps)+units.Eps {
					return false // enforced deadlines: completion within window
				}
				if f.Slowdown < 1-1e-9 {
					return false // cannot beat the host cap
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestOverloadCausesFailures pins the motivation claim: under heavy load
// with tight windows, a substantial share of uncontrolled transfers fail.
func TestOverloadCausesFailures(t *testing.T) {
	cfg := workload.Default(workload.Flexible)
	cfg.MeanInterArrival = 0.5
	cfg.Horizon = 1000
	cfg.SlackMin, cfg.SlackMax = 1.2, 2
	reqs, err := cfg.Generate(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(cfg.Network(), reqs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.FailureRate() < 0.3 {
		t.Errorf("failure rate %v under heavy overload, expected substantial failures", res.FailureRate())
	}
	t.Logf("overload: %d flows, failure rate %.2f, mean slowdown %.2f, p95 %.2f",
		len(res.Flows), res.FailureRate(), res.MeanSlowdown(), res.SlowdownP95())
}
