// Package fluidtcp is the statistical-sharing baseline the paper argues
// against: bulk transfers ride uncontrolled congestion-controlled flows
// that share the access bottlenecks max-min fairly, with no admission
// control.
//
// The simulator is a fluid model at the same session-level granularity as
// the paper's system model: every active flow receives its max-min fair
// share (re-solved at each arrival and departure), accumulates volume at
// that rate, and either completes, misses its transfer deadline, or —
// emulating TCP timeout collapse under deep congestion — aborts after its
// share stays below a starvation floor for a configurable duration (§1:
// "it is also not uncommon for the transfers to fail entirely, because
// the TCP connections time out").
//
// Table T3 of DESIGN.md contrasts the failure and predictability figures
// of this baseline against the paper's admission-controlled schedulers on
// identical workloads.
package fluidtcp

import (
	"fmt"
	"math"
	"sort"

	"gridbw/internal/maxmin"
	"gridbw/internal/request"
	"gridbw/internal/topology"
	"gridbw/internal/units"
)

// Outcome classifies how a flow ended.
type Outcome int

const (
	// Completed flows moved their full volume by their deadline.
	Completed Outcome = iota
	// DeadlineMissed flows were still transferring at tf(r); the grid job
	// that needed the data has lost its reservation, so the transfer is
	// counted as failed.
	DeadlineMissed
	// Starved flows aborted after their fair share stayed below the
	// starvation floor for the timeout duration (TCP timeout emulation).
	Starved
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Completed:
		return "completed"
	case DeadlineMissed:
		return "deadline-missed"
	case Starved:
		return "starved"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// FlowResult is the fate of one transfer.
type FlowResult struct {
	Request request.ID
	Outcome Outcome
	// Finish is the completion or abort instant.
	Finish units.Time
	// Moved is the volume actually transferred.
	Moved units.Volume
	// MeanRate is Moved over the active duration (0 for instant aborts).
	MeanRate units.Bandwidth
	// IdealDuration is vol/MaxRate — the transfer time on an idle network.
	IdealDuration units.Time
	// Slowdown is actual duration over IdealDuration (completed flows).
	Slowdown float64
}

// Config tunes the baseline's failure model.
type Config struct {
	// StarvationRate is the share below which a flow is considered
	// starving. Zero disables starvation aborts.
	StarvationRate units.Bandwidth
	// StarvationTimeout is how long a flow must starve before aborting.
	StarvationTimeout units.Time
	// EnforceDeadlines aborts flows at tf(r) when true; when false flows
	// run to completion and deadline misses are only recorded.
	EnforceDeadlines bool
}

// DefaultConfig matches the Table T3 runs: a 1 MB/s floor with a
// 60-second timeout and enforced windows.
func DefaultConfig() Config {
	return Config{
		StarvationRate:    1 * units.MBps,
		StarvationTimeout: 60 * units.Second,
		EnforceDeadlines:  true,
	}
}

// Result aggregates a simulation run.
type Result struct {
	Flows []FlowResult
	// Clock is the instant the last flow ended.
	Clock units.Time
}

// CompletedCount, FailedCount and FailureRate summarize outcomes.
func (r *Result) CompletedCount() int {
	n := 0
	for _, f := range r.Flows {
		if f.Outcome == Completed {
			n++
		}
	}
	return n
}

// FailedCount reports flows that missed their deadline or starved.
func (r *Result) FailedCount() int { return len(r.Flows) - r.CompletedCount() }

// FailureRate reports FailedCount over the number of flows (0 if none).
func (r *Result) FailureRate() float64 {
	if len(r.Flows) == 0 {
		return 0
	}
	return float64(r.FailedCount()) / float64(len(r.Flows))
}

// MeanSlowdown reports the mean slowdown of completed flows (1 = ideal).
func (r *Result) MeanSlowdown() float64 {
	var sum float64
	n := 0
	for _, f := range r.Flows {
		if f.Outcome == Completed {
			sum += f.Slowdown
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// SlowdownP95 reports the 95th-percentile slowdown of completed flows —
// the paper's "predictability" concern is exactly this tail.
func (r *Result) SlowdownP95() float64 {
	var xs []float64
	for _, f := range r.Flows {
		if f.Outcome == Completed {
			xs = append(xs, f.Slowdown)
		}
	}
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	idx := int(math.Ceil(0.95*float64(len(xs)))) - 1
	if idx < 0 {
		idx = 0
	}
	return xs[idx]
}

// activeFlow is the simulator's per-flow state.
type activeFlow struct {
	req       request.Request
	remaining units.Volume
	rate      units.Bandwidth
	started   units.Time
	// starvedSince is the instant the current starvation episode began;
	// negative when not starving.
	starvedSince units.Time
}

// Simulate runs the fluid baseline for the request set on the network.
// Every request becomes a flow at its Start; there is no admission
// control. The function is deterministic.
func Simulate(net *topology.Network, reqs *request.Set, cfg Config) (*Result, error) {
	if cfg.StarvationRate > 0 && cfg.StarvationTimeout <= 0 {
		return nil, fmt.Errorf("fluidtcp: starvation floor without a positive timeout")
	}
	pending := reqs.All()
	sort.Slice(pending, func(i, j int) bool {
		if pending[i].Start != pending[j].Start {
			return pending[i].Start < pending[j].Start
		}
		return pending[i].ID < pending[j].ID
	})

	res := &Result{}
	active := map[request.ID]*activeFlow{}
	now := units.Time(0)
	if len(pending) > 0 {
		now = pending[0].Start
	}

	resolve := func() error {
		flows := make([]maxmin.Flow, 0, len(active))
		ids := make([]request.ID, 0, len(active))
		for id := range active {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			f := active[id]
			flows = append(flows, maxmin.Flow{
				ID:      int(id),
				Ingress: f.req.Ingress,
				Egress:  f.req.Egress,
				Cap:     f.req.MaxRate,
			})
		}
		alloc, err := maxmin.Share(net, flows)
		if err != nil {
			return err
		}
		for _, id := range ids {
			f := active[id]
			f.rate = alloc[int(id)]
			if cfg.StarvationRate > 0 {
				if f.rate < cfg.StarvationRate {
					if f.starvedSince < 0 {
						f.starvedSince = now
					}
				} else {
					f.starvedSince = -1
				}
			}
		}
		return nil
	}

	finish := func(f *activeFlow, outcome Outcome, at units.Time) {
		dur := at - f.started
		var mean units.Bandwidth
		if dur > 0 {
			mean = (f.req.Volume - f.remaining).Rate(dur)
		}
		fr := FlowResult{
			Request:       f.req.ID,
			Outcome:       outcome,
			Finish:        at,
			Moved:         f.req.Volume - f.remaining,
			MeanRate:      mean,
			IdealDuration: f.req.MinDuration(),
		}
		if outcome == Completed && fr.IdealDuration > 0 {
			fr.Slowdown = float64(dur) / float64(fr.IdealDuration)
		}
		res.Flows = append(res.Flows, fr)
		delete(active, f.req.ID)
		if at > res.Clock {
			res.Clock = at
		}
	}

	const inf = units.Time(math.MaxFloat64)
	for len(pending) > 0 || len(active) > 0 {
		// Admit all arrivals at the current instant.
		progressed := false
		for len(pending) > 0 && pending[0].Start <= now {
			r := pending[0]
			pending = pending[1:]
			active[r.ID] = &activeFlow{req: r, remaining: r.Volume, started: now, starvedSince: -1}
			progressed = true
		}
		if progressed {
			if err := resolve(); err != nil {
				return nil, err
			}
		}

		// Next event: arrival, completion, deadline, or starvation abort.
		next := inf
		if len(pending) > 0 {
			next = pending[0].Start
		}
		ids := make([]request.ID, 0, len(active))
		for id := range active {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			f := active[id]
			if f.rate > 0 {
				if t := now + f.remaining.Over(f.rate); t < next {
					next = t
				}
			}
			if cfg.EnforceDeadlines && f.req.Finish < next {
				next = f.req.Finish
			}
			if cfg.StarvationRate > 0 && f.starvedSince >= 0 {
				if t := f.starvedSince + cfg.StarvationTimeout; t < next {
					next = t
				}
			}
		}
		if next == inf {
			// All active flows have zero rate forever (dead points) and no
			// failure model can fire: abort them to terminate.
			for _, id := range ids {
				finish(active[id], Starved, now)
			}
			continue
		}

		// Advance fluid volumes to `next`.
		dt := next - now
		for _, id := range ids {
			f := active[id]
			f.remaining -= f.rate.For(dt)
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
		now = next

		// Fire events at `now`. Completion wins over deadline at the same
		// instant; starvation aborts fire only if still starving.
		changed := false
		for _, id := range ids {
			f, ok := active[id]
			if !ok {
				continue
			}
			switch {
			case f.remaining <= units.Volume(units.Eps)*f.req.Volume:
				finish(f, Completed, now)
				changed = true
			case cfg.EnforceDeadlines && now >= f.req.Finish:
				finish(f, DeadlineMissed, now)
				changed = true
			case cfg.StarvationRate > 0 && f.starvedSince >= 0 &&
				now >= f.starvedSince+cfg.StarvationTimeout:
				finish(f, Starved, now)
				changed = true
			}
		}
		if changed {
			if err := resolve(); err != nil {
				return nil, err
			}
		}
	}
	sort.Slice(res.Flows, func(i, j int) bool { return res.Flows[i].Request < res.Flows[j].Request })
	return res, nil
}
