// Package maxmin implements max-min fair bandwidth sharing — the
// Internet-style allocation objective the paper contrasts its admission
// control against (§1, §6).
//
// Given a set of flows, each crossing one ingress and one egress point and
// optionally capped by a host rate, the progressive-filling algorithm
// raises every unfrozen flow's rate uniformly until some point saturates
// (or a flow hits its cap); flows through a saturated point are frozen at
// the current level and filling continues. The result is the unique
// allocation in which no flow's rate can be increased without decreasing
// the rate of a flow with an already smaller-or-equal rate.
//
// The fluid-TCP baseline (internal/fluidtcp) re-solves this allocation on
// every arrival and departure to emulate the session-level behaviour of
// congestion-controlled flows sharing the grid's access bottlenecks.
package maxmin

import (
	"fmt"
	"math"

	"gridbw/internal/topology"
	"gridbw/internal/units"
)

// Flow is one active transfer for allocation purposes.
type Flow struct {
	// ID is an arbitrary caller-chosen identifier (unique per call).
	ID int
	// Ingress and Egress are the points the flow crosses.
	Ingress, Egress topology.PointID
	// Cap is the host rate limit; 0 or negative means uncapped.
	Cap units.Bandwidth
}

// Allocation maps flow IDs to their max-min fair rates.
type Allocation map[int]units.Bandwidth

// Share computes the max-min fair allocation of the network's access
// capacities among the flows by progressive filling. It returns an error
// on duplicate flow IDs or out-of-range points.
func Share(net *topology.Network, flows []Flow) (Allocation, error) {
	alloc := make(Allocation, len(flows))
	seen := make(map[int]bool, len(flows))
	for _, f := range flows {
		if seen[f.ID] {
			return nil, fmt.Errorf("maxmin: duplicate flow ID %d", f.ID)
		}
		seen[f.ID] = true
		if int(f.Ingress) < 0 || int(f.Ingress) >= net.NumIngress() {
			return nil, fmt.Errorf("maxmin: flow %d ingress %d out of range", f.ID, f.Ingress)
		}
		if int(f.Egress) < 0 || int(f.Egress) >= net.NumEgress() {
			return nil, fmt.Errorf("maxmin: flow %d egress %d out of range", f.ID, f.Egress)
		}
		alloc[f.ID] = 0
	}

	frozen := make(map[int]bool, len(flows))
	level := units.Bandwidth(0) // current uniform fill level of unfrozen flows

	remIn := make([]units.Bandwidth, net.NumIngress())
	remOut := make([]units.Bandwidth, net.NumEgress())
	for i := range remIn {
		remIn[i] = net.Bin(topology.PointID(i))
	}
	for e := range remOut {
		remOut[e] = net.Bout(topology.PointID(e))
	}

	for {
		// Count unfrozen flows per point.
		cntIn := make([]int, net.NumIngress())
		cntOut := make([]int, net.NumEgress())
		unfrozen := 0
		for _, f := range flows {
			if frozen[f.ID] {
				continue
			}
			unfrozen++
			cntIn[int(f.Ingress)]++
			cntOut[int(f.Egress)]++
		}
		if unfrozen == 0 {
			break
		}
		// Largest uniform increment before some point saturates or some
		// flow hits its cap.
		inc := units.Bandwidth(math.Inf(1))
		for i, c := range cntIn {
			if c > 0 {
				if d := remIn[i] / units.Bandwidth(c); d < inc {
					inc = d
				}
			}
		}
		for e, c := range cntOut {
			if c > 0 {
				if d := remOut[e] / units.Bandwidth(c); d < inc {
					inc = d
				}
			}
		}
		for _, f := range flows {
			if frozen[f.ID] || f.Cap <= 0 {
				continue
			}
			if d := f.Cap - level; d < inc {
				inc = d
			}
		}
		if inc < 0 {
			inc = 0
		}
		// Apply the increment.
		for _, f := range flows {
			if frozen[f.ID] {
				continue
			}
			alloc[f.ID] += inc
			remIn[int(f.Ingress)] -= inc
			remOut[int(f.Egress)] -= inc
		}
		level += inc
		// Freeze flows on saturated points or at their caps.
		progress := false
		for _, f := range flows {
			if frozen[f.ID] {
				continue
			}
			satIn := remIn[int(f.Ingress)] <= units.Bandwidth(units.Eps)*net.Bin(f.Ingress)+units.Bandwidth(units.Eps)
			satOut := remOut[int(f.Egress)] <= units.Bandwidth(units.Eps)*net.Bout(f.Egress)+units.Bandwidth(units.Eps)
			capped := f.Cap > 0 && level >= f.Cap*(1-units.Eps)
			if satIn || satOut || capped {
				frozen[f.ID] = true
				progress = true
			}
		}
		if !progress {
			// Numerical safety valve: no point saturated and no cap hit
			// means inc was infinite (no constraint at all) — impossible
			// with finite capacities, but guard against livelock.
			return nil, fmt.Errorf("maxmin: progressive filling stalled")
		}
	}
	return alloc, nil
}

// IsMaxMinFair verifies the defining property of a max-min fair
// allocation within tolerance: every flow is bottlenecked — it sits at
// its cap, or it crosses a saturated point on which it has a maximal
// rate. It is used by property tests.
func IsMaxMinFair(net *topology.Network, flows []Flow, alloc Allocation) error {
	usedIn := make([]units.Bandwidth, net.NumIngress())
	usedOut := make([]units.Bandwidth, net.NumEgress())
	for _, f := range flows {
		usedIn[int(f.Ingress)] += alloc[f.ID]
		usedOut[int(f.Egress)] += alloc[f.ID]
	}
	for i, u := range usedIn {
		if !units.FitsWithin(u, 0, net.Bin(topology.PointID(i))) {
			return fmt.Errorf("maxmin: ingress %d over capacity (%v)", i, u)
		}
	}
	for e, u := range usedOut {
		if !units.FitsWithin(u, 0, net.Bout(topology.PointID(e))) {
			return fmt.Errorf("maxmin: egress %d over capacity (%v)", e, u)
		}
	}
	const tol = 1e-6
	for _, f := range flows {
		rate := alloc[f.ID]
		if f.Cap > 0 && rate >= f.Cap*(1-tol) {
			continue // bottlenecked by its own cap
		}
		// Must cross a saturated point where it is among the largest.
		bottlenecked := false
		for _, side := range []struct {
			used, capacity units.Bandwidth
			point          topology.PointID
			ingress        bool
		}{
			{usedIn[int(f.Ingress)], net.Bin(f.Ingress), f.Ingress, true},
			{usedOut[int(f.Egress)], net.Bout(f.Egress), f.Egress, false},
		} {
			if float64(side.used) < float64(side.capacity)*(1-tol) {
				continue // point not saturated
			}
			maximal := true
			for _, g := range flows {
				onPoint := (side.ingress && g.Ingress == side.point) ||
					(!side.ingress && g.Egress == side.point)
				if onPoint && float64(alloc[g.ID]) > float64(rate)*(1+tol) {
					maximal = false
					break
				}
			}
			if maximal {
				bottlenecked = true
				break
			}
		}
		if !bottlenecked {
			return fmt.Errorf("maxmin: flow %d (rate %v) has no bottleneck", f.ID, rate)
		}
	}
	return nil
}
