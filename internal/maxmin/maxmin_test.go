package maxmin

import (
	"testing"
	"testing/quick"

	"gridbw/internal/rng"
	"gridbw/internal/topology"
	"gridbw/internal/units"
)

func TestSingleFlowGetsEverything(t *testing.T) {
	net := topology.Uniform(1, 1, 1*units.GBps)
	a, err := Share(net, []Flow{{ID: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEq(float64(a[0]), float64(1*units.GBps)) {
		t.Errorf("rate = %v, want full capacity", a[0])
	}
}

func TestEqualSplitOnSharedBottleneck(t *testing.T) {
	net := topology.Uniform(1, 1, 1*units.GBps)
	flows := []Flow{{ID: 0}, {ID: 1}, {ID: 2}, {ID: 3}}
	a, err := Share(net, flows)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range flows {
		if !units.ApproxEq(float64(a[f.ID]), float64(250*units.MBps)) {
			t.Errorf("flow %d rate = %v, want 250MB/s", f.ID, a[f.ID])
		}
	}
	if err := IsMaxMinFair(net, flows, a); err != nil {
		t.Error(err)
	}
}

func TestCapFreesBandwidthForOthers(t *testing.T) {
	net := topology.Uniform(1, 1, 1*units.GBps)
	flows := []Flow{
		{ID: 0, Cap: 100 * units.MBps},
		{ID: 1},
	}
	a, err := Share(net, flows)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEq(float64(a[0]), float64(100*units.MBps)) {
		t.Errorf("capped flow = %v", a[0])
	}
	if !units.ApproxEq(float64(a[1]), float64(900*units.MBps)) {
		t.Errorf("uncapped flow = %v, want the rest", a[1])
	}
	if err := IsMaxMinFair(net, flows, a); err != nil {
		t.Error(err)
	}
}

func TestClassicTwoBottleneckExample(t *testing.T) {
	// Ingress 0 carries flows A and B; egress 0 carries flows B and C;
	// ingress 1 (for C) and egress 1 (for A) are otherwise idle, with
	// egress capacity 2 GB/s so only the 1 GB/s points bind.
	net, err := topology.New(topology.Config{
		Ingress: []units.Bandwidth{1 * units.GBps, 2 * units.GBps},
		Egress:  []units.Bandwidth{1 * units.GBps, 2 * units.GBps},
	})
	if err != nil {
		t.Fatal(err)
	}
	flows := []Flow{
		{ID: 0, Ingress: 0, Egress: 1}, // A
		{ID: 1, Ingress: 0, Egress: 0}, // B
		{ID: 2, Ingress: 1, Egress: 0}, // C
	}
	a, err := Share(net, flows)
	if err != nil {
		t.Fatal(err)
	}
	// Max-min: A=B=C=500MB/s would leave slack... progressive filling:
	// all rise to 500 where both 1GB/s points saturate simultaneously.
	for id := 0; id <= 2; id++ {
		if !units.ApproxEq(float64(a[id]), float64(500*units.MBps)) {
			t.Errorf("flow %d = %v, want 500MB/s", id, a[id])
		}
	}
	if err := IsMaxMinFair(net, flows, a); err != nil {
		t.Error(err)
	}
}

func TestUnevenBottlenecks(t *testing.T) {
	// Two flows share ingress 0 (1 GB/s); one of them alone uses egress 0,
	// the other shares egress 1 (500 MB/s) with a third flow from ingress 1.
	net, err := topology.New(topology.Config{
		Ingress: []units.Bandwidth{1 * units.GBps, 1 * units.GBps},
		Egress:  []units.Bandwidth{1 * units.GBps, 500 * units.MBps},
	})
	if err != nil {
		t.Fatal(err)
	}
	flows := []Flow{
		{ID: 0, Ingress: 0, Egress: 0},
		{ID: 1, Ingress: 0, Egress: 1},
		{ID: 2, Ingress: 1, Egress: 1},
	}
	a, err := Share(net, flows)
	if err != nil {
		t.Fatal(err)
	}
	// Egress 1 saturates first at level 250 freezing flows 1 and 2; flow 0
	// continues to 750 where ingress 0 saturates.
	if !units.ApproxEq(float64(a[1]), float64(250*units.MBps)) ||
		!units.ApproxEq(float64(a[2]), float64(250*units.MBps)) {
		t.Errorf("flows on narrow egress = %v, %v, want 250MB/s", a[1], a[2])
	}
	if !units.ApproxEq(float64(a[0]), float64(750*units.MBps)) {
		t.Errorf("flow 0 = %v, want 750MB/s", a[0])
	}
	if err := IsMaxMinFair(net, flows, a); err != nil {
		t.Error(err)
	}
}

func TestShareErrors(t *testing.T) {
	net := topology.Uniform(1, 1, 1*units.GBps)
	if _, err := Share(net, []Flow{{ID: 0}, {ID: 0}}); err == nil {
		t.Error("duplicate IDs accepted")
	}
	if _, err := Share(net, []Flow{{ID: 0, Ingress: 5}}); err == nil {
		t.Error("bad ingress accepted")
	}
	if _, err := Share(net, []Flow{{ID: 0, Egress: 5}}); err == nil {
		t.Error("bad egress accepted")
	}
}

func TestEmptyFlows(t *testing.T) {
	net := topology.Uniform(1, 1, 1*units.GBps)
	a, err := Share(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 0 {
		t.Errorf("allocation = %v", a)
	}
}

func TestZeroCapacityPoint(t *testing.T) {
	net, err := topology.New(topology.Config{
		Ingress: []units.Bandwidth{0},
		Egress:  []units.Bandwidth{1 * units.GBps},
	})
	if err != nil {
		t.Fatal(err)
	}
	flows := []Flow{{ID: 0}}
	a, err := Share(net, flows)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != 0 {
		t.Errorf("flow through dead point got %v", a[0])
	}
	if err := IsMaxMinFair(net, flows, a); err != nil {
		t.Error(err)
	}
}

// TestMaxMinFairProperty: on random topologies and flow sets the result
// always satisfies the max-min fairness certificate.
func TestMaxMinFairProperty(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		m := src.Intn(4) + 1
		n := src.Intn(4) + 1
		cfg := topology.Config{
			Ingress: make([]units.Bandwidth, m),
			Egress:  make([]units.Bandwidth, n),
		}
		for i := range cfg.Ingress {
			cfg.Ingress[i] = units.Bandwidth(src.Intn(10)+1) * 100 * units.MBps
		}
		for e := range cfg.Egress {
			cfg.Egress[e] = units.Bandwidth(src.Intn(10)+1) * 100 * units.MBps
		}
		net, err := topology.New(cfg)
		if err != nil {
			return false
		}
		k := src.Intn(12) + 1
		flows := make([]Flow, k)
		for i := range flows {
			flows[i] = Flow{
				ID:      i,
				Ingress: topology.PointID(src.Intn(m)),
				Egress:  topology.PointID(src.Intn(n)),
			}
			if src.Bool(0.4) {
				flows[i].Cap = units.Bandwidth(src.Intn(900)+100) * units.MBps
			}
		}
		a, err := Share(net, flows)
		if err != nil {
			return false
		}
		return IsMaxMinFair(net, flows, a) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
