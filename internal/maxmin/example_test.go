package maxmin_test

import (
	"fmt"
	"log"

	"gridbw/internal/maxmin"
	"gridbw/internal/topology"
	"gridbw/internal/units"
)

// ExampleShare computes the max-min fair allocation on a shared ingress:
// the capped flow keeps its cap, the other two split the rest evenly.
func ExampleShare() {
	net := topology.Uniform(1, 3, 900*units.MBps)
	flows := []maxmin.Flow{
		{ID: 0, Ingress: 0, Egress: 0, Cap: 100 * units.MBps},
		{ID: 1, Ingress: 0, Egress: 1},
		{ID: 2, Ingress: 0, Egress: 2},
	}
	alloc, err := maxmin.Share(net, flows)
	if err != nil {
		log.Fatal(err)
	}
	for id := 0; id <= 2; id++ {
		fmt.Printf("flow %d: %v\n", id, alloc[id])
	}
	// Output:
	// flow 0: 100MB/s
	// flow 1: 400MB/s
	// flow 2: 400MB/s
}
