package figures

import (
	"fmt"

	"gridbw/internal/metrics"
	"gridbw/internal/policy"
	"gridbw/internal/report"
	"gridbw/internal/sched"
	"gridbw/internal/sched/flexible"
	"gridbw/internal/sched/rigid"
	"gridbw/internal/topology"
	"gridbw/internal/units"
	"gridbw/internal/workload"
)

// orderingVariants builds the Table T10 contenders at one step length.
func orderingVariants(p policy.Policy, step units.Time) []sched.Scheduler {
	return []sched.Scheduler{
		flexible.Window{Policy: p, Step: step},
		flexible.WindowCostSkip(p, step),
		flexible.WindowEDF(p, step),
		flexible.WindowMinDemand(p, step),
		flexible.WindowRetry{Policy: p, Step: step},
	}
}

// OrderingRow is one Table T10 measurement.
type OrderingRow struct {
	Variant     string
	HeavyAccept float64
	LightAccept float64
}

// TabOrdering is the candidate-ordering ablation (Table T10): Algorithm
// 3's min-cost + stop-on-miss rule against skip-on-miss, EDF urgency,
// thinnest-first and the retry refinement, under heavy (1 s) and light
// (10 s) mean inter-arrival.
func TabOrdering(scale Scale) ([]OrderingRow, *report.Table, error) {
	if err := scale.Validate(); err != nil {
		return nil, nil, err
	}
	p := policy.FractionMaxRate(1)
	const step = 200 * units.Second

	measure := func(mia float64, s sched.Scheduler) (float64, error) {
		cfg := scale.flexibleAt(mia)
		net := cfg.Network()
		var acc float64
		for _, seed := range scale.Seeds {
			reqs, err := cfg.Generate(seed)
			if err != nil {
				return 0, err
			}
			out, err := s.Schedule(net, reqs)
			if err != nil {
				return 0, err
			}
			if err := out.Verify(); err != nil {
				return 0, err
			}
			acc += out.AcceptRate()
		}
		return acc / float64(len(scale.Seeds)), nil
	}

	t := &report.Table{
		Title:   "Table T10: WINDOW candidate-ordering ablation (accept rate, f=1, step 200)",
		Headers: []string{"variant", "heavy (1s)", "light (10s)"},
	}
	var rows []OrderingRow
	for _, s := range orderingVariants(p, step) {
		heavy, err := measure(1, s)
		if err != nil {
			return nil, nil, err
		}
		light, err := measure(10, s)
		if err != nil {
			return nil, nil, err
		}
		row := OrderingRow{Variant: s.Name(), HeavyAccept: heavy, LightAccept: light}
		rows = append(rows, row)
		t.AddRow(row.Variant, fmt.Sprintf("%.3f", heavy), fmt.Sprintf("%.3f", light))
	}
	return rows, t, nil
}

// HeterogeneityLevels returns the Table T11 platforms: 10+10 points with
// identical aggregate capacity (10 GB/s per side) but increasing spread.
func HeterogeneityLevels() []struct {
	Label string
	Make  func() *topology.Network
} {
	mk := func(caps []units.Bandwidth) *topology.Network {
		cp := make([]units.Bandwidth, len(caps))
		copy(cp, caps)
		net, err := topology.New(topology.Config{Ingress: cp, Egress: append([]units.Bandwidth{}, cp...)})
		if err != nil {
			panic("figures: " + err.Error())
		}
		return net
	}
	uniform := make([]units.Bandwidth, 10)
	mild := make([]units.Bandwidth, 10)
	strong := make([]units.Bandwidth, 10)
	for i := 0; i < 10; i++ {
		uniform[i] = 1 * units.GBps
		// Mild: 0.55…1.45 GB/s linear; strong: 0.1…1.9 GB/s linear. Both
		// sum to the uniform platform's 10 GB/s per side.
		mild[i] = units.Bandwidth(0.55+0.1*float64(i)) * units.GBps
		strong[i] = units.Bandwidth(0.1+1.8*float64(i)/9) * units.GBps
	}
	extreme := []units.Bandwidth{
		5.5 * units.GBps, 0.5 * units.GBps, 0.5 * units.GBps, 0.5 * units.GBps, 0.5 * units.GBps,
		0.5 * units.GBps, 0.5 * units.GBps, 0.5 * units.GBps, 0.5 * units.GBps, 0.5 * units.GBps,
	}
	return []struct {
		Label string
		Make  func() *topology.Network
	}{
		{"uniform (10x1GB/s)", func() *topology.Network { return mk(uniform) }},
		{"mild (0.55-1.45)", func() *topology.Network { return mk(mild) }},
		{"strong (0.1-1.9)", func() *topology.Network { return mk(strong) }},
		{"extreme (1x5.5 + 9x0.5)", func() *topology.Network { return mk(extreme) }},
	}
}

// HeterogeneityRow is one Table T11 measurement.
type HeterogeneityRow struct {
	Platform     string
	GreedyAccept float64
	WindowAccept float64
}

// TabHeterogeneity (Table T11) evaluates the heuristics beyond the
// paper's uniform platform: the same workload (uniform placement, same
// aggregate capacity) is scheduled on increasingly skewed capacity
// distributions. Skew concentrates demand-to-capacity mismatch on the
// small points and depresses the accept rate — quantifying how much the
// paper's uniform-platform results depend on uniformity.
func TabHeterogeneity(scale Scale) ([]HeterogeneityRow, *report.Table, error) {
	if err := scale.Validate(); err != nil {
		return nil, nil, err
	}
	cfg := scale.flexibleAt(2)
	p := policy.FractionMaxRate(1)
	t := &report.Table{
		Title:   "Table T11: capacity heterogeneity (same aggregate capacity, skewed points)",
		Headers: []string{"platform", "greedy accept", "window(400) accept"},
	}
	var rows []HeterogeneityRow
	for _, level := range HeterogeneityLevels() {
		net := level.Make()
		var gAcc, wAcc float64
		for _, seed := range scale.Seeds {
			reqs, err := cfg.Generate(seed)
			if err != nil {
				return nil, nil, err
			}
			g, err := flexible.Greedy{Policy: p}.Schedule(net, reqs)
			if err != nil {
				return nil, nil, err
			}
			if err := g.Verify(); err != nil {
				return nil, nil, err
			}
			w, err := (flexible.Window{Policy: p, Step: 400}).Schedule(net, reqs)
			if err != nil {
				return nil, nil, err
			}
			if err := w.Verify(); err != nil {
				return nil, nil, err
			}
			gAcc += g.AcceptRate()
			wAcc += w.AcceptRate()
		}
		k := float64(len(scale.Seeds))
		row := HeterogeneityRow{
			Platform: level.Label, GreedyAccept: gAcc / k, WindowAccept: wAcc / k,
		}
		rows = append(rows, row)
		t.AddRow(row.Platform, fmt.Sprintf("%.3f", row.GreedyAccept),
			fmt.Sprintf("%.3f", row.WindowAccept))
	}
	return rows, t, nil
}

// SensitivityRow is one Table T12 measurement: a heuristic under both
// rigid-generation readings.
type SensitivityRow struct {
	Heuristic                    string
	RateAccept, RateUtil         float64 // Rigid: window = vol/rate
	DurationAccept, DurationUtil float64 // RigidDuration: window independent
}

// TabGenerationSensitivity (Table T12) probes the Figure-4 divergence
// documented in EXPERIMENTS.md: §4.3 does not specify how rigid windows
// are generated, so we measure the heuristic orderings under both
// plausible readings — windows derived from an independently drawn rate
// (volume and demanded bandwidth independent) versus windows drawn
// independently of volume (bandwidth grows with volume).
func TabGenerationSensitivity(scale Scale) ([]SensitivityRow, *report.Table, error) {
	if err := scale.Validate(); err != nil {
		return nil, nil, err
	}
	heuristics := rigidHeuristics()
	const load = 3.0

	measure := func(kind workload.Kind, s sched.Scheduler) (float64, float64, error) {
		cfg := workload.Default(kind)
		cfg.Horizon = scale.Horizon
		cfg = cfg.WithLoad(load)
		net := cfg.Network()
		var acc, util float64
		for _, seed := range scale.Seeds {
			reqs, err := cfg.Generate(seed)
			if err != nil {
				return 0, 0, err
			}
			out, err := s.Schedule(net, reqs)
			if err != nil {
				return 0, 0, err
			}
			if err := out.Verify(); err != nil {
				return 0, 0, err
			}
			m := metrics.Evaluate(out, 0)
			acc += m.AcceptRate
			util += m.ScaledTimeUtil
		}
		k := float64(len(scale.Seeds))
		return acc / k, util / k, nil
	}

	t := &report.Table{
		Title:   "Table T12: Figure-4 sensitivity to rigid window generation (load 3, accept/util)",
		Headers: []string{"heuristic", "rate-derived accept", "rate-derived util", "independent-duration accept", "independent-duration util"},
	}
	var rows []SensitivityRow
	for _, s := range heuristics {
		ra, ru, err := measure(workload.Rigid, s)
		if err != nil {
			return nil, nil, err
		}
		da, du, err := measure(workload.RigidDuration, s)
		if err != nil {
			return nil, nil, err
		}
		row := SensitivityRow{Heuristic: s.Name(), RateAccept: ra, RateUtil: ru, DurationAccept: da, DurationUtil: du}
		rows = append(rows, row)
		t.AddRow(row.Heuristic,
			fmt.Sprintf("%.3f", ra), fmt.Sprintf("%.3f", ru),
			fmt.Sprintf("%.3f", da), fmt.Sprintf("%.3f", du))
	}
	return rows, t, nil
}

// rigidHeuristics lists the Figure-4 contenders in paper order.
func rigidHeuristics() []sched.Scheduler {
	return []sched.Scheduler{
		rigid.FCFS{}, rigid.MinVolSlots(), rigid.MinBWSlots(), rigid.CumulatedSlots(),
	}
}

// BurstFactors is the Table T13 axis.
func BurstFactors() []float64 { return []float64{1, 2, 3, 4} }

// BurstRow is one Table T13 measurement.
type BurstRow struct {
	Factor       float64
	GreedyAccept float64
	WindowAccept float64
	RetryAccept  float64
}

// TabBurstiness (Table T13) stresses the heuristics with on/off modulated
// arrivals at constant mean load: grid job batches release their
// transfers together. The measured result is a robustness finding: with
// bulk transfers lasting minutes to a day, occupancy integrates over many
// 200-second burst cycles and arrival burstiness up to factor 4 moves no
// heuristic by more than ~0.02 accept rate — admission discipline, not
// arrival pattern, dominates at this workload scale.
func TabBurstiness(scale Scale) ([]BurstRow, *report.Table, error) {
	if err := scale.Validate(); err != nil {
		return nil, nil, err
	}
	p := policy.FractionMaxRate(1)
	t := &report.Table{
		Title:   "Table T13: bursty arrivals (constant mean load, on/off factor swept)",
		Headers: []string{"burst factor", "greedy accept", "window(200) accept", "window-retry(200) accept"},
	}
	var rows []BurstRow
	for _, factor := range BurstFactors() {
		// Light mean load: the network is mostly free, so congestion is
		// entirely burst-induced — the regime where admission discipline
		// differences show (under saturation, bursts change little).
		cfg := scale.flexibleAt(8)
		if factor > 1 {
			cfg.Burst = &workload.BurstConfig{Cycle: 200, OnFraction: 0.2, Factor: factor}
		}
		net := cfg.Network()
		var g, w, r float64
		for _, seed := range scale.Seeds {
			reqs, err := cfg.Generate(seed)
			if err != nil {
				return nil, nil, err
			}
			for _, run := range []struct {
				s   sched.Scheduler
				acc *float64
			}{
				{flexible.Greedy{Policy: p}, &g},
				{flexible.Window{Policy: p, Step: 200}, &w},
				{flexible.WindowRetry{Policy: p, Step: 200}, &r},
			} {
				out, err := run.s.Schedule(net, reqs)
				if err != nil {
					return nil, nil, err
				}
				if err := out.Verify(); err != nil {
					return nil, nil, err
				}
				*run.acc += out.AcceptRate()
			}
		}
		k := float64(len(scale.Seeds))
		row := BurstRow{Factor: factor, GreedyAccept: g / k, WindowAccept: w / k, RetryAccept: r / k}
		rows = append(rows, row)
		t.AddRow(fmt.Sprintf("%g", factor),
			fmt.Sprintf("%.3f", row.GreedyAccept),
			fmt.Sprintf("%.3f", row.WindowAccept),
			fmt.Sprintf("%.3f", row.RetryAccept))
	}
	return rows, t, nil
}

// ResponseRow is one Table T14 measurement.
type ResponseRow struct {
	Scheduler    string
	AcceptRate   float64
	MeanResponse units.Time // mean σ − ts over accepted requests
}

// TabResponseTime (Table T14) quantifies the trade-off the paper states
// but does not measure (§5, interval-based heuristics): "more requests
// are expected to be processed in longer intervals; this leaves more
// space for optimization, at the price of a longer response time for
// grid users." Response time here is the wait between a request's
// arrival and its transfer start (σ − ts) over accepted requests; greedy
// admission answers immediately, WINDOW waits for the tick, and the
// retry variant can queue for many ticks.
func TabResponseTime(scale Scale) ([]ResponseRow, *report.Table, error) {
	if err := scale.Validate(); err != nil {
		return nil, nil, err
	}
	cfg := scale.flexibleAt(1)
	net := cfg.Network()
	p := policy.FractionMaxRate(1)
	contenders := []sched.Scheduler{
		flexible.Greedy{Policy: p},
		flexible.Window{Policy: p, Step: 50},
		flexible.Window{Policy: p, Step: 200},
		flexible.Window{Policy: p, Step: 800},
		flexible.WindowRetry{Policy: p, Step: 200},
	}
	t := &report.Table{
		Title:   "Table T14: accept rate vs decision response time (heavy load, f=1)",
		Headers: []string{"scheduler", "accept rate", "mean response (s)"},
	}
	var rows []ResponseRow
	for _, s := range contenders {
		var acc, resp float64
		var accN int
		for _, seed := range scale.Seeds {
			reqs, err := cfg.Generate(seed)
			if err != nil {
				return nil, nil, err
			}
			out, err := s.Schedule(net, reqs)
			if err != nil {
				return nil, nil, err
			}
			if err := out.Verify(); err != nil {
				return nil, nil, err
			}
			acc += out.AcceptRate()
			for _, d := range out.Decisions() {
				if d.Accepted {
					r := reqs.Get(d.Request)
					resp += float64(d.Grant.Sigma - r.Start)
					accN++
				}
			}
		}
		k := float64(len(scale.Seeds))
		row := ResponseRow{Scheduler: s.Name(), AcceptRate: acc / k}
		if accN > 0 {
			row.MeanResponse = units.Time(resp / float64(accN))
		}
		rows = append(rows, row)
		t.AddRow(row.Scheduler, fmt.Sprintf("%.3f", row.AcceptRate),
			fmt.Sprintf("%.1f", float64(row.MeanResponse)))
	}
	return rows, t, nil
}
