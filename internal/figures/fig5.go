package figures

import (
	"fmt"

	"gridbw/internal/experiment"
	"gridbw/internal/policy"
	"gridbw/internal/report"
	"gridbw/internal/sched/flexible"
	"gridbw/internal/units"
)

// Fig5Arrivals is the heavy-load mean-inter-arrival axis (seconds) of
// Figure 5.
func Fig5Arrivals() []float64 { return []float64{0.1, 0.2, 0.5, 1, 2, 5} }

// Fig5Steps are the WINDOW interval lengths compared in Figure 5.
func Fig5Steps() []units.Time { return []units.Time{50, 100, 200, 400, 800} }

// Fig5 reproduces Figure 5: FCFS (greedy) versus the interval-based
// heuristic with several window lengths, under heavy load with the f=1
// bandwidth policy.
func Fig5(scale Scale) ([]experiment.Series, *report.Table, error) {
	if err := scale.Validate(); err != nil {
		return nil, nil, err
	}
	series, err := experiment.Sweep(Fig5Arrivals(), scale.Seeds, func(mia float64) []experiment.Scenario {
		cfg := scale.flexibleAt(mia)
		p := policy.FractionMaxRate(1)
		out := []experiment.Scenario{{
			Label:     "fcfs",
			Workload:  cfg,
			Scheduler: flexible.Greedy{Policy: p},
		}}
		for _, step := range Fig5Steps() {
			out = append(out, experiment.Scenario{
				Label:     fmt.Sprintf("window(%g)", float64(step)),
				Workload:  cfg,
				Scheduler: flexible.Window{Policy: p, Step: step},
			})
		}
		return out
	})
	if err != nil {
		return nil, nil, err
	}
	table := report.SeriesTable(
		"Figure 5: accept rate vs mean inter-arrival (s), heavy load, f=1",
		"inter-arrival", series, experiment.AcceptRateOf)
	return series, table, nil
}
