package figures

import (
	"fmt"

	"gridbw/internal/hotspot"
	"gridbw/internal/policy"
	"gridbw/internal/report"
	"gridbw/internal/request"
	"gridbw/internal/rng"
	"gridbw/internal/sched/flexible"
	"gridbw/internal/sched/longlived"
	"gridbw/internal/topology"
	"gridbw/internal/units"
)

// HotspotResult is the Table T6 outcome: the §7 future-work hot-spot
// relief evaluated on a replica-skewed workload.
type HotspotResult struct {
	BeforeAccept, AfterAccept       float64
	BeforeImbalance, AfterImbalance float64
	HottestBefore, HottestAfter     float64 // pressure of the hottest point
}

// TabHotspot reproduces the future-work experiment (Table T6): a workload
// whose datasets are all sourced from a few popular sites is scheduled
// as-is and after replica-aware re-homing; the table reports accept rate
// and imbalance before and after.
func TabHotspot(scale Scale) (*HotspotResult, *report.Table, error) {
	if err := scale.Validate(); err != nil {
		return nil, nil, err
	}
	src := rng.New(scale.Seeds[0])
	net := topology.Uniform(10, 10, 1*units.GBps)

	// Skewed demand: 80% of transfers source from sites 0-1 (the "popular
	// dataset" holders); each dataset is replicated on three sites.
	n := int(float64(scale.Horizon) / 2) // one arrival every ~2 s
	reqs := make([]request.Request, n)
	alts := hotspot.Alternatives{}
	arr := rng.NewPoisson(src.Split("arrivals"), 2, 0)
	vols := src.Split("volumes")
	place := src.Split("placement")
	for i := range reqs {
		at := units.Time(arr.Next())
		var ingress topology.PointID
		if place.Bool(0.8) {
			ingress = topology.PointID(place.Intn(2))
		} else {
			ingress = topology.PointID(place.Intn(10))
		}
		rate := units.Bandwidth(vols.Uniform(100, 800)) * units.MBps
		vol := units.Volume(vols.Uniform(20, 200)) * units.GB
		reqs[i] = request.Request{
			ID:      request.ID(i),
			Ingress: ingress,
			Egress:  topology.PointID(place.Intn(10)),
			Start:   at,
			Finish:  at + vol.Over(rate)*3,
			Volume:  vol,
			MaxRate: rate,
		}
		// Replicas: the original site plus two deterministic alternates.
		alts[request.ID(i)] = []topology.PointID{
			ingress,
			topology.PointID((int(ingress) + 3 + place.Intn(4)) % 10),
			topology.PointID((int(ingress) + 7) % 10),
		}
	}
	set, err := request.NewSet(reqs)
	if err != nil {
		return nil, nil, err
	}

	sched := flexible.Window{Policy: policy.FractionMaxRate(0.8), Step: 100}
	before, err := sched.Schedule(net, set)
	if err != nil {
		return nil, nil, err
	}
	if err := before.Verify(); err != nil {
		return nil, nil, err
	}
	rehomed, err := hotspot.RehomeBalanced(net, set, alts)
	if err != nil {
		return nil, nil, err
	}
	after, err := sched.Schedule(net, rehomed)
	if err != nil {
		return nil, nil, err
	}
	if err := after.Verify(); err != nil {
		return nil, nil, err
	}

	rb, ra := hotspot.Analyze(before), hotspot.Analyze(after)
	res := &HotspotResult{
		BeforeAccept:    before.AcceptRate(),
		AfterAccept:     after.AcceptRate(),
		BeforeImbalance: rb.Imbalance,
		AfterImbalance:  ra.Imbalance,
		HottestBefore:   rb.Hottest(1)[0].Pressure(),
		HottestAfter:    ra.Hottest(1)[0].Pressure(),
	}
	t := &report.Table{
		Title:   "Table T6: hot-spot relief via replica-aware re-homing (§7 future work)",
		Headers: []string{"variant", "accept rate", "demand imbalance (Gini)", "hottest-point pressure"},
	}
	t.AddRow("original placement", fmt.Sprintf("%.3f", res.BeforeAccept),
		fmt.Sprintf("%.3f", res.BeforeImbalance), fmt.Sprintf("%.2f", res.HottestBefore))
	t.AddRow("rehomed to replicas", fmt.Sprintf("%.3f", res.AfterAccept),
		fmt.Sprintf("%.3f", res.AfterImbalance), fmt.Sprintf("%.2f", res.HottestAfter))
	return res, t, nil
}

// LongLivedRow is one Table T7 case: greedy vs flow-optimal on uniform
// long-lived requests.
type LongLivedRow struct {
	Requests        int
	Greedy, Optimal int
}

// TabLongLived verifies the companion polynomial-case result the paper
// cites in §3 (Table T7): on uniform long-lived requests the max-flow
// formulation is optimal, and the table reports how much the greedy
// heuristic leaves on the table across random placements.
func TabLongLived(cases int, seed int64) ([]LongLivedRow, *report.Table, error) {
	if cases <= 0 {
		return nil, nil, fmt.Errorf("figures: non-positive case count %d", cases)
	}
	src := rng.New(seed)
	var rows []LongLivedRow
	var sumG, sumO int
	for c := 0; c < cases; c++ {
		m := src.Intn(6) + 3
		n := src.Intn(6) + 3
		b := 250 * units.MBps
		net := topology.Uniform(m, n, 1*units.GBps) // 4 slots per point
		k := src.Intn(4*m) + m
		reqs := make([]longlived.Request, k)
		for i := range reqs {
			reqs[i] = longlived.Request{
				ID:      i,
				Ingress: topology.PointID(src.Intn(m)),
				Egress:  topology.PointID(src.Intn(n)),
				BW:      b,
			}
		}
		g, err := longlived.Greedy(net, reqs)
		if err != nil {
			return nil, nil, err
		}
		o, err := longlived.OptimalUniform(net, reqs, b)
		if err != nil {
			return nil, nil, err
		}
		if err := longlived.Verify(net, reqs, o.Accepted); err != nil {
			return nil, nil, err
		}
		rows = append(rows, LongLivedRow{Requests: k, Greedy: len(g.Accepted), Optimal: len(o.Accepted)})
		sumG += len(g.Accepted)
		sumO += len(o.Accepted)
	}
	t := &report.Table{
		Title:   "Table T7: uniform long-lived requests — greedy vs polynomial optimum (max-flow)",
		Headers: []string{"case", "requests", "greedy", "optimal", "gap"},
	}
	for i, r := range rows {
		t.AddRow(fmt.Sprintf("%d", i), fmt.Sprintf("%d", r.Requests),
			fmt.Sprintf("%d", r.Greedy), fmt.Sprintf("%d", r.Optimal),
			fmt.Sprintf("%d", r.Optimal-r.Greedy))
	}
	t.AddRow("total", "", fmt.Sprintf("%d", sumG), fmt.Sprintf("%d", sumO),
		fmt.Sprintf("%d", sumO-sumG))
	return rows, t, nil
}
