package figures

import (
	"gridbw/internal/experiment"
	"gridbw/internal/report"
	"gridbw/internal/sched"
	"gridbw/internal/sched/rigid"
)

// Fig4Loads is the offered-load axis of Figure 4.
func Fig4Loads() []float64 { return []float64{0.5, 1, 1.5, 2, 3, 4, 5} }

// Fig4 reproduces Figure 4: the four rigid heuristics (FIFO,
// MINVOL-SLOTS, MINBW-SLOTS, CUMULATED-SLOTS) compared on accept rate
// (left panel) and RESOURCE-UTIL (right panel) across system load.
// It returns the raw series plus the two rendered panels.
func Fig4(scale Scale) ([]experiment.Series, []*report.Table, error) {
	if err := scale.Validate(); err != nil {
		return nil, nil, err
	}
	schedulers := func() []sched.Scheduler {
		return []sched.Scheduler{
			rigid.FCFS{},
			rigid.MinVolSlots(),
			rigid.MinBWSlots(),
			rigid.CumulatedSlots(),
		}
	}
	series, err := experiment.Sweep(Fig4Loads(), scale.Seeds, func(load float64) []experiment.Scenario {
		cfg := scale.rigidAt(load)
		var out []experiment.Scenario
		for _, s := range schedulers() {
			out = append(out, experiment.Scenario{
				Label:     s.Name(),
				Workload:  cfg,
				Scheduler: s,
			})
		}
		return out
	})
	if err != nil {
		return nil, nil, err
	}
	tables := []*report.Table{
		report.SeriesTable("Figure 4 (left): accept rate vs load, rigid heuristics",
			"load", series, experiment.AcceptRateOf),
		report.SeriesTable("Figure 4 (right): utilization ratio vs load, rigid heuristics (time-extended B^scaled)",
			"load", series, experiment.ScaledTimeUtilOf),
	}
	return series, tables, nil
}
