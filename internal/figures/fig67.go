package figures

import (
	"fmt"

	"gridbw/internal/experiment"
	"gridbw/internal/policy"
	"gridbw/internal/report"
	"gridbw/internal/sched"
	"gridbw/internal/sched/flexible"
	"gridbw/internal/units"
)

// HeavyArrivals and LightArrivals are the two load regimes of Figures 6
// and 7: mean inter-arrival 0.1–5 s (heavy) and 3–20 s (underloaded).
func HeavyArrivals() []float64 { return []float64{0.1, 0.2, 0.5, 1, 2, 5} }

// LightArrivals is the underloaded axis of Figures 6 and 7.
func LightArrivals() []float64 { return []float64{3, 5, 10, 15, 20} }

// PolicyFactors are the f values compared in Figures 6 and 7, alongside
// the MIN BW policy.
func PolicyFactors() []float64 { return []float64{0.2, 0.5, 0.8, 1.0} }

// policyPanel sweeps one heuristic family over one arrival axis with the
// MIN BW policy plus each f policy.
func policyPanel(scale Scale, axis []float64, build func(p policy.Policy) sched.Scheduler) ([]experiment.Series, error) {
	return experiment.Sweep(axis, scale.Seeds, func(mia float64) []experiment.Scenario {
		cfg := scale.flexibleAt(mia)
		policies := []policy.Policy{policy.MinRate()}
		for _, f := range PolicyFactors() {
			policies = append(policies, policy.FractionMaxRate(f))
		}
		var out []experiment.Scenario
		for _, p := range policies {
			out = append(out, experiment.Scenario{
				Label:     p.Name(),
				Workload:  cfg,
				Scheduler: build(p),
			})
		}
		return out
	})
}

// Fig6 reproduces Figure 6: the FCFS (greedy) heuristic with different
// bandwidth policies under heavy (left) and underloaded (right)
// conditions.
func Fig6(scale Scale) (heavy, light []experiment.Series, tables []*report.Table, err error) {
	if err := scale.Validate(); err != nil {
		return nil, nil, nil, err
	}
	mk := func(p policy.Policy) sched.Scheduler { return flexible.Greedy{Policy: p} }
	heavy, err = policyPanel(scale, HeavyArrivals(), mk)
	if err != nil {
		return nil, nil, nil, err
	}
	light, err = policyPanel(scale, LightArrivals(), mk)
	if err != nil {
		return nil, nil, nil, err
	}
	tables = []*report.Table{
		report.SeriesTable("Figure 6 (left): FCFS accept rate vs inter-arrival (s), heavy load",
			"inter-arrival", heavy, experiment.AcceptRateOf),
		report.SeriesTable("Figure 6 (right): FCFS accept rate vs inter-arrival (s), underloaded",
			"inter-arrival", light, experiment.AcceptRateOf),
	}
	return heavy, light, tables, nil
}

// Fig7Step is the WINDOW length used in Figure 7.
const Fig7Step = 400 * units.Second

// Fig7 reproduces Figure 7: the WINDOW(400) heuristic with different
// bandwidth policies under heavy (left) and underloaded (right)
// conditions.
func Fig7(scale Scale) (heavy, light []experiment.Series, tables []*report.Table, err error) {
	if err := scale.Validate(); err != nil {
		return nil, nil, nil, err
	}
	mk := func(p policy.Policy) sched.Scheduler { return flexible.Window{Policy: p, Step: Fig7Step} }
	heavy, err = policyPanel(scale, HeavyArrivals(), mk)
	if err != nil {
		return nil, nil, nil, err
	}
	light, err = policyPanel(scale, LightArrivals(), mk)
	if err != nil {
		return nil, nil, nil, err
	}
	tables = []*report.Table{
		report.SeriesTable(fmt.Sprintf("Figure 7 (left): WINDOW(%g) accept rate vs inter-arrival (s), heavy load", float64(Fig7Step)),
			"inter-arrival", heavy, experiment.AcceptRateOf),
		report.SeriesTable(fmt.Sprintf("Figure 7 (right): WINDOW(%g) accept rate vs inter-arrival (s), underloaded", float64(Fig7Step)),
			"inter-arrival", light, experiment.AcceptRateOf),
	}
	return heavy, light, tables, nil
}
