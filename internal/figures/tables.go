package figures

import (
	"fmt"

	"gridbw/internal/exact"
	"gridbw/internal/experiment"
	"gridbw/internal/fluidtcp"
	"gridbw/internal/metrics"
	"gridbw/internal/overlay"
	"gridbw/internal/policy"
	"gridbw/internal/report"
	"gridbw/internal/request"
	"gridbw/internal/rng"
	"gridbw/internal/sched"
	"gridbw/internal/sched/flexible"
	"gridbw/internal/sched/rigid"
	"gridbw/internal/threedm"
	"gridbw/internal/topology"
	"gridbw/internal/units"
	"gridbw/internal/workload"
)

// TuningFactors is the f axis of Table T1.
func TuningFactors() []float64 { return []float64{0, 0.2, 0.4, 0.5, 0.6, 0.8, 1.0} }

// TabTuning reproduces the §5.3 tuning-factor study (Table T1): under
// underloaded conditions, sweep f and report accept rate and guaranteed
// rate for the greedy and WINDOW(400) heuristics. The paper observes the
// accept-rate penalty is roughly linear in (1−f).
func TabTuning(scale Scale) ([]experiment.Series, *report.Table, error) {
	if err := scale.Validate(); err != nil {
		return nil, nil, err
	}
	const underloadedMIA = 10 // seconds; well inside the light regime
	series, err := experiment.Sweep(TuningFactors(), scale.Seeds, func(f float64) []experiment.Scenario {
		cfg := scale.flexibleAt(underloadedMIA)
		p := policy.FractionMaxRate(f)
		return []experiment.Scenario{
			{Label: "greedy", Workload: cfg, Scheduler: flexible.Greedy{Policy: p}, GuaranteeF: f},
			{Label: "window(400)", Workload: cfg, Scheduler: flexible.Window{Policy: p, Step: 400}, GuaranteeF: f},
		}
	})
	if err != nil {
		return nil, nil, err
	}
	t := &report.Table{
		Title:   "Table T1: tuning factor f, underloaded (accept rate / guaranteed rate)",
		Headers: []string{"f", "greedy accept", "greedy guaranteed", "window(400) accept", "window(400) guaranteed"},
	}
	for i := range series[0].Points {
		row := []string{fmt.Sprintf("%g", series[0].Points[i].X)}
		for _, s := range series {
			row = append(row,
				fmt.Sprintf("%.3f", experiment.AcceptRateOf(s.Points[i].Result)),
				fmt.Sprintf("%.3f", experiment.GuaranteedRateOf(s.Points[i].Result)))
		}
		t.AddRow(row...)
	}
	return series, t, nil
}

// ReductionRow is one Table T2 verification case.
type ReductionRow struct {
	N           int
	Triples     int
	Planted     bool
	HasMatching bool
	Optimum     int
	K           int
	Agree       bool
}

// TabReduction runs the Theorem-1 verification (Table T2): random 3-DM
// instances are reduced to scheduling instances; the exact solver's
// "accepts >= K" answer must coincide with brute-force matching
// existence. Cases covers n=2..3 with planted and unplanted instances.
func TabReduction(cases int, seed int64) ([]ReductionRow, *report.Table, error) {
	if cases <= 0 {
		return nil, nil, fmt.Errorf("figures: non-positive case count %d", cases)
	}
	src := rng.New(seed)
	var rows []ReductionRow
	for c := 0; c < cases; c++ {
		n := src.Intn(2) + 2
		planted := src.Bool(0.5)
		var inst threedm.Instance
		if planted {
			inst = threedm.RandomPlanted(n, src.Intn(2*n), seed+int64(c))
		} else {
			inst = threedm.Random(n, src.Intn(3*n)+1, seed+int64(c))
		}
		_, has := inst.BruteForce()
		red, err := threedm.Reduce(inst)
		if err != nil {
			return nil, nil, err
		}
		opt, _, err := exact.MaxUnit(red.Unit, 0)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, ReductionRow{
			N: n, Triples: len(inst.Triples), Planted: planted,
			HasMatching: has, Optimum: opt, K: red.K,
			Agree: (opt >= red.K) == has,
		})
	}
	t := &report.Table{
		Title:   "Table T2: Theorem-1 reduction verification (matching exists <=> schedule accepts K)",
		Headers: []string{"n", "|T|", "planted", "matching", "optimum", "K", "agree"},
	}
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%d", r.N), fmt.Sprintf("%d", r.Triples),
			fmt.Sprintf("%v", r.Planted), fmt.Sprintf("%v", r.HasMatching),
			fmt.Sprintf("%d", r.Optimum), fmt.Sprintf("%d", r.K),
			fmt.Sprintf("%v", r.Agree),
		)
	}
	return rows, t, nil
}

// BaselineComparison is the Table T3 result: the uncontrolled fluid-TCP
// baseline versus scheduled admission on the same heavy workload.
type BaselineComparison struct {
	Flows               int
	TCPFailureRate      float64
	TCPMeanSlowdown     float64
	TCPSlowdownP95      float64
	SchedAcceptRate     float64
	SchedCompletionRate float64 // accepted transfers always complete
}

// TabTCPBaseline reproduces the motivation contrast (Table T3): under a
// heavy tight-window workload, max-min shared (TCP-like) transfers fail
// and stretch unpredictably, while admission-controlled transfers either
// get a guaranteed reservation or a clean rejection.
func TabTCPBaseline(scale Scale) (*BaselineComparison, *report.Table, error) {
	if err := scale.Validate(); err != nil {
		return nil, nil, err
	}
	cfg := scale.flexibleAt(0.5)
	cfg.SlackMin, cfg.SlackMax = 1.2, 2 // tight windows: deadlines bind
	net := cfg.Network()

	var cmp BaselineComparison
	var tcpFail, tcpSlow, tcpP95, schedAcc metrics.Sample
	for _, seed := range scale.Seeds {
		reqs, err := cfg.Generate(seed)
		if err != nil {
			return nil, nil, err
		}
		cmp.Flows += reqs.Len()
		res, err := fluidtcp.Simulate(net, reqs, fluidtcp.DefaultConfig())
		if err != nil {
			return nil, nil, err
		}
		tcpFail.Add(res.FailureRate())
		tcpSlow.Add(res.MeanSlowdown())
		tcpP95.Add(res.SlowdownP95())

		out, err := (flexible.Window{Policy: policy.FractionMaxRate(1), Step: 400}).Schedule(net, reqs)
		if err != nil {
			return nil, nil, err
		}
		if err := out.Verify(); err != nil {
			return nil, nil, err
		}
		schedAcc.Add(out.AcceptRate())
	}
	cmp.TCPFailureRate = tcpFail.Mean()
	cmp.TCPMeanSlowdown = tcpSlow.Mean()
	cmp.TCPSlowdownP95 = tcpP95.Mean()
	cmp.SchedAcceptRate = schedAcc.Mean()
	cmp.SchedCompletionRate = 1 // reservations are guaranteed by construction

	t := &report.Table{
		Title:   "Table T3: uncontrolled max-min (fluid TCP) vs scheduled admission, heavy tight-window load",
		Headers: []string{"system", "transfer failure rate", "mean slowdown", "p95 slowdown", "accept rate", "completion of admitted"},
	}
	t.AddRow("fluid-tcp (no admission)",
		fmt.Sprintf("%.3f", cmp.TCPFailureRate),
		fmt.Sprintf("%.2f", cmp.TCPMeanSlowdown),
		fmt.Sprintf("%.2f", cmp.TCPSlowdownP95),
		"1.000 (all admitted)", fmt.Sprintf("%.3f", 1-cmp.TCPFailureRate))
	t.AddRow("window(400)/f=1 (this paper)",
		"0.000", "1.00 (rate fixed)", "1.00",
		fmt.Sprintf("%.3f", cmp.SchedAcceptRate), "1.000")
	return &cmp, t, nil
}

// GapRow is one Table T4 case: heuristics versus the exact optimum.
type GapRow struct {
	Requests int
	Optimum  int
	ByName   map[string]int
}

// TabOptimalityGap measures the rigid heuristics against branch-and-bound
// on small random instances (Table T4). It returns per-instance rows and
// a summary table with the mean fraction of optimum achieved.
func TabOptimalityGap(cases int, seed int64) ([]GapRow, *report.Table, error) {
	if cases <= 0 {
		return nil, nil, fmt.Errorf("figures: non-positive case count %d", cases)
	}
	heuristics := []sched.Scheduler{
		rigid.FCFS{}, rigid.MinVolSlots(), rigid.MinBWSlots(), rigid.CumulatedSlots(),
	}
	src := rng.New(seed)
	net := topology.Uniform(2, 2, 1*units.GBps)
	sums := map[string]float64{}
	var rows []GapRow
	for c := 0; c < cases; c++ {
		n := src.Intn(8) + 6
		rs := make([]request.Request, n)
		for i := range rs {
			start := units.Time(src.Intn(60))
			dur := units.Time(src.Intn(60) + 10)
			rate := units.Bandwidth(src.Intn(900)+100) * units.MBps
			rs[i] = request.Request{
				ID:      request.ID(i),
				Ingress: topology.PointID(src.Intn(2)),
				Egress:  topology.PointID(src.Intn(2)),
				Start:   start, Finish: start + dur,
				Volume: rate.For(dur), MaxRate: rate,
			}
		}
		reqs := request.MustNewSet(rs)
		opt, _, err := exact.MaxRigid(net, reqs, 0)
		if err != nil {
			return nil, nil, err
		}
		row := GapRow{Requests: n, Optimum: opt, ByName: map[string]int{}}
		for _, h := range heuristics {
			out, err := h.Schedule(net, reqs)
			if err != nil {
				return nil, nil, err
			}
			row.ByName[h.Name()] = out.AcceptedCount()
			if opt > 0 {
				sums[h.Name()] += float64(out.AcceptedCount()) / float64(opt)
			} else {
				sums[h.Name()] += 1
			}
		}
		rows = append(rows, row)
	}
	t := &report.Table{
		Title:   "Table T4: mean fraction of exact optimum achieved (small rigid instances)",
		Headers: []string{"heuristic", "mean accepted/optimum"},
	}
	for _, h := range heuristics {
		t.AddRow(h.Name(), fmt.Sprintf("%.3f", sums[h.Name()]/float64(cases)))
	}
	return rows, t, nil
}

// EnforceResult is the Table T5 outcome.
type EnforceResult struct {
	AcceptRate         float64
	MeanRTT            units.Time
	MeanOverheadRatio  float64
	ConformingRatio    float64 // token-bucket delivery for a compliant flow
	CheatingRatio      float64 // token-bucket delivery for a 2x-rate cheater
	CheatingDropEvents int
}

// TabOverlayEnforce exercises the §5.4 control plane end to end (Table
// T5): reservation round trips over the overlay, overhead relative to
// transfer durations, and token-bucket enforcement for a conforming and
// a cheating flow.
func TabOverlayEnforce(scale Scale) (*EnforceResult, *report.Table, error) {
	if err := scale.Validate(); err != nil {
		return nil, nil, err
	}
	cfg := scale.flexibleAt(2)
	net := cfg.Network()
	reqs, err := cfg.Generate(scale.Seeds[0])
	if err != nil {
		return nil, nil, err
	}
	rep, err := overlay.Run(net, reqs, overlay.Config{
		ClientRouterDelay: 0.005,
		RouterRouterDelay: 0.010,
		Policy:            policy.FractionMaxRate(1),
	})
	if err != nil {
		return nil, nil, err
	}
	if err := rep.Outcome.Verify(); err != nil {
		return nil, nil, err
	}

	res := &EnforceResult{
		AcceptRate:        rep.AcceptRate(),
		MeanRTT:           rep.MeanRTT(),
		MeanOverheadRatio: rep.MeanOverheadRatio(),
	}

	// Data plane: every accepted reservation transmits through its token
	// bucket; every third sender cheats at double its grant.
	cheaters := map[request.ID]float64{}
	n := 0
	for _, r := range rep.Reservations {
		if r.Accepted {
			if n%3 == 0 {
				cheaters[r.Request] = 1.0
			}
			n++
		}
	}
	enf, err := overlay.Enforce(rep, cheaters, 10*units.MB)
	if err != nil {
		return nil, nil, err
	}
	res.ConformingRatio = enf.CompliantDelivery
	res.CheatingRatio = enf.CheaterDelivery
	res.CheatingDropEvents = enf.TotalDropEvents

	t := &report.Table{
		Title:   "Table T5: control-plane overhead and token-bucket enforcement",
		Headers: []string{"metric", "value"},
	}
	t.AddRow("reservation accept rate", fmt.Sprintf("%.3f", res.AcceptRate))
	t.AddRow("mean reservation RTT", res.MeanRTT.String())
	t.AddRow("mean RTT / transfer duration", fmt.Sprintf("%.2e", res.MeanOverheadRatio))
	t.AddRow("compliant senders delivery", fmt.Sprintf("%.3f", res.ConformingRatio))
	t.AddRow("cheating (2x) senders delivery", fmt.Sprintf("%.3f", res.CheatingRatio))
	t.AddRow("total drop events (cheaters)", fmt.Sprintf("%d", res.CheatingDropEvents))
	return res, t, nil
}

// workloadSanity is referenced by tests to pin the §4.3/§5.3 settings in
// one place.
func workloadSanity() (workload.Config, workload.Config) {
	return workload.Default(workload.Rigid), workload.Default(workload.Flexible)
}
