package figures

import (
	"fmt"

	"gridbw/internal/metrics"
	"gridbw/internal/policy"
	"gridbw/internal/report"
	"gridbw/internal/sched/flexible"
	"gridbw/internal/teletraffic"
	"gridbw/internal/units"
	"gridbw/internal/workload"
)

// TheoryRow is one Table T15 comparison point.
type TheoryRow struct {
	MeanInterArrival float64
	Simulated        float64
	Analytic         float64
}

// theoryArrivals is the Table T15 axis (seconds).
func theoryArrivals() []float64 { return []float64{3, 5, 10, 20} }

// TabTheoryCheck (Table T15) validates the simulator against classical
// teletraffic theory. Under the f=1 policy the greedy scheduler is
// exactly a two-sided multirate Erlang loss system: requests demand their
// host rate for vol/rate holding time and are blocked when either access
// point lacks capacity. The analytic side is Kaufman-Roberts blocking per
// link with the reduced-load fixed point across the ingress/egress pair;
// the simulated side is the greedy scheduler in steady state (long
// horizon, warm-up excluded). Erlang loss systems are insensitive to the
// holding-time distribution, so only the Poisson arrivals matter — the
// residual gap measures the reduced-load independence approximation and
// the rate discretization, not simulator bugs.
func TabTheoryCheck(scale Scale) ([]TheoryRow, *report.Table, error) {
	if err := scale.Validate(); err != nil {
		return nil, nil, err
	}
	base := workload.Default(workload.Flexible)

	// Analytic model: discretize the uniform [RateMin, RateMax] host-rate
	// draw into bins of RateMin width; volume is independent with mean
	// E[vol]; per-class holding time = E[vol]/rate.
	const bins = 10
	unit := float64(base.RateMin) // 10 MB/s per capacity unit
	capUnits := int(float64(base.PointCapacity)/unit + 0.5)
	meanVol := float64(workload.MeanVolume(base.Volumes))

	t := &report.Table{
		Title:   "Table T15: simulated greedy (steady state) vs Kaufman-Roberts reduced-load theory (f=1)",
		Headers: []string{"inter-arrival (s)", "simulated accept", "analytic accept", "abs gap"},
	}
	var rows []TheoryRow
	for _, mia := range theoryArrivals() {
		// --- analytic side ---
		lambda := 1 / mia
		classes := make([]teletraffic.Class, bins)
		weights := make([]float64, bins)
		binWidth := (float64(base.RateMax) - float64(base.RateMin)) / bins
		for k := 0; k < bins; k++ {
			rate := float64(base.RateMin) + (float64(k)+0.5)*binWidth
			classUnits := int(rate/unit + 0.5)
			if classUnits < 1 {
				classUnits = 1
			}
			hold := meanVol / rate
			classes[k] = teletraffic.Class{
				Units:   classUnits,
				Erlangs: lambda * (1.0 / bins) * hold,
			}
			weights[k] = 1.0 / bins
		}
		sys := teletraffic.PairSystem{
			CapacityUnits: capUnits,
			In:            base.NumIngress,
			Out:           base.NumEgress,
			Classes:       classes,
		}
		res, err := sys.Solve()
		if err != nil {
			return nil, nil, err
		}
		analytic, err := teletraffic.WeightedAccept(res.PerClassAccept, weights)
		if err != nil {
			return nil, nil, err
		}

		// --- simulated side: steady state with warm-up ---
		cfg := base
		cfg.MeanInterArrival = units.Time(mia)
		// The longest holding time is 1 TB at 10 MB/s = 1e5 s; the horizon
		// must dwarf it and the warm-up must cover the fill transient.
		cfg.Horizon = scale.Horizon * 150
		warmup := cfg.Horizon / 2
		var sim float64
		for _, seed := range scale.Seeds {
			reqs, err := cfg.Generate(seed)
			if err != nil {
				return nil, nil, err
			}
			out, err := (flexible.Greedy{Policy: policy.FractionMaxRate(1)}).Schedule(cfg.Network(), reqs)
			if err != nil {
				return nil, nil, err
			}
			m := metrics.EvaluateFiltered(out, 0, metrics.Warmup(warmup))
			sim += m.AcceptRate
		}
		sim /= float64(len(scale.Seeds))

		row := TheoryRow{MeanInterArrival: mia, Simulated: sim, Analytic: analytic}
		rows = append(rows, row)
		t.AddRow(fmt.Sprintf("%g", mia),
			fmt.Sprintf("%.3f", sim),
			fmt.Sprintf("%.3f", analytic),
			fmt.Sprintf("%.3f", abs(sim-analytic)))
	}
	return rows, t, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
