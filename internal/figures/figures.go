// Package figures declares every reproduction experiment of DESIGN.md §4
// — one constructor per table or figure of the paper plus the added
// verification tables — on top of the experiment harness. cmd/figures
// renders them to results/, bench_test.go times them, and the package's
// tests assert the qualitative shapes the paper reports.
package figures

import (
	"fmt"

	"gridbw/internal/experiment"
	"gridbw/internal/units"
	"gridbw/internal/workload"
)

// Scale sets how heavy an experiment run is. Quick keeps unit tests and
// benches snappy; Full is what cmd/figures uses for EXPERIMENTS.md.
type Scale struct {
	// Seeds are the replication seeds.
	Seeds []int64
	// Horizon is the workload arrival horizon.
	Horizon units.Time
}

// Quick is the test/bench scale: one replication, short horizon.
func Quick() Scale {
	return Scale{Seeds: experiment.Seeds(42, 1), Horizon: 400 * units.Second}
}

// Full is the EXPERIMENTS.md scale: 5 replications, the paper-sized
// 2000-second horizon.
func Full() Scale {
	return Scale{Seeds: experiment.Seeds(42, 5), Horizon: 2000 * units.Second}
}

// Validate rejects unusable scales early.
func (s Scale) Validate() error {
	if len(s.Seeds) == 0 {
		return fmt.Errorf("figures: scale has no seeds")
	}
	if s.Horizon <= 0 {
		return fmt.Errorf("figures: non-positive horizon %v", s.Horizon)
	}
	return nil
}

// rigidAt returns the §4.3 rigid workload at the given offered load.
func (s Scale) rigidAt(load float64) workload.Config {
	cfg := workload.Default(workload.Rigid)
	cfg.Horizon = s.Horizon
	return cfg.WithLoad(load)
}

// flexibleAt returns the §5.3 flexible workload at the given mean
// inter-arrival time.
func (s Scale) flexibleAt(meanInterArrival float64) workload.Config {
	cfg := workload.Default(workload.Flexible)
	cfg.Horizon = s.Horizon
	cfg.MeanInterArrival = units.Time(meanInterArrival)
	return cfg
}
