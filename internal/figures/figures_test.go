package figures

import (
	"strings"
	"testing"

	"gridbw/internal/experiment"
	"gridbw/internal/units"
	"gridbw/internal/workload"
)

func TestScaleValidate(t *testing.T) {
	if err := Quick().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Full().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Scale{}).Validate(); err == nil {
		t.Error("empty scale validated")
	}
	if err := (Scale{Seeds: []int64{1}}).Validate(); err == nil {
		t.Error("zero horizon validated")
	}
}

func TestScaleRejectedEverywhere(t *testing.T) {
	bad := Scale{}
	if _, _, err := Fig4(bad); err == nil {
		t.Error("Fig4 accepted bad scale")
	}
	if _, _, err := Fig5(bad); err == nil {
		t.Error("Fig5 accepted bad scale")
	}
	if _, _, _, err := Fig6(bad); err == nil {
		t.Error("Fig6 accepted bad scale")
	}
	if _, _, _, err := Fig7(bad); err == nil {
		t.Error("Fig7 accepted bad scale")
	}
	if _, _, err := TabTuning(bad); err == nil {
		t.Error("TabTuning accepted bad scale")
	}
	if _, _, err := TabTCPBaseline(bad); err == nil {
		t.Error("TabTCPBaseline accepted bad scale")
	}
	if _, _, err := TabOverlayEnforce(bad); err == nil {
		t.Error("TabOverlayEnforce accepted bad scale")
	}
	if _, _, err := TabReduction(0, 1); err == nil {
		t.Error("TabReduction accepted zero cases")
	}
	if _, _, err := TabOptimalityGap(0, 1); err == nil {
		t.Error("TabOptimalityGap accepted zero cases")
	}
}

// seriesByLabel indexes sweep output.
func seriesByLabel(ss []experiment.Series) map[string]experiment.Series {
	out := map[string]experiment.Series{}
	for _, s := range ss {
		out[s.Label] = s
	}
	return out
}

func lastPoint(s experiment.Series) *experiment.Result {
	return s.Points[len(s.Points)-1].Result
}

func firstPoint(s experiment.Series) *experiment.Result {
	return s.Points[0].Result
}

func TestFig4Shape(t *testing.T) {
	series, tables, err := Fig4(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
	by := seriesByLabel(series)
	for _, name := range []string{"fcfs", "minvol-slots", "minbw-slots", "cumulated-slots"} {
		s, ok := by[name]
		if !ok {
			t.Fatalf("series %q missing", name)
		}
		if len(s.Points) != len(Fig4Loads()) {
			t.Fatalf("series %q has %d points", name, len(s.Points))
		}
	}
	// Paper shape: under the heaviest load the slot heuristics beat FCFS
	// on accept rate.
	heavyIdx := len(Fig4Loads()) - 1
	fcfs := experiment.AcceptRateOf(by["fcfs"].Points[heavyIdx].Result)
	cumulated := experiment.AcceptRateOf(by["cumulated-slots"].Points[heavyIdx].Result)
	minbw := experiment.AcceptRateOf(by["minbw-slots"].Points[heavyIdx].Result)
	if cumulated <= fcfs || minbw <= fcfs {
		t.Errorf("at load %g: fcfs=%.3f cumulated=%.3f minbw=%.3f — slot family should win",
			Fig4Loads()[heavyIdx], fcfs, cumulated, minbw)
	}
	// Accept rate decreases with load for every heuristic (weak check:
	// last <= first).
	for name, s := range by {
		lo := experiment.AcceptRateOf(firstPoint(s))
		hi := experiment.AcceptRateOf(lastPoint(s))
		if hi > lo+0.05 {
			t.Errorf("%s accept rate grew with load: %.3f -> %.3f", name, lo, hi)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	series, table, err := Fig5(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != len(Fig5Arrivals()) {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	by := seriesByLabel(series)
	// Heaviest point (inter-arrival 0.1): long windows beat FCFS.
	fcfs := experiment.AcceptRateOf(firstPoint(by["fcfs"]))
	w800 := experiment.AcceptRateOf(firstPoint(by["window(800)"]))
	if w800 <= fcfs {
		t.Errorf("window(800)=%.3f not above fcfs=%.3f under heavy load", w800, fcfs)
	}
	// Longer windows do no worse than the shortest.
	w50 := experiment.AcceptRateOf(firstPoint(by["window(50)"]))
	if w800 < w50-0.02 {
		t.Errorf("window(800)=%.3f below window(50)=%.3f", w800, w50)
	}
}

func TestFig6Shape(t *testing.T) {
	heavy, light, tables, err := Fig6(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
	byLight := seriesByLabel(light)
	// Underloaded: smaller bandwidth policy accepts at least as much as
	// f=1 (the paper: "a smaller bandwidth to each request results in
	// more accepted requests, especially when the network is not too much
	// loaded").
	minbw := experiment.AcceptRateOf(lastPoint(byLight["minbw"]))
	f1 := experiment.AcceptRateOf(lastPoint(byLight["f=1"]))
	if minbw < f1-0.02 {
		t.Errorf("underloaded: minbw=%.3f below f=1=%.3f", minbw, f1)
	}
	byHeavy := seriesByLabel(heavy)
	for label, s := range byHeavy {
		for _, p := range s.Points {
			r := experiment.AcceptRateOf(p.Result)
			if r < 0 || r > 1 {
				t.Errorf("heavy %s accept rate %v out of range", label, r)
			}
		}
	}
}

func TestFig7Shape(t *testing.T) {
	heavy, light, tables, err := Fig7(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 || len(heavy) != 5 || len(light) != 5 {
		t.Fatalf("shape: %d tables, %d heavy, %d light", len(tables), len(heavy), len(light))
	}
	if !strings.Contains(tables[0].Title, "WINDOW(400)") {
		t.Errorf("title = %q", tables[0].Title)
	}
}

func TestTabTuningShape(t *testing.T) {
	series, table, err := TabTuning(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != len(TuningFactors()) {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	for _, s := range series {
		// f=0 accepts at least as much as f=1 when underloaded (weak form
		// of the paper's linear-in-(1−f) trade-off).
		lo := experiment.AcceptRateOf(firstPoint(s))
		hi := experiment.AcceptRateOf(lastPoint(s))
		if hi > lo+0.02 {
			t.Errorf("%s: accept rate rose with f (%.3f -> %.3f)", s.Label, lo, hi)
		}
		// Guaranteed never exceeds accepted.
		for _, p := range s.Points {
			if g, a := experiment.GuaranteedRateOf(p.Result), experiment.AcceptRateOf(p.Result); g > a+1e-9 {
				t.Errorf("%s at f=%g: guaranteed %.3f > accept %.3f", s.Label, p.X, g, a)
			}
		}
	}
}

func TestTabReductionAllAgree(t *testing.T) {
	rows, table, err := TabReduction(12, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 || len(table.Rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	sawMatching, sawNone := false, false
	for _, r := range rows {
		if !r.Agree {
			t.Errorf("disagreement on n=%d |T|=%d planted=%v", r.N, r.Triples, r.Planted)
		}
		if r.HasMatching {
			sawMatching = true
		} else {
			sawNone = true
		}
	}
	if !sawMatching || !sawNone {
		t.Log("warning: reduction cases covered only one side of the equivalence")
	}
}

func TestTabTCPBaselineShape(t *testing.T) {
	cmp, table, err := TabTCPBaseline(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	if cmp.TCPFailureRate <= 0 {
		t.Error("fluid baseline shows no failures under heavy tight load")
	}
	if cmp.SchedAcceptRate <= 0 {
		t.Error("scheduler accepted nothing")
	}
	if cmp.SchedCompletionRate != 1 {
		t.Error("admitted reservations must always complete")
	}
}

func TestTabOptimalityGapShape(t *testing.T) {
	rows, table, err := TabOptimalityGap(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 || len(table.Rows) != 4 {
		t.Fatalf("shape: %d rows, %d table rows", len(rows), len(table.Rows))
	}
	for _, r := range rows {
		for name, got := range r.ByName {
			if got > r.Optimum {
				t.Errorf("%s accepted %d > optimum %d", name, got, r.Optimum)
			}
		}
	}
}

func TestTabOverlayEnforceShape(t *testing.T) {
	res, table, err := TabOverlayEnforce(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 6 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	if res.ConformingRatio != 1 {
		t.Errorf("conforming delivery = %v, want 1", res.ConformingRatio)
	}
	if res.CheatingRatio > 0.6 || res.CheatingDropEvents == 0 {
		t.Errorf("cheating delivery = %v with %d drops — enforcement missing",
			res.CheatingRatio, res.CheatingDropEvents)
	}
	if res.MeanRTT <= 0 {
		t.Error("RTT not measured")
	}
	if res.MeanOverheadRatio <= 0 || res.MeanOverheadRatio > 0.01 {
		t.Errorf("overhead ratio = %v, want small positive", res.MeanOverheadRatio)
	}
}

func TestTabHotspotShape(t *testing.T) {
	res, table, err := TabHotspot(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	if res.AfterAccept <= res.BeforeAccept {
		t.Errorf("rehoming did not improve accepts: %.3f -> %.3f",
			res.BeforeAccept, res.AfterAccept)
	}
	if res.AfterImbalance >= res.BeforeImbalance {
		t.Errorf("rehoming did not flatten demand: %.3f -> %.3f",
			res.BeforeImbalance, res.AfterImbalance)
	}
	if res.HottestAfter >= res.HottestBefore {
		t.Errorf("hottest point pressure did not drop: %.2f -> %.2f",
			res.HottestBefore, res.HottestAfter)
	}
}

func TestTabLongLivedShape(t *testing.T) {
	rows, table, err := TabLongLived(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 || len(table.Rows) != 9 { // 8 cases + total
		t.Fatalf("shape: %d rows, %d table rows", len(rows), len(table.Rows))
	}
	for i, r := range rows {
		if r.Greedy > r.Optimal {
			t.Errorf("case %d: greedy %d beat optimum %d", i, r.Greedy, r.Optimal)
		}
		if r.Optimal > r.Requests {
			t.Errorf("case %d: optimum %d exceeds request count %d", i, r.Optimal, r.Requests)
		}
	}
	if _, _, err := TabLongLived(0, 1); err == nil {
		t.Error("zero cases accepted")
	}
	if _, _, err := TabHotspot(Scale{}); err == nil {
		t.Error("bad scale accepted")
	}
}

func TestWorkloadSanityPinned(t *testing.T) {
	r, f := workloadSanity()
	if r.NumIngress != 10 || r.NumEgress != 10 || r.PointCapacity != 1*units.GBps {
		t.Error("rigid platform drifted from §4.3")
	}
	if f.RateMin != 10*units.MBps || f.RateMax != 1*units.GBps {
		t.Error("flexible rate range drifted from §5.3")
	}
	if len(r.Volumes) != 19 {
		t.Error("volume ladder drifted")
	}
}

func TestTabDistributedShape(t *testing.T) {
	rows, table, err := TabDistributed(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(DistributedSyncPeriods()) {
		t.Fatalf("rows = %d", len(rows))
	}
	if len(table.Rows) != len(rows)+1 { // + centralized reference
		t.Fatalf("table rows = %d", len(table.Rows))
	}
	// Staleness monotonicity (weak): the stalest sync has at least the
	// conflicts of the read-through configuration.
	if rows[len(rows)-1].ConflictRate < rows[0].ConflictRate {
		t.Errorf("conflicts fell with staleness: %.3f -> %.3f",
			rows[0].ConflictRate, rows[len(rows)-1].ConflictRate)
	}
	for _, r := range rows {
		total := r.AcceptRate + r.ConflictRate + r.LocalReject
		if total > 1+1e-9 {
			t.Errorf("rates exceed 1 at sync %v", r.SyncPeriod)
		}
	}
}

func TestTabBookAheadShape(t *testing.T) {
	rows, table, err := TabBookAhead(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(BookAheadFractions()) {
		t.Fatalf("rows = %d", len(rows))
	}
	if len(table.Rows) != len(rows)+1 { // + on-line reference
		t.Fatalf("table rows = %d", len(table.Rows))
	}
	for _, r := range rows {
		if r.AcceptRate < 0 || r.AcceptRate > 1 {
			t.Errorf("accept rate %v out of range", r.AcceptRate)
		}
	}
	if _, _, err := TabDistributed(Scale{}); err == nil {
		t.Error("bad scale accepted")
	}
	if _, _, err := TabBookAhead(Scale{}); err == nil {
		t.Error("bad scale accepted")
	}
}

func TestTabOrderingShape(t *testing.T) {
	rows, table, err := TabOrdering(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 || len(table.Rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]OrderingRow{}
	for _, r := range rows {
		byName[r.Variant] = r
		if r.HeavyAccept < 0 || r.HeavyAccept > 1 || r.LightAccept < 0 || r.LightAccept > 1 {
			t.Errorf("%s rates out of range", r.Variant)
		}
		if r.LightAccept < r.HeavyAccept-0.02 {
			t.Errorf("%s: lighter load accepted less (%.3f < %.3f)",
				r.Variant, r.LightAccept, r.HeavyAccept)
		}
	}
	// Skip-on-miss dominates the stop rule; retry dominates plain window.
	var plain, skip, retry OrderingRow
	for name, r := range byName {
		switch {
		case strings.HasPrefix(name, "window-cost-skip"):
			skip = r
		case strings.HasPrefix(name, "window-retry"):
			retry = r
		case strings.HasPrefix(name, "window("):
			plain = r
		}
	}
	if skip.HeavyAccept < plain.HeavyAccept-1e-9 {
		t.Errorf("skip (%.3f) below stop-rule window (%.3f)", skip.HeavyAccept, plain.HeavyAccept)
	}
	if retry.HeavyAccept < plain.HeavyAccept-1e-9 {
		t.Errorf("retry (%.3f) below plain window (%.3f)", retry.HeavyAccept, plain.HeavyAccept)
	}
	if _, _, err := TabOrdering(Scale{}); err == nil {
		t.Error("bad scale accepted")
	}
}

func TestTabHeterogeneityShape(t *testing.T) {
	rows, table, err := TabHeterogeneity(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || len(table.Rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Aggregate capacity identical across platforms.
	for _, level := range HeterogeneityLevels() {
		if got := level.Make().TotalCapacity(); !units.ApproxEq(float64(got), float64(20*units.GBps)) {
			t.Errorf("%s total capacity = %v", level.Label, got)
		}
	}
	// Skew hurts: extreme platform accepts less than uniform.
	if rows[3].WindowAccept >= rows[0].WindowAccept {
		t.Errorf("extreme skew (%.3f) not below uniform (%.3f)",
			rows[3].WindowAccept, rows[0].WindowAccept)
	}
	if _, _, err := TabHeterogeneity(Scale{}); err == nil {
		t.Error("bad scale accepted")
	}
}

func TestTabGenerationSensitivityShape(t *testing.T) {
	rows, table, err := TabGenerationSensitivity(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || len(table.Rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		for _, v := range []float64{r.RateAccept, r.RateUtil, r.DurationAccept, r.DurationUtil} {
			if v < 0 || v > 1+1e-9 {
				t.Errorf("%s: value %v out of range", r.Heuristic, v)
			}
		}
	}
	// The headline ordering (slot family >= FCFS on accepts) must hold
	// under BOTH generations.
	byName := map[string]SensitivityRow{}
	for _, r := range rows {
		byName[r.Heuristic] = r
	}
	for _, metric := range []func(SensitivityRow) float64{
		func(r SensitivityRow) float64 { return r.RateAccept },
		func(r SensitivityRow) float64 { return r.DurationAccept },
	} {
		if metric(byName["minbw-slots"]) < metric(byName["fcfs"])-0.02 {
			t.Error("minbw-slots below fcfs")
		}
	}
	// MINVOL's utilization deficit holds under both generations.
	if byName["minvol-slots"].RateUtil >= byName["minbw-slots"].RateUtil {
		t.Error("minvol util not below minbw (rate-derived)")
	}
	if _, _, err := TabGenerationSensitivity(Scale{}); err == nil {
		t.Error("bad scale accepted")
	}
}

func TestRigidDurationWorkloadProperties(t *testing.T) {
	cfg := workload.Default(workload.RigidDuration)
	cfg.Horizon = 300
	reqs, err := cfg.Generate(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs.All() {
		if !r.Rigid() {
			t.Fatalf("request %d not rigid", r.ID)
		}
		if r.MaxRate < cfg.RateMin-1 || r.MaxRate > cfg.RateMax+1 {
			t.Fatalf("request %d implied rate %v outside range", r.ID, r.MaxRate)
		}
	}
}

func TestTabBurstinessShape(t *testing.T) {
	rows, table, err := TabBurstiness(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(BurstFactors()) || len(table.Rows) != len(rows) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		for _, v := range []float64{r.GreedyAccept, r.WindowAccept, r.RetryAccept} {
			if v < 0 || v > 1 {
				t.Errorf("factor %g: rate %v out of range", r.Factor, v)
			}
		}
		// Retry dominates plain window at every burst level.
		if r.RetryAccept < r.WindowAccept-1e-9 {
			t.Errorf("factor %g: retry %.3f below window %.3f", r.Factor, r.RetryAccept, r.WindowAccept)
		}
	}
	// Burstiness hurts greedy admission: factor 4 accepts less than
	// factor 1.
	if rows[len(rows)-1].GreedyAccept > rows[0].GreedyAccept+0.02 {
		t.Errorf("greedy unharmed by bursts: %.3f -> %.3f",
			rows[0].GreedyAccept, rows[len(rows)-1].GreedyAccept)
	}
	if _, _, err := TabBurstiness(Scale{}); err == nil {
		t.Error("bad scale accepted")
	}
}

func TestTabResponseTimeShape(t *testing.T) {
	rows, table, err := TabResponseTime(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 || len(table.Rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]ResponseRow{}
	for _, r := range rows {
		byName[r.Scheduler] = r
	}
	greedy := byName["greedy/f=1"]
	if greedy.MeanResponse != 0 {
		t.Errorf("greedy response = %v, want 0 (decides at arrival)", greedy.MeanResponse)
	}
	// Response time grows with window length.
	var w50, w800 ResponseRow
	for name, r := range byName {
		if strings.HasPrefix(name, "window(50s)") {
			w50 = r
		}
		if strings.HasPrefix(name, "window(13m20s)") {
			w800 = r
		}
	}
	if w800.MeanResponse <= w50.MeanResponse {
		t.Errorf("response not growing with window: %v vs %v", w50.MeanResponse, w800.MeanResponse)
	}
	if _, _, err := TabResponseTime(Scale{}); err == nil {
		t.Error("bad scale accepted")
	}
}

func TestTabTheoryCheckShape(t *testing.T) {
	rows, table, err := TabTheoryCheck(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || len(table.Rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Simulated < 0 || r.Simulated > 1 || r.Analytic < 0 || r.Analytic > 1 {
			t.Errorf("mia %g: rates out of range (%v, %v)", r.MeanInterArrival, r.Simulated, r.Analytic)
		}
		// The headline: simulation and theory agree within a few points.
		if gap := abs(r.Simulated - r.Analytic); gap > 0.05 {
			t.Errorf("mia %g: sim %v vs theory %v (gap %.3f)", r.MeanInterArrival, r.Simulated, r.Analytic, gap)
		}
	}
	// Acceptance grows as load lightens on both sides.
	if rows[0].Simulated >= rows[len(rows)-1].Simulated {
		t.Error("simulated acceptance not improving with lighter load")
	}
	if rows[0].Analytic >= rows[len(rows)-1].Analytic {
		t.Error("analytic acceptance not improving with lighter load")
	}
	if _, _, err := TabTheoryCheck(Scale{}); err == nil {
		t.Error("bad scale accepted")
	}
}
