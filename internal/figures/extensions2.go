package figures

import (
	"fmt"
	"sort"

	"gridbw/internal/core"
	"gridbw/internal/distributed"
	"gridbw/internal/policy"
	"gridbw/internal/report"
	"gridbw/internal/rng"
	"gridbw/internal/sched/flexible"
	"gridbw/internal/units"
	"gridbw/internal/workload"
)

// DistributedSyncPeriods is the staleness axis of Table T8 (seconds;
// 0 = read-through).
func DistributedSyncPeriods() []units.Time { return []units.Time{0, 10, 50, 200, 1000} }

// DistributedRow is one Table T8 measurement.
type DistributedRow struct {
	SyncPeriod   units.Time
	AcceptRate   float64
	ConflictRate float64
	LocalReject  float64
}

// TabDistributed reproduces the §7 distributed-allocation study (Table
// T8): accept and conflict rates versus the egress-state sync period,
// with the centralized greedy scheduler as the reference row.
func TabDistributed(scale Scale) ([]DistributedRow, *report.Table, error) {
	if err := scale.Validate(); err != nil {
		return nil, nil, err
	}
	cfg := scale.flexibleAt(1)
	net := cfg.Network()
	p := policy.FractionMaxRate(1)

	t := &report.Table{
		Title:   "Table T8: distributed allocation — accept/conflict vs egress-state sync period",
		Headers: []string{"sync period", "accept rate", "conflict rate", "local-reject rate"},
	}

	var centralAcc float64
	for _, seed := range scale.Seeds {
		reqs, err := cfg.Generate(seed)
		if err != nil {
			return nil, nil, err
		}
		out, err := flexible.Greedy{Policy: p}.Schedule(net, reqs)
		if err != nil {
			return nil, nil, err
		}
		centralAcc += out.AcceptRate()
	}
	centralAcc /= float64(len(scale.Seeds))
	t.AddRow("centralized (§5 greedy)", fmt.Sprintf("%.3f", centralAcc), "0.000", "-")

	var rows []DistributedRow
	for _, sync := range DistributedSyncPeriods() {
		var acc, conf, local float64
		for _, seed := range scale.Seeds {
			reqs, err := cfg.Generate(seed)
			if err != nil {
				return nil, nil, err
			}
			rep, err := distributed.Run(net, reqs, distributed.Config{
				SyncPeriod: sync, MsgDelay: 0.01, Policy: p,
			})
			if err != nil {
				return nil, nil, err
			}
			if err := rep.Outcome.Verify(); err != nil {
				return nil, nil, err
			}
			acc += rep.Rate(distributed.Accepted)
			conf += rep.Rate(distributed.Conflict)
			local += rep.Rate(distributed.LocalReject)
		}
		k := float64(len(scale.Seeds))
		row := DistributedRow{
			SyncPeriod: sync, AcceptRate: acc / k,
			ConflictRate: conf / k, LocalReject: local / k,
		}
		rows = append(rows, row)
		label := row.SyncPeriod.String()
		if sync == 0 {
			label = "read-through"
		}
		t.AddRow(label, fmt.Sprintf("%.3f", row.AcceptRate),
			fmt.Sprintf("%.3f", row.ConflictRate), fmt.Sprintf("%.3f", row.LocalReject))
	}
	return rows, t, nil
}

// BookAheadFractions is the Table T9 axis: the fraction of requests that
// reserve in advance.
func BookAheadFractions() []float64 { return []float64{0, 0.25, 0.5, 0.75, 1} }

// BookAheadRow is one Table T9 measurement.
type BookAheadRow struct {
	Fraction   float64
	AcceptRate float64
}

// TabBookAhead studies book-ahead periods (Table T9, after the related
// work the paper positions against in §6). A book-ahead request is
// *submitted* a full mean-window before its transmission window opens, so
// the planner decides it before competing just-in-time traffic; and the
// profile-based Planner can defer any request's start into a future gap,
// which the instantaneous on-line System cannot. The table sweeps the
// book-ahead fraction and adds the on-line System as the no-deferral
// reference row.
func TabBookAhead(scale Scale) ([]BookAheadRow, *report.Table, error) {
	if err := scale.Validate(); err != nil {
		return nil, nil, err
	}
	base := workload.Default(workload.Flexible)
	base.Horizon = scale.Horizon
	base.MeanInterArrival = 3
	platform := core.Config{
		Ingress: capacities(base.NumIngress, base.PointCapacity),
		Egress:  capacities(base.NumEgress, base.PointCapacity),
		Policy:  "f=0.8",
	}

	t := &report.Table{
		Title:   "Table T9: book-ahead reservations — accept rate vs advance fraction (f=0.8)",
		Headers: []string{"variant", "accept rate"},
	}

	// Reference: the on-line System decides at arrival with no deferral.
	var onlineAcc float64
	for _, seed := range scale.Seeds {
		reqs, err := base.Generate(seed)
		if err != nil {
			return nil, nil, err
		}
		sys, err := core.NewSystem(platform)
		if err != nil {
			return nil, nil, err
		}
		accepted := 0
		for _, r := range reqs.All() {
			if err := sys.AdvanceTo(r.Start); err != nil {
				return nil, nil, err
			}
			d, err := sys.Submit(core.Transfer{
				From: int(r.Ingress), To: int(r.Egress),
				Volume: r.Volume, Deadline: r.Finish, MaxRate: r.MaxRate,
			})
			if err != nil {
				return nil, nil, err
			}
			if d.Accepted {
				accepted++
			}
		}
		onlineAcc += float64(accepted) / float64(reqs.Len())
	}
	onlineAcc /= float64(len(scale.Seeds))
	t.AddRow("on-line System (no deferral)", fmt.Sprintf("%.3f", onlineAcc))

	var rows []BookAheadRow
	for _, frac := range BookAheadFractions() {
		var acc float64
		for _, seed := range scale.Seeds {
			reqs, err := base.Generate(seed)
			if err != nil {
				return nil, nil, err
			}
			pl, err := core.NewPlanner(platform)
			if err != nil {
				return nil, nil, err
			}
			pick := rng.New(seed).Split("bookahead")
			// Submission time: book-ahead requests arrive one mean window
			// early (clamped at 0); just-in-time requests at their window
			// opening. Decisions happen in submission order.
			all := reqs.All()
			subs := make([]submission, len(all))
			var meanWindow units.Time
			for _, r := range all {
				meanWindow += r.WindowLength()
			}
			meanWindow /= units.Time(len(all))
			for i, r := range all {
				at := r.Start
				if pick.Bool(frac) {
					at -= meanWindow
					if at < 0 {
						at = 0
					}
				}
				subs[i] = submission{at: at, idx: i}
			}
			sortSubmissions(subs)
			accepted := 0
			for _, s := range subs {
				r := all[s.idx]
				if err := pl.AdvanceTo(s.at); err != nil {
					return nil, nil, err
				}
				res, err := pl.Reserve(core.AdvanceTransfer{
					From: int(r.Ingress), To: int(r.Egress),
					Volume: r.Volume, NotBefore: r.Start, Deadline: r.Finish,
					MaxRate: r.MaxRate,
				})
				if err != nil {
					return nil, nil, err
				}
				if res.Accepted {
					accepted++
				}
			}
			acc += float64(accepted) / float64(len(all))
		}
		row := BookAheadRow{Fraction: frac, AcceptRate: acc / float64(len(scale.Seeds))}
		rows = append(rows, row)
		t.AddRow(fmt.Sprintf("planner, book-ahead %.2f", frac), fmt.Sprintf("%.3f", row.AcceptRate))
	}
	return rows, t, nil
}

// submission pairs a request index with its submission instant.
type submission struct {
	at  units.Time
	idx int
}

// sortSubmissions orders by submission time, breaking ties by index.
func sortSubmissions(subs []submission) {
	sort.Slice(subs, func(i, j int) bool {
		if subs[i].at != subs[j].at {
			return subs[i].at < subs[j].at
		}
		return subs[i].idx < subs[j].idx
	})
}

func capacities(n int, c units.Bandwidth) []units.Bandwidth {
	out := make([]units.Bandwidth, n)
	for i := range out {
		out[i] = c
	}
	return out
}
