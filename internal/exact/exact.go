// Package exact provides optimal reference solvers for small instances of
// the paper's scheduling problems.
//
// The paper proves MAX-REQUESTS NP-complete (Theorem 1) and therefore
// only evaluates heuristics. For verification we still want ground truth
// on small instances: a branch-and-bound solver for rigid request sets
// (used to measure heuristic optimality gaps, Table T4 of DESIGN.md), a
// backtracking solver for the uniform unit-request instances produced by
// the Theorem-1 reduction (Table T2), and the polynomial EDF greedy that
// is optimal on a single ingress-egress pair — the special case the paper
// singles out.
package exact

import (
	"fmt"
	"sort"

	"gridbw/internal/alloc"
	"gridbw/internal/request"
	"gridbw/internal/topology"
)

// MaxRigid finds the maximum number of acceptable requests in a rigid set
// via branch and bound, together with one optimal accepted ID set. The
// search explores accept/reject decisions in request order against a full
// capacity ledger; nodeLimit bounds the explored decision nodes (0 means
// no limit). It returns an error when the limit is exhausted before the
// search completes, so callers never mistake a truncated bound for an
// optimum.
func MaxRigid(net *topology.Network, reqs *request.Set, nodeLimit int) (int, []request.ID, error) {
	all := reqs.All()
	for _, r := range all {
		if !r.Rigid() {
			return 0, nil, fmt.Errorf("exact: request %d is flexible; MaxRigid handles rigid sets only", r.ID)
		}
	}
	// Order by start time: decisions then conflict locally, which makes
	// the capacity-based pruning bite sooner.
	sort.Slice(all, func(i, j int) bool {
		if all[i].Start != all[j].Start {
			return all[i].Start < all[j].Start
		}
		return all[i].ID < all[j].ID
	})

	ledger := alloc.NewLedger(net)
	best := -1
	var bestSet []request.ID
	var current []request.ID
	nodes := 0

	var dfs func(idx, accepted int) error
	dfs = func(idx, accepted int) error {
		nodes++
		if nodeLimit > 0 && nodes > nodeLimit {
			return fmt.Errorf("exact: node limit %d exhausted", nodeLimit)
		}
		remaining := len(all) - idx
		if accepted+remaining <= best {
			return nil // cannot beat the incumbent
		}
		if idx == len(all) {
			if accepted > best {
				best = accepted
				bestSet = append(bestSet[:0], current...)
			}
			return nil
		}
		r := all[idx]
		// Branch 1: accept, if feasible.
		if g, err := request.NewGrant(r, r.Start, r.MinRate()); err == nil {
			if ledger.Fits(r, g) {
				if err := ledger.Reserve(r, g); err != nil {
					return err
				}
				current = append(current, r.ID)
				if err := dfs(idx+1, accepted+1); err != nil {
					return err
				}
				current = current[:len(current)-1]
				ledger.Revoke(r)
			}
		}
		// Branch 2: reject.
		return dfs(idx+1, accepted)
	}
	if err := dfs(0, 0); err != nil {
		return 0, nil, err
	}
	sort.Slice(bestSet, func(i, j int) bool { return bestSet[i] < bestSet[j] })
	return best, bestSet, nil
}

// UnitRequest is a uniform request of the MAX-REQUESTS-DEC decision
// problem: unit bandwidth, unit duration, and a window of integer time
// steps [Release, Deadline) in which its single step may be placed.
type UnitRequest struct {
	Ingress, Egress int
	// Release is the first admissible time step, Deadline the first
	// inadmissible one; the request occupies exactly one step t with
	// Release <= t < Deadline.
	Release, Deadline int
}

// Window reports the number of admissible steps.
func (u UnitRequest) Window() int { return u.Deadline - u.Release }

// UnitInstance is a problem-platform pair (R, I, E) with uniform requests.
type UnitInstance struct {
	// CapIn and CapOut are integer point capacities (units of bandwidth 1).
	CapIn, CapOut []int
	Requests      []UnitRequest
	// Steps is the number of time steps; windows must lie in [0, Steps).
	Steps int
}

// Validate checks instance consistency.
func (inst UnitInstance) Validate() error {
	if len(inst.CapIn) == 0 || len(inst.CapOut) == 0 {
		return fmt.Errorf("exact: empty point set")
	}
	if inst.Steps <= 0 {
		return fmt.Errorf("exact: non-positive step count %d", inst.Steps)
	}
	for _, c := range append(append([]int{}, inst.CapIn...), inst.CapOut...) {
		if c < 0 {
			return fmt.Errorf("exact: negative capacity %d", c)
		}
	}
	for i, r := range inst.Requests {
		switch {
		case r.Ingress < 0 || r.Ingress >= len(inst.CapIn):
			return fmt.Errorf("exact: request %d ingress %d out of range", i, r.Ingress)
		case r.Egress < 0 || r.Egress >= len(inst.CapOut):
			return fmt.Errorf("exact: request %d egress %d out of range", i, r.Egress)
		case r.Release < 0 || r.Deadline > inst.Steps || r.Window() <= 0:
			return fmt.Errorf("exact: request %d window [%d,%d) invalid", i, r.Release, r.Deadline)
		}
	}
	return nil
}

// UnitAssignment maps accepted request indices to their assigned step.
type UnitAssignment map[int]int

// MaxUnit solves the uniform instance exactly by backtracking: it returns
// the maximum number of acceptable requests and one optimal assignment.
// nodeLimit bounds explored nodes (0 = unlimited); exceeding it returns an
// error rather than a truncated answer.
func MaxUnit(inst UnitInstance, nodeLimit int) (int, UnitAssignment, error) {
	if err := inst.Validate(); err != nil {
		return 0, nil, err
	}
	n := len(inst.Requests)
	// Tightest-window-first ordering: rigid requests decided before
	// flexible ones prunes dramatically (the Theorem-1 instances have
	// window-1 regular requests and window-n special ones).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		wa, wb := inst.Requests[order[a]].Window(), inst.Requests[order[b]].Window()
		if wa != wb {
			return wa < wb
		}
		return order[a] < order[b]
	})

	// usedIn[t][i] and usedOut[t][e] track per-step occupancy.
	usedIn := make([][]int, inst.Steps)
	usedOut := make([][]int, inst.Steps)
	for t := range usedIn {
		usedIn[t] = make([]int, len(inst.CapIn))
		usedOut[t] = make([]int, len(inst.CapOut))
	}

	best := -1
	bestAssign := UnitAssignment{}
	current := UnitAssignment{}
	nodes := 0

	var dfs func(pos, accepted int) error
	dfs = func(pos, accepted int) error {
		nodes++
		if nodeLimit > 0 && nodes > nodeLimit {
			return fmt.Errorf("exact: node limit %d exhausted", nodeLimit)
		}
		if accepted+(n-pos) <= best {
			return nil
		}
		if pos == n {
			if accepted > best {
				best = accepted
				bestAssign = UnitAssignment{}
				for k, v := range current {
					bestAssign[k] = v
				}
			}
			return nil
		}
		idx := order[pos]
		r := inst.Requests[idx]
		for t := r.Release; t < r.Deadline; t++ {
			if usedIn[t][r.Ingress] < inst.CapIn[r.Ingress] &&
				usedOut[t][r.Egress] < inst.CapOut[r.Egress] {
				usedIn[t][r.Ingress]++
				usedOut[t][r.Egress]++
				current[idx] = t
				if err := dfs(pos+1, accepted+1); err != nil {
					return err
				}
				delete(current, idx)
				usedIn[t][r.Ingress]--
				usedOut[t][r.Egress]--
			}
		}
		return dfs(pos+1, accepted)
	}
	if err := dfs(0, 0); err != nil {
		return 0, nil, err
	}
	return best, bestAssign, nil
}

// VerifyUnit checks that an assignment is feasible for the instance and
// reports the number of accepted requests.
func VerifyUnit(inst UnitInstance, a UnitAssignment) (int, error) {
	if err := inst.Validate(); err != nil {
		return 0, err
	}
	usedIn := make([][]int, inst.Steps)
	usedOut := make([][]int, inst.Steps)
	for t := range usedIn {
		usedIn[t] = make([]int, len(inst.CapIn))
		usedOut[t] = make([]int, len(inst.CapOut))
	}
	for idx, t := range a {
		if idx < 0 || idx >= len(inst.Requests) {
			return 0, fmt.Errorf("exact: assignment references request %d", idx)
		}
		r := inst.Requests[idx]
		if t < r.Release || t >= r.Deadline {
			return 0, fmt.Errorf("exact: request %d assigned step %d outside [%d,%d)", idx, t, r.Release, r.Deadline)
		}
		usedIn[t][r.Ingress]++
		usedOut[t][r.Egress]++
	}
	for t := 0; t < inst.Steps; t++ {
		for i, u := range usedIn[t] {
			if u > inst.CapIn[i] {
				return 0, fmt.Errorf("exact: ingress %d over capacity at step %d (%d > %d)", i, t, u, inst.CapIn[i])
			}
		}
		for e, u := range usedOut[t] {
			if u > inst.CapOut[e] {
				return 0, fmt.Errorf("exact: egress %d over capacity at step %d (%d > %d)", e, t, u, inst.CapOut[e])
			}
		}
	}
	return len(a), nil
}

// SinglePairEDF is the polynomial special case noted after Theorem 1: on a
// platform with a single ingress-egress pair, greedy is optimal. For unit
// requests this is earliest-deadline-first admission step by step: at each
// time step, run the min(capIn, capOut) available slots through the
// released, not-yet-expired requests in deadline order. It returns the
// accepted count and assignment.
func SinglePairEDF(inst UnitInstance) (int, UnitAssignment, error) {
	if err := inst.Validate(); err != nil {
		return 0, nil, err
	}
	if len(inst.CapIn) != 1 || len(inst.CapOut) != 1 {
		return 0, nil, fmt.Errorf("exact: SinglePairEDF needs exactly one ingress and one egress (got %dx%d)",
			len(inst.CapIn), len(inst.CapOut))
	}
	capacity := inst.CapIn[0]
	if inst.CapOut[0] < capacity {
		capacity = inst.CapOut[0]
	}
	assign := UnitAssignment{}
	type pending struct{ idx, deadline int }
	for t := 0; t < inst.Steps; t++ {
		var avail []pending
		for idx, r := range inst.Requests {
			if _, done := assign[idx]; done {
				continue
			}
			if r.Release <= t && t < r.Deadline {
				avail = append(avail, pending{idx: idx, deadline: r.Deadline})
			}
		}
		sort.Slice(avail, func(i, j int) bool {
			if avail[i].deadline != avail[j].deadline {
				return avail[i].deadline < avail[j].deadline
			}
			return avail[i].idx < avail[j].idx
		})
		for k := 0; k < len(avail) && k < capacity; k++ {
			assign[avail[k].idx] = t
		}
	}
	return len(assign), assign, nil
}
