package exact

import (
	"testing"
	"testing/quick"

	"gridbw/internal/request"
	"gridbw/internal/rng"
	"gridbw/internal/sched/rigid"
	"gridbw/internal/topology"
	"gridbw/internal/units"
)

func rigidReq(id int, in, eg topology.PointID, start, finish units.Time, rate units.Bandwidth) request.Request {
	return request.Request{
		ID: request.ID(id), Ingress: in, Egress: eg,
		Start: start, Finish: finish,
		Volume:  rate.For(finish - start),
		MaxRate: rate,
	}
}

func TestMaxRigidTrivial(t *testing.T) {
	net := topology.Uniform(1, 1, 1*units.GBps)
	reqs := request.MustNewSet([]request.Request{
		rigidReq(0, 0, 0, 0, 100, 400*units.MBps),
		rigidReq(1, 0, 0, 0, 100, 400*units.MBps),
	})
	n, set, err := MaxRigid(net, reqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || len(set) != 2 {
		t.Errorf("optimum = %d (%v), want 2", n, set)
	}
}

func TestMaxRigidPicksLargerSubset(t *testing.T) {
	net := topology.Uniform(1, 1, 1*units.GBps)
	// One 900 MB/s hog vs three 300 MB/s requests in the same window:
	// FCFS-style orderings might take the hog; the optimum is 3.
	reqs := request.MustNewSet([]request.Request{
		rigidReq(0, 0, 0, 0, 100, 900*units.MBps),
		rigidReq(1, 0, 0, 0, 100, 300*units.MBps),
		rigidReq(2, 0, 0, 0, 100, 300*units.MBps),
		rigidReq(3, 0, 0, 0, 100, 300*units.MBps),
	})
	n, set, err := MaxRigid(net, reqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("optimum = %d (%v), want 3", n, set)
	}
	for _, id := range set {
		if id == 0 {
			t.Error("optimal set contains the hog")
		}
	}
}

func TestMaxRigidRejectsFlexible(t *testing.T) {
	net := topology.Uniform(1, 1, 1*units.GBps)
	flex := request.MustNewSet([]request.Request{{
		ID: 0, Start: 0, Finish: 1000, Volume: 10 * units.GB, MaxRate: 1 * units.GBps,
	}})
	if _, _, err := MaxRigid(net, flex, 0); err == nil {
		t.Error("flexible set accepted")
	}
}

func TestMaxRigidNodeLimit(t *testing.T) {
	net := topology.Uniform(2, 2, 1*units.GBps)
	var rs []request.Request
	src := rng.New(1)
	for i := 0; i < 18; i++ {
		start := units.Time(src.Intn(50))
		rs = append(rs, rigidReq(i, topology.PointID(src.Intn(2)), topology.PointID(src.Intn(2)),
			start, start+units.Time(src.Intn(50)+10), units.Bandwidth(src.Intn(900)+100)*units.MBps))
	}
	reqs := request.MustNewSet(rs)
	if _, _, err := MaxRigid(net, reqs, 5); err == nil {
		t.Error("node limit 5 not reported")
	}
	if _, _, err := MaxRigid(net, reqs, 0); err != nil {
		t.Errorf("unlimited search failed: %v", err)
	}
}

// TestMaxRigidDominatesHeuristics: the exact optimum is >= every
// heuristic's accepted count, and the heuristics' outcomes are feasible
// witnesses (so equality certifies the heuristic was optimal).
func TestMaxRigidDominatesHeuristics(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		net := topology.Uniform(2, 2, 1*units.GBps)
		n := src.Intn(10) + 3
		rs := make([]request.Request, n)
		for i := range rs {
			start := units.Time(src.Intn(40))
			rs[i] = rigidReq(i, topology.PointID(src.Intn(2)), topology.PointID(src.Intn(2)),
				start, start+units.Time(src.Intn(60)+5), units.Bandwidth(src.Intn(900)+100)*units.MBps)
		}
		reqs := request.MustNewSet(rs)
		opt, _, err := MaxRigid(net, reqs, 0)
		if err != nil {
			return false
		}
		heuristics := []func() (int, error){
			func() (int, error) {
				out, err := rigid.FCFS{}.Schedule(net, reqs)
				if err != nil {
					return 0, err
				}
				return out.AcceptedCount(), out.Verify()
			},
			func() (int, error) {
				out, err := rigid.CumulatedSlots().Schedule(net, reqs)
				if err != nil {
					return 0, err
				}
				return out.AcceptedCount(), out.Verify()
			},
			func() (int, error) {
				out, err := rigid.MinBWSlots().Schedule(net, reqs)
				if err != nil {
					return 0, err
				}
				return out.AcceptedCount(), out.Verify()
			},
		}
		for _, h := range heuristics {
			got, err := h()
			if err != nil {
				return false
			}
			if got > opt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestUnitInstanceValidate(t *testing.T) {
	good := UnitInstance{
		CapIn: []int{1}, CapOut: []int{1},
		Requests: []UnitRequest{{0, 0, 0, 2}},
		Steps:    3,
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []UnitInstance{
		{CapIn: nil, CapOut: []int{1}, Steps: 1},
		{CapIn: []int{1}, CapOut: []int{1}, Steps: 0},
		{CapIn: []int{-1}, CapOut: []int{1}, Steps: 1},
		{CapIn: []int{1}, CapOut: []int{1}, Steps: 1, Requests: []UnitRequest{{1, 0, 0, 1}}},
		{CapIn: []int{1}, CapOut: []int{1}, Steps: 1, Requests: []UnitRequest{{0, 0, 0, 2}}},
		{CapIn: []int{1}, CapOut: []int{1}, Steps: 1, Requests: []UnitRequest{{0, 0, 1, 1}}},
	}
	for i, inst := range bad {
		if err := inst.Validate(); err == nil {
			t.Errorf("bad instance %d validated", i)
		}
	}
}

func TestMaxUnitSimple(t *testing.T) {
	// Two unit requests, one step, capacity 1: only one fits.
	inst := UnitInstance{
		CapIn: []int{1}, CapOut: []int{1},
		Requests: []UnitRequest{{0, 0, 0, 1}, {0, 0, 0, 1}},
		Steps:    1,
	}
	n, a, err := MaxUnit(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("optimum = %d, want 1", n)
	}
	if got, err := VerifyUnit(inst, a); err != nil || got != 1 {
		t.Errorf("assignment invalid: %d, %v", got, err)
	}
}

func TestMaxUnitUsesFlexibility(t *testing.T) {
	// Two requests on the same pair, capacity 1, two steps: flexibility
	// lets both fit.
	inst := UnitInstance{
		CapIn: []int{1}, CapOut: []int{1},
		Requests: []UnitRequest{{0, 0, 0, 2}, {0, 0, 0, 2}},
		Steps:    2,
	}
	n, a, err := MaxUnit(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("optimum = %d, want 2", n)
	}
	if a[0] == a[1] {
		t.Error("both requests on the same step")
	}
}

func TestMaxUnitRespectsBothSides(t *testing.T) {
	// Different ingress, same egress with capacity 1: conflict.
	inst := UnitInstance{
		CapIn: []int{1, 1}, CapOut: []int{1},
		Requests: []UnitRequest{{0, 0, 0, 1}, {1, 0, 0, 1}},
		Steps:    1,
	}
	n, _, err := MaxUnit(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("optimum = %d, want 1 (egress bottleneck)", n)
	}
}

func TestMaxUnitNodeLimit(t *testing.T) {
	var reqs []UnitRequest
	for i := 0; i < 12; i++ {
		reqs = append(reqs, UnitRequest{0, 0, 0, 6})
	}
	inst := UnitInstance{CapIn: []int{2}, CapOut: []int{2}, Requests: reqs, Steps: 6}
	if _, _, err := MaxUnit(inst, 3); err == nil {
		t.Error("node limit not reported")
	}
}

func TestVerifyUnitCatchesViolations(t *testing.T) {
	inst := UnitInstance{
		CapIn: []int{1}, CapOut: []int{1},
		Requests: []UnitRequest{{0, 0, 0, 1}, {0, 0, 0, 1}},
		Steps:    1,
	}
	if _, err := VerifyUnit(inst, UnitAssignment{0: 0, 1: 0}); err == nil {
		t.Error("over-capacity assignment verified")
	}
	if _, err := VerifyUnit(inst, UnitAssignment{0: 5}); err == nil {
		t.Error("out-of-window assignment verified")
	}
	if _, err := VerifyUnit(inst, UnitAssignment{7: 0}); err == nil {
		t.Error("unknown request verified")
	}
}

func TestSinglePairEDFRequiresSinglePair(t *testing.T) {
	inst := UnitInstance{CapIn: []int{1, 1}, CapOut: []int{1}, Steps: 1}
	if _, _, err := SinglePairEDF(inst); err == nil {
		t.Error("multi-point instance accepted")
	}
}

func TestSinglePairEDFBasic(t *testing.T) {
	// Capacity 1, three steps; requests: tight deadline must go first.
	inst := UnitInstance{
		CapIn: []int{1}, CapOut: []int{1},
		Requests: []UnitRequest{
			{0, 0, 0, 3}, // loose
			{0, 0, 0, 1}, // tight: only step 0
			{0, 0, 1, 2}, // only step 1
		},
		Steps: 3,
	}
	n, a, err := SinglePairEDF(inst)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("EDF accepted %d, want 3", n)
	}
	if a[1] != 0 || a[2] != 1 {
		t.Errorf("assignment = %v", a)
	}
	if _, err := VerifyUnit(inst, a); err != nil {
		t.Error(err)
	}
}

// TestSinglePairEDFOptimalProperty checks the paper's claim: on a single
// ingress-egress pair the greedy (EDF) solution matches the exact optimum.
func TestSinglePairEDFOptimalProperty(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		steps := src.Intn(5) + 2
		capacity := src.Intn(3) + 1
		n := src.Intn(10) + 1
		reqs := make([]UnitRequest, n)
		for i := range reqs {
			rel := src.Intn(steps)
			reqs[i] = UnitRequest{Ingress: 0, Egress: 0, Release: rel, Deadline: rel + 1 + src.Intn(steps-rel)}
		}
		inst := UnitInstance{
			CapIn: []int{capacity}, CapOut: []int{capacity},
			Requests: reqs, Steps: steps,
		}
		opt, _, err := MaxUnit(inst, 0)
		if err != nil {
			return false
		}
		got, a, err := SinglePairEDF(inst)
		if err != nil {
			return false
		}
		if _, err := VerifyUnit(inst, a); err != nil {
			return false
		}
		return got == opt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestMaxUnitMatchesBruteForceOnTinyInstances cross-checks the
// branch-and-bound against exhaustive enumeration over all subsets and
// step choices.
func TestMaxUnitMatchesBruteForceOnTinyInstances(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		steps := src.Intn(3) + 1
		nIn := src.Intn(2) + 1
		nOut := src.Intn(2) + 1
		capIn := make([]int, nIn)
		capOut := make([]int, nOut)
		for i := range capIn {
			capIn[i] = src.Intn(2) + 1
		}
		for e := range capOut {
			capOut[e] = src.Intn(2) + 1
		}
		n := src.Intn(6) + 1
		reqs := make([]UnitRequest, n)
		for i := range reqs {
			rel := src.Intn(steps)
			reqs[i] = UnitRequest{
				Ingress: src.Intn(nIn), Egress: src.Intn(nOut),
				Release: rel, Deadline: rel + 1 + src.Intn(steps-rel),
			}
		}
		inst := UnitInstance{CapIn: capIn, CapOut: capOut, Requests: reqs, Steps: steps}
		opt, a, err := MaxUnit(inst, 0)
		if err != nil {
			return false
		}
		if got, err := VerifyUnit(inst, a); err != nil || got != opt {
			return false
		}
		// Exhaustive reference: every request picks a step or -1 (reject).
		best := 0
		choices := make([]int, n)
		var enum func(i int)
		enum = func(i int) {
			if i == n {
				cnt := 0
				a := UnitAssignment{}
				for j, c := range choices {
					if c >= 0 {
						a[j] = c
						cnt++
					}
				}
				if cnt > best {
					if _, err := VerifyUnit(inst, a); err == nil {
						best = cnt
					}
				}
				return
			}
			choices[i] = -1
			enum(i + 1)
			for s := reqs[i].Release; s < reqs[i].Deadline; s++ {
				choices[i] = s
				enum(i + 1)
			}
			choices[i] = -1
		}
		enum(0)
		return best == opt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
