package metrics

// Watchdog accumulates lifetime counters for one failover watchdog — the
// probe traffic and the (rare) promotions it drove. Like Online it is a
// plain value: the watchdog holds its own lock and the fields marshal
// directly into status answers.
type Watchdog struct {
	// Probes counts health probes sent to the primary; Misses counts the
	// probes that failed (transport error or non-200 answer).
	Probes uint64 `json:"probes"`
	Misses uint64 `json:"misses"`
	// LagHolds counts promotion attempts deferred because the standby was
	// further behind the primary's frontier than the configured bound.
	LagHolds uint64 `json:"lag_holds,omitempty"`
	// PromoteAttempts counts promote calls issued; Promotions counts the
	// ones that succeeded. A watchdog promotes at most once per lifetime,
	// but a flaky standby can make the attempt count larger.
	PromoteAttempts uint64 `json:"promote_attempts,omitempty"`
	Promotions      uint64 `json:"promotions,omitempty"`
	// Transitions counts state-machine edges actually taken (self-loops
	// excluded), so a flapping primary is visible even when the watchdog
	// never ends up promoting.
	Transitions uint64 `json:"transitions,omitempty"`
	// VoteRounds counts promotion vote rounds run; VotesGranted and
	// VotesDenied count the individual peer answers collected across them
	// (unreachable peers count as denied). QuorumHolds counts rounds that
	// failed to reach a majority — each one is a promotion the quorum gate
	// refused.
	VoteRounds   uint64 `json:"vote_rounds,omitempty"`
	VotesGranted uint64 `json:"votes_granted,omitempty"`
	VotesDenied  uint64 `json:"votes_denied,omitempty"`
	QuorumHolds  uint64 `json:"quorum_holds,omitempty"`
}

// RecordProbe counts one primary health probe and whether it missed.
func (w *Watchdog) RecordProbe(miss bool) {
	w.Probes++
	if miss {
		w.Misses++
	}
}

// RecordLagHold counts a promotion deferred by the replication-lag bound.
func (w *Watchdog) RecordLagHold() { w.LagHolds++ }

// RecordPromoteAttempt counts one promote call and whether it succeeded.
func (w *Watchdog) RecordPromoteAttempt(ok bool) {
	w.PromoteAttempts++
	if ok {
		w.Promotions++
	}
}

// RecordTransition counts one taken state-machine edge.
func (w *Watchdog) RecordTransition() { w.Transitions++ }

// RecordVoteRound counts one promotion vote round: the per-peer answers
// it collected and whether the round reached a majority.
func (w *Watchdog) RecordVoteRound(granted, denied int, quorum bool) {
	w.VoteRounds++
	w.VotesGranted += uint64(granted)
	w.VotesDenied += uint64(denied)
	if !quorum {
		w.QuorumHolds++
	}
}
