package metrics

// FaultCounters aggregates what a fault-injected protocol run observed:
// the channel-level perturbations (drops, duplicates, crash losses) and
// the protocol-level outcomes they caused (conflicts, timeouts, leaked
// holds, retransmissions). The distributed control plane fills one per
// run; the invariant harness asserts Leaks stays zero.
type FaultCounters struct {
	// Sent counts protocol message sends (before any fault decision);
	// Delivered counts copies that actually reached a live router.
	Sent      uint64 `json:"sent"`
	Delivered uint64 `json:"delivered"`
	// Dropped counts copies lost in flight, Duplicated counts sends that
	// emitted an extra copy, CrashLost counts copies that arrived at a
	// crashed router.
	Dropped    uint64 `json:"dropped"`
	Duplicated uint64 `json:"duplicated"`
	CrashLost  uint64 `json:"crash_lost"`
	// Retransmits counts protocol-level resends of unanswered messages.
	Retransmits uint64 `json:"retransmits"`
	// Conflicts counts NACKed reservations, Timeouts counts tentative
	// holds rolled back by the reservation deadline, Leaks counts holds
	// still unresolved after quiescence (always zero for a sound run).
	Conflicts uint64 `json:"conflicts"`
	Timeouts  uint64 `json:"timeouts"`
	Leaks     uint64 `json:"leaks"`
}

// Merge adds o into f field-wise, so protocol counters and injector
// counters combine into one report.
func (f *FaultCounters) Merge(o FaultCounters) {
	f.Sent += o.Sent
	f.Delivered += o.Delivered
	f.Dropped += o.Dropped
	f.Duplicated += o.Duplicated
	f.CrashLost += o.CrashLost
	f.Retransmits += o.Retransmits
	f.Conflicts += o.Conflicts
	f.Timeouts += o.Timeouts
	f.Leaks += o.Leaks
}
