package metrics

import (
	"time"

	"gridbw/internal/units"
)

// Online accumulates lifetime admission statistics for a long-running
// reservation service — the streaming counterpart of Evaluate, which needs
// a complete batch outcome. It is a plain value: callers (the gridbwd
// server) hold their own lock, and the exported fields marshal directly
// into snapshots so a restarted daemon resumes its counters.
type Online struct {
	Submitted uint64 `json:"submitted"`
	Accepted  uint64 `json:"accepted"`
	Rejected  uint64 `json:"rejected"`
	Cancelled uint64 `json:"cancelled"`
	Expired   uint64 `json:"expired"`
	// GrantedVolume sums vol(r) over accepted requests.
	GrantedVolume units.Volume `json:"granted_volume_bytes"`
	// GrantedRateSum sums bw(r) over accepted requests; with Accepted it
	// yields the mean granted rate without storing per-request records.
	GrantedRateSum units.Bandwidth `json:"granted_rate_sum_bps"`
	// Shed counts submissions refused before admission because the daemon
	// was over its in-flight limit; they are not counted in Submitted.
	Shed uint64 `json:"shed,omitempty"`
	// IdempotentHits counts retried submissions answered from the
	// idempotency cache instead of being admitted a second time.
	IdempotentHits uint64 `json:"idempotent_hits,omitempty"`
	// Panics counts handler panics recovered by the HTTP middleware.
	Panics uint64 `json:"panics,omitempty"`
	// Batches counts served SubmitBatch calls; BatchRequests sums the
	// submissions they carried, so BatchRequests/Batches is the mean batch
	// size. Submissions inside a batch also count toward Submitted.
	Batches       uint64 `json:"batches,omitempty"`
	BatchRequests uint64 `json:"batch_requests,omitempty"`
	// LogAppendFailures counts decision-log or WAL appends that failed.
	// Any non-zero value flips the daemon into durability-degraded mode:
	// it keeps serving, but the audit trail has a hole and a crash could
	// forget decisions made past the failure.
	LogAppendFailures uint64 `json:"log_append_failures,omitempty"`
	// Reseeds counts the times a follower's pull cursor was compacted away
	// and it rebuilt itself from a shipped snapshot instead of resyncing by
	// hand.
	Reseeds uint64 `json:"reseeds,omitempty"`
	// SyncDegraded counts submissions whose synchronous-ack wait hit its
	// deadline and degraded to async durability: the decision was admitted
	// and WAL'd locally, but the required follower acks never arrived in
	// time, so its replication guarantee is the async loss window again.
	SyncDegraded uint64 `json:"sync_degraded,omitempty"`
	// AdmitLatency is the wall-clock admission-latency histogram — how long
	// each submission spent in the server's decide pipeline — so
	// server-observed latency can sit next to what a load harness measures
	// from outside. It is deliberately excluded from snapshots: latency is
	// a property of the running process, not of recovered state, and the
	// histogram's atomics must never be JSON-copied. RecordAdmitLatency
	// lazily creates it under the caller's lock, so a restored Online (whose
	// pointer the snapshot wiped) heals on the next recorded decision.
	AdmitLatency *Histogram `json:"-"`
}

// RecordAccept counts an accepted request with its granted rate and volume.
func (o *Online) RecordAccept(bw units.Bandwidth, vol units.Volume) {
	o.Submitted++
	o.Accepted++
	o.GrantedRateSum += bw
	o.GrantedVolume += vol
}

// RecordReject counts a rejected request.
func (o *Online) RecordReject() {
	o.Submitted++
	o.Rejected++
}

// RecordCancel counts a client-cancelled reservation.
func (o *Online) RecordCancel() { o.Cancelled++ }

// RecordExpire counts a reservation whose window passed (transfer done).
func (o *Online) RecordExpire() { o.Expired++ }

// RecordShed counts a submission refused by overload protection.
func (o *Online) RecordShed() { o.Shed++ }

// RecordIdempotentHit counts a retry answered from the idempotency cache.
func (o *Online) RecordIdempotentHit() { o.IdempotentHits++ }

// RecordPanic counts a recovered handler panic.
func (o *Online) RecordPanic() { o.Panics++ }

// RecordBatch counts one served batch call carrying n submissions.
func (o *Online) RecordBatch(n int) {
	o.Batches++
	o.BatchRequests += uint64(n)
}

// RecordLogAppendFailure counts a decision-log or WAL append that failed.
func (o *Online) RecordLogAppendFailure() { o.LogAppendFailures++ }

// RecordReseed counts a snapshot re-seed after the pull cursor was
// compacted away.
func (o *Online) RecordReseed() { o.Reseeds++ }

// RecordSyncDegraded counts a submission whose sync-ack wait timed out
// and fell back to async durability.
func (o *Online) RecordSyncDegraded() { o.SyncDegraded++ }

// RecordAdmitLatency records how long one submission spent in the decide
// pipeline. Like every Online mutation it runs under the caller's lock;
// the histogram itself is atomic, so readers holding only a copied Online
// may keep querying the shared pointer afterwards.
func (o *Online) RecordAdmitLatency(d time.Duration) {
	if o.AdmitLatency == nil {
		o.AdmitLatency = NewHistogram()
	}
	o.AdmitLatency.Record(d)
}

// AdmitLatencySummary digests the admission-latency histogram; the zero
// summary before any decision was timed.
func (o *Online) AdmitLatencySummary() LatencySummary {
	if o.AdmitLatency == nil {
		return LatencySummary{}
	}
	return o.AdmitLatency.Summary()
}

// DurabilityDegraded reports whether any decision fell short of its
// durability promise — a failed audit-log append, or a sync-ack wait
// that timed out — the health signal operators page on.
func (o *Online) DurabilityDegraded() bool {
	return o.LogAppendFailures > 0 || o.SyncDegraded > 0
}

// AcceptRate reports Accepted/Submitted, the online MAX-REQUESTS
// objective; 0 before any submission.
func (o *Online) AcceptRate() float64 {
	if o.Submitted == 0 {
		return 0
	}
	return float64(o.Accepted) / float64(o.Submitted)
}

// MeanGrantedRate reports the mean bw(r) over accepted requests, 0 before
// any acceptance.
func (o *Online) MeanGrantedRate() units.Bandwidth {
	if o.Accepted == 0 {
		return 0
	}
	return o.GrantedRateSum / units.Bandwidth(o.Accepted)
}
