// Package metrics computes the paper's evaluation objectives from a
// scheduling outcome: the MAX-REQUESTS accept rate, the RESOURCE-UTIL
// utilization ratio with the B^scaled correction of §2.2, the
// #guaranteed refined accept rate of §2.3, plus the replication
// statistics (mean / standard deviation / 95% confidence interval) used
// to aggregate repeated simulation runs.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"gridbw/internal/policy"
	"gridbw/internal/request"
	"gridbw/internal/sched"
	"gridbw/internal/topology"
	"gridbw/internal/units"
)

// Metrics summarizes one scheduling outcome.
type Metrics struct {
	// Requests and Accepted count the request set and accepted subset.
	Requests, Accepted int
	// AcceptRate is Accepted / Requests (MAX-REQUESTS, normalized).
	AcceptRate float64
	// ResourceUtil is the paper's RESOURCE-UTIL: granted bandwidth over
	// half the scaled platform capacity.
	ResourceUtil float64
	// TimeUtil is the time-integrated utilization: allocated volume over
	// (span × half capacity) — the operational counterpart of
	// ResourceUtil for time-extended workloads.
	TimeUtil float64
	// ScaledTimeUtil is the time-extended analogue of RESOURCE-UTIL with
	// the B^scaled correction applied instant by instant: moved volume
	// over ½·Σ_p ∫ min(demand_p(t), capacity_p) dt. It is the bounded
	// [0,1] metric used for the Figure 4 utilization panel (the literal
	// §2.2 formula is a static snapshot and exceeds 1 once requests are
	// spread over time; see DESIGN.md).
	ScaledTimeUtil float64
	// GuaranteedRate is #guaranteed(f) / Requests for the f used in
	// Evaluate.
	GuaranteedRate float64
	// MeanGrantedRate is the mean bw(r) over accepted requests.
	MeanGrantedRate units.Bandwidth
	// MeanStretch is mean (assigned duration / minimal duration) over
	// accepted requests; 1 means everyone runs at MaxRate.
	MeanStretch float64
}

// Evaluate computes all metrics for an outcome. The tuning factor f sets
// the #guaranteed threshold (use 0 to count every accepted request as
// guaranteed).
func Evaluate(out *sched.Outcome, f float64) Metrics {
	return EvaluateFiltered(out, f, nil)
}

// EvaluateFiltered computes metrics over the subset of requests accepted
// by the filter (nil means all). The standard use is warm-up exclusion:
// requests arriving while the simulated network is still filling see an
// unrealistically empty system, so steady-state comparisons should filter
// to arrivals after a warm-up prefix (see Warmup).
func EvaluateFiltered(out *sched.Outcome, f float64, filter func(request.Request) bool) Metrics {
	net := out.Network
	reqs := out.Requests
	include := func(r request.Request) bool { return filter == nil || filter(r) }
	m := Metrics{}
	for _, r := range reqs.All() {
		if include(r) {
			m.Requests++
		}
	}
	if m.Requests == 0 {
		return m
	}

	// Demand per point (over all included requests, accepted or not) for
	// B^scaled.
	demandIn := make([]units.Bandwidth, net.NumIngress())
	demandOut := make([]units.Bandwidth, net.NumEgress())
	for _, r := range reqs.All() {
		if !include(r) {
			continue
		}
		demandIn[int(r.Ingress)] += r.MinRate()
		demandOut[int(r.Egress)] += r.MinRate()
	}
	var scaledCap units.Bandwidth
	for i, d := range demandIn {
		c := net.Bin(topology.PointID(i))
		if d < c {
			c = d
		}
		scaledCap += c
	}
	for e, d := range demandOut {
		c := net.Bout(topology.PointID(e))
		if d < c {
			c = d
		}
		scaledCap += c
	}

	var granted units.Bandwidth
	var stretchSum float64
	guaranteed := 0
	var spanStart, spanEnd units.Time
	first := true
	var allocVolume units.Volume
	for _, d := range out.Decisions() {
		r := reqs.Get(d.Request)
		if !include(r) {
			continue
		}
		if first {
			spanStart, spanEnd = r.Start, r.Finish
			first = false
		} else {
			if r.Start < spanStart {
				spanStart = r.Start
			}
			if r.Finish > spanEnd {
				spanEnd = r.Finish
			}
		}
		if !d.Accepted {
			continue
		}
		m.Accepted++
		granted += d.Grant.Bandwidth
		allocVolume += d.Grant.Bandwidth.For(d.Grant.Duration())
		if md := r.MinDuration(); md > 0 {
			stretchSum += float64(d.Grant.Duration()) / float64(md)
		}
		if policy.Guaranteed(r, d.Grant.Bandwidth, f) {
			guaranteed++
		}
	}

	m.AcceptRate = float64(m.Accepted) / float64(m.Requests)
	m.GuaranteedRate = float64(guaranteed) / float64(m.Requests)
	if scaledCap > 0 {
		m.ResourceUtil = float64(granted) / (0.5 * float64(scaledCap))
	}
	if m.Accepted > 0 {
		m.MeanGrantedRate = granted / units.Bandwidth(m.Accepted)
		m.MeanStretch = stretchSum / float64(m.Accepted)
	}
	if span := spanEnd - spanStart; span > 0 {
		m.TimeUtil = float64(allocVolume) / (float64(span) * float64(net.HalfTotalCapacity()))
	}

	// ScaledTimeUtil denominator: per-point capped demand integral.
	var cappedDemand float64
	for i := 0; i < net.NumIngress(); i++ {
		cappedDemand += demandIntegral(reqs, topology.Ingress, topology.PointID(i), net.Bin(topology.PointID(i)), include)
	}
	for e := 0; e < net.NumEgress(); e++ {
		cappedDemand += demandIntegral(reqs, topology.Egress, topology.PointID(e), net.Bout(topology.PointID(e)), include)
	}
	var movedVolume float64
	for _, d := range out.Decisions() {
		if d.Accepted && include(reqs.Get(d.Request)) {
			movedVolume += float64(reqs.Get(d.Request).Volume)
		}
	}
	if cappedDemand > 0 {
		m.ScaledTimeUtil = movedVolume / (0.5 * cappedDemand)
	}
	return m
}

// demandIntegral computes ∫ min(demand_p(t), capacity) dt for one point,
// where demand_p is the sum of MinRate over requests whose requested
// window covers t.
func demandIntegral(reqs *request.Set, dir topology.Direction, id topology.PointID, capacity units.Bandwidth, include func(request.Request) bool) float64 {
	type ev struct {
		at   units.Time
		rate float64
	}
	var evs []ev
	for _, r := range reqs.All() {
		if !include(r) {
			continue
		}
		var p topology.PointID
		if dir == topology.Ingress {
			p = r.Ingress
		} else {
			p = r.Egress
		}
		if p != id {
			continue
		}
		rate := float64(r.MinRate())
		evs = append(evs, ev{at: r.Start, rate: rate}, ev{at: r.Finish, rate: -rate})
	}
	if len(evs) == 0 {
		return 0
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].at < evs[j].at })
	var integral, level float64
	prev := evs[0].at
	for _, e := range evs {
		dt := float64(e.at - prev)
		if dt > 0 {
			integral += math.Min(level, float64(capacity)) * dt
		}
		level += e.rate
		prev = e.at
	}
	return integral
}

// Warmup returns a filter that keeps only requests arriving at or after
// the cutoff — the standard warm-up exclusion for steady-state
// measurement.
func Warmup(cutoff units.Time) func(request.Request) bool {
	return func(r request.Request) bool { return r.Start >= cutoff }
}

// Sample aggregates one scalar across replications.
type Sample struct {
	xs []float64
}

// Add appends an observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// N reports the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean reports the sample mean (0 when empty).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Std reports the sample standard deviation (0 for n < 2).
func (s *Sample) Std() float64 {
	if len(s.xs) < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(s.xs)-1))
}

// CI95 reports the half-width of the normal-approximation 95% confidence
// interval around the mean.
func (s *Sample) CI95() float64 {
	if len(s.xs) < 2 {
		return 0
	}
	return 1.96 * s.Std() / math.Sqrt(float64(len(s.xs)))
}

// String formats as "mean ± ci".
func (s *Sample) String() string {
	return fmt.Sprintf("%.3f ± %.3f", s.Mean(), s.CI95())
}

// Aggregate collects every Metrics field across replications.
type Aggregate struct {
	AcceptRate, ResourceUtil, TimeUtil, ScaledTimeUtil, GuaranteedRate, MeanStretch Sample
}

// Add folds one replication's metrics in.
func (a *Aggregate) Add(m Metrics) {
	a.AcceptRate.Add(m.AcceptRate)
	a.ResourceUtil.Add(m.ResourceUtil)
	a.TimeUtil.Add(m.TimeUtil)
	a.ScaledTimeUtil.Add(m.ScaledTimeUtil)
	a.GuaranteedRate.Add(m.GuaranteedRate)
	a.MeanStretch.Add(m.MeanStretch)
}
