package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"gridbw/internal/policy"
	"gridbw/internal/request"
	"gridbw/internal/sched"
	"gridbw/internal/sched/flexible"
	"gridbw/internal/topology"
	"gridbw/internal/units"
	"gridbw/internal/workload"
)

func outcomeWith(t *testing.T, net *topology.Network, reqs *request.Set, accept map[request.ID]units.Bandwidth) *sched.Outcome {
	t.Helper()
	out := sched.NewOutcome("test", net, reqs)
	for id, bw := range accept {
		r := reqs.Get(id)
		g, err := request.NewGrant(r, r.Start, bw)
		if err != nil {
			t.Fatal(err)
		}
		out.Accept(g)
	}
	return out
}

func TestEvaluateEmpty(t *testing.T) {
	net := topology.Uniform(1, 1, 1*units.GBps)
	out := sched.NewOutcome("test", net, request.MustNewSet(nil))
	m := Evaluate(out, 0)
	if m != (Metrics{}) {
		t.Errorf("empty metrics = %+v", m)
	}
}

func TestAcceptRateAndGuaranteed(t *testing.T) {
	net := topology.Uniform(2, 2, 1*units.GBps)
	reqs := request.MustNewSet([]request.Request{
		{ID: 0, Ingress: 0, Egress: 0, Start: 0, Finish: 1000, Volume: 100 * units.GB, MaxRate: 1 * units.GBps},
		{ID: 1, Ingress: 1, Egress: 1, Start: 0, Finish: 1000, Volume: 100 * units.GB, MaxRate: 1 * units.GBps},
		{ID: 2, Ingress: 0, Egress: 1, Start: 0, Finish: 1000, Volume: 100 * units.GB, MaxRate: 1 * units.GBps},
	})
	// Accept 0 at 800 MB/s (guaranteed at f=0.8) and 1 at MinRate 100 MB/s
	// (not guaranteed at f=0.8); reject 2.
	out := outcomeWith(t, net, reqs, map[request.ID]units.Bandwidth{
		0: 800 * units.MBps,
		1: 100 * units.MBps,
	})
	m := Evaluate(out, 0.8)
	if m.Requests != 3 || m.Accepted != 2 {
		t.Fatalf("counts = %+v", m)
	}
	if !units.ApproxEq(m.AcceptRate, 2.0/3.0) {
		t.Errorf("accept rate = %v", m.AcceptRate)
	}
	if !units.ApproxEq(m.GuaranteedRate, 1.0/3.0) {
		t.Errorf("guaranteed rate = %v", m.GuaranteedRate)
	}
	if !units.ApproxEq(float64(m.MeanGrantedRate), float64(450*units.MBps)) {
		t.Errorf("mean granted = %v", m.MeanGrantedRate)
	}
}

func TestResourceUtilScaling(t *testing.T) {
	// 2x2 platform at 1 GB/s. Only ingress 0 / egress 0 have any demand,
	// so B^scaled excludes the idle points entirely.
	net := topology.Uniform(2, 2, 1*units.GBps)
	reqs := request.MustNewSet([]request.Request{
		{ID: 0, Ingress: 0, Egress: 0, Start: 0, Finish: 100, Volume: 40 * units.GB, MaxRate: 400 * units.MBps},
	})
	out := outcomeWith(t, net, reqs, map[request.ID]units.Bandwidth{0: 400 * units.MBps})
	m := Evaluate(out, 0)
	// Demand at ingress 0 = egress 0 = 400 MB/s; scaled capacity =
	// min(1G, 400M)·2 = 800 MB/s; util = 400 / (0.5·800) = 1.0.
	if !units.ApproxEq(m.ResourceUtil, 1.0) {
		t.Errorf("ResourceUtil = %v, want 1 (idle points excluded)", m.ResourceUtil)
	}
	// Against raw capacity it would be 400M / 2G = 0.2 — the scaling is
	// what makes the metric meaningful (§2.2).
}

func TestResourceUtilWithoutScalingEffect(t *testing.T) {
	net := topology.Uniform(1, 1, 1*units.GBps)
	reqs := request.MustNewSet([]request.Request{
		{ID: 0, Start: 0, Finish: 100, Volume: 100 * units.GB, MaxRate: 2 * units.GBps},  // MinRate 1 GB/s
		{ID: 1, Start: 0, Finish: 100, Volume: 50 * units.GB, MaxRate: 500 * units.MBps}, // rejected
	})
	// Demand 1.5 GB/s per side > 1 GB/s capacity, so scaled = raw capacity.
	out := outcomeWith(t, net, reqs, map[request.ID]units.Bandwidth{0: 1 * units.GBps})
	m := Evaluate(out, 0)
	if !units.ApproxEq(m.ResourceUtil, 1.0) {
		t.Errorf("ResourceUtil = %v", m.ResourceUtil)
	}
}

func TestTimeUtil(t *testing.T) {
	net := topology.Uniform(1, 1, 1*units.GBps)
	reqs := request.MustNewSet([]request.Request{
		{ID: 0, Start: 0, Finish: 100, Volume: 50 * units.GB, MaxRate: 500 * units.MBps},
	})
	out := outcomeWith(t, net, reqs, map[request.ID]units.Bandwidth{0: 500 * units.MBps})
	m := Evaluate(out, 0)
	// Span 100 s, half capacity 1 GB/s: 50 GB / 100 GB = 0.5.
	if !units.ApproxEq(m.TimeUtil, 0.5) {
		t.Errorf("TimeUtil = %v", m.TimeUtil)
	}
}

func TestScaledTimeUtil(t *testing.T) {
	net := topology.Uniform(1, 1, 1*units.GBps)
	// Two back-to-back rigid 500 MB/s requests over disjoint 100 s
	// windows; accept only the first.
	reqs := request.MustNewSet([]request.Request{
		{ID: 0, Start: 0, Finish: 100, Volume: 50 * units.GB, MaxRate: 500 * units.MBps},
		{ID: 1, Start: 100, Finish: 200, Volume: 50 * units.GB, MaxRate: 500 * units.MBps},
	})
	out := outcomeWith(t, net, reqs, map[request.ID]units.Bandwidth{0: 500 * units.MBps})
	m := Evaluate(out, 0)
	// Demand profile at each point: 500 MB/s over [0,200) -> capped
	// integral 100 GB per point, 200 GB total, halved = 100 GB.
	// Moved volume = 50 GB -> 0.5.
	if !units.ApproxEq(m.ScaledTimeUtil, 0.5) {
		t.Errorf("ScaledTimeUtil = %v, want 0.5", m.ScaledTimeUtil)
	}

	// Accepting both gives exactly 1.0 — the metric is bounded for rigid
	// workloads.
	out2 := outcomeWith(t, net, reqs, map[request.ID]units.Bandwidth{
		0: 500 * units.MBps,
		1: 500 * units.MBps,
	})
	if got := Evaluate(out2, 0).ScaledTimeUtil; !units.ApproxEq(got, 1.0) {
		t.Errorf("full acceptance ScaledTimeUtil = %v, want 1", got)
	}
}

func TestScaledTimeUtilCapsOverDemand(t *testing.T) {
	net := topology.Uniform(1, 1, 1*units.GBps)
	// Three 500 MB/s requests over the same window: demand 1.5 GB/s is
	// capped at 1 GB/s in the denominator, so accepting two (the maximum
	// feasible) yields utilization 1.
	reqs := request.MustNewSet([]request.Request{
		{ID: 0, Start: 0, Finish: 100, Volume: 50 * units.GB, MaxRate: 500 * units.MBps},
		{ID: 1, Start: 0, Finish: 100, Volume: 50 * units.GB, MaxRate: 500 * units.MBps},
		{ID: 2, Start: 0, Finish: 100, Volume: 50 * units.GB, MaxRate: 500 * units.MBps},
	})
	out := outcomeWith(t, net, reqs, map[request.ID]units.Bandwidth{
		0: 500 * units.MBps,
		1: 500 * units.MBps,
	})
	if got := Evaluate(out, 0).ScaledTimeUtil; !units.ApproxEq(got, 1.0) {
		t.Errorf("ScaledTimeUtil = %v, want 1 (demand capped at capacity)", got)
	}
}

func TestMeanStretch(t *testing.T) {
	net := topology.Uniform(1, 1, 1*units.GBps)
	reqs := request.MustNewSet([]request.Request{
		{ID: 0, Start: 0, Finish: 1000, Volume: 100 * units.GB, MaxRate: 1 * units.GBps},
	})
	// Granted at 500 MB/s: duration 200 s vs minimal 100 s → stretch 2.
	out := outcomeWith(t, net, reqs, map[request.ID]units.Bandwidth{0: 500 * units.MBps})
	m := Evaluate(out, 0)
	if !units.ApproxEq(m.MeanStretch, 2.0) {
		t.Errorf("MeanStretch = %v", m.MeanStretch)
	}
}

func TestMetricsBoundsProperty(t *testing.T) {
	cfg := workload.Default(workload.Flexible)
	cfg.Horizon = 250
	f := func(seed int64) bool {
		reqs, err := cfg.Generate(seed)
		if err != nil {
			return false
		}
		out, err := flexible.Greedy{Policy: policy.FractionMaxRate(0.8)}.Schedule(cfg.Network(), reqs)
		if err != nil {
			return false
		}
		m := Evaluate(out, 0.8)
		inUnit := func(x float64) bool { return x >= 0 && x <= 1+1e-9 }
		if !inUnit(m.AcceptRate) || !inUnit(m.GuaranteedRate) {
			return false
		}
		if m.GuaranteedRate > m.AcceptRate+1e-9 {
			return false // guaranteed requests are accepted requests
		}
		if m.ResourceUtil < 0 || m.TimeUtil < 0 || m.ScaledTimeUtil < 0 {
			return false
		}
		if m.Accepted > 0 && m.MeanStretch < 1-1e-9 {
			return false // nobody beats MaxRate
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestSampleStats(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Std() != 0 || s.CI95() != 0 || s.N() != 0 {
		t.Error("empty sample not zeroed")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 || math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v", s.Mean())
	}
	if math.Abs(s.Std()-2.13808993529939) > 1e-9 {
		t.Errorf("std = %v", s.Std())
	}
	wantCI := 1.96 * s.Std() / math.Sqrt(8)
	if math.Abs(s.CI95()-wantCI) > 1e-12 {
		t.Errorf("ci = %v", s.CI95())
	}
	if !strings.Contains(s.String(), "±") {
		t.Errorf("String = %q", s.String())
	}
}

func TestAggregate(t *testing.T) {
	var a Aggregate
	a.Add(Metrics{AcceptRate: 0.5, ResourceUtil: 0.6, TimeUtil: 0.3, GuaranteedRate: 0.4, MeanStretch: 1.5})
	a.Add(Metrics{AcceptRate: 0.7, ResourceUtil: 0.8, TimeUtil: 0.5, GuaranteedRate: 0.6, MeanStretch: 2.5})
	if !units.ApproxEq(a.AcceptRate.Mean(), 0.6) {
		t.Errorf("accept mean = %v", a.AcceptRate.Mean())
	}
	if !units.ApproxEq(a.MeanStretch.Mean(), 2.0) {
		t.Errorf("stretch mean = %v", a.MeanStretch.Mean())
	}
	if a.AcceptRate.N() != 2 {
		t.Error("sample size")
	}
}

func TestEvaluateFilteredWarmup(t *testing.T) {
	net := topology.Uniform(1, 1, 1*units.GBps)
	reqs := request.MustNewSet([]request.Request{
		{ID: 0, Start: 0, Finish: 100, Volume: 50 * units.GB, MaxRate: 500 * units.MBps},
		{ID: 1, Start: 200, Finish: 300, Volume: 50 * units.GB, MaxRate: 500 * units.MBps},
		{ID: 2, Start: 250, Finish: 350, Volume: 50 * units.GB, MaxRate: 500 * units.MBps},
	})
	// Accept 0 and 1; reject 2.
	out := outcomeWith(t, net, reqs, map[request.ID]units.Bandwidth{
		0: 500 * units.MBps,
		1: 500 * units.MBps,
	})

	all := Evaluate(out, 0)
	if all.Requests != 3 || !units.ApproxEq(all.AcceptRate, 2.0/3.0) {
		t.Fatalf("unfiltered = %+v", all)
	}

	// Warm-up cutoff at 150 drops request 0 entirely.
	warm := EvaluateFiltered(out, 0, Warmup(150))
	if warm.Requests != 2 || warm.Accepted != 1 {
		t.Fatalf("filtered = %+v", warm)
	}
	if !units.ApproxEq(warm.AcceptRate, 0.5) {
		t.Errorf("filtered accept rate = %v", warm.AcceptRate)
	}

	// A filter matching nothing yields the zero value.
	none := EvaluateFiltered(out, 0, Warmup(1e9))
	if none != (Metrics{}) {
		t.Errorf("empty filter metrics = %+v", none)
	}
}

func TestEvaluateFilteredConsistentWithNil(t *testing.T) {
	net := topology.Uniform(1, 1, 1*units.GBps)
	reqs := request.MustNewSet([]request.Request{
		{ID: 0, Start: 0, Finish: 100, Volume: 50 * units.GB, MaxRate: 500 * units.MBps},
	})
	out := outcomeWith(t, net, reqs, map[request.ID]units.Bandwidth{0: 500 * units.MBps})
	a := Evaluate(out, 0.5)
	b := EvaluateFiltered(out, 0.5, func(request.Request) bool { return true })
	if a != b {
		t.Errorf("always-true filter differs: %+v vs %+v", a, b)
	}
}
