package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketRoundTrip proves every value lands in a bucket whose
// bounds contain it and whose width stays within the advertised ~6%
// relative error.
func TestHistogramBucketRoundTrip(t *testing.T) {
	vals := []int64{0, 1, 15, 16, 17, 31, 32, 33, 100, 999, 1 << 20, 1<<20 + 7,
		int64(time.Millisecond), int64(time.Second), int64(time.Hour), math.MaxInt64}
	for _, v := range vals {
		i := bucketIndex(v)
		lo, hi := bucketBounds(i)
		if v < lo || v > hi {
			t.Errorf("value %d landed in bucket %d [%d,%d]", v, i, lo, hi)
		}
		if v >= 16 && float64(hi-lo) > float64(v)/8 {
			t.Errorf("bucket %d [%d,%d] too wide for %d", i, lo, hi, v)
		}
	}
	// Buckets tile the axis without gaps or overlaps.
	prev := int64(-1)
	for i := 0; i < histBuckets; i++ {
		lo, hi := bucketBounds(i)
		if lo != prev+1 {
			t.Fatalf("bucket %d starts at %d, want %d", i, lo, prev+1)
		}
		if hi < lo {
			t.Fatalf("bucket %d inverted [%d,%d]", i, lo, hi)
		}
		prev = hi
	}
	if prev != math.MaxInt64 {
		t.Fatalf("buckets end at %d, want MaxInt64", prev)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.99) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram should answer zeros")
	}
	// 1..1000 ms uniformly: p50 ≈ 500ms, p99 ≈ 990ms within bucket error.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	check := func(q, wantMs float64) {
		got := float64(h.Quantile(q)) / float64(time.Millisecond)
		if math.Abs(got-wantMs) > wantMs*0.10 {
			t.Errorf("q%g = %.1fms, want ≈ %.1fms", q, got, wantMs)
		}
	}
	check(0.50, 500)
	check(0.90, 900)
	check(0.99, 990)
	if h.Max() != time.Second {
		t.Errorf("max = %v", h.Max())
	}
	if mean := h.Mean(); mean < 480*time.Millisecond || mean > 520*time.Millisecond {
		t.Errorf("mean = %v", mean)
	}
	if h.Quantile(1) > h.Max() {
		t.Errorf("q1 %v exceeds max %v", h.Quantile(1), h.Max())
	}
	s := h.Summary()
	if s.Count != 1000 || s.P999Ms < s.P50Ms || s.MaxMs != 1000 {
		t.Errorf("summary %+v inconsistent", s)
	}
	if v, ok := s.QuantileMs("p99"); !ok || v != s.P99Ms {
		t.Errorf("QuantileMs(p99) = %v, %v", v, ok)
	}
	if _, ok := s.QuantileMs("p42"); ok {
		t.Error("QuantileMs accepted unknown percentile")
	}
}

func TestHistogramCumulativeLE(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if got := h.CumulativeLE(time.Second); got != 100 {
		t.Errorf("CumulativeLE(1s) = %d, want 100", got)
	}
	got := h.CumulativeLE(50 * time.Millisecond)
	if got < 40 || got > 50 {
		t.Errorf("CumulativeLE(50ms) = %d, want ≈ 50 (undercount ≤ one bucket)", got)
	}
	if h.CumulativeLE(0) != 0 {
		t.Errorf("CumulativeLE(0) = %d", h.CumulativeLE(0))
	}
}

// TestHistogramConcurrent drives parallel recorders against a reader; the
// race detector is the real assertion.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Record(time.Duration(g*1000+i) * time.Microsecond)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = h.Quantile(0.99)
			_ = h.Summary()
		}
	}()
	wg.Wait()
	<-done
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
}

func TestOnlineAdmitLatencyLazyInit(t *testing.T) {
	var o Online
	if s := o.AdmitLatencySummary(); s.Count != 0 {
		t.Fatalf("zero Online reported %+v", s)
	}
	o.RecordAdmitLatency(3 * time.Millisecond)
	o.RecordAdmitLatency(5 * time.Millisecond)
	s := o.AdmitLatencySummary()
	if s.Count != 2 || s.MaxMs < 4 {
		t.Fatalf("summary %+v after two records", s)
	}
	// A snapshot-restored Online loses the pointer; recording heals it.
	restored := o
	restored.AdmitLatency = nil
	restored.RecordAdmitLatency(time.Millisecond)
	if restored.AdmitLatencySummary().Count != 1 {
		t.Fatal("restored Online did not re-create its histogram")
	}
}
