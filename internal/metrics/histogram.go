package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is an HDR-style latency histogram shared by the daemon's
// admission path and the gridbwload harness: power-of-two octaves split
// into 16 linear sub-buckets, so every recorded duration lands in a
// bucket whose width is at most 1/16 of its magnitude (≲6% relative
// error), with no per-record allocation. Values are nanoseconds; the
// first 16 buckets are exact, the top bucket absorbs everything beyond
// ~106 days. All operations are atomic — concurrent virtual users record
// into one histogram while a Prometheus scrape reads it — so a Histogram
// must be shared by pointer, never copied.
type Histogram struct {
	count   atomic.Uint64
	sumNs   atomic.Int64
	maxNs   atomic.Int64
	buckets [histBuckets]atomic.Uint64
}

const (
	histSubBits = 4
	histSub     = 1 << histSubBits // linear sub-buckets per octave
	// 63 significant bits, 4 of them sub-bucket resolution: blocks 1..59
	// after the 16 exact unit buckets.
	histBuckets = (63-histSubBits)*histSub + histSub
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return new(Histogram) }

// bucketIndex maps a nanosecond value to its bucket. Negative values
// clamp to zero.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < histSub {
		return int(u)
	}
	exp := bits.Len64(u) - 1 // >= histSubBits
	sub := (u >> uint(exp-histSubBits)) & (histSub - 1)
	return (exp-histSubBits)*histSub + histSub + int(sub)
}

// bucketBounds reports the closed value range [lo, hi] of bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i < histSub {
		return int64(i), int64(i)
	}
	block := i>>histSubBits - 1 // 0-based octave past the unit range
	sub := int64(i & (histSub - 1))
	width := int64(1) << uint(block)
	lo = (histSub + sub) << uint(block)
	return lo, lo + width - 1
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sumNs.Add(ns)
	for {
		cur := h.maxNs.Load()
		if ns <= cur || h.maxNs.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Count reports how many observations were recorded.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reports the total of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNs.Load()) }

// Max reports the largest observation, 0 when empty.
func (h *Histogram) Max() time.Duration { return time.Duration(h.maxNs.Load()) }

// Mean reports the average observation, 0 when empty.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNs.Load() / int64(n))
}

// Quantile reports the q-quantile (q in [0,1]) with linear interpolation
// inside the landing bucket, clamped to the recorded maximum. A
// concurrent reader sees a slightly stale but internally consistent-enough
// view: buckets only grow.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			lo, hi := bucketBounds(i)
			// Position of the ranked observation within this bucket.
			frac := float64(rank-(cum-c)) / float64(c)
			v := int64(float64(lo) + frac*float64(hi-lo))
			if max := h.maxNs.Load(); v > max {
				v = max
			}
			return time.Duration(v)
		}
	}
	return h.Max()
}

// CumulativeLE reports how many observations fell in buckets whose upper
// bound does not exceed d — the cumulative count a Prometheus histogram
// bucket (le=d) wants. The straddling bucket is excluded, so the answer
// undercounts by at most one bucket's population.
func (h *Histogram) CumulativeLE(d time.Duration) uint64 {
	ns := d.Nanoseconds()
	var cum uint64
	for i := range h.buckets {
		_, hi := bucketBounds(i)
		if hi > ns {
			break
		}
		cum += h.buckets[i].Load()
	}
	return cum
}

// LatencySummary is the JSON-friendly digest of a Histogram: the
// percentile ladder the harness and the daemon both report, in
// milliseconds so dashboards and gates read naturally.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Summary digests the histogram into the percentile ladder.
func (h *Histogram) Summary() LatencySummary {
	return LatencySummary{
		Count:  h.Count(),
		MeanMs: ms(h.Mean()),
		P50Ms:  ms(h.Quantile(0.50)),
		P90Ms:  ms(h.Quantile(0.90)),
		P95Ms:  ms(h.Quantile(0.95)),
		P99Ms:  ms(h.Quantile(0.99)),
		P999Ms: ms(h.Quantile(0.999)),
		MaxMs:  ms(h.Max()),
	}
}

// QuantileMs reports the named summary percentile ("p50" … "p999") in
// milliseconds; ok is false for an unknown name.
func (s LatencySummary) QuantileMs(name string) (float64, bool) {
	switch name {
	case "p50":
		return s.P50Ms, true
	case "p90":
		return s.P90Ms, true
	case "p95":
		return s.P95Ms, true
	case "p99":
		return s.P99Ms, true
	case "p999":
		return s.P999Ms, true
	}
	return 0, false
}
