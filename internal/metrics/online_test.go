package metrics

import (
	"encoding/json"
	"testing"

	"gridbw/internal/units"
)

func TestOnlineCounters(t *testing.T) {
	var o Online
	if o.AcceptRate() != 0 || o.MeanGrantedRate() != 0 {
		t.Error("zero-value Online reports non-zero rates")
	}
	o.RecordAccept(600*units.MBps, 50*units.GB)
	o.RecordAccept(200*units.MBps, 10*units.GB)
	o.RecordReject()
	o.RecordCancel()
	o.RecordExpire()
	if o.Submitted != 3 || o.Accepted != 2 || o.Rejected != 1 {
		t.Errorf("counters = %+v", o)
	}
	if o.Cancelled != 1 || o.Expired != 1 {
		t.Errorf("lifecycle counters = %+v", o)
	}
	if got, want := o.AcceptRate(), 2.0/3.0; !units.ApproxEq(got, want) {
		t.Errorf("AcceptRate = %v, want %v", got, want)
	}
	if got := o.MeanGrantedRate(); got != 400*units.MBps {
		t.Errorf("MeanGrantedRate = %v, want 400MB/s", got)
	}
	if o.GrantedVolume != 60*units.GB {
		t.Errorf("GrantedVolume = %v, want 60GB", o.GrantedVolume)
	}
	o.RecordBatch(3)
	o.RecordBatch(1)
	if o.Batches != 2 || o.BatchRequests != 4 {
		t.Errorf("batch counters = %d/%d, want 2/4", o.Batches, o.BatchRequests)
	}
}

func TestOnlineJSONRoundTrip(t *testing.T) {
	var o Online
	o.RecordAccept(1*units.GBps, 100*units.GB)
	o.RecordReject()
	blob, err := json.Marshal(&o)
	if err != nil {
		t.Fatal(err)
	}
	var back Online
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back != o {
		t.Errorf("round-trip = %+v, want %+v", back, o)
	}
}
