package core

import (
	"strings"
	"testing"

	"gridbw/internal/request"
	"gridbw/internal/units"
	"gridbw/internal/workload"
)

func newSys(t *testing.T, pol string) *System {
	t.Helper()
	sys, err := NewSystem(Config{
		Ingress: []units.Bandwidth{1 * units.GBps, 1 * units.GBps},
		Egress:  []units.Bandwidth{1 * units.GBps, 1 * units.GBps},
		Policy:  pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(Config{}); err == nil {
		t.Error("empty platform accepted")
	}
	if _, err := NewSystem(Config{
		Ingress: []units.Bandwidth{1}, Egress: []units.Bandwidth{1}, Policy: "bogus",
	}); err == nil {
		t.Error("bogus policy accepted")
	}
	sys := newSys(t, "") // default policy
	if sys.Network().NumIngress() != 2 {
		t.Error("network not built")
	}
}

func TestSubmitLifecycle(t *testing.T) {
	sys := newSys(t, "f=1")
	d, err := sys.Submit(Transfer{From: 0, To: 1, Volume: 100 * units.GB, Deadline: 1000, MaxRate: 1 * units.GBps})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accepted {
		t.Fatalf("rejected: %s", d.Reason)
	}
	if d.Rate != 1*units.GBps || d.Start != 0 || !units.ApproxEq(float64(d.Finish), 100) {
		t.Errorf("decision = %+v", d)
	}
	if got := sys.UtilizationIn(0); !units.ApproxEq(got, 1.0) {
		t.Errorf("ingress 0 util = %v", got)
	}
	if got := sys.UtilizationOut(1); !units.ApproxEq(got, 1.0) {
		t.Errorf("egress 1 util = %v", got)
	}

	// Same pair is saturated.
	d2, err := sys.Submit(Transfer{From: 0, To: 0, Volume: 10 * units.GB, Deadline: 1000, MaxRate: 500 * units.MBps})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Accepted {
		t.Error("over-capacity transfer accepted")
	}
	if !strings.Contains(d2.Reason, "capacity") {
		t.Errorf("reason = %q", d2.Reason)
	}

	// Other pair is free.
	d3, err := sys.Submit(Transfer{From: 1, To: 0, Volume: 10 * units.GB, Deadline: 1000, MaxRate: 500 * units.MBps})
	if err != nil {
		t.Fatal(err)
	}
	if !d3.Accepted {
		t.Errorf("independent pair rejected: %s", d3.Reason)
	}

	// After the first transfer finishes, capacity returns.
	if err := sys.AdvanceTo(150); err != nil {
		t.Fatal(err)
	}
	if got := sys.UtilizationIn(0); got != 0 {
		t.Errorf("ingress 0 util after release = %v", got)
	}
	d4, err := sys.Submit(Transfer{From: 0, To: 1, Volume: 10 * units.GB, Deadline: 1000, MaxRate: 1 * units.GBps})
	if err != nil {
		t.Fatal(err)
	}
	if !d4.Accepted {
		t.Errorf("post-release transfer rejected: %s", d4.Reason)
	}

	sub, acc, rate := sys.Stats()
	if sub != 4 || acc != 3 || !units.ApproxEq(rate, 0.75) {
		t.Errorf("stats = %d, %d, %v", sub, acc, rate)
	}
}

func TestSubmitValidation(t *testing.T) {
	sys := newSys(t, "minbw")
	if _, err := sys.Submit(Transfer{From: 5, To: 0, Volume: 1, Deadline: 10, MaxRate: 1}); err == nil {
		t.Error("bad ingress accepted")
	}
	if _, err := sys.Submit(Transfer{From: 0, To: 5, Volume: 1, Deadline: 10, MaxRate: 1}); err == nil {
		t.Error("bad egress accepted")
	}
	if _, err := sys.Submit(Transfer{From: 0, To: 0, Volume: 0, Deadline: 10, MaxRate: 1}); err == nil {
		t.Error("zero volume accepted")
	}
	// Deadline in the past relative to the clock.
	if err := sys.AdvanceTo(100); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Submit(Transfer{From: 0, To: 0, Volume: 1 * units.GB, Deadline: 50, MaxRate: 1 * units.GBps}); err == nil {
		t.Error("past deadline accepted")
	}
}

func TestSubmitInfeasibleDeadlineRejectedNotError(t *testing.T) {
	sys := newSys(t, "minbw")
	// 100 GB in 10 s at 1 GB/s cap: infeasible → validation error (MinRate
	// above MaxRate), reported as an error by Validate.
	if _, err := sys.Submit(Transfer{From: 0, To: 0, Volume: 100 * units.GB, Deadline: 10, MaxRate: 1 * units.GBps}); err == nil {
		t.Error("infeasible request accepted")
	}
}

func TestAdvanceToBackwards(t *testing.T) {
	sys := newSys(t, "minbw")
	if err := sys.AdvanceTo(10); err != nil {
		t.Fatal(err)
	}
	if err := sys.AdvanceTo(5); err == nil {
		t.Error("clock moved backwards")
	}
	if sys.Now() != 10 {
		t.Errorf("Now = %v", sys.Now())
	}
}

func TestParsePolicy(t *testing.T) {
	for _, name := range []string{"minbw", "minbw-strict", "f=0", "f=0.8", "f=1"} {
		if _, err := ParsePolicy(name); err != nil {
			t.Errorf("ParsePolicy(%q): %v", name, err)
		}
	}
	for _, name := range []string{"", "f=2", "f=-1", "f=x", "maxbw"} {
		if _, err := ParsePolicy(name); err == nil {
			t.Errorf("ParsePolicy(%q) succeeded", name)
		}
	}
}

func TestNewScheduler(t *testing.T) {
	for _, spec := range SchedulerSpecs() {
		s, err := NewScheduler(spec)
		if err != nil {
			t.Errorf("NewScheduler(%q): %v", spec, err)
			continue
		}
		if s.Name() == "" {
			t.Errorf("scheduler %q has empty name", spec)
		}
	}
	for _, spec := range []string{"", "greedy", "greedy:bogus", "window", "window:400", "window:-5:minbw", "window:x:minbw", "magic"} {
		if _, err := NewScheduler(spec); err == nil {
			t.Errorf("NewScheduler(%q) succeeded", spec)
		}
	}
}

func TestBatchSchedulersRunEndToEnd(t *testing.T) {
	rigidCfg := workload.Default(workload.Rigid)
	rigidCfg.Horizon = 150
	rigidSet, err := rigidCfg.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	flexCfg := workload.Default(workload.Flexible)
	flexCfg.Horizon = 150
	flexSet, err := flexCfg.Generate(1)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		spec string
		set  *request.Set
		cfg  workload.Config
	}{
		{"fcfs", rigidSet, rigidCfg},
		{"cumulated-slots", rigidSet, rigidCfg},
		{"minbw-slots", rigidSet, rigidCfg},
		{"minvol-slots", rigidSet, rigidCfg},
		{"greedy:minbw", flexSet, flexCfg},
		{"greedy:f=0.8", flexSet, flexCfg},
		{"window:100:f=1", flexSet, flexCfg},
	} {
		s, err := NewScheduler(tc.spec)
		if err != nil {
			t.Fatalf("%s: %v", tc.spec, err)
		}
		out, err := s.Schedule(tc.cfg.Network(), tc.set)
		if err != nil {
			t.Fatalf("%s: %v", tc.spec, err)
		}
		if err := out.Verify(); err != nil {
			t.Errorf("%s: infeasible outcome: %v", tc.spec, err)
		}
	}
}
