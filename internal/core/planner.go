package core

import (
	"fmt"
	"sort"

	"gridbw/internal/alloc"
	"gridbw/internal/request"
	"gridbw/internal/topology"
	"gridbw/internal/units"
)

// Planner is the book-ahead (advance-reservation) service: unlike System,
// which decides against instantaneous occupancy, the Planner keeps full
// time profiles of every access point (alloc.Ledger) and can reserve
// transfers that start in the future — the "book-ahead periods" studied
// by the related work the paper compares against (§6, Burchard et al.).
//
// Given a transfer whose window [NotBefore, Deadline] may lie entirely in
// the future, Reserve finds the earliest feasible start within the window
// at the policy's rate and commits the reservation on both points.
type Planner struct {
	net    *topology.Network
	pol    policyAssign
	ledger *alloc.Ledger
	now    units.Time
	nextID request.ID
	booked map[request.ID]request.Request

	submitted, accepted int
}

// policyAssign is the minimal policy surface the planner needs; satisfied
// by policy.Policy.
type policyAssign interface {
	Name() string
	Assign(r request.Request, start units.Time) (units.Bandwidth, error)
}

// AdvanceTransfer is a transfer request that may start in the future.
type AdvanceTransfer struct {
	// From and To are ingress and egress point indices.
	From, To int
	Volume   units.Volume
	// NotBefore is the earliest admissible start (>= the planner clock).
	NotBefore units.Time
	// Deadline is the absolute instant by which the transfer must finish.
	Deadline units.Time
	// MaxRate is the host transmission cap.
	MaxRate units.Bandwidth
}

// Reservation is the planner's answer.
type Reservation struct {
	Accepted bool
	ID       request.ID
	Rate     units.Bandwidth
	Start    units.Time
	Finish   units.Time
	Reason   string
}

// NewPlanner builds a book-ahead service over the configured platform.
func NewPlanner(cfg Config) (*Planner, error) {
	net, err := topology.New(topology.Config{Ingress: cfg.Ingress, Egress: cfg.Egress})
	if err != nil {
		return nil, err
	}
	name := cfg.Policy
	if name == "" {
		name = "minbw"
	}
	pol, err := ParsePolicy(name)
	if err != nil {
		return nil, err
	}
	return &Planner{
		net: net, pol: pol,
		ledger: alloc.NewLedger(net),
		booked: make(map[request.ID]request.Request),
	}, nil
}

// Now reports the planner clock.
func (p *Planner) Now() units.Time { return p.now }

// AdvanceTo moves the clock forward. The ledger is time-indexed, so no
// bookkeeping is needed; the clock only forbids reserving in the past.
func (p *Planner) AdvanceTo(t units.Time) error {
	if t < p.now {
		return fmt.Errorf("core: clock cannot move from %v back to %v", p.now, t)
	}
	p.now = t
	return nil
}

// Stats reports lifetime counters.
func (p *Planner) Stats() (submitted, accepted int, rate float64) {
	if p.submitted > 0 {
		rate = float64(p.accepted) / float64(p.submitted)
	}
	return p.submitted, p.accepted, rate
}

// Reserve books the transfer at the earliest feasible start within its
// window, or rejects. The reservation holds a constant rate on both
// access points from the chosen start until the computed finish.
func (p *Planner) Reserve(tr AdvanceTransfer) (Reservation, error) {
	if tr.From < 0 || tr.From >= p.net.NumIngress() {
		return Reservation{}, fmt.Errorf("core: ingress %d out of range [0,%d)", tr.From, p.net.NumIngress())
	}
	if tr.To < 0 || tr.To >= p.net.NumEgress() {
		return Reservation{}, fmt.Errorf("core: egress %d out of range [0,%d)", tr.To, p.net.NumEgress())
	}
	notBefore := tr.NotBefore
	if notBefore < p.now {
		notBefore = p.now
	}
	r := request.Request{
		ID:      p.nextID,
		Ingress: topology.PointID(tr.From),
		Egress:  topology.PointID(tr.To),
		Start:   notBefore,
		Finish:  tr.Deadline,
		Volume:  tr.Volume,
		MaxRate: tr.MaxRate,
	}
	if err := r.Validate(); err != nil {
		return Reservation{}, fmt.Errorf("core: %w", err)
	}
	p.nextID++
	p.submitted++

	res, ok := p.tryReserve(r)
	if ok {
		p.accepted++
	}
	return res, nil
}

// tryReserve searches candidate starts: the window opening plus every
// usage breakpoint of the two involved profiles inside the feasible
// range. Free capacity is piecewise constant, so this candidate set
// contains the earliest feasible start if any exists.
func (p *Planner) tryReserve(r request.Request) (Reservation, bool) {
	// Latest start that can still meet the deadline even at MaxRate.
	latest := r.Finish - r.Volume.Over(r.MaxRate)
	if latest < r.Start {
		return Reservation{Reason: "window shorter than minimal transfer time"}, false
	}
	in := p.ledger.Ingress(r.Ingress)
	eg := p.ledger.Egress(r.Egress)

	candidates := []units.Time{r.Start}
	candidates = append(candidates, in.BreakpointTimes(r.Start, latest)...)
	candidates = append(candidates, eg.BreakpointTimes(r.Start, latest)...)
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })

	var lastReason string
	for i, sigma := range candidates {
		if i > 0 && sigma == candidates[i-1] {
			continue
		}
		bw, err := p.pol.Assign(r, sigma)
		if err != nil {
			lastReason = "policy: " + err.Error()
			continue
		}
		g, err := request.NewGrant(r, sigma, bw)
		if err != nil {
			lastReason = "grant: " + err.Error()
			continue
		}
		if !p.ledger.Fits(r, g) {
			lastReason = "capacity"
			continue
		}
		if err := p.ledger.Reserve(r, g); err != nil {
			lastReason = "capacity: " + err.Error()
			continue
		}
		p.booked[r.ID] = r
		return Reservation{
			Accepted: true, ID: r.ID,
			Rate: g.Bandwidth, Start: g.Sigma, Finish: g.Tau,
		}, true
	}
	if lastReason == "" {
		lastReason = "no feasible start in window"
	}
	return Reservation{ID: r.ID, Reason: lastReason}, false
}

// Cancel releases a previously accepted reservation, freeing its window
// on both points. Cancelling an unknown or already-cancelled ID is an
// error. A reservation may be cancelled even after its start — the grid
// job it served may have been aborted — releasing the remaining window.
func (p *Planner) Cancel(id request.ID) error {
	r, ok := p.booked[id]
	if !ok {
		return fmt.Errorf("core: no reservation %d", id)
	}
	p.ledger.Revoke(r)
	delete(p.booked, id)
	p.accepted--
	return nil
}

// Lookup reports the committed grant of a reservation, if any.
func (p *Planner) Lookup(id request.ID) (request.Grant, bool) {
	return p.ledger.Grant(id)
}

// UtilizationIn reports the time-max utilization of ingress i over
// [from, to).
func (p *Planner) UtilizationIn(i int, from, to units.Time) float64 {
	prof := p.ledger.Ingress(topology.PointID(i))
	if prof.Capacity() == 0 {
		return 0
	}
	return float64(prof.MaxUsedIn(from, to)) / float64(prof.Capacity())
}
