package core_test

import (
	"fmt"
	"log"

	"gridbw/internal/core"
	"gridbw/internal/units"
)

// ExampleSystem_Submit shows the on-line reservation service: build the
// platform, submit a transfer, watch capacity come back after release.
func ExampleSystem_Submit() {
	sys, err := core.NewSystem(core.Config{
		Ingress: []units.Bandwidth{1 * units.GBps},
		Egress:  []units.Bandwidth{1 * units.GBps},
		Policy:  "f=1",
	})
	if err != nil {
		log.Fatal(err)
	}
	d, err := sys.Submit(core.Transfer{
		From: 0, To: 0,
		Volume:   100 * units.GB,
		Deadline: 1000,
		MaxRate:  1 * units.GBps,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accepted=%v rate=%v finish=%v\n", d.Accepted, d.Rate, d.Finish)

	// The point is saturated until t=100.
	d2, _ := sys.Submit(core.Transfer{
		From: 0, To: 0, Volume: 10 * units.GB, Deadline: 1000, MaxRate: 500 * units.MBps,
	})
	fmt.Printf("during transfer: accepted=%v\n", d2.Accepted)

	if err := sys.AdvanceTo(100); err != nil {
		log.Fatal(err)
	}
	d3, _ := sys.Submit(core.Transfer{
		From: 0, To: 0, Volume: 10 * units.GB, Deadline: 1000, MaxRate: 500 * units.MBps,
	})
	fmt.Printf("after release: accepted=%v\n", d3.Accepted)
	// Output:
	// accepted=true rate=1GB/s finish=1m40s
	// during transfer: accepted=false
	// after release: accepted=true
}

// ExampleNewScheduler resolves a batch heuristic by spec string — the
// paper's WINDOW heuristic (Algorithm 3) with a 400-second interval and
// the f=1 bandwidth policy.
func ExampleNewScheduler() {
	s, err := core.NewScheduler("window:400:f=1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(s.Name())
	// Output:
	// window(6m40s)/f=1
}

// ExamplePlanner_Reserve books a transfer hours ahead of its window.
func ExamplePlanner_Reserve() {
	pl, err := core.NewPlanner(core.Config{
		Ingress: []units.Bandwidth{1 * units.GBps},
		Egress:  []units.Bandwidth{1 * units.GBps},
		Policy:  "f=1",
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := pl.Reserve(core.AdvanceTransfer{
		From: 0, To: 0,
		Volume:    1 * units.TB,
		NotBefore: 22 * units.Hour,
		Deadline:  30 * units.Hour,
		MaxRate:   1 * units.GBps,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accepted=%v start=%v finish=%v\n", res.Accepted, res.Start, res.Finish)
	// Output:
	// accepted=true start=22h finish=22h16m40s
}
