// Package core is the public facade of the gridbw library: the paper's
// bandwidth-sharing service in a form a grid middleware would embed.
//
// Two usage styles are supported:
//
//   - On-line service (System): build the overlay platform once, then
//     submit transfer requests as they arrive; each submission is decided
//     immediately against the live occupancy, exactly like the §5 GREEDY
//     admission (the WINDOW batching and the §5.4 control-plane timing
//     live in internal/sched/flexible and internal/overlay and are reached
//     through the batch API).
//
//   - Batch scheduling: hand a complete request set to any heuristic by
//     name ("fcfs", "cumulated-slots", "minbw-slots", "minvol-slots",
//     "greedy:<policy>", "window:<step>:<policy>") and get the full
//     decision record back.
//
// Policies are named "minbw", "minbw-strict" or "f=<x>" (e.g. "f=0.8").
package core

import (
	"container/heap"
	"fmt"
	"strconv"
	"strings"

	"gridbw/internal/alloc"
	"gridbw/internal/policy"
	"gridbw/internal/request"
	"gridbw/internal/sched"
	"gridbw/internal/sched/flexible"
	"gridbw/internal/sched/rigid"
	"gridbw/internal/topology"
	"gridbw/internal/units"
)

// Config describes the platform for a System.
type Config struct {
	// Ingress and Egress list the access-point capacities.
	Ingress, Egress []units.Bandwidth
	// Policy names the bandwidth-assignment policy for accepted
	// transfers; defaults to "minbw".
	Policy string
}

// Transfer is an on-line transfer request as a middleware client sees it.
type Transfer struct {
	// From and To are ingress and egress point indices.
	From, To int
	// Volume is the data to move.
	Volume units.Volume
	// Deadline is the absolute instant by which the transfer must finish.
	Deadline units.Time
	// MaxRate is the host transmission cap.
	MaxRate units.Bandwidth
}

// Decision is the service's answer to a Transfer.
type Decision struct {
	Accepted bool
	// Rate, Start and Finish describe the granted reservation.
	Rate   units.Bandwidth
	Start  units.Time
	Finish units.Time
	// Reason explains a rejection.
	Reason string
}

// System is the on-line bandwidth-sharing service.
type System struct {
	net      *topology.Network
	pol      policy.Policy
	counters *alloc.Counters
	done     releaseHeap
	now      units.Time
	nextID   request.ID

	submitted, accepted int
}

type release struct {
	at units.Time
	bw units.Bandwidth
	in topology.PointID
	eg topology.PointID
}

type releaseHeap []release

func (h releaseHeap) Len() int           { return len(h) }
func (h releaseHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h releaseHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *releaseHeap) Push(x any)        { *h = append(*h, x.(release)) }
func (h *releaseHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// NewSystem validates the configuration and builds a service with the
// clock at 0.
func NewSystem(cfg Config) (*System, error) {
	net, err := topology.New(topology.Config{Ingress: cfg.Ingress, Egress: cfg.Egress})
	if err != nil {
		return nil, err
	}
	name := cfg.Policy
	if name == "" {
		name = "minbw"
	}
	pol, err := ParsePolicy(name)
	if err != nil {
		return nil, err
	}
	return &System{net: net, pol: pol, counters: alloc.NewCounters(net)}, nil
}

// Now reports the service clock.
func (s *System) Now() units.Time { return s.now }

// Network reports the platform.
func (s *System) Network() *topology.Network { return s.net }

// AdvanceTo moves the clock forward, releasing finished reservations on
// the way. Moving backwards is an error.
func (s *System) AdvanceTo(t units.Time) error {
	if t < s.now {
		return fmt.Errorf("core: clock cannot move from %v back to %v", s.now, t)
	}
	s.now = t
	for len(s.done) > 0 && s.done[0].at <= s.now {
		r := heap.Pop(&s.done).(release)
		s.counters.ReleasePair(r.in, r.eg, r.bw)
	}
	return nil
}

// Submit decides a transfer at the current clock. An accepted transfer
// reserves bandwidth at both endpoints until its computed finish time.
func (s *System) Submit(tr Transfer) (Decision, error) {
	if tr.From < 0 || tr.From >= s.net.NumIngress() {
		return Decision{}, fmt.Errorf("core: ingress %d out of range [0,%d)", tr.From, s.net.NumIngress())
	}
	if tr.To < 0 || tr.To >= s.net.NumEgress() {
		return Decision{}, fmt.Errorf("core: egress %d out of range [0,%d)", tr.To, s.net.NumEgress())
	}
	r := request.Request{
		ID:      s.nextID,
		Ingress: topology.PointID(tr.From),
		Egress:  topology.PointID(tr.To),
		Start:   s.now,
		Finish:  tr.Deadline,
		Volume:  tr.Volume,
		MaxRate: tr.MaxRate,
	}
	if err := r.Validate(); err != nil {
		return Decision{}, fmt.Errorf("core: %w", err)
	}
	s.nextID++
	s.submitted++

	bw, err := s.pol.Assign(r, s.now)
	if err != nil {
		return Decision{Reason: "policy: " + err.Error()}, nil
	}
	g, err := request.NewGrant(r, s.now, bw)
	if err != nil {
		return Decision{Reason: "grant: " + err.Error()}, nil
	}
	if err := s.counters.Acquire(r.Ingress, r.Egress, bw); err != nil {
		return Decision{Reason: "capacity: " + err.Error()}, nil
	}
	heap.Push(&s.done, release{at: g.Tau, bw: bw, in: r.Ingress, eg: r.Egress})
	s.accepted++
	return Decision{Accepted: true, Rate: bw, Start: g.Sigma, Finish: g.Tau}, nil
}

// Stats reports lifetime counters: submissions, acceptances and the
// current accept rate.
func (s *System) Stats() (submitted, accepted int, rate float64) {
	if s.submitted > 0 {
		rate = float64(s.accepted) / float64(s.submitted)
	}
	return s.submitted, s.accepted, rate
}

// UtilizationIn and UtilizationOut report instantaneous point loads.
func (s *System) UtilizationIn(i int) float64 {
	return s.counters.UtilizationIn(topology.PointID(i))
}

// UtilizationOut reports the instantaneous load of egress point e.
func (s *System) UtilizationOut(e int) float64 {
	return s.counters.UtilizationOut(topology.PointID(e))
}

// ParsePolicy resolves a policy name: "minbw", "minbw-strict", or "f=<x>"
// with x in [0,1].
func ParsePolicy(name string) (policy.Policy, error) {
	switch {
	case name == "minbw":
		return policy.MinRate(), nil
	case name == "minbw-strict":
		return policy.StrictRequestedMinRate(), nil
	case strings.HasPrefix(name, "f="):
		f, err := strconv.ParseFloat(strings.TrimPrefix(name, "f="), 64)
		if err != nil || f < 0 || f > 1 {
			return nil, fmt.Errorf("core: bad tuning factor in policy %q", name)
		}
		return policy.FractionMaxRate(f), nil
	default:
		return nil, fmt.Errorf("core: unknown policy %q (want minbw, minbw-strict, or f=<x>)", name)
	}
}

// NewScheduler resolves a batch scheduler spec:
//
//	"fcfs" | "cumulated-slots" | "minbw-slots" | "minvol-slots"   (rigid, §4)
//	"greedy:<policy>"                                             (flexible, §5.1)
//	"window:<step-seconds>:<policy>"                              (flexible, §5.2)
func NewScheduler(spec string) (sched.Scheduler, error) {
	parts := strings.Split(spec, ":")
	switch parts[0] {
	case "fcfs":
		return rigid.FCFS{}, nil
	case "cumulated-slots":
		return rigid.CumulatedSlots(), nil
	case "minbw-slots":
		return rigid.MinBWSlots(), nil
	case "minvol-slots":
		return rigid.MinVolSlots(), nil
	case "greedy":
		if len(parts) != 2 {
			return nil, fmt.Errorf("core: greedy spec needs a policy, e.g. %q", "greedy:minbw")
		}
		p, err := ParsePolicy(parts[1])
		if err != nil {
			return nil, err
		}
		return flexible.Greedy{Policy: p}, nil
	case "window", "window-retry":
		if len(parts) != 3 {
			return nil, fmt.Errorf("core: %s spec is %q", parts[0], parts[0]+":<step>:<policy>")
		}
		step, err := units.ParseTime(parts[1])
		if err != nil || step <= 0 {
			return nil, fmt.Errorf("core: bad window step %q", parts[1])
		}
		p, err := ParsePolicy(parts[2])
		if err != nil {
			return nil, err
		}
		if parts[0] == "window-retry" {
			return flexible.WindowRetry{Policy: p, Step: step}, nil
		}
		return flexible.Window{Policy: p, Step: step}, nil
	default:
		return nil, fmt.Errorf("core: unknown scheduler %q", spec)
	}
}

// SchedulerSpecs lists example specs for help text.
func SchedulerSpecs() []string {
	return []string{
		"fcfs", "cumulated-slots", "minbw-slots", "minvol-slots",
		"greedy:minbw", "greedy:f=0.8", "window:400:f=1", "window:100:minbw",
		"window-retry:400:f=1",
	}
}
