package core

import (
	"strings"
	"testing"
	"testing/quick"

	"gridbw/internal/rng"
	"gridbw/internal/units"
)

func newPlanner(t *testing.T, pol string) *Planner {
	t.Helper()
	p, err := NewPlanner(Config{
		Ingress: []units.Bandwidth{1 * units.GBps, 1 * units.GBps},
		Egress:  []units.Bandwidth{1 * units.GBps, 1 * units.GBps},
		Policy:  pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlannerBooksInFuture(t *testing.T) {
	p := newPlanner(t, "f=1")
	res, err := p.Reserve(AdvanceTransfer{
		From: 0, To: 1, Volume: 100 * units.GB,
		NotBefore: 1 * units.Hour, Deadline: 2 * units.Hour,
		MaxRate: 1 * units.GBps,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("rejected: %s", res.Reason)
	}
	if res.Start != 1*units.Hour {
		t.Errorf("start = %v, want the window opening", res.Start)
	}
	if !units.ApproxEq(float64(res.Finish), float64(1*units.Hour+100)) {
		t.Errorf("finish = %v", res.Finish)
	}
	// The present is untouched; the future hour is fully booked.
	if u := p.UtilizationIn(0, 0, 30*units.Minute); u != 0 {
		t.Errorf("present utilization = %v", u)
	}
	if u := p.UtilizationIn(0, 1*units.Hour, 1*units.Hour+50); !units.ApproxEq(u, 1) {
		t.Errorf("booked utilization = %v", u)
	}
}

func TestPlannerFindsGapAfterExistingBooking(t *testing.T) {
	p := newPlanner(t, "f=1")
	// Fill [0, 100) on the (0,0) pair.
	first, err := p.Reserve(AdvanceTransfer{
		From: 0, To: 0, Volume: 100 * units.GB, NotBefore: 0, Deadline: 100,
		MaxRate: 1 * units.GBps,
	})
	if err != nil || !first.Accepted {
		t.Fatalf("first booking failed: %+v, %v", first, err)
	}
	// Second full-rate transfer with a wide window: must start at the
	// release breakpoint t=100, not be rejected.
	second, err := p.Reserve(AdvanceTransfer{
		From: 0, To: 0, Volume: 50 * units.GB, NotBefore: 0, Deadline: 500,
		MaxRate: 1 * units.GBps,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Accepted {
		t.Fatalf("rejected: %s", second.Reason)
	}
	if second.Start != 100 {
		t.Errorf("start = %v, want 100 (the earliest free instant)", second.Start)
	}
}

func TestPlannerRespectsLatestStart(t *testing.T) {
	p := newPlanner(t, "f=1")
	// Saturate [0, 100).
	if res, err := p.Reserve(AdvanceTransfer{
		From: 0, To: 0, Volume: 100 * units.GB, NotBefore: 0, Deadline: 100,
		MaxRate: 1 * units.GBps,
	}); err != nil || !res.Accepted {
		t.Fatal("setup failed")
	}
	// This transfer needs 50 s at full rate but must finish by 120: the
	// only free start is 100, leaving 20 s — infeasible.
	res, err := p.Reserve(AdvanceTransfer{
		From: 0, To: 0, Volume: 50 * units.GB, NotBefore: 0, Deadline: 120,
		MaxRate: 1 * units.GBps,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Errorf("accepted infeasible booking: %+v", res)
	}
}

func TestPlannerMinRatePolicyStretchesIntoWindow(t *testing.T) {
	p := newPlanner(t, "minbw")
	res, err := p.Reserve(AdvanceTransfer{
		From: 0, To: 0, Volume: 100 * units.GB, NotBefore: 0, Deadline: 1000,
		MaxRate: 1 * units.GBps,
	})
	if err != nil || !res.Accepted {
		t.Fatalf("booking failed: %+v, %v", res, err)
	}
	if !units.ApproxEq(float64(res.Rate), float64(100*units.MBps)) {
		t.Errorf("rate = %v, want the 100MB/s floor", res.Rate)
	}
	if !units.ApproxEq(float64(res.Finish), 1000) {
		t.Errorf("finish = %v, want the deadline", res.Finish)
	}
}

func TestPlannerCancelFreesWindow(t *testing.T) {
	p := newPlanner(t, "f=1")
	res, err := p.Reserve(AdvanceTransfer{
		From: 0, To: 0, Volume: 100 * units.GB, NotBefore: 0, Deadline: 100,
		MaxRate: 1 * units.GBps,
	})
	if err != nil || !res.Accepted {
		t.Fatal("setup failed")
	}
	if _, ok := p.Lookup(res.ID); !ok {
		t.Fatal("grant not recorded")
	}
	if err := p.Cancel(res.ID); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Lookup(res.ID); ok {
		t.Error("grant survives cancellation")
	}
	if err := p.Cancel(res.ID); err == nil {
		t.Error("double cancel accepted")
	}
	// The window is reusable.
	again, err := p.Reserve(AdvanceTransfer{
		From: 0, To: 0, Volume: 100 * units.GB, NotBefore: 0, Deadline: 100,
		MaxRate: 1 * units.GBps,
	})
	if err != nil || !again.Accepted {
		t.Errorf("rebooking after cancel failed: %+v, %v", again, err)
	}
	_, acc, _ := p.Stats()
	if acc != 1 {
		t.Errorf("accepted counter = %d after cancel+rebook", acc)
	}
}

func TestPlannerClockForbidsPast(t *testing.T) {
	p := newPlanner(t, "f=1")
	if err := p.AdvanceTo(500); err != nil {
		t.Fatal(err)
	}
	if err := p.AdvanceTo(400); err == nil {
		t.Error("clock moved backwards")
	}
	// A NotBefore in the past is clamped to the clock.
	res, err := p.Reserve(AdvanceTransfer{
		From: 0, To: 0, Volume: 10 * units.GB, NotBefore: 0, Deadline: 1000,
		MaxRate: 1 * units.GBps,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted || res.Start < 500 {
		t.Errorf("reservation started in the past: %+v", res)
	}
}

func TestPlannerValidation(t *testing.T) {
	p := newPlanner(t, "f=1")
	if _, err := p.Reserve(AdvanceTransfer{From: 9, To: 0, Volume: 1, Deadline: 10, MaxRate: 1}); err == nil {
		t.Error("bad ingress accepted")
	}
	if _, err := p.Reserve(AdvanceTransfer{From: 0, To: 9, Volume: 1, Deadline: 10, MaxRate: 1}); err == nil {
		t.Error("bad egress accepted")
	}
	if _, err := p.Reserve(AdvanceTransfer{From: 0, To: 0, Volume: 0, Deadline: 10, MaxRate: 1}); err == nil {
		t.Error("zero volume accepted")
	}
	if _, err := NewPlanner(Config{}); err == nil {
		t.Error("empty platform accepted")
	}
	if _, err := NewPlanner(Config{
		Ingress: []units.Bandwidth{1}, Egress: []units.Bandwidth{1}, Policy: "bogus",
	}); err == nil {
		t.Error("bogus policy accepted")
	}
}

// TestPlannerNeverOverbooks: random advance reservations and
// cancellations keep every profile within capacity.
func TestPlannerNeverOverbooks(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		p, err := NewPlanner(Config{
			Ingress: []units.Bandwidth{1 * units.GBps, 1 * units.GBps},
			Egress:  []units.Bandwidth{1 * units.GBps, 1 * units.GBps},
			Policy:  "f=1",
		})
		if err != nil {
			return false
		}
		var live []Reservation
		for step := 0; step < 100; step++ {
			if len(live) > 0 && src.Bool(0.2) {
				k := src.Intn(len(live))
				if p.Cancel(live[k].ID) != nil {
					return false
				}
				live = append(live[:k], live[k+1:]...)
				continue
			}
			nb := units.Time(src.Intn(500))
			dur := units.Time(src.Intn(200) + 10)
			rate := units.Bandwidth(src.Intn(900)+100) * units.MBps
			res, err := p.Reserve(AdvanceTransfer{
				From: src.Intn(2), To: src.Intn(2),
				Volume:    rate.For(dur),
				NotBefore: nb,
				Deadline:  nb + dur*units.Time(src.Uniform(1, 3)),
				MaxRate:   rate,
			})
			if err != nil {
				return false
			}
			if res.Accepted {
				live = append(live, res)
			}
		}
		return p.ledger.CheckInvariant() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPlannerRejectReasonPopulated(t *testing.T) {
	p := newPlanner(t, "f=1")
	if res, err := p.Reserve(AdvanceTransfer{
		From: 0, To: 0, Volume: 100 * units.GB, NotBefore: 0, Deadline: 100,
		MaxRate: 1 * units.GBps,
	}); err != nil || !res.Accepted {
		t.Fatal("setup failed")
	}
	res, err := p.Reserve(AdvanceTransfer{
		From: 0, To: 0, Volume: 100 * units.GB, NotBefore: 0, Deadline: 100,
		MaxRate: 1 * units.GBps,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted || !strings.Contains(res.Reason, "capacity") {
		t.Errorf("res = %+v", res)
	}
}
