package chaosnet

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// startEcho runs a line-echo TCP server and returns its address.
func startEcho(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				sc := bufio.NewScanner(c)
				for sc.Scan() {
					fmt.Fprintf(c, "%s\n", sc.Text())
				}
			}(c)
		}
	}()
	return ln.Addr().String()
}

func dialLine(t *testing.T, addr, line string, timeout time.Duration) (string, error) {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return "", err
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(timeout))
	if _, err := fmt.Fprintf(c, "%s\n", line); err != nil {
		return "", err
	}
	r := bufio.NewReader(c)
	s, err := r.ReadString('\n')
	return strings.TrimSpace(s), err
}

func TestTransparentForwarding(t *testing.T) {
	echo := startEcho(t)
	p, err := New("t", "127.0.0.1:0", echo, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()

	got, err := dialLine(t, p.Addr(), "hello", 2*time.Second)
	if err != nil || got != "hello" {
		t.Fatalf("echo through proxy: got %q, %v", got, err)
	}
	st := p.Stats()
	if st.ConnsAccepted != 1 || st.BytesToTarget == 0 || st.BytesToClient == 0 {
		t.Fatalf("stats not recorded: %+v", st)
	}
}

func TestFullCutBlackholes(t *testing.T) {
	echo := startEcho(t)
	p, err := New("cut", "127.0.0.1:0", echo, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	p.SetRules(Rules{CutToTarget: true, CutToClient: true})

	// The connection opens (partition != refusal) but no byte ever comes
	// back: the read must time out, like a real partition.
	start := time.Now()
	_, err = dialLine(t, p.Addr(), "lost", 300*time.Millisecond)
	if err == nil {
		t.Fatal("expected timeout through a cut link")
	}
	if time.Since(start) < 250*time.Millisecond {
		t.Fatalf("failed too fast (%v): cut should black-hole, not error", time.Since(start))
	}
	if st := p.Stats(); st.BytesDropped == 0 {
		t.Fatalf("no bytes dropped: %+v", st)
	}

	// Lifting the cut heals the link for new traffic.
	p.SetRules(Rules{})
	got, err := dialLine(t, p.Addr(), "healed", 2*time.Second)
	if err != nil || got != "healed" {
		t.Fatalf("after heal: got %q, %v", got, err)
	}
}

func TestAsymmetricCut(t *testing.T) {
	echo := startEcho(t)
	p, err := New("asym", "127.0.0.1:0", echo, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	// Requests reach the target; replies are dropped.
	p.SetRules(Rules{CutToClient: true})

	_, err = dialLine(t, p.Addr(), "oneway", 300*time.Millisecond)
	if err == nil {
		t.Fatal("expected reply to be dropped on asymmetric cut")
	}
	if st := p.Stats(); st.BytesToTarget == 0 || st.BytesDropped == 0 {
		t.Fatalf("asymmetric cut stats: %+v", st)
	}
}

func TestLatencyDelays(t *testing.T) {
	echo := startEcho(t)
	p, err := New("lat", "127.0.0.1:0", echo, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	p.SetRules(Rules{Latency: 120 * time.Millisecond})

	start := time.Now()
	got, err := dialLine(t, p.Addr(), "slow", 3*time.Second)
	if err != nil || got != "slow" {
		t.Fatalf("echo with latency: got %q, %v", got, err)
	}
	// Two pumps (request + reply) each add >= Latency.
	if el := time.Since(start); el < 200*time.Millisecond {
		t.Fatalf("round trip %v, want >= 200ms with 120ms per-direction latency", el)
	}
}

func TestRefuseNewAndReset(t *testing.T) {
	echo := startEcho(t)
	p, err := New("refuse", "127.0.0.1:0", echo, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	p.SetRules(Rules{RefuseNew: true})

	if _, err := dialLine(t, p.Addr(), "nope", 500*time.Millisecond); err == nil {
		t.Fatal("expected refused connection to error")
	}
	if st := p.Stats(); st.ConnsRefused == 0 {
		t.Fatalf("refusal not counted: %+v", st)
	}

	// ResetProb 1.0: every new connection is answered with RST.
	p.SetRules(Rules{ResetProb: 1})
	if _, err := dialLine(t, p.Addr(), "rst", 500*time.Millisecond); err == nil {
		t.Fatal("expected reset connection to error")
	}
	if st := p.Stats(); st.ConnsReset == 0 {
		t.Fatalf("reset not counted: %+v", st)
	}
}

func TestBreakExistingKillsLiveConns(t *testing.T) {
	echo := startEcho(t)
	p, err := New("break", "127.0.0.1:0", echo, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()

	c, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	fmt.Fprintf(c, "ping\n")
	r := bufio.NewReader(c)
	if s, err := r.ReadString('\n'); err != nil || strings.TrimSpace(s) != "ping" {
		t.Fatalf("warmup echo: %q, %v", s, err)
	}

	p.BreakExisting()
	c.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := r.ReadString('\n'); err == nil {
		t.Fatal("connection survived BreakExisting")
	}
}

func TestStallAfterBytes(t *testing.T) {
	echo := startEcho(t)
	p, err := New("stall", "127.0.0.1:0", echo, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer p.Close()
	// Let the request through, stall the reply after its first byte.
	long := strings.Repeat("x", 64)
	p.SetRules(Rules{StallAfterBytes: 1})

	c, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if _, err := fmt.Fprintf(c, "%s\n", long); err != nil {
		t.Fatalf("write: %v", err)
	}
	c.SetDeadline(time.Now().Add(400 * time.Millisecond))
	buf := make([]byte, len(long)+1)
	n := 0
	var rerr error
	for n < len(buf) && rerr == nil {
		var m int
		m, rerr = c.Read(buf[n:])
		n += m
	}
	if rerr == nil {
		t.Fatal("expected the stalled reply to never complete")
	}
	if n >= len(long) {
		t.Fatalf("reply completed (%d bytes) despite stall", n)
	}
	if st := p.Stats(); st.Stalls == 0 {
		t.Fatalf("stall not counted: %+v", st)
	}

	// Lifting the stall lets the parked flow resume.
	p.SetRules(Rules{})
	c.SetDeadline(time.Now().Add(2 * time.Second))
	for n < len(long)+1 {
		m, err := c.Read(buf[n:])
		n += m
		if err != nil {
			break
		}
	}
	if n < len(long) {
		t.Fatalf("flow did not resume after stall lifted: got %d/%d bytes", n, len(long))
	}
}

func TestDeterministicResets(t *testing.T) {
	echo := startEcho(t)
	outcomes := func(seed int64) string {
		p, err := New("det", "127.0.0.1:0", echo, seed)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		defer p.Close()
		p.SetRules(Rules{ResetProb: 0.5})
		var sb strings.Builder
		for i := 0; i < 16; i++ {
			if _, err := dialLine(t, p.Addr(), "coin", time.Second); err != nil {
				sb.WriteByte('R')
			} else {
				sb.WriteByte('.')
			}
		}
		return sb.String()
	}
	a, b := outcomes(42), outcomes(42)
	if a != b {
		t.Fatalf("same seed diverged: %q vs %q", a, b)
	}
	if !strings.Contains(a, "R") || !strings.Contains(a, ".") {
		t.Fatalf("p=0.5 over 16 conns should mix outcomes: %q", a)
	}
}

func TestSetTopology(t *testing.T) {
	echo := startEcho(t)
	s := NewSet()
	defer s.Close()
	a, err := s.Add("a->b", "127.0.0.1:0", echo, 7)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if _, err := s.Add("a->b", "127.0.0.1:0", echo, 7); err == nil {
		t.Fatal("duplicate link accepted")
	}
	if _, err := s.Add("b->a", "127.0.0.1:0", echo, 7); err != nil {
		t.Fatalf("Add second: %v", err)
	}
	got, err := s.Get("a->b")
	if err != nil || got != a {
		t.Fatalf("Get: %v", err)
	}
	if _, err := s.Get("nope"); err == nil {
		t.Fatal("unknown link resolved")
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a->b" || names[1] != "b->a" {
		t.Fatalf("Names order: %v", names)
	}
}
