// Package chaosnet is a TCP-level chaos proxy for the replication
// group's real wire protocol. A Proxy is one directed link: it listens
// on a local address and forwards byte streams to one target, and its
// Rules — swappable atomically mid-run — inject the network's failure
// modes at the transport layer where they actually happen:
//
//   - partitions: full (both directions cut), asymmetric (one direction
//     cut), and partial/bridge topologies built from one Proxy per
//     (src, dst) pair;
//   - added latency and seeded jitter per forwarded chunk;
//   - bandwidth throttling (token-bucket pacing per direction);
//   - connection resets (accept then RST via SO_LINGER 0);
//   - slow-loris stalls (forward N bytes, then hold the connection open
//     forwarding nothing).
//
// Unlike internal/faults' in-simulation injector, chaosnet perturbs real
// sockets carrying real HTTP — the replication pull long-polls, vote
// RPCs, reseed downloads and client submissions all cross it unmodified,
// so what survives a chaosnet schedule survives a real switch failure.
//
// A cut link deliberately black-holes traffic instead of refusing it:
// real partitions manifest as silence and timeouts, not clean errors.
// Use Rules.RefuseNew (connection refused) or Rules.ResetProb (RST) for
// the noisy failure modes.
package chaosnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"gridbw/internal/rng"
)

// Rules is one link's active fault schedule. The zero value forwards
// transparently.
type Rules struct {
	// CutToTarget black-holes bytes flowing from clients to the target;
	// CutToClient black-holes the reverse direction. Setting both is a
	// full partition of this link. Bytes are consumed and dropped, so the
	// sender sees a healthy connection that never answers — exactly what
	// a partition looks like from inside.
	CutToTarget bool `json:"cut_to_target,omitempty"`
	CutToClient bool `json:"cut_to_client,omitempty"`
	// RefuseNew closes new connections immediately (connection refused
	// flavor); established flows continue under the other rules.
	RefuseNew bool `json:"refuse_new,omitempty"`
	// Latency delays every forwarded chunk; Jitter adds a seeded uniform
	// [0, Jitter) on top, drawn per chunk so reordering-adjacent effects
	// (bursts, stragglers) appear.
	Latency time.Duration `json:"latency,omitempty"`
	Jitter  time.Duration `json:"jitter,omitempty"`
	// BandwidthBps paces each direction to this many bytes per second
	// (0 = unlimited).
	BandwidthBps int64 `json:"bandwidth_bps,omitempty"`
	// ResetProb is the seeded probability that a newly accepted
	// connection is answered with an immediate RST.
	ResetProb float64 `json:"reset_prob,omitempty"`
	// StallAfterBytes forwards only this many bytes per direction per
	// connection and then holds the connection open forwarding nothing —
	// the slow-loris read hazard (0 = off).
	StallAfterBytes int64 `json:"stall_after_bytes,omitempty"`
}

// Partitioned reports whether the link is fully cut.
func (r Rules) Partitioned() bool { return r.CutToTarget && r.CutToClient }

// Stats counts what the link did to its traffic.
type Stats struct {
	ConnsAccepted uint64 `json:"conns_accepted"`
	ConnsRefused  uint64 `json:"conns_refused"`
	ConnsReset    uint64 `json:"conns_reset"`
	BytesToTarget uint64 `json:"bytes_to_target"`
	BytesToClient uint64 `json:"bytes_to_client"`
	BytesDropped  uint64 `json:"bytes_dropped"`
	Stalls        uint64 `json:"stalls"`
}

// Proxy is one chaos link. Safe for concurrent use; rules changes apply
// to in-flight connections at their next chunk boundary.
type Proxy struct {
	name   string
	target string
	ln     net.Listener

	mu     sync.Mutex
	rules  Rules
	gen    uint64 // bumped on BreakExisting, outlives rule flips
	conns  map[net.Conn]struct{}
	src    *rng.Source
	stats  Stats
	closed bool
}

// New starts a chaos link named name, listening on listen (host:port,
// ":0" picks a free port) and forwarding to target. The seed fixes every
// probabilistic decision (jitter draws, reset coin flips) so a chaos
// schedule replays deterministically.
func New(name, listen, target string, seed int64) (*Proxy, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("chaosnet: %w", err)
	}
	p := &Proxy{
		name:   name,
		target: target,
		ln:     ln,
		conns:  make(map[net.Conn]struct{}),
		src:    rng.New(seed).Split("chaosnet/" + name),
	}
	go p.serve()
	return p, nil
}

// Name reports the link's name; Addr the address clients dial; Target
// where it forwards.
func (p *Proxy) Name() string   { return p.name }
func (p *Proxy) Addr() string   { return p.ln.Addr().String() }
func (p *Proxy) Target() string { return p.target }

// URL is the link's dialable address as an http base URL.
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// SetRules swaps the active fault schedule. It does not touch
// established connections beyond the new rules applying at their next
// chunk; call BreakExisting to kill them.
func (p *Proxy) SetRules(r Rules) {
	p.mu.Lock()
	p.rules = r
	p.mu.Unlock()
}

// Rules reports the active schedule.
func (p *Proxy) Rules() Rules {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rules
}

// Stats reports the traffic counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// BreakExisting RSTs every established connection on the link — the
// abrupt half of a partition. New connections are still governed by the
// active rules.
func (p *Proxy) BreakExisting() {
	p.mu.Lock()
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.gen++
	p.mu.Unlock()
	for _, c := range conns {
		abort(c)
	}
}

// Close stops the listener and kills every connection.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	err := p.ln.Close()
	for _, c := range conns {
		abort(c)
	}
	return err
}

// abort closes a TCP connection with SO_LINGER 0, so the peer sees RST
// instead of a graceful FIN — what a yanked cable or killed middlebox
// produces.
func abort(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = c.Close()
}

func (p *Proxy) serve() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			c.Close()
			return
		}
		r := p.rules
		reset := r.ResetProb > 0 && p.src.Bool(r.ResetProb)
		switch {
		case r.RefuseNew:
			p.stats.ConnsRefused++
			p.mu.Unlock()
			abort(c)
			continue
		case reset:
			p.stats.ConnsReset++
			p.mu.Unlock()
			abort(c)
			continue
		}
		p.stats.ConnsAccepted++
		p.conns[c] = struct{}{}
		gen := p.gen
		p.mu.Unlock()
		go p.handle(c, gen)
	}
}

// jitterDraw draws this chunk's added latency under the seeded source.
func (p *Proxy) jitterDraw(r Rules) time.Duration {
	d := r.Latency
	if r.Jitter > 0 {
		p.mu.Lock()
		d += time.Duration(p.src.Uniform(0, float64(r.Jitter)))
		p.mu.Unlock()
	}
	return d
}

func (p *Proxy) handle(client net.Conn, gen uint64) {
	defer func() {
		p.mu.Lock()
		delete(p.conns, client)
		p.mu.Unlock()
		client.Close()
	}()
	upstream, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		abort(client)
		return
	}
	p.mu.Lock()
	dead := p.closed || gen != p.gen
	if !dead {
		p.conns[upstream] = struct{}{}
	}
	p.mu.Unlock()
	if dead {
		upstream.Close()
		abort(client)
		return
	}
	defer func() {
		p.mu.Lock()
		delete(p.conns, upstream)
		p.mu.Unlock()
		upstream.Close()
	}()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		p.pump(client, upstream, true)
		// Request side done (EOF or fault): half-close toward the target
		// so it sees the end of the request stream.
		if tc, ok := upstream.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
	}()
	go func() {
		defer wg.Done()
		p.pump(upstream, client, false)
		if tc, ok := client.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
	}()
	wg.Wait()
}

// pump forwards one direction chunk by chunk, re-reading the rules at
// every boundary so mid-run flips (a partition arriving, a stall
// lifting) take effect on live flows.
func (p *Proxy) pump(src, dst net.Conn, toTarget bool) {
	buf := make([]byte, 32<<10)
	var forwarded int64
	for {
		n, rerr := src.Read(buf)
		if n > 0 {
			r := p.Rules()
			cut := r.CutToClient
			if toTarget {
				cut = r.CutToTarget
			}
			switch {
			case cut:
				// Partition: consume and drop. The sender keeps a healthy-
				// looking socket that never answers.
				p.mu.Lock()
				p.stats.BytesDropped += uint64(n)
				p.mu.Unlock()
			case r.StallAfterBytes > 0 && forwarded+int64(n) > r.StallAfterBytes:
				// Slow-loris: forward exactly up to the byte budget, then the
				// flow stops progressing. Park until the connection dies under
				// us (peer timeout, BreakExisting or Close) or the stall rule
				// is lifted, then release the held remainder.
				head := r.StallAfterBytes - forwarded
				if head < 0 {
					head = 0
				}
				if head > 0 {
					if err := p.forward(dst, buf[:head], toTarget, &forwarded); err != nil {
						return
					}
				}
				p.mu.Lock()
				p.stats.Stalls++
				p.mu.Unlock()
				if !p.parkWhileStalled(src, dst) {
					return
				}
				if err := p.forward(dst, buf[head:n], toTarget, &forwarded); err != nil {
					return
				}
			default:
				if d := p.jitterDraw(r); d > 0 {
					time.Sleep(d)
				}
				if r.BandwidthBps > 0 {
					time.Sleep(time.Duration(float64(n) / float64(r.BandwidthBps) * float64(time.Second)))
				}
				if err := p.forward(dst, buf[:n], toTarget, &forwarded); err != nil {
					return
				}
			}
		}
		if rerr != nil {
			return
		}
	}
}

// parkWhileStalled blocks while the stall rule holds; it reports whether
// the flow may resume (rules changed) rather than die (link closed).
func (p *Proxy) parkWhileStalled(src, dst net.Conn) bool {
	for {
		time.Sleep(10 * time.Millisecond)
		p.mu.Lock()
		closed := p.closed
		_, srcLive := p.conns[src]
		_, dstLive := p.conns[dst]
		r := p.rules
		p.mu.Unlock()
		if closed || !srcLive || !dstLive {
			return false
		}
		if r.StallAfterBytes <= 0 {
			return true
		}
	}
}

func (p *Proxy) forward(dst net.Conn, b []byte, toTarget bool, forwarded *int64) error {
	n, err := dst.Write(b)
	p.mu.Lock()
	if toTarget {
		p.stats.BytesToTarget += uint64(n)
	} else {
		p.stats.BytesToClient += uint64(n)
	}
	p.mu.Unlock()
	*forwarded += int64(n)
	return err
}

// ErrUnknownLink reports an admin operation on a link name the set does
// not hold.
var ErrUnknownLink = errors.New("chaosnet: unknown link")

// Set is a named collection of links — the full chaos topology of one
// experiment (one link per (src, dst) pair expresses partial and bridge
// partitions).
type Set struct {
	mu    sync.Mutex
	links map[string]*Proxy
	order []string
}

// NewSet returns an empty topology.
func NewSet() *Set { return &Set{links: make(map[string]*Proxy)} }

// Add starts a link and registers it under its name.
func (s *Set) Add(name, listen, target string, seed int64) (*Proxy, error) {
	p, err := New(name, listen, target, seed)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if _, dup := s.links[name]; dup {
		s.mu.Unlock()
		p.Close()
		return nil, fmt.Errorf("chaosnet: duplicate link %q", name)
	}
	s.links[name] = p
	s.order = append(s.order, name)
	s.mu.Unlock()
	return p, nil
}

// Get resolves a link by name.
func (s *Set) Get(name string) (*Proxy, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.links[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownLink, name)
	}
	return p, nil
}

// Names lists the links in registration order.
func (s *Set) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...)
}

// Close stops every link.
func (s *Set) Close() {
	s.mu.Lock()
	links := make([]*Proxy, 0, len(s.links))
	for _, p := range s.links {
		links = append(links, p)
	}
	s.mu.Unlock()
	for _, p := range links {
		p.Close()
	}
}
