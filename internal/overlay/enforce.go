package overlay

import (
	"fmt"
	"sort"

	"gridbw/internal/request"
	"gridbw/internal/tokenbucket"
	"gridbw/internal/units"
)

// FlowConformance is the data-plane outcome of one accepted reservation.
type FlowConformance struct {
	Request request.ID
	// Offered is what the sender tried to push, Delivered what passed the
	// token bucket.
	Offered, Delivered units.Volume
	// DropEvents counts rejected bursts; zero for a compliant sender.
	DropEvents int
	// Cheated is the sender's overshoot fraction (0 = compliant).
	Cheated float64
}

// EnforcementReport aggregates the data-plane simulation of a control-
// plane run.
type EnforcementReport struct {
	Flows []FlowConformance
	// CompliantDelivery and CheaterDelivery are volume-weighted delivery
	// ratios for the two sender populations (1 when the population is
	// empty and compliant, 0 ratio reported as 1 for no cheaters).
	CompliantDelivery, CheaterDelivery float64
	// TotalDropEvents across all flows.
	TotalDropEvents int
}

// Enforce runs the §5.4 data plane over every accepted reservation of a
// control-plane report: each sender transmits for its granted window
// through a token bucket sized at its granted rate with a one-second
// burst. cheat maps request IDs to an overshoot fraction (0.5 = sends at
// 150% of the grant); absent IDs send compliantly. chunk is the
// transmission burst size (e.g. 10 MB).
//
// The invariant this enforces — and the report lets callers check — is
// the paper's: whatever senders do, the traffic entering the core from a
// reservation never exceeds its granted rate (plus one burst), so
// misbehaving flows cannot hurt the other reservations.
func Enforce(rep *Report, cheat map[request.ID]float64, chunk units.Volume) (*EnforcementReport, error) {
	if chunk <= 0 {
		return nil, fmt.Errorf("overlay: non-positive chunk %v", chunk)
	}
	for id, over := range cheat {
		if over < 0 {
			return nil, fmt.Errorf("overlay: negative cheat fraction for request %d", id)
		}
	}
	out := &EnforcementReport{}
	var compOffered, compDelivered, cheatOffered, cheatDelivered units.Volume

	// Deterministic order.
	resvs := append([]Reservation{}, rep.Reservations...)
	sort.Slice(resvs, func(i, j int) bool { return resvs[i].Request < resvs[j].Request })
	for _, r := range resvs {
		if !r.Accepted {
			continue
		}
		over := cheat[r.Request]
		granted := r.Grant.Bandwidth
		burst := granted.For(1 * units.Second)
		dur := r.Grant.Duration()
		if dur <= 0 {
			continue
		}
		offeredRate := units.Bandwidth(float64(granted) * (1 + over))
		ch := chunk
		if ch > burst {
			ch = burst // a single burst must be sendable
		}
		sh, err := tokenbucket.Shape(tokenbucket.NewBucket(granted, burst, r.Grant.Sigma),
			r.Grant.Sigma, dur, offeredRate, ch)
		if err != nil {
			return nil, err
		}
		fc := FlowConformance{
			Request: r.Request,
			Offered: sh.Offered, Delivered: sh.Delivered,
			DropEvents: sh.DropEvents, Cheated: over,
		}
		out.Flows = append(out.Flows, fc)
		out.TotalDropEvents += sh.DropEvents
		if over > 0 {
			cheatOffered += sh.Offered
			cheatDelivered += sh.Delivered
		} else {
			compOffered += sh.Offered
			compDelivered += sh.Delivered
		}
	}
	out.CompliantDelivery = ratio(compDelivered, compOffered)
	out.CheaterDelivery = ratio(cheatDelivered, cheatOffered)
	return out, nil
}

func ratio(num, den units.Volume) float64 {
	if den == 0 {
		return 1
	}
	return float64(num) / float64(den)
}
