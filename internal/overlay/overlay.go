// Package overlay simulates the §5.4 control plane: a lightweight
// RSVP-like reservation protocol running on the fully-meshed grid overlay.
//
// A client submits its transfer request to its local ingress access
// router; the router consults the egress access router implied by the
// request (one overlay round trip), takes the admission decision locally,
// and returns the scheduled window and allocated rate to the client. The
// decision logic is the on-line admission of §5 (instantaneous occupancy
// plus a bandwidth policy); what this package adds is the message-level
// timing, so the control-plane overhead — reservation round-trip versus
// transfer duration — can be quantified (Table T5 of DESIGN.md).
package overlay

import (
	"container/heap"
	"fmt"
	"sort"

	"gridbw/internal/alloc"
	"gridbw/internal/des"
	"gridbw/internal/policy"
	"gridbw/internal/request"
	"gridbw/internal/sched"
	"gridbw/internal/topology"
	"gridbw/internal/units"
)

// Config describes the control plane.
type Config struct {
	// ClientRouterDelay is the one-way latency between a client and its
	// access router.
	ClientRouterDelay units.Time
	// RouterRouterDelay is the one-way latency between overlay routers.
	RouterRouterDelay units.Time
	// Policy assigns bandwidth to admitted requests; required.
	Policy policy.Policy
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Policy == nil {
		return fmt.Errorf("overlay: config needs a policy")
	}
	if c.ClientRouterDelay < 0 || c.RouterRouterDelay < 0 {
		return fmt.Errorf("overlay: negative delays")
	}
	return nil
}

// Reservation records the control-plane trace of one request.
type Reservation struct {
	Request request.ID
	// SubmittedAt is ts(r), when the client issued the reservation.
	SubmittedAt units.Time
	// DecidedAt is when the ingress router took the decision.
	DecidedAt units.Time
	// RepliedAt is when the client learned the outcome.
	RepliedAt units.Time
	// Accepted and Grant mirror the scheduling decision.
	Accepted bool
	Grant    request.Grant
	Reason   string
}

// RTT reports the client-observed reservation round trip.
func (r Reservation) RTT() units.Time { return r.RepliedAt - r.SubmittedAt }

// Report is the outcome of a control-plane run.
type Report struct {
	Reservations []Reservation // in request-ID order
	Outcome      *sched.Outcome
	// EventsFired is the number of simulator events (control messages and
	// releases) processed.
	EventsFired uint64
}

// AcceptRate reports the fraction of accepted reservations.
func (rep *Report) AcceptRate() float64 {
	if len(rep.Reservations) == 0 {
		return 0
	}
	n := 0
	for _, r := range rep.Reservations {
		if r.Accepted {
			n++
		}
	}
	return float64(n) / float64(len(rep.Reservations))
}

// MeanRTT reports the mean reservation round trip.
func (rep *Report) MeanRTT() units.Time {
	if len(rep.Reservations) == 0 {
		return 0
	}
	var sum units.Time
	for _, r := range rep.Reservations {
		sum += r.RTT()
	}
	return sum / units.Time(len(rep.Reservations))
}

// MeanOverheadRatio reports the mean of RTT / transfer duration across
// accepted reservations — the §5.4 claim is that this is negligible for
// bulk transfers.
func (rep *Report) MeanOverheadRatio() float64 {
	var sum float64
	n := 0
	for _, r := range rep.Reservations {
		if r.Accepted && r.Grant.Duration() > 0 {
			sum += float64(r.RTT()) / float64(r.Grant.Duration())
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

type completion struct {
	tau units.Time
	bw  units.Bandwidth
	in  topology.PointID
	eg  topology.PointID
}

type completionHeap []completion

func (h completionHeap) Len() int           { return len(h) }
func (h completionHeap) Less(i, j int) bool { return h[i].tau < h[j].tau }
func (h completionHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x any)        { *h = append(*h, x.(completion)) }
func (h *completionHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Run simulates the reservation protocol for every request in reqs.
// Each request is submitted at its ts(r); the admission decision lands at
// ts(r) + ClientRouterDelay + 2·RouterRouterDelay, and the grant's σ is
// that decision instant (the ingress router cannot start a transfer it has
// not yet admitted).
func Run(net *topology.Network, reqs *request.Set, cfg Config) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sim := des.New()
	counters := alloc.NewCounters(net)
	var done completionHeap
	out := sched.NewOutcome("overlay/"+cfg.Policy.Name(), net, reqs)
	resv := make([]Reservation, reqs.Len())

	decide := func(sim *des.Simulator, r request.Request) {
		now := sim.Now()
		rec := &resv[int(r.ID)]
		rec.DecidedAt = now
		// Release transfers finished by now before admitting.
		for len(done) > 0 && done[0].tau <= now {
			c := heap.Pop(&done).(completion)
			counters.ReleasePair(c.in, c.eg, c.bw)
		}
		bw, err := cfg.Policy.Assign(r, now)
		if err != nil {
			rec.Reason = "policy: " + err.Error()
			out.Reject(r.ID, rec.Reason)
			return
		}
		g, err := request.NewGrant(r, now, bw)
		if err != nil {
			rec.Reason = "grant: " + err.Error()
			out.Reject(r.ID, rec.Reason)
			return
		}
		if err := counters.Acquire(r.Ingress, r.Egress, bw); err != nil {
			rec.Reason = "capacity: " + err.Error()
			out.Reject(r.ID, rec.Reason)
			return
		}
		heap.Push(&done, completion{tau: g.Tau, bw: bw, in: r.Ingress, eg: r.Egress})
		rec.Accepted = true
		rec.Grant = g
		out.Accept(g)
	}

	// Decision order at equal instants must match arrival order with the
	// paper's MinRate tie-break, so sort before scheduling: des fires
	// same-time events FIFO in scheduling order.
	order := reqs.All()
	sort.SliceStable(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if am, bm := a.MinRate(), b.MinRate(); am != bm {
			return am < bm
		}
		return a.ID < b.ID
	})
	for _, r := range order {
		r := r
		resv[int(r.ID)] = Reservation{Request: r.ID, SubmittedAt: r.Start}
		decisionAt := r.Start + cfg.ClientRouterDelay + 2*cfg.RouterRouterDelay
		replyAt := decisionAt + cfg.ClientRouterDelay
		sim.At(decisionAt, func(sim *des.Simulator) { decide(sim, r) })
		sim.At(replyAt, func(sim *des.Simulator) { resv[int(r.ID)].RepliedAt = sim.Now() })
	}
	sim.Run()
	return &Report{Reservations: resv, Outcome: out, EventsFired: sim.Fired()}, nil
}
