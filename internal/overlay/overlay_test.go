package overlay

import (
	"strings"
	"testing"
	"testing/quick"

	"gridbw/internal/policy"
	"gridbw/internal/request"
	"gridbw/internal/sched/flexible"
	"gridbw/internal/topology"
	"gridbw/internal/units"
	"gridbw/internal/workload"
)

func flexReq(id int, in, eg topology.PointID, start units.Time, vol units.Volume, maxRate units.Bandwidth, slack float64) request.Request {
	return request.Request{
		ID: request.ID(id), Ingress: in, Egress: eg,
		Start: start, Finish: start + vol.Over(maxRate)*units.Time(slack),
		Volume: vol, MaxRate: maxRate,
	}
}

func testCfg() Config {
	return Config{
		ClientRouterDelay: 0.005, // 5 ms
		RouterRouterDelay: 0.010, // 10 ms
		Policy:            policy.FractionMaxRate(1),
	}
}

func TestConfigValidate(t *testing.T) {
	if err := testCfg().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testCfg()
	bad.Policy = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil policy accepted")
	}
	bad = testCfg()
	bad.ClientRouterDelay = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative delay accepted")
	}
}

func TestReservationTiming(t *testing.T) {
	net := topology.Uniform(2, 2, 1*units.GBps)
	reqs := request.MustNewSet([]request.Request{
		flexReq(0, 0, 1, 100, 50*units.GB, 500*units.MBps, 3),
	})
	rep, err := Run(net, reqs, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Reservations[0]
	if !r.Accepted {
		t.Fatalf("rejected: %s", r.Reason)
	}
	if !units.ApproxEq(float64(r.DecidedAt), 100.025) {
		t.Errorf("decided at %v, want 100.025", r.DecidedAt)
	}
	if !units.ApproxEq(float64(r.RepliedAt), 100.030) {
		t.Errorf("replied at %v, want 100.030", r.RepliedAt)
	}
	if !units.ApproxEq(float64(r.RTT()), 0.030) {
		t.Errorf("RTT = %v, want 30 ms", r.RTT())
	}
	if r.Grant.Sigma != r.DecidedAt {
		t.Errorf("sigma = %v, want decision instant", r.Grant.Sigma)
	}
	// Overhead: 30 ms over a 100 s transfer.
	if ratio := rep.MeanOverheadRatio(); ratio <= 0 || ratio > 0.001 {
		t.Errorf("overhead ratio = %v", ratio)
	}
}

func TestCapacityAdmission(t *testing.T) {
	net := topology.Uniform(1, 1, 1*units.GBps)
	reqs := request.MustNewSet([]request.Request{
		flexReq(0, 0, 0, 0, 100*units.GB, 700*units.MBps, 3),
		flexReq(1, 0, 0, 1, 100*units.GB, 700*units.MBps, 3),
	})
	rep, err := Run(net, reqs, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Reservations[0].Accepted {
		t.Error("first reservation rejected")
	}
	if rep.Reservations[1].Accepted {
		t.Error("conflicting reservation accepted")
	}
	if !strings.Contains(rep.Reservations[1].Reason, "capacity") {
		t.Errorf("reason = %q", rep.Reservations[1].Reason)
	}
	if rep.AcceptRate() != 0.5 {
		t.Errorf("accept rate = %v", rep.AcceptRate())
	}
	if err := rep.Outcome.Verify(); err != nil {
		t.Error(err)
	}
}

func TestReleaseFreesCapacity(t *testing.T) {
	net := topology.Uniform(1, 1, 1*units.GBps)
	// First transfer at full rate finishes ~t=100; second arrives later.
	reqs := request.MustNewSet([]request.Request{
		flexReq(0, 0, 0, 0, 100*units.GB, 1*units.GBps, 3),
		flexReq(1, 0, 0, 150, 100*units.GB, 1*units.GBps, 3),
	})
	rep, err := Run(net, reqs, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Reservations[0].Accepted || !rep.Reservations[1].Accepted {
		t.Errorf("reservations = %+v", rep.Reservations)
	}
}

func TestZeroDelayDegeneratesToGreedy(t *testing.T) {
	cfg := workload.Default(workload.Flexible)
	cfg.Horizon = 400
	reqs, err := cfg.Generate(9)
	if err != nil {
		t.Fatal(err)
	}
	net := cfg.Network()
	p := policy.FractionMaxRate(1)

	rep, err := Run(net, reqs, Config{Policy: p})
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := flexible.Greedy{Policy: p}.Schedule(net, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome.AcceptedCount() != greedy.AcceptedCount() {
		t.Errorf("overlay(0 delay) accepted %d, greedy %d",
			rep.Outcome.AcceptedCount(), greedy.AcceptedCount())
	}
	for _, d := range greedy.Decisions() {
		od := rep.Outcome.Decision(d.Request)
		if od.Accepted != d.Accepted {
			t.Errorf("request %d: overlay %v, greedy %v", d.Request, od.Accepted, d.Accepted)
		}
	}
}

func TestOutcomesFeasibleProperty(t *testing.T) {
	cfg := workload.Default(workload.Flexible)
	cfg.Horizon = 250
	f := func(seed int64) bool {
		reqs, err := cfg.Generate(seed)
		if err != nil {
			return false
		}
		rep, err := Run(cfg.Network(), reqs, testCfg())
		if err != nil {
			return false
		}
		if rep.Outcome.Verify() != nil {
			return false
		}
		// Every reservation got a reply after its decision.
		for _, r := range rep.Reservations {
			if r.RepliedAt < r.DecidedAt || r.DecidedAt < r.SubmittedAt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestEmptyReport(t *testing.T) {
	net := topology.Uniform(1, 1, 1*units.GBps)
	rep, err := Run(net, request.MustNewSet(nil), testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if rep.AcceptRate() != 0 || rep.MeanRTT() != 0 || rep.MeanOverheadRatio() != 0 {
		t.Error("empty report not zeroed")
	}
}
