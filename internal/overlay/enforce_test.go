package overlay

import (
	"testing"
	"testing/quick"

	"gridbw/internal/policy"
	"gridbw/internal/request"
	"gridbw/internal/units"
	"gridbw/internal/workload"
)

func enforcedRun(t *testing.T, seed int64) *Report {
	t.Helper()
	cfg := workload.Default(workload.Flexible)
	cfg.Horizon = 200
	reqs, err := cfg.Generate(seed)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(cfg.Network(), reqs, Config{
		ClientRouterDelay: 0.005, RouterRouterDelay: 0.01,
		Policy: policy.FractionMaxRate(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestEnforceCompliantDeliversEverything(t *testing.T) {
	rep := enforcedRun(t, 3)
	enf, err := Enforce(rep, nil, 10*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	if len(enf.Flows) == 0 {
		t.Fatal("no accepted flows to enforce")
	}
	if enf.CompliantDelivery != 1 {
		t.Errorf("compliant delivery = %v", enf.CompliantDelivery)
	}
	if enf.TotalDropEvents != 0 {
		t.Errorf("compliant population dropped %d bursts", enf.TotalDropEvents)
	}
	for _, f := range enf.Flows {
		if f.Cheated != 0 || f.Delivered != f.Offered {
			t.Errorf("flow %d: %+v", f.Request, f)
		}
	}
}

func TestEnforceConfinesCheaters(t *testing.T) {
	rep := enforcedRun(t, 5)
	// Make every third accepted flow send at double its grant.
	cheat := map[request.ID]float64{}
	n := 0
	for _, r := range rep.Reservations {
		if r.Accepted {
			if n%3 == 0 {
				cheat[r.Request] = 1.0
			}
			n++
		}
	}
	if len(cheat) == 0 {
		t.Fatal("no cheaters selected")
	}
	enf, err := Enforce(rep, cheat, 10*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	if enf.CompliantDelivery != 1 {
		t.Errorf("compliant delivery = %v", enf.CompliantDelivery)
	}
	if enf.CheaterDelivery > 0.6 {
		t.Errorf("cheater delivery = %v, enforcement too lax", enf.CheaterDelivery)
	}
	if enf.TotalDropEvents == 0 {
		t.Error("no drops recorded for cheating population")
	}
	// Per-flow: delivered never exceeds grant + one burst.
	for _, f := range enf.Flows {
		r := rep.Reservations[int(f.Request)]
		bound := r.Grant.Bandwidth.For(r.Grant.Duration()) + r.Grant.Bandwidth.For(1*units.Second)
		if float64(f.Delivered) > float64(bound)*(1+1e-9) {
			t.Errorf("flow %d delivered %v above bound %v", f.Request, f.Delivered, bound)
		}
	}
}

func TestEnforceValidation(t *testing.T) {
	rep := enforcedRun(t, 7)
	if _, err := Enforce(rep, nil, 0); err == nil {
		t.Error("zero chunk accepted")
	}
	if _, err := Enforce(rep, map[request.ID]float64{0: -1}, 1*units.MB); err == nil {
		t.Error("negative cheat accepted")
	}
}

func TestEnforceEmptyReport(t *testing.T) {
	enf, err := Enforce(&Report{}, nil, 1*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	if len(enf.Flows) != 0 || enf.CompliantDelivery != 1 || enf.CheaterDelivery != 1 {
		t.Errorf("empty enforcement = %+v", enf)
	}
}

// TestEnforceRateBoundProperty: for random cheat assignments, delivered
// volume never exceeds grant-rate × duration + burst, and compliant flows
// always deliver fully.
func TestEnforceRateBoundProperty(t *testing.T) {
	rep := enforcedRun(t, 11)
	f := func(sel uint32, overRaw uint8) bool {
		over := float64(overRaw%30)/10 + 0.1 // 0.1 .. 3.0
		cheat := map[request.ID]float64{}
		i := 0
		for _, r := range rep.Reservations {
			if r.Accepted {
				if sel&(1<<uint(i%32)) != 0 {
					cheat[r.Request] = over
				}
				i++
			}
		}
		enf, err := Enforce(rep, cheat, 10*units.MB)
		if err != nil {
			return false
		}
		if enf.CompliantDelivery != 1 {
			return false
		}
		for _, fc := range enf.Flows {
			r := rep.Reservations[int(fc.Request)]
			bound := r.Grant.Bandwidth.For(r.Grant.Duration() + 1)
			if float64(fc.Delivered) > float64(bound)*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
