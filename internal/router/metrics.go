package router

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"gridbw/internal/metrics"
)

// shardMetrics counts one shard's proxied calls: volume, failures, and a
// latency histogram over every round trip the router made to it.
type shardMetrics struct {
	name   string
	calls  atomic.Uint64
	errors atomic.Uint64
	lat    *metrics.Histogram
}

func (sm *shardMetrics) observe(d time.Duration, err error) {
	sm.calls.Add(1)
	if err != nil {
		sm.errors.Add(1)
	}
	sm.lat.Record(d)
}

// routerMetrics is the router's whole observability surface, rendered as
// Prometheus text on GET /metrics. All fields are atomic — request
// goroutines record while the scraper reads.
type routerMetrics struct {
	shards []*shardMetrics
	// Cross-shard two-phase outcomes: total attempts, committed pairs,
	// domain rejections, shard-side failures; crossLat spans the whole
	// protocol run (both RESERVEs and CONFIRMs).
	crossTotal     atomic.Uint64
	crossConfirmed atomic.Uint64
	crossRejected  atomic.Uint64
	crossFailed    atomic.Uint64
	crossLat       *metrics.Histogram
	// Batch scatter shape: calls, and how many shard groups plus
	// cross-shard singles each one fanned out to.
	batches     atomic.Uint64
	batchFanout atomic.Uint64
}

func newRouterMetrics(names []string) *routerMetrics {
	m := &routerMetrics{crossLat: metrics.NewHistogram()}
	for _, name := range names {
		m.shards = append(m.shards, &shardMetrics{name: name, lat: metrics.NewHistogram()})
	}
	return m
}

func (m *routerMetrics) observeCross(d time.Duration, err error, confirmed bool) {
	m.crossTotal.Add(1)
	m.crossLat.Record(d)
	switch {
	case err != nil:
		m.crossFailed.Add(1)
	case confirmed:
		m.crossConfirmed.Add(1)
	default:
		m.crossRejected.Add(1)
	}
}

func (m *routerMetrics) observeBatch(groups, cross int) {
	m.batches.Add(1)
	m.batchFanout.Add(uint64(groups + cross))
}

func (m *routerMetrics) write(w io.Writer) {
	fmt.Fprintf(w, "# TYPE gridbwrouter_shard_calls_total counter\n")
	fmt.Fprintf(w, "# TYPE gridbwrouter_shard_errors_total counter\n")
	for _, sm := range m.shards {
		fmt.Fprintf(w, "gridbwrouter_shard_calls_total{shard=%q} %d\n", sm.name, sm.calls.Load())
		fmt.Fprintf(w, "gridbwrouter_shard_errors_total{shard=%q} %d\n", sm.name, sm.errors.Load())
	}
	fmt.Fprintf(w, "# TYPE gridbwrouter_shard_latency_seconds summary\n")
	for _, sm := range m.shards {
		writeLatency(w, "gridbwrouter_shard_latency_seconds", fmt.Sprintf("shard=%q", sm.name), sm.lat)
	}
	fmt.Fprintf(w, "# TYPE gridbwrouter_cross_shard_total counter\n")
	fmt.Fprintf(w, "gridbwrouter_cross_shard_total %d\n", m.crossTotal.Load())
	fmt.Fprintf(w, "# TYPE gridbwrouter_cross_shard_outcomes_total counter\n")
	fmt.Fprintf(w, "gridbwrouter_cross_shard_outcomes_total{outcome=\"confirmed\"} %d\n", m.crossConfirmed.Load())
	fmt.Fprintf(w, "gridbwrouter_cross_shard_outcomes_total{outcome=\"rejected\"} %d\n", m.crossRejected.Load())
	fmt.Fprintf(w, "gridbwrouter_cross_shard_outcomes_total{outcome=\"failed\"} %d\n", m.crossFailed.Load())
	fmt.Fprintf(w, "# TYPE gridbwrouter_cross_shard_latency_seconds summary\n")
	writeLatency(w, "gridbwrouter_cross_shard_latency_seconds", "", m.crossLat)
	fmt.Fprintf(w, "# TYPE gridbwrouter_batches_total counter\n")
	fmt.Fprintf(w, "gridbwrouter_batches_total %d\n", m.batches.Load())
	fmt.Fprintf(w, "# TYPE gridbwrouter_batch_fanout_total counter\n")
	fmt.Fprintf(w, "gridbwrouter_batch_fanout_total %d\n", m.batchFanout.Load())
}

func writeLatency(w io.Writer, name, label string, h *metrics.Histogram) {
	sep := ""
	if label != "" {
		sep = ","
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		fmt.Fprintf(w, "%s{%s%squantile=\"%g\"} %g\n", name, label, sep, q, h.Quantile(q).Seconds())
	}
	if label != "" {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, label, h.Sum().Seconds())
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, label, h.Count())
	} else {
		fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum().Seconds())
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
	}
}
