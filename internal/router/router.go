// Package router is the stateless horizontal scale-out tier of gridbwd:
// it consistent-hashes (ingress, egress) access-point pairs onto a static
// ring of shard groups and proxies the client-facing API onto whichever
// shard owns the pair.
//
// A pair whose two points hash to one shard is proxied straight through —
// single submits, cancels, lookups, and whole batch slices (JSON or the
// binary codec) — with the shard's local request IDs namespaced into
// client-visible IDs (visible = local×N + shard). A pair whose points
// land on different shards cannot be admitted by either one's two-sided
// pipeline; the router drives the wire form of the two-phase protocol
// that internal/distributed proved under fault injection: RESERVE on the
// ingress owner (which runs the one-sided admission search and proposes a
// grant), RESERVE on the egress owner (authoritative check of the
// proposal), then CONFIRM on both on dual success or ABORT on any
// failure. Shard groups keep independent service clocks, so the proposed
// window crosses shards as offsets from the proposing shard's clock (see
// server.HoldReserveJSON.RelTimes). Unconfirmed holds roll back on their
// TTL, so a router crash between the two RESERVEs or CONFIRMs can delay
// capacity reuse but never leak it.
//
// Each shard is addressed through a failover-aware server/client over its
// group members, so primary rediscovery, fencing-epoch preference, and
// the probe-cooldown negative cache all apply per shard. The router
// itself keeps no durable state: any instance with the same static
// configuration routes identically.
package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"gridbw/internal/server"
	"gridbw/internal/server/client"
	"gridbw/internal/trace"
)

const (
	// defaultHoldTTL mirrors the shard-side default: long enough to cover
	// two RESERVE round trips plus failover rediscovery, short enough that
	// a crashed router frees capacity quickly.
	defaultHoldTTL  = 5 * time.Second
	defaultMaxBatch = 1024
)

// ShardConfig names one shard group and its member endpoints (primary
// first by convention; the client rediscovers the actual primary).
type ShardConfig struct {
	Name      string
	Endpoints []string
}

// Config describes a router. Zero fields take the documented defaults.
type Config struct {
	// Shards is the static ring membership, in a fixed order — the order
	// defines each shard's index for ID namespacing, so every router
	// instance (and the offline checker) must list shards identically.
	Shards []ShardConfig
	// Seed and Replicas parameterize the consistent-hash ring; all
	// instances must agree on them.
	Seed     uint64
	Replicas int
	// HoldTTL bounds unconfirmed cross-shard holds. Default 5s.
	HoldTTL time.Duration
	// MaxBatch bounds one POST /v1/batch. Default 1024.
	MaxBatch int
	// Client tunes the per-shard daemon clients.
	Client client.Options
	// HTTPClient overrides the transport shared by the shard clients; nil
	// uses one tuned for many concurrent proxied connections.
	HTTPClient *http.Client
}

// shard is one ring member: its failover-aware client plus metrics.
type shard struct {
	name string
	c    *client.Client
	met  *shardMetrics
}

// Router is the HTTP tier. Construct with New, serve Handler.
type Router struct {
	ring     *Ring
	shards   []*shard
	holdTTL  time.Duration
	maxBatch int
	met      *routerMetrics
}

// New builds a router over the configured shard groups.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("router: no shards configured")
	}
	names := make([]string, len(cfg.Shards))
	for i, sc := range cfg.Shards {
		if len(sc.Endpoints) == 0 {
			return nil, fmt.Errorf("router: shard %q has no endpoints", sc.Name)
		}
		names[i] = sc.Name
	}
	ring, err := NewRing(names, cfg.Seed, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        1024,
			MaxIdleConnsPerHost: 256,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	rt := &Router{
		ring:     ring,
		holdTTL:  cfg.HoldTTL,
		maxBatch: cfg.MaxBatch,
		met:      newRouterMetrics(names),
	}
	if rt.holdTTL <= 0 {
		rt.holdTTL = defaultHoldTTL
	}
	if rt.maxBatch <= 0 {
		rt.maxBatch = defaultMaxBatch
	}
	for i, sc := range cfg.Shards {
		rt.shards = append(rt.shards, &shard{
			name: sc.Name,
			c:    client.NewWithOptions(sc.Endpoints[0], hc, cfg.Client, sc.Endpoints[1:]...),
			met:  rt.met.shards[i],
		})
	}
	return rt, nil
}

// Ring exposes the routing table (tests and tooling).
func (rt *Router) Ring() *Ring { return rt.ring }

// visibleID namespaces a shard-local request ID into the client-visible
// space: visible = local×N + shard, so shard = visible mod N.
func (rt *Router) visibleID(local, shardIdx int) int {
	return local*rt.ring.NumShards() + shardIdx
}

func (rt *Router) splitID(visible int) (local, shardIdx int) {
	n := rt.ring.NumShards()
	return visible / n, visible % n
}

// Handler returns the router's HTTP surface: the shard-facing subset of
// the daemon API plus the router's own Prometheus metrics.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/requests", rt.handleSubmit)
	mux.HandleFunc("POST /v1/batch", rt.handleBatch)
	mux.HandleFunc("GET /v1/requests/{id}", rt.handleGet)
	mux.HandleFunc("DELETE /v1/requests/{id}", rt.handleCancel)
	mux.HandleFunc("GET /v1/healthz", rt.handleHealthz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, server.ErrorJSON{Error: err.Error()})
}

// writeUpstreamError relays a shard-side failure: API answers pass
// through with their status (and Retry-After hint), transport-level
// failures become 502 — the shard may be mid-failover.
func writeUpstreamError(w http.ResponseWriter, err error) {
	var ae *client.APIError
	if errors.As(err, &ae) {
		if ae.RetryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(int((ae.RetryAfter+time.Second-1)/time.Second)))
		}
		writeJSON(w, ae.StatusCode, server.ErrorJSON{Error: ae.Message})
		return
	}
	writeError(w, http.StatusBadGateway, err)
}

func (rt *Router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var body server.SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if hk := r.Header.Get("Idempotency-Key"); hk != "" {
		if body.IdempotencyKey != "" && body.IdempotencyKey != hk {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("idempotency_key body field and Idempotency-Key header disagree"))
			return
		}
		body.IdempotencyKey = hk
	}
	ws, err := body.Wire()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	inIdx, egIdx := rt.ring.OwnerIn(ws.From), rt.ring.OwnerEg(ws.To)
	if inIdx == egIdx {
		sh := rt.shards[inIdx]
		t0 := time.Now()
		res, err := sh.c.Submit(r.Context(), body)
		sh.met.observe(time.Since(t0), err)
		if err != nil {
			writeUpstreamError(w, err)
			return
		}
		res.ID = rt.visibleID(res.ID, inIdx)
		code := http.StatusCreated
		if !res.Accepted {
			code = http.StatusOK
		}
		writeJSON(w, code, res)
		return
	}
	res, code, err := rt.crossShard(r.Context(), ws, inIdx, egIdx)
	if err != nil {
		writeUpstreamError(w, err)
		return
	}
	writeJSON(w, code, res)
}

// crossReject is the domain-refusal answer of a cross-shard submission.
func crossReject(id int, reason string) server.ReservationJSON {
	return server.ReservationJSON{
		ID: id, Accepted: false, State: string(server.StateRejected),
		Reason: reason, Routed: server.RoutedCrossShard,
	}
}

// crossShard drives one submission through the two-phase hold protocol:
// RESERVE ingress → RESERVE egress → CONFIRM both, aborting both sides on
// any failure. A nil error with a non-accepted reservation is a domain
// rejection (HTTP 200); errors are shard-side failures the caller relays.
func (rt *Router) crossShard(ctx context.Context, ws server.WireSubmission, inIdx, egIdx int) (server.ReservationJSON, int, error) {
	t0 := time.Now()
	res, code, err := rt.crossShardOnce(ctx, ws, inIdx, egIdx)
	rt.met.observeCross(time.Since(t0), err, err == nil && res.Accepted)
	return res, code, err
}

func (rt *Router) crossShardOnce(ctx context.Context, ws server.WireSubmission, inIdx, egIdx int) (server.ReservationJSON, int, error) {
	// Relative and absolute times cannot mix across shards: RelTimes marks
	// the whole window as offsets from the deciding shard's clock, and an
	// absolute instant from the client's view of one shard means nothing on
	// the other.
	if (ws.RelNotBefore && !ws.RelDeadline && ws.Deadline != 0) ||
		(!ws.RelNotBefore && ws.RelDeadline && ws.NotBefore != 0) {
		return server.ReservationJSON{}, 0,
			&client.APIError{StatusCode: http.StatusBadRequest,
				Message: "cross-shard submission mixes relative and absolute times"}
	}
	if ws.IdempotencyKey == "" {
		ws.IdempotencyKey = client.NewIdempotencyKey()
	}
	// The hold key derives from the idempotency key, so a client retry of
	// the whole submission converges on the same pair of holds instead of
	// booking fresh ones.
	hold := "x-" + ws.IdempotencyKey
	inSh, egSh := rt.shards[inIdx], rt.shards[egIdx]
	rel := ws.RelNotBefore || ws.RelDeadline

	rin, err := rt.holdReserve(ctx, inSh, server.HoldReserveJSON{
		Hold: hold, Side: trace.HoldSideIngress,
		Point: ws.From, PeerPoint: ws.To,
		TTLS: rt.holdTTL.Seconds(), RelTimes: rel,
		VolumeBytes: float64(ws.Volume), MaxRateBps: float64(ws.MaxRate),
		NotBeforeS: float64(ws.NotBefore), DeadlineS: float64(ws.Deadline),
	})
	if err != nil {
		go rt.abortPair(inSh, inSh, hold)
		return server.ReservationJSON{}, 0, err
	}
	id := rt.visibleID(rin.ID, inIdx)
	if !rin.Held {
		return crossReject(id, rin.Reason), http.StatusOK, nil
	}
	// The grant window crosses clocks as offsets from the ingress shard's
	// NowS; the egress shard resolves them against its own clock.
	reg, err := rt.holdReserve(ctx, egSh, server.HoldReserveJSON{
		Hold: hold, Side: trace.HoldSideEgress,
		Point: ws.To, PeerPoint: ws.From,
		TTLS: rt.holdTTL.Seconds(), RelTimes: true,
		RateBps: rin.RateBps,
		SigmaS:  rin.SigmaS - rin.NowS, TauS: rin.TauS - rin.NowS,
		VolumeBytes: float64(ws.Volume), MaxRateBps: float64(ws.MaxRate),
	})
	if err != nil {
		go rt.abortPair(inSh, egSh, hold)
		return server.ReservationJSON{}, 0, err
	}
	if !reg.Held {
		go rt.abortPair(inSh, egSh, hold)
		return crossReject(id, reg.Reason), http.StatusOK, nil
	}
	if _, err := rt.confirmHold(ctx, inSh, hold, rin.Epoch); err != nil {
		go rt.abortPair(inSh, egSh, hold)
		if client.IsConflict(err) {
			// The ingress hold rolled back (TTL lapse, or a racing cancel)
			// before the commit: a clean rejection, not a shard failure.
			return crossReject(id, "hold expired before confirm"), http.StatusOK, nil
		}
		return server.ReservationJSON{}, 0, err
	}
	if _, err := rt.confirmHold(ctx, egSh, hold, reg.Epoch); err != nil {
		// The ingress side already committed: the abort below is the
		// compensating release, converging both sides to absent.
		go rt.abortPair(inSh, egSh, hold)
		if client.IsConflict(err) {
			return crossReject(id, "hold expired before confirm"), http.StatusOK, nil
		}
		return server.ReservationJSON{}, 0, err
	}
	state := string(server.StateActive)
	if rin.SigmaS > rin.NowS {
		state = string(server.StateBooked)
	}
	return server.ReservationJSON{
		ID: id, Accepted: true, State: state,
		RateBps: rin.RateBps, SigmaS: rin.SigmaS, TauS: rin.TauS,
		Routed: server.RoutedCrossShard,
	}, http.StatusCreated, nil
}

func (rt *Router) holdReserve(ctx context.Context, sh *shard, req server.HoldReserveJSON) (server.HoldReserveResponseJSON, error) {
	t0 := time.Now()
	resp, err := sh.c.HoldReserve(ctx, req)
	sh.met.observe(time.Since(t0), err)
	return resp, err
}

// confirmHold commits one side, riding out a failover mid-hold: a 403
// after the client's built-in rediscovery means the lineage changed (the
// reserve-time epoch is fenced) — refresh the epoch from the new primary
// and present it once. The promoted follower replayed the hold from the
// WAL, so the confirm lands on real state.
func (rt *Router) confirmHold(ctx context.Context, sh *shard, hold string, epoch uint64) (server.HoldStateJSON, error) {
	t0 := time.Now()
	st, err := sh.c.HoldConfirm(ctx, hold, epoch)
	if err != nil && client.IsReadOnly(err) {
		if rs, rerr := sh.c.Replication(ctx); rerr == nil && rs.Role == "primary" && rs.Epoch != epoch {
			st, err = sh.c.HoldConfirm(ctx, hold, rs.Epoch)
		}
	}
	sh.met.observe(time.Since(t0), err)
	return st, err
}

// abortPair converges both sides of a hold to aborted, best-effort and
// detached from the request context (the client may be gone). Failures
// are tolerable: the shard-side TTL is the backstop that actually
// guarantees no capacity leaks.
func (rt *Router) abortPair(a, b *shard, hold string) {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	_, _ = a.c.HoldAbort(ctx, hold)
	if b != a {
		_, _ = b.c.HoldAbort(ctx, hold)
	}
}

func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	binary := strings.HasPrefix(r.Header.Get("Content-Type"), server.BinaryBatchContentType)
	var subs []server.WireSubmission
	var items []server.BatchItemJSON
	if binary {
		data, err := io.ReadAll(io.LimitReader(r.Body, int64(server.MaxBinaryBatchBytes)+1))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("read request: %w", err))
			return
		}
		if len(data) > server.MaxBinaryBatchBytes {
			writeError(w, http.StatusBadRequest, fmt.Errorf("binary batch exceeds %d bytes", server.MaxBinaryBatchBytes))
			return
		}
		subs, err = server.DecodeBinaryBatchRequest(data, rt.maxBatch)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		items = make([]server.BatchItemJSON, len(subs))
	} else {
		var body server.BatchRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&body); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
			return
		}
		if len(body.Requests) == 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
			return
		}
		if len(body.Requests) > rt.maxBatch {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("batch of %d exceeds limit %d", len(body.Requests), rt.maxBatch))
			return
		}
		subs = make([]server.WireSubmission, len(body.Requests))
		items = make([]server.BatchItemJSON, len(body.Requests))
		for i, req := range body.Requests {
			ws, err := req.Wire()
			if err != nil {
				// Malformed items fail individually in their slot, like the
				// daemon's JSON batch handler.
				items[i].Error = err.Error()
				continue
			}
			subs[i] = ws
		}
	}
	// Missing keys are generated before the scatter so every retry layer
	// below re-sends the same ones.
	for i := range subs {
		if items[i].Error == "" && subs[i].IdempotencyKey == "" {
			subs[i].IdempotencyKey = client.NewIdempotencyKey()
		}
	}

	// Split by owning shard: same-shard slices forward as one wire batch
	// per shard, cross-shard items each run the two-phase protocol. Every
	// goroutine writes only its own result slots; gather is by index, so
	// the response preserves request order no matter the completion order.
	groups := make(map[int][]int)
	var cross []int
	for i := range subs {
		if items[i].Error != "" {
			continue
		}
		inIdx, egIdx := rt.ring.OwnerIn(subs[i].From), rt.ring.OwnerEg(subs[i].To)
		if inIdx == egIdx {
			groups[inIdx] = append(groups[inIdx], i)
		} else {
			cross = append(cross, i)
		}
	}
	rt.met.observeBatch(len(groups), len(cross))
	var wg sync.WaitGroup
	for shardIdx, idxs := range groups {
		wg.Add(1)
		go func(shardIdx int, idxs []int) {
			defer wg.Done()
			sh := rt.shards[shardIdx]
			slice := make([]server.WireSubmission, len(idxs))
			for j, i := range idxs {
				slice[j] = subs[i]
			}
			t0 := time.Now()
			res, err := sh.c.SubmitBatchWire(r.Context(), slice)
			sh.met.observe(time.Since(t0), err)
			if err != nil {
				msg := err.Error()
				for _, i := range idxs {
					items[i] = server.BatchItemJSON{Error: msg}
				}
				return
			}
			for j, i := range idxs {
				it := res[j]
				if it.Reservation != nil {
					it.Reservation.ID = rt.visibleID(it.Reservation.ID, shardIdx)
				}
				items[i] = it
			}
		}(shardIdx, idxs)
	}
	for _, i := range cross {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			inIdx, egIdx := rt.ring.OwnerIn(subs[i].From), rt.ring.OwnerEg(subs[i].To)
			rj, _, err := rt.crossShard(r.Context(), subs[i], inIdx, egIdx)
			if err != nil {
				items[i] = server.BatchItemJSON{Error: err.Error()}
				return
			}
			items[i] = server.BatchItemJSON{Reservation: &rj}
		}(i)
	}
	wg.Wait()

	if binary {
		blob := server.AppendBinaryBatchItems(nil, items)
		w.Header().Set("Content-Type", server.BinaryBatchContentType)
		w.Header().Set("Content-Length", strconv.Itoa(len(blob)))
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(blob)
		return
	}
	writeJSON(w, http.StatusOK, server.BatchResponse{Results: items})
}

func pathID(r *http.Request) (int, error) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || id < 0 {
		return 0, fmt.Errorf("bad reservation id %q", r.PathValue("id"))
	}
	return id, nil
}

func (rt *Router) handleGet(w http.ResponseWriter, r *http.Request) {
	visible, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	local, shardIdx := rt.splitID(visible)
	sh := rt.shards[shardIdx]
	t0 := time.Now()
	res, err := sh.c.Get(r.Context(), local)
	sh.met.observe(time.Since(t0), err)
	if err != nil {
		writeUpstreamError(w, err)
		return
	}
	res.ID = visible
	writeJSON(w, http.StatusOK, res)
}

// handleCancel revokes by visible ID. A same-shard reservation cancels
// straight through; when the owning shard answers 404 the ID may instead
// back the ingress side of a cross-shard hold — resolved by ID into an
// abort on both owners.
func (rt *Router) handleCancel(w http.ResponseWriter, r *http.Request) {
	visible, err := pathID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	local, shardIdx := rt.splitID(visible)
	sh := rt.shards[shardIdx]
	t0 := time.Now()
	res, err := sh.c.Cancel(r.Context(), local)
	sh.met.observe(time.Since(t0), err)
	if err == nil {
		res.ID = visible
		writeJSON(w, http.StatusOK, res)
		return
	}
	if !client.IsNotFound(err) {
		writeUpstreamError(w, err)
		return
	}
	st, aerr := sh.c.HoldAbortByID(r.Context(), local)
	if aerr != nil {
		if client.IsNotFound(aerr) {
			writeUpstreamError(w, err) // the original 404: nothing here at all
			return
		}
		writeUpstreamError(w, aerr)
		return
	}
	// The ID backed an ingress-side hold on shardIdx; the answer names the
	// egress point, whose owner holds the other half.
	peer := rt.shards[rt.ring.OwnerEg(st.PeerPoint)]
	if peer != sh {
		ctx, cancel := context.WithTimeout(r.Context(), 3*time.Second)
		defer cancel()
		_, _ = peer.c.HoldAbort(ctx, st.Hold)
	}
	writeJSON(w, http.StatusOK, server.ReservationJSON{
		ID: visible, Accepted: true, State: string(server.StateCancelled),
		Routed: server.RoutedCrossShard,
	})
}

// RouterHealthJSON is the GET /v1/healthz body: the router is stateless,
// so health is just "the process is up", plus the ring shape for
// debugging which instance answered.
type RouterHealthJSON struct {
	Status string   `json:"status"`
	Shards []string `json:"shards"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	names := make([]string, rt.ring.NumShards())
	for i := range names {
		names[i] = rt.ring.ShardName(i)
	}
	writeJSON(w, http.StatusOK, RouterHealthJSON{Status: "ok", Shards: names})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	rt.met.write(w)
}
