package router

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultReplicas is the vnode count per shard: enough that the point
// space splits near-evenly across a handful of shards without making the
// ring search noticeably slower.
const defaultReplicas = 64

// Ring consistent-hashes access points onto a static set of shard groups.
// Ingress and egress points hash independently: shard s owns ingress i
// and egress e as separate facts, and a pair is same-shard exactly when
// both owners coincide. The mapping is a pure function of (seed, shard
// names, replicas) — every router instance with the same static config
// routes identically, with no coordination — and appending a shard leaves
// existing vnode hashes untouched, so only the points its vnodes capture
// move (~1/N of each direction).
type Ring struct {
	shards []string
	keys   []uint64 // sorted vnode hashes
	owners []int    // owners[i] is the shard owning keys[i]
}

// NewRing builds the ring. Shard names must be unique and non-empty;
// replicas <= 0 takes the default.
func NewRing(shards []string, seed uint64, replicas int) (*Ring, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("router: ring needs at least one shard")
	}
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	seen := make(map[string]bool, len(shards))
	for _, name := range shards {
		if name == "" {
			return nil, fmt.Errorf("router: empty shard name")
		}
		if seen[name] {
			return nil, fmt.Errorf("router: duplicate shard name %q", name)
		}
		seen[name] = true
	}
	r := &Ring{
		shards: append([]string(nil), shards...),
		keys:   make([]uint64, 0, len(shards)*replicas),
		owners: make([]int, 0, len(shards)*replicas),
	}
	type vnode struct {
		hash  uint64
		owner int
	}
	vns := make([]vnode, 0, len(shards)*replicas)
	for idx, name := range shards {
		for v := 0; v < replicas; v++ {
			vns = append(vns, vnode{hash64(fmt.Sprintf("%d|%s|%d", seed, name, v)), idx})
		}
	}
	// Ties (two vnodes at one hash) break by shard index so the mapping
	// stays deterministic regardless of input order.
	sort.Slice(vns, func(i, j int) bool {
		if vns[i].hash != vns[j].hash {
			return vns[i].hash < vns[j].hash
		}
		return vns[i].owner < vns[j].owner
	})
	for _, vn := range vns {
		r.keys = append(r.keys, vn.hash)
		r.owners = append(r.owners, vn.owner)
	}
	return r, nil
}

// NumShards reports the ring's shard count.
func (r *Ring) NumShards() int { return len(r.shards) }

// ShardName reports the configured name of shard idx.
func (r *Ring) ShardName(idx int) string { return r.shards[idx] }

// OwnerIn reports the shard owning ingress point p.
func (r *Ring) OwnerIn(p int) int { return r.owner(fmt.Sprintf("in|%d", p)) }

// OwnerEg reports the shard owning egress point p.
func (r *Ring) OwnerEg(p int) int { return r.owner(fmt.Sprintf("eg|%d", p)) }

// owner maps a key to the first vnode at or clockwise of its hash.
func (r *Ring) owner(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.keys), func(i int) bool { return r.keys[i] >= h })
	if i == len(r.keys) {
		i = 0
	}
	return r.owners[i]
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer. FNV-1a's upper bits avalanche
// poorly on short near-sequential keys ("in|17", "0|s4|63"), and ring
// placement orders by the full 64-bit value — without a final mix the
// vnodes and points cluster and one shard captures far more than its
// share.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
