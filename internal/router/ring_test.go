package router

import (
	"testing"
)

// TestRingDeterministic: the mapping is a pure function of (seed, shard
// names, replicas) — two independently built rings agree on every point,
// and a different seed actually produces a different mapping.
func TestRingDeterministic(t *testing.T) {
	shards := []string{"alpha", "beta", "gamma"}
	a, err := NewRing(shards, 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(shards, 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewRing(shards, 43, 0)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for p := 0; p < 4096; p++ {
		if a.OwnerIn(p) != b.OwnerIn(p) || a.OwnerEg(p) != b.OwnerEg(p) {
			t.Fatalf("point %d: same config disagrees: in %d/%d eg %d/%d",
				p, a.OwnerIn(p), b.OwnerIn(p), a.OwnerEg(p), b.OwnerEg(p))
		}
		if a.OwnerIn(p) != c.OwnerIn(p) || a.OwnerEg(p) != c.OwnerEg(p) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("changing the seed changed no assignment at all")
	}
}

// TestRingIndependentDirections: ingress and egress ownership of the
// same point index are independent facts — over enough points they must
// disagree somewhere, or pairs (i, i) would never be cross-shard.
func TestRingIndependentDirections(t *testing.T) {
	r, err := NewRing([]string{"a", "b", "c", "d"}, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	differ := 0
	for p := 0; p < 1024; p++ {
		if r.OwnerIn(p) != r.OwnerEg(p) {
			differ++
		}
	}
	if differ == 0 {
		t.Error("ingress and egress owners never differ; directions are not hashed independently")
	}
}

// TestRingSpread: with default replicas every shard owns a reasonable
// slice of the point space — no shard starves.
func TestRingSpread(t *testing.T) {
	shards := []string{"a", "b", "c", "d", "e"}
	r, err := NewRing(shards, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	const points = 10000
	counts := make([]int, len(shards))
	for p := 0; p < points; p++ {
		counts[r.OwnerIn(p)]++
	}
	fair := points / len(shards)
	for i, n := range counts {
		if n < fair/3 || n > fair*3 {
			t.Errorf("shard %s owns %d of %d ingress points, want within 3x of fair share %d",
				shards[i], n, points, fair)
		}
	}
}

// TestRingMovement: appending one shard to an N-shard ring moves about
// 1/(N+1) of the points per direction — and therefore at most about
// 2/(N+1) of the pairs — because existing vnode hashes stay put and only
// the keys the new shard's vnodes capture change owner.
func TestRingMovement(t *testing.T) {
	old := []string{"s0", "s1", "s2", "s3"}
	grown := append(append([]string(nil), old...), "s4")
	before, err := NewRing(old, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing(grown, 11, 0)
	if err != nil {
		t.Fatal(err)
	}

	const points = 2000
	movedPoints := 0
	for p := 0; p < points; p++ {
		if before.OwnerIn(p) != after.OwnerIn(p) {
			movedPoints++
		}
		// Every survivor keeps its identity: a moved point must move TO the
		// new shard, never between old shards.
		if before.OwnerIn(p) != after.OwnerIn(p) && after.OwnerIn(p) != len(old) {
			t.Fatalf("ingress point %d moved between old shards: %d -> %d",
				p, before.OwnerIn(p), after.OwnerIn(p))
		}
		if before.OwnerEg(p) != after.OwnerEg(p) && after.OwnerEg(p) != len(old) {
			t.Fatalf("egress point %d moved between old shards: %d -> %d",
				p, before.OwnerEg(p), after.OwnerEg(p))
		}
	}
	// Expect ~points/5 moved; allow generous slack for hash variance but
	// fail on anything resembling a rehash-the-world mapping.
	if frac := float64(movedPoints) / points; frac > 0.35 {
		t.Errorf("adding 1 shard to %d moved %.0f%% of ingress points, want ~%.0f%%",
			len(old), frac*100, 100.0/float64(len(grown)))
	}
	if movedPoints == 0 {
		t.Error("adding a shard moved nothing; the new shard owns no points")
	}

	const side = 60 // 3600 pairs
	movedPairs := 0
	for i := 0; i < side; i++ {
		for e := 0; e < side; e++ {
			b := [2]int{before.OwnerIn(i), before.OwnerEg(e)}
			a := [2]int{after.OwnerIn(i), after.OwnerEg(e)}
			if a != b {
				movedPairs++
			}
		}
	}
	// A pair moves when either endpoint does: ≈ 1-(1-1/5)² = 36%. Bound
	// it well under half.
	if frac := float64(movedPairs) / (side * side); frac > 0.5 {
		t.Errorf("adding 1 shard moved %.0f%% of pairs, want ≲ 2/N", frac*100)
	}
}

// TestRingValidation: degenerate configs are refused, not mis-routed.
func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0, 0); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0, 0); err == nil {
		t.Error("empty shard name accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0, 0); err == nil {
		t.Error("duplicate shard name accepted")
	}
}
