package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"gridbw/internal/chaosnet"
	"gridbw/internal/server"
	"gridbw/internal/server/client"
	"gridbw/internal/trace"
	"gridbw/internal/units"
)

const testPoints = 8

// eventBuf collects one shard's decision events for assertions.
type eventBuf struct {
	ch chan trace.Event
}

func newEventBuf() *eventBuf { return &eventBuf{ch: make(chan trace.Event, 1024)} }

func (b *eventBuf) Append(ev trace.Event) error {
	select {
	case b.ch <- ev:
	default:
	}
	return nil
}

// waitKind blocks until an event of one of the wanted kinds arrives.
func (b *eventBuf) waitKind(t *testing.T, kinds ...string) trace.Event {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev := <-b.ch:
			for _, k := range kinds {
				if ev.Kind == k {
					return ev
				}
			}
		case <-deadline:
			t.Fatalf("no %v event within 5s", kinds)
		}
	}
}

// testTier is two single-daemon shard groups behind one router.
type testTier struct {
	rt      *Router
	web     *httptest.Server
	servers []*server.Server
	backs   []*httptest.Server
	events  []*eventBuf
}

func caps(n int, bw units.Bandwidth) []units.Bandwidth {
	out := make([]units.Bandwidth, n)
	for i := range out {
		out[i] = bw
	}
	return out
}

// newTier boots nShards in-process daemons (egressBw lets a test starve
// one side) and a router over them.
func newTier(t *testing.T, nShards int, egressBw units.Bandwidth) *testTier {
	t.Helper()
	tier := &testTier{}
	var shards []ShardConfig
	for i := 0; i < nShards; i++ {
		evs := newEventBuf()
		srv, err := server.New(server.Config{
			Ingress:   caps(testPoints, units.GBps),
			Egress:    caps(testPoints, egressBw),
			Decisions: evs,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		tier.servers = append(tier.servers, srv)
		tier.backs = append(tier.backs, ts)
		tier.events = append(tier.events, evs)
		shards = append(shards, ShardConfig{Name: fmt.Sprintf("s%d", i), Endpoints: []string{ts.URL}})
	}
	rt, err := New(Config{Shards: shards, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tier.rt = rt
	tier.web = httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		tier.web.Close()
		for i := range tier.servers {
			tier.backs[i].Close()
			tier.servers[i].Close()
		}
	})
	return tier
}

// pairs scans the point space for a same-shard and a cross-shard pair.
func (tier *testTier) pairs(t *testing.T) (sameFrom, sameTo, crossFrom, crossTo int) {
	t.Helper()
	ring := tier.rt.Ring()
	foundSame, foundCross := false, false
	for i := 0; i < testPoints; i++ {
		for e := 0; e < testPoints; e++ {
			if ring.OwnerIn(i) == ring.OwnerEg(e) && !foundSame {
				sameFrom, sameTo, foundSame = i, e, true
			}
			if ring.OwnerIn(i) != ring.OwnerEg(e) && !foundCross {
				crossFrom, crossTo, foundCross = i, e, true
			}
		}
	}
	if !foundSame || !foundCross {
		t.Fatalf("seed gives no same/cross pair split over %d points", testPoints)
	}
	return
}

func (tier *testTier) submit(t *testing.T, req server.SubmitRequest) (server.ReservationJSON, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(tier.web.URL+"/v1/requests", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res server.ReservationJSON
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
	}
	return res, resp.StatusCode
}

func submitReq(from, to int) server.SubmitRequest {
	return server.SubmitRequest{
		From: from, To: to,
		VolumeBytes: 1e9, MaxRateBps: 1e8, DeadlineS: 1000,
	}
}

// TestSameShardProxy: a pair owned by one shard proxies straight through
// with the ID namespaced, and GET/DELETE round-trip through the same
// translation.
func TestSameShardProxy(t *testing.T) {
	tier := newTier(t, 2, units.GBps)
	from, to, _, _ := tier.pairs(t)
	owner := tier.rt.Ring().OwnerIn(from)

	res, code := tier.submit(t, submitReq(from, to))
	if code != http.StatusCreated || !res.Accepted {
		t.Fatalf("submit = %d %+v", code, res)
	}
	if res.Routed != "" {
		t.Errorf("same-shard decision marked routed=%q", res.Routed)
	}
	if res.ID%2 != owner {
		t.Errorf("visible ID %d encodes shard %d, want owner %d", res.ID, res.ID%2, owner)
	}

	resp, err := http.Get(fmt.Sprintf("%s/v1/requests/%d", tier.web.URL, res.ID))
	if err != nil {
		t.Fatal(err)
	}
	var got server.ReservationJSON
	json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || got.ID != res.ID {
		t.Fatalf("get = %d %+v, want id %d", resp.StatusCode, got, res.ID)
	}

	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/requests/%d", tier.web.URL, res.ID), nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var cancelled server.ReservationJSON
	json.NewDecoder(resp.Body).Decode(&cancelled)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || cancelled.State != string(server.StateCancelled) {
		t.Fatalf("cancel = %d %+v", resp.StatusCode, cancelled)
	}
	if cancelled.ID != res.ID {
		t.Errorf("cancel answered id %d, want visible %d", cancelled.ID, res.ID)
	}
}

// TestCrossShardCommit: a split pair runs the two-phase protocol; both
// owners log a confirm, the answer is marked cross_shard, and a client
// retry with the same idempotency key converges on the same pair instead
// of booking twice.
func TestCrossShardCommit(t *testing.T) {
	tier := newTier(t, 2, units.GBps)
	_, _, from, to := tier.pairs(t)
	inIdx := tier.rt.Ring().OwnerIn(from)
	egIdx := tier.rt.Ring().OwnerEg(to)

	req := submitReq(from, to)
	req.IdempotencyKey = "retry-me"
	res, code := tier.submit(t, req)
	if code != http.StatusCreated || !res.Accepted {
		t.Fatalf("submit = %d %+v", code, res)
	}
	if res.Routed != server.RoutedCrossShard {
		t.Errorf("routed = %q, want %q", res.Routed, server.RoutedCrossShard)
	}
	if res.ID%2 != inIdx {
		t.Errorf("visible ID %d encodes shard %d, want ingress owner %d", res.ID, res.ID%2, inIdx)
	}
	if res.RateBps <= 0 || res.TauS <= res.SigmaS {
		t.Errorf("grant = %+v, want a positive window", res)
	}
	for _, idx := range []int{inIdx, egIdx} {
		ev := tier.events[idx].waitKind(t, trace.EventHoldConfirm)
		if ev.Hold != "x-retry-me" {
			t.Errorf("shard %d confirmed hold %q, want x-retry-me", idx, ev.Hold)
		}
	}
	if held, confirmed := tier.servers[inIdx].HoldStats(); held != 0 || confirmed != 1 {
		t.Errorf("ingress shard holds = %d held / %d confirmed, want 0/1", held, confirmed)
	}

	// The retry reuses the hold pair: same visible ID, still accepted, and
	// no second booking on either shard.
	res2, code2 := tier.submit(t, req)
	if code2 != http.StatusCreated || res2.ID != res.ID || !res2.Accepted {
		t.Fatalf("retry = %d %+v, want same decision id %d", code2, res2, res.ID)
	}
	if _, confirmed := tier.servers[egIdx].HoldStats(); confirmed != 1 {
		t.Errorf("egress shard confirmed %d holds after retry, want 1", confirmed)
	}
}

// TestCrossShardEgressRefusal: the egress owner's authoritative check
// refuses the proposed grant (its capacity is starved); the client gets a
// clean domain rejection and the ingress-side hold is rolled back — no
// capacity leaks on the side that had said yes.
func TestCrossShardEgressRefusal(t *testing.T) {
	tier := newTier(t, 2, 10*units.BytePerSecond)
	_, _, from, to := tier.pairs(t)
	inIdx := tier.rt.Ring().OwnerIn(from)

	req := submitReq(from, to)
	// Ingress-side admission searches the ingress profile only (GB/s —
	// plenty); the starved egress capacity must refuse the proposal.
	res, code := tier.submit(t, req)
	if code != http.StatusOK || res.Accepted {
		t.Fatalf("submit = %d %+v, want 200 rejection", code, res)
	}
	if res.Routed != server.RoutedCrossShard || res.Reason == "" {
		t.Errorf("rejection = %+v, want cross_shard marker and a reason", res)
	}
	ev := tier.events[inIdx].waitKind(t, trace.EventHoldAbort, trace.EventHoldExpire)
	if ev.Side != trace.HoldSideIngress {
		t.Errorf("rolled-back hold side = %q, want ingress", ev.Side)
	}
	// The abort is asynchronous; once observed, nothing may stay booked.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if held, confirmed := tier.servers[inIdx].HoldStats(); held == 0 && confirmed == 0 {
			break
		}
		if time.Now().After(deadline) {
			held, confirmed := tier.servers[inIdx].HoldStats()
			t.Fatalf("ingress shard still holds %d held / %d confirmed", held, confirmed)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCrossShardCancel: cancelling a cross-shard admission by its visible
// ID aborts the holds on both owners.
func TestCrossShardCancel(t *testing.T) {
	tier := newTier(t, 2, units.GBps)
	_, _, from, to := tier.pairs(t)
	inIdx, egIdx := tier.rt.Ring().OwnerIn(from), tier.rt.Ring().OwnerEg(to)

	res, code := tier.submit(t, submitReq(from, to))
	if code != http.StatusCreated || !res.Accepted {
		t.Fatalf("submit = %d %+v", code, res)
	}
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/requests/%d", tier.web.URL, res.ID), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var cancelled server.ReservationJSON
	json.NewDecoder(resp.Body).Decode(&cancelled)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || cancelled.State != string(server.StateCancelled) {
		t.Fatalf("cancel = %d %+v", resp.StatusCode, cancelled)
	}
	if cancelled.Routed != server.RoutedCrossShard {
		t.Errorf("cancel routed = %q, want cross_shard", cancelled.Routed)
	}
	for _, idx := range []int{inIdx, egIdx} {
		tier.events[idx].waitKind(t, trace.EventHoldAbort)
	}
}

// TestBatchSplitOrdering: a mixed batch scatters across both shards and
// the cross-shard path, yet the response lines up with the request —
// even when one shard is made much slower than everything else, so
// completion order is guaranteed to differ from request order.
func TestBatchSplitOrdering(t *testing.T) {
	tier := newTier(t, 2, units.GBps)
	sFrom, sTo, xFrom, xTo := tier.pairs(t)
	ring := tier.rt.Ring()
	slowShard := ring.OwnerIn(sFrom)

	// Rebuild the router with a delaying proxy in front of slowShard's
	// batch endpoint: its slice finishes last although it appears first.
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/batch" {
			time.Sleep(300 * time.Millisecond)
		}
		tier.servers[slowShard].Handler().ServeHTTP(w, r)
	}))
	defer slow.Close()
	var shards []ShardConfig
	for i, ts := range tier.backs {
		url := ts.URL
		if i == slowShard {
			url = slow.URL
		}
		shards = append(shards, ShardConfig{Name: fmt.Sprintf("s%d", i), Endpoints: []string{url}})
	}
	rt, err := New(Config{Shards: shards, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	web := httptest.NewServer(rt.Handler())
	defer web.Close()

	// Find a same-shard pair on the OTHER (fast) shard too, if one exists.
	otherFrom, otherTo, foundOther := -1, -1, false
	for i := 0; i < testPoints && !foundOther; i++ {
		for e := 0; e < testPoints; e++ {
			if ring.OwnerIn(i) == ring.OwnerEg(e) && ring.OwnerIn(i) != slowShard {
				otherFrom, otherTo, foundOther = i, e, true
				break
			}
		}
	}

	reqs := []server.SubmitRequest{
		submitReq(sFrom, sTo), // slow shard
		submitReq(xFrom, xTo), // cross
		{From: 0, To: 0, VolumeBytes: 1e9, Volume: "1GB", MaxRateBps: 1e8, DeadlineS: 1000}, // malformed: both volume forms
		submitReq(sFrom, sTo), // slow shard again
	}
	if foundOther {
		reqs = append(reqs, submitReq(otherFrom, otherTo)) // fast shard
	}
	body, _ := json.Marshal(server.BatchRequest{Requests: reqs})
	resp, err := http.Post(web.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out server.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(out.Results) != len(reqs) {
		t.Fatalf("batch = %d, %d results, want %d", resp.StatusCode, len(out.Results), len(reqs))
	}

	wantShard := func(i, shard int) {
		t.Helper()
		it := out.Results[i]
		if it.Error != "" || it.Reservation == nil || !it.Reservation.Accepted {
			t.Fatalf("item %d = %+v, want accepted", i, it)
		}
		if it.Reservation.ID%2 != shard {
			t.Errorf("item %d landed on shard %d, want %d", i, it.Reservation.ID%2, shard)
		}
	}
	wantShard(0, slowShard)
	if it := out.Results[1]; it.Reservation == nil || it.Reservation.Routed != server.RoutedCrossShard {
		t.Errorf("item 1 = %+v, want cross_shard", it)
	}
	if it := out.Results[2]; it.Error == "" || it.Reservation != nil {
		t.Errorf("item 2 = %+v, want per-slot error for the malformed request", it)
	}
	wantShard(3, slowShard)
	if foundOther {
		wantShard(4, ring.OwnerIn(otherFrom))
	}
}

// TestBinaryBatchThroughRouter: the GBB1/GBR1 codec crosses the router
// with the same split/namespace semantics as JSON.
func TestBinaryBatchThroughRouter(t *testing.T) {
	tier := newTier(t, 2, units.GBps)
	sFrom, sTo, xFrom, xTo := tier.pairs(t)

	subs := make([]server.WireSubmission, 2)
	var err error
	if subs[0], err = submitReq(sFrom, sTo).Wire(); err != nil {
		t.Fatal(err)
	}
	if subs[1], err = submitReq(xFrom, xTo).Wire(); err != nil {
		t.Fatal(err)
	}
	blob := server.AppendBinaryBatchRequest(nil, subs)
	resp, err := http.Post(tier.web.URL+"/v1/batch", server.BinaryBatchContentType, bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary batch = %d: %s", resp.StatusCode, data)
	}
	items, err := server.DecodeBinaryBatchResponse(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("items = %d, want 2", len(items))
	}
	for i, it := range items {
		if it.Error != "" || it.Reservation == nil || !it.Reservation.Accepted {
			t.Fatalf("item %d = %+v, want accepted", i, it)
		}
	}
	if got, want := items[0].Reservation.ID%2, tier.rt.Ring().OwnerIn(sFrom); got != want {
		t.Errorf("same-shard item on shard %d, want %d", got, want)
	}
	if got, want := items[1].Reservation.ID%2, tier.rt.Ring().OwnerIn(xFrom); got != want {
		t.Errorf("cross item ID from shard %d, want ingress owner %d", got, want)
	}
}

// TestCrossShardBlackholeAbort: the egress owner's link black-holes
// mid-protocol (bytes vanish, no errors — a real partition). The router's
// egress RESERVE times out, the submission fails upstream, and the
// ingress-side hold — already booked — must roll back (the router's abort
// or, had that failed too, the shard-side TTL), leaving zero capacity
// held.
func TestCrossShardBlackholeAbort(t *testing.T) {
	tier := newTier(t, 2, units.GBps)
	_, _, from, to := tier.pairs(t)
	ring := tier.rt.Ring()
	inIdx, egIdx := ring.OwnerIn(from), ring.OwnerEg(to)

	proxy, err := chaosnet.New("eg-link", "127.0.0.1:0", tier.backs[egIdx].Listener.Addr().String(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	var shards []ShardConfig
	for i, ts := range tier.backs {
		url := ts.URL
		if i == egIdx {
			url = proxy.URL()
		}
		shards = append(shards, ShardConfig{Name: fmt.Sprintf("s%d", i), Endpoints: []string{url}})
	}
	rt, err := New(Config{
		Shards: shards, Seed: 1,
		HoldTTL: 2 * time.Second,
		Client:  client.Options{CallTimeout: 300 * time.Millisecond, MaxRetries: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	web := httptest.NewServer(rt.Handler())
	defer web.Close()

	// Cut the link both ways before the submission: the ingress RESERVE
	// succeeds (different shard), the egress RESERVE goes into the void.
	proxy.SetRules(chaosnet.Rules{CutToTarget: true, CutToClient: true})

	body, _ := json.Marshal(submitReq(from, to))
	resp, err := http.Post(web.URL+"/v1/requests", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode < 500 {
		t.Fatalf("blackholed submit = %d, want upstream failure", resp.StatusCode)
	}

	// The ingress hold must resolve — abort (router rollback) or expire
	// (TTL backstop) — and release its booking.
	ev := tier.events[inIdx].waitKind(t, trace.EventHoldAbort, trace.EventHoldExpire)
	if ev.Side != trace.HoldSideIngress {
		t.Errorf("rolled-back side = %q, want ingress", ev.Side)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		held, confirmed := tier.servers[inIdx].HoldStats()
		if held == 0 && confirmed == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("capacity leaked: %d held / %d confirmed on the ingress shard", held, confirmed)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Heal the link: the same pair admits cleanly end to end, proving the
	// rolled-back capacity is reusable.
	proxy.SetRules(chaosnet.Rules{})
	body, _ = json.Marshal(submitReq(from, to))
	resp, err = http.Post(web.URL+"/v1/requests", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var res server.ReservationJSON
	json.NewDecoder(resp.Body).Decode(&res)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || !res.Accepted {
		t.Fatalf("post-heal submit = %d %+v, want accepted", resp.StatusCode, res)
	}
}
