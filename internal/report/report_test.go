package report

import (
	"fmt"
	"strings"
	"testing"

	"gridbw/internal/experiment"
	"gridbw/internal/metrics"
)

func TestTableFprint(t *testing.T) {
	tbl := &Table{
		Title:   "Demo",
		Headers: []string{"x", "value"},
	}
	tbl.AddRow("1", "0.5")
	tbl.AddRow("10", "0.75")
	var sb strings.Builder
	if err := tbl.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "## Demo") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	// Columns aligned: "x" padded to width of "10".
	if !strings.HasPrefix(lines[1], "x ") {
		t.Errorf("header line %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "--") {
		t.Errorf("separator line %q", lines[2])
	}
}

func TestAddRowArityPanics(t *testing.T) {
	tbl := &Table{Headers: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Fatal("bad arity did not panic")
		}
	}()
	tbl.AddRow("only-one")
}

func TestCSVQuoting(t *testing.T) {
	tbl := &Table{Headers: []string{"name", "note"}}
	tbl.AddRow("a,b", `say "hi"`)
	var sb strings.Builder
	if err := tbl.FprintCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"a,b"`) {
		t.Errorf("comma not quoted: %q", out)
	}
	if !strings.Contains(out, `"say ""hi"""`) {
		t.Errorf("quote not escaped: %q", out)
	}
}

func fakeSeries() []experiment.Series {
	mk := func(rate float64) *experiment.Result {
		r := &experiment.Result{}
		r.Agg.Add(metrics.Metrics{AcceptRate: rate})
		return r
	}
	return []experiment.Series{
		{Label: "fcfs", Points: []experiment.Point{{X: 1, Result: mk(0.2)}, {X: 2, Result: mk(0.1)}}},
		{Label: "window", Points: []experiment.Point{{X: 1, Result: mk(0.6)}, {X: 2, Result: mk(0.5)}}},
	}
}

func TestSeriesTable(t *testing.T) {
	tbl := SeriesTable("Fig", "load", fakeSeries(), experiment.AcceptRateOf)
	if len(tbl.Headers) != 3 || tbl.Headers[1] != "fcfs" || tbl.Headers[2] != "window" {
		t.Errorf("headers = %v", tbl.Headers)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %v", tbl.Rows)
	}
	if tbl.Rows[0][0] != "1" || tbl.Rows[0][1] != "0.200" || tbl.Rows[0][2] != "0.600" {
		t.Errorf("row 0 = %v", tbl.Rows[0])
	}
}

func TestSeriesTableEmpty(t *testing.T) {
	tbl := SeriesTable("Empty", "x", nil, experiment.AcceptRateOf)
	if len(tbl.Rows) != 0 {
		t.Error("empty series produced rows")
	}
	var sb strings.Builder
	if err := tbl.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestGnuplotData(t *testing.T) {
	var sb strings.Builder
	if err := GnuplotData(&sb, fakeSeries(), experiment.AcceptRateOf); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# fcfs\n1 0.2\n2 0.1\n") {
		t.Errorf("gnuplot block malformed:\n%s", out)
	}
	if !strings.Contains(out, "# window\n") {
		t.Error("second block missing")
	}
}

// failAfter is an io.Writer that errors after n bytes, for error-path
// coverage of the renderers.
type failAfter struct {
	n int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errFail
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, errFail
	}
	f.n -= len(p)
	return len(p), nil
}

var errFail = fmt.Errorf("writer full")

func TestRenderersPropagateWriteErrors(t *testing.T) {
	tbl := &Table{Title: "T", Headers: []string{"a", "b"}}
	tbl.AddRow("1", "2")
	tbl.AddRow("3", "4")
	// Budgets strictly below each renderer's total output must error.
	// CSV output is "a,b\n1,2\n3,4\n" = 12 bytes; the aligned table is
	// longer.
	for budget := 0; budget < 12; budget++ {
		if err := tbl.Fprint(&failAfter{n: budget}); err == nil {
			t.Fatalf("Fprint with %d-byte budget did not fail", budget)
		}
		if err := tbl.FprintCSV(&failAfter{n: budget}); err == nil {
			t.Fatalf("FprintCSV with %d-byte budget did not fail", budget)
		}
	}
	if err := GnuplotData(&failAfter{n: 3}, fakeSeries(), experiment.AcceptRateOf); err == nil {
		t.Fatal("GnuplotData did not propagate write error")
	}
}
