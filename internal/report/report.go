// Package report renders experiment results as aligned ASCII tables,
// CSV files and gnuplot-ready data blocks. cmd/figures and the benches
// print through this package so EXPERIMENTS.md, test logs and saved
// artifacts all show identical numbers.
package report

import (
	"fmt"
	"io"
	"strings"

	"gridbw/internal/experiment"
)

// Table is a simple header + rows structure.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; it panics when the arity does not match the
// headers, which catches experiment-declaration typos early.
func (t *Table) AddRow(cells ...string) {
	if len(t.Headers) > 0 && len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("report: row has %d cells, table %q has %d columns",
			len(cells), t.Title, len(t.Headers)))
	}
	t.Rows = append(t.Rows, cells)
}

// Fprint writes the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "## %s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Headers); err != nil {
		return err
	}
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	if err := line(seps); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// FprintCSV writes the table as RFC-4180-ish CSV (quotes only when
// needed).
func (t *Table) FprintCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			parts[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// SeriesTable renders a sweep as a table: one row per x value, one column
// per series, using the given extractor (e.g. experiment.AcceptRateOf).
func SeriesTable(title, xLabel string, series []experiment.Series, get func(*experiment.Result) float64) *Table {
	t := &Table{Title: title}
	t.Headers = append(t.Headers, xLabel)
	for _, s := range series {
		t.Headers = append(t.Headers, s.Label)
	}
	if len(series) == 0 {
		return t
	}
	for i := range series[0].Points {
		row := []string{fmt.Sprintf("%g", series[0].Points[i].X)}
		for _, s := range series {
			if i < len(s.Points) {
				row = append(row, fmt.Sprintf("%.3f", get(s.Points[i].Result)))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t
}

// GnuplotData writes a sweep as gnuplot-ready blocks (one block per
// series, separated by blank lines, "# label" headers).
func GnuplotData(w io.Writer, series []experiment.Series, get func(*experiment.Result) float64) error {
	for _, s := range series {
		if _, err := fmt.Fprintf(w, "# %s\n", s.Label); err != nil {
			return err
		}
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%g %g\n", p.X, get(p.Result)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
