// Package topology models the grid overlay network of the paper's §2.
//
// The system is a set of grid sites behind edge ("grid overlay") routers
// that form a fully-meshed overlay over a well-provisioned core. The core
// is lossless and queue-free with ample capacity, so the only contended
// resources are the access points: each site has an ingress point with
// capacity Bin and an egress point with capacity Bout. Transfers are
// unidirectional and consume capacity at exactly one ingress and one
// egress point.
package topology

import (
	"fmt"
	"sort"

	"gridbw/internal/units"
)

// PointID identifies an access point within its direction class.
type PointID int

// Direction distinguishes ingress from egress points.
type Direction int

const (
	// Ingress points are where traffic enters the overlay.
	Ingress Direction = iota
	// Egress points are where traffic leaves the overlay.
	Egress
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case Ingress:
		return "ingress"
	case Egress:
		return "egress"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Point is one access point of the overlay.
type Point struct {
	ID       PointID
	Dir      Direction
	Capacity units.Bandwidth
	// Site is the grid site this point belongs to; informational.
	Site string
}

// Network is an immutable overlay description: the ingress set I and the
// egress set E of §2.1 with their capacities.
type Network struct {
	ingress []Point
	egress  []Point
}

// Config describes a network to build.
type Config struct {
	Ingress []units.Bandwidth
	Egress  []units.Bandwidth
	// SiteName, if non-nil, labels point i; defaults to "site-<i>".
	SiteName func(dir Direction, i int) string
}

// New validates cfg and builds a Network.
func New(cfg Config) (*Network, error) {
	if len(cfg.Ingress) == 0 {
		return nil, fmt.Errorf("topology: no ingress points")
	}
	if len(cfg.Egress) == 0 {
		return nil, fmt.Errorf("topology: no egress points")
	}
	name := cfg.SiteName
	if name == nil {
		name = func(dir Direction, i int) string { return fmt.Sprintf("site-%d", i) }
	}
	n := &Network{}
	for i, c := range cfg.Ingress {
		if c < 0 {
			return nil, fmt.Errorf("topology: ingress %d has negative capacity %v", i, c)
		}
		n.ingress = append(n.ingress, Point{ID: PointID(i), Dir: Ingress, Capacity: c, Site: name(Ingress, i)})
	}
	for i, c := range cfg.Egress {
		if c < 0 {
			return nil, fmt.Errorf("topology: egress %d has negative capacity %v", i, c)
		}
		n.egress = append(n.egress, Point{ID: PointID(i), Dir: Egress, Capacity: c, Site: name(Egress, i)})
	}
	return n, nil
}

// Uniform builds the paper's simulation platform (§4.3): m ingress and n
// egress points, all with capacity c. It panics on invalid arguments; use
// New for error handling of untrusted configs.
func Uniform(m, n int, c units.Bandwidth) *Network {
	cfg := Config{
		Ingress: make([]units.Bandwidth, m),
		Egress:  make([]units.Bandwidth, n),
	}
	for i := range cfg.Ingress {
		cfg.Ingress[i] = c
	}
	for i := range cfg.Egress {
		cfg.Egress[i] = c
	}
	net, err := New(cfg)
	if err != nil {
		panic("topology: " + err.Error())
	}
	return net
}

// NumIngress reports the number of ingress points (M in the paper).
func (n *Network) NumIngress() int { return len(n.ingress) }

// NumEgress reports the number of egress points (N in the paper).
func (n *Network) NumEgress() int { return len(n.egress) }

// Bin reports the capacity of ingress point i. It panics on a bad ID.
func (n *Network) Bin(i PointID) units.Bandwidth {
	return n.point(Ingress, i).Capacity
}

// Bout reports the capacity of egress point e. It panics on a bad ID.
func (n *Network) Bout(e PointID) units.Bandwidth {
	return n.point(Egress, e).Capacity
}

// Capacity reports the capacity of the point in the given direction.
func (n *Network) Capacity(dir Direction, id PointID) units.Bandwidth {
	return n.point(dir, id).Capacity
}

// Point returns a copy of the point record.
func (n *Network) Point(dir Direction, id PointID) Point {
	return n.point(dir, id)
}

func (n *Network) point(dir Direction, id PointID) Point {
	var set []Point
	switch dir {
	case Ingress:
		set = n.ingress
	case Egress:
		set = n.egress
	default:
		panic(fmt.Sprintf("topology: bad direction %d", dir))
	}
	if id < 0 || int(id) >= len(set) {
		panic(fmt.Sprintf("topology: %v point %d out of range [0,%d)", dir, id, len(set)))
	}
	return set[int(id)]
}

// TotalCapacity reports the sum of all ingress plus all egress capacities —
// the denominator (before the ½ factor) of the paper's load and
// RESOURCE-UTIL definitions.
func (n *Network) TotalCapacity() units.Bandwidth {
	var sum units.Bandwidth
	for _, p := range n.ingress {
		sum += p.Capacity
	}
	for _, p := range n.egress {
		sum += p.Capacity
	}
	return sum
}

// HalfTotalCapacity is ½·TotalCapacity, the paper's scaling denominator.
func (n *Network) HalfTotalCapacity() units.Bandwidth {
	return n.TotalCapacity() / 2
}

// MinPairCapacity reports min(Bin(i), Bout(e)) — the b_min term of the
// CUMULATED-SLOTS cost factor.
func (n *Network) MinPairCapacity(i, e PointID) units.Bandwidth {
	bi, be := n.Bin(i), n.Bout(e)
	if bi < be {
		return bi
	}
	return be
}

// Validate re-checks internal invariants; it is cheap and intended for
// defensive use at API boundaries.
func (n *Network) Validate() error {
	if len(n.ingress) == 0 || len(n.egress) == 0 {
		return fmt.Errorf("topology: empty point set")
	}
	for _, p := range n.ingress {
		if p.Capacity < 0 {
			return fmt.Errorf("topology: ingress %d negative capacity", p.ID)
		}
	}
	for _, p := range n.egress {
		if p.Capacity < 0 {
			return fmt.Errorf("topology: egress %d negative capacity", p.ID)
		}
	}
	return nil
}

// String summarizes the network, e.g. "overlay[10 in x 10 eg, 20GB/s total]".
func (n *Network) String() string {
	return fmt.Sprintf("overlay[%d in x %d eg, %v total]",
		len(n.ingress), len(n.egress), n.TotalCapacity())
}

// Pairs enumerates all (ingress, egress) pairs in deterministic order.
func (n *Network) Pairs() [][2]PointID {
	out := make([][2]PointID, 0, len(n.ingress)*len(n.egress))
	for i := range n.ingress {
		for e := range n.egress {
			out = append(out, [2]PointID{PointID(i), PointID(e)})
		}
	}
	return out
}

// Sites reports the distinct site labels, sorted.
func (n *Network) Sites() []string {
	seen := map[string]bool{}
	for _, p := range n.ingress {
		seen[p.Site] = true
	}
	for _, p := range n.egress {
		seen[p.Site] = true
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
