package topology

import (
	"strings"
	"testing"
	"testing/quick"

	"gridbw/internal/units"
)

func TestUniform(t *testing.T) {
	n := Uniform(10, 10, 1*units.GBps)
	if n.NumIngress() != 10 || n.NumEgress() != 10 {
		t.Fatalf("size = %dx%d", n.NumIngress(), n.NumEgress())
	}
	for i := 0; i < 10; i++ {
		if n.Bin(PointID(i)) != 1*units.GBps {
			t.Errorf("Bin(%d) = %v", i, n.Bin(PointID(i)))
		}
		if n.Bout(PointID(i)) != 1*units.GBps {
			t.Errorf("Bout(%d) = %v", i, n.Bout(PointID(i)))
		}
	}
	if n.TotalCapacity() != 20*units.GBps {
		t.Errorf("TotalCapacity = %v", n.TotalCapacity())
	}
	if n.HalfTotalCapacity() != 10*units.GBps {
		t.Errorf("HalfTotalCapacity = %v", n.HalfTotalCapacity())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Egress: []units.Bandwidth{1}}); err == nil {
		t.Error("empty ingress accepted")
	}
	if _, err := New(Config{Ingress: []units.Bandwidth{1}}); err == nil {
		t.Error("empty egress accepted")
	}
	if _, err := New(Config{Ingress: []units.Bandwidth{-1}, Egress: []units.Bandwidth{1}}); err == nil {
		t.Error("negative ingress capacity accepted")
	}
	if _, err := New(Config{Ingress: []units.Bandwidth{1}, Egress: []units.Bandwidth{-1}}); err == nil {
		t.Error("negative egress capacity accepted")
	}
}

func TestHeterogeneous(t *testing.T) {
	n, err := New(Config{
		Ingress: []units.Bandwidth{1 * units.GBps, 2 * units.GBps},
		Egress:  []units.Bandwidth{500 * units.MBps},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n.Bin(1) != 2*units.GBps {
		t.Errorf("Bin(1) = %v", n.Bin(1))
	}
	if n.Bout(0) != 500*units.MBps {
		t.Errorf("Bout(0) = %v", n.Bout(0))
	}
	if n.MinPairCapacity(1, 0) != 500*units.MBps {
		t.Errorf("MinPairCapacity = %v", n.MinPairCapacity(1, 0))
	}
	if n.MinPairCapacity(0, 0) != 500*units.MBps {
		t.Errorf("MinPairCapacity = %v", n.MinPairCapacity(0, 0))
	}
}

func TestPointAccessors(t *testing.T) {
	n := Uniform(2, 3, 1*units.GBps)
	p := n.Point(Egress, 2)
	if p.Dir != Egress || p.ID != 2 || p.Capacity != 1*units.GBps {
		t.Errorf("Point = %+v", p)
	}
	if n.Capacity(Ingress, 0) != 1*units.GBps {
		t.Error("Capacity accessor broken")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	n := Uniform(2, 2, 1)
	for _, f := range []func(){
		func() { n.Bin(2) },
		func() { n.Bout(-1) },
		func() { n.Capacity(Direction(9), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad access did not panic")
				}
			}()
			f()
		}()
	}
}

func TestPairs(t *testing.T) {
	n := Uniform(2, 3, 1)
	pairs := n.Pairs()
	if len(pairs) != 6 {
		t.Fatalf("pairs = %d, want 6", len(pairs))
	}
	if pairs[0] != [2]PointID{0, 0} || pairs[5] != [2]PointID{1, 2} {
		t.Errorf("pairs order = %v", pairs)
	}
}

func TestSitesAndNames(t *testing.T) {
	n, err := New(Config{
		Ingress:  []units.Bandwidth{1, 1},
		Egress:   []units.Bandwidth{1},
		SiteName: func(dir Direction, i int) string { return "lyon" },
	})
	if err != nil {
		t.Fatal(err)
	}
	sites := n.Sites()
	if len(sites) != 1 || sites[0] != "lyon" {
		t.Errorf("Sites = %v", sites)
	}

	def := Uniform(2, 2, 1)
	if got := def.Point(Ingress, 1).Site; got != "site-1" {
		t.Errorf("default site = %q", got)
	}
}

func TestString(t *testing.T) {
	s := Uniform(10, 10, 1*units.GBps).String()
	if !strings.Contains(s, "10 in x 10 eg") || !strings.Contains(s, "20GB/s") {
		t.Errorf("String = %q", s)
	}
}

func TestValidate(t *testing.T) {
	if err := Uniform(3, 3, 1).Validate(); err != nil {
		t.Errorf("valid network rejected: %v", err)
	}
}

func TestDirectionString(t *testing.T) {
	if Ingress.String() != "ingress" || Egress.String() != "egress" {
		t.Error("direction strings wrong")
	}
	if !strings.Contains(Direction(7).String(), "7") {
		t.Error("unknown direction string")
	}
}

func TestTotalCapacityProperty(t *testing.T) {
	f := func(m8, n8 uint8, capMBRaw uint16) bool {
		m := int(m8%10) + 1
		n := int(n8%10) + 1
		c := units.Bandwidth(capMBRaw%1000+1) * units.MBps
		net := Uniform(m, n, c)
		want := units.Bandwidth(float64(m+n)) * c
		return units.ApproxEq(float64(net.TotalCapacity()), float64(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
