package tokenbucket_test

import (
	"fmt"
	"log"

	"gridbw/internal/tokenbucket"
	"gridbw/internal/units"
)

// ExampleShape enforces a 100 MB/s grant: the compliant sender passes
// untouched, the 2x cheater loses roughly half its traffic.
func ExampleShape() {
	grant := 100 * units.MBps
	burst := grant.For(1 * units.Second)

	good, err := tokenbucket.Shape(tokenbucket.NewBucket(grant, burst, 0), 0, 100, grant, 10*units.MB)
	if err != nil {
		log.Fatal(err)
	}
	cheat, err := tokenbucket.Shape(tokenbucket.NewBucket(grant, burst, 0), 0, 100, 2*grant, 10*units.MB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compliant: %.0f%% delivered, %d drops\n", 100*good.ConformanceRatio, good.DropEvents)
	fmt.Printf("cheating:  %.0f%% delivered, %d drops\n", 100*cheat.ConformanceRatio, cheat.DropEvents)
	// Output:
	// compliant: 100% delivered, 0 drops
	// cheating:  50% delivered, 991 drops
}
