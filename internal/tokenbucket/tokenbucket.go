// Package tokenbucket implements the client-side rate-enforcement
// substrate of §5.4: "local bandwidth control on the client side (token
// bucket based) … this control ensures that the bulk data flows are
// conform to the scheduling, and, if not, that they are automatically
// dropped so as not to hurt other well behaving TCP flows."
//
// A Bucket accumulates tokens (bytes) at the granted rate up to a burst
// ceiling; each transmission attempt either conforms (consumes tokens) or
// is dropped and counted. A Shaper drives a bucket over simulated time to
// compute how much of an offered traffic profile gets through.
package tokenbucket

import (
	"fmt"

	"gridbw/internal/units"
)

// Bucket is a token bucket: Rate tokens (bytes) per second, capped at
// Burst bytes.
type Bucket struct {
	rate   units.Bandwidth
	burst  units.Volume
	tokens units.Volume
	last   units.Time

	conformed units.Volume
	dropped   units.Volume
	drops     int
}

// NewBucket returns a bucket that starts full at time start.
func NewBucket(rate units.Bandwidth, burst units.Volume, start units.Time) *Bucket {
	if rate <= 0 {
		panic(fmt.Sprintf("tokenbucket: non-positive rate %v", rate))
	}
	if burst <= 0 {
		panic(fmt.Sprintf("tokenbucket: non-positive burst %v", burst))
	}
	return &Bucket{rate: rate, burst: burst, tokens: burst, last: start}
}

// Rate reports the refill rate.
func (b *Bucket) Rate() units.Bandwidth { return b.rate }

// Burst reports the bucket depth.
func (b *Bucket) Burst() units.Volume { return b.burst }

// refill advances the bucket to time now. Time must not move backwards.
func (b *Bucket) refill(now units.Time) {
	if now < b.last {
		panic(fmt.Sprintf("tokenbucket: time moved backwards (%v < %v)", now, b.last))
	}
	b.tokens += b.rate.For(now - b.last)
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
}

// Tokens reports the token level at time now.
func (b *Bucket) Tokens(now units.Time) units.Volume {
	b.refill(now)
	return b.tokens
}

// Offer presents size bytes at time now. It returns true and consumes
// tokens when the transmission conforms; otherwise the whole burst is
// dropped (non-conforming grid flows are dropped, not queued — §5.4).
func (b *Bucket) Offer(now units.Time, size units.Volume) bool {
	if size < 0 {
		panic(fmt.Sprintf("tokenbucket: negative offer %v", size))
	}
	b.refill(now)
	if size <= b.tokens+units.Volume(units.Eps)*b.burst {
		if size > b.tokens {
			size = b.tokens
		}
		b.tokens -= size
		b.conformed += size
		return true
	}
	b.dropped += size
	b.drops++
	return false
}

// Conformed reports the total bytes that passed.
func (b *Bucket) Conformed() units.Volume { return b.conformed }

// Dropped reports the total bytes dropped and the number of drop events.
func (b *Bucket) Dropped() (units.Volume, int) { return b.dropped, b.drops }

// ShaperReport summarizes a shaping run.
type ShaperReport struct {
	// Offered and Delivered are total bytes in and out.
	Offered, Delivered units.Volume
	// Dropped is Offered − Delivered.
	Dropped units.Volume
	// DropEvents counts rejected transmissions.
	DropEvents int
	// ConformanceRatio is Delivered / Offered (1 when nothing offered).
	ConformanceRatio float64
}

// Shape runs an offered constant-rate traffic profile through a bucket:
// a flow that believes it may send at offeredRate emits chunkSize bursts
// back to back from start for the given duration. It returns the
// delivery report — for a conforming flow (offeredRate <= bucket rate)
// everything passes; a cheating flow sees proportional drops.
func Shape(b *Bucket, start units.Time, duration units.Time, offeredRate units.Bandwidth, chunkSize units.Volume) (ShaperReport, error) {
	if duration <= 0 || offeredRate <= 0 || chunkSize <= 0 {
		return ShaperReport{}, fmt.Errorf("tokenbucket: bad shape parameters (dur %v, rate %v, chunk %v)",
			duration, offeredRate, chunkSize)
	}
	interval := chunkSize.Over(offeredRate)
	// Integer chunk count avoids float accumulation admitting a stray
	// extra chunk when duration divides the interval exactly.
	chunks := int(float64(duration)/float64(interval) + units.Eps)
	var rep ShaperReport
	for i := 0; i < chunks; i++ {
		at := start + interval*units.Time(i)
		rep.Offered += chunkSize
		if b.Offer(at, chunkSize) {
			rep.Delivered += chunkSize
		} else {
			rep.DropEvents++
		}
	}
	rep.Dropped = rep.Offered - rep.Delivered
	if rep.Offered > 0 {
		rep.ConformanceRatio = float64(rep.Delivered) / float64(rep.Offered)
	} else {
		rep.ConformanceRatio = 1
	}
	return rep, nil
}
