package tokenbucket

import (
	"math"
	"testing"
	"testing/quick"

	"gridbw/internal/units"
)

func TestNewBucketPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewBucket(0, 1, 0) },
		func() { NewBucket(1, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad bucket did not panic")
				}
			}()
			f()
		}()
	}
}

func TestStartsFull(t *testing.T) {
	b := NewBucket(100*units.MBps, 1*units.GB, 0)
	if got := b.Tokens(0); got != 1*units.GB {
		t.Errorf("initial tokens = %v", got)
	}
	if b.Rate() != 100*units.MBps || b.Burst() != 1*units.GB {
		t.Error("accessors wrong")
	}
}

func TestRefillCapsAtBurst(t *testing.T) {
	b := NewBucket(100*units.MBps, 1*units.GB, 0)
	if !b.Offer(0, 1*units.GB) {
		t.Fatal("full-burst offer rejected")
	}
	// After 5 s only 500 MB refilled.
	if got := b.Tokens(5); !units.ApproxEq(float64(got), float64(500*units.MB)) {
		t.Errorf("tokens(5) = %v", got)
	}
	// After a long time, capped at burst.
	if got := b.Tokens(1000); got != 1*units.GB {
		t.Errorf("tokens(1000) = %v", got)
	}
}

func TestOfferConformAndDrop(t *testing.T) {
	b := NewBucket(100*units.MBps, 100*units.MB, 0)
	if !b.Offer(0, 100*units.MB) {
		t.Fatal("conforming offer dropped")
	}
	// Bucket empty; immediate second chunk must drop.
	if b.Offer(0, 100*units.MB) {
		t.Fatal("non-conforming offer passed")
	}
	// One second later 100 MB refilled.
	if !b.Offer(1, 100*units.MB) {
		t.Fatal("refilled offer dropped")
	}
	if got := b.Conformed(); got != 200*units.MB {
		t.Errorf("conformed = %v", got)
	}
	if vol, n := b.Dropped(); vol != 100*units.MB || n != 1 {
		t.Errorf("dropped = %v, %d", vol, n)
	}
}

func TestTimeBackwardsPanics(t *testing.T) {
	b := NewBucket(1*units.MBps, 1*units.MB, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards time did not panic")
		}
	}()
	b.Offer(5, 1)
}

func TestNegativeOfferPanics(t *testing.T) {
	b := NewBucket(1*units.MBps, 1*units.MB, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("negative offer did not panic")
		}
	}()
	b.Offer(0, -1)
}

func TestShapeConformingFlowPassesEverything(t *testing.T) {
	b := NewBucket(100*units.MBps, 100*units.MB, 0)
	rep, err := Shape(b, 0, 100, 100*units.MBps, 10*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ConformanceRatio != 1 || rep.DropEvents != 0 {
		t.Errorf("conforming flow: ratio %v, drops %d", rep.ConformanceRatio, rep.DropEvents)
	}
	if rep.Offered != 10*units.GB {
		t.Errorf("offered = %v", rep.Offered)
	}
}

func TestShapeCheatingFlowDropsProportionally(t *testing.T) {
	// Grant 100 MB/s, flow sends at 200 MB/s: about half must drop once
	// the initial burst is spent.
	b := NewBucket(100*units.MBps, 50*units.MB, 0)
	rep, err := Shape(b, 0, 1000, 200*units.MBps, 10*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DropEvents == 0 {
		t.Fatal("cheating flow saw no drops")
	}
	if math.Abs(rep.ConformanceRatio-0.5) > 0.05 {
		t.Errorf("conformance ratio = %v, want ~0.5", rep.ConformanceRatio)
	}
}

func TestShapeBadParams(t *testing.T) {
	b := NewBucket(1*units.MBps, 1*units.MB, 0)
	if _, err := Shape(b, 0, 0, 1, 1); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := Shape(b, 0, 1, 0, 1); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := Shape(b, 0, 1, 1, 0); err == nil {
		t.Error("zero chunk accepted")
	}
}

// TestNeverExceedsLongTermRate: over any horizon the delivered volume is
// bounded by burst + rate·time, whatever the offered pattern.
func TestNeverExceedsLongTermRate(t *testing.T) {
	f := func(rateMB, burstMB, offeredMB uint8, durS uint16) bool {
		rate := units.Bandwidth(rateMB%100+1) * units.MBps
		burst := units.Volume(burstMB%100+1) * units.MB
		offered := units.Bandwidth(offeredMB%200+1) * units.MBps
		dur := units.Time(durS%1000 + 1)
		b := NewBucket(rate, burst, 0)
		rep, err := Shape(b, 0, dur, offered, 5*units.MB)
		if err != nil {
			return false
		}
		bound := burst + rate.For(dur)
		return float64(rep.Delivered) <= float64(bound)*(1+units.Eps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestConformingNeverDrops: offered rate at or below the granted rate
// (with chunk <= burst) never drops.
func TestConformingNeverDrops(t *testing.T) {
	f := func(rateMB uint8, durS uint16) bool {
		rate := units.Bandwidth(rateMB%100+1) * units.MBps
		b := NewBucket(rate, 10*units.MB, 0)
		rep, err := Shape(b, 0, units.Time(durS%500+1), rate, 10*units.MB)
		if err != nil {
			return false
		}
		return rep.DropEvents == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
