package faults_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"gridbw/internal/faults"
	"gridbw/internal/wal"
)

func openWAL(t *testing.T, dir string, fsys wal.FS, policy wal.SyncPolicy) *wal.Log {
	t.Helper()
	l, _, err := wal.Open(dir, wal.Options{Policy: policy, FS: fsys})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	return l
}

// An injected fsync error must poison the log: the failing append errors,
// every later append and sync returns ErrPoisoned even though the disk
// "works" again, and only a reopen recovers.
func TestFsyncErrorPoisonsWAL(t *testing.T) {
	dir := t.TempDir()
	dfs := faults.NewDiskFS(nil, faults.DiskConfig{})
	l := openWAL(t, dir, dfs, wal.SyncAlways)

	if _, err := l.Append([]byte("healthy")); err != nil {
		t.Fatalf("append: %v", err)
	}
	dfs.FailNextFsyncs(1)
	if _, err := l.Append([]byte("doomed")); !errors.Is(err, wal.ErrPoisoned) {
		t.Fatalf("append under fsync fault: got %v, want ErrPoisoned", err)
	}
	// The fault is gone, but the poison must stick: the dropped dirty
	// pages cannot be re-synced by retrying.
	if _, err := l.Append([]byte("retry")); !errors.Is(err, wal.ErrPoisoned) {
		t.Fatalf("append after fault cleared: got %v, want ErrPoisoned", err)
	}
	if err := l.Sync(); !errors.Is(err, wal.ErrPoisoned) {
		t.Fatalf("sync on poisoned log: got %v, want ErrPoisoned", err)
	}
	if l.Poisoned() == nil {
		t.Fatal("Poisoned() = nil on poisoned log")
	}
	l.Close()

	// Restart recovers: the doomed record was written before its failed
	// fsync, so recovery may keep or drop it, but the log must accept
	// appends again and stay frame-consistent.
	l2, rec, err := wal.Open(dir, wal.Options{Policy: wal.SyncAlways})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if rec.Records < 1 {
		t.Fatalf("recovery lost the synced record: %v", rec)
	}
	if _, err := l2.Append([]byte("after restart")); err != nil {
		t.Fatalf("append after restart: %v", err)
	}
}

// A short write must poison the log, and a reopen must truncate the torn
// frame so exactly the pre-fault records survive.
func TestShortWritePoisonsAndRecoveryTruncates(t *testing.T) {
	// The injected frame is 8+6=14 bytes; keep strictly less than that so
	// the tail is genuinely torn (a 14-byte "short" write is a full frame
	// and legitimately survives recovery).
	for keep := int64(0); keep < 14; keep++ {
		t.Run(fmt.Sprintf("keep=%d", keep), func(t *testing.T) {
			dir := t.TempDir()
			dfs := faults.NewDiskFS(nil, faults.DiskConfig{})
			l := openWAL(t, dir, dfs, wal.SyncAlways)
			if _, err := l.Append([]byte("first")); err != nil {
				t.Fatalf("append: %v", err)
			}
			dfs.ShortNextWrite(keep)
			if _, err := l.Append([]byte("second")); !errors.Is(err, wal.ErrPoisoned) {
				t.Fatalf("short write: got %v, want ErrPoisoned", err)
			}
			if _, err := l.Append([]byte("third")); !errors.Is(err, wal.ErrPoisoned) {
				t.Fatalf("append after short write: got %v, want ErrPoisoned", err)
			}
			l.Close()

			l2, rec, err := wal.Open(dir, wal.Options{Policy: wal.SyncAlways})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer l2.Close()
			if rec.Records != 1 {
				t.Fatalf("recovered %d records, want exactly the pre-fault 1 (recovery %v)", rec.Records, rec)
			}
			payloads, _, _, err := l2.ReadFrom(wal.Pos{}, 16, 1<<20)
			if err != nil {
				t.Fatalf("ReadFrom: %v", err)
			}
			if len(payloads) != 1 || string(payloads[0]) != "first" {
				t.Fatalf("survivors = %q, want [first]", payloads)
			}
		})
	}
}

// Injected ENOSPC surfaces as a real ENOSPC to callers and poisons the
// append path.
func TestENOSPCPoisons(t *testing.T) {
	dir := t.TempDir()
	dfs := faults.NewDiskFS(nil, faults.DiskConfig{})
	l := openWAL(t, dir, dfs, wal.SyncAlways)
	defer l.Close()
	dfs.FailNextENOSPC(1)
	_, err := l.Append([]byte("full"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append: got %v, want ENOSPC", err)
	}
	if !errors.Is(err, wal.ErrPoisoned) && l.Poisoned() == nil {
		t.Fatalf("ENOSPC did not poison the log: %v", err)
	}
}

// A failed meta rename must leave the previous value intact and no *.tmp
// debris behind.
func TestMetaRenameFailureKeepsOldValue(t *testing.T) {
	dir := t.TempDir()
	dfs := faults.NewDiskFS(nil, faults.DiskConfig{})
	l := openWAL(t, dir, dfs, wal.SyncAlways)
	defer l.Close()

	if err := l.SaveEpoch(3); err != nil {
		t.Fatalf("SaveEpoch: %v", err)
	}
	dfs.FailNextRenames(1)
	if err := l.SaveEpoch(4); err == nil {
		t.Fatal("SaveEpoch under rename fault: want error")
	}
	got, err := wal.LoadEpoch(dir)
	if err != nil {
		t.Fatalf("LoadEpoch: %v", err)
	}
	if got != 3 {
		t.Fatalf("epoch after failed rename = %d, want the old 3", got)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Fatalf("tmp debris left behind: %s", e.Name())
		}
	}
	// A dir-fsync failure also surfaces as an error (the rename may not
	// be durable) without corrupting the readable value.
	dfs.FailNextDirSyncs(1)
	if err := l.SaveEpoch(5); err == nil {
		t.Fatal("SaveEpoch under dir-fsync fault: want error")
	}
	if got, _ := wal.LoadEpoch(dir); got != 3 && got != 5 {
		t.Fatalf("epoch after failed dir fsync = %d, want old 3 or new 5", got)
	}
}

// The probabilistic schedule is a pure function of its seed.
func TestDiskFaultDeterminism(t *testing.T) {
	run := func() (faults.DiskStats, []string) {
		dir := t.TempDir()
		dfs := faults.NewDiskFS(nil, faults.DiskConfig{
			Seed: 42, ShortWrite: 0.2, FsyncErr: 0.2, WriteErr: 0.1,
		})
		l := openWAL(t, dir, dfs, wal.SyncAlways)
		defer l.Close()
		var outcomes []string
		for i := 0; i < 50; i++ {
			_, err := l.Append([]byte(strings.Repeat("x", 32)))
			if err != nil {
				outcomes = append(outcomes, fmt.Sprintf("%d:%v", i, errors.Is(err, wal.ErrPoisoned)))
				break
			}
			outcomes = append(outcomes, fmt.Sprintf("%d:ok", i))
		}
		return dfs.Stats(), outcomes
	}
	s1, o1 := run()
	s2, o2 := run()
	if s1 != s2 {
		t.Fatalf("stats differ across identical seeds: %+v vs %+v", s1, s2)
	}
	if fmt.Sprint(o1) != fmt.Sprint(o2) {
		t.Fatalf("outcomes differ across identical seeds:\n%v\n%v", o1, o2)
	}
}
