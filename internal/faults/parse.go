package faults

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseDiskConfig reads the -chaos-disk flag syntax: comma-separated
// key=value pairs, e.g. "seed=7,fsync=0.01,short=0.005". Keys are seed
// (int) plus the per-operation fault probabilities short, write, fsync,
// enospc, rename, dirsync (floats in [0,1]). Unknown keys, bad numbers
// and out-of-range probabilities are errors — a chaos schedule with a
// typo silently injecting nothing would defeat the point.
func ParseDiskConfig(spec string) (DiskConfig, error) {
	var cfg DiskConfig
	for _, pair := range strings.Split(spec, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			return DiskConfig{}, fmt.Errorf("chaos-disk: %q is not key=value", pair)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		if k == "seed" {
			seed, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return DiskConfig{}, fmt.Errorf("chaos-disk: seed %q: %w", v, err)
			}
			cfg.Seed = seed
			continue
		}
		p, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return DiskConfig{}, fmt.Errorf("chaos-disk: %s %q: %w", k, v, err)
		}
		if p < 0 || p > 1 {
			return DiskConfig{}, fmt.Errorf("chaos-disk: %s=%v is not a probability in [0,1]", k, p)
		}
		switch k {
		case "short":
			cfg.ShortWrite = p
		case "write":
			cfg.WriteErr = p
		case "fsync":
			cfg.FsyncErr = p
		case "enospc":
			cfg.ENOSPC = p
		case "rename":
			cfg.RenameErr = p
		case "dirsync":
			cfg.DirSyncErr = p
		default:
			return DiskConfig{}, fmt.Errorf("chaos-disk: unknown key %q", k)
		}
	}
	return cfg, nil
}
