package faults

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"
	"syscall"

	"gridbw/internal/rng"
	"gridbw/internal/wal"
)

// DiskFS is an errfs-style fault-injecting filesystem for the WAL and
// snapshot writers: it wraps a wal.FS and makes writes come up short,
// fsyncs fail, disks fill, renames tear, and directory fsyncs lie —
// exactly the storage faults a fail-stop design must turn into refusals
// rather than silent corruption.
//
// Faults come in two flavors:
//
//   - Scripted one-shots (FailNextFsync, ShortNextWrite, ...) fire on
//     the next matching operation regardless of arming — the precise
//     tool for regression tests ("the rename under this snapshot write
//     fails").
//   - Probabilistic faults (DiskConfig rates) draw from a seeded
//     internal/rng stream while the injector is Armed, so a chaos run's
//     disk-fault schedule is a pure function of its seed.
//
// All methods are safe for concurrent use.

// ErrInjected is the root of every injected disk error; injected ENOSPC
// additionally satisfies errors.Is(err, syscall.ENOSPC).
var ErrInjected = errors.New("faults: injected disk fault")

// DiskConfig sets the seeded probabilistic fault rates, each the
// per-operation probability in [0,1].
type DiskConfig struct {
	Seed int64
	// ShortWrite makes a write persist only a random prefix before
	// erroring — the torn-append case recovery must truncate.
	ShortWrite float64
	// WriteErr fails a write outright with nothing persisted.
	WriteErr float64
	// FsyncErr fails a file fsync; the data may or may not reach disk
	// (the fsyncgate hazard), so the caller must fail-stop.
	FsyncErr float64
	// ENOSPC fails a write with syscall.ENOSPC.
	ENOSPC float64
	// RenameErr fails a rename, leaving the old name in place.
	RenameErr float64
	// DirSyncErr fails a directory fsync after create/rename/remove.
	DirSyncErr float64
}

// Enabled reports whether any probabilistic rate is set.
func (c DiskConfig) Enabled() bool {
	return c.ShortWrite > 0 || c.WriteErr > 0 || c.FsyncErr > 0 ||
		c.ENOSPC > 0 || c.RenameErr > 0 || c.DirSyncErr > 0
}

// DiskStats counts the faults actually injected.
type DiskStats struct {
	ShortWrites uint64 `json:"short_writes"`
	WriteErrs   uint64 `json:"write_errs"`
	FsyncErrs   uint64 `json:"fsync_errs"`
	ENOSPCs     uint64 `json:"enospcs"`
	RenameErrs  uint64 `json:"rename_errs"`
	DirSyncErrs uint64 `json:"dir_sync_errs"`
}

// Total sums every injected fault.
func (s DiskStats) Total() uint64 {
	return s.ShortWrites + s.WriteErrs + s.FsyncErrs + s.ENOSPCs + s.RenameErrs + s.DirSyncErrs
}

// DiskFS implements wal.FS with injected faults over an inner FS
// (default the real OS filesystem).
type DiskFS struct {
	inner wal.FS
	cfg   DiskConfig

	mu    sync.Mutex
	src   *rng.Source
	armed bool
	// Scripted one-shots; negative shortKeep means "no short write
	// scripted".
	shortKeep   int64
	failWrites  int
	failENOSPC  int
	failFsyncs  int
	failRenames int
	failDirSync int
	st          DiskStats
}

// NewDiskFS wraps inner (nil means the real filesystem) with the seeded
// fault schedule; it starts armed iff cfg has any nonzero rate.
func NewDiskFS(inner wal.FS, cfg DiskConfig) *DiskFS {
	if inner == nil {
		inner = wal.OSFS{}
	}
	return &DiskFS{
		inner:     inner,
		cfg:       cfg,
		src:       rng.New(cfg.Seed).Split("diskfaults"),
		armed:     cfg.Enabled(),
		shortKeep: -1,
	}
}

// Arm enables or disables the probabilistic faults; scripted one-shots
// fire regardless.
func (d *DiskFS) Arm(on bool) {
	d.mu.Lock()
	d.armed = on
	d.mu.Unlock()
}

// ShortNextWrite scripts the next write to persist exactly keep bytes
// (clamped to the write's length) and then fail.
func (d *DiskFS) ShortNextWrite(keep int64) {
	d.mu.Lock()
	d.shortKeep = keep
	d.mu.Unlock()
}

// FailNextWrites scripts the next n writes to fail with nothing written.
func (d *DiskFS) FailNextWrites(n int) { d.mu.Lock(); d.failWrites = n; d.mu.Unlock() }

// FailNextENOSPC scripts the next n writes to fail with ENOSPC.
func (d *DiskFS) FailNextENOSPC(n int) { d.mu.Lock(); d.failENOSPC = n; d.mu.Unlock() }

// FailNextFsyncs scripts the next n file fsyncs to fail.
func (d *DiskFS) FailNextFsyncs(n int) { d.mu.Lock(); d.failFsyncs = n; d.mu.Unlock() }

// FailNextRenames scripts the next n renames to fail.
func (d *DiskFS) FailNextRenames(n int) { d.mu.Lock(); d.failRenames = n; d.mu.Unlock() }

// FailNextDirSyncs scripts the next n directory fsyncs to fail.
func (d *DiskFS) FailNextDirSyncs(n int) { d.mu.Lock(); d.failDirSync = n; d.mu.Unlock() }

// Stats reports the faults injected so far.
func (d *DiskFS) Stats() DiskStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.st
}

// writeFault decides the fate of an n-byte write: keep < 0 means let it
// through; err != nil with keep >= 0 means persist keep bytes then fail.
func (d *DiskFS) writeFault(n int) (keep int64, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch {
	case d.shortKeep >= 0:
		keep = d.shortKeep
		if keep > int64(n) {
			keep = int64(n)
		}
		d.shortKeep = -1
		d.st.ShortWrites++
		return keep, fmt.Errorf("%w: short write (%d of %d bytes)", ErrInjected, keep, n)
	case d.failWrites > 0:
		d.failWrites--
		d.st.WriteErrs++
		return 0, fmt.Errorf("%w: write error", ErrInjected)
	case d.failENOSPC > 0:
		d.failENOSPC--
		d.st.ENOSPCs++
		return 0, fmt.Errorf("%w: %w", ErrInjected, syscall.ENOSPC)
	}
	if !d.armed {
		return -1, nil
	}
	switch {
	case d.cfg.ShortWrite > 0 && d.src.Bool(d.cfg.ShortWrite):
		keep = int64(d.src.Intn(n + 1))
		d.st.ShortWrites++
		return keep, fmt.Errorf("%w: short write (%d of %d bytes)", ErrInjected, keep, n)
	case d.cfg.WriteErr > 0 && d.src.Bool(d.cfg.WriteErr):
		d.st.WriteErrs++
		return 0, fmt.Errorf("%w: write error", ErrInjected)
	case d.cfg.ENOSPC > 0 && d.src.Bool(d.cfg.ENOSPC):
		d.st.ENOSPCs++
		return 0, fmt.Errorf("%w: %w", ErrInjected, syscall.ENOSPC)
	}
	return -1, nil
}

func (d *DiskFS) fsyncFault() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failFsyncs > 0 {
		d.failFsyncs--
		d.st.FsyncErrs++
		return fmt.Errorf("%w: fsync error", ErrInjected)
	}
	if d.armed && d.cfg.FsyncErr > 0 && d.src.Bool(d.cfg.FsyncErr) {
		d.st.FsyncErrs++
		return fmt.Errorf("%w: fsync error", ErrInjected)
	}
	return nil
}

func (d *DiskFS) renameFault() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failRenames > 0 {
		d.failRenames--
		d.st.RenameErrs++
		return fmt.Errorf("%w: rename error", ErrInjected)
	}
	if d.armed && d.cfg.RenameErr > 0 && d.src.Bool(d.cfg.RenameErr) {
		d.st.RenameErrs++
		return fmt.Errorf("%w: rename error", ErrInjected)
	}
	return nil
}

func (d *DiskFS) dirSyncFault() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failDirSync > 0 {
		d.failDirSync--
		d.st.DirSyncErrs++
		return fmt.Errorf("%w: dir fsync error", ErrInjected)
	}
	if d.armed && d.cfg.DirSyncErr > 0 && d.src.Bool(d.cfg.DirSyncErr) {
		d.st.DirSyncErrs++
		return fmt.Errorf("%w: dir fsync error", ErrInjected)
	}
	return nil
}

// faultFile interposes on the write path of one open file; reads and
// seeks pass through untouched.
type faultFile struct {
	wal.File
	d *DiskFS
}

func (f *faultFile) Write(p []byte) (int, error) {
	keep, err := f.d.writeFault(len(p))
	if err != nil {
		n := 0
		if keep > 0 {
			// The prefix genuinely reaches the inner file — this is what a
			// torn append looks like on a real disk.
			n, _ = f.File.Write(p[:keep])
		}
		return n, err
	}
	return f.File.Write(p)
}

func (f *faultFile) Sync() error {
	if err := f.d.fsyncFault(); err != nil {
		// Deliberately skip the inner fsync: after a real failed fsync the
		// page cache state is unknowable, which is the whole hazard.
		return err
	}
	return f.File.Sync()
}

// wal.FS implementation: write-capable opens get the fault interposer,
// metadata reads pass straight through.

func (d *DiskFS) OpenFile(name string, flag int, perm os.FileMode) (wal.File, error) {
	f, err := d.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: f, d: d}, nil
}

func (d *DiskFS) Open(name string) (wal.File, error) { return d.inner.Open(name) }

func (d *DiskFS) Create(name string) (wal.File, error) {
	f, err := d.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: f, d: d}, nil
}

func (d *DiskFS) Rename(oldpath, newpath string) error {
	if err := d.renameFault(); err != nil {
		return err
	}
	return d.inner.Rename(oldpath, newpath)
}

func (d *DiskFS) Remove(name string) error               { return d.inner.Remove(name) }
func (d *DiskFS) Truncate(name string, size int64) error { return d.inner.Truncate(name, size) }
func (d *DiskFS) Stat(name string) (os.FileInfo, error)  { return d.inner.Stat(name) }
func (d *DiskFS) ReadDir(name string) ([]fs.DirEntry, error) {
	return d.inner.ReadDir(name)
}
func (d *DiskFS) ReadFile(name string) ([]byte, error) { return d.inner.ReadFile(name) }
func (d *DiskFS) MkdirAll(path string, perm os.FileMode) error {
	return d.inner.MkdirAll(path, perm)
}

func (d *DiskFS) SyncDir(dir string) error {
	if err := d.dirSyncFault(); err != nil {
		return err
	}
	return d.inner.SyncDir(dir)
}
