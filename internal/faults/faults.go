// Package faults injects deterministic, seeded failures into the
// distributed reservation protocol: message drop, latency jitter,
// duplication, and router crash-restart outages.
//
// Every fault decision is drawn from named internal/rng streams split off
// a single seed, so a fault schedule is a pure function of its Config:
// the invariant harness replays the exact same drops and outages on every
// run, and a failing seed reproduces bit-identically.
//
// Crash-restart follows the gridbwd durability model — a router's
// reservation state survives an outage (it is snapshotted, like the
// daemon's ledger), so a crash manifests as the loss of every message
// that arrives while the router is down. Recovery is the protocol's job:
// retransmission and reservation timeouts, not injector magic.
package faults

import (
	"fmt"

	"gridbw/internal/metrics"
	"gridbw/internal/rng"
	"gridbw/internal/units"
)

// Config is a reproducible fault schedule.
type Config struct {
	// Seed determines every fault decision; equal configs replay equal
	// schedules.
	Seed int64
	// Drop is the per-copy probability that a message copy vanishes in
	// flight. Drop == 1 severs the channel completely (useful in tests);
	// the protocol must then resolve every hold by timeout.
	Drop float64
	// Duplicate is the probability that a send emits two copies instead
	// of one — the classic at-least-once hazard commits must tolerate.
	Duplicate float64
	// Jitter adds a uniform [0, Jitter) latency on top of the base delay,
	// drawn independently per copy, so duplicates and retransmissions
	// arrive out of order.
	Jitter units.Time
	// MeanUp and MeanDown alternate exponential router uptime and outage
	// windows. MeanDown == 0 disables crashes; otherwise MeanUp must be
	// positive.
	MeanUp, MeanDown units.Time
}

// Validate checks the schedule's parameters.
func (c Config) Validate() error {
	if c.Drop < 0 || c.Drop > 1 {
		return fmt.Errorf("faults: drop probability %v outside [0,1]", c.Drop)
	}
	if c.Duplicate < 0 || c.Duplicate > 1 {
		return fmt.Errorf("faults: duplicate probability %v outside [0,1]", c.Duplicate)
	}
	if c.Jitter < 0 {
		return fmt.Errorf("faults: negative jitter %v", c.Jitter)
	}
	if c.MeanUp < 0 || c.MeanDown < 0 {
		return fmt.Errorf("faults: negative crash window means")
	}
	if c.MeanDown > 0 && c.MeanUp <= 0 {
		return fmt.Errorf("faults: crash windows need MeanUp > 0")
	}
	return nil
}

// Enabled reports whether the schedule can perturb anything at all.
func (c Config) Enabled() bool {
	return c.Drop > 0 || c.Duplicate > 0 || c.Jitter > 0 || c.MeanDown > 0
}

type window struct{ from, to units.Time }

// outageTrack lazily extends one router's alternating up/down schedule.
type outageTrack struct {
	src     *rng.Source
	upto    units.Time // schedule generated for [0, upto)
	windows []window   // ascending, disjoint down windows
}

// Injector draws fault decisions for a protocol run. It is not safe for
// concurrent use; the DES kernel is single-threaded by design.
type Injector struct {
	cfg     Config
	fate    *rng.Source
	crash   *rng.Source
	outages map[string]*outageTrack
	stats   metrics.FaultCounters
}

// New returns an injector for the schedule.
func New(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	return &Injector{
		cfg:     cfg,
		fate:    root.Split("fate"),
		crash:   root.Split("crash"),
		outages: make(map[string]*outageTrack),
	}, nil
}

// Deliveries returns the latency of every copy of one message that
// survives the channel, each at least base. An empty slice is a lost
// message; two entries are a duplicated one.
func (inj *Injector) Deliveries(base units.Time) []units.Time {
	inj.stats.Sent++
	copies := 1
	if inj.cfg.Duplicate > 0 && inj.fate.Bool(inj.cfg.Duplicate) {
		copies = 2
		inj.stats.Duplicated++
	}
	var out []units.Time
	for i := 0; i < copies; i++ {
		if inj.cfg.Drop > 0 && inj.fate.Bool(inj.cfg.Drop) {
			inj.stats.Dropped++
			continue
		}
		d := base
		if inj.cfg.Jitter > 0 {
			d += units.Time(inj.fate.Uniform(0, float64(inj.cfg.Jitter)))
		}
		out = append(out, d)
	}
	return out
}

// Arrive reports whether router key accepts a message at instant at: a
// crashed router loses it. Keys name routers (e.g. "in/3", "eg/0"); each
// key gets an independent, deterministic outage schedule.
func (inj *Injector) Arrive(key string, at units.Time) bool {
	if inj.down(key, at) {
		inj.stats.CrashLost++
		return false
	}
	inj.stats.Delivered++
	return true
}

func (inj *Injector) down(key string, at units.Time) bool {
	if inj.cfg.MeanDown <= 0 {
		return false
	}
	tr := inj.outages[key]
	if tr == nil {
		tr = &outageTrack{src: inj.crash.Split(key)}
		inj.outages[key] = tr
	}
	for tr.upto <= at {
		up := units.Time(tr.src.Exp(float64(inj.cfg.MeanUp)))
		down := units.Time(tr.src.Exp(float64(inj.cfg.MeanDown)))
		from := tr.upto + up
		tr.windows = append(tr.windows, window{from: from, to: from + down})
		tr.upto = from + down
	}
	// Scan newest-first: queries cluster near the schedule frontier.
	for i := len(tr.windows) - 1; i >= 0; i-- {
		w := tr.windows[i]
		if at >= w.to {
			return false
		}
		if at >= w.from {
			return true
		}
	}
	return false
}

// Stats reports the channel-level counters accumulated so far.
func (inj *Injector) Stats() metrics.FaultCounters { return inj.stats }

// Crasher draws SIGKILL-equivalent crash points for the durable-log
// harness: each Offset is a byte position at which the WAL (or decision
// log) is truncated before a restart, simulating a kernel that got an
// arbitrary prefix of the final write to disk. Like every fault source
// here it is a pure function of its seed, so a failing crash schedule
// replays bit-identically.
type Crasher struct {
	src *rng.Source
}

// NewCrasher returns a seeded crash-point source.
func NewCrasher(seed int64) *Crasher {
	return &Crasher{src: rng.New(seed).Split("crash-offsets")}
}

// Offset draws a truncation offset in [lo, hi). A degenerate range
// returns lo.
func (c *Crasher) Offset(lo, hi int64) int64 {
	if hi <= lo {
		return lo
	}
	off := lo + int64(c.src.Float64()*float64(hi-lo))
	if off >= hi {
		off = hi - 1
	}
	return off
}
