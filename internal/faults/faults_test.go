package faults

import (
	"testing"

	"gridbw/internal/units"
)

func TestConfigValidate(t *testing.T) {
	good := []Config{
		{},
		{Drop: 1},
		{Duplicate: 1},
		{Jitter: 5},
		{MeanUp: 10, MeanDown: 1},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("%+v: %v", c, err)
		}
	}
	bad := []Config{
		{Drop: -0.1},
		{Drop: 1.1},
		{Duplicate: 2},
		{Jitter: -1},
		{MeanDown: 5}, // crashes without uptime
		{MeanUp: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v accepted", c)
		}
	}
}

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config enabled")
	}
	for _, c := range []Config{{Drop: 0.1}, {Duplicate: 0.1}, {Jitter: 1}, {MeanUp: 1, MeanDown: 1}} {
		if !c.Enabled() {
			t.Errorf("%+v not enabled", c)
		}
	}
}

// TestDeterminism: the same config replays the same fate sequence and
// outage schedule.
func TestDeterminism(t *testing.T) {
	run := func() ([]int, []bool) {
		inj, err := New(Config{Seed: 7, Drop: 0.3, Duplicate: 0.4, Jitter: 2, MeanUp: 10, MeanDown: 3})
		if err != nil {
			t.Fatal(err)
		}
		var copies []int
		var downs []bool
		for i := 0; i < 200; i++ {
			copies = append(copies, len(inj.Deliveries(1)))
			downs = append(downs, !inj.Arrive("in/0", units.Time(i)))
		}
		return copies, downs
	}
	c1, d1 := run()
	c2, d2 := run()
	for i := range c1 {
		if c1[i] != c2[i] || d1[i] != d2[i] {
			t.Fatalf("diverged at draw %d: copies %d vs %d, down %v vs %v",
				i, c1[i], c2[i], d1[i], d2[i])
		}
	}
}

func TestDropAndDuplicateRates(t *testing.T) {
	inj, err := New(Config{Seed: 1, Drop: 0.5, Duplicate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	total := 0
	for i := 0; i < n; i++ {
		total += len(inj.Deliveries(1))
	}
	// E[copies] = 1.5, E[survivors] = 0.75 per send.
	mean := float64(total) / n
	if mean < 0.65 || mean > 0.85 {
		t.Errorf("mean surviving copies = %.3f, want ≈ 0.75", mean)
	}
	st := inj.Stats()
	if st.Sent != n {
		t.Errorf("sent = %d", st.Sent)
	}
	if st.Dropped == 0 || st.Duplicated == 0 {
		t.Errorf("no drops (%d) or duplicates (%d) recorded", st.Dropped, st.Duplicated)
	}
}

func TestDropOneSeversChannel(t *testing.T) {
	inj, err := New(Config{Seed: 2, Drop: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if got := inj.Deliveries(1); len(got) != 0 {
			t.Fatalf("drop=1 delivered %v", got)
		}
	}
}

func TestJitterBounds(t *testing.T) {
	inj, err := New(Config{Seed: 3, Jitter: 2})
	if err != nil {
		t.Fatal(err)
	}
	sawJitter := false
	for i := 0; i < 500; i++ {
		for _, d := range inj.Deliveries(1) {
			if d < 1 || d >= 3 {
				t.Fatalf("delivery latency %v outside [1, 3)", d)
			}
			if d > 1 {
				sawJitter = true
			}
		}
	}
	if !sawJitter {
		t.Error("jitter never applied")
	}
}

// TestCrashWindows: a router with outages is down for roughly
// MeanDown/(MeanUp+MeanDown) of the time, schedules are per-router, and
// state (the schedule) is consistent across repeated queries.
func TestCrashWindows(t *testing.T) {
	inj, err := New(Config{Seed: 4, MeanUp: 8, MeanDown: 2})
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 4000
	downA := 0
	for i := 0; i < horizon; i++ {
		if !inj.Arrive("in/0", units.Time(i)) {
			downA++
		}
	}
	frac := float64(downA) / horizon
	if frac < 0.1 || frac > 0.3 {
		t.Errorf("down fraction = %.3f, want ≈ 0.2", frac)
	}
	// Re-querying past instants is consistent with the generated schedule.
	wasDown := !inj.Arrive("in/0", 100)
	for i := 0; i < 3; i++ {
		if got := !inj.Arrive("in/0", 100); got != wasDown {
			t.Fatal("outage schedule not stable under re-query")
		}
	}
	// A different router has an independent schedule (almost surely
	// differing somewhere over 4000 probes).
	same := true
	for i := 0; i < horizon; i++ {
		if inj.Arrive("in/0", units.Time(i)) != inj.Arrive("eg/5", units.Time(i)) {
			same = false
			break
		}
	}
	if same {
		t.Error("two routers share an outage schedule")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Drop: 2}); err == nil {
		t.Error("bad config accepted")
	}
}

// TestCrasherDeterministicAndInRange: crash offsets replay identically
// for one seed, land inside the requested range, and differ across seeds.
func TestCrasherDeterministicAndInRange(t *testing.T) {
	a, b := NewCrasher(7), NewCrasher(7)
	other := NewCrasher(8)
	var diverged bool
	for i := 0; i < 200; i++ {
		x := a.Offset(100, 1000)
		if x != b.Offset(100, 1000) {
			t.Fatal("equal seeds diverged")
		}
		if x < 100 || x >= 1000 {
			t.Fatalf("offset %d outside [100,1000)", x)
		}
		if x != other.Offset(100, 1000) {
			diverged = true
		}
	}
	if !diverged {
		t.Error("different seeds produced identical schedules")
	}
	if got := NewCrasher(1).Offset(5, 5); got != 5 {
		t.Errorf("degenerate range = %d, want lo", got)
	}
}
