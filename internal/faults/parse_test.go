package faults

import "testing"

func TestParseDiskConfig(t *testing.T) {
	cfg, err := ParseDiskConfig("seed=7, fsync=0.01, short=0.005, write=0.5, enospc=1, rename=0, dirsync=0.25")
	if err != nil {
		t.Fatal(err)
	}
	want := DiskConfig{Seed: 7, FsyncErr: 0.01, ShortWrite: 0.005, WriteErr: 0.5, ENOSPC: 1, DirSyncErr: 0.25}
	if cfg != want {
		t.Fatalf("parsed %+v, want %+v", cfg, want)
	}
	if !cfg.Enabled() {
		t.Fatal("parsed config with rates not enabled")
	}

	if cfg, err := ParseDiskConfig(""); err != nil || cfg.Enabled() {
		t.Fatalf("empty spec: %+v %v", cfg, err)
	}

	for _, bad := range []string{
		"seed",           // no value
		"seed=x",         // bad int
		"fsync=nope",     // bad float
		"fsync=1.5",      // out of range
		"write=-0.1",     // out of range
		"flaky=0.5",      // unknown key
		"seed=1 fsync=1", // wrong separator
	} {
		if _, err := ParseDiskConfig(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
