// Package request defines the short-lived transfer requests of §2.1.
//
// A request r carries a requested transmission window [ts(r), tf(r)], a
// volume vol(r) and a host transmission cap MaxRate(r). From these the
// floor MinRate(r) = vol(r)/(tf(r)−ts(r)) is derived: any assigned
// bandwidth below it cannot move the volume inside the window. A request
// with MinRate = MaxRate is rigid (no scheduling freedom); one with
// MinRate < MaxRate is flexible.
//
// When a scheduler accepts r it produces a Grant: an assigned window
// [σ(r), τ(r)] and constant bandwidth bw(r) with
// τ(r) = σ(r) + vol(r)/bw(r) ≤ tf(r).
//
// The flexibility the paper's Figure 2 illustrates — a fixed-area
// rectangle sliding between the rate bounds:
//
//	bw ▲
//	   │  MaxRate ┌────┐         faster grant: τ well before tf
//	   │          │vol │
//	   │          └────┘
//	   │  MinRate ┌──────────────────┐   slowest grant: τ = tf
//	   │          │       vol        │
//	   └──────────┴──────────────────┴──▶ t
//	             ts                  tf
package request

import (
	"fmt"

	"gridbw/internal/topology"
	"gridbw/internal/units"
)

// ID identifies a request within a workload. IDs are dense and start at 0;
// they double as deterministic tie-breakers in the heuristics.
type ID int

// Request is one short-lived bulk transfer request.
type Request struct {
	ID      ID
	Ingress topology.PointID
	Egress  topology.PointID
	// Start and Finish delimit the requested transmission window
	// [ts(r), tf(r)].
	Start  units.Time
	Finish units.Time
	Volume units.Volume
	// MaxRate is the transmission limit of the attached host.
	MaxRate units.Bandwidth
}

// Validate checks the structural invariants of a request.
func (r Request) Validate() error {
	switch {
	case r.Finish <= r.Start:
		return fmt.Errorf("request %d: empty window [%v, %v]", r.ID, r.Start, r.Finish)
	case r.Volume <= 0:
		return fmt.Errorf("request %d: non-positive volume %v", r.ID, r.Volume)
	case r.MaxRate <= 0:
		return fmt.Errorf("request %d: non-positive max rate %v", r.ID, r.MaxRate)
	}
	if r.MinRate() > r.MaxRate*(1+units.Eps) {
		return fmt.Errorf("request %d: infeasible: MinRate %v exceeds MaxRate %v",
			r.ID, r.MinRate(), r.MaxRate)
	}
	return nil
}

// WindowLength reports tf(r) − ts(r).
func (r Request) WindowLength() units.Time { return r.Finish - r.Start }

// MinRate reports vol(r)/(tf(r)−ts(r)), the slowest rate that still fits
// the requested window.
func (r Request) MinRate() units.Bandwidth {
	return r.Volume.Rate(r.WindowLength())
}

// EffectiveMinRate reports the floor when transmission starts at `at`
// instead of ts(r): vol(r)/(tf(r)−at). If at is past the point where even
// MaxRate cannot finish in time it may exceed MaxRate; callers must check.
// It panics when at >= tf(r).
func (r Request) EffectiveMinRate(at units.Time) units.Bandwidth {
	return r.Volume.Rate(r.Finish - at)
}

// Rigid reports whether the request has no bandwidth freedom
// (MinRate ≈ MaxRate).
func (r Request) Rigid() bool {
	return units.ApproxEq(float64(r.MinRate()), float64(r.MaxRate))
}

// Flexible reports whether MinRate < MaxRate strictly.
func (r Request) Flexible() bool { return !r.Rigid() }

// MinDuration reports the transfer time at MaxRate — the best case.
func (r Request) MinDuration() units.Time { return r.Volume.Over(r.MaxRate) }

// String implements fmt.Stringer.
func (r Request) String() string {
	return fmt.Sprintf("req%d[%d->%d %v @[%v,%v] <=%v]",
		r.ID, r.Ingress, r.Egress, r.Volume, r.Start, r.Finish, r.MaxRate)
}

// Grant records an accepted request's assignment.
type Grant struct {
	Request   ID
	Bandwidth units.Bandwidth
	// Sigma and Tau delimit the assigned window [σ(r), τ(r)].
	Sigma units.Time
	Tau   units.Time
}

// NewGrant computes the grant for request r started at sigma with
// bandwidth bw: τ = σ + vol/bw. It returns an error if the grant violates
// the request's constraints (rate bounds or deadline).
func NewGrant(r Request, sigma units.Time, bw units.Bandwidth) (Grant, error) {
	if bw <= 0 {
		return Grant{}, fmt.Errorf("grant for request %d: non-positive bandwidth %v", r.ID, bw)
	}
	if bw > r.MaxRate*(1+units.Eps) {
		return Grant{}, fmt.Errorf("grant for request %d: bandwidth %v exceeds MaxRate %v", r.ID, bw, r.MaxRate)
	}
	if sigma < r.Start {
		return Grant{}, fmt.Errorf("grant for request %d: start %v before requested %v", r.ID, sigma, r.Start)
	}
	tau := sigma + r.Volume.Over(bw)
	if tau > r.Finish*(1+units.Eps)+units.Eps {
		return Grant{}, fmt.Errorf("grant for request %d: finish %v past deadline %v", r.ID, tau, r.Finish)
	}
	return Grant{Request: r.ID, Bandwidth: bw, Sigma: sigma, Tau: tau}, nil
}

// Duration reports τ − σ.
func (g Grant) Duration() units.Time { return g.Tau - g.Sigma }

// String implements fmt.Stringer.
func (g Grant) String() string {
	return fmt.Sprintf("grant[req%d %v @[%v,%v]]", g.Request, g.Bandwidth, g.Sigma, g.Tau)
}

// Set is an ordered collection of requests with ID-indexed access.
// Requests must have dense IDs 0..n-1 matching their slice positions;
// NewSet enforces this.
type Set struct {
	reqs []Request
}

// NewSet validates the requests (dense IDs and per-request invariants)
// and returns a Set.
func NewSet(reqs []Request) (*Set, error) {
	for i, r := range reqs {
		if int(r.ID) != i {
			return nil, fmt.Errorf("request at index %d has ID %d (IDs must be dense)", i, r.ID)
		}
		if err := r.Validate(); err != nil {
			return nil, err
		}
	}
	cp := make([]Request, len(reqs))
	copy(cp, reqs)
	return &Set{reqs: cp}, nil
}

// MustNewSet is NewSet that panics on error; for tests and generators
// whose construction is correct by design.
func MustNewSet(reqs []Request) *Set {
	s, err := NewSet(reqs)
	if err != nil {
		panic("request: " + err.Error())
	}
	return s
}

// Len reports the number of requests (K in the paper).
func (s *Set) Len() int { return len(s.reqs) }

// Get returns request id. It panics on a bad ID.
func (s *Set) Get(id ID) Request {
	if id < 0 || int(id) >= len(s.reqs) {
		panic(fmt.Sprintf("request: ID %d out of range [0,%d)", id, len(s.reqs)))
	}
	return s.reqs[int(id)]
}

// All returns a copy of the request slice in ID order.
func (s *Set) All() []Request {
	cp := make([]Request, len(s.reqs))
	copy(cp, s.reqs)
	return cp
}

// Span reports the earliest Start and latest Finish across the set, or
// zeros for an empty set.
func (s *Set) Span() (start, finish units.Time) {
	if len(s.reqs) == 0 {
		return 0, 0
	}
	start, finish = s.reqs[0].Start, s.reqs[0].Finish
	for _, r := range s.reqs[1:] {
		if r.Start < start {
			start = r.Start
		}
		if r.Finish > finish {
			finish = r.Finish
		}
	}
	return start, finish
}

// TotalMinDemand reports Σ MinRate(r) — the numerator of the paper's load
// definition for rigid workloads (where bw(r) = MinRate(r)).
func (s *Set) TotalMinDemand() units.Bandwidth {
	var sum units.Bandwidth
	for _, r := range s.reqs {
		sum += r.MinRate()
	}
	return sum
}
