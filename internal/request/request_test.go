package request

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"gridbw/internal/units"
)

func valid() Request {
	return Request{
		ID: 0, Ingress: 1, Egress: 2,
		Start: 10, Finish: 110,
		Volume:  100 * units.GB,
		MaxRate: 2 * units.GBps,
	}
}

func TestValidate(t *testing.T) {
	if err := valid().Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Request)
	}{
		{"empty window", func(r *Request) { r.Finish = r.Start }},
		{"inverted window", func(r *Request) { r.Finish = r.Start - 1 }},
		{"zero volume", func(r *Request) { r.Volume = 0 }},
		{"negative volume", func(r *Request) { r.Volume = -1 }},
		{"zero max rate", func(r *Request) { r.MaxRate = 0 }},
		{"infeasible floor", func(r *Request) { r.MaxRate = 100 * units.MBps }},
	}
	for _, c := range cases {
		r := valid()
		c.mut(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestMinRate(t *testing.T) {
	r := valid() // 100GB over 100s
	if got := r.MinRate(); !units.ApproxEq(float64(got), float64(1*units.GBps)) {
		t.Errorf("MinRate = %v, want 1GB/s", got)
	}
	if got := r.WindowLength(); got != 100 {
		t.Errorf("WindowLength = %v", got)
	}
}

func TestEffectiveMinRate(t *testing.T) {
	r := valid()
	// Started halfway through the window: floor doubles.
	if got := r.EffectiveMinRate(60); !units.ApproxEq(float64(got), float64(2*units.GBps)) {
		t.Errorf("EffectiveMinRate(60) = %v, want 2GB/s", got)
	}
	if got := r.EffectiveMinRate(r.Start); !units.ApproxEq(float64(got), float64(r.MinRate())) {
		t.Errorf("EffectiveMinRate(ts) = %v, want MinRate %v", got, r.MinRate())
	}
}

func TestEffectiveMinRatePanicsPastDeadline(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic at/after deadline")
		}
	}()
	r := valid()
	r.EffectiveMinRate(r.Finish)
}

func TestRigidFlexible(t *testing.T) {
	r := valid()
	if r.Rigid() || !r.Flexible() {
		t.Error("request with MinRate < MaxRate classified rigid")
	}
	r.MaxRate = r.MinRate()
	if !r.Rigid() || r.Flexible() {
		t.Error("request with MinRate = MaxRate classified flexible")
	}
}

func TestMinDuration(t *testing.T) {
	r := valid()
	if got := r.MinDuration(); !units.ApproxEq(float64(got), 50) {
		t.Errorf("MinDuration = %v, want 50s", got)
	}
}

func TestNewGrant(t *testing.T) {
	r := valid()
	g, err := NewGrant(r, r.Start, 1*units.GBps)
	if err != nil {
		t.Fatal(err)
	}
	if g.Tau != 110 || g.Sigma != 10 || g.Duration() != 100 {
		t.Errorf("grant = %+v", g)
	}

	// Faster rate finishes earlier.
	g, err = NewGrant(r, r.Start, 2*units.GBps)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEq(float64(g.Tau), 60) {
		t.Errorf("Tau = %v, want 60", g.Tau)
	}
}

func TestNewGrantRejections(t *testing.T) {
	r := valid()
	if _, err := NewGrant(r, r.Start, 0); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := NewGrant(r, r.Start, 3*units.GBps); err == nil {
		t.Error("bandwidth above MaxRate accepted")
	}
	if _, err := NewGrant(r, r.Start-1, 1*units.GBps); err == nil {
		t.Error("early start accepted")
	}
	// Started late at MinRate: misses the deadline.
	if _, err := NewGrant(r, 50, 1*units.GBps); err == nil {
		t.Error("deadline violation accepted")
	}
	// Started late at a recomputed effective rate: fits exactly.
	if _, err := NewGrant(r, 60, r.EffectiveMinRate(60)); err != nil {
		t.Errorf("exact-deadline grant rejected: %v", err)
	}
}

func TestGrantDeadlineProperty(t *testing.T) {
	f := func(volRaw, rateRaw, startRaw uint16) bool {
		vol := units.Volume(volRaw%900+100) * units.GB
		maxRate := units.Bandwidth(rateRaw%990+10) * units.MBps
		start := units.Time(startRaw % 1000)
		dur := vol.Over(maxRate) * 2 // window fits MaxRate twice over
		r := Request{ID: 0, Start: start, Finish: start + dur, Volume: vol, MaxRate: maxRate}
		if err := r.Validate(); err != nil {
			return false
		}
		bw := r.MinRate() + units.Bandwidth(float64(r.MaxRate-r.MinRate())*0.5)
		g, err := NewGrant(r, r.Start, bw)
		if err != nil {
			return false
		}
		return g.Tau <= r.Finish+units.Eps &&
			units.ApproxEq(float64(g.Bandwidth.For(g.Duration())), float64(vol))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSet(t *testing.T) {
	rs := []Request{
		{ID: 0, Start: 5, Finish: 20, Volume: 10 * units.GB, MaxRate: 1 * units.GBps},
		{ID: 1, Start: 0, Finish: 30, Volume: 20 * units.GB, MaxRate: 1 * units.GBps},
	}
	s, err := NewSet(rs)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.Get(1).Volume != 20*units.GB {
		t.Error("Get(1) wrong")
	}
	start, finish := s.Span()
	if start != 0 || finish != 30 {
		t.Errorf("Span = %v, %v", start, finish)
	}
	// All returns a copy.
	all := s.All()
	all[0].Volume = 0
	if s.Get(0).Volume != 10*units.GB {
		t.Error("All leaked internal slice")
	}
}

func TestNewSetRejectsNonDenseIDs(t *testing.T) {
	_, err := NewSet([]Request{{ID: 1, Start: 0, Finish: 1, Volume: 1, MaxRate: 1}})
	if err == nil {
		t.Error("non-dense IDs accepted")
	}
}

func TestNewSetRejectsInvalidRequest(t *testing.T) {
	_, err := NewSet([]Request{{ID: 0, Start: 0, Finish: 0, Volume: 1, MaxRate: 1}})
	if err == nil {
		t.Error("invalid request accepted")
	}
}

func TestMustNewSetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewSet did not panic")
		}
	}()
	MustNewSet([]Request{{ID: 5}})
}

func TestSetGetPanics(t *testing.T) {
	s := MustNewSet(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Get out of range did not panic")
		}
	}()
	s.Get(0)
}

func TestEmptySetSpan(t *testing.T) {
	s := MustNewSet(nil)
	if a, b := s.Span(); a != 0 || b != 0 {
		t.Error("empty span not zero")
	}
	if s.TotalMinDemand() != 0 {
		t.Error("empty demand not zero")
	}
}

func TestTotalMinDemand(t *testing.T) {
	rs := []Request{
		{ID: 0, Start: 0, Finish: 100, Volume: 100 * units.GB, MaxRate: 2 * units.GBps}, // 1 GB/s
		{ID: 1, Start: 0, Finish: 50, Volume: 25 * units.GB, MaxRate: 1 * units.GBps},   // 0.5 GB/s
	}
	s := MustNewSet(rs)
	want := 1.5 * float64(units.GBps)
	if got := s.TotalMinDemand(); math.Abs(float64(got)-want) > 1 {
		t.Errorf("TotalMinDemand = %v", got)
	}
}

func TestStrings(t *testing.T) {
	r := valid()
	if s := r.String(); !strings.Contains(s, "req0") || !strings.Contains(s, "100GB") {
		t.Errorf("Request.String = %q", s)
	}
	g, _ := NewGrant(r, r.Start, 1*units.GBps)
	if s := g.String(); !strings.Contains(s, "grant[req0") {
		t.Errorf("Grant.String = %q", s)
	}
}
