// Package policy implements the bandwidth-assignment strategies of §5
// ("BANDWIDTHASSIGNALG" in Algorithms 2 and 3).
//
// When a flexible request is accepted, the scheduler must pick its constant
// transmission rate bw(r) within [MinRate(r), MaxRate(r)]. The paper
// studies two families:
//
//   - MinRate: grant exactly the floor the user asked for — maximizes the
//     chance of acceptance, slowest transfer.
//   - FractionMaxRate(f): grant max(f·MaxRate(r), MinRate(r)) — the tuning
//     factor f ∈ [0,1] trades accept rate for transfer speed and earlier
//     release of the CPU/storage resources co-scheduled with the transfer.
//
// Because the on-line WINDOW heuristic may start a request after its
// requested ts(r), the floor must be recomputed at the actual start time:
// vol(r)/(tf(r)−σ). Policies receive that effective start and return an
// error when no admissible rate exists (deadline no longer reachable even
// at MaxRate).
package policy

import (
	"fmt"

	"gridbw/internal/request"
	"gridbw/internal/units"
)

// Policy picks the bandwidth to assign to request r when transmission
// starts at instant start.
type Policy interface {
	// Name identifies the policy in reports, e.g. "minbw" or "f=0.8".
	Name() string
	// Assign returns the rate for r when started at start. It returns an
	// error when the deadline is unreachable (effective floor > MaxRate).
	Assign(r request.Request, start units.Time) (units.Bandwidth, error)
}

// effectiveFloor computes the admissible floor at the given start, or an
// error when the deadline is unreachable.
func effectiveFloor(r request.Request, start units.Time) (units.Bandwidth, error) {
	if start >= r.Finish {
		return 0, fmt.Errorf("policy: request %d started at %v, past deadline %v", r.ID, start, r.Finish)
	}
	floor := r.EffectiveMinRate(start)
	if floor > r.MaxRate*(1+units.Eps) {
		return 0, fmt.Errorf("policy: request %d needs %v to meet deadline but MaxRate is %v",
			r.ID, floor, r.MaxRate)
	}
	if floor > r.MaxRate {
		floor = r.MaxRate
	}
	return floor, nil
}

type minRate struct{}

// MinRate returns the MIN BW policy: assign the smallest admissible rate.
func MinRate() Policy { return minRate{} }

func (minRate) Name() string { return "minbw" }

func (minRate) Assign(r request.Request, start units.Time) (units.Bandwidth, error) {
	return effectiveFloor(r, start)
}

type fractionMaxRate struct {
	f float64
}

// FractionMaxRate returns the tuning-factor policy: assign
// max(f·MaxRate(r), floor). FractionMaxRate(1) grants every accepted
// request its full host rate; FractionMaxRate(0) degenerates to MinRate.
// It panics if f is outside [0, 1].
func FractionMaxRate(f float64) Policy {
	if f < 0 || f > 1 {
		panic(fmt.Sprintf("policy: tuning factor %v outside [0,1]", f))
	}
	return fractionMaxRate{f: f}
}

func (p fractionMaxRate) Name() string { return fmt.Sprintf("f=%.2g", p.f) }

func (p fractionMaxRate) Assign(r request.Request, start units.Time) (units.Bandwidth, error) {
	floor, err := effectiveFloor(r, start)
	if err != nil {
		return 0, err
	}
	bw := units.Bandwidth(p.f) * r.MaxRate
	if bw < floor {
		bw = floor
	}
	return bw, nil
}

type strictMinRate struct{}

// StrictRequestedMinRate is the literal reading of the paper's pseudo-code:
// always assign MinRate(r) computed from the *requested* window, even when
// the actual start is later. With a late start the resulting grant misses
// the deadline and is rejected at grant construction — this policy exists
// as the DESIGN.md §5.2 ablation to quantify how much deadline-aware floor
// recomputation matters.
func StrictRequestedMinRate() Policy { return strictMinRate{} }

func (strictMinRate) Name() string { return "minbw-strict" }

func (strictMinRate) Assign(r request.Request, start units.Time) (units.Bandwidth, error) {
	if start >= r.Finish {
		return 0, fmt.Errorf("policy: request %d started at %v, past deadline %v", r.ID, start, r.Finish)
	}
	return r.MinRate(), nil
}

// Guaranteed reports whether a granted bandwidth meets the #guaranteed
// criterion of §2.3 for tuning factor f:
// bw ≥ max(f·MaxRate(r), MinRate(r)).
func Guaranteed(r request.Request, bw units.Bandwidth, f float64) bool {
	threshold := units.Bandwidth(f) * r.MaxRate
	if m := r.MinRate(); m > threshold {
		threshold = m
	}
	return bw >= threshold*(1-units.Eps)
}
