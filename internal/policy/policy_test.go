package policy

import (
	"strings"
	"testing"
	"testing/quick"

	"gridbw/internal/request"
	"gridbw/internal/rng"
	"gridbw/internal/units"
)

func flexReq() request.Request {
	// 100 GB over a 1000 s window, host cap 1 GB/s: MinRate = 100 MB/s.
	return request.Request{
		ID: 0, Start: 0, Finish: 1000,
		Volume: 100 * units.GB, MaxRate: 1 * units.GBps,
	}
}

func TestMinRateAtRequestedStart(t *testing.T) {
	r := flexReq()
	bw, err := MinRate().Assign(r, r.Start)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEq(float64(bw), float64(100*units.MBps)) {
		t.Errorf("bw = %v, want 100MB/s", bw)
	}
}

func TestMinRateLateStartRaisesFloor(t *testing.T) {
	r := flexReq()
	bw, err := MinRate().Assign(r, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEq(float64(bw), float64(200*units.MBps)) {
		t.Errorf("bw = %v, want 200MB/s", bw)
	}
	// The resulting grant always meets the deadline.
	g, err := request.NewGrant(r, 500, bw)
	if err != nil {
		t.Fatal(err)
	}
	if g.Tau > r.Finish+units.Eps {
		t.Errorf("Tau = %v past deadline", g.Tau)
	}
}

func TestMinRateUnreachableDeadline(t *testing.T) {
	r := flexReq()
	// At t=950 only 50 s remain: need 2 GB/s > MaxRate.
	if _, err := MinRate().Assign(r, 950); err == nil {
		t.Error("unreachable deadline accepted")
	}
	if _, err := MinRate().Assign(r, 1000); err == nil {
		t.Error("start at deadline accepted")
	}
	if _, err := MinRate().Assign(r, 1500); err == nil {
		t.Error("start past deadline accepted")
	}
}

func TestMinRateExactBoundary(t *testing.T) {
	r := flexReq()
	// At t=900 exactly 100 s remain: floor = MaxRate exactly.
	bw, err := MinRate().Assign(r, 900)
	if err != nil {
		t.Fatalf("boundary start rejected: %v", err)
	}
	if !units.ApproxEq(float64(bw), float64(r.MaxRate)) {
		t.Errorf("bw = %v, want MaxRate", bw)
	}
}

func TestFractionMaxRate(t *testing.T) {
	r := flexReq()
	cases := []struct {
		f    float64
		want units.Bandwidth
	}{
		{1.0, 1 * units.GBps},
		{0.8, 800 * units.MBps},
		{0.5, 500 * units.MBps},
		{0.05, 100 * units.MBps}, // f·MaxRate = 50MB/s < floor 100MB/s
		{0, 100 * units.MBps},    // degenerates to MinRate
	}
	for _, c := range cases {
		bw, err := FractionMaxRate(c.f).Assign(r, r.Start)
		if err != nil {
			t.Errorf("f=%v: %v", c.f, err)
			continue
		}
		if !units.ApproxEq(float64(bw), float64(c.want)) {
			t.Errorf("f=%v: bw = %v, want %v", c.f, bw, c.want)
		}
	}
}

func TestFractionMaxRatePanicsOutOfRange(t *testing.T) {
	for _, f := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("f=%v did not panic", f)
				}
			}()
			FractionMaxRate(f)
		}()
	}
}

func TestStrictRequestedMinRate(t *testing.T) {
	r := flexReq()
	bw, err := StrictRequestedMinRate().Assign(r, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEq(float64(bw), float64(100*units.MBps)) {
		t.Errorf("bw = %v, want requested MinRate", bw)
	}
	// The strict policy's grant misses the deadline when started late —
	// that is exactly the failure mode the ablation quantifies.
	if _, err := request.NewGrant(r, 500, bw); err == nil {
		t.Error("late strict grant unexpectedly met deadline")
	}
	if _, err := StrictRequestedMinRate().Assign(r, 1000); err == nil {
		t.Error("start at deadline accepted")
	}
}

func TestNames(t *testing.T) {
	if MinRate().Name() != "minbw" {
		t.Error("MinRate name")
	}
	if got := FractionMaxRate(0.8).Name(); !strings.Contains(got, "0.8") {
		t.Errorf("FractionMaxRate name = %q", got)
	}
	if StrictRequestedMinRate().Name() != "minbw-strict" {
		t.Error("strict name")
	}
}

func TestGuaranteed(t *testing.T) {
	r := flexReq()
	if !Guaranteed(r, 800*units.MBps, 0.8) {
		t.Error("exact threshold not guaranteed")
	}
	if Guaranteed(r, 799*units.MBps, 0.8) {
		t.Error("below threshold guaranteed")
	}
	// MinRate dominates for small f.
	if Guaranteed(r, 99*units.MBps, 0.01) {
		t.Error("below MinRate guaranteed")
	}
	if !Guaranteed(r, 100*units.MBps, 0.01) {
		t.Error("at MinRate not guaranteed")
	}
}

// Property: every policy's assignment (when it succeeds) is admissible —
// within [effective floor, MaxRate] — and the grant meets the deadline.
func TestPolicyAdmissibleProperty(t *testing.T) {
	policies := []Policy{MinRate(), FractionMaxRate(0.3), FractionMaxRate(0.8), FractionMaxRate(1)}
	f := func(seed int64) bool {
		src := rng.New(seed)
		volGB := src.Intn(900) + 100
		maxRate := units.Bandwidth(src.Intn(990)+10) * units.MBps
		vol := units.Volume(volGB) * units.GB
		minDur := vol.Over(maxRate)
		window := minDur * units.Time(src.Uniform(1, 5))
		start := units.Time(src.Intn(1000))
		r := request.Request{ID: 0, Start: start, Finish: start + window, Volume: vol, MaxRate: maxRate}
		if r.Validate() != nil {
			return false
		}
		at := start + window*units.Time(src.Uniform(0, 0.95))
		for _, p := range policies {
			bw, err := p.Assign(r, at)
			if err != nil {
				// Only acceptable when the deadline is truly unreachable.
				if at < r.Finish && r.EffectiveMinRate(at) <= r.MaxRate*(1-1e-6) {
					return false
				}
				continue
			}
			if bw > r.MaxRate*(1+units.Eps) {
				return false
			}
			if _, err := request.NewGrant(r, at, bw); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
