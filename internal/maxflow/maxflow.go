// Package maxflow implements Dinic's maximum-flow algorithm on integer
// capacities.
//
// It is the substrate behind the polynomial special case the paper cites
// from its companion work ([13, 14] in the references; restated in §3):
// scheduling *uniform long-lived* requests — indefinite flows that all
// demand the same bandwidth b — reduces to a bipartite flow problem
// between ingress and egress points with per-point slot capacities
// ⌊B/b⌋, solvable exactly in polynomial time. See
// internal/sched/longlived.
package maxflow

import "fmt"

// Graph is a flow network under construction. Vertices are dense ints.
type Graph struct {
	n     int
	edges []edge
	head  [][]int // adjacency: vertex -> edge indices (including reverses)
}

type edge struct {
	to   int
	cap  int64
	flow int64
}

// New returns a graph with n vertices and no edges.
func New(n int) *Graph {
	if n <= 0 {
		panic(fmt.Sprintf("maxflow: non-positive vertex count %d", n))
	}
	return &Graph{n: n, head: make([][]int, n)}
}

// N reports the vertex count.
func (g *Graph) N() int { return g.n }

// AddEdge adds a directed edge u→v with the given capacity and returns
// its index (usable with Flow after solving). Capacity must be >= 0.
func (g *Graph) AddEdge(u, v int, capacity int64) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("maxflow: edge (%d,%d) out of range [0,%d)", u, v, g.n))
	}
	if capacity < 0 {
		panic(fmt.Sprintf("maxflow: negative capacity %d", capacity))
	}
	idx := len(g.edges)
	g.edges = append(g.edges, edge{to: v, cap: capacity})
	g.head[u] = append(g.head[u], idx)
	// Reverse edge with zero capacity.
	g.edges = append(g.edges, edge{to: u, cap: 0})
	g.head[v] = append(g.head[v], idx+1)
	return idx
}

// Flow reports the flow pushed on the edge returned by AddEdge, after a
// MaxFlow call.
func (g *Graph) Flow(edgeIdx int) int64 {
	return g.edges[edgeIdx].flow
}

// MaxFlow computes the maximum s→t flow with Dinic's algorithm
// (O(V²·E) in general, O(E·√V) on unit-capacity bipartite networks).
func (g *Graph) MaxFlow(s, t int) int64 {
	if s < 0 || s >= g.n || t < 0 || t >= g.n {
		panic(fmt.Sprintf("maxflow: terminal out of range"))
	}
	if s == t {
		panic("maxflow: source equals sink")
	}
	var total int64
	level := make([]int, g.n)
	iter := make([]int, g.n)
	queue := make([]int, 0, g.n)

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = queue[:0]
		queue = append(queue, s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, ei := range g.head[u] {
				e := &g.edges[ei]
				if e.cap-e.flow > 0 && level[e.to] < 0 {
					level[e.to] = level[u] + 1
					queue = append(queue, e.to)
				}
			}
		}
		return level[t] >= 0
	}

	var dfs func(u int, limit int64) int64
	dfs = func(u int, limit int64) int64 {
		if u == t {
			return limit
		}
		for ; iter[u] < len(g.head[u]); iter[u]++ {
			ei := g.head[u][iter[u]]
			e := &g.edges[ei]
			if e.cap-e.flow <= 0 || level[e.to] != level[u]+1 {
				continue
			}
			avail := e.cap - e.flow
			if avail > limit {
				avail = limit
			}
			pushed := dfs(e.to, avail)
			if pushed > 0 {
				e.flow += pushed
				g.edges[ei^1].flow -= pushed
				return pushed
			}
		}
		return 0
	}

	const inf = int64(1) << 62
	for bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			pushed := dfs(s, inf)
			if pushed == 0 {
				break
			}
			total += pushed
		}
	}
	return total
}
