package maxflow

import (
	"testing"
	"testing/quick"

	"gridbw/internal/rng"
)

func TestSingleEdge(t *testing.T) {
	g := New(2)
	e := g.AddEdge(0, 1, 7)
	if got := g.MaxFlow(0, 1); got != 7 {
		t.Errorf("flow = %d, want 7", got)
	}
	if g.Flow(e) != 7 {
		t.Errorf("edge flow = %d", g.Flow(e))
	}
}

func TestSeriesBottleneck(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 10)
	g.AddEdge(1, 2, 3)
	if got := g.MaxFlow(0, 2); got != 3 {
		t.Errorf("flow = %d, want 3", got)
	}
}

func TestParallelPaths(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 3, 5)
	g.AddEdge(0, 2, 4)
	g.AddEdge(2, 3, 4)
	if got := g.MaxFlow(0, 3); got != 9 {
		t.Errorf("flow = %d, want 9", got)
	}
}

// TestClassicNetwork is the standard CLRS example with answer 23.
func TestClassicNetwork(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1, 16)
	g.AddEdge(0, 2, 13)
	g.AddEdge(1, 2, 10)
	g.AddEdge(2, 1, 4)
	g.AddEdge(1, 3, 12)
	g.AddEdge(3, 2, 9)
	g.AddEdge(2, 4, 14)
	g.AddEdge(4, 3, 7)
	g.AddEdge(3, 5, 20)
	g.AddEdge(4, 5, 4)
	if got := g.MaxFlow(0, 5); got != 23 {
		t.Errorf("flow = %d, want 23", got)
	}
}

func TestNeedsResidualEdges(t *testing.T) {
	// Flow must reroute through the residual of the middle edge.
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(2, 3, 1)
	if got := g.MaxFlow(0, 3); got != 2 {
		t.Errorf("flow = %d, want 2", got)
	}
}

func TestDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(2, 3, 5)
	if got := g.MaxFlow(0, 3); got != 0 {
		t.Errorf("flow = %d, want 0", got)
	}
}

func TestZeroCapacityEdge(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 0)
	if got := g.MaxFlow(0, 1); got != 0 {
		t.Errorf("flow = %d, want 0", got)
	}
}

func TestPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0) },
		func() { New(2).AddEdge(0, 5, 1) },
		func() { New(2).AddEdge(0, 1, -1) },
		func() { New(2).MaxFlow(0, 0) },
		func() { New(2).MaxFlow(0, 9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad call did not panic")
				}
			}()
			f()
		}()
	}
}

// TestBipartiteMatchingMatchesGreedyBound: on random bipartite unit
// graphs, max flow equals the size of a maximum matching, which we verify
// against a brute-force matcher for small sizes.
func TestBipartiteMatchingBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		L := src.Intn(4) + 1
		R := src.Intn(4) + 1
		var pairs [][2]int
		adj := make([][]bool, L)
		for i := range adj {
			adj[i] = make([]bool, R)
		}
		for i := 0; i < L; i++ {
			for j := 0; j < R; j++ {
				if src.Bool(0.4) {
					adj[i][j] = true
					pairs = append(pairs, [2]int{i, j})
				}
			}
		}
		// Flow network: 0 = source, 1..L = left, L+1..L+R = right, last = sink.
		g := New(L + R + 2)
		sink := L + R + 1
		for i := 0; i < L; i++ {
			g.AddEdge(0, 1+i, 1)
		}
		for j := 0; j < R; j++ {
			g.AddEdge(1+L+j, sink, 1)
		}
		for _, p := range pairs {
			g.AddEdge(1+p[0], 1+L+p[1], 1)
		}
		flow := g.MaxFlow(0, sink)

		// Brute force maximum matching over subsets of pairs.
		best := 0
		var dfs func(idx int, usedL, usedR int, count int)
		dfs = func(idx, usedL, usedR, count int) {
			if count > best {
				best = count
			}
			if idx == len(pairs) {
				return
			}
			dfs(idx+1, usedL, usedR, count)
			p := pairs[idx]
			if usedL&(1<<p[0]) == 0 && usedR&(1<<p[1]) == 0 {
				dfs(idx+1, usedL|1<<p[0], usedR|1<<p[1], count+1)
			}
		}
		dfs(0, 0, 0, 0)
		return int(flow) == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestFlowConservationProperty: after solving, inflow equals outflow at
// every interior vertex and edge flows respect capacities.
func TestFlowConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		n := src.Intn(8) + 2
		g := New(n)
		var idxs []int
		for k := 0; k < 3*n; k++ {
			u, v := src.Intn(n), src.Intn(n)
			if u == v {
				continue
			}
			idxs = append(idxs, g.AddEdge(u, v, int64(src.Intn(10))))
		}
		s, t := 0, n-1
		total := g.MaxFlow(s, t)
		if total < 0 {
			return false
		}
		net := make([]int64, n)
		for _, ei := range idxs {
			fl := g.Flow(ei)
			e := g.edges[ei]
			if fl < 0 || fl > e.cap {
				return false
			}
			// Edge ei goes from some u (unknown here) to e.to; recover u
			// via the reverse edge.
			u := g.edges[ei^1].to
			net[u] -= fl
			net[e.to] += fl
		}
		for v := 0; v < n; v++ {
			switch v {
			case s:
				if net[v] != -total {
					return false
				}
			case t:
				if net[v] != total {
					return false
				}
			default:
				if net[v] != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
