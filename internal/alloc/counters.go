package alloc

import (
	"fmt"

	"gridbw/internal/topology"
	"gridbw/internal/units"
)

// Counters is the instantaneous-occupancy view used by the paper's on-line
// heuristics (Algorithms 2 and 3): ali(i) and ale(e), the bandwidth
// currently allocated at each ingress and egress point. It is the
// degenerate, O(1) form of Profile — sufficient on-line because occupancy
// only decreases between admissions (releases), so a feasibility check at
// admission time covers the whole constant-rate transfer.
type Counters struct {
	net *topology.Network
	ali []units.Bandwidth
	ale []units.Bandwidth
}

// NewCounters returns zeroed counters for net.
func NewCounters(net *topology.Network) *Counters {
	return &Counters{
		net: net,
		ali: make([]units.Bandwidth, net.NumIngress()),
		ale: make([]units.Bandwidth, net.NumEgress()),
	}
}

// Ali reports the bandwidth currently allocated at ingress i.
func (c *Counters) Ali(i topology.PointID) units.Bandwidth { return c.ali[int(i)] }

// Ale reports the bandwidth currently allocated at egress e.
func (c *Counters) Ale(e topology.PointID) units.Bandwidth { return c.ale[int(e)] }

// Fits reports whether adding bw at ingress i and egress e keeps both
// within capacity.
func (c *Counters) Fits(i, e topology.PointID, bw units.Bandwidth) bool {
	return units.FitsWithin(c.ali[int(i)], bw, c.net.Bin(i)) &&
		units.FitsWithin(c.ale[int(e)], bw, c.net.Bout(e))
}

// Acquire adds bw at both points. It returns an error (changing nothing)
// if either side would exceed its capacity.
func (c *Counters) Acquire(i, e topology.PointID, bw units.Bandwidth) error {
	if bw < 0 {
		panic(fmt.Sprintf("alloc: negative acquire %v", bw))
	}
	if !c.Fits(i, e, bw) {
		return fmt.Errorf("alloc: acquiring %v at (%d,%d) exceeds capacity (ali=%v/%v, ale=%v/%v)",
			bw, i, e, c.ali[int(i)], c.net.Bin(i), c.ale[int(e)], c.net.Bout(e))
	}
	c.ali[int(i)] += bw
	c.ale[int(e)] += bw
	return nil
}

// ReleasePair subtracts bw at both points; the inverse of Acquire.
func (c *Counters) ReleasePair(i, e topology.PointID, bw units.Bandwidth) {
	if bw < 0 {
		panic(fmt.Sprintf("alloc: negative release %v", bw))
	}
	c.ali[int(i)] = clampRelease(c.ali[int(i)], bw, c.net.Bin(i))
	c.ale[int(e)] = clampRelease(c.ale[int(e)], bw, c.net.Bout(e))
}

func clampRelease(used, bw, capacity units.Bandwidth) units.Bandwidth {
	u := used - bw
	if u < 0 {
		if u < -units.Bandwidth(units.Eps)*max(capacity, 1) {
			panic(fmt.Sprintf("alloc: release drives counter negative (%v)", u))
		}
		u = 0
	}
	return u
}

// UtilizationIn reports ali(i)/Bin(i), or 0 for a zero-capacity point.
func (c *Counters) UtilizationIn(i topology.PointID) float64 {
	b := c.net.Bin(i)
	if b == 0 {
		return 0
	}
	return float64(c.ali[int(i)]) / float64(b)
}

// UtilizationOut reports ale(e)/Bout(e), or 0 for a zero-capacity point.
func (c *Counters) UtilizationOut(e topology.PointID) float64 {
	b := c.net.Bout(e)
	if b == 0 {
		return 0
	}
	return float64(c.ale[int(e)]) / float64(b)
}

// CheckInvariant verifies no counter exceeds its capacity.
func (c *Counters) CheckInvariant() error {
	for i, u := range c.ali {
		if !units.FitsWithin(u, 0, c.net.Bin(topology.PointID(i))) {
			return fmt.Errorf("alloc: ali(%d)=%v exceeds capacity", i, u)
		}
	}
	for e, u := range c.ale {
		if !units.FitsWithin(u, 0, c.net.Bout(topology.PointID(e))) {
			return fmt.Errorf("alloc: ale(%d)=%v exceeds capacity", e, u)
		}
	}
	return nil
}
