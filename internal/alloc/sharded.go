package alloc

import (
	"fmt"
	"sync"
	"sync/atomic"

	"gridbw/internal/request"
	"gridbw/internal/topology"
	"gridbw/internal/units"
)

// Sharded is the concurrent counterpart of Ledger: one lock per access
// point instead of one lock around the whole network. The paper's
// equation (1) constrains each ingress and egress point independently, so
// a reservation only ever needs the two profiles it routes through —
// submissions through disjoint point pairs admit fully in parallel.
//
// Deadlock freedom comes from a global lock order: every ingress shard
// ranks before every egress shard, and shards of the same direction rank
// by point index. All multi-shard operations (Pair, Reserve, Revoke,
// CheckInvariant) acquire in that order.
//
// Each shard also counts its lock traffic — total acquisitions and how
// many of them had to block — so the control plane can expose per-point
// contention without a profiler.
type Sharded struct {
	net *topology.Network
	in  []*shard
	eg  []*shard
}

// shard is one access point's profile behind its own lock. Ingress shards
// additionally index the grants routed through them (a grant has exactly
// one ingress, so the index is a partition, not a copy).
type shard struct {
	mu        sync.Mutex
	locks     atomic.Uint64
	contended atomic.Uint64
	p         *Profile
	granted   map[request.ID]grantRecord // ingress shards only
}

// grantRecord remembers enough of a reservation to release both sides.
type grantRecord struct {
	egress topology.PointID
	grant  request.Grant
}

// lock acquires the shard, counting whether it had to wait.
func (sh *shard) lock() {
	if !sh.mu.TryLock() {
		sh.contended.Add(1)
		sh.mu.Lock()
	}
	sh.locks.Add(1)
}

func (sh *shard) unlock() { sh.mu.Unlock() }

// NewSharded returns an empty sharded ledger over net. Its profiles carry
// the bucketed live-window cache (see NewBucketedProfile): admission
// answers are identical to plain profiles, but MaxUsedIn over the live
// window is O(buckets) instead of a breakpoint scan.
func NewSharded(net *topology.Network) *Sharded {
	l := &Sharded{net: net}
	for i := 0; i < net.NumIngress(); i++ {
		l.in = append(l.in, &shard{
			p:       NewBucketedProfile(net.Bin(topology.PointID(i)), DefaultBucketWidth, DefaultBucketCount),
			granted: make(map[request.ID]grantRecord),
		})
	}
	for e := 0; e < net.NumEgress(); e++ {
		l.eg = append(l.eg, &shard{p: NewBucketedProfile(net.Bout(topology.PointID(e)), DefaultBucketWidth, DefaultBucketCount)})
	}
	return l
}

// Network reports the network the ledger tracks.
func (l *Sharded) Network() *topology.Network { return l.net }

// PairTx holds the (ingress, egress) shard pair of one route locked, so a
// caller can run a whole admission search — candidate enumeration, policy
// assignment, reserve — against a consistent view of both profiles.
// Callers must Unlock exactly once, and must not retain the profiles past
// it.
type PairTx struct {
	l        *Sharded
	ingress  topology.PointID
	egress   topology.PointID
	in, eg   *shard
	unlocked bool
}

// Pair locks the route's ingress and egress shards in the global order and
// returns the transaction handle.
func (l *Sharded) Pair(in, eg topology.PointID) *PairTx {
	tx := new(PairTx)
	l.LockPair(tx, in, eg)
	return tx
}

// LockPair re-initializes tx onto the (in, eg) route and locks both shards
// in the global order. It lets hot paths reuse a caller-owned PairTx
// instead of allocating one per admission; tx must not be currently locked.
func (l *Sharded) LockPair(tx *PairTx, in, eg topology.PointID) {
	*tx = PairTx{l: l, ingress: in, egress: eg, in: l.in[int(in)], eg: l.eg[int(eg)]}
	tx.in.lock()
	tx.eg.lock()
}

// Ingress returns the locked ingress profile.
func (tx *PairTx) Ingress() *Profile { return tx.in.p }

// Egress returns the locked egress profile.
func (tx *PairTx) Egress() *Profile { return tx.eg.p }

// Covers reports whether the transaction holds the route of (in, eg).
func (tx *PairTx) Covers(in, eg topology.PointID) bool {
	return tx.ingress == in && tx.egress == eg
}

// Reserve commits grant g for request r on both locked points, atomically:
// if the egress side rejects, the ingress side is rolled back. The request
// must route through the transaction's pair.
func (tx *PairTx) Reserve(r request.Request, g request.Grant) error {
	if !tx.Covers(r.Ingress, r.Egress) {
		return fmt.Errorf("alloc: request %d routes %d->%d outside locked pair %d->%d",
			r.ID, r.Ingress, r.Egress, tx.ingress, tx.egress)
	}
	if g.Request != r.ID {
		return fmt.Errorf("alloc: grant for request %d applied to request %d", g.Request, r.ID)
	}
	if _, dup := tx.in.granted[r.ID]; dup {
		return fmt.Errorf("alloc: request %d already granted", r.ID)
	}
	if err := tx.in.p.Reserve(g.Sigma, g.Tau, g.Bandwidth); err != nil {
		return fmt.Errorf("alloc: ingress %d: %w", r.Ingress, err)
	}
	if err := tx.eg.p.Reserve(g.Sigma, g.Tau, g.Bandwidth); err != nil {
		tx.in.p.Release(g.Sigma, g.Tau, g.Bandwidth)
		return fmt.Errorf("alloc: egress %d: %w", r.Egress, err)
	}
	tx.in.granted[r.ID] = grantRecord{egress: r.Egress, grant: g}
	return nil
}

// Unlock releases the pair. Unlocking twice panics, like sync.Mutex.
func (tx *PairTx) Unlock() {
	if tx.unlocked {
		panic("alloc: PairTx unlocked twice")
	}
	tx.unlocked = true
	tx.eg.unlock()
	tx.in.unlock()
}

// PointTx holds a single access point's shard locked, for one-sided
// operations: the cross-shard hold protocol books capacity on only the
// half of a route this ledger owns, so it needs one profile, not a pair.
// Callers must Unlock exactly once and must not retain the profile past
// it. A PointTx never nests inside a PairTx (single-shard lock, so the
// global order is trivially respected).
type PointTx struct {
	sh       *shard
	unlocked bool
}

// LockPoint locks the shard of one point in the given direction.
func (l *Sharded) LockPoint(dir topology.Direction, p topology.PointID) *PointTx {
	var sh *shard
	if dir == topology.Ingress {
		sh = l.in[int(p)]
	} else {
		sh = l.eg[int(p)]
	}
	sh.lock()
	return &PointTx{sh: sh}
}

// Profile returns the locked point's profile.
func (tx *PointTx) Profile() *Profile { return tx.sh.p }

// Unlock releases the point. Unlocking twice panics, like sync.Mutex.
func (tx *PointTx) Unlock() {
	if tx.unlocked {
		panic("alloc: PointTx unlocked twice")
	}
	tx.unlocked = true
	tx.sh.unlock()
}

// HoldReserve books bw over [sigma, tau] on one side's point only — the
// tentative half of a cross-shard admission. It fails without booking if
// the span does not fit.
func (l *Sharded) HoldReserve(dir topology.Direction, p topology.PointID, sigma, tau units.Time, bw units.Bandwidth) error {
	tx := l.LockPoint(dir, p)
	defer tx.Unlock()
	if err := tx.Profile().Reserve(sigma, tau, bw); err != nil {
		return fmt.Errorf("alloc: %v %d: %w", dir, p, err)
	}
	return nil
}

// HoldRelease returns a one-sided booking made by HoldReserve.
func (l *Sharded) HoldRelease(dir topology.Direction, p topology.PointID, sigma, tau units.Time, bw units.Bandwidth) {
	tx := l.LockPoint(dir, p)
	defer tx.Unlock()
	tx.Profile().Release(sigma, tau, bw)
}

// Reserve commits grant g for request r, taking the pair locks itself.
func (l *Sharded) Reserve(r request.Request, g request.Grant) error {
	tx := l.Pair(r.Ingress, r.Egress)
	defer tx.Unlock()
	return tx.Reserve(r, g)
}

// Revoke undoes a previously reserved grant (both sides). Revoking an
// unknown request is a scheduler bug and panics, like Ledger.Revoke.
func (l *Sharded) Revoke(r request.Request) request.Grant {
	in := l.in[int(r.Ingress)]
	in.lock()
	rec, ok := in.granted[r.ID]
	if !ok {
		in.unlock()
		panic(fmt.Sprintf("alloc: revoking ungranted request %d", r.ID))
	}
	eg := l.eg[int(rec.egress)]
	eg.lock()
	g := rec.grant
	in.p.Release(g.Sigma, g.Tau, g.Bandwidth)
	eg.p.Release(g.Sigma, g.Tau, g.Bandwidth)
	delete(in.granted, r.ID)
	eg.unlock()
	in.unlock()
	return g
}

// Grant reports the grant recorded for a request routed through ingress
// point in, if any.
func (l *Sharded) Grant(in topology.PointID, id request.ID) (request.Grant, bool) {
	sh := l.in[int(in)]
	sh.lock()
	defer sh.unlock()
	rec, ok := sh.granted[id]
	return rec.grant, ok
}

// NumGranted reports the number of committed grants across all shards.
func (l *Sharded) NumGranted() int {
	n := 0
	for _, sh := range l.in {
		sh.lock()
		n += len(sh.granted)
		sh.unlock()
	}
	return n
}

// UsageAt reports the allocated bandwidth of every point at instant t.
// Shards are sampled one at a time, so the view is per-point exact but not
// a global cut — fine for occupancy dashboards, not for invariant proofs
// (those go through CheckInvariant, which locks everything).
func (l *Sharded) UsageAt(t units.Time) (in, eg []units.Bandwidth) {
	in = make([]units.Bandwidth, len(l.in))
	for i, sh := range l.in {
		sh.lock()
		in[i] = sh.p.UsedAt(t)
		sh.unlock()
	}
	eg = make([]units.Bandwidth, len(l.eg))
	for e, sh := range l.eg {
		sh.lock()
		eg[e] = sh.p.UsedAt(t)
		sh.unlock()
	}
	return in, eg
}

// CheckInvariant audits equation (1) for every point under a full stop:
// all shards are locked in the global order, so the audit sees one
// consistent cross-shard state. It also cross-checks the grant index —
// every recorded grant must route through a known egress point.
func (l *Sharded) CheckInvariant() error {
	for _, sh := range l.in {
		sh.lock()
	}
	for _, sh := range l.eg {
		sh.lock()
	}
	defer func() {
		for i := len(l.eg) - 1; i >= 0; i-- {
			l.eg[i].unlock()
		}
		for i := len(l.in) - 1; i >= 0; i-- {
			l.in[i].unlock()
		}
	}()
	for i, sh := range l.in {
		if err := sh.p.CheckInvariant(); err != nil {
			return fmt.Errorf("ingress %d: %w", i, err)
		}
		for id, rec := range sh.granted {
			if int(rec.egress) < 0 || int(rec.egress) >= len(l.eg) {
				return fmt.Errorf("ingress %d: grant %d routed through unknown egress %d", i, id, rec.egress)
			}
		}
	}
	for e, sh := range l.eg {
		if err := sh.p.CheckInvariant(); err != nil {
			return fmt.Errorf("egress %d: %w", e, err)
		}
	}
	return nil
}

// ShardStat is one shard's lock-traffic counters.
type ShardStat struct {
	Dir       topology.Direction
	Point     topology.PointID
	Locks     uint64 // total acquisitions
	Contended uint64 // acquisitions that had to block
}

// Stats reports per-shard lock traffic, ingress points first. Counters are
// read atomically without stopping the shards.
func (l *Sharded) Stats() []ShardStat {
	out := make([]ShardStat, 0, len(l.in)+len(l.eg))
	for i, sh := range l.in {
		out = append(out, ShardStat{
			Dir: topology.Ingress, Point: topology.PointID(i),
			Locks: sh.locks.Load(), Contended: sh.contended.Load(),
		})
	}
	for e, sh := range l.eg {
		out = append(out, ShardStat{
			Dir: topology.Egress, Point: topology.PointID(e),
			Locks: sh.locks.Load(), Contended: sh.contended.Load(),
		})
	}
	return out
}
