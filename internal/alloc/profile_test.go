package alloc

import (
	"testing"
	"testing/quick"

	"gridbw/internal/rng"
	"gridbw/internal/units"
)

func TestProfileReserveAndQuery(t *testing.T) {
	p := NewProfile(10)
	if err := p.Reserve(0, 10, 4); err != nil {
		t.Fatal(err)
	}
	if err := p.Reserve(5, 15, 3); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		at   units.Time
		want units.Bandwidth
	}{
		{-1, 0}, {0, 4}, {4.9, 4}, {5, 7}, {9.9, 7}, {10, 3}, {14.9, 3}, {15, 0}, {100, 0},
	}
	for _, c := range cases {
		if got := p.UsedAt(c.at); got != c.want {
			t.Errorf("UsedAt(%v) = %v, want %v", c.at, got, c.want)
		}
	}
	if got := p.MaxUsedIn(0, 15); got != 7 {
		t.Errorf("MaxUsedIn = %v, want 7", got)
	}
	if got := p.MaxUsedIn(10, 20); got != 3 {
		t.Errorf("MaxUsedIn tail = %v, want 3", got)
	}
	if got := p.FreeIn(0, 15); got != 3 {
		t.Errorf("FreeIn = %v, want 3", got)
	}
}

func TestProfileRejectsOverCapacity(t *testing.T) {
	p := NewProfile(10)
	if err := p.Reserve(0, 10, 8); err != nil {
		t.Fatal(err)
	}
	if err := p.Reserve(5, 6, 3); err == nil {
		t.Fatal("over-capacity reservation accepted")
	}
	// Failed reservation must not change state.
	if got := p.UsedAt(5.5); got != 8 {
		t.Errorf("state changed after rejected reservation: %v", got)
	}
	// Non-overlapping is fine.
	if err := p.Reserve(10, 20, 10); err != nil {
		t.Fatal(err)
	}
}

func TestProfileExactFit(t *testing.T) {
	p := NewProfile(1 * units.GBps)
	for i := 0; i < 10; i++ {
		if err := p.Reserve(0, 100, 100*units.MBps); err != nil {
			t.Fatalf("reservation %d: %v", i, err)
		}
	}
	// Capacity is now exactly full; anything more fails.
	if p.Fits(50, 60, 1*units.MBps) {
		t.Error("fit reported above full capacity")
	}
}

func TestProfileRelease(t *testing.T) {
	p := NewProfile(10)
	if err := p.Reserve(0, 10, 6); err != nil {
		t.Fatal(err)
	}
	p.Release(0, 10, 6)
	if got := p.UsedAt(5); got != 0 {
		t.Errorf("UsedAt after release = %v", got)
	}
	if err := p.Reserve(0, 10, 10); err != nil {
		t.Errorf("full reservation after release rejected: %v", err)
	}
}

func TestProfilePartialRelease(t *testing.T) {
	p := NewProfile(10)
	if err := p.Reserve(0, 20, 6); err != nil {
		t.Fatal(err)
	}
	p.Release(5, 10, 6)
	if got := p.UsedAt(7); got != 0 {
		t.Errorf("released middle = %v", got)
	}
	if got := p.UsedAt(3); got != 6 {
		t.Errorf("head = %v", got)
	}
	if got := p.UsedAt(15); got != 6 {
		t.Errorf("tail = %v", got)
	}
}

func TestProfileOverReleasePanics(t *testing.T) {
	p := NewProfile(10)
	if err := p.Reserve(0, 10, 2); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	p.Release(0, 10, 5)
}

func TestProfileEmptySpanPanics(t *testing.T) {
	p := NewProfile(10)
	for _, f := range []func(){
		func() { _ = p.Reserve(5, 5, 1) },
		func() { p.Release(6, 5, 1) },
		func() { p.MaxUsedIn(1, 1) },
		func() { p.Integral(2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("empty span did not panic")
				}
			}()
			f()
		}()
	}
}

func TestProfileNegativeArgsPanic(t *testing.T) {
	for _, f := range []func(){
		func() { NewProfile(-1) },
		func() { NewProfile(1).Fits(0, 1, -1) },
		func() { NewProfile(1).Release(0, 1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("negative arg did not panic")
				}
			}()
			f()
		}()
	}
}

func TestProfileIntegral(t *testing.T) {
	p := NewProfile(10)
	if err := p.Reserve(0, 10, 4); err != nil {
		t.Fatal(err)
	}
	if err := p.Reserve(5, 15, 2); err != nil {
		t.Fatal(err)
	}
	// [0,5): 4 -> 20; [5,10): 6 -> 30; [10,15): 2 -> 10. Total 60.
	if got := p.Integral(0, 15); got != 60 {
		t.Errorf("Integral = %v, want 60", got)
	}
	// Sub-range clipping: [3, 7) = 4*2 + 6*2 = 20.
	if got := p.Integral(3, 7); got != 20 {
		t.Errorf("clipped Integral = %v, want 20", got)
	}
	// Range beyond all breakpoints: usage 0.
	if got := p.Integral(20, 30); got != 0 {
		t.Errorf("tail Integral = %v, want 0", got)
	}
	// Range before all activity.
	if got := p.Integral(-10, -5); got != 0 {
		t.Errorf("head Integral = %v, want 0", got)
	}
}

func TestProfileCoalesce(t *testing.T) {
	p := NewProfile(100)
	for i := 0; i < 50; i++ {
		t0 := units.Time(i * 10)
		if err := p.Reserve(t0, t0+10, 5); err != nil {
			t.Fatal(err)
		}
	}
	// All 50 adjacent equal segments should have merged into few.
	if p.Breakpoints() > 4 {
		t.Errorf("profile not coalesced: %d breakpoints", p.Breakpoints())
	}
	for i := 0; i < 50; i++ {
		t0 := units.Time(i * 10)
		p.Release(t0, t0+10, 5)
	}
	if p.Breakpoints() > 2 {
		t.Errorf("profile not coalesced after release: %d breakpoints", p.Breakpoints())
	}
}

// TestProfileNeverOverCommits is the central property: a random sequence of
// accepted reservations and releases never drives any instant above
// capacity, and the profile matches a brute-force reference.
func TestProfileNeverOverCommits(t *testing.T) {
	f := func(seed int64) bool {
		src := rng.New(seed)
		const capacity = 100
		p := NewProfile(capacity)
		type res struct {
			t0, t1 units.Time
			bw     units.Bandwidth
		}
		var live []res
		// Brute-force reference: usage sampled on integer grid.
		ref := make([]float64, 200)
		for step := 0; step < 300; step++ {
			if len(live) > 0 && src.Bool(0.3) {
				k := src.Intn(len(live))
				r := live[k]
				p.Release(r.t0, r.t1, r.bw)
				for i := int(r.t0); i < int(r.t1); i++ {
					ref[i] -= float64(r.bw)
				}
				live = append(live[:k], live[k+1:]...)
				continue
			}
			t0 := units.Time(src.Intn(180))
			t1 := t0 + units.Time(src.Intn(19)+1)
			bw := units.Bandwidth(src.Intn(40) + 1)
			err := p.Reserve(t0, t1, bw)
			fits := true
			for i := int(t0); i < int(t1); i++ {
				if ref[i]+float64(bw) > capacity+1e-6 {
					fits = false
					break
				}
			}
			if fits != (err == nil) {
				return false
			}
			if err == nil {
				for i := int(t0); i < int(t1); i++ {
					ref[i] += float64(bw)
				}
				live = append(live, res{t0, t1, bw})
			}
			if p.CheckInvariant() != nil {
				return false
			}
		}
		// Final cross-check against reference on the grid.
		for i := 0; i < 200; i++ {
			if !units.ApproxEq(float64(p.UsedAt(units.Time(i))), ref[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestProfileSpanBeforeFirstBreakpoint(t *testing.T) {
	p := NewProfile(10)
	if err := p.Reserve(100, 110, 5); err != nil {
		t.Fatal(err)
	}
	// Reserve earlier than any existing breakpoint (prepend path).
	if err := p.Reserve(-50, -40, 7); err != nil {
		t.Fatal(err)
	}
	if got := p.UsedAt(-45); got != 7 {
		t.Errorf("UsedAt(-45) = %v", got)
	}
	if got := p.UsedAt(0); got != 0 {
		t.Errorf("UsedAt(0) = %v", got)
	}
	if got := p.UsedAt(105); got != 5 {
		t.Errorf("UsedAt(105) = %v", got)
	}
	if err := p.CheckInvariant(); err != nil {
		t.Error(err)
	}
}

func TestEarliestFit(t *testing.T) {
	p := NewProfile(10)
	if err := p.Reserve(10, 30, 8); err != nil {
		t.Fatal(err)
	}
	// bw=5 doesn't fit during [10,30); earliest start for a 5-long slot is
	// right at the release breakpoint t=30.
	got, ok := p.EarliestFit(0, 100, 5, 5)
	if !ok || got != 0 {
		// Wait: at t=0, [0,5) is free (reservation starts at 10): fits.
		t.Errorf("EarliestFit(0..) = %v, %v; want 0, true", got, ok)
	}
	// From t=8 a 5-long slot overlaps the busy region; next candidate is 30.
	got, ok = p.EarliestFit(8, 100, 5, 5)
	if !ok || got != 30 {
		t.Errorf("EarliestFit(8..) = %v, %v; want 30, true", got, ok)
	}
	// A thin request fits immediately even during the busy region.
	got, ok = p.EarliestFit(8, 100, 5, 2)
	if !ok || got != 8 {
		t.Errorf("thin EarliestFit = %v, %v; want 8, true", got, ok)
	}
	// No feasible start inside a short horizon.
	if _, ok := p.EarliestFit(12, 20, 5, 5); ok {
		t.Error("found fit inside saturated region")
	}
	// Inverted range.
	if _, ok := p.EarliestFit(50, 40, 1, 1); ok {
		t.Error("inverted range found fit")
	}
}

func TestEarliestFitPanicsOnBadDuration(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero duration did not panic")
		}
	}()
	NewProfile(1).EarliestFit(0, 10, 0, 1)
}

func TestBreakpointTimes(t *testing.T) {
	p := NewProfile(10)
	if err := p.Reserve(5, 15, 3); err != nil {
		t.Fatal(err)
	}
	bps := p.BreakpointTimes(0, 100)
	// Expect breakpoints at 5 and 15 (0 excluded: not > from).
	if len(bps) != 2 || bps[0] != 5 || bps[1] != 15 {
		t.Errorf("BreakpointTimes = %v", bps)
	}
	if got := p.BreakpointTimes(5, 10); len(got) != 0 {
		t.Errorf("clipped BreakpointTimes = %v", got)
	}
}

func TestZeroCapacityProfile(t *testing.T) {
	p := NewProfile(0)
	if err := p.Reserve(0, 1, 1); err == nil {
		t.Error("reservation on zero-capacity point accepted")
	}
	if !p.Fits(0, 1, 0) {
		t.Error("zero reservation on zero-capacity point rejected")
	}
}
