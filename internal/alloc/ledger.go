package alloc

import (
	"fmt"

	"gridbw/internal/request"
	"gridbw/internal/topology"
	"gridbw/internal/units"
)

// Ledger holds one Profile per access point of a network and reserves
// request grants two-sided: a grant consumes bandwidth at its ingress and
// its egress point over its assigned window, or at neither.
type Ledger struct {
	net     *topology.Network
	ingress []*Profile
	egress  []*Profile
	granted map[request.ID]request.Grant
}

// NewLedger returns an empty ledger over net.
func NewLedger(net *topology.Network) *Ledger {
	l := &Ledger{net: net, granted: make(map[request.ID]request.Grant)}
	for i := 0; i < net.NumIngress(); i++ {
		l.ingress = append(l.ingress, NewProfile(net.Bin(topology.PointID(i))))
	}
	for e := 0; e < net.NumEgress(); e++ {
		l.egress = append(l.egress, NewProfile(net.Bout(topology.PointID(e))))
	}
	return l
}

// Network reports the network the ledger tracks.
func (l *Ledger) Network() *topology.Network { return l.net }

// Ingress returns the profile of ingress point i.
func (l *Ledger) Ingress(i topology.PointID) *Profile { return l.ingress[int(i)] }

// Egress returns the profile of egress point e.
func (l *Ledger) Egress(e topology.PointID) *Profile { return l.egress[int(e)] }

// Fits reports whether granting request r with grant g fits both points.
func (l *Ledger) Fits(r request.Request, g request.Grant) bool {
	return l.ingress[int(r.Ingress)].Fits(g.Sigma, g.Tau, g.Bandwidth) &&
		l.egress[int(r.Egress)].Fits(g.Sigma, g.Tau, g.Bandwidth)
}

// Reserve commits grant g for request r on both points, atomically.
func (l *Ledger) Reserve(r request.Request, g request.Grant) error {
	if g.Request != r.ID {
		return fmt.Errorf("alloc: grant for request %d applied to request %d", g.Request, r.ID)
	}
	if _, dup := l.granted[r.ID]; dup {
		return fmt.Errorf("alloc: request %d already granted", r.ID)
	}
	in := l.ingress[int(r.Ingress)]
	eg := l.egress[int(r.Egress)]
	if err := in.Reserve(g.Sigma, g.Tau, g.Bandwidth); err != nil {
		return fmt.Errorf("alloc: ingress %d: %w", r.Ingress, err)
	}
	if err := eg.Reserve(g.Sigma, g.Tau, g.Bandwidth); err != nil {
		in.Release(g.Sigma, g.Tau, g.Bandwidth)
		return fmt.Errorf("alloc: egress %d: %w", r.Egress, err)
	}
	l.granted[r.ID] = g
	return nil
}

// Revoke undoes a previously reserved grant (both sides). Revoking an
// unknown request is a scheduler bug and panics.
func (l *Ledger) Revoke(r request.Request) request.Grant {
	g, ok := l.granted[r.ID]
	if !ok {
		panic(fmt.Sprintf("alloc: revoking ungranted request %d", r.ID))
	}
	l.ingress[int(r.Ingress)].Release(g.Sigma, g.Tau, g.Bandwidth)
	l.egress[int(r.Egress)].Release(g.Sigma, g.Tau, g.Bandwidth)
	delete(l.granted, r.ID)
	return g
}

// Grant reports the grant recorded for request id, if any.
func (l *Ledger) Grant(id request.ID) (request.Grant, bool) {
	g, ok := l.granted[id]
	return g, ok
}

// NumGranted reports the number of committed grants.
func (l *Ledger) NumGranted() int { return len(l.granted) }

// Grants returns all committed grants keyed by request ID (a copy).
func (l *Ledger) Grants() map[request.ID]request.Grant {
	out := make(map[request.ID]request.Grant, len(l.granted))
	for id, g := range l.granted {
		out[id] = g
	}
	return out
}

// UsageAt reports the allocated bandwidth of every ingress and egress
// point at instant t — the live-occupancy view a control plane exposes on
// its status endpoint.
func (l *Ledger) UsageAt(t units.Time) (in, eg []units.Bandwidth) {
	in = make([]units.Bandwidth, len(l.ingress))
	for i, p := range l.ingress {
		in[i] = p.UsedAt(t)
	}
	eg = make([]units.Bandwidth, len(l.egress))
	for e, p := range l.egress {
		eg[e] = p.UsedAt(t)
	}
	return in, eg
}

// CheckInvariant audits every profile.
func (l *Ledger) CheckInvariant() error {
	for i, p := range l.ingress {
		if err := p.CheckInvariant(); err != nil {
			return fmt.Errorf("ingress %d: %w", i, err)
		}
	}
	for e, p := range l.egress {
		if err := p.CheckInvariant(); err != nil {
			return fmt.Errorf("egress %d: %w", e, err)
		}
	}
	return nil
}
