package alloc_test

import (
	"fmt"
	"log"

	"gridbw/internal/alloc"
	"gridbw/internal/units"
)

// ExampleProfile shows the piecewise-constant capacity ledger underneath
// every off-line scheduler: reservations over time windows, rejection at
// capacity, and gap search for book-ahead.
func ExampleProfile() {
	p := alloc.NewProfile(1 * units.GBps)
	if err := p.Reserve(0, 100, 700*units.MBps); err != nil {
		log.Fatal(err)
	}
	fmt.Println("overlap fits:", p.Fits(50, 150, 400*units.MBps))
	fmt.Println("tail fits:", p.Fits(100, 200, 400*units.MBps))

	start, ok := p.EarliestFit(0, 1000, 50, 400*units.MBps)
	fmt.Printf("earliest 400MB/s slot: t=%v (found=%v)\n", start, ok)
	// Output:
	// overlap fits: false
	// tail fits: true
	// earliest 400MB/s slot: t=1m40s (found=true)
}
